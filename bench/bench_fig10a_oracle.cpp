/**
 * @file
 * Reproduces paper Fig 10a: the exact solver's runtime explodes with
 * the number of column chunks (Gurobi needed >3 hours at 35 chunks).
 * Our branch-and-bound oracle is time-limited; we report solve time
 * and whether optimality was proven within the budget, plus the node
 * count as the search-effort measure.
 */
#include "benchutil/harness.h"
#include "common/walltime.h"
#include "fac/constructors.h"
#include "workload/chunk_models.h"

using namespace fusion;

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    benchutil::banner("Fig 10a", "exact-solver runtime vs number of chunks");

    const double time_limit = 2.0; // seconds per instance
    benchutil::TablePrinter table({"num chunks", "solve time", "status",
                                   "nodes explored", "FAC time"});

    for (size_t count : {6, 9, 12, 15, 18, 21, 24, 30, 36}) {
        auto chunks = workload::zipfChunkModel(count, 0.0, 100 + count);
        double t0 = walltime::monotonicSeconds();
        fac::ObjectLayout greedy = fac::buildFacLayout(chunks, 9, 6);
        double fac_seconds = walltime::monotonicSeconds() - t0;
        (void)greedy;
        fac::OracleResult oracle =
            fac::buildOracleLayout(chunks, 9, 6, time_limit);
        table.addRow({std::to_string(count),
                      formatSeconds(oracle.solveSeconds),
                      oracle.optimal ? "optimal" : "TIMEOUT (budget 2 s)",
                      std::to_string(oracle.nodesExplored),
                      formatSeconds(fac_seconds)});
    }
    table.print();
    std::printf("\npaper: Gurobi takes hours beyond ~30 chunks while FAC "
                "needs microseconds; the same wall appears here as TIMEOUT "
                "rows.\n");
    return 0;
}
