/**
 * @file
 * End-to-end CSV workflow: load a CSV file (schema inferred), encode it
 * to the fpax columnar format, store it in Fusion, and run ad-hoc SQL
 * from the command line — the S3-Select-style usage the paper targets.
 *
 *   ./build/examples/csv_to_fusion data.csv "SELECT a FROM t WHERE b < 5"
 *
 * With no arguments, a small demo CSV is used.
 */
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/units.h"
#include "format/csv.h"
#include "format/writer.h"
#include "sim/cluster.h"
#include "store/fusion_store.h"

using namespace fusion;

namespace {

const char *kDemoCsv =
    "city,year,population,growth\n"
    "amsterdam,2023,821752,0.012\n"
    "rotterdam,2023,623652,0.008\n"
    "the hague,2023,514861,0.009\n"
    "utrecht,2023,361966,0.015\n"
    "eindhoven,2023,238326,0.011\n"
    "amsterdam,2024,831621,0.012\n"
    "rotterdam,2024,628643,0.008\n"
    "the hague,2024,519495,0.009\n"
    "utrecht,2024,367395,0.015\n"
    "eindhoven,2024,240948,0.011\n";

void
printResult(const store::QueryOutcome &outcome)
{
    const query::QueryResult &result = outcome.result;
    std::printf("matched %llu rows (%s simulated, %s on the wire)\n",
                static_cast<unsigned long long>(result.rowsMatched),
                formatSeconds(outcome.latencySeconds).c_str(),
                formatBytes(outcome.networkBytes).c_str());
    for (const auto &col : result.columns) {
        if (col.isAggregate) {
            std::printf("  %s = %.4f\n", col.name.c_str(),
                        col.aggregateValue);
        }
    }
    // Print up to 10 rows of plain projections.
    size_t rows = 0;
    for (const auto &col : result.columns)
        if (!col.isAggregate)
            rows = std::max(rows, col.values.size());
    for (size_t r = 0; r < std::min<size_t>(rows, 10); ++r) {
        std::printf("  ");
        for (const auto &col : result.columns) {
            if (!col.isAggregate)
                std::printf("%s=%s ", col.name.c_str(),
                            col.values.valueAt(r).toString().c_str());
        }
        std::printf("\n");
    }
    if (rows > 10)
        std::printf("  ... (%zu more rows)\n", rows - 10);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string csv_text;
    std::string sql;
    if (argc >= 2) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        csv_text = buffer.str();
        sql = argc >= 3 ? argv[2] : "";
    } else {
        csv_text = kDemoCsv;
        sql = "SELECT city, population FROM t "
              "WHERE year = 2024 AND population > 400000";
        std::printf("no CSV given; using a built-in demo table\n");
    }

    auto schema = format::inferCsvSchema(csv_text);
    if (!schema.isOk()) {
        std::fprintf(stderr, "schema inference failed: %s\n",
                     schema.status().toString().c_str());
        return 1;
    }
    std::printf("inferred schema:");
    for (const auto &col : schema.value().columns())
        std::printf(" %s:%s", col.name.c_str(),
                    format::physicalTypeName(col.physical));
    std::printf("\n");

    auto table = format::readCsv(csv_text, schema.value());
    if (!table.isOk()) {
        std::fprintf(stderr, "CSV parse failed: %s\n",
                     table.status().toString().c_str());
        return 1;
    }

    format::WriterOptions writer_options;
    writer_options.rowGroupRows =
        std::max<size_t>(1, table.value().numRows() / 4);
    auto file = format::writeTable(table.value(), writer_options);
    if (!file.isOk()) {
        std::fprintf(stderr, "encode failed: %s\n",
                     file.status().toString().c_str());
        return 1;
    }
    std::printf("encoded %zu rows into %s (%zu column chunks)\n",
                table.value().numRows(),
                formatBytes(file.value().bytes.size()).c_str(),
                file.value().metadata.numChunks());

    sim::Cluster cluster(sim::ClusterConfig{});
    store::FusionStore store(cluster, store::StoreOptions{});
    auto put = store.put("t", file.value().bytes);
    if (!put.isOk()) {
        std::fprintf(stderr, "put failed: %s\n",
                     put.status().toString().c_str());
        return 1;
    }
    std::printf("stored as object 't': layout=%s, %zu stripes, "
                "overhead vs optimal %.2f%%\n\n",
                fac::layoutKindName(put.value().layoutKind),
                put.value().numStripes,
                put.value().overheadVsOptimal * 100.0);

    if (sql.empty()) {
        std::printf("no query given; try: ./csv_to_fusion file.csv "
                    "\"SELECT col FROM t WHERE other < 5\"\n");
        return 0;
    }
    std::printf("> %s\n", sql.c_str());
    auto outcome = store.querySql(sql);
    if (!outcome.isOk()) {
        std::fprintf(stderr, "query failed: %s\n",
                     outcome.status().toString().c_str());
        return 1;
    }
    printResult(outcome.value());
    return 0;
}
