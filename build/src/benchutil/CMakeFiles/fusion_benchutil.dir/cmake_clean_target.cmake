file(REMOVE_RECURSE
  "libfusion_benchutil.a"
)
