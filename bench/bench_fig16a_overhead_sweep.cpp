/**
 * @file
 * Reproduces paper Fig 16a: FAC storage overhead w.r.t. optimal as a
 * function of the number of chunks (sizes 1-100 MB) for Zipf skews
 * 0, 0.5 and 0.99, averaged over many runs. Paper: ~3% at 100 chunks,
 * ~0.8% at 500, approaching 0 beyond; skew barely matters.
 */
#include "benchutil/harness.h"
#include "fac/constructors.h"
#include "workload/chunk_models.h"

using namespace fusion;

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    benchutil::banner("Fig 16a",
                      "FAC storage overhead vs number of chunks (RS(9,6))");

    const int kRuns = 100; // paper: averaged over 100 dataset runs
    benchutil::TablePrinter table(
        {"num chunks", "zipf 0 (%)", "zipf 0.5 (%)", "zipf 0.99 (%)"});

    for (size_t count : {25, 50, 100, 200, 500, 1000}) {
        std::vector<std::string> row = {std::to_string(count)};
        for (double theta : {0.0, 0.5, 0.99}) {
            double total = 0.0;
            for (int run = 0; run < kRuns; ++run) {
                auto chunks = workload::zipfChunkModel(
                    count, theta, 1000 * count + run);
                fac::ObjectLayout layout =
                    fac::buildFacLayout(chunks, 9, 6);
                total += layout.overheadVsOptimal() * 100.0;
            }
            row.push_back(benchutil::fmt("%.2f", total / kRuns));
        }
        table.addRow(std::move(row));
    }
    table.print();
    std::printf("\npaper: ~3%% @100 chunks, 0.8%% @500, ->0 beyond; "
                "skew has little impact\n");
    return 0;
}
