/**
 * @file
 * Byte-buffer aliases and a non-owning byte view (Slice).
 */
#ifndef FUSION_COMMON_BYTES_H
#define FUSION_COMMON_BYTES_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "status.h"

namespace fusion {

/** Owning, contiguous, resizable byte buffer. */
using Bytes = std::vector<uint8_t>;

/**
 * Non-owning view over a contiguous range of bytes. The underlying
 * storage must outlive the Slice. Mirrors the subset of std::span we
 * need plus convenience constructors from Bytes and std::string.
 */
class Slice
{
  public:
    Slice() = default;
    Slice(const uint8_t *data, size_t size) : data_(data), size_(size) {}
    Slice(const Bytes &buf) : data_(buf.data()), size_(buf.size()) {}
    Slice(const std::string &s)
        : data_(reinterpret_cast<const uint8_t *>(s.data())), size_(s.size())
    {
    }

    const uint8_t *data() const { return data_; }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    uint8_t
    operator[](size_t i) const
    {
        FUSION_CHECK(i < size_);
        return data_[i];
    }

    /** Sub-view [offset, offset+len); len is clamped to the slice end. */
    Slice
    subslice(size_t offset, size_t len = SIZE_MAX) const
    {
        FUSION_CHECK(offset <= size_);
        size_t n = std::min(len, size_ - offset);
        return Slice(data_ + offset, n);
    }

    /** Copies the viewed bytes into an owning buffer. */
    Bytes toBytes() const { return Bytes(data_, data_ + size_); }

    std::string
    toString() const
    {
        return std::string(reinterpret_cast<const char *>(data_), size_);
    }

    bool
    operator==(const Slice &other) const
    {
        return size_ == other.size_ &&
               (size_ == 0 || std::memcmp(data_, other.data_, size_) == 0);
    }

  private:
    const uint8_t *data_ = nullptr;
    size_t size_ = 0;
};

/** Appends the contents of `src` to `dst`. */
inline void
appendBytes(Bytes &dst, Slice src)
{
    dst.insert(dst.end(), src.data(), src.data() + src.size());
}

} // namespace fusion

#endif // FUSION_COMMON_BYTES_H
