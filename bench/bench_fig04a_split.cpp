/**
 * @file
 * Reproduces paper Fig 4a: percentage of column chunks that get split
 * under RS(9,6) fixed-block coding, sweeping the erasure-code block
 * size from 100 KB to 100 MB, for the paper-scale lineitem and taxi
 * chunk models. Paper: even at 100 MB blocks, 40% (lineitem) and 24%
 * (taxi) of chunks split.
 */
#include "benchutil/harness.h"
#include "fac/constructors.h"
#include "workload/chunk_models.h"

using namespace fusion;

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    benchutil::banner("Fig 4a",
                      "% of column chunks split vs erasure-code block size");

    const uint64_t block_sizes[] = {100'000,    1'000'000, 10'000'000,
                                    100'000'000};
    benchutil::TablePrinter table(
        {"block size", "tpc-h lineitem split %", "taxi split %"});

    for (uint64_t block : block_sizes) {
        double split[2];
        int i = 0;
        for (auto model : {workload::lineitemChunkModel(7),
                           workload::taxiChunkModel(7)}) {
            fac::ObjectLayout layout =
                fac::buildFixedLayout(model, 9, 6, block);
            FUSION_CHECK(layout.validate(model).isOk());
            split[i++] = layout.splitFraction(model.size()) * 100.0;
        }
        table.addRow({formatBytes(block), benchutil::fmt("%.1f", split[0]),
                      benchutil::fmt("%.1f", split[1])});
    }
    table.print();
    std::printf("\npaper @100MB blocks: lineitem ~40%%, taxi ~24%%\n");
    return 0;
}
