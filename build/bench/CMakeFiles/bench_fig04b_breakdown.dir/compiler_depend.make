# Empty compiler generated dependencies file for bench_fig04b_breakdown.
# This may be replaced when dependencies are built.
