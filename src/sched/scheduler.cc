#include "scheduler.h"

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "query/cost.h"
#include "sim/cluster.h"

namespace fusion::sched {

using store::ObjectStore;
using store::QueryOutcome;
using SimTask = ObjectStore::SimTask;
using QueryPlan = ObjectStore::QueryPlan;

namespace {

/** Share-key family prefix, up to the first '|' ("" for unkeyed). */
std::string
keyFamily(const std::string &key)
{
    size_t p = key.find('|');
    return p == std::string::npos ? std::string() : key.substr(0, p);
}

bool
isPushdownFamily(const std::string &family)
{
    return family == "fpush" || family == "ppush" || family == "apush";
}

/**
 * "object|chunk" grouping key for the merged Cost Equation, or "" for
 * tasks that are not per-chunk projection work. cfetch keys are already
 * "cfetch|object|chunk"; ppush/apush carry a trailing filter signature
 * that must not split the group.
 */
std::string
chunkGroupKey(const std::string &key)
{
    size_t p = key.find('|');
    if (p == std::string::npos)
        return {};
    std::string family = key.substr(0, p);
    if (family == "cfetch")
        return key.substr(p + 1);
    if (family == "ppush" || family == "apush") {
        size_t p2 = key.find('|', p + 1);
        size_t p3 = p2 == std::string::npos
                        ? std::string::npos
                        : key.find('|', p2 + 1);
        if (p3 == std::string::npos)
            return {};
        return key.substr(p + 1, p3 - p - 1);
    }
    return {};
}

/** In-flight / completed state of one deduplicated task. */
struct SharedEntry {
    bool issued = false;
    bool done = false;
    /** Continuations of consumers that arrived while in flight. */
    std::vector<std::function<void()>> waiters;
};

/** Per-batch simulation state shared across the DES callbacks. */
struct BatchCtx {
    std::map<std::string, SharedEntry> table;
    size_t queriesDone = 0;
};

} // namespace

SharedScanScheduler::SharedScanScheduler(store::ObjectStore &store,
                                         const SchedOptions &options)
    : store_(store), options_(options)
{
    obs::MetricsRegistry &reg = store.obs().metrics;
    ins_.batches = &reg.counter("sched.batches");
    ins_.queries = &reg.counter("sched.queries");
    ins_.tasksPlanned = &reg.counter("sched.tasks_planned");
    ins_.tasksIssued = &reg.counter("sched.tasks_issued");
    ins_.sharedFetches = &reg.counter("sched.shared_fetches");
    ins_.mergedPushdowns = &reg.counter("sched.merged_pushdowns");
    ins_.fetchConversions = &reg.counter("sched.fetch_conversions");
    ins_.loadSheds = &reg.counter("sched.load_sheds");
    ins_.wireBytesSaved = &reg.counter("sched.wire_bytes_saved");
}

Result<std::vector<QueryOutcome>>
SharedScanScheduler::runBatch(const std::vector<query::Query> &batch)
{
    stats_ = BatchStats{};
    stats_.queries = batch.size();
    ins_.batches->add(1);
    ins_.queries->add(batch.size());
    if (batch.empty())
        return std::vector<QueryOutcome>{};

    // ---- phase 1: plan every query (serial, deterministic order) ----
    std::vector<std::shared_ptr<QueryPlan>> plans;
    plans.reserve(batch.size());
    for (const auto &q : batch) {
        auto plan = store_.planQueryForBatch(q);
        if (!plan.isOk())
            return plan.status();
        plans.push_back(std::move(plan.value()));
    }
    for (const auto &plan : plans)
        stats_.tasksPlanned +=
            plan->filterTasks.size() + plan->projectionTasks.size();
    ins_.tasksPlanned->add(stats_.tasksPlanned);

    // ---- phase 2: shared Cost Equation over merged consumer sets ----
    // Projection tasks are grouped by (object, chunk); each group's
    // verdict is recomputed against what the whole batch will actually
    // move. Groups are visited in sorted key order and node load
    // accumulates across them, so the admission decisions are
    // deterministic.
    struct Member {
        size_t qi; // query index
        size_t ti; // index into that plan's projectionTasks
    };
    std::map<std::string, std::vector<Member>> groups;
    for (size_t qi = 0; qi < plans.size(); ++qi) {
        const auto &tasks = plans[qi]->projectionTasks;
        for (size_t ti = 0; ti < tasks.size(); ++ti) {
            std::string group = chunkGroupKey(tasks[ti].shareKey);
            if (!group.empty())
                groups[group].push_back({qi, ti});
        }
    }

    const sim::NodeConfig &nc = store_.cluster().config().node;
    const double node_capacity =
        nc.cpuRate * static_cast<double>(nc.cpuCores);
    std::map<size_t, double> node_load_seconds;
    // Per-query EXPLAIN amendments: chunkId -> (verdict, reason).
    std::vector<std::map<uint32_t, std::pair<const char *, const char *>>>
        overrides(plans.size());

    for (const auto &[group_key, members] : groups) {
        std::vector<Member> pushers, fetchers;
        for (const Member &m : members) {
            const SimTask &t = plans[m.qi]->projectionTasks[m.ti];
            if (isPushdownFamily(keyFamily(t.shareKey)))
                pushers.push_back(m);
            else
                fetchers.push_back(m);
        }
        if (pushers.empty())
            continue;
        const SimTask &rep = plans[pushers[0].qi]
                                 ->projectionTasks[pushers[0].ti];
        const size_t node = rep.nodeId;

        bool convert = false;
        bool load_shed = false;
        const char *reason = nullptr;

        // Distinct filter signatures = distinct merged replies; one
        // execution per subgroup if the group stays pushed down.
        std::map<std::string, const SimTask *> subgroups;
        for (const Member &m : pushers) {
            const SimTask &t = plans[m.qi]->projectionTasks[m.ti];
            subgroups.emplace(t.shareKey, &t);
        }

        if (!fetchers.empty() && options_.dedupFetches) {
            // Some consumer already fetches this whole chunk to the
            // coordinator; pushdown replies on top of that fetch are
            // pure extra wire. Ride the shared fetch instead.
            convert = true;
            reason = "shared-fetch";
        } else if (options_.mergePushdowns && pushers.size() >= 2) {
            uint64_t merged_reply = 0;
            double subgroup_load = 0.0;
            for (const auto &[key, task] : subgroups) {
                merged_reply += task->replyBytes;
                subgroup_load += task->nodeCpuWork / node_capacity;
            }
            format::ChunkMeta chunk;
            chunk.storedSize = rep.chunkStoredBytes;
            chunk.plainSize = rep.chunkPlainBytes;
            // Load term uses the projected load: what the node would
            // owe if this subgroup were admitted on top of the batch
            // work already assigned to it.
            auto decision = query::decideSharedProjectionPushdown(
                merged_reply, chunk,
                node_load_seconds[node] + subgroup_load,
                options_.nodeLoadLimitSeconds);
            if (!decision.push) {
                convert = true;
                load_shed = decision.loadShed;
                reason = load_shed ? "load-shed" : "shared-fetch";
            }
        } else if (options_.nodeLoadLimitSeconds > 0.0 &&
                   node_load_seconds[node] +
                           rep.nodeCpuWork / node_capacity >
                       options_.nodeLoadLimitSeconds) {
            // Singleton pushdown keeps its planner verdict unless the
            // target node is already oversubscribed by this batch.
            convert = true;
            load_shed = true;
            reason = "load-shed";
        }

        if (!convert) {
            // Admit: charge one execution per subgroup to the node.
            for (const auto &[key, task] : subgroups)
                node_load_seconds[node] +=
                    task->nodeCpuWork / node_capacity;
            // Consumers of a multi-member subgroup share one reply.
            for (const auto &[key, task] : subgroups) {
                size_t count = 0;
                for (const Member &m : pushers)
                    if (plans[m.qi]->projectionTasks[m.ti].shareKey ==
                        key)
                        ++count;
                if (count < 2)
                    continue;
                for (const Member &m : pushers)
                    if (plans[m.qi]->projectionTasks[m.ti].shareKey ==
                        key)
                        overrides[m.qi][task->chunkId] = {
                            "push", "merged-pushdown"};
            }
            continue;
        }

        // Convert every pushdown consumer to a shared chunk fetch; the
        // chunk crosses the wire once and each consumer pays only its
        // own decode/select work at the coordinator.
        for (const Member &m : pushers) {
            QueryPlan &plan = *plans[m.qi];
            SimTask &t = plan.projectionTasks[m.ti];
            SimTask fetch;
            fetch.nodeId = t.nodeId;
            fetch.requestBytes = store_.options().requestRpcBytes;
            fetch.diskBytes = t.chunkStoredBytes;
            fetch.nodeCpuWork = 0.0;
            fetch.replyBytes = t.chunkStoredBytes;
            fetch.coordCpuWork = t.fetchDecodeWork;
            fetch.label = "chunk_fetch";
            fetch.shareKey = "cfetch|" + group_key;
            fetch.chunkId = t.chunkId;
            fetch.selectivity = t.selectivity;
            fetch.chunkStoredBytes = t.chunkStoredBytes;
            fetch.chunkPlainBytes = t.chunkPlainBytes;
            fetch.fetchDecodeWork = t.fetchDecodeWork;
            fetch.consumerSelectWork = t.consumerSelectWork;
            t = std::move(fetch);
            FUSION_CHECK(plan.outcome.projectionPushdowns > 0);
            --plan.outcome.projectionPushdowns;
            ++plan.outcome.projectionFetches;
            overrides[m.qi][t.chunkId] = {"fetch", reason};
            if (load_shed) {
                ++stats_.loadSheds;
                ins_.loadSheds->add(1);
            } else {
                ++stats_.fetchConversions;
                ins_.fetchConversions->add(1);
            }
        }
        // The converted chunk now crosses the wire once to the
        // coordinator — admit it so later queries (and batches) plan
        // it as "cached-local" instead of re-moving the bytes.
        store_.admitChunkToCache(group_key.substr(0, group_key.find('|')),
                                 rep.chunkId);
    }

    // Re-attach amended EXPLAIN reports.
    for (size_t qi = 0; qi < plans.size(); ++qi) {
        if (overrides[qi].empty() || !plans[qi]->outcome.explain)
            continue;
        obs::QueryExplain amended = *plans[qi]->outcome.explain;
        for (auto &pc : amended.projections) {
            auto it = overrides[qi].find(pc.chunkId);
            if (it == overrides[qi].end())
                continue;
            pc.verdict = it->second.first;
            pc.reason = it->second.second;
        }
        plans[qi]->outcome.explain =
            std::make_shared<const obs::QueryExplain>(std::move(amended));
    }

    // ---- phase 3: concurrent simulation with task dedup ----
    sim::Cluster &cluster = store_.cluster();
    obs::Tracer &tracer = store_.obs().tracer;
    auto ctx = std::make_shared<BatchCtx>();
    const double batch_start = cluster.engine().now();
    const double cpu_rate = nc.cpuRate;

    std::vector<QueryOutcome> outcomes(plans.size());
    size_t done_count = 0;

    uint64_t batch_span = tracer.beginSpan(
        "shared_scan",
        "\"queries\": " + std::to_string(batch.size()) +
            ", \"tasks_planned\": " + std::to_string(stats_.tasksPlanned));

    // Demands a task's execution. Unkeyed (or dedup-disabled) tasks run
    // directly; keyed tasks run once and fan their completion out to
    // every later consumer, which pays only coordinator-side work.
    auto demand = [this, ctx, &cluster, &tracer, cpu_rate](
                      const SimTask &task, QueryPlan &plan,
                      bool projection_stage,
                      std::shared_ptr<sim::Join> join) {
        const size_t coordinator = plan.coordinatorId;
        if (task.shareKey.empty() || !options_.dedupFetches) {
            ++stats_.tasksIssued;
            ins_.tasksIssued->add(1);
            store_.accountTask(task, coordinator, projection_stage,
                               plan.outcome);
            store_.executeTask(task, coordinator, join);
            return;
        }
        SharedEntry &entry = ctx->table[task.shareKey];
        if (!entry.issued) {
            entry.issued = true;
            ++stats_.tasksIssued;
            ins_.tasksIssued->add(1);
            store_.accountTask(task, coordinator, projection_stage,
                               plan.outcome);
            // The issuer's own join signal plus waiter fan-out.
            auto fanout = std::make_shared<sim::Join>(
                1, [ctx, key = task.shareKey, join]() {
                    SharedEntry &e = ctx->table[key];
                    e.done = true;
                    join->signal();
                    auto waiters = std::move(e.waiters);
                    e.waiters.clear();
                    for (auto &waiter : waiters)
                        waiter();
                });
            store_.executeTask(task, coordinator, fanout);
            return;
        }

        // Absorbed: the bytes are (or were) already on their way to
        // this coordinator. Pay only the per-consumer coordinator work
        // (select pass on the shared reply, or this task's own coord
        // work when no cheaper shared form exists).
        const bool push_family = isPushdownFamily(keyFamily(task.shareKey));
        if (push_family) {
            ++stats_.mergedPushdowns;
            ins_.mergedPushdowns->add(1);
        } else {
            ++stats_.sharedFetches;
            ins_.sharedFetches->add(1);
        }
        if (task.nodeId != coordinator) {
            uint64_t saved = task.requestBytes + task.replyBytes;
            stats_.wireBytesSaved += saved;
            ins_.wireBytesSaved->add(saved);
        }
        double coord_work = task.consumerSelectWork > 0.0
                                ? task.consumerSelectWork
                                : task.coordCpuWork;
        plan.outcome.cpuSeconds += coord_work / cpu_rate;
        uint64_t wait_span = tracer.beginSpan(
            "sched_wait", "\"key\": \"" + task.shareKey + "\"");
        sim::StorageNode *coord = &cluster.node(coordinator);
        auto complete = [&tracer, coord, coord_work, join, wait_span]() {
            tracer.endSpan(wait_span);
            coord->cpu().acquire(coord_work,
                                 [join]() { join->signal(); });
        };
        if (entry.done)
            complete();
        else
            entry.waiters.push_back(std::move(complete));
    };

    // Drive each query's two-stage flow; all queries are admitted at
    // the same simulated instant and progress concurrently.
    for (size_t qi = 0; qi < plans.size(); ++qi) {
        auto plan = plans[qi];
        sim::StorageNode *client = &cluster.client();
        sim::StorageNode *coord = &cluster.node(plan->coordinatorId);

        auto spans = std::make_shared<std::array<uint64_t, 3>>();
        (*spans)[0] = tracer.beginSpan(
            "query", "\"batch_index\": " + std::to_string(qi) +
                         ", \"filter_tasks\": " +
                         std::to_string(plan->filterTasks.size()) +
                         ", \"projection_tasks\": " +
                         std::to_string(plan->projectionTasks.size()));

        auto finish = [this, &tracer, &cluster, &outcomes, &done_count,
                       ctx, plan, qi, client, coord, batch_start, spans,
                       batch_span, total = plans.size()]() {
            tracer.endSpan((*spans)[2]);
            cluster.transfer(
                *coord, *client, plan->clientReplyBytes,
                [this, &tracer, &cluster, &outcomes, &done_count, ctx,
                 plan, qi, batch_start, spans, batch_span, total]() {
                    plan->outcome.latencySeconds =
                        cluster.engine().now() - batch_start;
                    store_.queryLatencyHistogram().observe(
                        plan->outcome.latencySeconds);
                    store_.accountClientExchange(plan->clientReplyBytes,
                                                 plan->outcome);
                    tracer.endSpan((*spans)[0]);
                    outcomes[qi] = plan->outcome;
                    if (++done_count == total) {
                        ctx->queriesDone = done_count;
                        stats_.makespanSeconds =
                            cluster.engine().now() - batch_start;
                        tracer.endSpan(batch_span);
                    }
                });
        };

        auto projection_stage = [this, &tracer, plan, demand, finish,
                                 coord, spans]() {
            tracer.endSpan((*spans)[1]);
            (*spans)[2] = tracer.beginSpan("projection_stage");
            coord->cpu().acquire(
                plan->interStageCoordWork, [this, plan, demand,
                                            finish]() {
                    auto join = std::make_shared<sim::Join>(
                        plan->projectionTasks.size(), finish);
                    for (const auto &task : plan->projectionTasks)
                        demand(task, *plan, true, join);
                });
        };

        auto filter_stage = [this, &tracer, plan, demand,
                             projection_stage, spans]() {
            (*spans)[1] = tracer.beginSpan("filter_stage");
            auto join = std::make_shared<sim::Join>(
                plan->filterTasks.size(), projection_stage);
            for (const auto &task : plan->filterTasks)
                demand(task, *plan, false, join);
        };

        auto start_plan = [this, &cluster, plan, filter_stage]() {
            if (plan->extraLatencySeconds > 0.0)
                cluster.engine().schedule(plan->extraLatencySeconds,
                                          filter_stage);
            else
                filter_stage();
        };

        cluster.transfer(*client, *coord,
                         store_.options().clientRequestBytes,
                         start_plan);
    }

    cluster.engine().run();
    FUSION_CHECK_MSG(done_count == plans.size(),
                     "shared-scan batch did not complete");
    return outcomes;
}

Result<std::vector<QueryOutcome>>
SharedScanScheduler::runBatchSql(const std::vector<std::string> &statements)
{
    std::vector<query::Query> batch;
    batch.reserve(statements.size());
    for (const auto &sql : statements) {
        auto q = query::parseQuery(sql);
        if (!q.isOk())
            return q.status();
        batch.push_back(std::move(q.value()));
    }
    return runBatch(batch);
}

} // namespace fusion::sched
