/**
 * @file
 * Per-store observability bundle: a metrics registry, a simulated-time
 * span tracer and the EXPLAIN toggle, owned by each ObjectStore so two
 * stores on independent simulated clusters never mix counters or
 * timestamps. Process-wide instruments (thread pool, EC kernel
 * dispatch) live in obs::MetricsRegistry::global() instead.
 */
#ifndef FUSION_OBS_OBSERVABILITY_H
#define FUSION_OBS_OBSERVABILITY_H

#include "explain.h"
#include "metrics.h"
#include "timeseries.h"
#include "trace.h"

namespace fusion::obs {

/** See file comment. */
struct Observability {
    MetricsRegistry metrics;
    Tracer tracer;
    /** Windowed telemetry: node health, chunk heat, flight recorder. */
    Telemetry telemetry;
    /** When true, FusionStore::query fills QueryOutcome::explain. */
    bool explainEnabled = false;
};

} // namespace fusion::obs

#endif // FUSION_OBS_OBSERVABILITY_H
