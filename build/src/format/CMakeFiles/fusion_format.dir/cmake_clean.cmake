file(REMOVE_RECURSE
  "CMakeFiles/fusion_format.dir/bloom.cc.o"
  "CMakeFiles/fusion_format.dir/bloom.cc.o.d"
  "CMakeFiles/fusion_format.dir/chunk_codec.cc.o"
  "CMakeFiles/fusion_format.dir/chunk_codec.cc.o.d"
  "CMakeFiles/fusion_format.dir/column.cc.o"
  "CMakeFiles/fusion_format.dir/column.cc.o.d"
  "CMakeFiles/fusion_format.dir/csv.cc.o"
  "CMakeFiles/fusion_format.dir/csv.cc.o.d"
  "CMakeFiles/fusion_format.dir/metadata.cc.o"
  "CMakeFiles/fusion_format.dir/metadata.cc.o.d"
  "CMakeFiles/fusion_format.dir/reader.cc.o"
  "CMakeFiles/fusion_format.dir/reader.cc.o.d"
  "CMakeFiles/fusion_format.dir/types.cc.o"
  "CMakeFiles/fusion_format.dir/types.cc.o.d"
  "CMakeFiles/fusion_format.dir/value.cc.o"
  "CMakeFiles/fusion_format.dir/value.cc.o.d"
  "CMakeFiles/fusion_format.dir/writer.cc.o"
  "CMakeFiles/fusion_format.dir/writer.cc.o.d"
  "libfusion_format.a"
  "libfusion_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
