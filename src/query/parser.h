/**
 * @file
 * A small SQL parser for the S3-Select-like dialect Fusion supports:
 *
 *   SELECT <item> [, <item>]* FROM <table> [WHERE <pred> [AND <pred>]*]
 *   item  := * | column | COUNT(*) | COUNT(col) | SUM(col) | AVG(col)
 *          | MIN(col) | MAX(col)
 *   pred  := column (< | <= | > | >= | = | == | != | <>) literal
 *   literal := integer | float | 'single-quoted string'
 *
 * Keywords are case-insensitive; identifiers are [A-Za-z_][A-Za-z0-9_]*.
 * `SELECT *` is expanded by the store against the table schema.
 */
#ifndef FUSION_QUERY_PARSER_H
#define FUSION_QUERY_PARSER_H

#include <string>

#include "ast.h"

namespace fusion::query {

/** Marker projection column produced by `SELECT *`. */
inline constexpr const char *kStarProjection = "*";

/** Parses SQL text into a Query; kInvalidArgument with a position hint
 *  on syntax errors. */
Result<Query> parseQuery(const std::string &sql);

} // namespace fusion::query

#endif // FUSION_QUERY_PARSER_H
