# Empty dependencies file for bench_fig16a_overhead_sweep.
# This may be replaced when dependencies are built.
