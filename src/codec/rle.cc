#include "rle.h"

#include "bitpack.h"
#include "common/serde.h"

namespace fusion::codec {

namespace {

// Runs of at least this many equal values are emitted as RLE; shorter
// stretches accumulate into bit-packed literal groups.
constexpr size_t kMinRleRun = 8;
// Cap literal runs so a corrupt header cannot demand a huge allocation.
constexpr size_t kMaxLiteralRun = 1 << 24;

void
putRleValue(Bytes &out, uint64_t value, int width)
{
    int nbytes = (width + 7) / 8;
    for (int i = 0; i < nbytes; ++i)
        out.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

void
emitLiterals(Bytes &out, const std::vector<uint64_t> &buf, int width)
{
    if (buf.empty())
        return;
    BinaryWriter writer(out);
    writer.putVarU64((static_cast<uint64_t>(buf.size()) << 1) | 1);
    BitPacker packer(out, width);
    for (uint64_t v : buf)
        packer.put(v);
    packer.flush();
}

} // namespace

Bytes
rleEncode(const std::vector<uint64_t> &values, int width)
{
    Bytes out;
    BinaryWriter writer(out);
    std::vector<uint64_t> literals;

    size_t i = 0;
    const size_t n = values.size();
    while (i < n) {
        // Measure the run of equal values starting at i.
        size_t run = 1;
        while (i + run < n && values[i + run] == values[i])
            ++run;
        if (run >= kMinRleRun) {
            emitLiterals(out, literals, width);
            literals.clear();
            writer.putVarU64(run << 1);
            putRleValue(out, values[i], width);
            i += run;
        } else {
            for (size_t j = 0; j < run; ++j)
                literals.push_back(values[i + j]);
            i += run;
        }
    }
    emitLiterals(out, literals, width);
    return out;
}

Result<std::vector<uint64_t>>
rleDecode(Slice input, int width, size_t count)
{
    std::vector<uint64_t> out;
    out.reserve(count);
    BinaryReader reader(input);
    int value_bytes = (width + 7) / 8;

    while (out.size() < count) {
        auto header = reader.getVarU64();
        if (!header.isOk())
            return header.status();
        uint64_t h = header.value();
        if (h & 1) {
            uint64_t literals = h >> 1;
            if (literals == 0 || literals > kMaxLiteralRun)
                return Status::corruption("bad RLE literal count");
            if (literals > count - out.size())
                return Status::corruption("RLE literals exceed value count");
            size_t packed_bytes = (literals * width + 7) / 8;
            auto raw = reader.getRaw(packed_bytes);
            if (!raw.isOk())
                return raw.status();
            BitUnpacker unpacker(raw.value(), width);
            FUSION_RETURN_IF_ERROR(unpacker.getMany(literals, out));
        } else {
            uint64_t run = h >> 1;
            if (run == 0)
                return Status::corruption("zero-length RLE run");
            if (run > count - out.size())
                return Status::corruption("RLE run exceeds value count");
            uint64_t value = 0;
            for (int b = 0; b < value_bytes; ++b) {
                auto byte = reader.getU8();
                if (!byte.isOk())
                    return byte.status();
                value |= static_cast<uint64_t>(byte.value()) << (8 * b);
            }
            out.insert(out.end(), run, value);
        }
    }
    return out;
}

} // namespace fusion::codec
