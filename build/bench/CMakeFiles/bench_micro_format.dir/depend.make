# Empty dependencies file for bench_micro_format.
# This may be replaced when dependencies are built.
