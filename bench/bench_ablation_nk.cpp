/**
 * @file
 * Ablation A1 (beyond the paper's figures): FAC vs fixed vs padding
 * storage overhead across erasure-code configurations (6,4), (9,6) and
 * (14,10) on the paper-scale lineitem model. The paper reports RS(9,6)
 * throughout and asserts RS(14,10) behaves alike (§6.3).
 */
#include "benchutil/harness.h"
#include "fac/constructors.h"
#include "workload/chunk_models.h"

using namespace fusion;
using namespace fusion::benchutil;

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    banner("Ablation A1", "layout overhead across (n, k) configurations");

    auto model = workload::lineitemChunkModel(21);
    TablePrinter table({"code", "fac overhead (%)", "fac split (%)",
                        "padding overhead (%)", "fixed overhead (%)",
                        "fixed split (%)"});

    struct Config {
        size_t n, k;
    };
    for (auto [n, k] : {Config{6, 4}, Config{9, 6}, Config{14, 10}}) {
        fac::ObjectLayout fac_layout = fac::buildFacLayout(model, n, k);
        fac::ObjectLayout padding =
            fac::buildPaddingLayout(model, n, k, 100'000'000);
        fac::ObjectLayout fixed =
            fac::buildFixedLayout(model, n, k, 100'000'000);
        table.addRow({fmt("RS(%zu,%zu)", n, k),
                      fmt("%.2f", fac_layout.overheadVsOptimal() * 100),
                      fmt("%.1f", fac_layout.splitFraction(model.size()) *
                                      100),
                      fmt("%.1f", padding.overheadVsOptimal() * 100),
                      fmt("%.2f", fixed.overheadVsOptimal() * 100),
                      fmt("%.1f",
                          fixed.splitFraction(model.size()) * 100)});
    }
    table.print();
    std::printf("\nexpected: FAC never splits and stays near optimal for "
                "every (n,k); fixed is near optimal but splits; padding "
                "avoids splits at high cost\n");
    return 0;
}
