file(REMOVE_RECURSE
  "CMakeFiles/fusion_ec.dir/gf256.cc.o"
  "CMakeFiles/fusion_ec.dir/gf256.cc.o.d"
  "CMakeFiles/fusion_ec.dir/lrc.cc.o"
  "CMakeFiles/fusion_ec.dir/lrc.cc.o.d"
  "CMakeFiles/fusion_ec.dir/matrix.cc.o"
  "CMakeFiles/fusion_ec.dir/matrix.cc.o.d"
  "CMakeFiles/fusion_ec.dir/reed_solomon.cc.o"
  "CMakeFiles/fusion_ec.dir/reed_solomon.cc.o.d"
  "libfusion_ec.a"
  "libfusion_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
