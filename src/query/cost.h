/**
 * @file
 * The Pushdown Cost Estimator (paper §4.3). After the filter stage the
 * coordinator knows the exact query selectivity; each candidate
 * projection chunk's compressibility comes from footer metadata. The
 * Cost Equation pushes a projection down only when
 *
 *     selectivity x compressibility < 1
 *
 * i.e. when the uncompressed projected values are smaller on the wire
 * than the compressed chunk would be.
 */
#ifndef FUSION_QUERY_COST_H
#define FUSION_QUERY_COST_H

#include <cstdint>

#include "format/metadata.h"

namespace fusion::query {

/** Outcome of the cost model for one chunk's projection. */
struct PushdownDecision {
    bool push = true;
    double selectivity = 0.0;
    double compressibility = 1.0;

    /** The Cost Equation's left-hand side. */
    double product() const { return selectivity * compressibility; }
};

/** Applies the Cost Equation to one chunk. */
inline PushdownDecision
decideProjectionPushdown(double selectivity, const format::ChunkMeta &chunk)
{
    PushdownDecision decision;
    decision.selectivity = selectivity;
    decision.compressibility = chunk.compressibility();
    decision.push = decision.product() < 1.0;
    return decision;
}

/** Estimated wire bytes of a pushed-down projection reply. */
inline uint64_t
estimateProjectionReplyBytes(double selectivity,
                             const format::ChunkMeta &chunk)
{
    return static_cast<uint64_t>(selectivity *
                                 static_cast<double>(chunk.plainSize));
}

} // namespace fusion::query

#endif // FUSION_QUERY_COST_H
