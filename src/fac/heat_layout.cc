/**
 * @file
 * Heat-partitioned FAC construction for compaction-time re-stripe: run
 * Algorithm 1 separately over the hot and cold chunk sets and
 * concatenate the stripes (hot first). Each partition keeps FAC's
 * never-split guarantee, so every hot chunk stays intact on one node —
 * pushdown-eligible — and hot chunks share stripes (and therefore node
 * groups) with each other instead of with cold data.
 */
#include <algorithm>
#include <iterator>

#include "constructors.h"

namespace fusion::fac {

ObjectLayout
buildHeatFacLayout(const std::vector<ChunkExtent> &chunks, size_t n,
                   size_t k, const std::vector<uint32_t> &hot_chunk_ids)
{
    std::vector<ChunkExtent> hot, cold;
    for (const ChunkExtent &chunk : chunks) {
        bool is_hot = std::find(hot_chunk_ids.begin(), hot_chunk_ids.end(),
                                chunk.id) != hot_chunk_ids.end();
        (is_hot ? hot : cold).push_back(chunk);
    }
    if (hot.empty() || cold.empty())
        return buildFacLayout(chunks, n, k);

    ObjectLayout hot_layout = buildFacLayout(hot, n, k);
    ObjectLayout cold_layout = buildFacLayout(cold, n, k);

    ObjectLayout out;
    out.kind = LayoutKind::kFac;
    out.n = n;
    out.k = k;
    out.stripes = std::move(hot_layout.stripes);
    out.stripes.insert(out.stripes.end(),
                       std::make_move_iterator(cold_layout.stripes.begin()),
                       std::make_move_iterator(cold_layout.stripes.end()));
    out.dataBytes = hot_layout.dataBytes + cold_layout.dataBytes;
    out.paddingBytes = hot_layout.paddingBytes + cold_layout.paddingBytes;
    return out;
}

} // namespace fusion::fac
