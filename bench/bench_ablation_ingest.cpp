/**
 * @file
 * Ablation A7: query latency under concurrent ingest. FAC runs on the
 * Put critical path (§4.2); the paper shows its layout computation is
 * negligible (microseconds against tens of seconds of upload). Here we
 * run the 1%-selectivity microbenchmark while a writer continuously
 * uploads fresh objects through the simulated cluster, and compare
 * query latency against the idle-cluster case — plus the measured FAC
 * layout time as a fraction of the simulated Put.
 */
#include "benchutil/rigs.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

using namespace fusion;
using namespace fusion::benchutil;

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    banner("Ablation A7", "queries under concurrent ingest");

    query::Query q_template;
    SampleHistogram idle, busy, put_latency;
    double layout_seconds = 0.0;
    double put_seconds = 0.0;

    for (bool with_ingest : {false, true}) {
        RigOptions options;
        options.rows = 60000;
        options.copies = 4;
        StorePair pair = makeStorePair(Dataset::kLineitem, options);
        query::Query q = workload::microbenchQuery(
            "x", "l_extendedprice",
            pair.table.column(workload::kExtendedPrice), 0.01);

        size_t puts_done = 0;
        std::function<void()> keep_putting = [&]() {
            if (!with_ingest || puts_done >= 40)
                return;
            std::string name = "ingest#" + std::to_string(puts_done++);
            pair.fusion->putAsync(
                name, pair.file.bytes,
                [&](Result<store::PutResult> result) {
                    FUSION_CHECK(result.isOk());
                    put_latency.add(result.value().simulatedPutSeconds);
                    layout_seconds += result.value().layoutSeconds;
                    put_seconds += result.value().simulatedPutSeconds;
                    keep_putting();
                });
        };
        keep_putting();

        RunConfig config;
        config.totalQueries = 300;
        RunStats stats =
            runClosedLoop(*pair.fusion, config,
                          [&](size_t i) { return pair.onCopy(q, i); });
        (with_ingest ? busy : idle) = stats.latency;
    }

    TablePrinter table({"condition", "query p50", "query p99"});
    table.addRow({"idle cluster", formatSeconds(idle.p50()),
                  formatSeconds(idle.p99())});
    table.addRow({"40 concurrent puts", formatSeconds(busy.p50()),
                  formatSeconds(busy.p99())});
    table.print();

    std::printf("\nput p50 %s over the simulated cluster; FAC layout "
                "computation totalled %s = %.4f%% of simulated put time "
                "(paper: 0.0015%% on real hardware)\n",
                formatSeconds(put_latency.p50()).c_str(),
                formatSeconds(layout_seconds).c_str(),
                layout_seconds / put_seconds * 100.0);
    std::printf("expected: ingest inflates query tails via shared NICs "
                "and disks, while the FAC layout step itself is "
                "invisible\n");
    return 0;
}
