/**
 * @file
 * File footer metadata for the fpax format: per-chunk byte extents,
 * sizes and min/max statistics (zone maps), per-row-group layout, and
 * the schema. This is the information FAC uses to find column chunk
 * boundaries, and the query engine uses for chunk skipping and the
 * compressibility term of the Cost Equation.
 */
#ifndef FUSION_FORMAT_METADATA_H
#define FUSION_FORMAT_METADATA_H

#include <cstdint>
#include <vector>

#include "bloom.h"
#include "common/serde.h"
#include "types.h"
#include "value.h"

namespace fusion::format {

/** How a chunk's values are encoded before block compression. */
enum class ChunkEncoding : uint8_t {
    kPlain = 0,
    kDictionary = 1,
};

/** Footer record describing one column chunk. */
struct ChunkMeta {
    uint32_t rowGroupId = 0;
    uint32_t columnId = 0;
    uint64_t offset = 0;     // byte offset of the chunk within the file
    uint64_t storedSize = 0; // bytes occupied in the file (compressed)
    uint64_t plainSize = 0;  // plain-encoded (uncompressed) byte size
    uint64_t valueCount = 0;
    ChunkEncoding encoding = ChunkEncoding::kPlain;
    Value minValue;
    Value maxValue;
    /** Equality-pruning filter over the chunk's values (may be empty,
     *  e.g. for files written with Bloom filters disabled). */
    BloomFilter bloom;

    /**
     * Ratio of uncompressed to stored size — the "compressibility" term
     * of the paper's Cost Equation (§4.3).
     */
    double
    compressibility() const
    {
        return storedSize == 0
                   ? 1.0
                   : static_cast<double>(plainSize) /
                         static_cast<double>(storedSize);
    }

    void serialize(BinaryWriter &writer) const;
    static Result<ChunkMeta> deserialize(BinaryReader &reader);

  private:
    Bytes bloomBytes() const;
};

/** Footer record describing one row group. */
struct RowGroupMeta {
    uint64_t numRows = 0;
    std::vector<ChunkMeta> chunks; // one per column, in column order
};

/** Parsed footer of an fpax file. */
struct FileMetadata {
    Schema schema;
    uint64_t numRows = 0;
    std::vector<RowGroupMeta> rowGroups;

    size_t numRowGroups() const { return rowGroups.size(); }

    const ChunkMeta &
    chunk(size_t row_group, size_t column) const
    {
        return rowGroups.at(row_group).chunks.at(column);
    }

    /** All chunks of all row groups, in file order. */
    std::vector<const ChunkMeta *> allChunks() const;

    /** Total chunk count (= row groups x columns). */
    size_t numChunks() const;

    Bytes serialize() const;
    static Result<FileMetadata> deserialize(Slice bytes);
};

} // namespace fusion::format

#endif // FUSION_FORMAT_METADATA_H
