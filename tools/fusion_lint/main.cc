/**
 * @file
 * fusion-lint CLI. Usage:
 *
 *   fusion_lint [--report=FILE] [--list-rules] PATH...
 *
 * Each PATH is a file or a directory scanned recursively for
 * .h/.cc/.cpp sources. Findings print as `path:line: [rule] message`
 * and the exit code is 1 when any unsuppressed finding exists.
 * --report writes the machine-readable JSON report.
 *
 * The scan is two-pass: pass 1 collects every variable declared as an
 * unordered container across all files (so members declared in a
 * header are recognized when a .cc iterates them); pass 2 lints.
 */
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

namespace fs = std::filesystem;
using namespace fusion::lint;

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> roots;
    std::string reportPath;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const auto &r : ruleNames())
                std::cout << r << "\n";
            return 0;
        }
        if (arg.rfind("--report=", 0) == 0) {
            reportPath = arg.substr(9);
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: fusion_lint [--report=FILE] [--list-rules] "
                         "PATH...\n";
            return 0;
        } else {
            roots.push_back(arg);
        }
    }
    if (roots.empty()) {
        std::cerr << "fusion_lint: no paths given (try --help)\n";
        return 2;
    }

    std::vector<std::string> files;
    for (const std::string &root : roots) {
        fs::path p(root);
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(p, ec))
                if (entry.is_regular_file() && isSourceFile(entry.path()))
                    files.push_back(entry.path().generic_string());
        } else if (fs::is_regular_file(p, ec)) {
            files.push_back(p.generic_string());
        } else {
            std::cerr << "fusion_lint: no such file or directory: " << root
                      << "\n";
            return 2;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    const Options options = Options::defaults();

    // Pass 1: unordered-container declarations across the whole scan set.
    std::vector<std::pair<std::string, std::string>> contents;
    std::vector<std::string> unorderedNames;
    contents.reserve(files.size());
    for (const std::string &file : files) {
        contents.emplace_back(file, readFile(file));
        for (auto &n : collectUnorderedNames(contents.back().second))
            unorderedNames.push_back(std::move(n));
    }
    std::sort(unorderedNames.begin(), unorderedNames.end());
    unorderedNames.erase(
        std::unique(unorderedNames.begin(), unorderedNames.end()),
        unorderedNames.end());

    // Pass 2: lint.
    std::vector<Finding> findings;
    size_t suppressed = 0;
    for (const auto &[file, content] : contents) {
        FileReport report =
            lintSource(file, content, options, unorderedNames);
        suppressed += report.suppressed;
        for (auto &f : report.findings)
            findings.push_back(std::move(f));
    }
    std::sort(findings.begin(), findings.end());

    for (const Finding &f : findings)
        std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";

    if (!reportPath.empty()) {
        std::ofstream out(reportPath, std::ios::binary);
        out << reportJson(findings, files.size(), suppressed);
        if (!out) {
            std::cerr << "fusion_lint: cannot write report to " << reportPath
                      << "\n";
            return 2;
        }
    }

    std::cerr << "fusion_lint: scanned " << files.size() << " files, "
              << findings.size() << " finding(s), " << suppressed
              << " suppressed\n";
    return findings.empty() ? 0 : 1;
}
