/**
 * @file
 * Unit and property tests for src/ec: GF(2^8) field axioms, matrix
 * inversion, and systematic Reed-Solomon encode/reconstruct across
 * (n, k) configurations and erasure patterns.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "common/random.h"
#include "ec/gf256.h"
#include "ec/matrix.h"
#include "ec/reed_solomon.h"

namespace fusion::ec {
namespace {

TEST(Gf256Test, AdditionIsXor)
{
    const Gf256 &gf = Gf256::instance();
    EXPECT_EQ(gf.add(0x53, 0xca), 0x53 ^ 0xca);
    EXPECT_EQ(gf.add(7, 7), 0);
}

TEST(Gf256Test, MultiplicativeIdentityAndZero)
{
    const Gf256 &gf = Gf256::instance();
    for (int a = 0; a < 256; ++a) {
        EXPECT_EQ(gf.mul(static_cast<uint8_t>(a), 1), a);
        EXPECT_EQ(gf.mul(static_cast<uint8_t>(a), 0), 0);
    }
}

TEST(Gf256Test, InverseProperty)
{
    const Gf256 &gf = Gf256::instance();
    for (int a = 1; a < 256; ++a) {
        uint8_t inv = gf.inv(static_cast<uint8_t>(a));
        EXPECT_EQ(gf.mul(static_cast<uint8_t>(a), inv), 1) << "a=" << a;
    }
}

TEST(Gf256Test, MulCommutativeAssociativeSampled)
{
    const Gf256 &gf = Gf256::instance();
    Rng rng(13);
    for (int i = 0; i < 2000; ++i) {
        uint8_t a = static_cast<uint8_t>(rng.next());
        uint8_t b = static_cast<uint8_t>(rng.next());
        uint8_t c = static_cast<uint8_t>(rng.next());
        EXPECT_EQ(gf.mul(a, b), gf.mul(b, a));
        EXPECT_EQ(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
        // Distributivity over XOR addition.
        EXPECT_EQ(gf.mul(a, gf.add(b, c)),
                  gf.add(gf.mul(a, b), gf.mul(a, c)));
    }
}

TEST(Gf256Test, DivisionInvertsMultiplication)
{
    const Gf256 &gf = Gf256::instance();
    Rng rng(14);
    for (int i = 0; i < 2000; ++i) {
        uint8_t a = static_cast<uint8_t>(rng.next());
        uint8_t b = static_cast<uint8_t>(rng.uniformInt(1, 255));
        EXPECT_EQ(gf.div(gf.mul(a, b), b), a);
    }
}

TEST(Gf256Test, PowMatchesRepeatedMul)
{
    const Gf256 &gf = Gf256::instance();
    uint8_t acc = 1;
    for (unsigned e = 0; e < 300; ++e) {
        EXPECT_EQ(gf.pow(3, e), acc) << "e=" << e;
        acc = gf.mul(acc, 3);
    }
}

TEST(Gf256Test, MulAccumulate)
{
    const Gf256 &gf = Gf256::instance();
    Bytes dst(64, 0), src(64);
    Rng rng(15);
    for (auto &b : src)
        b = static_cast<uint8_t>(rng.next());
    gf.mulAccumulate(dst.data(), src.data(), src.size(), 0x1d);
    for (size_t i = 0; i < src.size(); ++i)
        EXPECT_EQ(dst[i], gf.mul(src[i], 0x1d));
    // Accumulating again with the same coefficient cancels (XOR).
    gf.mulAccumulate(dst.data(), src.data(), src.size(), 0x1d);
    for (uint8_t b : dst)
        EXPECT_EQ(b, 0);
}

TEST(MatrixTest, IdentityMultiplication)
{
    Matrix m = Matrix::vandermonde(4, 4);
    Matrix id = Matrix::identity(4);
    EXPECT_TRUE(m.multiply(id) == m);
    EXPECT_TRUE(id.multiply(m) == m);
}

TEST(MatrixTest, InverseRoundTrip)
{
    for (size_t size : {1u, 2u, 3u, 6u, 10u}) {
        Matrix m = Matrix::vandermonde(size, size);
        auto inv = m.inverse();
        ASSERT_TRUE(inv.isOk()) << "n=" << size;
        EXPECT_TRUE(m.multiply(inv.value()) == Matrix::identity(size));
    }
}

TEST(MatrixTest, SingularDetected)
{
    Matrix m(2, 2);
    m.set(0, 0, 1);
    m.set(0, 1, 2);
    m.set(1, 0, 1);
    m.set(1, 1, 2); // duplicate row
    EXPECT_FALSE(m.inverse().isOk());
}

TEST(MatrixTest, SelectRows)
{
    Matrix m = Matrix::vandermonde(5, 3);
    Matrix sel = m.selectRows({4, 0});
    EXPECT_EQ(sel.rows(), 2u);
    for (size_t c = 0; c < 3; ++c) {
        EXPECT_EQ(sel.at(0, c), m.at(4, c));
        EXPECT_EQ(sel.at(1, c), m.at(0, c));
    }
}

TEST(ReedSolomonTest, CreateValidatesParameters)
{
    EXPECT_FALSE(ReedSolomon::create(4, 4).isOk());
    EXPECT_FALSE(ReedSolomon::create(4, 0).isOk());
    EXPECT_FALSE(ReedSolomon::create(300, 100).isOk());
    EXPECT_TRUE(ReedSolomon::create(9, 6).isOk());
}

TEST(ReedSolomonTest, SystematicTopIsIdentity)
{
    auto rs = ReedSolomon::create(9, 6);
    ASSERT_TRUE(rs.isOk());
    const Matrix &m = rs.value().encodingMatrix();
    for (size_t r = 0; r < 6; ++r)
        for (size_t c = 0; c < 6; ++c)
            EXPECT_EQ(m.at(r, c), r == c ? 1 : 0);
}

struct RsConfig {
    size_t n, k;
};

class RsRoundTrip : public ::testing::TestWithParam<RsConfig>
{
};

std::vector<Bytes>
randomBlocks(size_t k, size_t size, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Bytes> blocks(k, Bytes(size));
    for (auto &block : blocks)
        for (auto &b : block)
            b = static_cast<uint8_t>(rng.next());
    return blocks;
}

TEST_P(RsRoundTrip, AllErasurePatternsUpToMaxTolerated)
{
    const auto [n, k] = GetParam();
    auto rs_r = ReedSolomon::create(n, k);
    ASSERT_TRUE(rs_r.isOk());
    const ReedSolomon &rs = rs_r.value();

    const size_t block_size = 256;
    auto data = randomBlocks(k, block_size, 1234 + n * 100 + k);
    auto stripe = encodeStripe(rs, data);
    ASSERT_TRUE(stripe.isOk());
    ASSERT_EQ(stripe.value().blocks.size(), n);

    // Erase random subsets of size up to (n - k); verify recovery.
    Rng rng(99);
    for (int trial = 0; trial < 30; ++trial) {
        size_t erasures = 1 + rng.pickIndex(n - k);
        std::vector<std::optional<Bytes>> shards;
        for (const auto &block : stripe.value().blocks)
            shards.emplace_back(block);
        std::vector<size_t> ids(n);
        std::iota(ids.begin(), ids.end(), 0);
        rng.shuffle(ids);
        for (size_t e = 0; e < erasures; ++e)
            shards[ids[e]] = std::nullopt;

        auto recovered = recoverStripeData(rs, shards,
                                           stripe.value().dataSizes,
                                           stripe.value().blockSize);
        ASSERT_TRUE(recovered.isOk()) << recovered.status().toString();
        for (size_t i = 0; i < k; ++i)
            EXPECT_EQ(recovered.value()[i], data[i]);
    }
}

TEST_P(RsRoundTrip, TooManyErasuresFails)
{
    const auto [n, k] = GetParam();
    auto rs_r = ReedSolomon::create(n, k);
    ASSERT_TRUE(rs_r.isOk());
    const ReedSolomon &rs = rs_r.value();

    auto data = randomBlocks(k, 64, 7);
    auto stripe = encodeStripe(rs, data);
    ASSERT_TRUE(stripe.isOk());
    std::vector<std::optional<Bytes>> shards;
    for (const auto &block : stripe.value().blocks)
        shards.emplace_back(block);
    for (size_t e = 0; e <= n - k; ++e)
        shards[e] = std::nullopt; // one more than tolerated
    auto recovered = recoverStripeData(rs, shards, stripe.value().dataSizes,
                                       stripe.value().blockSize);
    EXPECT_EQ(recovered.status().code(), StatusCode::kUnavailable);
}

INSTANTIATE_TEST_SUITE_P(Configs, RsRoundTrip,
                         ::testing::Values(RsConfig{3, 2}, RsConfig{6, 4},
                                           RsConfig{9, 6}, RsConfig{14, 10},
                                           RsConfig{16, 12}),
                         [](const auto &info) {
                             return "n" + std::to_string(info.param.n) +
                                    "k" + std::to_string(info.param.k);
                         });

TEST(ReedSolomonTest, VariableSizeBlocksZeroExtended)
{
    auto rs_r = ReedSolomon::create(9, 6);
    ASSERT_TRUE(rs_r.isOk());
    const ReedSolomon &rs = rs_r.value();

    // Data blocks of very different sizes, like a FAC stripe.
    std::vector<Bytes> data;
    Rng rng(55);
    for (size_t size : {500u, 100u, 470u, 30u, 499u, 1u}) {
        Bytes b(size);
        for (auto &byte : b)
            byte = static_cast<uint8_t>(rng.next());
        data.push_back(std::move(b));
    }
    auto stripe = encodeStripe(rs, data);
    ASSERT_TRUE(stripe.isOk());
    EXPECT_EQ(stripe.value().blockSize, 500u);
    // Parity blocks all have the stripe block size.
    for (size_t p = 6; p < 9; ++p)
        EXPECT_EQ(stripe.value().blocks[p].size(), 500u);
    EXPECT_EQ(stripe.value().parityBytes(), 3 * 500u);

    // Lose the largest data block, a tiny one, and one parity block.
    std::vector<std::optional<Bytes>> shards;
    for (const auto &block : stripe.value().blocks)
        shards.emplace_back(block);
    shards[0] = std::nullopt;
    shards[5] = std::nullopt;
    shards[7] = std::nullopt;
    auto recovered = recoverStripeData(rs, shards, stripe.value().dataSizes,
                                       stripe.value().blockSize);
    ASSERT_TRUE(recovered.isOk()) << recovered.status().toString();
    for (size_t i = 0; i < 6; ++i)
        EXPECT_EQ(recovered.value()[i], data[i]) << "block " << i;
}

TEST(ReedSolomonTest, ParityOnlySurvivorsRecoverData)
{
    auto rs_r = ReedSolomon::create(6, 3);
    ASSERT_TRUE(rs_r.isOk());
    const ReedSolomon &rs = rs_r.value();
    auto data = randomBlocks(3, 128, 42);
    auto stripe = encodeStripe(rs, data);
    ASSERT_TRUE(stripe.isOk());

    // All data blocks lost; only parity survives.
    std::vector<std::optional<Bytes>> shards(6);
    for (size_t p = 3; p < 6; ++p)
        shards[p] = stripe.value().blocks[p];
    auto recovered = recoverStripeData(rs, shards, stripe.value().dataSizes,
                                       stripe.value().blockSize);
    ASSERT_TRUE(recovered.isOk());
    for (size_t i = 0; i < 3; ++i)
        EXPECT_EQ(recovered.value()[i], data[i]);
}

TEST(ReedSolomonTest, ReconstructRebuildsParityToo)
{
    auto rs_r = ReedSolomon::create(9, 6);
    ASSERT_TRUE(rs_r.isOk());
    const ReedSolomon &rs = rs_r.value();
    auto data = randomBlocks(6, 64, 4242);
    auto stripe = encodeStripe(rs, data);
    ASSERT_TRUE(stripe.isOk());

    std::vector<std::optional<Bytes>> shards;
    for (const auto &block : stripe.value().blocks)
        shards.emplace_back(block);
    shards[8] = std::nullopt; // lose a parity block only
    ASSERT_TRUE(rs.reconstruct(shards, 64).isOk());
    EXPECT_EQ(*shards[8], stripe.value().blocks[8]);
}

TEST(ReedSolomonTest, EmptyDataBlocksSupported)
{
    // FAC tail stripes may carry zero-length implicit blocks.
    auto rs_r = ReedSolomon::create(5, 3);
    ASSERT_TRUE(rs_r.isOk());
    std::vector<Bytes> data = {Bytes{1, 2, 3, 4}, Bytes{}, Bytes{9}};
    auto stripe = encodeStripe(rs_r.value(), data);
    ASSERT_TRUE(stripe.isOk());
    EXPECT_EQ(stripe.value().blockSize, 4u);

    std::vector<std::optional<Bytes>> shards;
    for (const auto &block : stripe.value().blocks)
        shards.emplace_back(block);
    shards[0] = std::nullopt;
    shards[2] = std::nullopt;
    auto recovered = recoverStripeData(rs_r.value(), shards,
                                       stripe.value().dataSizes,
                                       stripe.value().blockSize);
    ASSERT_TRUE(recovered.isOk());
    EXPECT_EQ(recovered.value()[0], data[0]);
    EXPECT_EQ(recovered.value()[1], data[1]);
    EXPECT_EQ(recovered.value()[2], data[2]);
}


TEST(MatrixTest, SelectIndependentRows)
{
    // Vandermonde rows are maximally independent: any k of them work.
    Matrix m = Matrix::vandermonde(6, 3);
    auto rows = m.selectIndependentRows({5, 4, 3, 2, 1, 0});
    ASSERT_TRUE(rows.isOk());
    EXPECT_EQ(rows.value().size(), 3u);
    EXPECT_TRUE(m.selectRows(rows.value()).inverse().isOk());

    // A dependent candidate set is rejected.
    Matrix dep(3, 2);
    dep.set(0, 0, 1);
    dep.set(1, 0, 2); // scalar multiple of row 0
    dep.set(2, 0, 3);
    EXPECT_FALSE(dep.selectIndependentRows({0, 1, 2}).isOk());

    // Dependent rows are skipped in favour of later independent ones.
    Matrix mixed(3, 2);
    mixed.set(0, 0, 1);
    mixed.set(1, 0, 1); // duplicate of row 0
    mixed.set(2, 1, 1);
    auto picked = mixed.selectIndependentRows({0, 1, 2});
    ASSERT_TRUE(picked.isOk());
    EXPECT_EQ(picked.value(), (std::vector<size_t>{0, 2}));
}

TEST(ReedSolomonTest, RandomVariableSizeStripesSweep)
{
    auto rs = ReedSolomon::create(9, 6).value();
    Rng rng(777);
    for (int trial = 0; trial < 25; ++trial) {
        std::vector<Bytes> data(6);
        for (auto &block : data) {
            block.resize(rng.uniformInt(0, 4096));
            for (auto &b : block)
                b = static_cast<uint8_t>(rng.next());
        }
        auto stripe = encodeStripe(rs, data);
        ASSERT_TRUE(stripe.isOk());

        std::vector<std::optional<Bytes>> shards;
        for (const auto &block : stripe.value().blocks)
            shards.emplace_back(block);
        std::vector<size_t> ids(9);
        std::iota(ids.begin(), ids.end(), 0);
        rng.shuffle(ids);
        for (int e = 0; e < 3; ++e)
            shards[ids[e]] = std::nullopt;
        auto recovered = recoverStripeData(rs, shards,
                                           stripe.value().dataSizes,
                                           stripe.value().blockSize);
        ASSERT_TRUE(recovered.isOk()) << "trial " << trial;
        for (size_t i = 0; i < 6; ++i)
            ASSERT_EQ(recovered.value()[i], data[i]);
    }
}

} // namespace
} // namespace fusion::ec
