/**
 * @file
 * Observability layer tests: metrics registry units (typed instruments,
 * snapshot fold/diff/merge, canonical JSON), simulated-time tracer
 * units and Chrome trace export, query EXPLAIN correctness (including
 * the health-fallback verdict on faulted nodes), and the acceptance
 * property the whole layer is built around — trace + metrics + EXPLAIN
 * output is byte-identical across FUSION_THREADS values under an
 * active crash/revive fault schedule. Ends with an overhead guard: the
 * disabled instrumentation paths must cost < 2% on the predicate
 * kernel loop.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/random.h"
#include "common/walltime.h"
#include "common/thread_pool.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/trace.h"
#include "query/eval.h"
#include "query/parser.h"
#include "sim/fault.h"
#include "store/fusion_store.h"
#include "workload/lineitem.h"

namespace fusion {
namespace {

using format::ColumnData;
using format::PhysicalType;
using format::Value;
using query::CompareOp;

// ---------------------------------------------------------------------
// Metrics registry units.
// ---------------------------------------------------------------------

TEST(MetricsTest, CounterAddValueReset)
{
    obs::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, CounterFoldsExactlyAcrossThreads)
{
    obs::Counter c;
    const size_t kThreads = 8, kAdds = 50'000;
    std::vector<std::thread> workers;
    for (size_t t = 0; t < kThreads; ++t)
        workers.emplace_back([&c]() {
            for (size_t i = 0; i < kAdds; ++i)
                c.add();
        });
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(c.value(), kThreads * kAdds);
}

TEST(MetricsTest, DoubleCounterAccumulates)
{
    obs::DoubleCounter d;
    d.add(0.25);
    d.add(1.5);
    EXPECT_DOUBLE_EQ(d.value(), 1.75);
    d.reset();
    EXPECT_DOUBLE_EQ(d.value(), 0.0);
}

TEST(MetricsTest, GaugeSetAndSetMax)
{
    obs::Gauge g;
    g.set(3.0);
    EXPECT_DOUBLE_EQ(g.value(), 3.0);
    g.setMax(2.0); // below current: no change
    EXPECT_DOUBLE_EQ(g.value(), 3.0);
    g.setMax(7.0);
    EXPECT_DOUBLE_EQ(g.value(), 7.0);
    g.set(1.0); // set always wins
    EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(MetricsTest, HistogramBucketsAndOverflow)
{
    obs::Histogram h({1.0, 10.0, 100.0});
    for (double v : {0.5, 1.0, 2.0, 50.0, 1000.0, 99.9})
        h.observe(v);
    // Bounds are inclusive upper bounds; one overflow bucket.
    std::vector<uint64_t> expect = {2, 1, 2, 1};
    EXPECT_EQ(h.bucketCounts(), expect);
    EXPECT_EQ(h.count(), 6u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsTest, ExponentialBounds)
{
    std::vector<double> expect = {1.0, 2.0, 4.0, 8.0};
    EXPECT_EQ(obs::exponentialBounds(1.0, 2.0, 4), expect);
}

TEST(MetricsTest, RegistryReturnsStableReferences)
{
    obs::MetricsRegistry registry;
    obs::Counter &a = registry.counter("x");
    obs::Counter &b = registry.counter("x");
    EXPECT_EQ(&a, &b);
    a.add(5);
    EXPECT_EQ(registry.counter("x").value(), 5u);
}

TEST(MetricsTest, SnapshotJsonIsCanonicalAndSorted)
{
    obs::MetricsRegistry registry;
    registry.counter("b.count").add(2);
    registry.doubleCounter("a.seconds").add(0.5);
    registry.gauge("c.depth").set(4.0);
    registry.histogram("d.lat", {1.0, 2.0}).observe(1.5);

    obs::MetricsSnapshot snap = registry.snapshot();
    std::string json = snap.toJson();
    // Sorted keys: a.seconds before b.count before c.depth before d.lat.
    EXPECT_LT(json.find("a.seconds"), json.find("b.count"));
    EXPECT_LT(json.find("b.count"), json.find("c.depth"));
    EXPECT_LT(json.find("c.depth"), json.find("d.lat"));
    // Byte-stable: snapshotting again yields the identical document.
    EXPECT_EQ(json, registry.snapshot().toJson());
    EXPECT_TRUE(snap == registry.snapshot());
    EXPECT_FALSE(snap.render().empty());
}

TEST(MetricsTest, SnapshotDiffAndMerge)
{
    obs::MetricsRegistry registry;
    obs::Counter &hits = registry.counter("hits");
    obs::DoubleCounter &secs = registry.doubleCounter("secs");
    obs::Histogram &lat = registry.histogram("lat", {1.0});
    registry.gauge("depth").set(2.0);

    hits.add(3);
    secs.add(1.0);
    lat.observe(0.5);
    obs::MetricsSnapshot before = registry.snapshot();

    hits.add(4);
    secs.add(0.25);
    lat.observe(2.0);
    registry.gauge("depth").set(9.0);
    obs::MetricsSnapshot after = registry.snapshot();

    obs::MetricsSnapshot delta = after.diff(before);
    EXPECT_EQ(delta.values.at("hits").count, 4u);
    EXPECT_DOUBLE_EQ(delta.values.at("secs").number, 0.25);
    // Gauges keep the later snapshot's value.
    EXPECT_DOUBLE_EQ(delta.values.at("depth").number, 9.0);
    std::vector<uint64_t> lat_delta = {0, 1};
    EXPECT_EQ(delta.values.at("lat").buckets, lat_delta);

    // merge(before, delta) reproduces `after` for additive kinds.
    obs::MetricsSnapshot merged = before;
    merged.mergeFrom(delta);
    EXPECT_TRUE(merged == after);
}

TEST(MetricsTest, DiffPassesThroughNewMetrics)
{
    obs::MetricsRegistry registry;
    obs::MetricsSnapshot before = registry.snapshot();
    registry.counter("fresh").add(7);
    obs::MetricsSnapshot delta = registry.snapshot().diff(before);
    EXPECT_EQ(delta.values.at("fresh").count, 7u);
}

// ---------------------------------------------------------------------
// Tracer units.
// ---------------------------------------------------------------------

TEST(TracerTest, DisabledTracerRecordsNothing)
{
    obs::Tracer tracer;
    EXPECT_FALSE(tracer.enabled());
    EXPECT_EQ(tracer.beginSpan("noop"), 0u);
    tracer.endSpan(0);
    tracer.instant("noop");
    {
        obs::Tracer::Scoped scoped(tracer, "noop");
    }
    EXPECT_EQ(tracer.spanCount(), 0u);
}

TEST(TracerTest, RecordsSpansOnInjectedClock)
{
    double now = 1.0;
    obs::Tracer tracer;
    tracer.setClock([&now]() { return now; });
    tracer.setEnabled(true);

    uint64_t id = tracer.beginSpan("query", "\"n\":1");
    now = 1.5;
    tracer.endSpan(id);
    tracer.instant("mark");

    ASSERT_EQ(tracer.spanCount(), 2u);
    const obs::TraceSpan &span = tracer.spans()[0];
    EXPECT_STREQ(span.name, "query");
    EXPECT_DOUBLE_EQ(span.beginSeconds, 1.0);
    EXPECT_DOUBLE_EQ(span.endSeconds, 1.5);
    EXPECT_EQ(span.args, "\"n\":1");
    const obs::TraceSpan &mark = tracer.spans()[1];
    EXPECT_DOUBLE_EQ(mark.beginSeconds, mark.endSeconds);

    auto taken = tracer.takeSpans();
    EXPECT_EQ(taken.size(), 2u);
    EXPECT_EQ(tracer.spanCount(), 0u);
    EXPECT_TRUE(tracer.enabled()); // takeSpans keeps recording on
}

/** Minimal structural validation: balanced braces/brackets outside
 *  string literals — catches truncated or mis-quoted output without a
 *  full JSON parser. */
bool
jsonBalanced(const std::string &text)
{
    int depth = 0;
    bool in_string = false, escaped = false;
    for (char c : text) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_string;
}

TEST(TracerTest, ChromeJsonHasMetadataEventsAndLanes)
{
    double now = 0.0;
    obs::Tracer tracer;
    tracer.setClock([&now]() { return now; });
    tracer.setEnabled(true);

    // Two overlapping spans must land on different lanes (tids); a
    // third beginning after both ended reuses lane 1.
    uint64_t a = tracer.beginSpan("alpha");
    now = 0.001;
    uint64_t b = tracer.beginSpan("beta");
    now = 0.002;
    tracer.endSpan(a);
    now = 0.003;
    tracer.endSpan(b);
    now = 0.004;
    uint64_t c = tracer.beginSpan("gamma");
    now = 0.005;
    tracer.endSpan(c);

    std::string json = tracer.toChromeJson("teststore");
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"teststore\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    // alpha on lane 1, overlapping beta pushed to lane 2, gamma back
    // on lane 1.
    EXPECT_NE(json.find("\"name\":\"alpha\",\"cat\":\"fusion\",\"ph\":"
                        "\"X\",\"ts\":0.000,\"dur\":2000.000,\"pid\":1,"
                        "\"tid\":1"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"beta\",\"cat\":\"fusion\",\"ph\":"
                        "\"X\",\"ts\":1000.000,\"dur\":2000.000,"
                        "\"pid\":1,\"tid\":2"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"gamma\",\"cat\":\"fusion\",\"ph\":"
                        "\"X\",\"ts\":4000.000,\"dur\":1000.000,"
                        "\"pid\":1,\"tid\":1"),
              std::string::npos);
    EXPECT_TRUE(jsonBalanced(json));
}

TEST(TracerTest, WriteTextFileRoundTrips)
{
    std::string path = ::testing::TempDir() + "obs_test_roundtrip.json";
    ASSERT_TRUE(obs::writeTextFile(path, "{\"ok\":true}\n"));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), "{\"ok\":true}\n");
}

// ---------------------------------------------------------------------
// Query EXPLAIN.
// ---------------------------------------------------------------------

struct ExplainRig {
    sim::ClusterConfig config;
    std::unique_ptr<sim::Cluster> cluster;
    std::unique_ptr<store::FusionStore> store;
};

ExplainRig
makeExplainRig(uint64_t cache_bytes = 0)
{
    ExplainRig rig;
    rig.config.numNodes = 9;
    rig.cluster = std::make_unique<sim::Cluster>(rig.config);
    store::StoreOptions options;
    options.cacheBytes = cache_bytes;
    rig.store =
        std::make_unique<store::FusionStore>(*rig.cluster, options);
    auto file = workload::buildLineitemFile(3000, 7);
    FUSION_CHECK(file.isOk());
    FUSION_CHECK(rig.store->put("lineitem", file.value().bytes).isOk());
    return rig;
}

TEST(ExplainTest, DisabledByDefault)
{
    ExplainRig rig = makeExplainRig();
    auto outcome =
        rig.store->querySql("SELECT l_orderkey FROM lineitem "
                            "WHERE l_quantity < 10");
    ASSERT_TRUE(outcome.isOk());
    EXPECT_EQ(outcome.value().explain, nullptr);
}

TEST(ExplainTest, RecordsEveryProjectionDecision)
{
    ExplainRig rig = makeExplainRig();
    rig.store->obs().explainEnabled = true;
    auto outcome =
        rig.store->querySql("SELECT l_orderkey, l_comment FROM lineitem "
                            "WHERE l_quantity < 10");
    ASSERT_TRUE(outcome.isOk());
    const store::QueryOutcome &o = outcome.value();
    ASSERT_NE(o.explain, nullptr);
    const obs::QueryExplain &report = *o.explain;

    EXPECT_EQ(report.table, "lineitem");
    EXPECT_NE(report.query.find("l_quantity"), std::string::npos);
    EXPECT_GT(report.selectivity, 0.0);
    EXPECT_LT(report.selectivity, 1.0);

    // The report's tallies must agree with the outcome's counters.
    EXPECT_EQ(report.rowGroupsScanned, o.rowGroupsScanned);
    EXPECT_EQ(report.rowGroupsSkipped, o.rowGroupsSkipped);
    EXPECT_EQ(report.filterPushdowns, o.filterChunkPushdowns);
    EXPECT_EQ(report.filterFetches, o.filterChunkFetches);
    EXPECT_EQ(report.pushCount(), o.projectionPushdowns);
    EXPECT_EQ(report.fetchCount(), o.projectionFetches);
    // One recorded decision per projected chunk, none skipped.
    EXPECT_EQ(report.projections.size(),
              o.projectionPushdowns + o.projectionFetches);
    ASSERT_FALSE(report.projections.empty());

    for (const obs::ExplainChunk &chunk : report.projections) {
        EXPECT_TRUE(chunk.verdict == "push" || chunk.verdict == "fetch")
            << chunk.verdict;
        EXPECT_FALSE(chunk.reason.empty());
        EXPECT_FALSE(chunk.column.empty());
        EXPECT_DOUBLE_EQ(chunk.product(),
                         chunk.selectivity * chunk.compressibility);
        // On a healthy cluster the Cost Equation decides everything:
        // the verdict must be consistent with its product.
        if (chunk.reason == "cost product < 1") {
            EXPECT_LT(chunk.product(), 1.0);
        }
        if (chunk.reason == "cost product >= 1") {
            EXPECT_GE(chunk.product(), 1.0);
        }
    }

    // Deterministic rendering.
    EXPECT_EQ(report.toJson(), report.toJson());
    EXPECT_TRUE(jsonBalanced(report.toJson()));
    std::string text = report.render();
    EXPECT_NE(text.find("push"), std::string::npos);
    EXPECT_NE(text.find(report.table), std::string::npos);
}

TEST(ExplainTest, CachedLocalVerdictRecordsFlippedCostTerms)
{
    // High selectivity on the well-compressed quantity column gives a
    // fetch verdict; the fetch admits the chunks, so the repeat query
    // flips every decision to "local" / "cached-local".
    ExplainRig rig = makeExplainRig(64 << 20);
    rig.store->obs().explainEnabled = true;
    const char *sql =
        "SELECT l_quantity FROM lineitem WHERE l_quantity < 45";

    auto cold = rig.store->querySql(sql);
    ASSERT_TRUE(cold.isOk());
    ASSERT_GT(cold.value().projectionFetches, 0u);
    EXPECT_EQ(cold.value().explain->localCount(), 0u);

    auto warm = rig.store->querySql(sql);
    ASSERT_TRUE(warm.isOk());
    const store::QueryOutcome &o = warm.value();
    ASSERT_NE(o.explain, nullptr);
    const obs::QueryExplain &report = *o.explain;

    // Tallies agree with the outcome, including the cached buckets.
    EXPECT_GT(o.projectionCachedLocal, 0u);
    EXPECT_EQ(report.localCount(), o.projectionCachedLocal);
    EXPECT_EQ(report.fetchCount(), o.projectionFetches);
    EXPECT_EQ(report.pushCount(), o.projectionPushdowns);
    EXPECT_EQ(report.projections.size(),
              o.projectionPushdowns + o.projectionFetches +
                  o.projectionCachedLocal);
    // The quantity chunks serve the filter stage from the cache too.
    EXPECT_GT(o.filterChunkCached, 0u);
    EXPECT_EQ(report.filterCached, o.filterChunkCached);

    for (const obs::ExplainChunk &chunk : report.projections) {
        if (chunk.verdict != "local")
            continue;
        EXPECT_EQ(chunk.reason, "cached-local");
        // The Cost-Equation terms are still recorded — and show the
        // flip: the equation alone said fetch (product >= 1), but
        // residency made local evaluation free of wire cost.
        EXPECT_GE(chunk.product(), 1.0);
        EXPECT_GT(chunk.compressibility, 1.0);
    }

    EXPECT_NE(report.render().find("cached-local"), std::string::npos);
    EXPECT_NE(report.toJson().find("\"verdict\": \"local\""),
              std::string::npos);
    EXPECT_NE(report.toJson().find("\"filter_cached\""),
              std::string::npos);
    EXPECT_TRUE(jsonBalanced(report.toJson()));
}

TEST(ExplainTest, FaultedNodeDecisionsRecordHealthFallback)
{
    ExplainRig rig = makeExplainRig();
    rig.store->obs().explainEnabled = true;

    // Kill nodes until pushdowns actually fall back (which nodes hold
    // intact chunks depends on placement, so probe within the RS(9,6)
    // fault tolerance of 3).
    std::shared_ptr<const obs::QueryExplain> report;
    for (size_t victim : {0, 1, 2}) {
        rig.cluster->killNode(victim);
        rig.store->dropCaches();
        auto outcome = rig.store->querySql(
            "SELECT l_orderkey, l_extendedprice FROM lineitem "
            "WHERE l_quantity < 30");
        ASSERT_TRUE(outcome.isOk());
        ASSERT_NE(outcome.value().explain, nullptr);
        report = outcome.value().explain;
        if (outcome.value().pushdownFallbacks > 0)
            break;
    }
    ASSERT_NE(report, nullptr);

    size_t fallbacks = 0;
    for (const obs::ExplainChunk &chunk : report->projections) {
        if (chunk.reason == "node unresponsive (health fallback)") {
            ++fallbacks;
            EXPECT_EQ(chunk.verdict, "fetch");
        }
    }
    EXPECT_GT(fallbacks, 0u)
        << "no projection decision recorded a health fallback:\n"
        << report->render();
    EXPECT_NE(report->render().find("health fallback"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Timeseries units: sliding windows, decayed accumulators, node
// health, chunk heat and the flight recorder.
// ---------------------------------------------------------------------

TEST(TimeseriesTest, WindowReducerEvictsAndReduces)
{
    obs::WindowReducer w(1.0);
    EXPECT_EQ(w.count(), 0u);
    EXPECT_DOUBLE_EQ(w.mean(), 0.0);
    EXPECT_DOUBLE_EQ(w.percentile(50.0), 0.0);

    w.observe(0.0, 10.0);
    w.observe(0.5, 20.0);
    w.observe(1.2, 30.0); // cutoff 0.2 evicts the t=0.0 sample
    EXPECT_EQ(w.count(), 2u);
    EXPECT_DOUBLE_EQ(w.mean(), 25.0);
    EXPECT_DOUBLE_EQ(w.rate(), 2.0);

    w.advance(2.3); // cutoff 1.3: everything out
    EXPECT_EQ(w.count(), 0u);
    EXPECT_DOUBLE_EQ(w.rate(), 0.0);
}

TEST(TimeseriesTest, WindowReducerPercentileInterpolates)
{
    obs::WindowReducer w(10.0);
    // Insert unsorted; percentile() sorts the resident values.
    for (double v : {30.0, 10.0, 40.0, 20.0})
        w.observe(1.0, v);
    // Inclusive rank h = (n-1)p/100 over {10, 20, 30, 40}.
    EXPECT_DOUBLE_EQ(w.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(w.percentile(50.0), 25.0);
    EXPECT_DOUBLE_EQ(w.percentile(95.0), 38.5);
    EXPECT_DOUBLE_EQ(w.percentile(100.0), 40.0);
}

TEST(TimeseriesTest, DecayCounterHalvesPerHalfLife)
{
    obs::DecayCounter c(1.0);
    EXPECT_DOUBLE_EQ(c.valueAt(5.0), 0.0);
    c.add(0.0, 8.0);
    EXPECT_DOUBLE_EQ(c.valueAt(0.0), 8.0);
    EXPECT_DOUBLE_EQ(c.valueAt(1.0), 4.0);
    EXPECT_DOUBLE_EQ(c.valueAt(3.0), 1.0);
    c.add(2.0, 2.0); // 8 * 2^-2 + 2 = 4
    EXPECT_DOUBLE_EQ(c.valueAt(2.0), 4.0);
    EXPECT_DOUBLE_EQ(c.valueAt(3.0), 2.0);
}

TEST(TimeseriesTest, HealthScoreDropsUnderTimeoutsAndRecovers)
{
    obs::NodeHealthTracker h;
    h.configure(4, obs::TimeseriesOptions{});
    for (size_t n = 0; n < 4; ++n) {
        EXPECT_DOUBLE_EQ(h.score(n, 0.0), 1.0);
        EXPECT_EQ(h.band(n, 0.0),
                  obs::NodeHealthTracker::Band::kHealthy);
    }

    // Back-to-back timeouts: monotonically non-increasing score.
    double prev = 1.0;
    for (int i = 0; i < 5; ++i) {
        const double t = 0.001 * static_cast<double>(i);
        h.recordTimeout(t, 2);
        const double s = h.score(2, t);
        EXPECT_LE(s, prev);
        prev = s;
    }
    EXPECT_LT(prev, 0.5);
    EXPECT_EQ(h.band(2, 0.004), obs::NodeHealthTracker::Band::kDead);
    EXPECT_EQ(h.consecutiveTimeouts(2), 5u);
    EXPECT_DOUBLE_EQ(h.score(0, 0.004), 1.0); // neighbours untouched

    // No further events: the decayed penalty recovers monotonically.
    double last = prev;
    for (int i = 1; i <= 5; ++i) {
        const double s =
            h.score(2, 0.004 + 0.05 * static_cast<double>(i));
        EXPECT_GE(s, last);
        last = s;
    }
    EXPECT_GT(last, prev);
}

TEST(TimeseriesTest, FlapEvidenceSeparatesFlappingFromDead)
{
    obs::NodeHealthTracker h;
    h.configure(2, obs::TimeseriesOptions{});

    // Success with no open streak is a no-op (the hot path).
    h.recordSuccess(0.0, 0);
    EXPECT_DOUBLE_EQ(h.flapEvidence(0, 0.0), 0.0);

    // Timeout -> success closes the streak and books flap evidence.
    h.recordTimeout(0.01, 0);
    EXPECT_EQ(h.band(0, 0.01), obs::NodeHealthTracker::Band::kDead);
    h.recordSuccess(0.02, 0);
    EXPECT_EQ(h.band(0, 0.02), obs::NodeHealthTracker::Band::kHealthy);
    EXPECT_GT(h.flapEvidence(0, 0.02), 0.9);

    // The next timeout with fresh flap evidence reads as flapping, not
    // dead: the retry policy stretches instead of shrinking.
    h.recordTimeout(0.03, 0);
    EXPECT_EQ(h.band(0, 0.03),
              obs::NodeHealthTracker::Band::kFlapping);
}

TEST(TimeseriesTest, ChunkHeatDecaysAndRanks)
{
    obs::TimeseriesOptions opt;
    opt.heatHalfLifeSeconds = 0.5;
    obs::ChunkHeatTable heat;
    heat.configure(opt);

    for (int i = 0; i < 3; ++i)
        heat.recordAccess(0.0, "a", 0);
    heat.recordAccess(0.0, "a", 1);
    heat.recordAccess(0.0, "b", 0);
    heat.recordAccess(0.0, "b", 0);
    EXPECT_EQ(heat.size(), 3u);
    EXPECT_DOUBLE_EQ(heat.heat("a", 0, 0.0), 3.0);
    EXPECT_DOUBLE_EQ(heat.heat("a", 0, 0.5), 1.5); // one half-life
    EXPECT_DOUBLE_EQ(heat.heat("missing", 9, 0.0), 0.0);

    auto hot = heat.hottest(0.0, 2);
    ASSERT_EQ(hot.size(), 2u);
    EXPECT_EQ(hot[0].object, "a");
    EXPECT_EQ(hot[0].chunk, 0u);
    EXPECT_DOUBLE_EQ(hot[0].heat, 3.0);
    EXPECT_EQ(hot[1].object, "b");
    EXPECT_EQ(hot[1].chunk, 0u);

    // Equal heat ties break on (object, chunk) ascending.
    heat.recordAccess(0.0, "a", 1); // "a":1 now ties "b":0 at 2.0
    hot = heat.hottest(0.0, 3);
    ASSERT_EQ(hot.size(), 3u);
    EXPECT_EQ(hot[1].object, "a");
    EXPECT_EQ(hot[1].chunk, 1u);
    EXPECT_EQ(hot[2].object, "b");
}

TEST(TimeseriesTest, FlightRecorderRingOverwritesOldestAndCapsDumps)
{
    obs::TimeseriesOptions opt;
    opt.flightCapacity = 4;
    opt.maxFlightDumps = 2;
    obs::FlightRecorder rec;
    rec.configure(opt);

    // Disabled by default: record() is a no-op (overhead guard).
    rec.record(0.0, "noise", "");
    EXPECT_EQ(rec.eventCount(), 0u);

    rec.setEnabled(true);
    for (int i = 0; i < 6; ++i)
        rec.record(0.01 * static_cast<double>(i), "event",
                   "\"seq\": " + std::to_string(i));
    EXPECT_EQ(rec.eventCount(), 4u); // ring holds the last 4

    std::string dump = rec.dump(0.06, "unit_test");
    EXPECT_TRUE(jsonBalanced(dump));
    EXPECT_EQ(dump.find("\"seq\": 0"), std::string::npos);
    EXPECT_EQ(dump.find("\"seq\": 1"), std::string::npos);
    // Oldest surviving event renders first.
    EXPECT_LT(dump.find("\"seq\": 2"), dump.find("\"seq\": 5"));
    EXPECT_NE(dump.find("\"reason\": \"unit_test\""),
              std::string::npos);

    // Retention caps at maxFlightDumps; dump() still returns the JSON.
    rec.dump(0.07, "second");
    std::string third = rec.dump(0.08, "third");
    EXPECT_EQ(rec.dumps().size(), 2u);
    EXPECT_NE(third.find("\"third\""), std::string::npos);
}

TEST(TimeseriesTest, TelemetrySnapshotIsCanonicalJson)
{
    obs::Telemetry tel;
    tel.health().configure(2, tel.options());
    tel.window("query.latency_seconds").observe(0.01, 0.5);
    tel.heat().recordAccess(0.01, "obj", 7);
    tel.flight().setEnabled(true);
    tel.flight().record(0.01, "query", "");
    tel.flight().dump(0.02, "unit_test");

    std::string a = tel.toJson(0.05);
    std::string b = tel.toJson(0.05); // same instant: same bytes
    EXPECT_EQ(a, b);
    EXPECT_TRUE(jsonBalanced(a));
    EXPECT_NE(a.find("\"nodes\""), std::string::npos);
    EXPECT_NE(a.find("\"query.latency_seconds\""), std::string::npos);
    EXPECT_NE(a.find("\"obj\""), std::string::npos);
    EXPECT_NE(a.find("\"unit_test\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Acceptance: byte-identical observability output across thread
// counts, under an active crash/revive fault schedule.
// ---------------------------------------------------------------------

struct ObsRun {
    std::string traceJson;
    std::string metricsJson;
    std::string explainJson; // all queries' reports concatenated
    std::string timeseriesJson;
    store::ObjectStore::FaultStats faults;
};

ObsRun
runObservedWorkload(size_t threads, uint64_t cache_bytes = 0)
{
    ThreadPool::setSharedThreads(threads);

    sim::ClusterConfig config;
    config.numNodes = 9;
    sim::Cluster cluster(config);
    store::StoreOptions options;
    options.cacheBytes = cache_bytes;
    store::FusionStore store(cluster, options);
    // Enable before put() so stripe_encode spans are captured too.
    store.obs().tracer.setEnabled(true);
    store.obs().explainEnabled = true;
    store.obs().telemetry.flight().setEnabled(true);
    auto file = workload::buildLineitemFile(3000, 7);
    FUSION_CHECK(file.isOk());
    FUSION_CHECK(store.put("lineitem", file.value().bytes).isOk());

    // A node crashes mid-workload and comes back: retries, parity
    // reconstructions and pushdown fallbacks all appear in the
    // metrics and in the trace while the fault is active.
    sim::FaultSchedule schedule;
    schedule.crashAt(0.01, 3).reviveAt(0.2, 3);
    sim::FaultInjector faults(cluster, schedule);
    faults.arm();

    std::vector<std::string> sqls = {
        "SELECT l_orderkey FROM lineitem WHERE l_quantity < 10",
        "SELECT SUM(l_extendedprice), COUNT(*) FROM lineitem "
        "WHERE l_discount < 0.05",
        "SELECT * FROM lineitem WHERE l_orderkey < 50",
        "SELECT l_comment FROM lineitem WHERE l_extendedprice < 15000",
    };
    if (cache_bytes > 0) {
        // A repeated fetch-verdict query: the first run admits the
        // quantity chunks, the repeat serves them cached-local while
        // the crash schedule is active.
        sqls.push_back(
            "SELECT l_quantity FROM lineitem WHERE l_quantity < 45");
        sqls.push_back(
            "SELECT l_quantity FROM lineitem WHERE l_quantity < 45");
    }
    sim::SimEngine &engine = cluster.engine();
    std::vector<std::optional<Result<store::QueryOutcome>>> captured(
        std::size(sqls));
    for (size_t i = 0; i < std::size(sqls); ++i) {
        auto q = query::parseQuery(sqls[i]);
        FUSION_CHECK(q.isOk());
        engine.scheduleAt(0.02 * static_cast<double>(i),
                          [&store, &captured, i, q]() {
                              store.queryAsync(
                                  q.value(),
                                  [&captured,
                                   i](Result<store::QueryOutcome> o) {
                                      captured[i].emplace(std::move(o));
                                  });
                          });
    }
    engine.run();

    ObsRun run;
    for (auto &outcome : captured) {
        FUSION_CHECK(outcome.has_value() && outcome->isOk());
        FUSION_CHECK(outcome->value().explain != nullptr);
        run.explainJson += outcome->value().explain->toJson();
        run.explainJson += "\n";
    }
    run.traceJson = store.obs().tracer.toChromeJson("fusion");
    run.metricsJson = store.obs().metrics.snapshot().toJson();
    run.timeseriesJson = store.obs().telemetry.toJson(engine.now());
    run.faults = store.faultStats();
    ThreadPool::setSharedThreads(1);
    return run;
}

TEST(ObsDeterminismTest, TraceMetricsExplainIdenticalAcrossThreadCounts)
{
    ObsRun serial = runObservedWorkload(1);

    // The serial run exercised the machinery the layer exists to
    // observe: spans for puts and queries, fault counters > 0 from the
    // crash, and a degraded-read trail in the trace.
    EXPECT_NE(serial.traceJson.find("\"put\""), std::string::npos);
    EXPECT_NE(serial.traceJson.find("\"stripe_encode\""),
              std::string::npos);
    EXPECT_NE(serial.traceJson.find("\"query\""), std::string::npos);
    EXPECT_NE(serial.traceJson.find("\"filter_stage\""),
              std::string::npos);
    EXPECT_NE(serial.traceJson.find("\"projection_stage\""),
              std::string::npos);
    EXPECT_GT(serial.faults.readRetries, 0u);
    EXPECT_NE(serial.metricsJson.find("fault.read_retries"),
              std::string::npos);
    EXPECT_NE(serial.metricsJson.find("query.latency_seconds"),
              std::string::npos);
    EXPECT_TRUE(jsonBalanced(serial.traceJson));
    EXPECT_TRUE(jsonBalanced(serial.metricsJson));

    // The timeseries snapshot saw the crash: the per-node health gauges
    // moved for the crashed node, chunk heat accumulated, and the
    // flight recorder dumped on both the crash event and the first
    // degraded read. Healthy nodes keep an exact 1.0 score.
    EXPECT_TRUE(jsonBalanced(serial.timeseriesJson));
    EXPECT_NE(serial.timeseriesJson.find("\"node\": 3"),
              std::string::npos);
    EXPECT_NE(serial.timeseriesJson.find("\"score\": 1"),
              std::string::npos);
    EXPECT_NE(serial.timeseriesJson.find("\"chunks\": [{"),
              std::string::npos);
    EXPECT_NE(serial.timeseriesJson.find("\"query.latency_seconds\""),
              std::string::npos);
    EXPECT_NE(serial.timeseriesJson.find("\"node_crash\""),
              std::string::npos);
    EXPECT_NE(serial.timeseriesJson.find("\"degraded_read\""),
              std::string::npos);
    EXPECT_NE(serial.metricsJson.find("health.node.3"),
              std::string::npos);
    EXPECT_NE(serial.metricsJson.find("health.flight_dumps"),
              std::string::npos);

    // The adaptive budget fails over instead of burning the full
    // fixed budget on every read to the crashed node: retries stay
    // well under the old maxReadRetries * timeouts product.
    EXPECT_LT(serial.faults.readRetries,
              3 * serial.faults.readTimeouts);

    // A dump written through the exporter is the same bytes.
    std::string path = ::testing::TempDir() + "obs_test_trace.json";
    ASSERT_TRUE(obs::writeTextFile(path, serial.traceJson));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), serial.traceJson);

    for (size_t threads : {2, 4}) {
        ObsRun pooled = runObservedWorkload(threads);
        EXPECT_EQ(pooled.traceJson, serial.traceJson)
            << "trace differs at threads=" << threads;
        EXPECT_EQ(pooled.metricsJson, serial.metricsJson)
            << "metrics differ at threads=" << threads;
        EXPECT_EQ(pooled.explainJson, serial.explainJson)
            << "explain differs at threads=" << threads;
        EXPECT_EQ(pooled.timeseriesJson, serial.timeseriesJson)
            << "timeseries differs at threads=" << threads;
        EXPECT_TRUE(pooled.faults == serial.faults);
    }
}

TEST(ObsDeterminismTest, CacheEnabledRunIdenticalAcrossThreadCounts)
{
    // Same crash/revive schedule, cache tier on: the hit/miss/eviction
    // sequence, the cache_lookup spans and the cached-local verdicts
    // must all be byte-identical at any FUSION_THREADS value.
    const uint64_t cache_bytes = 64 << 20;
    ObsRun serial = runObservedWorkload(1, cache_bytes);

    EXPECT_NE(serial.traceJson.find("\"cache_lookup\""),
              std::string::npos);
    EXPECT_NE(serial.explainJson.find("cached-local"), std::string::npos);
    EXPECT_NE(serial.metricsJson.find("cache.chunk.hits"),
              std::string::npos);
    EXPECT_NE(serial.metricsJson.find("cache.chunk.bytes"),
              std::string::npos);
    EXPECT_GT(serial.faults.readRetries, 0u);
    EXPECT_TRUE(jsonBalanced(serial.traceJson));
    EXPECT_TRUE(jsonBalanced(serial.metricsJson));

    for (size_t threads : {2, 4}) {
        ObsRun pooled = runObservedWorkload(threads, cache_bytes);
        EXPECT_EQ(pooled.traceJson, serial.traceJson)
            << "trace differs at threads=" << threads;
        EXPECT_EQ(pooled.metricsJson, serial.metricsJson)
            << "metrics differ at threads=" << threads;
        EXPECT_EQ(pooled.explainJson, serial.explainJson)
            << "explain differs at threads=" << threads;
        EXPECT_EQ(pooled.timeseriesJson, serial.timeseriesJson)
            << "timeseries differs at threads=" << threads;
        EXPECT_TRUE(pooled.faults == serial.faults);
    }
}

// ---------------------------------------------------------------------
// Overhead guard: disabled instrumentation on the hot predicate loop.
// ---------------------------------------------------------------------

TEST(OverheadGuardTest, DisabledTracingCostsUnderTwoPercent)
{
    Rng rng(17);
    ColumnData col(PhysicalType::kInt64);
    const size_t kRows = 1 << 18;
    for (size_t i = 0; i < kRows; ++i)
        col.append(rng.uniformInt(0, 1 << 20));
    const Value lit(static_cast<int64_t>(1 << 19));

    obs::Tracer tracer; // disabled, as in production default
    obs::MetricsRegistry registry;
    obs::Counter &calls = registry.counter("guard.calls");

    // The bench_kernels predicate loop, plain...
    uint64_t sink = 0;
    auto plain_pass = [&]() {
        auto r = query::evalPredicate(col, CompareOp::kLt, lit);
        FUSION_CHECK(r.isOk());
        sink += r.value().count();
    };
    // ...and with the store's per-stage instrumentation pattern: one
    // disabled span plus one counter bump around each kernel call.
    auto instrumented_pass = [&]() {
        uint64_t span = tracer.beginSpan("filter_stage");
        calls.add();
        auto r = query::evalPredicate(col, CompareOp::kLt, lit);
        FUSION_CHECK(r.isOk());
        sink += r.value().count();
        tracer.endSpan(span);
    };

    auto now = []() { return walltime::monotonicSeconds(); };
    const int kIters = 24;
    auto time_once = [&](auto &&pass) {
        double start = now();
        for (int i = 0; i < kIters; ++i)
            pass();
        return now() - start;
    };

    // Warm both paths, then interleave trials and keep the best of
    // each — the minimum is the noise-free estimate. Wall-clock noise
    // (frequency scaling, CI neighbors) can still exceed the 2% bound
    // in one measurement window, so keep the best ratio over a few
    // independent attempts; the true overhead is a branch and one
    // relaxed atomic per kernel call, far below the bound.
    plain_pass();
    instrumented_pass();
    double ratio = 1e300;
    for (int attempt = 0; attempt < 3 && ratio > 1.02; ++attempt) {
        double best_plain = 1e300, best_instrumented = 1e300;
        for (int trial = 0; trial < 8; ++trial) {
            best_plain = std::min(best_plain, time_once(plain_pass));
            best_instrumented =
                std::min(best_instrumented, time_once(instrumented_pass));
        }
        ratio = std::min(ratio, best_instrumented / best_plain);
    }

    EXPECT_NE(sink, 0u);
    EXPECT_EQ(tracer.spanCount(), 0u); // disabled: nothing recorded
    EXPECT_GT(calls.value(), 0u);
    EXPECT_LE(ratio, 1.02) << "instrumented/plain best-time ratio";
}

} // namespace
} // namespace fusion
