/**
 * @file
 * google-benchmark microbenchmarks for the erasure-coding substrate:
 * RS encode and reconstruct throughput at the two paper code
 * configurations, plus GF(256) multiply-accumulate.
 */
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "ec/reed_solomon.h"

using namespace fusion;

namespace {

std::vector<Bytes>
makeBlocks(size_t k, size_t size)
{
    Rng rng(k * size);
    std::vector<Bytes> blocks(k, Bytes(size));
    for (auto &block : blocks)
        for (auto &b : block)
            b = static_cast<uint8_t>(rng.next());
    return blocks;
}

void
BM_RsEncode(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    size_t k = static_cast<size_t>(state.range(1));
    auto rs = ec::ReedSolomon::create(n, k).value();
    auto blocks = makeBlocks(k, 1 << 20);
    std::vector<Slice> views(blocks.begin(), blocks.end());
    for (auto _ : state) {
        auto parity = rs.encodeParity(views);
        benchmark::DoNotOptimize(parity);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * k *
                            (1 << 20));
}
BENCHMARK(BM_RsEncode)->Args({9, 6})->Args({14, 10});

void
BM_RsReconstruct(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    size_t k = static_cast<size_t>(state.range(1));
    auto rs = ec::ReedSolomon::create(n, k).value();
    auto blocks = makeBlocks(k, 1 << 20);
    auto stripe = ec::encodeStripe(rs, blocks).value();
    for (auto _ : state) {
        std::vector<std::optional<Bytes>> shards;
        for (const auto &block : stripe.blocks)
            shards.emplace_back(block);
        for (size_t e = 0; e < n - k; ++e)
            shards[e] = std::nullopt; // max erasures, all data blocks
        auto st = rs.reconstruct(shards, stripe.blockSize);
        benchmark::DoNotOptimize(st);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            (n - k) * (1 << 20));
}
BENCHMARK(BM_RsReconstruct)->Args({9, 6})->Args({14, 10});

void
BM_GfMulAccumulate(benchmark::State &state)
{
    const auto &gf = ec::Gf256::instance();
    Bytes src(1 << 20), dst(1 << 20, 0);
    Rng rng(3);
    for (auto &b : src)
        b = static_cast<uint8_t>(rng.next());
    for (auto _ : state) {
        gf.mulAccumulate(dst.data(), src.data(), src.size(), 0x57);
        benchmark::DoNotOptimize(dst);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            (1 << 20));
}
BENCHMARK(BM_GfMulAccumulate);

} // namespace

BENCHMARK_MAIN();
