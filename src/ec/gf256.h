/**
 * @file
 * Arithmetic over GF(2^8) with the AES/Rijndael-compatible primitive
 * polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), via exp/log tables.
 * This is the field underlying the systematic Reed-Solomon codes used
 * by both the baseline store and Fusion.
 */
#ifndef FUSION_EC_GF256_H
#define FUSION_EC_GF256_H

#include <cstddef>
#include <cstdint>

namespace fusion::ec {

/** Table-driven GF(2^8) arithmetic. All operations are total except
 *  division/inverse by zero, which abort. */
class Gf256
{
  public:
    /** Returns the process-wide table instance. */
    static const Gf256 &instance();

    uint8_t
    add(uint8_t a, uint8_t b) const
    {
        return a ^ b;
    }

    uint8_t
    mul(uint8_t a, uint8_t b) const
    {
        if (a == 0 || b == 0)
            return 0;
        return exp_[log_[a] + log_[b]];
    }

    uint8_t div(uint8_t a, uint8_t b) const;
    uint8_t inv(uint8_t a) const;

    /** a raised to the integer power e (e >= 0). */
    uint8_t pow(uint8_t a, unsigned e) const;

    /** Multiply-accumulate over a byte range: dst[i] ^= c * src[i]. */
    void mulAccumulate(uint8_t *dst, const uint8_t *src, size_t len,
                       uint8_t c) const;

  private:
    Gf256();

    // exp_ is doubled so mul() can skip the mod-255 reduction.
    uint8_t exp_[512];
    uint8_t log_[256];
};

} // namespace fusion::ec

#endif // FUSION_EC_GF256_H
