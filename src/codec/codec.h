/**
 * @file
 * Block-compression dispatch used by the columnar format writer/reader.
 */
#ifndef FUSION_CODEC_CODEC_H
#define FUSION_CODEC_CODEC_H

#include "common/bytes.h"
#include "common/status.h"

namespace fusion::codec {

/** Block compression applied to encoded pages before hitting disk. */
enum class Compression : uint8_t {
    kNone = 0,
    kSnappy = 1,
};

const char *compressionName(Compression c);

/** Compresses `input` with the chosen codec. */
Bytes compress(Compression c, Slice input);

/** Inverse of compress(); kCorruption on malformed input. */
Result<Bytes> decompress(Compression c, Slice input);

} // namespace fusion::codec

#endif // FUSION_CODEC_CODEC_H
