# Empty compiler generated dependencies file for bench_fig04d_padding.
# This may be replaced when dependencies are built.
