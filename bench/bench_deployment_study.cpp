/**
 * @file
 * Deployment study (extension): §6.3 argues "Fusion would result in
 * little extra storage overhead when deployed in production" because
 * large multi-chunk objects dominate cloud storage (60% of objects
 * >1 GB in the Microsoft trace the paper cites). We put a whole object
 * *population* with a trace-like size distribution into both stores
 * and report aggregate capacity overhead, chunk splitting and node
 * balance — the operator's view of FAC.
 */
#include <cmath>

#include "benchutil/harness.h"
#include "common/random.h"
#include "fac/constructors.h"
#include "workload/chunk_models.h"

using namespace fusion;
using namespace fusion::benchutil;

namespace {

/**
 * Synthesizes one object's chunk list. Object sizes follow a heavy
 * lognormal (median ~1.6 GB, long tail) per the trace shape; chunk
 * counts and sizes derive from the object size the way Parquet row
 * groups would.
 */
std::vector<fac::ChunkExtent>
traceObjectChunks(Rng &rng)
{
    double size_gb = std::exp(rng.normal() * 1.2 + 0.5); // lognormal
    size_gb = std::min(size_gb, 50.0);
    uint64_t object_bytes = static_cast<uint64_t>(size_gb * 1e9);
    // Row groups of ~1 GB, 8-24 columns with skewed shares.
    size_t row_groups =
        std::max<size_t>(1, object_bytes / 1'000'000'000);
    size_t columns = 8 + rng.pickIndex(17);
    std::vector<double> shares(columns);
    double total = 0;
    for (auto &share : shares) {
        share = std::exp(rng.normal() * 1.5);
        total += share;
    }
    std::vector<fac::ChunkExtent> chunks;
    uint64_t offset = 0;
    uint32_t id = 0;
    for (size_t rg = 0; rg < row_groups; ++rg) {
        for (size_t c = 0; c < columns; ++c) {
            uint64_t size = static_cast<uint64_t>(
                static_cast<double>(object_bytes) / row_groups *
                shares[c] / total);
            size = std::max<uint64_t>(size, 4096);
            chunks.push_back({id++, offset, size});
            offset += size;
        }
    }
    return chunks;
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    banner("Deployment study",
           "population-level storage overhead and balance");

    const int kObjects = 200;
    Rng rng(404);

    struct Totals {
        size_t objects = 0;
        uint64_t data = 0;
        uint64_t extra = 0; // padding + parity
        size_t chunks = 0;
        size_t split = 0;
        size_t fallbacks = 0;
    };
    // Size classes: <1 GB, 1-10 GB, >10 GB (the cited trace: >60% of
    // objects exceed 1 GB, and large objects dominate capacity).
    const char *kClassNames[] = {"< 1 GB", "1-10 GB", "> 10 GB"};
    Totals fusion_by_class[3], fixed_totals, padding_totals;

    for (int i = 0; i < kObjects; ++i) {
        auto chunks = traceObjectChunks(rng);
        uint64_t object_bytes = workload::modelTotalBytes(chunks);
        size_t size_class =
            object_bytes < 1'000'000'000 ? 0
            : object_bytes < 10'000'000'000 ? 1 : 2;

        fac::FusionLayoutOptions fusion_options; // 2% threshold
        fac::ObjectLayout fusion_layout =
            fac::buildFusionLayout(chunks, fusion_options);
        fac::ObjectLayout fixed =
            fac::buildFixedLayout(chunks, 9, 6, 100'000'000);
        fac::ObjectLayout padding =
            fac::buildPaddingLayout(chunks, 9, 6, 100'000'000);

        auto add = [&](Totals &t, const fac::ObjectLayout &layout) {
            ++t.objects;
            t.data += layout.dataBytes;
            t.extra += layout.paddingBytes + layout.parityBytes();
            t.chunks += chunks.size();
            auto spans = layout.chunkSpans(chunks.size());
            for (uint32_t s : spans)
                t.split += s > 1 ? 1 : 0;
            t.fallbacks += layout.kind == fac::LayoutKind::kFixed ? 1 : 0;
        };
        add(fusion_by_class[size_class], fusion_layout);
        add(fixed_totals, fixed);
        add(padding_totals, padding);
    }

    auto overhead_pct = [](const Totals &t) {
        double optimal = static_cast<double>(t.data) * 0.5;
        return (static_cast<double>(t.extra) - optimal) / optimal * 100.0;
    };

    TablePrinter table({"population slice", "objects", "data",
                        "overhead vs optimal (%)", "chunks split (%)",
                        "FAC fallbacks"});
    Totals fusion_all;
    for (int c = 0; c < 3; ++c) {
        const Totals &t = fusion_by_class[c];
        table.addRow({std::string("fusion, ") + kClassNames[c],
                      std::to_string(t.objects), formatBytes(t.data),
                      fmt("%.2f", overhead_pct(t)),
                      fmt("%.1f", 100.0 * t.split / t.chunks),
                      std::to_string(t.fallbacks)});
        fusion_all.objects += t.objects;
        fusion_all.data += t.data;
        fusion_all.extra += t.extra;
        fusion_all.chunks += t.chunks;
        fusion_all.split += t.split;
        fusion_all.fallbacks += t.fallbacks;
    }
    table.addRow({"fusion, all", std::to_string(fusion_all.objects),
                  formatBytes(fusion_all.data),
                  fmt("%.2f", overhead_pct(fusion_all)),
                  fmt("%.1f", 100.0 * fusion_all.split / fusion_all.chunks),
                  std::to_string(fusion_all.fallbacks)});
    table.addRow({"fixed 100MB, all", std::to_string(fixed_totals.objects),
                  formatBytes(fixed_totals.data),
                  fmt("%.2f", overhead_pct(fixed_totals)),
                  fmt("%.1f",
                      100.0 * fixed_totals.split / fixed_totals.chunks),
                  "-"});
    table.addRow({"padding 100MB, all",
                  std::to_string(padding_totals.objects),
                  formatBytes(padding_totals.data),
                  fmt("%.2f", overhead_pct(padding_totals)),
                  fmt("%.1f",
                      100.0 * padding_totals.split / padding_totals.chunks),
                  "-"});
    table.print();

    std::printf("\nexpected: the capacity-dominating large objects take "
                "the FAC path with ~1%% overhead and zero splits (the "
                "paper's §6.3 deployment claim); small few-chunk objects "
                "trip the 2%% threshold and fall back to fixed blocks, "
                "which is the designed behaviour — their bytes barely "
                "register in the population total\n");
    return 0;
}
