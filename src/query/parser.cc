#include "parser.h"

#include <cctype>
#include <cstdlib>

namespace fusion::query {

namespace {

/** Hand-rolled recursive-descent parser over a token cursor. */
class Parser
{
  public:
    explicit Parser(const std::string &sql) : sql_(sql) {}

    Result<Query>
    parse()
    {
        Query query;
        FUSION_RETURN_IF_ERROR(expectKeyword("SELECT"));
        FUSION_RETURN_IF_ERROR(parseProjections(query));
        FUSION_RETURN_IF_ERROR(expectKeyword("FROM"));
        auto table = parseIdentifier();
        if (!table.isOk())
            return table.status();
        query.table = table.value();
        skipSpace();
        if (!atEnd()) {
            FUSION_RETURN_IF_ERROR(expectKeyword("WHERE"));
            FUSION_RETURN_IF_ERROR(parseFilters(query));
        }
        skipSpace();
        if (!atEnd())
            return error("unexpected trailing input");
        return query;
    }

  private:
    Status
    error(const std::string &what)
    {
        return Status::invalidArgument(what + " at position " +
                                       std::to_string(pos_) + " in: " +
                                       sql_);
    }

    bool atEnd() const { return pos_ >= sql_.size(); }
    char peek() const { return atEnd() ? '\0' : sql_[pos_]; }

    void
    skipSpace()
    {
        while (!atEnd() && std::isspace(static_cast<unsigned char>(peek())))
            ++pos_;
    }

    bool
    consumeChar(char c)
    {
        skipSpace();
        if (peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    /** Case-insensitive keyword match at the cursor. */
    bool
    tryKeyword(const char *keyword)
    {
        skipSpace();
        size_t p = pos_;
        for (const char *k = keyword; *k; ++k, ++p) {
            if (p >= sql_.size() ||
                std::toupper(static_cast<unsigned char>(sql_[p])) != *k)
                return false;
        }
        // Must not run into an identifier character.
        if (p < sql_.size() &&
            (std::isalnum(static_cast<unsigned char>(sql_[p])) ||
             sql_[p] == '_'))
            return false;
        pos_ = p;
        return true;
    }

    Status
    expectKeyword(const char *keyword)
    {
        if (!tryKeyword(keyword))
            return error(std::string("expected ") + keyword);
        return Status::ok();
    }

    Result<std::string>
    parseIdentifier()
    {
        skipSpace();
        size_t start = pos_;
        if (atEnd() ||
            !(std::isalpha(static_cast<unsigned char>(peek())) ||
              peek() == '_'))
            return error("expected identifier");
        while (!atEnd() &&
               (std::isalnum(static_cast<unsigned char>(peek())) ||
                peek() == '_'))
            ++pos_;
        return sql_.substr(start, pos_ - start);
    }

    Status
    parseProjections(Query &query)
    {
        do {
            skipSpace();
            Projection proj;
            if (consumeChar('*')) {
                proj.column = kStarProjection;
                query.projections.push_back(std::move(proj));
                continue;
            }
            AggregateKind agg = AggregateKind::kNone;
            if (tryKeyword("COUNT"))
                agg = AggregateKind::kCount;
            else if (tryKeyword("SUM"))
                agg = AggregateKind::kSum;
            else if (tryKeyword("AVG"))
                agg = AggregateKind::kAvg;
            else if (tryKeyword("MIN"))
                agg = AggregateKind::kMin;
            else if (tryKeyword("MAX"))
                agg = AggregateKind::kMax;

            if (agg != AggregateKind::kNone) {
                if (!consumeChar('('))
                    return error("expected ( after aggregate");
                proj.aggregate = agg;
                if (consumeChar('*')) {
                    if (agg != AggregateKind::kCount)
                        return error("only COUNT accepts *");
                } else {
                    auto col = parseIdentifier();
                    if (!col.isOk())
                        return col.status();
                    proj.column = col.value();
                }
                if (!consumeChar(')'))
                    return error("expected ) after aggregate");
            } else {
                auto col = parseIdentifier();
                if (!col.isOk())
                    return col.status();
                proj.column = col.value();
            }
            query.projections.push_back(std::move(proj));
        } while (consumeChar(','));
        return Status::ok();
    }

    Result<CompareOp>
    parseOp()
    {
        skipSpace();
        auto two = [&](char a, char b) {
            if (pos_ + 1 < sql_.size() && sql_[pos_] == a &&
                sql_[pos_ + 1] == b) {
                pos_ += 2;
                return true;
            }
            return false;
        };
        if (two('<', '=')) return CompareOp::kLe;
        if (two('>', '=')) return CompareOp::kGe;
        if (two('=', '=')) return CompareOp::kEq;
        if (two('!', '=')) return CompareOp::kNe;
        if (two('<', '>')) return CompareOp::kNe;
        if (consumeChar('<')) return CompareOp::kLt;
        if (consumeChar('>')) return CompareOp::kGt;
        if (consumeChar('=')) return CompareOp::kEq;
        return error("expected comparison operator");
    }

    Result<format::Value>
    parseLiteral()
    {
        skipSpace();
        if (peek() == '\'') {
            ++pos_;
            std::string s;
            while (!atEnd() && peek() != '\'')
                s += sql_[pos_++];
            if (atEnd())
                return error("unterminated string literal");
            ++pos_;
            return format::Value::ofString(std::move(s));
        }
        size_t start = pos_;
        if (peek() == '-' || peek() == '+')
            ++pos_;
        bool is_float = false;
        while (!atEnd() &&
               (std::isdigit(static_cast<unsigned char>(peek())) ||
                peek() == '.' || peek() == 'e' || peek() == 'E' ||
                ((peek() == '-' || peek() == '+') &&
                 (sql_[pos_ - 1] == 'e' || sql_[pos_ - 1] == 'E')))) {
            if (peek() == '.' || peek() == 'e' || peek() == 'E')
                is_float = true;
            ++pos_;
        }
        if (pos_ == start)
            return error("expected literal");
        std::string text = sql_.substr(start, pos_ - start);
        if (is_float)
            return format::Value::ofDouble(std::strtod(text.c_str(),
                                                       nullptr));
        return format::Value::ofInt64(
            std::strtoll(text.c_str(), nullptr, 10));
    }

    Status
    parseFilters(Query &query)
    {
        do {
            Predicate pred;
            auto col = parseIdentifier();
            if (!col.isOk())
                return col.status();
            pred.column = col.value();
            auto op = parseOp();
            if (!op.isOk())
                return op.status();
            pred.op = op.value();
            auto lit = parseLiteral();
            if (!lit.isOk())
                return lit.status();
            pred.literal = std::move(lit.value());
            query.filters.push_back(std::move(pred));
        } while (tryKeyword("AND"));
        return Status::ok();
    }

    const std::string &sql_;
    size_t pos_ = 0;
};

} // namespace

Result<Query>
parseQuery(const std::string &sql)
{
    Parser parser(sql);
    auto query = parser.parse();
    if (!query.isOk())
        return query.status();
    if (query.value().projections.empty())
        return Status::invalidArgument("query selects nothing");
    return query;
}

} // namespace fusion::query
