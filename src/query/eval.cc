#include "eval.h"

#include <bit>
#include <optional>

namespace fusion::query {

namespace {

using format::ColumnData;
using format::PhysicalType;
using format::Value;

bool
applyOp(int cmp, CompareOp op)
{
    switch (op) {
      case CompareOp::kLt: return cmp < 0;
      case CompareOp::kLe: return cmp <= 0;
      case CompareOp::kGt: return cmp > 0;
      case CompareOp::kGe: return cmp >= 0;
      case CompareOp::kEq: return cmp == 0;
      case CompareOp::kNe: return cmp != 0;
    }
    return false;
}

/**
 * Branch-free row verdict, specialized per CompareOp at compile time.
 * Expressed through the two strict comparisons so the semantics match
 * applyOp() over a three-way compare exactly — including NaN, where
 * both comparisons are false and the row therefore counts as "equal"
 * (kLe/kGe/kEq match, kLt/kGt/kNe do not), as the boxed reference
 * path has always behaved.
 */
template <CompareOp Op, typename T, typename L>
inline bool
rowVerdict(const T &v, const L &lit)
{
    bool lt = v < lit;
    bool gt = lit < v;
    if constexpr (Op == CompareOp::kLt)
        return lt;
    else if constexpr (Op == CompareOp::kLe)
        return !gt;
    else if constexpr (Op == CompareOp::kGt)
        return gt;
    else if constexpr (Op == CompareOp::kGe)
        return !lt;
    else if constexpr (Op == CompareOp::kEq)
        return !lt && !gt;
    else
        return lt || gt; // kNe
}

/**
 * Word-wise typed scan: evaluates 64 rows into one bitmap word with no
 * per-row branch (the compiler auto-vectorizes the comparison loop for
 * the numeric instantiations), then writes the word in one store.
 */
template <CompareOp Op, typename T, typename L>
void
scanKernel(const std::vector<T> &values, const L &literal, Bitmap &out)
{
    const size_t n = values.size();
    const T *v = values.data();
    size_t i = 0, w = 0;
    for (; i + 64 <= n; i += 64, ++w) {
        uint64_t bits = 0;
        for (size_t b = 0; b < 64; ++b)
            bits |= static_cast<uint64_t>(
                        rowVerdict<Op>(v[i + b], literal))
                    << b;
        out.setWord(w, bits);
    }
    if (i < n) {
        uint64_t bits = 0;
        for (size_t b = 0; i + b < n; ++b)
            bits |= static_cast<uint64_t>(
                        rowVerdict<Op>(v[i + b], literal))
                    << b;
        out.setWord(w, bits);
    }
}

// Hoists the op out of the row loop: one kernel instantiation per
// CompareOp x column type.
template <typename T, typename L>
void
scanTyped(const std::vector<T> &values, CompareOp op, const L &literal,
          Bitmap &out)
{
    switch (op) {
      case CompareOp::kLt:
        scanKernel<CompareOp::kLt>(values, literal, out);
        break;
      case CompareOp::kLe:
        scanKernel<CompareOp::kLe>(values, literal, out);
        break;
      case CompareOp::kGt:
        scanKernel<CompareOp::kGt>(values, literal, out);
        break;
      case CompareOp::kGe:
        scanKernel<CompareOp::kGe>(values, literal, out);
        break;
      case CompareOp::kEq:
        scanKernel<CompareOp::kEq>(values, literal, out);
        break;
      case CompareOp::kNe:
        scanKernel<CompareOp::kNe>(values, literal, out);
        break;
    }
}

bool
literalCompatible(PhysicalType column_type, PhysicalType literal_type)
{
    bool column_numeric = column_type != PhysicalType::kString;
    bool literal_numeric = literal_type != PhysicalType::kString;
    return column_numeric == literal_numeric;
}

} // namespace

bool
compareValues(const Value &lhs, CompareOp op, const Value &rhs)
{
    return applyOp(lhs.compare(rhs), op);
}

Result<Bitmap>
evalPredicate(const ColumnData &column, CompareOp op, const Value &literal)
{
    if (!literalCompatible(column.type(), literal.type()))
        return Status::invalidArgument(
            "predicate literal type incompatible with column type");

    Bitmap out(column.size());
    switch (column.type()) {
      case PhysicalType::kInt32:
        scanTyped(column.int32s(), op, literal.numeric(), out);
        break;
      case PhysicalType::kInt64:
        scanTyped(column.int64s(), op, literal.numeric(), out);
        break;
      case PhysicalType::kDouble:
        scanTyped(column.doubles(), op, literal.numeric(), out);
        break;
      case PhysicalType::kString:
        scanTyped(column.strings(), op, literal.asString(), out);
        break;
    }
    return out;
}

Result<Bitmap>
evalPredicateReference(const ColumnData &column, CompareOp op,
                       const Value &literal)
{
    if (!literalCompatible(column.type(), literal.type()))
        return Status::invalidArgument(
            "predicate literal type incompatible with column type");
    Bitmap out(column.size());
    for (size_t i = 0; i < column.size(); ++i)
        if (compareValues(column.valueAt(i), op, literal))
            out.set(i);
    return out;
}

bool
zoneMapMayMatch(const format::ChunkMeta &meta, const Predicate &pred)
{
    const Value &min_v = meta.minValue;
    const Value &max_v = meta.maxValue;
    if (!literalCompatible(min_v.type(), pred.literal.type()))
        return true; // type confusion: be conservative, scan the chunk
    switch (pred.op) {
      case CompareOp::kLt: return compareValues(min_v, CompareOp::kLt,
                                                pred.literal);
      case CompareOp::kLe: return compareValues(min_v, CompareOp::kLe,
                                                pred.literal);
      case CompareOp::kGt: return compareValues(max_v, CompareOp::kGt,
                                                pred.literal);
      case CompareOp::kGe: return compareValues(max_v, CompareOp::kGe,
                                                pred.literal);
      case CompareOp::kEq:
        return compareValues(min_v, CompareOp::kLe, pred.literal) &&
               compareValues(max_v, CompareOp::kGe, pred.literal);
      case CompareOp::kNe:
        // Only an all-equal chunk matching the literal can be skipped.
        return !(min_v == max_v && min_v == pred.literal);
    }
    return true;
}

namespace {

/**
 * Converts an equality literal to the column's stored type when the
 * conversion is exact, so Bloom hashing (which is type-sensitive) sees
 * the same bytes the writer inserted. Returns nullopt when conversion
 * would be lossy or the types are incompatible.
 */
std::optional<Value>
normalizeLiteralForColumn(PhysicalType column_type, const Value &literal)
{
    if (literal.type() == column_type)
        return literal;
    if (column_type == PhysicalType::kString ||
        literal.type() == PhysicalType::kString)
        return std::nullopt;
    double v = literal.numeric();
    switch (column_type) {
      case PhysicalType::kInt32: {
        auto as_int = static_cast<int32_t>(v);
        if (static_cast<double>(as_int) == v)
            return Value(as_int);
        return std::nullopt;
      }
      case PhysicalType::kInt64: {
        auto as_int = static_cast<int64_t>(v);
        if (static_cast<double>(as_int) == v)
            return Value(as_int);
        return std::nullopt;
      }
      case PhysicalType::kDouble:
        return Value(v);
      case PhysicalType::kString:
        break;
    }
    return std::nullopt;
}

} // namespace

bool
chunkMayMatch(const format::ChunkMeta &meta, const Predicate &pred)
{
    if (!zoneMapMayMatch(meta, pred))
        return false;
    if (pred.op != CompareOp::kEq || meta.bloom.empty())
        return true;
    auto literal =
        normalizeLiteralForColumn(meta.minValue.type(), pred.literal);
    if (!literal.has_value())
        return true; // inexact conversion: cannot safely consult bloom
    return meta.bloom.mayContain(*literal);
}

namespace {

// Word-wise row gather: zero words are skipped in one test and set
// bits are enumerated with countr_zero instead of per-row test calls.
template <typename T, typename Append>
void
gatherRows(const std::vector<T> &values, const Bitmap &rows,
           const Append &append)
{
    for (size_t w = 0; w < rows.numWords(); ++w) {
        uint64_t bits = rows.word(w);
        while (bits != 0) {
            size_t b = static_cast<size_t>(std::countr_zero(bits));
            append(values[w * 64 + b]);
            bits &= bits - 1;
        }
    }
}

} // namespace

format::ColumnData
selectRows(const ColumnData &column, const Bitmap &rows)
{
    FUSION_CHECK(column.size() == rows.size());
    ColumnData out(column.type());
    switch (column.type()) {
      case PhysicalType::kInt32:
        gatherRows(column.int32s(), rows,
                   [&out](int32_t v) { out.append(v); });
        break;
      case PhysicalType::kInt64:
        gatherRows(column.int64s(), rows,
                   [&out](int64_t v) { out.append(v); });
        break;
      case PhysicalType::kDouble:
        gatherRows(column.doubles(), rows,
                   [&out](double v) { out.append(v); });
        break;
      case PhysicalType::kString:
        gatherRows(column.strings(), rows,
                   [&out](const std::string &v) { out.append(v); });
        break;
    }
    return out;
}

Result<double>
computeAggregate(AggregateKind kind, const ColumnData &values)
{
    if (kind == AggregateKind::kCount)
        return static_cast<double>(values.size());
    if (values.type() == PhysicalType::kString)
        return Status::invalidArgument(
            "numeric aggregate over a string column");
    // SQL yields NULL for aggregates over zero rows; without a null
    // representation we approximate with 0 (documented behaviour).
    if (values.size() == 0)
        return 0.0;

    // Typed reduction over the raw array — no per-row boxing. Sum
    // order and min/max NaN handling match the boxed loop exactly.
    double sum = 0.0, min_v = 0.0, max_v = 0.0;
    auto reduce = [&](const auto &raw) {
        min_v = max_v = static_cast<double>(raw[0]);
        for (size_t i = 0; i < raw.size(); ++i) {
            double v = static_cast<double>(raw[i]);
            sum += v;
            if (v < min_v)
                min_v = v;
            if (v > max_v)
                max_v = v;
        }
    };
    switch (values.type()) {
      case PhysicalType::kInt32: reduce(values.int32s()); break;
      case PhysicalType::kInt64: reduce(values.int64s()); break;
      case PhysicalType::kDouble: reduce(values.doubles()); break;
      case PhysicalType::kString: break; // rejected above
    }
    switch (kind) {
      case AggregateKind::kSum: return sum;
      case AggregateKind::kAvg:
        return sum / static_cast<double>(values.size());
      case AggregateKind::kMin: return min_v;
      case AggregateKind::kMax: return max_v;
      case AggregateKind::kCount:
      case AggregateKind::kNone: break;
    }
    return Status::invalidArgument("bad aggregate kind");
}

} // namespace fusion::query
