/**
 * @file
 * Unit and property tests for src/codec: bit packing, RLE hybrid,
 * dictionary encoding and the Snappy codec.
 */
#include <gtest/gtest.h>

#include <string>

#include "codec/bitpack.h"
#include "codec/codec.h"
#include "codec/dictionary.h"
#include "codec/rle.h"
#include "codec/snappy.h"
#include "common/random.h"
#include "common/serde.h"

namespace fusion::codec {
namespace {

TEST(BitWidthTest, Values)
{
    EXPECT_EQ(bitWidthFor(0), 0);
    EXPECT_EQ(bitWidthFor(1), 1);
    EXPECT_EQ(bitWidthFor(2), 2);
    EXPECT_EQ(bitWidthFor(3), 2);
    EXPECT_EQ(bitWidthFor(255), 8);
    EXPECT_EQ(bitWidthFor(256), 9);
    EXPECT_EQ(bitWidthFor(UINT64_MAX), 64);
}

class BitPackRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(BitPackRoundTrip, RandomValues)
{
    const int width = GetParam();
    Rng rng(1000 + width);
    std::vector<uint64_t> values;
    for (int i = 0; i < 1000; ++i) {
        uint64_t mask =
            (width == 64) ? ~0ULL : ((1ULL << width) - 1);
        values.push_back(rng.next() & mask);
    }

    Bytes buf;
    BitPacker packer(buf, width);
    for (uint64_t v : values)
        packer.put(v);
    packer.flush();

    EXPECT_EQ(buf.size(), (values.size() * width + 7) / 8);

    BitUnpacker unpacker(Slice(buf), width);
    for (uint64_t v : values) {
        auto got = unpacker.get();
        ASSERT_TRUE(got.isOk());
        EXPECT_EQ(got.value(), v);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitPackRoundTrip,
                         ::testing::Values(0, 1, 2, 3, 5, 7, 8, 9, 13, 16,
                                           24, 31, 33, 48, 63, 64));

TEST(BitPackTest, ExhaustedStreamIsCorruption)
{
    Bytes buf;
    BitPacker packer(buf, 8);
    packer.put(7);
    packer.flush();
    BitUnpacker unpacker(Slice(buf), 8);
    EXPECT_TRUE(unpacker.get().isOk());
    EXPECT_EQ(unpacker.get().status().code(), StatusCode::kCorruption);
}

struct RleCase {
    const char *name;
    std::vector<uint64_t> values;
    int width;
};

class RleRoundTrip : public ::testing::TestWithParam<RleCase>
{
};

TEST_P(RleRoundTrip, Exact)
{
    const auto &c = GetParam();
    Bytes encoded = rleEncode(c.values, c.width);
    auto decoded = rleDecode(Slice(encoded), c.width, c.values.size());
    ASSERT_TRUE(decoded.isOk()) << decoded.status().toString();
    EXPECT_EQ(decoded.value(), c.values);
}

std::vector<RleCase>
rleCases()
{
    std::vector<RleCase> cases;
    cases.push_back({"empty", {}, 4});
    cases.push_back({"single", {3}, 4});
    cases.push_back({"longRun", std::vector<uint64_t>(1000, 9), 4});
    {
        std::vector<uint64_t> alt;
        for (int i = 0; i < 999; ++i)
            alt.push_back(i % 2);
        cases.push_back({"alternating", alt, 1});
    }
    {
        std::vector<uint64_t> mixed;
        for (int r = 0; r < 10; ++r) {
            for (int i = 0; i < 50; ++i)
                mixed.push_back(r); // long runs
            for (int i = 0; i < 7; ++i)
                mixed.push_back(i); // short literals
        }
        cases.push_back({"mixedRunsAndLiterals", mixed, 8});
    }
    {
        Rng rng(77);
        std::vector<uint64_t> rnd;
        for (int i = 0; i < 5000; ++i)
            rnd.push_back(rng.next() & 0xffff);
        cases.push_back({"random16bit", rnd, 16});
    }
    cases.push_back({"allZerosWidthZero", std::vector<uint64_t>(100, 0), 0});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Cases, RleRoundTrip, ::testing::ValuesIn(rleCases()),
                         [](const auto &info) { return info.param.name; });

TEST(RleTest, TruncatedStreamIsCorruption)
{
    std::vector<uint64_t> values(100, 5);
    Bytes encoded = rleEncode(values, 8);
    Bytes truncated(encoded.begin(), encoded.begin() + 1);
    EXPECT_EQ(rleDecode(Slice(truncated), 8, 100).status().code(),
              StatusCode::kCorruption);
}

TEST(RleTest, RunExceedingCountIsCorruption)
{
    // An RLE run of 100 when the decoder expects only 10 values.
    std::vector<uint64_t> values(100, 5);
    Bytes encoded = rleEncode(values, 8);
    EXPECT_EQ(rleDecode(Slice(encoded), 8, 10).status().code(),
              StatusCode::kCorruption);
}

TEST(DictionaryTest, CodesAndCardinality)
{
    DictionaryEncoder<std::string> enc;
    EXPECT_EQ(enc.add("a"), 0u);
    EXPECT_EQ(enc.add("b"), 1u);
    EXPECT_EQ(enc.add("a"), 0u);
    EXPECT_EQ(enc.add("c"), 2u);
    EXPECT_EQ(enc.cardinality(), 3u);
    EXPECT_EQ(enc.valueCount(), 4u);
    std::vector<std::string> expect_dict = {"a", "b", "c"};
    EXPECT_EQ(enc.dictionary(), expect_dict);
}

TEST(DictionaryTest, DecodeRoundTrip)
{
    DictionaryEncoder<int64_t> enc;
    std::vector<int64_t> input = {5, 5, -3, 9, 5, -3};
    for (int64_t v : input)
        enc.add(v);
    std::vector<uint64_t> codes(enc.codes().begin(), enc.codes().end());
    auto decoded = dictionaryDecode(enc.dictionary(), codes);
    ASSERT_TRUE(decoded.isOk());
    EXPECT_EQ(decoded.value(), input);
}

TEST(DictionaryTest, OutOfRangeCodeIsCorruption)
{
    std::vector<int64_t> dict = {1, 2};
    std::vector<uint64_t> codes = {0, 5};
    EXPECT_EQ(dictionaryDecode(dict, codes).status().code(),
              StatusCode::kCorruption);
}

Bytes
toBytes(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

struct SnappyCase {
    const char *name;
    Bytes input;
};

class SnappyRoundTrip : public ::testing::TestWithParam<SnappyCase>
{
};

TEST_P(SnappyRoundTrip, Exact)
{
    const Bytes &input = GetParam().input;
    Bytes compressed = snappyCompress(Slice(input));
    auto len = snappyUncompressedLength(Slice(compressed));
    ASSERT_TRUE(len.isOk());
    EXPECT_EQ(len.value(), input.size());
    auto decompressed = snappyDecompress(Slice(compressed));
    ASSERT_TRUE(decompressed.isOk()) << decompressed.status().toString();
    EXPECT_EQ(decompressed.value(), input);
}

std::vector<SnappyCase>
snappyCases()
{
    std::vector<SnappyCase> cases;
    cases.push_back({"empty", {}});
    cases.push_back({"tiny", toBytes("abc")});
    cases.push_back({"repetitive", toBytes(std::string(100000, 'z'))});
    {
        std::string s;
        for (int i = 0; i < 5000; ++i)
            s += "the quick brown fox jumps over the lazy dog. ";
        cases.push_back({"englishLoop", toBytes(s)});
    }
    {
        Rng rng(99);
        Bytes b(200000);
        for (auto &byte : b)
            byte = static_cast<uint8_t>(rng.next());
        cases.push_back({"incompressibleRandom", b});
    }
    {
        // Periodic pattern with period > 2048 to force 2-byte offsets.
        Bytes b;
        Rng rng(5);
        Bytes period(5000);
        for (auto &byte : period)
            byte = static_cast<uint8_t>(rng.uniformInt(0, 3));
        for (int rep = 0; rep < 40; ++rep)
            b.insert(b.end(), period.begin(), period.end());
        cases.push_back({"longPeriod", b});
    }
    {
        // > 64 KiB period to force 4-byte offsets.
        Bytes b;
        Rng rng(6);
        Bytes period(70000);
        for (auto &byte : period)
            byte = static_cast<uint8_t>(rng.next());
        for (int rep = 0; rep < 3; ++rep)
            b.insert(b.end(), period.begin(), period.end());
        cases.push_back({"hugePeriod", b});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Cases, SnappyRoundTrip,
                         ::testing::ValuesIn(snappyCases()),
                         [](const auto &info) { return info.param.name; });

TEST(SnappyTest, CompressesRepetitiveData)
{
    Bytes input = toBytes(std::string(100000, 'q'));
    Bytes compressed = snappyCompress(Slice(input));
    // Copies are emitted in <= 64-byte pieces of 3 bytes each (as in
    // upstream Snappy), so constant input compresses about 21x.
    EXPECT_LT(compressed.size(), input.size() / 15);
}

TEST(SnappyTest, RandomDataExpandsOnlySlightly)
{
    Rng rng(123);
    Bytes input(100000);
    for (auto &b : input)
        b = static_cast<uint8_t>(rng.next());
    Bytes compressed = snappyCompress(Slice(input));
    EXPECT_LT(compressed.size(), input.size() + input.size() / 50 + 16);
}

TEST(SnappyTest, BadOffsetIsCorruption)
{
    Bytes stream;
    BinaryWriter w(stream);
    w.putVarU64(8);
    // Copy with 1-byte offset pointing before the start of output.
    stream.push_back(0x01); // tag: copy1, len 4, offset high bits 0
    stream.push_back(0x05); // offset 5 but output is empty
    EXPECT_EQ(snappyDecompress(Slice(stream)).status().code(),
              StatusCode::kCorruption);
}

TEST(SnappyTest, LengthMismatchIsCorruption)
{
    Bytes input = toBytes("hello world");
    Bytes compressed = snappyCompress(Slice(input));
    compressed[0] += 1; // claim one more byte than present
    EXPECT_EQ(snappyDecompress(Slice(compressed)).status().code(),
              StatusCode::kCorruption);
}

TEST(SnappyTest, TruncatedLiteralIsCorruption)
{
    Bytes input = toBytes("hello world, hello world");
    Bytes compressed = snappyCompress(Slice(input));
    Bytes truncated(compressed.begin(), compressed.begin() + 4);
    EXPECT_EQ(snappyDecompress(Slice(truncated)).status().code(),
              StatusCode::kCorruption);
}

class CompressionDispatch
    : public ::testing::TestWithParam<Compression>
{
};

TEST_P(CompressionDispatch, RoundTrip)
{
    std::string s;
    for (int i = 0; i < 1000; ++i)
        s += "payload-" + std::to_string(i % 13) + ";";
    Bytes input = toBytes(s);
    Bytes compressed = compress(GetParam(), Slice(input));
    auto back = decompress(GetParam(), Slice(compressed));
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value(), input);
}

INSTANTIATE_TEST_SUITE_P(Codecs, CompressionDispatch,
                         ::testing::Values(Compression::kNone,
                                           Compression::kSnappy));

TEST(CompressionTest, Names)
{
    EXPECT_STREQ(compressionName(Compression::kNone), "none");
    EXPECT_STREQ(compressionName(Compression::kSnappy), "snappy");
}

// Property sweep: snappy round-trips structured inputs of many sizes.
class SnappySizeSweep : public ::testing::TestWithParam<size_t>
{
};

TEST_P(SnappySizeSweep, RoundTrip)
{
    Rng rng(GetParam());
    Bytes input(GetParam());
    // Mix of runs and noise, similar to encoded column pages.
    size_t i = 0;
    while (i < input.size()) {
        if (rng.chance(0.5)) {
            size_t run = std::min<size_t>(input.size() - i,
                                          rng.uniformInt(1, 100));
            uint8_t v = static_cast<uint8_t>(rng.next());
            for (size_t j = 0; j < run; ++j)
                input[i++] = v;
        } else {
            input[i++] = static_cast<uint8_t>(rng.next());
        }
    }
    auto back = snappyDecompress(Slice(snappyCompress(Slice(input))));
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value(), input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SnappySizeSweep,
                         ::testing::Values(1, 2, 3, 15, 16, 17, 255, 256,
                                           4095, 65535, 65536, 1000000));

} // namespace
} // namespace fusion::codec
