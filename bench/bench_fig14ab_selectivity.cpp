/**
 * @file
 * Reproduces paper Figs 14a/14b: impact of query selectivity (0.1% to
 * 100%) on tail-latency reduction for column 5 (good for Fusion) and
 * column 9 (worst case). Paper: gains shrink as selectivity grows; at
 * 75-100% Fusion disables projection pushdown (Cost Equation) and
 * falls back to fetching compressed chunks, yet still wins a little
 * from filter pushdown.
 */
#include "benchutil/rigs.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

using namespace fusion;
using namespace fusion::benchutil;

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    banner("Fig 14a/14b", "latency reduction vs query selectivity");

    RigOptions options;
    options.rows = 60000;
    options.copies = 4;
    StorePair pair = makeStorePair(Dataset::kLineitem, options);

    RunConfig config;
    config.totalQueries = 250;

    const double selectivities[] = {0.001, 0.01, 0.05, 0.1,
                                    0.2,   0.5,  0.75, 1.0};

    // The paper sweeps its best column (c5) and a worst-performing
    // column (c9). Our c9 (l_linestatus) has only two distinct values,
    // so selectivity is not sweepable; l_quantity plays the role of the
    // modest, highly compressed column instead.
    for (size_t c : {workload::kExtendedPrice, workload::kQuantity}) {
        const char *label = (c == workload::kExtendedPrice)
                                ? "column 5 (best case)"
                                : "column 4 (modest, stands in for c9)";
        std::printf("\n%s (%s):\n", label,
                    workload::lineitemSchema().column(c).name.c_str());
        TablePrinter table({"selectivity (%)", "p50 reduction (%)",
                            "p99 reduction (%)", "fusion pushdowns",
                            "fusion fetches"});
        for (double sel : selectivities) {
            query::Query q = workload::microbenchQuery(
                "x", workload::lineitemSchema().column(c).name,
                pair.table.column(c), sel);
            Comparison cmp =
                compareStores(pair, config, [&](size_t) { return q; });
            table.addRow({fmt("%.1f", sel * 100.0),
                          fmt("%.1f", cmp.p50ReductionPct()),
                          fmt("%.1f", cmp.p99ReductionPct()),
                          std::to_string(cmp.fusion.projectionPushdowns),
                          std::to_string(cmp.fusion.projectionFetches)});
        }
        table.print();
    }
    std::printf("\npaper: reductions shrink with selectivity; pushdown "
                "disabled at high selectivity x compressibility\n");
    return 0;
}
