// Fixture: each line tagged `BAD: <rule>` must produce exactly that
// finding; untagged lines must produce none.
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Index {
    std::unordered_map<std::string, int> byName;
    std::unordered_set<int> liveIds;
    std::map<std::string, int> sortedByName;
};

void
dump(const Index &idx)
{
    for (const auto &[name, id] : idx.byName) // BAD: unordered-iter
        std::printf("%s=%d\n", name.c_str(), id);

    for (int id : idx.liveIds) // BAD: unordered-iter
        std::printf("%d\n", id);

    // Sorted container: fine.
    for (const auto &[name, id] : idx.sortedByName)
        std::printf("%s=%d\n", name.c_str(), id);

    // Point lookups into unordered containers are fine.
    if (idx.byName.count("x"))
        std::printf("has x\n");

    // Classic for over a vector is fine.
    std::vector<int> v{3, 1, 2};
    for (size_t i = 0; i < v.size(); ++i)
        std::printf("%d\n", v[i]);
}
