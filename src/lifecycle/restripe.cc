#include "restripe.h"

namespace fusion::lifecycle {

RestripeDecision
decideRestripe(const obs::ChunkHeatTable &heat, double now_seconds,
               const std::string &old_share_name, size_t num_columns,
               size_t old_data_chunks, size_t new_row_groups,
               const RestripeOptions &options)
{
    RestripeDecision out;
    if (num_columns < 2) {
        out.reason = "uniform-heat";
        return out;
    }

    std::vector<double> column_heat(num_columns, 0.0);
    double total = 0.0;
    for (size_t chunk = 0; chunk < old_data_chunks; ++chunk) {
        double h = heat.heat(old_share_name,
                             static_cast<uint32_t>(chunk), now_seconds);
        column_heat[chunk % num_columns] += h;
        total += h;
    }
    if (total < options.minTotalHeat) {
        out.reason = "insufficient-heat";
        return out;
    }

    const double uniform = total / static_cast<double>(num_columns);
    for (size_t col = 0; col < num_columns; ++col) {
        if (column_heat[col] > options.hotFactor * uniform)
            out.hotColumns.push_back(col);
    }
    if (out.hotColumns.empty() || out.hotColumns.size() == num_columns) {
        out.hotColumns.clear();
        out.reason = "uniform-heat";
        return out;
    }

    out.heatDriven = true;
    out.reason = "heat-colocate cols=";
    for (size_t i = 0; i < out.hotColumns.size(); ++i) {
        if (i > 0)
            out.reason += ",";
        out.reason += std::to_string(out.hotColumns[i]);
    }
    for (size_t rg = 0; rg < new_row_groups; ++rg) {
        for (size_t col : out.hotColumns)
            out.hotChunks.push_back(
                static_cast<uint32_t>(rg * num_columns + col));
    }
    return out;
}

} // namespace fusion::lifecycle
