/**
 * @file
 * In-memory columnar data: a typed column vector and a table (schema +
 * columns). This is the decoded form produced by the reader and
 * consumed by the writer and the query engine.
 */
#ifndef FUSION_FORMAT_COLUMN_H
#define FUSION_FORMAT_COLUMN_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "types.h"
#include "value.h"

namespace fusion::format {

/** A single decoded column: a homogeneous vector of one physical type. */
class ColumnData
{
  public:
    ColumnData() : data_(std::vector<int64_t>{}) {}
    explicit ColumnData(PhysicalType t);

    PhysicalType type() const;
    size_t size() const;
    bool empty() const { return size() == 0; }

    void append(int32_t v) { std::get<Int32s>(data_).push_back(v); }
    void append(int64_t v) { std::get<Int64s>(data_).push_back(v); }
    void append(double v) { std::get<Doubles>(data_).push_back(v); }
    void append(std::string v)
    {
        std::get<Strings>(data_).push_back(std::move(v));
    }

    /** Appends a Value; its type must match the column type. */
    void appendValue(const Value &v);

    /** Value at row i, boxed. */
    Value valueAt(size_t i) const;

    const std::vector<int32_t> &int32s() const
    {
        return std::get<Int32s>(data_);
    }
    const std::vector<int64_t> &int64s() const
    {
        return std::get<Int64s>(data_);
    }
    const std::vector<double> &doubles() const
    {
        return std::get<Doubles>(data_);
    }
    const std::vector<std::string> &strings() const
    {
        return std::get<Strings>(data_);
    }

    /** Bytes this column would occupy in plain encoding. */
    uint64_t plainEncodedSize() const;

    bool operator==(const ColumnData &o) const { return data_ == o.data_; }

  private:
    using Int32s = std::vector<int32_t>;
    using Int64s = std::vector<int64_t>;
    using Doubles = std::vector<double>;
    using Strings = std::vector<std::string>;

    std::variant<Int32s, Int64s, Doubles, Strings> data_;
};

/** An in-memory table: schema plus one ColumnData per column. */
class Table
{
  public:
    Table() = default;
    explicit Table(Schema schema);

    const Schema &schema() const { return schema_; }
    size_t numColumns() const { return columns_.size(); }
    size_t numRows() const;

    ColumnData &column(size_t id) { return columns_.at(id); }
    const ColumnData &column(size_t id) const { return columns_.at(id); }

    /** Verifies all columns have equal length and match the schema. */
    Status validate() const;

    /** Sub-table with rows [begin, end) from every column. */
    Table sliceRows(size_t begin, size_t end) const;

  private:
    Schema schema_;
    std::vector<ColumnData> columns_;
};

} // namespace fusion::format

#endif // FUSION_FORMAT_COLUMN_H
