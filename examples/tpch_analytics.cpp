/**
 * @file
 * TPC-H analytics on Fusion vs. the baseline store: generates the
 * lineitem table, uploads it to both stores, and runs the paper's Q1
 * (projection heavy) and Q2 (filter heavy) plus a 1%-selectivity
 * microbenchmark, reporting latency and network traffic side by side.
 *
 *   ./build/examples/tpch_analytics [rows]
 */
#include <cstdio>
#include <cstdlib>

#include "benchutil/rigs.h"
#include "common/units.h"
#include "store/baseline_store.h"
#include "store/fusion_store.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

using namespace fusion;

namespace {

void
report(const char *name, const store::QueryOutcome &baseline,
       const store::QueryOutcome &fusion)
{
    double reduction = (baseline.latencySeconds - fusion.latencySeconds) /
                       baseline.latencySeconds * 100.0;
    double traffic_x = static_cast<double>(baseline.networkBytes) /
                       std::max<uint64_t>(fusion.networkBytes, 1);
    std::printf("%-14s baseline %-10s fusion %-10s reduction %5.1f%%  "
                "traffic %5.1fx lower (pushdowns: %zu proj, %zu filter; "
                "fetched instead: %zu)\n",
                name, formatSeconds(baseline.latencySeconds).c_str(),
                formatSeconds(fusion.latencySeconds).c_str(), reduction,
                traffic_x, fusion.projectionPushdowns,
                fusion.filterChunkPushdowns, fusion.projectionFetches);
}

} // namespace

int
main(int argc, char **argv)
{
    size_t rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60000;

    std::printf("generating TPC-H lineitem with %zu rows...\n", rows);
    format::Table table = workload::makeLineitemTable(rows, 42);
    auto file = workload::buildLineitemFile(rows, 42);
    if (!file.isOk()) {
        std::fprintf(stderr, "generation failed: %s\n",
                     file.status().toString().c_str());
        return 1;
    }
    std::printf("encoded file: %s (%zu column chunks)\n",
                formatBytes(file.value().bytes.size()).c_str(),
                file.value().metadata.numChunks());

    // 9 storage nodes, 25 Gbps NICs; service rates scaled so this
    // generated file behaves like the paper's 10 GB lineitem.
    sim::ClusterConfig cluster_config;
    cluster_config.node = benchutil::scaledNodeConfig(
        cluster_config.node, file.value().bytes.size(), 10e9);
    store::StoreOptions options;
    options.fixedBlockSize =
        std::max<uint64_t>(file.value().bytes.size() / 100, 64 << 10);

    sim::Cluster baseline_cluster(cluster_config);
    sim::Cluster fusion_cluster(cluster_config);
    store::BaselineStore baseline(baseline_cluster, options);
    store::FusionStore fusion(fusion_cluster, options);

    for (store::ObjectStore *s :
         {static_cast<store::ObjectStore *>(&baseline),
          static_cast<store::ObjectStore *>(&fusion)}) {
        auto put = s->put("lineitem", file.value().bytes);
        if (!put.isOk()) {
            std::fprintf(stderr, "put failed: %s\n",
                         put.status().toString().c_str());
            return 1;
        }
        std::printf("%s store: layout=%s, split chunks=%.1f%%, "
                    "overhead vs optimal=%.2f%%\n",
                    s->kindName(),
                    fac::layoutKindName(put.value().layoutKind),
                    put.value().splitFraction * 100.0,
                    put.value().overheadVsOptimal * 100.0);
    }

    struct NamedQuery {
        const char *name;
        query::Query query;
    };
    std::vector<NamedQuery> queries;
    queries.push_back({"Q1 (proj)", workload::lineitemQ1("lineitem", table)});
    queries.push_back({"Q2 (filter)", workload::lineitemQ2("lineitem",
                                                           table)});
    queries.push_back(
        {"micro c5 1%",
         workload::microbenchQuery(
             "lineitem", "l_extendedprice",
             table.column(workload::kExtendedPrice), 0.01)});
    queries.push_back(
        {"micro c15 1%",
         workload::microbenchQuery("lineitem", "l_comment",
                                   table.column(workload::kComment),
                                   0.01)});

    std::printf("\n");
    for (const auto &nq : queries) {
        auto b = baseline.query(nq.query);
        auto f = fusion.query(nq.query);
        if (!b.isOk() || !f.isOk()) {
            std::fprintf(stderr, "query failed\n");
            return 1;
        }
        if (b.value().result.rowsMatched != f.value().result.rowsMatched) {
            std::fprintf(stderr, "result mismatch between stores!\n");
            return 1;
        }
        report(nq.name, b.value(), f.value());
    }
    return 0;
}
