/**
 * @file
 * Predicate evaluation over decoded column chunks, zone-map pruning
 * over chunk statistics, row selection and aggregate computation — the
 * data-plane primitives both stores execute (on a storage node when
 * pushed down, on the coordinator otherwise).
 */
#ifndef FUSION_QUERY_EVAL_H
#define FUSION_QUERY_EVAL_H

#include "ast.h"
#include "bitmap.h"
#include "format/column.h"
#include "format/metadata.h"

namespace fusion::query {

/** Compares a boxed value against a literal under `op`. */
bool compareValues(const format::Value &lhs, CompareOp op,
                   const format::Value &rhs);

/**
 * Evaluates <column op literal> over every row of a decoded chunk.
 * kInvalidArgument if the literal type is incompatible with the column.
 */
Result<Bitmap> evalPredicate(const format::ColumnData &column, CompareOp op,
                             const format::Value &literal);

/**
 * Boxed row-at-a-time reference implementation of evalPredicate (via
 * compareValues). Kept as the semantic oracle the word-wise typed
 * kernels are tested and benchmarked against.
 */
Result<Bitmap> evalPredicateReference(const format::ColumnData &column,
                                      CompareOp op,
                                      const format::Value &literal);

/**
 * Zone-map test: can any row of a chunk with the given min/max match
 * the predicate? False positives are fine; false negatives are not.
 */
bool zoneMapMayMatch(const format::ChunkMeta &meta, const Predicate &pred);

/**
 * Full chunk-skipping test: zone maps for ranges plus the chunk's
 * Bloom filter for equality predicates (when present and the literal
 * type matches the column's stored type).
 */
bool chunkMayMatch(const format::ChunkMeta &meta, const Predicate &pred);

/** Copies the rows of `column` whose bits are set into a new column. */
format::ColumnData selectRows(const format::ColumnData &column,
                              const Bitmap &rows);

/**
 * Computes an aggregate over a (already filtered) column. COUNT works
 * on any type; SUM/AVG/MIN/MAX require numeric columns.
 */
Result<double> computeAggregate(AggregateKind kind,
                                const format::ColumnData &values);

} // namespace fusion::query

#endif // FUSION_QUERY_EVAL_H
