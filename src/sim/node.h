/**
 * @file
 * A simulated storage node: disk, NIC (both directions) and CPU
 * resources plus an in-memory block store holding real bytes. Nodes
 * execute pushed-down work in the stores' query flows; this class only
 * provides the resources, storage and liveness state.
 */
#ifndef FUSION_SIM_NODE_H
#define FUSION_SIM_NODE_H

#include <memory>
#include <string>
#include <unordered_map>

#include "common/bytes.h"
#include "resource.h"

namespace fusion::sim {

/** Per-node performance parameters (defaults mirror §6's r6525 nodes,
 *  with the NIC shaped to 25 Gbps as in the paper's experiments).
 *  cpuRate is per core over the store's decode-work unit (compressed
 *  bytes + a fraction of decoded output; see ObjectStore). */
struct NodeConfig {
    double diskBandwidth = 4.0e9;   // bytes/s sequential NVMe read
    double diskSeekLatency = 50e-6; // per-request positioning cost
    double nicBandwidth = 25e9 / 8; // bytes/s each direction
    double rpcLatency = 150e-6;     // one-way message latency
    double cpuRate = 6.0e9;         // decode work units/s per core
    size_t cpuCores = 16;
    /**
     * CPU work units consumed per byte sent or received (kernel network
     * stack / RPC serialization). This is how moving less data saves
     * CPU — the effect behind the paper's Fig 14d.
     */
    double networkCpuFactor = 0.5;
};

/** One storage (or client/coordinator) node in the simulated cluster. */
class StorageNode
{
  public:
    StorageNode(SimEngine &engine, size_t id, const NodeConfig &config);

    size_t id() const { return id_; }
    bool alive() const { return alive_; }
    void setAlive(bool alive) { alive_ = alive; }

    /**
     * Gray-failure injection: factor > 1 slows every resource of this
     * node (disk, both NIC directions, CPU) to rate / factor. Factor 1
     * restores full speed. Liveness is independent — a slow node still
     * answers, just late; stores treat "too slow" as timed out.
     */
    void setSlowFactor(double factor);
    double slowFactor() const { return slowFactor_; }

    SimResource &disk() { return disk_; }
    SimResource &nicIn() { return nicIn_; }
    SimResource &nicOut() { return nicOut_; }
    SimResource &cpu() { return cpu_; }

    const NodeConfig &config() const { return config_; }

    /** Stores (or overwrites) a named block on this node. */
    void putBlock(const std::string &key, Bytes data);

    /** Pointer to a block's bytes, or nullptr if absent. Liveness is
     *  intentionally not checked here — callers decide how to treat
     *  dead nodes (e.g. degraded reads still know what *would* be
     *  there). */
    const Bytes *findBlock(const std::string &key) const;

    /** Removes a block; true if it existed. */
    bool dropBlock(const std::string &key);

    /** Simulates full media loss (e.g. disk replacement). */
    void
    wipe()
    {
        blocks_.clear();
        storedBytes_ = 0;
    }

    size_t blockCount() const { return blocks_.size(); }
    uint64_t storedBytes() const { return storedBytes_; }

  private:
    size_t id_;
    NodeConfig config_;
    bool alive_ = true;
    double slowFactor_ = 1.0;
    SimResource disk_;
    SimResource nicIn_;
    SimResource nicOut_;
    SimResource cpu_;
    std::unordered_map<std::string, Bytes> blocks_;
    uint64_t storedBytes_ = 0;
};

} // namespace fusion::sim

#endif // FUSION_SIM_NODE_H
