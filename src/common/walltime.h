/**
 * @file
 * The repo's only sanctioned wall-clock access point. Everything the
 * system *decides* runs on simulated time (sim::SimEngine) or on
 * deterministic work budgets; wall time exists purely for reporting —
 * benchmark throughput, solver runtimes, overhead guards. Routing
 * every reading through this shim keeps raw clock APIs
 * (steady_clock/system_clock/time()) out of the tree, where a stray
 * use could silently feed timing noise into simulation results or
 * Cost-Equation decisions. fusion-lint (rule `wallclock`) bans the raw
 * APIs everywhere except this shim's implementation.
 *
 * Never mix these values into simulated seconds, metric counters that
 * are byte-compared across runs, or layout/pushdown decisions.
 */
#ifndef FUSION_COMMON_WALLTIME_H
#define FUSION_COMMON_WALLTIME_H

#include <cstdint>

namespace fusion::walltime {

/** Monotonic wall-clock seconds since an arbitrary epoch. Reporting
 *  only — see the file comment. */
double monotonicSeconds();

/** Monotonic wall-clock nanoseconds since an arbitrary epoch. */
uint64_t monotonicNanos();

} // namespace fusion::walltime

#endif // FUSION_COMMON_WALLTIME_H
