#include "manifest.h"

#include <algorithm>

namespace fusion::store {

std::vector<size_t>
ObjectManifest::nodesForChunk(uint32_t chunk_id) const
{
    std::vector<size_t> nodes;
    for (const auto &piece : chunkPieces.at(chunk_id)) {
        size_t node = stripeNodes.at(piece.stripe).at(piece.blockIndex);
        if (std::find(nodes.begin(), nodes.end(), node) == nodes.end())
            nodes.push_back(node);
    }
    return nodes;
}

std::string
ObjectManifest::blockKey(size_t stripe, size_t block_index) const
{
    return name + "#s" + std::to_string(stripe) + "#b" +
           std::to_string(block_index);
}

void
ObjectManifest::buildLocationMap()
{
    chunkPieces.assign(extents.size(), {});
    for (size_t s = 0; s < layout.stripes.size(); ++s) {
        const auto &stripe = layout.stripes[s];
        for (size_t b = 0; b < stripe.dataBlocks.size(); ++b) {
            uint64_t block_offset = 0;
            for (const auto &piece : stripe.dataBlocks[b].pieces) {
                if (!piece.isPadding()) {
                    chunkPieces.at(piece.chunkId)
                        .push_back({s, b, block_offset, piece.chunkOffset,
                                    piece.size});
                }
                block_offset += piece.size;
            }
        }
    }
    // Keep pieces of each chunk in chunk-offset order for reassembly.
    for (auto &pieces : chunkPieces) {
        std::sort(pieces.begin(), pieces.end(),
                  [](const PieceLocation &a, const PieceLocation &b) {
                      return a.chunkOffset < b.chunkOffset;
                  });
    }
}

} // namespace fusion::store
