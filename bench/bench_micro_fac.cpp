/**
 * @file
 * google-benchmark microbenchmarks for FAC stripe construction: the
 * paper reports 10s-100s of microseconds for real objects (§4.2,
 * ~500 us for an 11 GB file), i.e. a negligible share of Put latency.
 */
#include <benchmark/benchmark.h>

#include "fac/constructors.h"
#include "workload/chunk_models.h"

using namespace fusion;

namespace {

void
BM_FacLayout(benchmark::State &state)
{
    auto chunks = workload::zipfChunkModel(
        static_cast<size_t>(state.range(0)), 0.5, 17);
    for (auto _ : state) {
        auto layout = fac::buildFacLayout(chunks, 9, 6);
        benchmark::DoNotOptimize(layout);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_FacLayout)->Arg(160)->Arg(320)->Arg(1000)->Arg(5000);

void
BM_FacLayoutLineitem(benchmark::State &state)
{
    auto chunks = workload::lineitemChunkModel(5);
    for (auto _ : state) {
        auto layout = fac::buildFacLayout(chunks, 9, 6);
        benchmark::DoNotOptimize(layout);
    }
}
BENCHMARK(BM_FacLayoutLineitem);

void
BM_PaddingLayout(benchmark::State &state)
{
    auto chunks = workload::lineitemChunkModel(5);
    for (auto _ : state) {
        auto layout = fac::buildPaddingLayout(chunks, 9, 6, 100'000'000);
        benchmark::DoNotOptimize(layout);
    }
}
BENCHMARK(BM_PaddingLayout);

void
BM_FixedLayout(benchmark::State &state)
{
    auto chunks = workload::lineitemChunkModel(5);
    for (auto _ : state) {
        auto layout = fac::buildFixedLayout(chunks, 9, 6, 100'000'000);
        benchmark::DoNotOptimize(layout);
    }
}
BENCHMARK(BM_FixedLayout);

} // namespace

BENCHMARK_MAIN();
