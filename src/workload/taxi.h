/**
 * @file
 * NYC yellow-taxi-style generator: 20 columns of trip records spanning
 * 2015-2017 (paper Table 3). Compared to lineitem the chunk sizes are
 * much more uniform (paper Fig 4c) because most columns are numeric
 * with moderate cardinality; the fare column is engineered to be very
 * highly compressible (metered fares cluster on a small value grid),
 * which drives the paper's Q4 pushdown-disable case.
 */
#ifndef FUSION_WORKLOAD_TAXI_H
#define FUSION_WORKLOAD_TAXI_H

#include "format/column.h"
#include "format/writer.h"

namespace fusion::workload {

/** Column ids of the taxi table. */
enum TaxiColumn : size_t {
    kVendorId = 0,
    kPickupDate = 1, // days since 2015-01-01
    kPickupTime = 2, // seconds since 2015-01-01
    kDropoffTime = 3,
    kPassengerCount = 4,
    kTripDistance = 5,
    kTripDuration = 6, // seconds
    kPickupLongitude = 7,
    kPickupLatitude = 8,
    kDropoffLongitude = 9,
    kDropoffLatitude = 10,
    kRateCode = 11,
    kStoreAndFwd = 12,
    kPaymentType = 13,
    kFareAmount = 14,
    kExtra = 15,
    kMtaTax = 16,
    kTipAmount = 17,
    kTollsAmount = 18,
    kTotalAmount = 19,
};

format::Schema taxiSchema();

/** Generates `rows` taxi trips (deterministic per seed). */
format::Table makeTaxiTable(size_t rows, uint64_t seed);

/** Encodes a taxi fpax file with 16 row groups (320 chunks, Table 3). */
Result<format::WrittenFile> buildTaxiFile(size_t rows, uint64_t seed);

} // namespace fusion::workload

#endif // FUSION_WORKLOAD_TAXI_H
