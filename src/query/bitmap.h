/**
 * @file
 * Row bitmap used by the two-stage executor: storage nodes return one
 * bitmap per filtered chunk; the coordinator ANDs them into the final
 * selection whose popcount is the query's exact selectivity (paper
 * §4.3). Bitmaps are Snappy-compressed on the wire.
 */
#ifndef FUSION_QUERY_BITMAP_H
#define FUSION_QUERY_BITMAP_H

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace fusion::query {

/** Fixed-size bitset over row indices [0, size). */
class Bitmap
{
  public:
    Bitmap() = default;
    explicit Bitmap(size_t size, bool initial = false);

    size_t size() const { return size_; }

    void
    set(size_t i)
    {
        FUSION_CHECK(i < size_);
        words_[i >> 6] |= (1ULL << (i & 63));
    }

    void
    clear(size_t i)
    {
        FUSION_CHECK(i < size_);
        words_[i >> 6] &= ~(1ULL << (i & 63));
    }

    bool
    test(size_t i) const
    {
        FUSION_CHECK(i < size_);
        return words_[i >> 6] & (1ULL << (i & 63));
    }

    /** Number of 64-bit words backing the bitmap. */
    size_t numWords() const { return words_.size(); }

    /** Raw word `w` (bit i of word w is row w*64+i). */
    uint64_t
    word(size_t w) const
    {
        return words_[w];
    }

    /**
     * Overwrites word `w`. Bits beyond size() in the last word are
     * masked off so count() stays exact — the fast path for kernels
     * that produce 64 row verdicts at a time.
     */
    void
    setWord(size_t w, uint64_t bits)
    {
        FUSION_CHECK(w < words_.size());
        if (w + 1 == words_.size() && (size_ & 63) != 0)
            bits &= (1ULL << (size_ & 63)) - 1;
        words_[w] = bits;
    }

    /** Number of set bits. */
    size_t count() const;

    /** Fraction of set bits, in [0, 1]. */
    double
    selectivity() const
    {
        return size_ == 0 ? 0.0
                          : static_cast<double>(count()) /
                                static_cast<double>(size_);
    }

    /** In-place intersection; sizes must match. */
    void intersect(const Bitmap &other);

    /** In-place union; sizes must match. */
    void unionWith(const Bitmap &other);

    /** Serialized form (varint size + raw words). */
    Bytes toBytes() const;
    static Result<Bitmap> fromBytes(Slice bytes);

    /** Size of the Snappy-compressed serialized form — what a storage
     *  node actually sends to the coordinator. */
    uint64_t compressedWireSize() const;

    bool operator==(const Bitmap &other) const = default;

  private:
    size_t size_ = 0;
    std::vector<uint64_t> words_;
};

} // namespace fusion::query

#endif // FUSION_QUERY_BITMAP_H
