/**
 * @file
 * fpax file reader: parses the footer, exposes per-chunk byte extents
 * (for FAC and the stores) and decodes chunks back to columns.
 */
#ifndef FUSION_FORMAT_READER_H
#define FUSION_FORMAT_READER_H

#include <string>
#include <vector>

#include "chunk_codec.h"
#include "column.h"
#include "metadata.h"

namespace fusion::format {

/**
 * Non-owning reader over a complete fpax file image. The underlying
 * bytes must outlive the reader.
 */
class FileReader
{
  public:
    /** Validates magic/footer and builds a reader. */
    static Result<FileReader> open(Slice file);

    const FileMetadata &metadata() const { return metadata_; }
    const Schema &schema() const { return metadata_.schema; }

    /** Raw (encoded, compressed) bytes of one chunk. */
    Slice chunkBytes(size_t row_group, size_t column) const;

    /** Decodes one chunk into a column vector. */
    Result<ColumnData> readChunk(size_t row_group, size_t column) const;

    /** Decodes the entire file back into a table. */
    Result<Table> readTable() const;

    /**
     * Decodes only the named columns (in the given order) across all
     * row groups — the columnar-scan access path: untouched columns'
     * chunks are never decoded.
     */
    Result<Table> readColumns(
        const std::vector<std::string> &column_names) const;

  private:
    FileReader(Slice file, FileMetadata metadata)
        : file_(file), metadata_(std::move(metadata))
    {
    }

    Slice file_;
    FileMetadata metadata_;
};

} // namespace fusion::format

#endif // FUSION_FORMAT_READER_H
