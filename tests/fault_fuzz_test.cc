/**
 * @file
 * Seeded-random fault property tests. For any generated fault schedule
 * within the erasure-coding tolerance, Fusion's query results must be
 * identical to an in-memory reference evaluation over the source table
 * — faults may change latency and routing, never answers. And the
 * whole fault subsystem must be deterministic: the same seed yields
 * the same schedule, the same applied trace and the same counters.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>

#include "common/random.h"
#include "query/eval.h"
#include "sim/fault.h"
#include "store/fusion_store.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

namespace fusion::store {
namespace {

constexpr size_t kRows = 4000;
constexpr uint64_t kDataSeed = 7;
constexpr double kHorizon = 0.06; // seconds of simulated query traffic

struct TestRig {
    std::unique_ptr<sim::Cluster> cluster;
    std::unique_ptr<ObjectStore> store;
    std::unique_ptr<sim::FaultInjector> faults;
};

TestRig
makeFusionRig()
{
    TestRig rig;
    sim::ClusterConfig config;
    config.numNodes = 9;
    rig.cluster = std::make_unique<sim::Cluster>(config);
    rig.store = std::make_unique<FusionStore>(*rig.cluster, StoreOptions{});
    return rig;
}

const format::Table &
lineitemTable()
{
    static format::Table table =
        workload::makeLineitemTable(kRows, kDataSeed);
    return table;
}

Bytes
lineitemBytes()
{
    static Bytes bytes = [] {
        auto file = workload::buildLineitemFile(kRows, kDataSeed);
        FUSION_CHECK(file.isOk());
        return file.value().bytes;
    }();
    return bytes;
}

/**
 * Schedules within tolerance: at most 2 concurrent crash outages plus
 * at most 1 slowdown (which the read timeout may classify as
 * unresponsive), so no read ever sees more than the RS(9,6) erasure
 * budget of 3 unavailable nodes.
 */
sim::FaultSchedule
randomSchedule(uint64_t seed)
{
    sim::RandomFaultOptions fopts;
    fopts.seed = seed;
    fopts.numNodes = 9;
    fopts.horizonSeconds = kHorizon;
    fopts.crashCount = 2;
    fopts.slowCount = 1;
    fopts.meanDowntimeSeconds = kHorizon / 4.0;
    fopts.maxSlowFactor = 12.0; // past the timeout threshold (~6.7)
    fopts.maxConcurrentDown = 2;
    return sim::FaultSchedule::random(fopts);
}

/** Seeded query generator: calibrated-selectivity scans over a
 *  rotating set of columns, every third one aggregated. */
std::vector<query::Query>
randomQueries(uint64_t seed, size_t count)
{
    static const size_t kColumns[] = {
        workload::kQuantity, workload::kExtendedPrice,
        workload::kDiscount, workload::kComment};
    const format::Table &table = lineitemTable();
    Rng rng(seed * 0x9e3779b9ULL + 1);
    std::vector<query::Query> queries;
    for (size_t i = 0; i < count; ++i) {
        size_t col = kColumns[rng.uniformInt(0, 3)];
        const std::string &name = table.schema().column(col).name;
        double selectivity = rng.uniformReal(0.01, 0.4);
        query::Query q = workload::microbenchQuery(
            "lineitem", name, table.column(col), selectivity);
        if (i % 3 == 2) {
            q.projections.clear();
            query::Projection count_star;
            count_star.aggregate = query::AggregateKind::kCount;
            q.projections.push_back(count_star);
            if (table.column(col).type() != format::PhysicalType::kString) {
                query::Projection sum;
                sum.column = name;
                sum.aggregate = query::AggregateKind::kSum;
                q.projections.push_back(sum);
            }
        }
        queries.push_back(std::move(q));
    }
    return queries;
}

/** In-memory reference engine: evaluates the query row-by-row over
 *  the decoded source table, independent of the store entirely. */
query::QueryResult
referenceEval(const format::Table &table, const query::Query &q)
{
    size_t rows = table.numRows();
    std::vector<bool> match(rows, true);
    for (const auto &pred : q.filters) {
        size_t col = table.schema().columnIndex(pred.column).value();
        const format::ColumnData &data = table.column(col);
        for (size_t r = 0; r < rows; ++r)
            if (match[r] && !query::compareValues(data.valueAt(r), pred.op,
                                                  pred.literal))
                match[r] = false;
    }
    query::QueryResult out;
    for (size_t r = 0; r < rows; ++r)
        if (match[r])
            ++out.rowsMatched;
    for (const auto &proj : q.projections) {
        query::ProjectionResult pr;
        if (proj.isCountStar()) {
            pr.isAggregate = true;
            pr.aggregateValue = static_cast<double>(out.rowsMatched);
            out.columns.push_back(std::move(pr));
            continue;
        }
        size_t col = table.schema().columnIndex(proj.column).value();
        const format::ColumnData &data = table.column(col);
        format::ColumnData selected(data.type());
        for (size_t r = 0; r < rows; ++r)
            if (match[r])
                selected.appendValue(data.valueAt(r));
        if (proj.aggregate == query::AggregateKind::kNone) {
            pr.values = std::move(selected);
        } else {
            pr.isAggregate = true;
            auto agg = query::computeAggregate(proj.aggregate, selected);
            FUSION_CHECK(agg.isOk());
            pr.aggregateValue = agg.value();
        }
        out.columns.push_back(std::move(pr));
    }
    return out;
}

std::vector<Result<QueryOutcome>>
runAt(ObjectStore &store,
      const std::vector<std::pair<double, query::Query>> &timeline)
{
    std::vector<std::optional<Result<QueryOutcome>>> captured(
        timeline.size());
    sim::SimEngine &engine = store.cluster().engine();
    for (size_t i = 0; i < timeline.size(); ++i) {
        engine.scheduleAt(timeline[i].first, [&store, &captured, &timeline,
                                              i]() {
            store.queryAsync(timeline[i].second,
                             [&captured, i](Result<QueryOutcome> outcome) {
                                 captured[i].emplace(std::move(outcome));
                             });
        });
    }
    engine.run();
    std::vector<Result<QueryOutcome>> out;
    for (auto &c : captured) {
        FUSION_CHECK_MSG(c.has_value(), "query did not complete");
        out.push_back(std::move(*c));
    }
    return out;
}

std::vector<std::pair<double, query::Query>>
spreadOverHorizon(const std::vector<query::Query> &queries)
{
    std::vector<std::pair<double, query::Query>> timeline;
    for (size_t i = 0; i < queries.size(); ++i)
        timeline.emplace_back(
            kHorizon * static_cast<double>(i) /
                static_cast<double>(queries.size()),
            queries[i]);
    return timeline;
}

TEST(FaultFuzzTest, FusionAgreesWithReferenceUnderRandomFaults)
{
    const format::Table &table = lineitemTable();
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        TestRig rig = makeFusionRig();
        ASSERT_TRUE(rig.store->put("lineitem", lineitemBytes()).isOk());
        rig.faults = std::make_unique<sim::FaultInjector>(
            *rig.cluster, randomSchedule(seed));
        rig.faults->arm();

        auto queries = randomQueries(seed, 9);
        auto outcomes = runAt(*rig.store, spreadOverHorizon(queries));
        ASSERT_EQ(outcomes.size(), queries.size());
        for (size_t i = 0; i < outcomes.size(); ++i) {
            ASSERT_TRUE(outcomes[i].isOk())
                << "seed " << seed << " query " << i << " ["
                << queries[i].toString()
                << "]: " << outcomes[i].status().toString() << "\ntrace:\n"
                << rig.faults->traceString();
            query::QueryResult expect = referenceEval(table, queries[i]);
            const query::QueryResult &got = outcomes[i].value().result;
            EXPECT_EQ(got.rowsMatched, expect.rowsMatched)
                << "seed " << seed << " query " << i;
            ASSERT_EQ(got.columns.size(), expect.columns.size());
            for (size_t c = 0; c < got.columns.size(); ++c) {
                EXPECT_EQ(got.columns[c].isAggregate,
                          expect.columns[c].isAggregate);
                if (expect.columns[c].isAggregate)
                    EXPECT_DOUBLE_EQ(got.columns[c].aggregateValue,
                                     expect.columns[c].aggregateValue)
                        << "seed " << seed << " query " << i;
                else
                    EXPECT_TRUE(got.columns[c].values ==
                                expect.columns[c].values)
                        << "seed " << seed << " query " << i;
            }
        }
        // Every schedule actually fired.
        EXPECT_FALSE(rig.faults->applied().empty()) << "seed " << seed;
    }
}

TEST(FaultFuzzTest, SameSeedYieldsSameScheduleAndTrace)
{
    const uint64_t seed = 0xdecaf;
    // Schedule generation is a pure function of the seed.
    EXPECT_EQ(randomSchedule(seed).toString(),
              randomSchedule(seed).toString());

    std::string traces[2];
    std::string schedules[2];
    ObjectStore::FaultStats stats[2];
    std::vector<double> latencies[2];
    for (int round = 0; round < 2; ++round) {
        TestRig rig = makeFusionRig();
        ASSERT_TRUE(rig.store->put("lineitem", lineitemBytes()).isOk());
        sim::FaultSchedule schedule = randomSchedule(seed);
        schedules[round] = schedule.toString();
        rig.faults =
            std::make_unique<sim::FaultInjector>(*rig.cluster, schedule);
        rig.faults->arm();

        auto outcomes =
            runAt(*rig.store, spreadOverHorizon(randomQueries(seed, 9)));
        for (const auto &outcome : outcomes) {
            ASSERT_TRUE(outcome.isOk());
            latencies[round].push_back(outcome.value().latencySeconds);
        }
        traces[round] = rig.faults->traceString();
        stats[round] = rig.store->faultStats();
    }
    EXPECT_EQ(schedules[0], schedules[1]);
    EXPECT_EQ(traces[0], traces[1]);
    EXPECT_TRUE(stats[0] == stats[1]);
    EXPECT_EQ(latencies[0], latencies[1]);
    // And the trace is non-trivial: events actually applied.
    EXPECT_NE(traces[0].find("crash"), std::string::npos);
}

TEST(FaultFuzzTest, DifferentSeedsYieldDifferentSchedules)
{
    EXPECT_NE(randomSchedule(11).toString(),
              randomSchedule(12).toString());
}

TEST(FaultFuzzTest, RandomSchedulesRespectConcurrencyBound)
{
    for (uint64_t seed = 100; seed < 120; ++seed) {
        sim::FaultSchedule schedule = randomSchedule(seed);
        // Replay crash/revive events in time order and track how many
        // nodes are simultaneously down.
        auto events = schedule.events();
        std::sort(events.begin(), events.end(),
                  [](const sim::FaultEvent &a, const sim::FaultEvent &b) {
                      return a.time < b.time;
                  });
        int down = 0;
        for (const auto &event : events) {
            if (event.kind == sim::FaultKind::kCrash)
                EXPECT_LE(++down, 2) << "seed " << seed;
            else if (event.kind == sim::FaultKind::kRevive)
                --down;
        }
        EXPECT_EQ(down, 0) << "seed " << seed;
    }
}

} // namespace
} // namespace fusion::store
