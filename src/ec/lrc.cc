#include "lrc.h"

#include <algorithm>

namespace fusion::ec {

Result<LrcCode>
LrcCode::create(size_t k, size_t l, size_t g)
{
    if (k == 0 || l == 0 || g == 0)
        return Status::invalidArgument("k, l, g must all be positive");
    if (k % l != 0)
        return Status::invalidArgument("l must divide k");
    if (k + l + g > 256)
        return Status::invalidArgument("GF(256) supports at most 256 blocks");

    const size_t n = k + l + g;
    Matrix generator(n, k);
    // Data rows: identity (systematic).
    for (size_t i = 0; i < k; ++i)
        generator.set(i, i, 1);
    // Local parity rows: XOR over each group.
    const size_t group_size = k / l;
    for (size_t group = 0; group < l; ++group) {
        for (size_t j = 0; j < group_size; ++j)
            generator.set(k + group, group * group_size + j, 1);
    }
    // Global parity rows: G_p[j] = (alpha^(j+1))^(p+1) over distinct
    // nonzero field points. Avoiding the power-0 (all-ones) row keeps
    // the globals free of XOR structure that would collide with the
    // all-ones local parities: any mix of one local row and up to g
    // global rows restricted to a group is a Vandermonde-with-ones
    // matrix over distinct points, hence invertible.
    const Gf256 &gf = Gf256::instance();
    for (size_t p = 0; p < g; ++p) {
        for (size_t c = 0; c < k; ++c) {
            uint8_t alpha = gf.pow(2, static_cast<unsigned>(c + 1));
            generator.set(k + l + p, c,
                          gf.pow(alpha, static_cast<unsigned>(p + 1)));
        }
    }
    return LrcCode(k, l, g, std::move(generator));
}

std::vector<Bytes>
LrcCode::encodeParity(const std::vector<Slice> &data_blocks) const
{
    FUSION_CHECK(data_blocks.size() == k_);
    size_t block_size = 0;
    for (const auto &block : data_blocks)
        block_size = std::max(block_size, block.size());

    const Gf256 &gf = Gf256::instance();
    std::vector<Bytes> parity(l_ + g_, Bytes(block_size, 0));
    for (size_t p = 0; p < l_ + g_; ++p) {
        for (size_t j = 0; j < k_; ++j) {
            uint8_t coeff = generator_.at(k_ + p, j);
            gf.mulAccumulate(parity[p].data(), data_blocks[j].data(),
                             data_blocks[j].size(), coeff);
        }
    }
    return parity;
}

size_t
LrcCode::repairReadCount(size_t index) const
{
    FUSION_CHECK(index < n());
    return index < k_ + l_ ? groupSize() : k_;
}

Status
LrcCode::reconstruct(std::vector<std::optional<Bytes>> &shards,
                     size_t block_size) const
{
    if (shards.size() != n())
        return Status::invalidArgument("expected n shards");
    for (const auto &shard : shards) {
        if (shard.has_value() && shard->size() != block_size)
            return Status::invalidArgument(
                "survivor shard size != block size");
    }

    // Phase 1: iterated local repair. A group (its data blocks + local
    // parity) with exactly one hole is fixed by XORing the rest.
    const size_t group_size = groupSize();
    bool progress = true;
    while (progress) {
        progress = false;
        for (size_t group = 0; group < l_; ++group) {
            std::vector<size_t> members;
            for (size_t j = 0; j < group_size; ++j)
                members.push_back(group * group_size + j);
            members.push_back(localParityIndex(group));

            size_t missing = n();
            size_t missing_count = 0;
            for (size_t m : members) {
                if (!shards[m].has_value()) {
                    missing = m;
                    ++missing_count;
                }
            }
            if (missing_count != 1)
                continue;
            Bytes repaired(block_size, 0);
            for (size_t m : members) {
                if (m == missing)
                    continue;
                for (size_t b = 0; b < block_size; ++b)
                    repaired[b] ^= (*shards[m])[b];
            }
            shards[missing] = std::move(repaired);
            progress = true;
        }
    }

    std::vector<size_t> present, absent;
    for (size_t i = 0; i < n(); ++i)
        (shards[i].has_value() ? present : absent).push_back(i);
    if (absent.empty())
        return Status::ok();

    // Phase 2: global solve over an independent survivor subset.
    auto rows = generator_.selectIndependentRows(present);
    if (!rows.isOk())
        return Status::unavailable(
            "erasure pattern is not decodable by this LRC");
    auto decode = generator_.selectRows(rows.value()).inverse();
    if (!decode.isOk())
        return decode.status();

    const Gf256 &gf = Gf256::instance();
    // Recover the k data blocks: d = decode * survivors.
    std::vector<Bytes> data(k_);
    for (size_t j = 0; j < k_; ++j) {
        Bytes out(block_size, 0);
        for (size_t i = 0; i < k_; ++i) {
            gf.mulAccumulate(out.data(), shards[rows.value()[i]]->data(),
                             block_size, decode.value().at(j, i));
        }
        data[j] = std::move(out);
    }
    // Re-emit every absent block from the data vector.
    for (size_t miss : absent) {
        if (miss < k_) {
            shards[miss] = data[miss];
            continue;
        }
        Bytes out(block_size, 0);
        for (size_t j = 0; j < k_; ++j) {
            gf.mulAccumulate(out.data(), data[j].data(), block_size,
                             generator_.at(miss, j));
        }
        shards[miss] = std::move(out);
    }
    return Status::ok();
}

} // namespace fusion::ec
