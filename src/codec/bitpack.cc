#include "bitpack.h"

namespace fusion::codec {

int
bitWidthFor(uint64_t max_value)
{
    int w = 0;
    while (max_value) {
        ++w;
        max_value >>= 1;
    }
    return w;
}

BitPacker::BitPacker(Bytes &out, int width) : out_(out), width_(width)
{
    FUSION_CHECK(width >= 0 && width <= 64);
}

void
BitPacker::put(uint64_t value)
{
    if (width_ == 0) {
        FUSION_CHECK(value == 0);
        return;
    }
    FUSION_CHECK(width_ == 64 || value < (1ULL << width_));
    int bits_left = width_;
    while (bits_left > 0) {
        int take = std::min(bits_left, 8 - pendingBits_);
        uint64_t mask = (take == 64) ? ~0ULL : ((1ULL << take) - 1);
        pending_ |= (value & mask) << pendingBits_;
        value >>= take;
        pendingBits_ += take;
        bits_left -= take;
        if (pendingBits_ == 8) {
            out_.push_back(static_cast<uint8_t>(pending_));
            pending_ = 0;
            pendingBits_ = 0;
        }
    }
}

void
BitPacker::flush()
{
    if (pendingBits_ > 0) {
        out_.push_back(static_cast<uint8_t>(pending_));
        pending_ = 0;
        pendingBits_ = 0;
    }
}

BitUnpacker::BitUnpacker(Slice input, int width)
    : input_(input), width_(width)
{
    FUSION_CHECK(width >= 0 && width <= 64);
}

Result<uint64_t>
BitUnpacker::get()
{
    if (width_ == 0)
        return uint64_t{0};
    uint64_t value = 0;
    int have = 0;
    while (have < width_) {
        if (pendingBits_ == 0) {
            if (bytePos_ >= input_.size())
                return Status::corruption("bit stream exhausted");
            pending_ = input_[bytePos_++];
            pendingBits_ = 8;
        }
        int take = std::min(width_ - have, pendingBits_);
        uint64_t mask = (1ULL << take) - 1;
        value |= (pending_ & mask) << have;
        pending_ >>= take;
        pendingBits_ -= take;
        have += take;
    }
    return value;
}

Status
BitUnpacker::getMany(size_t count, std::vector<uint64_t> &out)
{
    out.reserve(out.size() + count);
    for (size_t i = 0; i < count; ++i) {
        auto v = get();
        if (!v.isOk())
            return v.status();
        out.push_back(v.value());
    }
    return Status::ok();
}

} // namespace fusion::codec
