file(REMOVE_RECURSE
  "CMakeFiles/fusion_sim.dir/cluster.cc.o"
  "CMakeFiles/fusion_sim.dir/cluster.cc.o.d"
  "CMakeFiles/fusion_sim.dir/engine.cc.o"
  "CMakeFiles/fusion_sim.dir/engine.cc.o.d"
  "CMakeFiles/fusion_sim.dir/node.cc.o"
  "CMakeFiles/fusion_sim.dir/node.cc.o.d"
  "CMakeFiles/fusion_sim.dir/resource.cc.o"
  "CMakeFiles/fusion_sim.dir/resource.cc.o.d"
  "libfusion_sim.a"
  "libfusion_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
