# Empty dependencies file for bench_fig04c_cdf.
# This may be replaced when dependencies are built.
