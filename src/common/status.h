/**
 * @file
 * Error-handling primitives: Status and Result<T>.
 *
 * Fusion avoids exceptions on hot paths; fallible operations return a
 * Status (or Result<T> when they also produce a value). Programming
 * errors (violated invariants) abort via FUSION_CHECK.
 */
#ifndef FUSION_COMMON_STATUS_H
#define FUSION_COMMON_STATUS_H

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace fusion {

/** Canonical error categories used across all Fusion modules. */
enum class StatusCode {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kCorruption,
    kOutOfRange,
    kUnavailable,
    kFailedPrecondition,
    kResourceExhausted,
    kUnimplemented,
    kInternal,
};

/** Human-readable name of a status code (e.g. "Corruption"). */
const char *statusCodeName(StatusCode code);

/**
 * A cheap, copyable success-or-error value. The OK status carries no
 * allocation; error statuses carry a code and a message.
 */
class Status
{
  public:
    /** Constructs an OK status. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status ok() { return Status(); }

    static Status
    invalidArgument(std::string msg)
    {
        return Status(StatusCode::kInvalidArgument, std::move(msg));
    }

    static Status
    notFound(std::string msg)
    {
        return Status(StatusCode::kNotFound, std::move(msg));
    }

    static Status
    alreadyExists(std::string msg)
    {
        return Status(StatusCode::kAlreadyExists, std::move(msg));
    }

    static Status
    corruption(std::string msg)
    {
        return Status(StatusCode::kCorruption, std::move(msg));
    }

    static Status
    outOfRange(std::string msg)
    {
        return Status(StatusCode::kOutOfRange, std::move(msg));
    }

    static Status
    unavailable(std::string msg)
    {
        return Status(StatusCode::kUnavailable, std::move(msg));
    }

    static Status
    failedPrecondition(std::string msg)
    {
        return Status(StatusCode::kFailedPrecondition, std::move(msg));
    }

    static Status
    resourceExhausted(std::string msg)
    {
        return Status(StatusCode::kResourceExhausted, std::move(msg));
    }

    static Status
    unimplemented(std::string msg)
    {
        return Status(StatusCode::kUnimplemented, std::move(msg));
    }

    static Status
    internal(std::string msg)
    {
        return Status(StatusCode::kInternal, std::move(msg));
    }

    bool isOk() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "OK" or "<CodeName>: <message>". */
    std::string toString() const;

    bool
    operator==(const Status &other) const
    {
        return code_ == other.code_ && message_ == other.message_;
    }

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/**
 * A value-or-error wrapper. Holds either a T (on success) or an error
 * Status. Accessing value() on an error aborts, so callers must check
 * isOk() (or use valueOr) first.
 */
template <typename T>
class Result
{
  public:
    /** Implicit construction from a success value. */
    Result(T value) : value_(std::move(value)) {}

    /** Implicit construction from an error status. */
    Result(Status status) : status_(std::move(status))
    {
        if (status_.isOk()) {
            std::fprintf(stderr,
                         "Result<T> constructed from OK status without "
                         "a value\n");
            std::abort();
        }
    }

    bool isOk() const { return value_.has_value(); }
    const Status &status() const { return status_; }

    T &
    value() &
    {
        checkHasValue();
        return *value_;
    }

    const T &
    value() const &
    {
        checkHasValue();
        return *value_;
    }

    T &&
    value() &&
    {
        checkHasValue();
        return std::move(*value_);
    }

    T
    valueOr(T fallback) const &
    {
        return value_.has_value() ? *value_ : std::move(fallback);
    }

  private:
    void
    checkHasValue() const
    {
        if (!value_.has_value()) {
            std::fprintf(stderr, "Result::value() on error: %s\n",
                         status_.toString().c_str());
            std::abort();
        }
    }

    Status status_;
    std::optional<T> value_;
};

namespace detail {

[[noreturn]] void checkFailed(const char *file, int line, const char *expr,
                              const std::string &extra);

} // namespace detail

/** Aborts with a diagnostic when an internal invariant does not hold. */
#define FUSION_CHECK(expr)                                                   \
    do {                                                                     \
        if (!(expr)) {                                                       \
            ::fusion::detail::checkFailed(__FILE__, __LINE__, #expr, "");    \
        }                                                                    \
    } while (0)

/** FUSION_CHECK with a context message appended to the diagnostic. */
#define FUSION_CHECK_MSG(expr, msg)                                         \
    do {                                                                     \
        if (!(expr)) {                                                       \
            ::fusion::detail::checkFailed(__FILE__, __LINE__, #expr, (msg)); \
        }                                                                    \
    } while (0)

/** Returns early from the enclosing function if `status_expr` is an error. */
#define FUSION_RETURN_IF_ERROR(status_expr)                                  \
    do {                                                                     \
        ::fusion::Status _fusion_st = (status_expr);                         \
        if (!_fusion_st.isOk())                                              \
            return _fusion_st;                                               \
    } while (0)

} // namespace fusion

#endif // FUSION_COMMON_STATUS_H
