#include "textsets.h"

#include "common/random.h"

namespace fusion::workload {

using format::LogicalType;
using format::PhysicalType;
using format::Schema;
using format::Table;

namespace {

const char *kFoodWords[] = {
    "butter", "sugar",  "flour",   "onion",  "garlic", "pepper", "salt",
    "cream",  "cheese", "tomato",  "basil",  "oregano", "chicken",
    "beef",   "pork",   "shrimp",  "rice",   "pasta",  "olive", "oil",
    "lemon",  "ginger", "cinnamon", "vanilla", "chocolate", "egg",
    "milk",   "yeast",  "baking",  "powder", "chop",   "dice", "simmer",
    "bake",   "whisk",  "saute",   "boil",   "drain",  "serve", "mix",
};

std::string
foodText(Rng &rng, size_t min_words, size_t max_words)
{
    size_t count = static_cast<size_t>(
        rng.uniformInt(static_cast<int64_t>(min_words),
                       static_cast<int64_t>(max_words)));
    std::string out;
    for (size_t i = 0; i < count; ++i) {
        if (i)
            out += ' ';
        out += kFoodWords[rng.pickIndex(std::size(kFoodWords))];
    }
    return out;
}

const char *kSources[] = {"Gathered", "Recipes1M"};

const char *kCounties[] = {
    "GREATER LONDON", "WEST MIDLANDS", "GREATER MANCHESTER", "KENT",
    "ESSEX", "HAMPSHIRE", "SURREY", "HERTFORDSHIRE", "LANCASHIRE",
    "MERSEYSIDE", "WEST YORKSHIRE", "SOUTH YORKSHIRE", "DEVON",
    "NORFOLK", "SUFFOLK", "CHESHIRE",
};
const char *kPropertyTypes[] = {"D", "S", "T", "F", "O"};
const char *kStreetSuffix[] = {"ROAD", "STREET", "LANE", "CLOSE",
                               "AVENUE", "DRIVE", "WAY", "GARDENS"};

std::string
uuidLike(Rng &rng)
{
    const char *hex = "0123456789ABCDEF";
    std::string out;
    out.reserve(36);
    for (int i = 0; i < 36; ++i) {
        if (i == 8 || i == 13 || i == 18 || i == 23)
            out += '-';
        else
            out += hex[rng.uniformInt(0, 15)];
    }
    return out;
}

std::string
postcode(Rng &rng)
{
    std::string out;
    out += static_cast<char>('A' + rng.uniformInt(0, 25));
    out += static_cast<char>('A' + rng.uniformInt(0, 25));
    out += static_cast<char>('0' + rng.uniformInt(1, 9));
    out += ' ';
    out += static_cast<char>('0' + rng.uniformInt(0, 9));
    out += static_cast<char>('A' + rng.uniformInt(0, 25));
    out += static_cast<char>('A' + rng.uniformInt(0, 25));
    return out;
}

} // namespace

Schema
recipeSchema()
{
    return Schema({
        {"id", PhysicalType::kInt64, LogicalType::kNone},
        {"title", PhysicalType::kString, LogicalType::kNone},
        {"ingredients", PhysicalType::kString, LogicalType::kNone},
        {"directions", PhysicalType::kString, LogicalType::kNone},
        {"link", PhysicalType::kString, LogicalType::kNone},
        {"source", PhysicalType::kString, LogicalType::kNone},
        {"ner", PhysicalType::kString, LogicalType::kNone},
    });
}

Table
makeRecipeTable(size_t rows, uint64_t seed)
{
    Rng rng(seed);
    Table t(recipeSchema());
    for (size_t i = 0; i < rows; ++i) {
        t.column(0).append(static_cast<int64_t>(i));
        t.column(1).append(foodText(rng, 2, 6));
        t.column(2).append(foodText(rng, 20, 60));
        t.column(3).append(foodText(rng, 40, 120));
        t.column(4).append("www.recipes.example/" + randomString(rng, 16));
        t.column(5).append(
            std::string(kSources[rng.pickIndex(std::size(kSources))]));
        t.column(6).append(foodText(rng, 8, 20));
    }
    return t;
}

Result<format::WrittenFile>
buildRecipeFile(size_t rows, uint64_t seed)
{
    Table t = makeRecipeTable(rows, seed);
    format::WriterOptions options;
    options.rowGroupRows = (rows + 11) / 12; // 84 chunks / 7 columns
    return format::writeTable(t, options);
}

Schema
ukppSchema()
{
    return Schema({
        {"transaction_id", PhysicalType::kString, LogicalType::kNone},
        {"price", PhysicalType::kInt64, LogicalType::kNone},
        {"transfer_date", PhysicalType::kInt32, LogicalType::kDate},
        {"postcode", PhysicalType::kString, LogicalType::kNone},
        {"property_type", PhysicalType::kString, LogicalType::kNone},
        {"old_new", PhysicalType::kString, LogicalType::kNone},
        {"duration", PhysicalType::kString, LogicalType::kNone},
        {"paon", PhysicalType::kString, LogicalType::kNone},
        {"saon", PhysicalType::kString, LogicalType::kNone},
        {"street", PhysicalType::kString, LogicalType::kNone},
        {"locality", PhysicalType::kString, LogicalType::kNone},
        {"town", PhysicalType::kString, LogicalType::kNone},
        {"district", PhysicalType::kString, LogicalType::kNone},
        {"county", PhysicalType::kString, LogicalType::kNone},
        {"ppd_category", PhysicalType::kString, LogicalType::kNone},
        {"record_status", PhysicalType::kString, LogicalType::kNone},
    });
}

Table
makeUkppTable(size_t rows, uint64_t seed)
{
    Rng rng(seed);
    Table t(ukppSchema());
    for (size_t i = 0; i < rows; ++i) {
        t.column(0).append(uuidLike(rng));
        t.column(1).append(rng.uniformInt(40, 2000) * 500);
        t.column(2).append(
            static_cast<int32_t>(rng.uniformInt(0, 10000)));
        t.column(3).append(postcode(rng));
        t.column(4).append(std::string(
            kPropertyTypes[rng.pickIndex(std::size(kPropertyTypes))]));
        t.column(5).append(std::string(rng.chance(0.1) ? "Y" : "N"));
        t.column(6).append(std::string(rng.chance(0.75) ? "F" : "L"));
        t.column(7).append(std::to_string(rng.uniformInt(1, 300)));
        t.column(8).append(
            rng.chance(0.15) ? "FLAT " + std::to_string(rng.uniformInt(1, 40))
                             : std::string());
        t.column(9).append(
            randomString(rng, 6) + " " +
            kStreetSuffix[rng.pickIndex(std::size(kStreetSuffix))]);
        t.column(10).append(rng.chance(0.3) ? randomString(rng, 8)
                                            : std::string());
        t.column(11).append("TOWN" + std::to_string(rng.uniformInt(0, 999)));
        t.column(12).append("DIST" + std::to_string(rng.uniformInt(0, 399)));
        t.column(13).append(
            std::string(kCounties[rng.pickIndex(std::size(kCounties))]));
        t.column(14).append(std::string(rng.chance(0.9) ? "A" : "B"));
        t.column(15).append(std::string("A"));
    }
    return t;
}

Result<format::WrittenFile>
buildUkppFile(size_t rows, uint64_t seed)
{
    Table t = makeUkppTable(rows, seed);
    format::WriterOptions options;
    options.rowGroupRows = (rows + 14) / 15; // 240 chunks / 16 columns
    return format::writeTable(t, options);
}

} // namespace fusion::workload
