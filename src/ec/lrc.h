/**
 * @file
 * Locally Repairable Codes (Azure-LRC style), an extension beyond the
 * paper's RS-only implementation (the paper's §7 notes LRCs are
 * orthogonal to FAC; this module demonstrates the claim by plugging a
 * second systematic code under the same stripe model).
 *
 * LRC(k, l, g): k data blocks are split into l equal local groups.
 * Each group gets one *local parity* (XOR of its members); g *global
 * parities* are Reed-Solomon-style combinations of all k data blocks.
 * Total blocks n = k + l + g.
 *
 * The payoff is cheap single-failure repair: a lost data block is
 * rebuilt from its k/l - 1 group mates plus the group's local parity
 * (k/l reads instead of k). Multi-failure recovery falls back to
 * solving the full generator system over any decodable survivor set.
 * The code is not MDS: some (l + g)-failure patterns are undecodable,
 * which reconstruct() detects and reports.
 */
#ifndef FUSION_EC_LRC_H
#define FUSION_EC_LRC_H

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "matrix.h"

namespace fusion::ec {

/** Systematic LRC encoder/decoder for one (k, l, g) configuration. */
class LrcCode
{
  public:
    /**
     * Builds an LRC(k, l, g); l must divide k, and k + l + g <= 256.
     * Azure's production code is LRC(12, 2, 2); a Fusion-friendly
     * analog of RS(9,6) is LRC(6, 2, 2).
     */
    static Result<LrcCode> create(size_t k, size_t l, size_t g);

    size_t k() const { return k_; }
    size_t localGroups() const { return l_; }
    size_t globalParities() const { return g_; }
    size_t n() const { return k_ + l_ + g_; }
    size_t groupSize() const { return k_ / l_; }

    /** Block index of group `group`'s local parity (k <= idx < k+l). */
    size_t localParityIndex(size_t group) const { return k_ + group; }

    /** Group id of a data block. */
    size_t groupOf(size_t data_index) const
    {
        return data_index / groupSize();
    }

    /**
     * Encodes parity for k (possibly variable-size) data blocks:
     * returns l local parities followed by g global parities, each of
     * the stripe block size (max data size).
     */
    std::vector<Bytes> encodeParity(
        const std::vector<Slice> &data_blocks) const;

    /**
     * Recovers all n blocks given survivors. Uses local repair when a
     * group has exactly one missing member, otherwise solves the
     * global system. kUnavailable when the erasure pattern is
     * information-theoretically undecodable.
     */
    Status reconstruct(std::vector<std::optional<Bytes>> &shards,
                       size_t block_size) const;

    /**
     * Number of blocks that must be read to repair the single block
     * `index` (the repair-locality metric): groupSize() for data and
     * local parities, k for global parities.
     */
    size_t repairReadCount(size_t index) const;

    const Matrix &generatorMatrix() const { return generator_; }

  private:
    LrcCode(size_t k, size_t l, size_t g, Matrix generator)
        : k_(k), l_(l), g_(g), generator_(std::move(generator))
    {
    }

    size_t k_;
    size_t l_;
    size_t g_;
    Matrix generator_; // n x k
};

} // namespace fusion::ec

#endif // FUSION_EC_LRC_H
