/**
 * @file
 * Unit tests for src/query: bitmaps, predicate evaluation, zone maps,
 * row selection, aggregates, the Cost Equation and the SQL parser.
 */
#include <gtest/gtest.h>

#include "format/column.h"
#include "query/ast.h"
#include "query/bitmap.h"
#include "query/cost.h"
#include "query/eval.h"
#include "query/parser.h"

namespace fusion::query {
namespace {

using format::ColumnData;
using format::PhysicalType;
using format::Value;

TEST(BitmapTest, SetTestCount)
{
    Bitmap b(130);
    EXPECT_EQ(b.count(), 0u);
    b.set(0);
    b.set(64);
    b.set(129);
    EXPECT_TRUE(b.test(0));
    EXPECT_TRUE(b.test(64));
    EXPECT_TRUE(b.test(129));
    EXPECT_FALSE(b.test(1));
    EXPECT_EQ(b.count(), 3u);
    b.clear(64);
    EXPECT_EQ(b.count(), 2u);
}

TEST(BitmapTest, InitialAllOnesMasksTail)
{
    Bitmap b(70, true);
    EXPECT_EQ(b.count(), 70u);
    EXPECT_DOUBLE_EQ(b.selectivity(), 1.0);
}

TEST(BitmapTest, IntersectAndUnion)
{
    Bitmap a(10), b(10);
    a.set(1);
    a.set(2);
    b.set(2);
    b.set(3);
    Bitmap i = a;
    i.intersect(b);
    EXPECT_EQ(i.count(), 1u);
    EXPECT_TRUE(i.test(2));
    Bitmap u = a;
    u.unionWith(b);
    EXPECT_EQ(u.count(), 3u);
}

TEST(BitmapTest, SerdeRoundTrip)
{
    Bitmap b(100);
    for (size_t i = 0; i < 100; i += 7)
        b.set(i);
    auto back = Bitmap::fromBytes(Slice(b.toBytes()));
    ASSERT_TRUE(back.isOk());
    EXPECT_TRUE(back.value() == b);
}

TEST(BitmapTest, CorruptTailBitsRejected)
{
    Bitmap b(65);
    Bytes bytes = b.toBytes();
    bytes.back() |= 0x80; // set a bit beyond size 65 in the last word
    EXPECT_EQ(Bitmap::fromBytes(Slice(bytes)).status().code(),
              StatusCode::kCorruption);
}

TEST(BitmapTest, SparseBitmapCompressesWell)
{
    Bitmap sparse(100000);
    sparse.set(5);
    EXPECT_LT(sparse.compressedWireSize(), 2000u);
}

ColumnData
intColumn(std::initializer_list<int64_t> values)
{
    ColumnData col(PhysicalType::kInt64);
    for (int64_t v : values)
        col.append(v);
    return col;
}

TEST(EvalTest, AllComparisonOps)
{
    ColumnData col = intColumn({1, 2, 3, 4, 5});
    struct Case {
        CompareOp op;
        size_t expect;
    };
    for (const auto &[op, expect] :
         {Case{CompareOp::kLt, 2}, Case{CompareOp::kLe, 3},
          Case{CompareOp::kGt, 2}, Case{CompareOp::kGe, 3},
          Case{CompareOp::kEq, 1}, Case{CompareOp::kNe, 4}}) {
        auto bm = evalPredicate(col, op, Value::ofInt64(3));
        ASSERT_TRUE(bm.isOk());
        EXPECT_EQ(bm.value().count(), expect)
            << compareOpName(op);
    }
}

TEST(EvalTest, StringPredicates)
{
    ColumnData col(PhysicalType::kString);
    for (const char *s : {"apple", "banana", "cherry"})
        col.append(std::string(s));
    auto bm = evalPredicate(col, CompareOp::kEq, Value::ofString("banana"));
    ASSERT_TRUE(bm.isOk());
    EXPECT_EQ(bm.value().count(), 1u);
    EXPECT_TRUE(bm.value().test(1));
    auto lt = evalPredicate(col, CompareOp::kLt, Value::ofString("b"));
    ASSERT_TRUE(lt.isOk());
    EXPECT_EQ(lt.value().count(), 1u);
}

TEST(EvalTest, CrossNumericTypes)
{
    ColumnData col(PhysicalType::kDouble);
    col.append(1.5);
    col.append(2.5);
    auto bm = evalPredicate(col, CompareOp::kGt, Value::ofInt64(2));
    ASSERT_TRUE(bm.isOk());
    EXPECT_EQ(bm.value().count(), 1u);
}

TEST(EvalTest, TypeMismatchRejected)
{
    ColumnData col = intColumn({1, 2});
    EXPECT_FALSE(
        evalPredicate(col, CompareOp::kEq, Value::ofString("x")).isOk());
    ColumnData strings(PhysicalType::kString);
    strings.append(std::string("a"));
    EXPECT_FALSE(
        evalPredicate(strings, CompareOp::kLt, Value::ofInt64(1)).isOk());
}

format::ChunkMeta
chunkWithRange(int64_t min_v, int64_t max_v)
{
    format::ChunkMeta meta;
    meta.minValue = Value::ofInt64(min_v);
    meta.maxValue = Value::ofInt64(max_v);
    return meta;
}

TEST(ZoneMapTest, PruningIsSoundAndEffective)
{
    format::ChunkMeta meta = chunkWithRange(10, 20);
    // Definitely no match.
    EXPECT_FALSE(zoneMapMayMatch(
        meta, {"c", CompareOp::kLt, Value::ofInt64(10)}));
    EXPECT_FALSE(zoneMapMayMatch(
        meta, {"c", CompareOp::kGt, Value::ofInt64(20)}));
    EXPECT_FALSE(zoneMapMayMatch(
        meta, {"c", CompareOp::kEq, Value::ofInt64(25)}));
    // Possible matches.
    EXPECT_TRUE(zoneMapMayMatch(
        meta, {"c", CompareOp::kLe, Value::ofInt64(10)}));
    EXPECT_TRUE(zoneMapMayMatch(
        meta, {"c", CompareOp::kEq, Value::ofInt64(15)}));
    EXPECT_TRUE(zoneMapMayMatch(
        meta, {"c", CompareOp::kNe, Value::ofInt64(15)}));
    // Ne on an all-equal chunk equal to the literal is prunable.
    format::ChunkMeta constant = chunkWithRange(7, 7);
    EXPECT_FALSE(zoneMapMayMatch(
        constant, {"c", CompareOp::kNe, Value::ofInt64(7)}));
}

// Zone maps must never prune a chunk that contains a matching row.
class ZoneMapProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(ZoneMapProperty, NoFalseNegatives)
{
    ColumnData col = intColumn({12, 15, 18, 12, 20, 10});
    format::ChunkMeta meta = chunkWithRange(10, 20);
    int64_t literal = GetParam();
    for (CompareOp op : {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                         CompareOp::kGe, CompareOp::kEq, CompareOp::kNe}) {
        Predicate pred{"c", op, Value::ofInt64(literal)};
        auto bm = evalPredicate(col, op, pred.literal);
        ASSERT_TRUE(bm.isOk());
        if (bm.value().count() > 0)
            EXPECT_TRUE(zoneMapMayMatch(meta, pred))
                << compareOpName(op) << " " << literal;
    }
}

INSTANTIATE_TEST_SUITE_P(Literals, ZoneMapProperty,
                         ::testing::Values(5, 9, 10, 12, 15, 20, 21, 30));

TEST(SelectRowsTest, PicksSetBits)
{
    ColumnData col = intColumn({10, 20, 30, 40});
    Bitmap rows(4);
    rows.set(1);
    rows.set(3);
    ColumnData out = selectRows(col, rows);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out.int64s()[0], 20);
    EXPECT_EQ(out.int64s()[1], 40);
}

TEST(AggregateTest, AllKinds)
{
    ColumnData col = intColumn({1, 2, 3, 4});
    EXPECT_DOUBLE_EQ(
        computeAggregate(AggregateKind::kCount, col).value(), 4.0);
    EXPECT_DOUBLE_EQ(computeAggregate(AggregateKind::kSum, col).value(),
                     10.0);
    EXPECT_DOUBLE_EQ(computeAggregate(AggregateKind::kAvg, col).value(),
                     2.5);
    EXPECT_DOUBLE_EQ(computeAggregate(AggregateKind::kMin, col).value(),
                     1.0);
    EXPECT_DOUBLE_EQ(computeAggregate(AggregateKind::kMax, col).value(),
                     4.0);
}

TEST(AggregateTest, StringNumericAggregateRejected)
{
    ColumnData col(PhysicalType::kString);
    col.append(std::string("a"));
    EXPECT_FALSE(computeAggregate(AggregateKind::kSum, col).isOk());
    EXPECT_TRUE(computeAggregate(AggregateKind::kCount, col).isOk());
}

TEST(CostModelTest, CostEquationBoundary)
{
    format::ChunkMeta chunk;
    chunk.plainSize = 1000;
    chunk.storedSize = 100; // compressibility 10
    EXPECT_TRUE(decideProjectionPushdown(0.05, chunk).push);  // 0.5 < 1
    EXPECT_FALSE(decideProjectionPushdown(0.15, chunk).push); // 1.5 > 1
    auto d = decideProjectionPushdown(0.2, chunk);
    EXPECT_DOUBLE_EQ(d.compressibility, 10.0);
    EXPECT_DOUBLE_EQ(d.product(), 2.0);
}

TEST(ParserTest, SimpleSelect)
{
    auto q = parseQuery("SELECT a, b FROM tbl WHERE c < 5 AND d = 'x'");
    ASSERT_TRUE(q.isOk()) << q.status().toString();
    EXPECT_EQ(q.value().table, "tbl");
    ASSERT_EQ(q.value().projections.size(), 2u);
    EXPECT_EQ(q.value().projections[0].column, "a");
    ASSERT_EQ(q.value().filters.size(), 2u);
    EXPECT_EQ(q.value().filters[0].op, CompareOp::kLt);
    EXPECT_TRUE(q.value().filters[0].literal == Value::ofInt64(5));
    EXPECT_TRUE(q.value().filters[1].literal == Value::ofString("x"));
}

TEST(ParserTest, Aggregates)
{
    auto q = parseQuery(
        "select count(*), avg(fare), SUM(total) from taxi");
    ASSERT_TRUE(q.isOk()) << q.status().toString();
    ASSERT_EQ(q.value().projections.size(), 3u);
    EXPECT_TRUE(q.value().projections[0].isCountStar());
    EXPECT_EQ(q.value().projections[1].aggregate, AggregateKind::kAvg);
    EXPECT_EQ(q.value().projections[1].column, "fare");
    EXPECT_EQ(q.value().projections[2].aggregate, AggregateKind::kSum);
}

TEST(ParserTest, StarProjection)
{
    auto q = parseQuery("SELECT * FROM t WHERE x >= 1.5");
    ASSERT_TRUE(q.isOk());
    ASSERT_EQ(q.value().projections.size(), 1u);
    EXPECT_EQ(q.value().projections[0].column, kStarProjection);
    EXPECT_TRUE(q.value().filters[0].literal == Value::ofDouble(1.5));
}

TEST(ParserTest, AllOperators)
{
    struct Case {
        const char *text;
        CompareOp op;
    };
    for (const auto &[text, op] :
         {Case{"<", CompareOp::kLt}, Case{"<=", CompareOp::kLe},
          Case{">", CompareOp::kGt}, Case{">=", CompareOp::kGe},
          Case{"=", CompareOp::kEq}, Case{"==", CompareOp::kEq},
          Case{"!=", CompareOp::kNe}, Case{"<>", CompareOp::kNe}}) {
        std::string sql =
            std::string("SELECT a FROM t WHERE a ") + text + " 3";
        auto q = parseQuery(sql);
        ASSERT_TRUE(q.isOk()) << sql;
        EXPECT_EQ(q.value().filters[0].op, op) << sql;
    }
}

TEST(ParserTest, NegativeAndFloatLiterals)
{
    auto q = parseQuery("SELECT a FROM t WHERE a > -42 AND b < 3.5e2");
    ASSERT_TRUE(q.isOk());
    EXPECT_TRUE(q.value().filters[0].literal == Value::ofInt64(-42));
    EXPECT_TRUE(q.value().filters[1].literal == Value::ofDouble(350.0));
}

TEST(ParserTest, SyntaxErrors)
{
    EXPECT_FALSE(parseQuery("").isOk());
    EXPECT_FALSE(parseQuery("SELECT FROM t").isOk());
    EXPECT_FALSE(parseQuery("SELECT a").isOk());
    EXPECT_FALSE(parseQuery("SELECT a FROM t WHERE").isOk());
    EXPECT_FALSE(parseQuery("SELECT a FROM t WHERE a ~ 3").isOk());
    EXPECT_FALSE(parseQuery("SELECT a FROM t WHERE a < 'open").isOk());
    EXPECT_FALSE(parseQuery("SELECT a FROM t trailing").isOk());
    EXPECT_FALSE(parseQuery("SELECT sum(*) FROM t").isOk());
}

TEST(ParserTest, KeywordsAreNotIdentifierPrefixes)
{
    // "FROMx" must not parse as FROM + x.
    EXPECT_FALSE(parseQuery("SELECT a FROMx t").isOk());
    // Columns that merely start with a keyword are fine.
    auto q = parseQuery("SELECT summary FROM t WHERE counter < 1");
    ASSERT_TRUE(q.isOk());
    EXPECT_EQ(q.value().projections[0].column, "summary");
    EXPECT_EQ(q.value().filters[0].column, "counter");
}

TEST(AstTest, ToStringRoundTripsThroughParser)
{
    auto q = parseQuery(
        "SELECT l_quantity, AVG(fare) FROM t WHERE a < 5 AND b = 'x'");
    ASSERT_TRUE(q.isOk());
    auto q2 = parseQuery(q.value().toString());
    ASSERT_TRUE(q2.isOk()) << q.value().toString();
    EXPECT_EQ(q2.value().toString(), q.value().toString());
}

TEST(AstTest, DistinctColumnLists)
{
    Query q;
    q.projections.push_back({"a", AggregateKind::kNone});
    q.projections.push_back({"a", AggregateKind::kSum});
    q.projections.push_back({"b", AggregateKind::kNone});
    q.projections.push_back({"", AggregateKind::kCount});
    q.filters.push_back({"a", CompareOp::kLt, Value::ofInt64(1)});
    q.filters.push_back({"c", CompareOp::kGt, Value::ofInt64(1)});
    q.filters.push_back({"a", CompareOp::kNe, Value::ofInt64(5)});
    EXPECT_EQ(q.projectionColumns(),
              (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(q.filterColumns(), (std::vector<std::string>{"a", "c"}));
}

} // namespace
} // namespace fusion::query
