# Empty compiler generated dependencies file for bench_micro_fac.
# This may be replaced when dependencies are built.
