file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14ab_selectivity.dir/bench_fig14ab_selectivity.cpp.o"
  "CMakeFiles/bench_fig14ab_selectivity.dir/bench_fig14ab_selectivity.cpp.o.d"
  "bench_fig14ab_selectivity"
  "bench_fig14ab_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14ab_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
