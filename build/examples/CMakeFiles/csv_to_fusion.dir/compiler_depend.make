# Empty compiler generated dependencies file for csv_to_fusion.
# This may be replaced when dependencies are built.
