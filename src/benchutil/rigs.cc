#include "rigs.h"

#include "workload/lineitem.h"
#include "workload/taxi.h"
#include "workload/textsets.h"

namespace fusion::benchutil {

const char *
datasetName(Dataset d)
{
    switch (d) {
      case Dataset::kLineitem: return "tpch lineitem";
      case Dataset::kTaxi: return "taxi";
      case Dataset::kRecipe: return "recipeNLG";
      case Dataset::kUkpp: return "uk pp";
    }
    return "unknown";
}

sim::NodeConfig
scaledNodeConfig(sim::NodeConfig config, uint64_t actual_bytes,
                 double paper_bytes)
{
    FUSION_CHECK(actual_bytes > 0 && paper_bytes > 0);
    double factor = paper_bytes / static_cast<double>(actual_bytes);
    config.diskBandwidth /= factor;
    config.nicBandwidth /= factor;
    config.cpuRate /= factor;
    return config;
}

query::Query
StorePair::onCopy(query::Query q, size_t index) const
{
    q.table = objects[index % objects.size()];
    return q;
}

void
StorePair::armFaults(const sim::FaultSchedule &schedule)
{
    baselineFaults =
        std::make_unique<sim::FaultInjector>(*baselineCluster, schedule);
    fusionFaults =
        std::make_unique<sim::FaultInjector>(*fusionCluster, schedule);
    baselineFaults->arm();
    fusionFaults->arm();
}

StorePair
makeStorePair(Dataset dataset, const RigOptions &options)
{
    StorePair pair;
    switch (dataset) {
      case Dataset::kLineitem: {
        pair.table = workload::makeLineitemTable(options.rows,
                                                 options.seed);
        auto file = workload::buildLineitemFile(options.rows, options.seed);
        FUSION_CHECK(file.isOk());
        pair.file = std::move(file.value());
        break;
      }
      case Dataset::kTaxi: {
        pair.table = workload::makeTaxiTable(options.rows, options.seed);
        auto file = workload::buildTaxiFile(options.rows, options.seed);
        FUSION_CHECK(file.isOk());
        pair.file = std::move(file.value());
        break;
      }
      case Dataset::kRecipe: {
        pair.table = workload::makeRecipeTable(options.rows, options.seed);
        auto file = workload::buildRecipeFile(options.rows, options.seed);
        FUSION_CHECK(file.isOk());
        pair.file = std::move(file.value());
        break;
      }
      case Dataset::kUkpp: {
        pair.table = workload::makeUkppTable(options.rows, options.seed);
        auto file = workload::buildUkppFile(options.rows, options.seed);
        FUSION_CHECK(file.isOk());
        pair.file = std::move(file.value());
        break;
      }
    }

    store::StoreOptions store_options = options.store;
    if (options.fixedBlockSize != 0) {
        store_options.fixedBlockSize = options.fixedBlockSize;
    } else {
        store_options.fixedBlockSize = std::max<uint64_t>(
            pair.file.bytes.size() / 25, 64 << 10);
    }

    double paper_bytes = options.paperBytes;
    if (paper_bytes == 0) {
        switch (dataset) {
          case Dataset::kLineitem: paper_bytes = 10e9; break;
          case Dataset::kTaxi: paper_bytes = 8.4e9; break;
          case Dataset::kRecipe: paper_bytes = 0.98e9; break;
          case Dataset::kUkpp: paper_bytes = 1.5e9; break;
        }
    }

    sim::ClusterConfig cluster_config;
    cluster_config.numNodes = options.numNodes;
    cluster_config.node = scaledNodeConfig(
        options.node, pair.file.bytes.size(), paper_bytes);
    pair.baselineCluster = std::make_unique<sim::Cluster>(cluster_config);
    cluster_config.placementSeed ^= 0x1234; // independent placement
    pair.fusionCluster = std::make_unique<sim::Cluster>(cluster_config);
    pair.baseline = std::make_unique<store::BaselineStore>(
        *pair.baselineCluster, store_options);
    pair.fusion = std::make_unique<store::FusionStore>(
        *pair.fusionCluster, store_options);

    // Trace dumps requested via obsInit cover the setup phase too
    // (put/stripe_encode spans), so enable before the uploads.
    if (!obsOptions().traceOut.empty()) {
        pair.baseline->obs().tracer.setEnabled(true);
        pair.fusion->obs().tracer.setEnabled(true);
    }

    for (size_t c = 0; c < options.copies; ++c) {
        std::string name =
            std::string(datasetName(dataset)) + "#" + std::to_string(c);
        FUSION_CHECK(pair.baseline->put(name, pair.file.bytes).isOk());
        FUSION_CHECK(pair.fusion->put(name, pair.file.bytes).isOk());
        pair.objects.push_back(std::move(name));
    }
    return pair;
}

Comparison
compareStores(StorePair &pair, const RunConfig &config,
              const std::function<query::Query(size_t)> &tmpl)
{
    Comparison out;
    auto next = [&](size_t index) {
        return pair.onCopy(tmpl(index), index);
    };
    out.baseline = runClosedLoop(*pair.baseline, config, next);
    out.fusion = runClosedLoop(*pair.fusion, config, next);
    return out;
}

double
Comparison::p50ReductionPct() const
{
    return latencyReductionPct(baseline.latency.p50(), fusion.latency.p50());
}

double
Comparison::p99ReductionPct() const
{
    return latencyReductionPct(baseline.latency.p99(), fusion.latency.p99());
}

double
Comparison::trafficRatio() const
{
    return static_cast<double>(baseline.networkBytes) /
           static_cast<double>(std::max<uint64_t>(fusion.networkBytes, 1));
}

} // namespace fusion::benchutil
