#include "lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <set>

namespace fusion::lint {

namespace {

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Per-line split of a source file into the three views the rules
 *  match against. */
struct LineView {
    std::string code;     // literals blanked, comments removed
    std::string strings;  // concatenated string-literal contents
    std::string comments; // concatenated comment text
};

/**
 * Comment/literal-aware splitter. The code view preserves column
 * positions (blanked regions become spaces) so token positions stay
 * meaningful; block comments and raw strings keep their newlines so
 * line numbers line up.
 */
std::vector<LineView>
splitViews(const std::string &content)
{
    enum class State {
        kCode,
        kLineComment,
        kBlockComment,
        kString,
        kChar,
        kRawString
    };
    std::vector<LineView> lines(1);
    State state = State::kCode;
    std::string rawDelim; // for kRawString: the ")delim" terminator
    size_t i = 0;
    const size_t n = content.size();

    auto cur = [&]() -> LineView & { return lines.back(); };
    auto newline = [&]() { lines.emplace_back(); };

    while (i < n) {
        char c = content[i];
        if (c == '\n') {
            // A backslash-continued line still ends the physical line;
            // rules are line-oriented, so that is what we want.
            if (state == State::kLineComment)
                state = State::kCode;
            newline();
            ++i;
            continue;
        }
        switch (state) {
          case State::kCode: {
            if (c == '/' && i + 1 < n && content[i + 1] == '/') {
                state = State::kLineComment;
                i += 2;
                break;
            }
            if (c == '/' && i + 1 < n && content[i + 1] == '*') {
                state = State::kBlockComment;
                cur().code += "  ";
                i += 2;
                break;
            }
            if (c == '"') {
                // Raw string? The identifier directly before must end
                // in R (R"", uR"", u8R"", LR"", UR"").
                size_t j = cur().code.size();
                bool raw = j > 0 && cur().code[j - 1] == 'R' &&
                           (j == 1 || !isIdentChar(cur().code[j - 2]) ||
                            cur().code.compare(j - 3 > j ? 0 : j - 3, 2,
                                               "u8") == 0 ||
                            cur().code[j - 2] == 'u' ||
                            cur().code[j - 2] == 'U' ||
                            cur().code[j - 2] == 'L');
                if (raw) {
                    // Collect delimiter up to '('.
                    std::string delim;
                    size_t k = i + 1;
                    while (k < n && content[k] != '(' &&
                           content[k] != '\n' && delim.size() < 16)
                        delim += content[k++];
                    if (k < n && content[k] == '(') {
                        rawDelim = ")" + delim + "\"";
                        state = State::kRawString;
                        cur().code += '"';
                        i = k + 1;
                        break;
                    }
                }
                state = State::kString;
                cur().code += '"';
                ++i;
                break;
            }
            if (c == '\'') {
                state = State::kChar;
                cur().code += '\'';
                ++i;
                break;
            }
            cur().code += c;
            ++i;
            break;
          }
          case State::kLineComment:
            cur().comments += c;
            ++i;
            break;
          case State::kBlockComment:
            if (c == '*' && i + 1 < n && content[i + 1] == '/') {
                state = State::kCode;
                i += 2;
            } else {
                cur().comments += c;
                ++i;
            }
            break;
          case State::kString:
            if (c == '\\' && i + 1 < n) {
                cur().strings += content.substr(i, 2);
                cur().code += "  ";
                i += 2;
            } else if (c == '"') {
                state = State::kCode;
                cur().code += '"';
                ++i;
            } else {
                cur().strings += c;
                cur().code += ' ';
                ++i;
            }
            break;
          case State::kChar:
            if (c == '\\' && i + 1 < n) {
                cur().code += "  ";
                i += 2;
            } else if (c == '\'') {
                state = State::kCode;
                cur().code += '\'';
                ++i;
            } else {
                cur().code += ' ';
                ++i;
            }
            break;
          case State::kRawString:
            if (content.compare(i, rawDelim.size(), rawDelim) == 0) {
                cur().code += '"';
                i += rawDelim.size();
                state = State::kCode;
            } else {
                cur().strings += c;
                cur().code += ' ';
                ++i;
            }
            break;
        }
    }
    return lines;
}

/** Parses `fusion-lint:` directives out of one line's comment text. */
void
parseDirectives(const std::string &comment, std::set<std::string> &line_allow,
                std::set<std::string> &file_allow)
{
    size_t at = comment.find("fusion-lint:");
    if (at == std::string::npos)
        return;
    std::string rest = comment.substr(at + 12);

    auto collect = [](std::string &text, const std::string &kw,
                      std::set<std::string> &into) {
        size_t pos = 0;
        while ((pos = text.find(kw, pos)) != std::string::npos) {
            size_t open = pos + kw.size();
            size_t close = text.find(')', open);
            if (close == std::string::npos)
                break;
            std::string list = text.substr(open, close - open);
            // Blank the clause so allow( doesn't re-match allowfile(.
            for (size_t b = pos; b < close + 1; ++b)
                text[b] = ' ';
            size_t start = 0;
            while (start <= list.size()) {
                size_t comma = list.find(',', start);
                std::string rule =
                    list.substr(start, comma == std::string::npos
                                           ? std::string::npos
                                           : comma - start);
                rule.erase(0, rule.find_first_not_of(" \t"));
                size_t last = rule.find_last_not_of(" \t");
                rule.erase(last == std::string::npos ? 0 : last + 1);
                if (!rule.empty())
                    into.insert(rule);
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
            pos = close + 1;
        }
    };
    collect(rest, "allowfile(", file_allow);
    collect(rest, "allow(", line_allow);
}

/** Iterates identifier tokens in `code`; calls fn(token, next) where
 *  `next` is the first non-space char after the token ('\0' at EOL). */
template <typename Fn>
void
forEachIdent(const std::string &code, Fn &&fn)
{
    size_t i = 0;
    while (i < code.size()) {
        if (!isIdentChar(code[i]) ||
            std::isdigit(static_cast<unsigned char>(code[i]))) {
            ++i;
            continue;
        }
        size_t start = i;
        while (i < code.size() && isIdentChar(code[i]))
            ++i;
        size_t after = i;
        while (after < code.size() &&
               (code[after] == ' ' || code[after] == '\t'))
            ++after;
        fn(code.substr(start, i - start),
           after < code.size() ? code[after] : '\0', start);
    }
}

const std::set<std::string> kClockTypes = {
    "system_clock", "steady_clock", "high_resolution_clock"};
const std::set<std::string> kClockCalls = {
    "time",     "clock",    "gettimeofday", "localtime", "localtime_r",
    "gmtime",   "strftime", "ctime",        "mktime",    "timespec_get",
    "ftime",    "clock_gettime"};
const std::set<std::string> kRandomIdents = {"random_device"};
// libc random() is deliberately absent: the name collides with the
// seeded factory sim::FaultSchedule::random(options), and a token
// scanner cannot tell the two apart. rand()/srand() cover the hazard
// people actually reach for.
const std::set<std::string> kRandomCalls = {"rand", "srand", "drand48",
                                            "rand_r"};
const std::set<std::string> kRawSyncTypes = {
    "mutex",        "shared_mutex",       "recursive_mutex",
    "timed_mutex",  "recursive_timed_mutex",
    "condition_variable", "condition_variable_any",
    "lock_guard",   "unique_lock",        "scoped_lock",
    "shared_lock",  "call_once",          "once_flag"};
// Ad-hoc atomics fold in scheduling order and bypass snapshots;
// instrumentation must go through obs::MetricsRegistry. The aliases
// (atomic_int etc.) are listed so the common shortcuts hit too.
const std::set<std::string> kRawAtomicTypes = {
    "atomic",          "atomic_flag",   "atomic_bool",
    "atomic_int",      "atomic_uint",   "atomic_long",
    "atomic_size_t",   "atomic_int64_t", "atomic_uint64_t",
    "atomic_int32_t",  "atomic_uint32_t"};

bool
pathAllowed(const Options &options, const std::string &rule,
            const std::string &path)
{
    auto it = options.pathAllow.find(rule);
    if (it == options.pathAllow.end())
        return false;
    for (const std::string &substr : it->second)
        if (path.find(substr) != std::string::npos)
            return true;
    return false;
}

/** Skips a balanced <...> starting at code[pos] == '<'; returns the
 *  index one past the matching '>', or npos. */
size_t
skipAngles(const std::string &code, size_t pos)
{
    int depth = 0;
    for (size_t i = pos; i < code.size(); ++i) {
        if (code[i] == '<')
            ++depth;
        else if (code[i] == '>' && --depth == 0)
            return i + 1;
    }
    return std::string::npos;
}

} // namespace

Options
Options::defaults()
{
    Options o;
    o.pathAllow["wallclock"] = {"common/walltime"};
    o.pathAllow["raw-mutex"] = {"common/mutex.h"};
    // The metrics registry's sharded counters are the sanctioned
    // atomics; the thread pool's completion latch predates the
    // registry and is load-bearing for the DES determinism contract.
    o.pathAllow["raw-atomic"] = {"obs/metrics.h", "obs/metrics.cc",
                                 "common/thread_pool"};
    return o;
}

const std::vector<std::string> &
ruleNames()
{
    static const std::vector<std::string> names = {
        "pointer-format", "raw-atomic", "raw-mutex", "unordered-iter",
        "unseeded-random", "wallclock"};
    return names;
}

std::vector<std::string>
collectUnorderedNames(const std::string &content)
{
    auto views = splitViews(content);
    std::string code;
    for (const auto &v : views) {
        code += v.code;
        code += '\n';
    }

    std::vector<std::string> names;
    for (const char *kw : {"unordered_map", "unordered_set",
                           "unordered_multimap", "unordered_multiset"}) {
        size_t pos = 0;
        const std::string kws = kw;
        while ((pos = code.find(kws, pos)) != std::string::npos) {
            size_t end = pos + kws.size();
            // Must be a full identifier followed by template args.
            if ((pos > 0 && isIdentChar(code[pos - 1])) ||
                (end < code.size() && isIdentChar(code[end]))) {
                pos = end;
                continue;
            }
            size_t lt = end;
            while (lt < code.size() && std::isspace(
                       static_cast<unsigned char>(code[lt])))
                ++lt;
            if (lt >= code.size() || code[lt] != '<') {
                pos = end;
                continue;
            }
            size_t after = skipAngles(code, lt);
            if (after == std::string::npos) {
                pos = end;
                continue;
            }
            // Skip cv-ref-pointer decoration before the declared name.
            size_t p = after;
            for (;;) {
                while (p < code.size() &&
                       std::isspace(static_cast<unsigned char>(code[p])))
                    ++p;
                if (code.compare(p, 5, "const") == 0 &&
                    (p + 5 >= code.size() || !isIdentChar(code[p + 5]))) {
                    p += 5;
                    continue;
                }
                if (p < code.size() && (code[p] == '&' || code[p] == '*')) {
                    ++p;
                    continue;
                }
                break;
            }
            size_t name_start = p;
            while (p < code.size() && isIdentChar(code[p]))
                ++p;
            if (p > name_start) {
                size_t next = p;
                while (next < code.size() && std::isspace(
                           static_cast<unsigned char>(code[next])))
                    ++next;
                // An identifier followed by '(' is a function returning
                // the container, not a variable.
                if (next >= code.size() || code[next] != '(')
                    names.push_back(code.substr(name_start, p - name_start));
            }
            pos = end;
        }
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
}

FileReport
lintSource(const std::string &path, const std::string &content,
           const Options &options,
           const std::vector<std::string> &extra_unordered_names)
{
    auto views = splitViews(content);

    std::set<std::string> file_allow;
    std::vector<std::set<std::string>> line_allow(views.size() + 1);
    for (size_t i = 0; i < views.size(); ++i)
        parseDirectives(views[i].comments, line_allow[i + 1], file_allow);

    std::set<std::string> unordered;
    for (const auto &n : collectUnorderedNames(content))
        unordered.insert(n);
    for (const auto &n : extra_unordered_names)
        unordered.insert(n);

    std::vector<Finding> raw;
    auto add = [&](size_t line, const char *rule, std::string message) {
        if (!pathAllowed(options, rule, path))
            raw.push_back({path, line, rule, std::move(message)});
    };

    for (size_t li = 0; li < views.size(); ++li) {
        const size_t line = li + 1;
        const std::string &code = views[li].code;

        forEachIdent(code, [&](const std::string &tok, char next,
                               size_t col) {
            bool stdQualified =
                col >= 2 && views[li].code.compare(col - 2, 2, "::") == 0;
            if (kClockTypes.count(tok)) {
                add(line, "wallclock",
                    "wall-clock API '" + tok +
                        "' — route timing through "
                        "fusion::walltime (common/walltime.h); wall time "
                        "must never feed simulated seconds or planning");
            } else if (next == '(' && kClockCalls.count(tok)) {
                add(line, "wallclock",
                    "wall-clock call '" + tok +
                        "()' — route timing through fusion::walltime "
                        "(common/walltime.h)");
            }
            if (kRandomIdents.count(tok)) {
                add(line, "unseeded-random",
                    "'" + tok +
                        "' is nondeterministic — use the seedable "
                        "fusion::Rng (common/random.h)");
            } else if (next == '(' && kRandomCalls.count(tok)) {
                add(line, "unseeded-random",
                    "'" + tok +
                        "()' is unseeded/global — use the seedable "
                        "fusion::Rng (common/random.h)");
            }
            if (stdQualified && kRawSyncTypes.count(tok)) {
                add(line, "raw-mutex",
                    "raw 'std::" + tok +
                        "' — use fusion::Mutex/MutexLock/CondVar "
                        "(common/mutex.h) so clang -Wthread-safety can "
                        "verify the locking discipline");
            }
            if (stdQualified && kRawAtomicTypes.count(tok)) {
                add(line, "raw-atomic",
                    "raw 'std::" + tok +
                        "' counter — route instrumentation through "
                        "obs::MetricsRegistry (obs/metrics.h); ad-hoc "
                        "atomics fold nondeterministically and bypass "
                        "metric snapshots");
            }
        });

        if (views[li].strings.find("%p") != std::string::npos)
            add(line, "pointer-format",
                "'%p' formats a pointer — addresses differ every run "
                "under ASLR; print a stable id instead");
        if (code.find("std::hex") != std::string::npos &&
            (code.find("reinterpret_cast") != std::string::npos ||
             code.find("uintptr_t") != std::string::npos ||
             code.find("void *") != std::string::npos ||
             code.find("void*") != std::string::npos))
            add(line, "pointer-format",
                "hex-formatted pointer value — addresses differ every "
                "run under ASLR; print a stable id instead");
    }

    // unordered-iter needs multi-line context (for-headers wrap), so it
    // runs over the joined code with an offset -> line map.
    std::string code;
    std::vector<size_t> line_of; // line number per code offset
    for (size_t li = 0; li < views.size(); ++li) {
        for (size_t k = 0; k < views[li].code.size() + 1; ++k)
            line_of.push_back(li + 1);
        code += views[li].code;
        code += '\n';
    }
    size_t pos = 0;
    while ((pos = code.find("for", pos)) != std::string::npos) {
        size_t end = pos + 3;
        if ((pos > 0 && isIdentChar(code[pos - 1])) ||
            (end < code.size() && isIdentChar(code[end]))) {
            pos = end;
            continue;
        }
        size_t open = end;
        while (open < code.size() &&
               std::isspace(static_cast<unsigned char>(code[open])))
            ++open;
        if (open >= code.size() || code[open] != '(') {
            pos = end;
            continue;
        }
        int depth = 0;
        size_t close = open;
        for (; close < code.size(); ++close) {
            if (code[close] == '(')
                ++depth;
            else if (code[close] == ')' && --depth == 0)
                break;
        }
        if (close >= code.size()) {
            pos = end;
            continue;
        }
        std::string head = code.substr(open + 1, close - open - 1);
        // Find the range-for ':' at top level (not '::').
        size_t colon = std::string::npos;
        int d = 0;
        for (size_t k = 0; k < head.size(); ++k) {
            char c = head[k];
            if (c == '(' || c == '[' || c == '{' || c == '<')
                ++d;
            else if (c == ')' || c == ']' || c == '}' || c == '>')
                --d;
            else if (c == ':' && d == 0) {
                if ((k + 1 < head.size() && head[k + 1] == ':') ||
                    (k > 0 && head[k - 1] == ':'))
                    continue;
                colon = k;
                break;
            }
        }
        if (colon != std::string::npos) {
            std::string range = head.substr(colon + 1);
            size_t last = range.find_last_not_of(" \t\n");
            if (last != std::string::npos && isIdentChar(range[last])) {
                size_t start = last;
                while (start > 0 && isIdentChar(range[start - 1]))
                    --start;
                std::string name = range.substr(start, last - start + 1);
                if (unordered.count(name) &&
                    !pathAllowed(options, "unordered-iter", path))
                    raw.push_back(
                        {path, line_of[pos], "unordered-iter",
                         "range-for over unordered container '" + name +
                             "' — iteration order is implementation-"
                             "defined; use a sorted container or sorted "
                             "snapshot on output/decision paths"});
            }
        }
        pos = close;
    }

    std::sort(raw.begin(), raw.end());
    // One finding per (file, line, rule): `std::lock_guard<std::mutex>`
    // should read as a single raw-mutex hit, not two.
    raw.erase(std::unique(raw.begin(), raw.end(),
                          [](const Finding &a, const Finding &b) {
                              return a.file == b.file && a.line == b.line &&
                                     a.rule == b.rule;
                          }),
              raw.end());

    FileReport report;
    for (auto &f : raw) {
        auto allowed = [&](const std::set<std::string> &rules) {
            return rules.count(f.rule) || rules.count("all");
        };
        bool suppressed = allowed(file_allow) || allowed(line_allow[f.line]);
        if (!suppressed && f.line >= 2)
            suppressed = allowed(line_allow[f.line - 1]);
        if (suppressed)
            ++report.suppressed;
        else
            report.findings.push_back(std::move(f));
    }
    return report;
}

std::string
reportJson(std::vector<Finding> findings, size_t files_scanned,
           size_t suppressed)
{
    std::sort(findings.begin(), findings.end());
    auto escape = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\', out += c;
            else if (c == '\n')
                out += "\\n";
            else if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
        return out;
    };
    std::string json = "{\n  \"findings\": [";
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        json += i ? ",\n    " : "\n    ";
        json += "{\"file\": \"" + escape(f.file) +
                "\", \"line\": " + std::to_string(f.line) +
                ", \"rule\": \"" + escape(f.rule) +
                "\", \"message\": \"" + escape(f.message) + "\"}";
    }
    json += findings.empty() ? "]" : "\n  ]";
    json += ",\n  \"files_scanned\": " + std::to_string(files_scanned);
    json += ",\n  \"suppressed\": " + std::to_string(suppressed);
    json += "\n}\n";
    return json;
}

} // namespace fusion::lint
