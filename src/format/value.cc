#include "value.h"

#include <cstdio>

namespace fusion::format {

PhysicalType
Value::type() const
{
    switch (v_.index()) {
      case 0: return PhysicalType::kInt32;
      case 1: return PhysicalType::kInt64;
      case 2: return PhysicalType::kDouble;
      default: return PhysicalType::kString;
    }
}

double
Value::numeric() const
{
    switch (v_.index()) {
      case 0: return std::get<int32_t>(v_);
      case 1: return static_cast<double>(std::get<int64_t>(v_));
      case 2: return std::get<double>(v_);
      default:
        FUSION_CHECK_MSG(false, "numeric() on string value");
        return 0.0;
    }
}

int
Value::compare(const Value &other) const
{
    PhysicalType a = type(), b = other.type();
    if (a == PhysicalType::kString || b == PhysicalType::kString) {
        FUSION_CHECK_MSG(a == b, "comparing string with non-string value");
        return asString().compare(other.asString());
    }
    // Numeric types compare through widening; int64 values that exceed
    // the 2^53 double mantissa do not occur in our datasets.
    double x = numeric(), y = other.numeric();
    if (x < y)
        return -1;
    if (x > y)
        return 1;
    return 0;
}

std::string
Value::toString() const
{
    char buf[64];
    switch (v_.index()) {
      case 0:
        std::snprintf(buf, sizeof(buf), "%d", std::get<int32_t>(v_));
        return buf;
      case 1:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(std::get<int64_t>(v_)));
        return buf;
      case 2:
        std::snprintf(buf, sizeof(buf), "%g", std::get<double>(v_));
        return buf;
      default:
        return std::get<std::string>(v_);
    }
}

void
Value::serialize(BinaryWriter &writer) const
{
    writer.putU8(static_cast<uint8_t>(type()));
    switch (v_.index()) {
      case 0: writer.putI32(std::get<int32_t>(v_)); break;
      case 1: writer.putI64(std::get<int64_t>(v_)); break;
      case 2: writer.putDouble(std::get<double>(v_)); break;
      default: writer.putString(std::get<std::string>(v_)); break;
    }
}

Result<Value>
Value::deserialize(BinaryReader &reader)
{
    auto tag = reader.getU8();
    if (!tag.isOk())
        return tag.status();
    switch (static_cast<PhysicalType>(tag.value())) {
      case PhysicalType::kInt32: {
        auto v = reader.getI32();
        if (!v.isOk())
            return v.status();
        return Value(v.value());
      }
      case PhysicalType::kInt64: {
        auto v = reader.getI64();
        if (!v.isOk())
            return v.status();
        return Value(v.value());
      }
      case PhysicalType::kDouble: {
        auto v = reader.getDouble();
        if (!v.isOk())
            return v.status();
        return Value(v.value());
      }
      case PhysicalType::kString: {
        auto v = reader.getString();
        if (!v.isOk())
            return v.status();
        return Value(std::move(v.value()));
      }
    }
    return Status::corruption("bad value type tag");
}

} // namespace fusion::format
