/**
 * @file
 * Reproduces paper Fig 4b: latency breakdown of the 1%-selectivity
 * microbenchmark query on the baseline (chunk-splitting) store.
 * Paper: ~50% of the time goes to network reassembly of fragmented
 * chunks; disk reads are a small fraction.
 */
#include "benchutil/rigs.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

using namespace fusion;
using namespace fusion::benchutil;

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    banner("Fig 4b", "baseline latency breakdown, 1%-selectivity query");

    RigOptions options;
    options.rows = 60000;
    options.copies = 4;
    StorePair pair = makeStorePair(Dataset::kLineitem, options);

    query::Query q = workload::microbenchQuery(
        "x", "l_extendedprice",
        pair.table.column(workload::kExtendedPrice), 0.01);

    RunConfig config;
    config.totalQueries = 400;
    RunStats stats = runClosedLoop(*pair.baseline, config, [&](size_t i) {
        return pair.onCopy(q, i);
    });

    double total =
        stats.diskSeconds + stats.cpuSeconds + stats.networkSeconds;
    double other = std::max(0.0, stats.latency.sum() - total);
    double denom = total + other;

    TablePrinter table({"component", "share of query time (%)"});
    table.addRow({"disk read", fmt("%.1f", stats.diskSeconds / denom * 100)});
    table.addRow(
        {"data processing", fmt("%.1f", stats.cpuSeconds / denom * 100)});
    table.addRow({"network overhead",
                  fmt("%.1f", stats.networkSeconds / denom * 100)});
    table.addRow({"other (queueing)", fmt("%.1f", other / denom * 100)});
    table.print();
    std::printf("\npaper: ~50%% network overhead, small disk share\n");
    return 0;
}
