# CMake generated Testfile for 
# Source directory: /root/repo/src/fac
# Build directory: /root/repo/build/src/fac
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
