#include "manifest.h"

#include <algorithm>

namespace fusion::store {

const std::vector<size_t> &
ObjectManifest::nodesForChunk(uint32_t chunk_id) const
{
    return chunkNodes_.at(chunk_id);
}

const std::vector<ObjectManifest::BlockRef> &
ObjectManifest::blocksOnNode(size_t node_id) const
{
    static const std::vector<BlockRef> kEmpty;
    auto it = nodeBlocks.find(node_id);
    return it == nodeBlocks.end() ? kEmpty : it->second;
}

std::string
ObjectManifest::blockKey(size_t stripe, size_t block_index) const
{
    return shareName() + "#s" + std::to_string(stripe) + "#b" +
           std::to_string(block_index);
}

std::string
ObjectManifest::shareName() const
{
    return generation == 0 ? name
                           : name + "@g" + std::to_string(generation);
}

bool
ObjectManifest::isHotColocated(uint32_t chunk_id) const
{
    return std::find(hotChunkIds.begin(), hotChunkIds.end(), chunk_id) !=
           hotChunkIds.end();
}

void
ObjectManifest::buildLocationMap()
{
    chunkPieces.assign(extents.size(), {});
    for (size_t s = 0; s < layout.stripes.size(); ++s) {
        const auto &stripe = layout.stripes[s];
        for (size_t b = 0; b < stripe.dataBlocks.size(); ++b) {
            uint64_t block_offset = 0;
            for (const auto &piece : stripe.dataBlocks[b].pieces) {
                if (!piece.isPadding()) {
                    chunkPieces.at(piece.chunkId)
                        .push_back({s, b, block_offset, piece.chunkOffset,
                                    piece.size});
                }
                block_offset += piece.size;
            }
        }
    }
    // Keep pieces of each chunk in chunk-offset order for reassembly.
    for (auto &pieces : chunkPieces) {
        std::sort(pieces.begin(), pieces.end(),
                  [](const PieceLocation &a, const PieceLocation &b) {
                      return a.chunkOffset < b.chunkOffset;
                  });
    }

    // Per-chunk node cache: pushdown planning asks for this once per
    // chunk per query, so derive it once instead of per call.
    chunkNodes_.assign(extents.size(), {});
    for (size_t c = 0; c < chunkPieces.size(); ++c) {
        auto &nodes = chunkNodes_[c];
        for (const auto &piece : chunkPieces[c]) {
            size_t node = stripeNodes.at(piece.stripe).at(piece.blockIndex);
            if (std::find(nodes.begin(), nodes.end(), node) == nodes.end())
                nodes.push_back(node);
        }
    }

    // Per-node block shards (data blocks at true size, parity full;
    // implicit zero blocks are not materialized anywhere).
    nodeBlocks.clear();
    for (size_t s = 0; s < layout.stripes.size(); ++s) {
        const fac::StripeLayout &stripe = layout.stripes[s];
        for (size_t b = 0; b < layout.n; ++b) {
            uint64_t size = (b < layout.k)
                                ? (b < stripe.dataBlocks.size()
                                       ? stripe.dataBlocks[b].size()
                                       : 0)
                                : stripe.blockSize();
            if (size == 0)
                continue;
            nodeBlocks[stripeNodes[s][b]].push_back({s, b, size});
        }
    }
    for (auto &[node, refs] : nodeBlocks) {
        std::sort(refs.begin(), refs.end(),
                  [](const BlockRef &a, const BlockRef &b) {
                      return a.stripe != b.stripe
                                 ? a.stripe < b.stripe
                                 : a.blockIndex < b.blockIndex;
                  });
    }
}

} // namespace fusion::store
