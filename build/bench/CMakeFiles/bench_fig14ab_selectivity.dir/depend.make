# Empty dependencies file for bench_fig14ab_selectivity.
# This may be replaced when dependencies are built.
