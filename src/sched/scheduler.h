/**
 * @file
 * Shared-scan query scheduler. Admits a batch of concurrent queries
 * (possibly over different objects), plans each through the store's
 * two-stage executor, then deduplicates the planned work at chunk
 * granularity before simulating anything:
 *
 *   - identical chunk/block fetches (equal SimTask::shareKey) are
 *     issued once; every other consumer waits on the one in-flight
 *     transfer and pays only its own coordinator-side work;
 *   - compatible projection pushdowns against the same chunk are
 *     merged into one storage-node task with a shared reply;
 *   - the Cost Equation is re-evaluated over the *merged* consumer set
 *     (see query::decideSharedProjectionPushdown): N pushdown replies
 *     compete against ONE shared chunk fetch, so heavily shared chunks
 *     flip to coordinator-side evaluation even when each query alone
 *     would push down — and vice versa a per-node load term sheds
 *     pushdowns off storage nodes whose simulated CPU is already
 *     oversubscribed by this batch.
 *
 * Everything runs on the simulation driver thread against the store's
 * sim::Engine, so batch outcomes, sched.* metrics, shared_scan /
 * sched_wait trace spans and amended EXPLAIN reasons ("shared-fetch",
 * "merged-pushdown", "load-shed") are deterministic across runs and
 * thread counts.
 */
#ifndef FUSION_SCHED_SCHEDULER_H
#define FUSION_SCHED_SCHEDULER_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "query/parser.h"
#include "store/object_store.h"

namespace fusion::sched {

/** Scheduler tuning knobs. */
struct SchedOptions {
    /**
     * Per-node admission limit on outstanding pushdown CPU work, in
     * simulated seconds of the node's full-core capacity, per batch.
     * Once a node's admitted pushdown work exceeds this, further
     * pushdowns targeting it are converted to coordinator-side
     * evaluation (EXPLAIN reason "load-shed"). 0 disables the term.
     */
    double nodeLoadLimitSeconds = 0.25;
    /** Re-run the Cost Equation over merged consumer sets. */
    bool mergePushdowns = true;
    /** Share identical fetches across queries. */
    bool dedupFetches = true;
};

/** What the scheduler did with one batch (also mirrored as sched.*
 *  counters in the store's metrics registry). */
struct BatchStats {
    size_t queries = 0;
    size_t tasksPlanned = 0;  // before dedup, filter + projection
    size_t tasksIssued = 0;   // unique executions after dedup
    size_t sharedFetches = 0; // fetch tasks absorbed by an equal fetch
    size_t mergedPushdowns = 0; // pushdowns absorbed by an equal one
    size_t fetchConversions = 0; // pushdowns -> shared fetch (cost eq)
    size_t loadSheds = 0;        // pushdowns -> fetch (node load term)
    uint64_t wireBytesSaved = 0; // request+reply bytes never re-sent
    double makespanSeconds = 0.0; // batch admit -> last client reply
};

/**
 * Batches concurrent queries against one store into deduplicated
 * pushdown requests. The scheduler owns no store state; it composes
 * the store's public planQueryForBatch / executeTask / accountTask
 * hooks, so per-query results are bit-identical to isolated execution.
 */
class SharedScanScheduler
{
  public:
    explicit SharedScanScheduler(store::ObjectStore &store,
                                 const SchedOptions &options = {});

    /**
     * Admits `batch` at the current simulated instant, plans every
     * query, applies cross-query dedup + the shared Cost Equation, then
     * simulates all queries concurrently and runs the engine to
     * completion. Returns per-query outcomes in batch order; each
     * outcome's latency is measured from batch admission (all queries
     * arrive together). Fails fast on the first query that cannot be
     * planned (unknown table, bad column, ...).
     */
    Result<std::vector<store::QueryOutcome>>
    runBatch(const std::vector<query::Query> &batch);

    /** Parses each statement, then runBatch. */
    Result<std::vector<store::QueryOutcome>>
    runBatchSql(const std::vector<std::string> &statements);

    /** Stats of the most recent runBatch. */
    const BatchStats &lastBatchStats() const { return stats_; }

    const SchedOptions &options() const { return options_; }

  private:
    store::ObjectStore &store_;
    SchedOptions options_;
    BatchStats stats_;

    /** sched.* counters, resolved once (same registry as the store's
     *  fault/cache/wire instruments, so one snapshot covers all). */
    struct Instruments {
        obs::Counter *batches = nullptr;
        obs::Counter *queries = nullptr;
        obs::Counter *tasksPlanned = nullptr;
        obs::Counter *tasksIssued = nullptr;
        obs::Counter *sharedFetches = nullptr;
        obs::Counter *mergedPushdowns = nullptr;
        obs::Counter *fetchConversions = nullptr;
        obs::Counter *loadSheds = nullptr;
        obs::Counter *wireBytesSaved = nullptr;
    };
    Instruments ins_;
};

} // namespace fusion::sched

#endif // FUSION_SCHED_SCHEDULER_H
