/**
 * @file
 * Column chunk encode/decode. A chunk is the paper's *smallest
 * computable unit*: fully self-contained bytes (dictionary page plus
 * data pages, or plain data pages), decodable given only the column's
 * physical type. This self-containedness is exactly what FAC preserves
 * by never splitting a chunk across erasure-code blocks.
 *
 * Chunk layout:
 *   u8      encoding (plain | dictionary)
 *   u8      compression codec
 *   varint  valueCount
 *   dictionary only:
 *     varint dictCount, varint compressedDictLen, <dict page bytes>
 *     u8 codeBitWidth
 *   varint  numDataPages
 *   per page: varint pageValueCount, varint compressedLen, <page bytes>
 *
 * Dictionary data pages hold RLE/bit-packed code streams; plain data
 * pages hold plain-encoded values. All pages are block-compressed.
 */
#ifndef FUSION_FORMAT_CHUNK_CODEC_H
#define FUSION_FORMAT_CHUNK_CODEC_H

#include "bloom.h"
#include "codec/codec.h"
#include "column.h"
#include "metadata.h"

namespace fusion::format {

/** Tuning knobs for chunk encoding. */
struct ChunkEncodeOptions {
    codec::Compression compression = codec::Compression::kSnappy;
    bool enableDictionary = true;
    /** Use a dictionary only if cardinality <= ratio * valueCount. */
    double dictMaxCardinalityRatio = 0.5;
    /** ...and cardinality does not exceed this cap. */
    size_t maxDictCardinality = 1 << 16;
    /** Values per data page. */
    size_t pageValueCount = 20000;
    /**
     * Build a per-chunk Bloom filter for equality pruning (extension
     * beyond the paper; off by default because the filters live in the
     * footer and add ~10 bits per distinct value of footer weight).
     */
    bool enableBloomFilter = false;
};

/** Result of encoding one column chunk. */
struct EncodedChunk {
    Bytes bytes;
    ChunkEncoding encoding = ChunkEncoding::kPlain;
    uint64_t plainSize = 0; // plain-encoded size of the same values
    uint64_t valueCount = 0;
    Value minValue;
    Value maxValue;
    BloomFilter bloom; // empty when disabled
};

/** Encodes a column's values into a self-contained chunk. */
EncodedChunk encodeChunk(const ColumnData &column,
                         const ChunkEncodeOptions &options);

/** Decodes a chunk produced by encodeChunk. */
Result<ColumnData> decodeChunk(Slice bytes, PhysicalType type);

/** Plain-encodes values (the uncompressed wire form of projections). */
Bytes plainEncode(const ColumnData &column);

/** Inverse of plainEncode for `count` values of the given type. */
Result<ColumnData> plainDecode(Slice bytes, PhysicalType type, size_t count);

} // namespace fusion::format

#endif // FUSION_FORMAT_CHUNK_CODEC_H
