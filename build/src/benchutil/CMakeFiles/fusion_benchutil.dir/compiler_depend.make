# Empty compiler generated dependencies file for fusion_benchutil.
# This may be replaced when dependencies are built.
