/**
 * @file
 * Kernel microbenchmark + perf-trajectory tracker. Measures the hot
 * loops the performance layer optimizes — GF(256) multiply-accumulate
 * (legacy log/exp loop vs blocked scalar vs SIMD), Reed-Solomon
 * encode/reconstruct, and the typed predicate/select/aggregate query
 * kernels — and writes the numbers to BENCH_kernels.json so every
 * commit's kernel throughput is recorded.
 *
 * Usage:
 *   bench_kernels [--quick] [--out=PATH] [--check=BASELINE]
 *                 [--tolerance=0.2]
 *
 * --quick shortens each timing window (CI smoke mode). --check loads a
 * baseline JSON (same schema) and exits nonzero when any metric present
 * in both files regressed by more than --tolerance (default 20%).
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/walltime.h"
#include "common/thread_pool.h"
#include "ec/reed_solomon.h"
#include "format/column.h"
#include "query/eval.h"

using namespace fusion;

namespace {

double
now()
{
    return walltime::monotonicSeconds();
}

/**
 * Runs `fn` (which processes `bytes_per_call` bytes) repeatedly for at
 * least `min_seconds` after one warmup call, returning bytes/second.
 */
template <typename Fn>
double
throughput(double min_seconds, double bytes_per_call, Fn &&fn)
{
    fn(); // warmup: page in buffers, build tables
    size_t calls = 0;
    double start = now(), elapsed = 0.0;
    do {
        fn();
        ++calls;
        elapsed = now() - start;
    } while (elapsed < min_seconds);
    return static_cast<double>(calls) * bytes_per_call / elapsed;
}

/** The pre-optimization branchy log/exp loop, kept verbatim as the
 *  fixed reference the tracked speedup is measured against. */
void
legacyMulAccumulate(const ec::Gf256 &gf, uint8_t *dst, const uint8_t *src,
                    size_t len, uint8_t c)
{
    if (c == 0)
        return;
    for (size_t i = 0; i < len; ++i) {
        uint8_t s = src[i];
        if (s)
            dst[i] ^= gf.mul(c, s); // table hop per byte, branch per byte
    }
}

Bytes
randomBytes(size_t len, uint64_t seed)
{
    Rng rng(seed);
    Bytes out(len);
    for (auto &b : out)
        b = static_cast<uint8_t>(rng.next());
    return out;
}

void
writeJson(const std::string &path, const std::string &simd_level,
          size_t threads, bool quick,
          const std::vector<std::pair<std::string, double>> &metrics)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(2);
    }
    std::fprintf(f, "{\n  \"bench\": \"kernels\",\n");
    std::fprintf(f, "  \"simd_level\": \"%s\",\n", simd_level.c_str());
    std::fprintf(f, "  \"threads\": %zu,\n", threads);
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"metrics\": {\n");
    for (size_t i = 0; i < metrics.size(); ++i)
        std::fprintf(f, "    \"%s\": %.6g%s\n", metrics[i].first.c_str(),
                     metrics[i].second,
                     i + 1 < metrics.size() ? "," : "");
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
}

/** Minimal parser for the flat {"metrics": {"name": number}} schema
 *  this binary writes — enough for baseline comparison, no deps. */
std::map<std::string, double>
readBaselineMetrics(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
        std::exit(2);
    }
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);

    std::map<std::string, double> metrics;
    size_t obj = text.find("\"metrics\"");
    if (obj == std::string::npos)
        return metrics;
    obj = text.find('{', obj);
    size_t end_obj = text.find('}', obj);
    if (obj == std::string::npos || end_obj == std::string::npos)
        return metrics;
    size_t cur = obj;
    while (true) {
        size_t q0 = text.find('"', cur);
        if (q0 == std::string::npos || q0 > end_obj)
            break;
        size_t q1 = text.find('"', q0 + 1);
        size_t colon = text.find(':', q1);
        if (q1 == std::string::npos || colon == std::string::npos ||
            colon > end_obj)
            break;
        char *end = nullptr;
        double v = std::strtod(text.c_str() + colon + 1, &end);
        if (end == text.c_str() + colon + 1)
            break;
        metrics[text.substr(q0 + 1, q1 - q0 - 1)] = v;
        cur = static_cast<size_t>(end - text.c_str());
    }
    return metrics;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string out_path = "BENCH_kernels.json";
    std::string baseline_path;
    double tolerance = 0.2;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick")
            quick = true;
        else if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else if (arg.rfind("--check=", 0) == 0)
            baseline_path = arg.substr(8);
        else if (arg.rfind("--tolerance=", 0) == 0)
            tolerance = std::atof(arg.c_str() + 12);
        else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            return 2;
        }
    }
    const double window = quick ? 0.05 : 0.4;
    std::vector<std::pair<std::string, double>> metrics;
    auto add = [&metrics](const std::string &name, double v) {
        std::printf("  %-32s %12.3f\n", name.c_str(), v);
        metrics.emplace_back(name, v);
    };

    std::printf("== bench_kernels (simd=%s, threads=%zu%s) ==\n",
                ec::simdLevelName(ec::Gf256::bestSimdLevel()),
                ThreadPool::shared().threadCount(), quick ? ", quick" : "");

    // ---- GF(256) multiply-accumulate ----
    const size_t kLen = 1 << 20;
    const auto &gf = ec::Gf256::instance();
    Bytes src = randomBytes(kLen, 1), dst = randomBytes(kLen, 2);
    double legacy = throughput(window, kLen, [&]() {
        legacyMulAccumulate(gf, dst.data(), src.data(), kLen, 0x57);
    });
    double scalar = throughput(window, kLen, [&]() {
        gf.mulAccumulate(dst.data(), src.data(), kLen, 0x57,
                         ec::SimdLevel::kScalar);
    });
    double simd = throughput(window, kLen, [&]() {
        gf.mulAccumulate(dst.data(), src.data(), kLen, 0x57);
    });
    add("gf_mac_legacy_gbps", legacy / 1e9);
    add("gf_mac_scalar_gbps", scalar / 1e9);
    add("gf_mac_simd_gbps", simd / 1e9);
    add("gf_mac_speedup_vs_legacy", simd / legacy);

    // ---- Reed-Solomon encode / reconstruct ----
    for (auto [n, k] : {std::pair<size_t, size_t>{9, 6}, {14, 10}}) {
        auto rs = ec::ReedSolomon::create(n, k).value();
        std::vector<Bytes> blocks;
        for (size_t j = 0; j < k; ++j)
            blocks.push_back(randomBytes(1 << 20, 100 + j));
        std::vector<Slice> views(blocks.begin(), blocks.end());
        double enc = throughput(window, double(k) * (1 << 20), [&]() {
            auto parity = rs.encodeParity(views);
            asm volatile("" : : "r"(parity.data()) : "memory");
        });
        auto stripe = ec::encodeStripe(rs, blocks).value();
        double rec = throughput(window, double(n - k) * (1 << 20), [&]() {
            std::vector<std::optional<Bytes>> shards;
            for (const auto &block : stripe.blocks)
                shards.emplace_back(block);
            for (size_t e = 0; e < n - k; ++e)
                shards[e] = std::nullopt;
            auto st = rs.reconstruct(shards, stripe.blockSize);
            asm volatile("" : : "r"(&st) : "memory");
        });
        char name[64];
        std::snprintf(name, sizeof(name), "rs_encode_%zu_%zu_gbps", n, k);
        add(name, enc / 1e9);
        std::snprintf(name, sizeof(name), "rs_reconstruct_%zu_%zu_gbps", n,
                      k);
        add(name, rec / 1e9);
    }

    // ---- predicate / select / aggregate kernels ----
    const size_t kRows = 1 << 20;
    Rng rng(7);
    format::ColumnData i64(format::PhysicalType::kInt64);
    format::ColumnData f64(format::PhysicalType::kDouble);
    format::ColumnData i32(format::PhysicalType::kInt32);
    for (size_t i = 0; i < kRows; ++i) {
        i64.append(rng.uniformInt(0, 1'000'000));
        f64.append(rng.uniformReal(0.0, 1.0));
        i32.append(static_cast<int32_t>(rng.uniformInt(0, 1 << 20)));
    }
    auto pred_rate = [&](const format::ColumnData &col,
                         const format::Value &lit) {
        return throughput(window, kRows, [&]() {
            auto bm = query::evalPredicate(col, query::CompareOp::kLt, lit);
            asm volatile("" : : "r"(&bm) : "memory");
        });
    };
    double ref = throughput(window, kRows, [&]() {
        auto bm = query::evalPredicateReference(
            i64, query::CompareOp::kLt, format::Value(int64_t{500'000}));
        asm volatile("" : : "r"(&bm) : "memory");
    });
    double p64 = pred_rate(i64, format::Value(int64_t{500'000}));
    add("predicate_boxed_mrows", ref / 1e6);
    add("predicate_int64_mrows", p64 / 1e6);
    add("predicate_double_mrows",
        pred_rate(f64, format::Value(0.5)) / 1e6);
    add("predicate_int32_mrows",
        pred_rate(i32, format::Value(int32_t{1 << 19})) / 1e6);
    add("predicate_speedup_vs_boxed", p64 / ref);

    auto half = query::evalPredicate(i64, query::CompareOp::kLt,
                                     format::Value(int64_t{500'000}))
                    .value();
    add("select_int64_mrows", throughput(window, kRows, [&]() {
                                  auto sel = query::selectRows(i64, half);
                                  asm volatile("" : : "r"(&sel) : "memory");
                              }) / 1e6);
    add("aggregate_sum_mrows", throughput(window, kRows, [&]() {
                                   auto s = query::computeAggregate(
                                       query::AggregateKind::kSum, f64);
                                   asm volatile("" : : "r"(&s) : "memory");
                               }) / 1e6);

    writeJson(out_path,
              ec::simdLevelName(ec::Gf256::bestSimdLevel()),
              ThreadPool::shared().threadCount(), quick, metrics);
    std::printf("wrote %s\n", out_path.c_str());

    if (!baseline_path.empty()) {
        auto baseline = readBaselineMetrics(baseline_path);
        std::map<std::string, double> current(metrics.begin(),
                                              metrics.end());
        int failures = 0;
        for (const auto &[name, want] : baseline) {
            auto it = current.find(name);
            if (it == current.end())
                continue;
            double floor = want * (1.0 - tolerance);
            bool ok = it->second >= floor;
            std::printf("  check %-30s %10.3f >= %10.3f %s\n",
                        name.c_str(), it->second, floor,
                        ok ? "ok" : "REGRESSED");
            failures += ok ? 0 : 1;
        }
        if (failures > 0) {
            std::fprintf(stderr,
                         "%d kernel metric(s) regressed more than %.0f%% "
                         "vs %s\n",
                         failures, tolerance * 100.0,
                         baseline_path.c_str());
            return 1;
        }
        std::printf("all kernel metrics within %.0f%% of baseline\n",
                    tolerance * 100.0);
    }
    return 0;
}
