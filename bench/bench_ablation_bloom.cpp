/**
 * @file
 * Ablation A6: Bloom-filter chunk skipping (extension beyond the
 * paper). Point lookups (`col = v`) on unsorted columns defeat min/max
 * zone maps — every chunk's range contains the probe — so the paper's
 * coordinator must filter every chunk. Per-chunk Bloom filters prune
 * them for a small footer cost. We measure latency, traffic and
 * row-group scans for point lookups with and without filters.
 */
#include "benchutil/rigs.h"
#include "common/random.h"
#include "format/writer.h"
#include "workload/lineitem.h"

using namespace fusion;
using namespace fusion::benchutil;

namespace {

format::Table
makeEventTable(size_t rows)
{
    format::Schema schema(
        {{"user_id", format::PhysicalType::kInt64,
          format::LogicalType::kNone},
         {"payload", format::PhysicalType::kString,
          format::LogicalType::kNone},
         {"amount", format::PhysicalType::kDouble,
          format::LogicalType::kNone}});
    format::Table t(schema);
    Rng rng(11);
    for (size_t i = 0; i < rows; ++i) {
        t.column(0).append(rng.uniformInt(0, 1 << 24) * 2); // even ids
        t.column(1).append(randomString(rng, 40));
        t.column(2).append(rng.uniformReal(0.0, 500.0));
    }
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    banner("Ablation A6", "Bloom-filter chunk skipping on point lookups");

    const size_t rows = 64000;
    format::Table table = makeEventTable(rows);

    TablePrinter results({"filters", "footer size", "hit p50", "miss p50",
                          "miss rg scanned", "miss traffic (KiB/q)"});
    for (bool bloom : {false, true}) {
        format::WriterOptions writer_options;
        writer_options.rowGroupRows = rows / 16;
        writer_options.chunk.enableBloomFilter = bloom;
        auto file = format::writeTable(table, writer_options);
        FUSION_CHECK(file.isOk());

        sim::ClusterConfig cluster_config;
        cluster_config.node = scaledNodeConfig(
            cluster_config.node, file.value().bytes.size(), 10e9);
        sim::Cluster cluster(cluster_config);
        store::FusionStore store(cluster, store::StoreOptions{});
        FUSION_CHECK(store.put("events", file.value().bytes).isOk());

        // Footer (metadata) size difference = the filters' cost.
        uint64_t footer_size = file.value().metadata.serialize().size();

        Rng rng(21);
        SampleHistogram hit_latency, miss_latency;
        double miss_rg_scanned = 0;
        uint64_t miss_traffic = 0;
        const int lookups = 100;
        for (int i = 0; i < lookups; ++i) {
            // Present id: a random row's value. Absent id: odd number.
            int64_t present =
                table.column(0).int64s()[rng.pickIndex(rows)];
            auto hit = store.querySql(
                "SELECT amount FROM events WHERE user_id = " +
                std::to_string(present));
            FUSION_CHECK(hit.isOk());
            hit_latency.add(hit.value().latencySeconds);

            uint64_t before = store.cluster().totalNetworkBytes();
            auto miss = store.querySql(
                "SELECT amount FROM events WHERE user_id = " +
                std::to_string(rng.uniformInt(0, 1 << 24) * 2 + 1));
            FUSION_CHECK(miss.isOk());
            FUSION_CHECK(miss.value().result.rowsMatched == 0);
            miss_latency.add(miss.value().latencySeconds);
            miss_rg_scanned += miss.value().rowGroupsScanned;
            miss_traffic += store.cluster().totalNetworkBytes() - before;
        }

        results.addRow(
            {bloom ? "bloom + zone maps" : "zone maps only",
             formatBytes(footer_size),
             formatSeconds(hit_latency.p50()),
             formatSeconds(miss_latency.p50()),
             fmt("%.1f", miss_rg_scanned / lookups),
             fmt("%.1f", static_cast<double>(miss_traffic) / lookups /
                             1024)});
    }
    results.print();
    std::printf("\nexpected: with Bloom filters, absent-key lookups skip "
                "every row group at the coordinator, cutting their "
                "latency and traffic to near zero for a modest footer "
                "cost\n");
    return 0;
}
