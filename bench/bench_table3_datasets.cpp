/**
 * @file
 * Reproduces paper Table 3 (Parquet dataset description): columns,
 * chunk counts and file sizes for the four datasets, at both the
 * generated (scaled) size and the paper-scale chunk model.
 */
#include "benchutil/harness.h"
#include "common/units.h"
#include "workload/chunk_models.h"
#include "workload/lineitem.h"
#include "workload/taxi.h"
#include "workload/textsets.h"

using namespace fusion;

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    benchutil::banner("Table 3", "Parquet dataset description");

    struct Row {
        const char *name;
        Result<format::WrittenFile> file;
        std::vector<fac::ChunkExtent> model;
        double paperGb;
    };
    Row rows[] = {
        {"tpc-h lineitem", workload::buildLineitemFile(60000, 1),
         workload::lineitemChunkModel(1), 10.0},
        {"taxi", workload::buildTaxiFile(64000, 1),
         workload::taxiChunkModel(1), 8.4},
        {"recipeNLG", workload::buildRecipeFile(24000, 1),
         workload::recipeChunkModel(1), 0.98},
        {"uk pp", workload::buildUkppFile(30000, 1),
         workload::ukppChunkModel(1), 1.5},
    };

    benchutil::TablePrinter table(
        {"dataset", "num columns", "num chunks", "generated size",
         "paper-scale model", "paper size (GB)"});
    for (auto &row : rows) {
        FUSION_CHECK(row.file.isOk());
        const auto &meta = row.file.value().metadata;
        table.addRow({row.name,
                      std::to_string(meta.schema.numColumns()),
                      std::to_string(meta.numChunks()),
                      formatBytes(row.file.value().bytes.size()),
                      benchutil::fmt("%.2f GB",
                                     workload::modelTotalBytes(row.model) /
                                         1e9),
                      benchutil::fmt("%.2f", row.paperGb)});
    }
    table.print();
    return 0;
}
