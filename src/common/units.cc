#include "units.h"

#include <cstdio>

namespace fusion {

std::string
formatBytes(uint64_t bytes)
{
    char buf[64];
    if (bytes >= kGiB) {
        std::snprintf(buf, sizeof(buf), "%.2f GiB",
                      static_cast<double>(bytes) / kGiB);
    } else if (bytes >= kMiB) {
        std::snprintf(buf, sizeof(buf), "%.2f MiB",
                      static_cast<double>(bytes) / kMiB);
    } else if (bytes >= kKiB) {
        std::snprintf(buf, sizeof(buf), "%.2f KiB",
                      static_cast<double>(bytes) / kKiB);
    } else {
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    }
    return buf;
}

std::string
formatSeconds(double seconds)
{
    char buf[64];
    if (seconds >= 1.0)
        std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
    else if (seconds >= 1e-3)
        std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
    else if (seconds >= 1e-6)
        std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
    else
        std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
    return buf;
}

std::string
formatPercent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

} // namespace fusion
