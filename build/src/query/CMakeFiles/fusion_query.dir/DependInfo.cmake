
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/ast.cc" "src/query/CMakeFiles/fusion_query.dir/ast.cc.o" "gcc" "src/query/CMakeFiles/fusion_query.dir/ast.cc.o.d"
  "/root/repo/src/query/bitmap.cc" "src/query/CMakeFiles/fusion_query.dir/bitmap.cc.o" "gcc" "src/query/CMakeFiles/fusion_query.dir/bitmap.cc.o.d"
  "/root/repo/src/query/eval.cc" "src/query/CMakeFiles/fusion_query.dir/eval.cc.o" "gcc" "src/query/CMakeFiles/fusion_query.dir/eval.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/fusion_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/fusion_query.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fusion_common.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/fusion_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/fusion_format.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
