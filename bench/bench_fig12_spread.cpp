/**
 * @file
 * Reproduces paper Fig 12: average number of storage nodes a column
 * chunk of each lineitem column is spread across in the baseline
 * (fixed 100 MB blocks, RS(9,6)), with the average chunk size on top.
 * Paper: up to ~5 nodes for the comment column (386 MB chunks).
 */
#include "benchutil/harness.h"
#include "fac/constructors.h"
#include "workload/chunk_models.h"
#include "workload/lineitem.h"

using namespace fusion;

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    benchutil::banner(
        "Fig 12", "avg nodes per lineitem chunk in baseline w/ chunk split");

    // Paper-scale model; average over several placements.
    const int kRuns = 5;
    std::vector<double> span_sum(16, 0.0);
    std::vector<double> size_sum(16, 0.0);
    for (int run = 0; run < kRuns; ++run) {
        auto model = workload::lineitemChunkModel(50 + run);
        fac::ObjectLayout layout =
            fac::buildFixedLayout(model, 9, 6, 100'000'000);
        auto spans = layout.chunkSpans(model.size());
        // Chunks are laid out row-group-major: chunk id % 16 = column.
        for (size_t i = 0; i < model.size(); ++i) {
            span_sum[i % 16] += spans[i];
            size_sum[i % 16] += static_cast<double>(model[i].size);
        }
    }

    format::Schema schema = workload::lineitemSchema();
    benchutil::TablePrinter table(
        {"column id", "name", "avg chunk size (MB)", "avg num nodes"});
    for (size_t c = 0; c < 16; ++c) {
        double denom = kRuns * 10.0; // 10 row groups per run
        table.addRow({std::to_string(c), schema.column(c).name,
                      benchutil::fmt("%.0f", size_sum[c] / denom / 1e6),
                      benchutil::fmt("%.1f", span_sum[c] / denom)});
    }
    table.print();
    std::printf("\npaper: c15 (comment, ~386MB) spans ~5 nodes; tiny "
                "columns ~1\n");
    return 0;
}
