/**
 * @file
 * Dictionary encoding: maps a value sequence to (unique-value dictionary,
 * integer code per value), the first step of a Parquet-style column
 * chunk encoding. Codes are then RLE/bit-packed by the format writer.
 */
#ifndef FUSION_CODEC_DICTIONARY_H
#define FUSION_CODEC_DICTIONARY_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace fusion::codec {

/**
 * Builds a dictionary over values of type T (first-seen order) and the
 * corresponding code stream. T must be hashable and equality-comparable.
 */
template <typename T>
class DictionaryEncoder
{
  public:
    /** Appends one value; returns its dictionary code. */
    uint32_t
    add(const T &value)
    {
        auto [it, inserted] =
            index_.try_emplace(value, static_cast<uint32_t>(dict_.size()));
        if (inserted)
            dict_.push_back(value);
        codes_.push_back(it->second);
        return it->second;
    }

    const std::vector<T> &dictionary() const { return dict_; }
    const std::vector<uint32_t> &codes() const { return codes_; }
    size_t cardinality() const { return dict_.size(); }
    size_t valueCount() const { return codes_.size(); }

  private:
    std::unordered_map<T, uint32_t> index_;
    std::vector<T> dict_;
    std::vector<uint32_t> codes_;
};

/** Expands dictionary codes back into values. */
template <typename T>
Result<std::vector<T>>
dictionaryDecode(const std::vector<T> &dict,
                 const std::vector<uint64_t> &codes)
{
    std::vector<T> out;
    out.reserve(codes.size());
    for (uint64_t code : codes) {
        if (code >= dict.size())
            return Status::corruption("dictionary code out of range");
        out.push_back(dict[code]);
    }
    return out;
}

} // namespace fusion::codec

#endif // FUSION_CODEC_DICTIONARY_H
