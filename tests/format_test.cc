/**
 * @file
 * Unit tests for src/format: values, columns, chunk codec, writer and
 * reader, footer statistics and corruption handling.
 */
#include <gtest/gtest.h>

#include "common/random.h"
#include "format/chunk_codec.h"
#include "format/column.h"
#include "format/metadata.h"
#include "format/reader.h"
#include "format/value.h"
#include "format/writer.h"

namespace fusion::format {
namespace {

TEST(ValueTest, TypeAndAccessors)
{
    EXPECT_EQ(Value::ofInt32(3).type(), PhysicalType::kInt32);
    EXPECT_EQ(Value::ofInt64(3).type(), PhysicalType::kInt64);
    EXPECT_EQ(Value::ofDouble(3.0).type(), PhysicalType::kDouble);
    EXPECT_EQ(Value::ofString("x").type(), PhysicalType::kString);
    EXPECT_EQ(Value::ofInt32(-7).asInt32(), -7);
    EXPECT_EQ(Value::ofString("hi").asString(), "hi");
}

TEST(ValueTest, NumericCrossTypeComparison)
{
    EXPECT_TRUE(Value::ofInt32(3) < Value::ofInt64(4));
    EXPECT_TRUE(Value::ofInt64(5) > Value::ofDouble(4.5));
    EXPECT_TRUE(Value::ofInt32(7) == Value::ofDouble(7.0));
}

TEST(ValueTest, StringComparison)
{
    EXPECT_TRUE(Value::ofString("apple") < Value::ofString("banana"));
    EXPECT_TRUE(Value::ofString("b") == Value::ofString("b"));
}

TEST(ValueTest, SerdeRoundTrip)
{
    std::vector<Value> values = {Value::ofInt32(-5), Value::ofInt64(1LL << 40),
                                 Value::ofDouble(2.5),
                                 Value::ofString("fusion")};
    Bytes buf;
    BinaryWriter w(buf);
    for (const auto &v : values)
        v.serialize(w);
    BinaryReader r{Slice(buf)};
    for (const auto &v : values) {
        auto got = Value::deserialize(r);
        ASSERT_TRUE(got.isOk());
        EXPECT_TRUE(got.value() == v);
    }
}

TEST(ColumnDataTest, TypedAppendAndBoxing)
{
    ColumnData col(PhysicalType::kDouble);
    col.append(1.5);
    col.append(2.5);
    EXPECT_EQ(col.size(), 2u);
    EXPECT_TRUE(col.valueAt(1) == Value::ofDouble(2.5));
    col.appendValue(Value::ofDouble(3.5));
    EXPECT_EQ(col.doubles().back(), 3.5);
}

TEST(TableTest, ValidateCatchesRaggedColumns)
{
    Schema schema({{"a", PhysicalType::kInt64, LogicalType::kNone},
                   {"b", PhysicalType::kInt64, LogicalType::kNone}});
    Table t(schema);
    t.column(0).append(int64_t{1});
    t.column(0).append(int64_t{2});
    t.column(1).append(int64_t{1});
    EXPECT_FALSE(t.validate().isOk());
    t.column(1).append(int64_t{2});
    EXPECT_TRUE(t.validate().isOk());
}

TEST(SchemaTest, ColumnIndexLookup)
{
    Schema schema({{"x", PhysicalType::kInt32, LogicalType::kNone},
                   {"y", PhysicalType::kString, LogicalType::kNone}});
    EXPECT_EQ(schema.columnIndex("y").value(), 1u);
    EXPECT_EQ(schema.columnIndex("z").status().code(),
              StatusCode::kNotFound);
}

ColumnData
makeIntColumn(size_t n, int64_t cardinality, uint64_t seed)
{
    Rng rng(seed);
    ColumnData col(PhysicalType::kInt64);
    for (size_t i = 0; i < n; ++i)
        col.append(rng.uniformInt(0, cardinality - 1));
    return col;
}

ColumnData
makeStringColumn(size_t n, size_t len, uint64_t seed)
{
    Rng rng(seed);
    ColumnData col(PhysicalType::kString);
    for (size_t i = 0; i < n; ++i)
        col.append(randomString(rng, len));
    return col;
}

struct ChunkCase {
    const char *name;
    PhysicalType type;
    int64_t cardinality; // for int columns
    bool enableDict;
};

class ChunkRoundTrip : public ::testing::TestWithParam<ChunkCase>
{
};

TEST_P(ChunkRoundTrip, Exact)
{
    const auto &c = GetParam();
    ColumnData col = (c.type == PhysicalType::kString)
                         ? makeStringColumn(5000, 12, 17)
                         : makeIntColumn(5000, c.cardinality, 17);
    ChunkEncodeOptions options;
    options.enableDictionary = c.enableDict;
    EncodedChunk encoded = encodeChunk(col, options);
    EXPECT_EQ(encoded.valueCount, col.size());
    auto decoded = decodeChunk(Slice(encoded.bytes), col.type());
    ASSERT_TRUE(decoded.isOk()) << decoded.status().toString();
    EXPECT_TRUE(decoded.value() == col);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ChunkRoundTrip,
    ::testing::Values(
        ChunkCase{"lowCardinalityDict", PhysicalType::kInt64, 4, true},
        ChunkCase{"midCardinalityDict", PhysicalType::kInt64, 500, true},
        ChunkCase{"highCardinalityPlain", PhysicalType::kInt64, 1 << 30,
                  true},
        ChunkCase{"dictDisabled", PhysicalType::kInt64, 4, false},
        ChunkCase{"strings", PhysicalType::kString, 0, true}),
    [](const auto &info) { return info.param.name; });

TEST(ChunkCodecTest, LowCardinalityUsesDictionary)
{
    ColumnData col = makeIntColumn(10000, 3, 5);
    EncodedChunk encoded = encodeChunk(col, {});
    EXPECT_EQ(encoded.encoding, ChunkEncoding::kDictionary);
    // 10000 int64 values with 3 distinct values must compress massively.
    EXPECT_LT(encoded.bytes.size(), encoded.plainSize / 20);
}

TEST(ChunkCodecTest, HighCardinalityFallsBackToPlain)
{
    Rng rng(9);
    ColumnData col(PhysicalType::kInt64);
    for (int i = 0; i < 10000; ++i)
        col.append(static_cast<int64_t>(rng.next()));
    EncodedChunk encoded = encodeChunk(col, {});
    EXPECT_EQ(encoded.encoding, ChunkEncoding::kPlain);
}

TEST(ChunkCodecTest, MinMaxStats)
{
    ColumnData col(PhysicalType::kInt32);
    for (int32_t v : {5, -2, 17, 0, 9})
        col.append(v);
    EncodedChunk encoded = encodeChunk(col, {});
    EXPECT_TRUE(encoded.minValue == Value::ofInt32(-2));
    EXPECT_TRUE(encoded.maxValue == Value::ofInt32(17));
}

TEST(ChunkCodecTest, PlainEncodeDecodeAllTypes)
{
    for (PhysicalType t :
         {PhysicalType::kInt32, PhysicalType::kInt64, PhysicalType::kDouble,
          PhysicalType::kString}) {
        ColumnData col(t);
        for (int i = 0; i < 100; ++i) {
            switch (t) {
              case PhysicalType::kInt32: col.append(int32_t(i - 50)); break;
              case PhysicalType::kInt64:
                col.append(int64_t(i) << 32);
                break;
              case PhysicalType::kDouble: col.append(i * 0.25); break;
              case PhysicalType::kString:
                col.append("s" + std::to_string(i));
                break;
            }
        }
        Bytes plain = plainEncode(col);
        auto back = plainDecode(Slice(plain), t, col.size());
        ASSERT_TRUE(back.isOk());
        EXPECT_TRUE(back.value() == col);
    }
}

TEST(ChunkCodecTest, CorruptChunkIsDetected)
{
    ColumnData col = makeIntColumn(1000, 7, 3);
    EncodedChunk encoded = encodeChunk(col, {});
    Bytes corrupt = encoded.bytes;
    corrupt.resize(corrupt.size() / 2);
    EXPECT_FALSE(decodeChunk(Slice(corrupt), col.type()).isOk());
    Bytes bad_tag = encoded.bytes;
    bad_tag[0] = 0x7f;
    EXPECT_FALSE(decodeChunk(Slice(bad_tag), col.type()).isOk());
}

Table
makeTestTable(size_t rows)
{
    Schema schema({{"id", PhysicalType::kInt64, LogicalType::kNone},
                   {"flag", PhysicalType::kString, LogicalType::kNone},
                   {"price", PhysicalType::kDouble, LogicalType::kNone},
                   {"day", PhysicalType::kInt32, LogicalType::kDate}});
    Table t(schema);
    Rng rng(21);
    const char *flags[] = {"A", "N", "R"};
    for (size_t i = 0; i < rows; ++i) {
        t.column(0).append(static_cast<int64_t>(i));
        t.column(1).append(std::string(flags[rng.uniformInt(0, 2)]));
        t.column(2).append(rng.uniformReal(1.0, 1000.0));
        t.column(3).append(static_cast<int32_t>(rng.uniformInt(0, 3650)));
    }
    return t;
}

TEST(WriterReaderTest, RoundTripWholeTable)
{
    Table t = makeTestTable(10000);
    WriterOptions options;
    options.rowGroupRows = 3000; // 4 row groups, last one short
    auto written = writeTable(t, options);
    ASSERT_TRUE(written.isOk());

    auto reader = FileReader::open(Slice(written.value().bytes));
    ASSERT_TRUE(reader.isOk()) << reader.status().toString();
    EXPECT_EQ(reader.value().metadata().numRows, 10000u);
    EXPECT_EQ(reader.value().metadata().numRowGroups(), 4u);
    EXPECT_EQ(reader.value().metadata().numChunks(), 16u);

    auto back = reader.value().readTable();
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value().numRows(), t.numRows());
    for (size_t c = 0; c < t.numColumns(); ++c)
        EXPECT_TRUE(back.value().column(c) == t.column(c));
}

TEST(WriterReaderTest, FooterMatchesWriterMetadata)
{
    Table t = makeTestTable(5000);
    auto written = writeTable(t, {});
    ASSERT_TRUE(written.isOk());
    auto reader = FileReader::open(Slice(written.value().bytes));
    ASSERT_TRUE(reader.isOk());

    const FileMetadata &wrote = written.value().metadata;
    const FileMetadata &read = reader.value().metadata();
    ASSERT_EQ(read.numRowGroups(), wrote.numRowGroups());
    for (size_t g = 0; g < read.numRowGroups(); ++g) {
        for (size_t c = 0; c < read.schema.numColumns(); ++c) {
            const ChunkMeta &a = wrote.chunk(g, c);
            const ChunkMeta &b = read.chunk(g, c);
            EXPECT_EQ(a.offset, b.offset);
            EXPECT_EQ(a.storedSize, b.storedSize);
            EXPECT_EQ(a.plainSize, b.plainSize);
            EXPECT_EQ(a.valueCount, b.valueCount);
            EXPECT_TRUE(a.minValue == b.minValue);
            EXPECT_TRUE(a.maxValue == b.maxValue);
        }
    }
}

TEST(WriterReaderTest, ChunkExtentsAreDisjointAndOrdered)
{
    Table t = makeTestTable(8000);
    WriterOptions options;
    options.rowGroupRows = 2000;
    auto written = writeTable(t, options);
    ASSERT_TRUE(written.isOk());
    auto chunks = written.value().metadata.allChunks();
    uint64_t cursor = sizeof(kFileMagic);
    for (const auto *chunk : chunks) {
        EXPECT_EQ(chunk->offset, cursor);
        cursor += chunk->storedSize;
    }
    EXPECT_LT(cursor, written.value().bytes.size());
}

TEST(WriterReaderTest, SingleChunkDecode)
{
    Table t = makeTestTable(4000);
    WriterOptions options;
    options.rowGroupRows = 1000;
    auto written = writeTable(t, options);
    ASSERT_TRUE(written.isOk());
    auto reader = FileReader::open(Slice(written.value().bytes));
    ASSERT_TRUE(reader.isOk());

    auto chunk = reader.value().readChunk(2, 1); // row group 2, "flag"
    ASSERT_TRUE(chunk.isOk());
    EXPECT_EQ(chunk.value().size(), 1000u);
    for (size_t i = 0; i < 1000; ++i)
        EXPECT_EQ(chunk.value().strings()[i], t.column(1).strings()[2000 + i]);
}

TEST(WriterReaderTest, ZoneMapsBoundRowGroupValues)
{
    Table t = makeTestTable(6000);
    WriterOptions options;
    options.rowGroupRows = 1500;
    auto written = writeTable(t, options);
    ASSERT_TRUE(written.isOk());
    const auto &meta = written.value().metadata;
    for (size_t g = 0; g < meta.numRowGroups(); ++g) {
        const ChunkMeta &id_chunk = meta.chunk(g, 0);
        EXPECT_TRUE(id_chunk.minValue ==
                    Value::ofInt64(static_cast<int64_t>(g * 1500)));
        EXPECT_TRUE(id_chunk.maxValue ==
                    Value::ofInt64(static_cast<int64_t>(g * 1500 + 1499)));
    }
}

TEST(WriterReaderTest, EmptyTableRejected)
{
    Schema schema({{"a", PhysicalType::kInt64, LogicalType::kNone}});
    Table t(schema);
    EXPECT_EQ(writeTable(t, {}).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(WriterReaderTest, CorruptMagicRejected)
{
    Table t = makeTestTable(100);
    auto written = writeTable(t, {});
    ASSERT_TRUE(written.isOk());
    Bytes bad = written.value().bytes;
    bad[0] = 'X';
    EXPECT_EQ(FileReader::open(Slice(bad)).status().code(),
              StatusCode::kCorruption);
}

TEST(WriterReaderTest, TruncatedFileRejected)
{
    Table t = makeTestTable(100);
    auto written = writeTable(t, {});
    ASSERT_TRUE(written.isOk());
    Bytes bad = written.value().bytes;
    bad.resize(bad.size() - 3);
    EXPECT_EQ(FileReader::open(Slice(bad)).status().code(),
              StatusCode::kCorruption);
}

TEST(WriterReaderTest, CompressibilityReflectsData)
{
    // A 3-value string column compresses enormously; random doubles don't.
    Schema schema({{"flag", PhysicalType::kString, LogicalType::kNone},
                   {"noise", PhysicalType::kDouble, LogicalType::kNone}});
    Table t(schema);
    Rng rng(31);
    for (int i = 0; i < 20000; ++i) {
        t.column(0).append(std::string(i % 3 == 0 ? "AAA" : "BBB"));
        t.column(1).append(rng.uniform());
    }
    auto written = writeTable(t, {});
    ASSERT_TRUE(written.isOk());
    const auto &meta = written.value().metadata;
    double flag_ratio = meta.chunk(0, 0).compressibility();
    double noise_ratio = meta.chunk(0, 1).compressibility();
    EXPECT_GT(flag_ratio, 20.0);
    EXPECT_LT(noise_ratio, 1.5);
}

TEST(MetadataTest, SerializeDeserializeRoundTrip)
{
    FileMetadata meta;
    meta.schema = Schema({{"c0", PhysicalType::kInt64, LogicalType::kNone},
                          {"c1", PhysicalType::kString,
                           LogicalType::kNone}});
    meta.numRows = 123;
    RowGroupMeta rg;
    rg.numRows = 123;
    ChunkMeta chunk;
    chunk.rowGroupId = 0;
    chunk.columnId = 0;
    chunk.offset = 8;
    chunk.storedSize = 100;
    chunk.plainSize = 400;
    chunk.valueCount = 123;
    chunk.encoding = ChunkEncoding::kDictionary;
    chunk.minValue = Value::ofInt64(1);
    chunk.maxValue = Value::ofInt64(99);
    rg.chunks.push_back(chunk);
    chunk.columnId = 1;
    chunk.minValue = Value::ofString("a");
    chunk.maxValue = Value::ofString("z");
    rg.chunks.push_back(chunk);
    meta.rowGroups.push_back(rg);

    Bytes buf = meta.serialize();
    auto back = FileMetadata::deserialize(Slice(buf));
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    EXPECT_TRUE(back.value().schema == meta.schema);
    EXPECT_EQ(back.value().numRows, 123u);
    ASSERT_EQ(back.value().numChunks(), 2u);
    EXPECT_EQ(back.value().chunk(0, 0).plainSize, 400u);
    EXPECT_TRUE(back.value().chunk(0, 1).maxValue == Value::ofString("z"));
}

TEST(MetadataTest, CompressibilityFormula)
{
    ChunkMeta meta;
    meta.plainSize = 900;
    meta.storedSize = 100;
    EXPECT_DOUBLE_EQ(meta.compressibility(), 9.0);
    meta.storedSize = 0;
    EXPECT_DOUBLE_EQ(meta.compressibility(), 1.0);
}


TEST(WriterReaderTest, ReadColumnsProjectsSubset)
{
    Table t = makeTestTable(3000);
    WriterOptions options;
    options.rowGroupRows = 1000;
    auto written = writeTable(t, options);
    ASSERT_TRUE(written.isOk());
    auto reader = FileReader::open(Slice(written.value().bytes));
    ASSERT_TRUE(reader.isOk());

    auto projected = reader.value().readColumns({"price", "id"});
    ASSERT_TRUE(projected.isOk()) << projected.status().toString();
    ASSERT_EQ(projected.value().numColumns(), 2u);
    EXPECT_EQ(projected.value().schema().column(0).name, "price");
    EXPECT_EQ(projected.value().schema().column(1).name, "id");
    EXPECT_TRUE(projected.value().column(0) == t.column(2));
    EXPECT_TRUE(projected.value().column(1) == t.column(0));

    EXPECT_FALSE(reader.value().readColumns({"missing"}).isOk());
}

// Property: round trip holds across row-group sizes including 1 and
// sizes larger than the table.
class RowGroupSweep : public ::testing::TestWithParam<size_t>
{
};

TEST_P(RowGroupSweep, RoundTrip)
{
    Table t = makeTestTable(700);
    WriterOptions options;
    options.rowGroupRows = GetParam();
    auto written = writeTable(t, options);
    ASSERT_TRUE(written.isOk());
    auto reader = FileReader::open(Slice(written.value().bytes));
    ASSERT_TRUE(reader.isOk());
    auto back = reader.value().readTable();
    ASSERT_TRUE(back.isOk());
    for (size_t c = 0; c < t.numColumns(); ++c)
        EXPECT_TRUE(back.value().column(c) == t.column(c));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RowGroupSweep,
                         ::testing::Values(1, 7, 100, 699, 700, 10000));

} // namespace
} // namespace fusion::format
