/**
 * @file
 * Shared-scan query scheduler with a continuous admission window.
 *
 * Planned per-chunk work lives in a window of pending entries — one
 * per deduplicated transfer — from the simulated instant a query is
 * admitted until the instant the transfer is issued. A newly submitted
 * query joins an existing pending entry at ANY point in that window
 * (not just at a batch barrier):
 *
 *   - identical chunk/block fetches (equal SimTask::shareKey) are
 *     issued once; every consumer attached before issue waits on the
 *     one in-flight transfer and pays only coordinator-side work;
 *   - compatible projection pushdowns against the same chunk merge
 *     into one storage-node task with a shared reply;
 *   - the merged Cost Equation + per-node load-shed term (see
 *     query::SharedPushdownMerge) are re-evaluated INCREMENTALLY as
 *     consumers attach. A chunk whose merged verdict flips from
 *     pushdown to shared-fetch converts in place — every attached
 *     pushdown becomes a rider on one chunk fetch, and the fetched
 *     bytes are admitted into the coordinator hot-chunk cache — while
 *     later pushdowns are shed off nodes whose live outstanding work
 *     exceeds the admission limit.
 *
 * A query arriving after an entry's transfer was issued does NOT join
 * it; the key starts a fresh generation. Clients drive the window
 * through an async handle API modeled on PaCHash's object store
 * client: submit() returns a reusable QueryHandle carrying a caller
 * tag, awaitAny() harvests completions in deterministic simulated-time
 * order, awaitAll() drains the window. runBatch()/runBatchSql() remain
 * as thin closed-batch wrappers (submit everything, awaitAll).
 *
 * Everything runs on the simulation driver thread against the store's
 * sim::Engine, so outcomes, sched.* metrics, admission_window /
 * handle_await / shared_scan / sched_wait trace spans and amended
 * EXPLAIN reasons ("shared-fetch", "merged-pushdown", "load-shed",
 * "joined-inflight") are deterministic across runs and thread counts,
 * and per-query results stay bit-identical to isolated execution.
 */
#ifndef FUSION_SCHED_SCHEDULER_H
#define FUSION_SCHED_SCHEDULER_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "query/cost.h"
#include "query/parser.h"
#include "store/object_store.h"

namespace fusion::sched {

/** Scheduler tuning knobs. */
struct SchedOptions {
    /**
     * Per-node admission limit on outstanding pushdown CPU work, in
     * simulated seconds of the node's full-core capacity. Work is
     * charged when a pushdown is admitted to the window and released
     * when its storage-node execution completes; once a node's live
     * outstanding work exceeds this, further pushdowns targeting it
     * are converted to coordinator-side evaluation (EXPLAIN reason
     * "load-shed"). 0 disables the term.
     */
    double nodeLoadLimitSeconds = 0.25;
    /** Re-run the Cost Equation over merged consumer sets. */
    bool mergePushdowns = true;
    /** Share identical fetches across queries. */
    bool dedupFetches = true;
};

/** Per-storage-node slice of the window's dedup accounting. */
struct NodeDedupStats {
    size_t tasksPlanned = 0; // tasks planned against this node
    size_t tasksIssued = 0;  // unique executions after dedup

    /** Fraction of this node's planned tasks absorbed by sharing. */
    double
    dedupRate() const
    {
        if (tasksPlanned == 0)
            return 0.0;
        return 1.0 - static_cast<double>(tasksIssued) /
                         static_cast<double>(tasksPlanned);
    }
};

/** What the window did with the queries admitted since the last
 *  runBatch (also mirrored as sched.* counters in the store's metrics
 *  registry). Raw submit() calls accumulate; runBatch resets. */
struct BatchStats {
    size_t queries = 0;
    size_t tasksPlanned = 0;  // before dedup, filter + projection
    size_t tasksIssued = 0;   // unique executions after dedup
    size_t sharedFetches = 0; // fetch tasks absorbed by an equal fetch
    size_t mergedPushdowns = 0; // pushdowns absorbed by an equal one
    size_t joinedInflight = 0; // consumers that joined a chunk entry
                               // created at an earlier sim instant
    size_t fetchConversions = 0; // pushdowns -> shared fetch (cost eq)
    size_t loadSheds = 0;        // pushdowns -> fetch (node load term)
    uint64_t wireBytesSaved = 0; // request+reply bytes never re-sent
    double makespanSeconds = 0.0; // batch admit -> last client reply
    /** Dedup accounting split by storage node. */
    std::map<size_t, NodeDedupStats> perNode;

    /** Aggregate fraction of planned tasks absorbed by sharing. */
    double
    dedupRate() const
    {
        if (tasksPlanned == 0)
            return 0.0;
        return 1.0 - static_cast<double>(tasksIssued) /
                         static_cast<double>(tasksPlanned);
    }
};

class SharedScanScheduler;

/**
 * Async completion handle for one submitted query (PaCHash-style
 * reusable handle). Owned by the scheduler; submit() hands out either
 * a fresh handle or one previously harvested through awaitAny(), so a
 * handle's outcome stays readable until the handle is reused by a
 * later submit. `tag` is free for callers to correlate completions
 * (PaCHash's `name` field); the scheduler never interprets it.
 */
class QueryHandle
{
  public:
    enum class State {
        kIdle,    // never submitted, or recycled
        kPending, // submitted, completion not yet harvestable
        kDone,    // completed; status()/outcome() are valid
    };

    QueryHandle() = default;
    QueryHandle(const QueryHandle &) = delete;
    QueryHandle &operator=(const QueryHandle &) = delete;

    /** Caller-owned correlation tag, set at submit. */
    uint64_t tag = 0;

    State state() const { return state_; }
    bool pending() const { return state_ == State::kPending; }
    bool done() const { return state_ == State::kDone; }

    /** Planning/parsing status; OK for simulated completions. */
    const Status &status() const { return status_; }
    /** Valid once done() and status().isOk(). */
    const store::QueryOutcome &outcome() const { return outcome_; }

    /** Simulated admission instant of the last submit. */
    double submitSeconds() const { return submitSeconds_; }
    /** Simulated completion instant (client reply received). */
    double completionSeconds() const { return doneSeconds_; }
    /** Admission -> completion, the open-loop sojourn time. */
    double sojournSeconds() const { return doneSeconds_ - submitSeconds_; }

  private:
    friend class SharedScanScheduler;

    State state_ = State::kIdle;
    Status status_;
    store::QueryOutcome outcome_;
    double submitSeconds_ = 0.0;
    double doneSeconds_ = 0.0;
};

/**
 * Streams concurrent queries against one store through a continuous
 * admission window of deduplicated pushdown requests. The scheduler
 * owns no store state; it composes the store's public
 * planQueryForBatch / executeTask / accountTask hooks, so per-query
 * results are bit-identical to isolated execution.
 */
class SharedScanScheduler
{
  public:
    explicit SharedScanScheduler(store::ObjectStore &store,
                                 const SchedOptions &options = {});

    /**
     * Admits one query at the current simulated instant: plans it,
     * attaches its work to the admission window (joining any pending
     * entries, re-running the merged Cost Equation incrementally) and
     * returns a handle. The query's simulation starts lazily on the
     * next awaitAny()/awaitAll(); submit() itself never advances
     * simulated time, so it is safe to call from inside engine events
     * (open-loop arrival processes). Planning failures complete the
     * handle immediately with the error status.
     */
    QueryHandle *submit(const query::Query &q, uint64_t tag = 0);

    /** Parses one statement, then submit(). */
    QueryHandle *submitSql(const std::string &sql, uint64_t tag = 0);

    /**
     * Runs the simulation until at least one submitted query has
     * completed, then returns its handle (completions are harvested
     * FIFO in simulated completion order, which is deterministic).
     * Returns nullptr when nothing is pending. A returned handle is
     * recycled into the submit() pool; its outcome stays valid until
     * the handle is reused.
     */
    QueryHandle *awaitAny();

    /**
     * Runs the simulation until every submitted query has completed.
     * Completed handles stay harvestable through awaitAny().
     */
    void awaitAll();

    /** Queries submitted but not yet completed. */
    size_t inFlight() const { return active_.size(); }
    /** Completions not yet harvested by awaitAny(). */
    size_t completedPending() const { return completed_.size(); }

    /**
     * Closed-batch compatibility wrapper over submit() + awaitAll():
     * admits `batch` at the current simulated instant and drains the
     * window. Returns per-query outcomes in batch order; each
     * outcome's latency is measured from batch admission. If any query
     * fails to plan, the first error (in batch order) is returned
     * after the remaining queries drain.
     */
    Result<std::vector<store::QueryOutcome>>
    runBatch(const std::vector<query::Query> &batch);

    /** Parses each statement (failing fast), then runBatch. */
    Result<std::vector<store::QueryOutcome>>
    runBatchSql(const std::vector<std::string> &statements);

    /** Stats since the most recent runBatch (or construction). */
    const BatchStats &lastBatchStats() const { return stats_; }
    /** Alias for open-loop callers: same accumulator. */
    const BatchStats &windowStats() const { return stats_; }

    const SchedOptions &options() const { return options_; }

  private:
    using SimTask = store::ObjectStore::SimTask;
    using QueryPlan = store::ObjectStore::QueryPlan;

    /**
     * One deduplicated transfer in the admission window. Pending from
     * creation until its first consumer demands execution (issue);
     * consumers attached while pending share the one execution.
     */
    struct ExecEntry {
        std::string key;
        bool issued = false;
        bool done = false;
        size_t consumers = 0;
        double createdSeconds = 0.0;
        uint64_t windowSpan = 0; // admission_window trace span
        /** Pushdown load to refund to the node at completion. */
        size_t releaseNode = 0;
        double releaseSeconds = 0.0;
        /** Continuations of consumers waiting on the in-flight run. */
        std::vector<std::function<void()>> waiters;
    };

    /** One admitted query, from submit to client reply. */
    struct PendingQuery {
        QueryHandle *handle = nullptr;
        uint64_t seq = 0;
        double submitSeconds = 0.0;
        bool started = false;
        std::shared_ptr<QueryPlan> plan;
        /** Window attachment per task (null = unkeyed, runs alone). */
        std::vector<std::shared_ptr<ExecEntry>> filterEntries;
        std::vector<std::shared_ptr<ExecEntry>> projEntries;
        /** EXPLAIN amendments: chunkId -> (verdict, reason). */
        std::map<uint32_t, std::pair<const char *, const char *>>
            overrides;
        uint64_t spans[3] = {0, 0, 0}; // query / filter / projection
    };

    /** A consumer attached to a chunk's merge group. */
    struct GroupConsumer {
        std::shared_ptr<PendingQuery> pq;
        size_t ti; // index into pq->plan->projectionTasks
        bool pusher;
        double attachSeconds = 0.0;
    };

    /**
     * Merged Cost Equation state for one (object, chunk). Lives in the
     * window from the first consumer's admission until the chunk's
     * first transfer is issued; conversion to shared fetch happens in
     * place while pending.
     */
    struct ChunkGroup {
        std::string key; // "object|chunk"
        double createdSeconds = 0.0;
        bool converted = false;  // verdict flipped to shared fetch
        bool hasFetcher = false; // some consumer already fetches
        size_t nodeId = 0;
        uint32_t chunkId = 0;
        size_t pusherCount = 0; // admitted (unconverted) pushdowns
        query::SharedPushdownMerge merge;
        std::vector<GroupConsumer> consumers;
    };

    QueryHandle *acquireHandle(uint64_t tag);
    /** Completes a handle synchronously with a planning error. */
    QueryHandle *failHandle(QueryHandle *h, Status status);

    /** Group pass: admits one projection task to its chunk group. */
    void attachGroup(const std::shared_ptr<PendingQuery> &pq, size_t ti);
    /** Entry pass: create-or-join the window entry for a share key. */
    std::shared_ptr<ExecEntry> attachEntry(const std::string &key);
    /** Detaches a consumer; cancels the entry when none remain. */
    void releaseEntry(const std::shared_ptr<ExecEntry> &entry);
    /** Flips every admitted pushdown of `g` to ride one shared chunk
     *  fetch and admits the chunk into the hot-chunk cache. */
    void convertGroup(ChunkGroup &g, const char *reason, bool load_shed);
    /** Rewrites one consumer's pushdown task to the shared-fetch form
     *  and rebinds its window entry. */
    void convertConsumer(PendingQuery &pq, size_t ti, const char *reason,
                         bool load_shed);
    void markOverride(PendingQuery &pq, uint32_t chunk_id,
                      const char *verdict, const char *reason);
    /** Ends an entry's window (and its chunk group's) at issue. */
    void sealAtIssue(ExecEntry &entry);
    /** Refunds a completed entry's admitted pushdown load. */
    void releaseEntryLoad(ExecEntry &entry);

    /** Starts the DES flow of every admitted-but-unstarted query. */
    void startPending();
    void startQuery(const std::shared_ptr<PendingQuery> &pq);
    /** Demands one task's execution: issue, or absorb into the shared
     *  in-flight run the consumer attached to. */
    void demand(const std::shared_ptr<PendingQuery> &pq, bool projection,
                size_t ti, const std::shared_ptr<sim::Join> &join);
    void complete(const std::shared_ptr<PendingQuery> &pq);

    store::ObjectStore &store_;
    SchedOptions options_;
    BatchStats stats_;
    double nodeCapacity_ = 0.0; // cpuRate x cores, work units/second

    /** All handles ever created (stable addresses). */
    std::deque<std::unique_ptr<QueryHandle>> handles_;
    /** Harvested handles eligible for reuse, FIFO. */
    std::deque<QueryHandle *> freeHandles_;
    /** Admitted queries by submission sequence (deterministic). */
    std::map<uint64_t, std::shared_ptr<PendingQuery>> active_;
    /** Admitted queries whose DES flow has not been started. */
    std::deque<std::shared_ptr<PendingQuery>> startQueue_;
    /** Completed handles awaiting harvest, in completion order. */
    std::deque<QueryHandle *> completed_;

    /** Pending entries by share key (erased at issue: later arrivals
     *  start a fresh generation instead of joining). */
    std::map<std::string, std::shared_ptr<ExecEntry>> execWindow_;
    /** Pending chunk groups by "object|chunk" (erased when the first
     *  member transfer is issued). */
    std::map<std::string, std::shared_ptr<ChunkGroup>> groupWindow_;
    /** Live admitted pushdown work per node, seconds of capacity. */
    std::map<size_t, double> nodeOutstanding_;
    /** Charged-but-unissued pushdown load by share key; moved onto the
     *  entry at issue, refunded directly on conversion. */
    std::map<std::string, std::pair<size_t, double>> chargedLoad_;

    uint64_t nextSeq_ = 0;
    double lastDoneSeconds_ = 0.0;

    /** sched.* instruments, resolved once (same registry as the
     *  store's fault/cache/wire instruments). */
    struct Instruments {
        obs::Counter *batches = nullptr;
        obs::Counter *queries = nullptr;
        obs::Counter *tasksPlanned = nullptr;
        obs::Counter *tasksIssued = nullptr;
        obs::Counter *sharedFetches = nullptr;
        obs::Counter *mergedPushdowns = nullptr;
        obs::Counter *joinedInflight = nullptr;
        obs::Counter *fetchConversions = nullptr;
        obs::Counter *loadSheds = nullptr;
        obs::Counter *wireBytesSaved = nullptr;
        obs::Histogram *queueWait = nullptr;
    };
    Instruments ins_;
};

} // namespace fusion::sched

#endif // FUSION_SCHED_SCHEDULER_H
