/**
 * @file
 * Query EXPLAIN report for the adaptive-pushdown executor. Every
 * per-chunk projection decision the Cost Equation makes (paper §4.3:
 * push when selectivity x compressibility < 1) is recorded with its
 * inputs and verdict, including the decisions the equation never got
 * to make — health fallbacks on faulted nodes, split chunks that must
 * reassemble, and aggregate pushdowns. Rendered as a deterministic
 * text table or canonical JSON so reports are byte-comparable across
 * runs and thread counts.
 */
#ifndef FUSION_OBS_EXPLAIN_H
#define FUSION_OBS_EXPLAIN_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fusion::obs {

/** One projection chunk's pushdown decision. */
struct ExplainChunk {
    uint32_t chunkId = 0;
    uint32_t rowGroup = 0;
    std::string column;
    double selectivity = 0.0;
    double compressibility = 1.0;
    /** "push", "fetch" or "local" — where the projection actually
     *  ran ("local" = evaluated from the coordinator hot-chunk
     *  cache; its Cost-Equation terms are recorded but overridden). */
    std::string verdict;
    /** Why: "cost product < 1", "cost product >= 1", "node
     *  unresponsive (health fallback)", "chunk split across nodes",
     *  "aggregate-only projection", "adaptive pushdown disabled",
     *  "cached-local". The shared-scan scheduler amends this with
     *  "merged-pushdown" / "shared-fetch" / "load-shed" (see
     *  sched/scheduler.h) and, when the consumer attached to a chunk
     *  entry created at an earlier simulated instant, with
     *  "joined-inflight". */
    std::string reason;

    /** The Cost Equation's left-hand side. */
    double product() const { return selectivity * compressibility; }
};

/** Full report for one query against one object. */
struct QueryExplain {
    std::string table;
    std::string query; // canonical query text
    double selectivity = 0.0;
    size_t rowGroupsScanned = 0;
    size_t rowGroupsSkipped = 0;
    size_t filterPushdowns = 0;
    size_t filterFetches = 0;
    /** Filter chunks served from the coordinator hot-chunk cache. */
    size_t filterCached = 0;
    std::vector<ExplainChunk> projections;

    size_t pushCount() const;
    size_t fetchCount() const;
    /** Projection chunks with verdict "local" (cached-local). */
    size_t localCount() const;

    /** Aligned text table (the `EXPLAIN` output). */
    std::string render() const;
    /** Canonical JSON with fixed formatting. */
    std::string toJson() const;
};

} // namespace fusion::obs

#endif // FUSION_OBS_EXPLAIN_H
