#include "serde.h"

#include <cstring>

namespace fusion {

namespace {

Status
truncated(const char *what)
{
    return Status::corruption(std::string("truncated input reading ") + what);
}

} // namespace

void
BinaryWriter::putU16(uint16_t v)
{
    out_.push_back(static_cast<uint8_t>(v));
    out_.push_back(static_cast<uint8_t>(v >> 8));
}

void
BinaryWriter::putU32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
BinaryWriter::putU64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
BinaryWriter::putDouble(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
BinaryWriter::putVarU64(uint64_t v)
{
    while (v >= 0x80) {
        out_.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out_.push_back(static_cast<uint8_t>(v));
}

void
BinaryWriter::putVarI64(int64_t v)
{
    // Zig-zag: interleave negatives so small magnitudes stay short.
    uint64_t zz = (static_cast<uint64_t>(v) << 1) ^
                  static_cast<uint64_t>(v >> 63);
    putVarU64(zz);
}

void
BinaryWriter::putLengthPrefixed(Slice bytes)
{
    putVarU64(bytes.size());
    putRaw(bytes);
}

Result<uint8_t>
BinaryReader::getU8()
{
    if (remaining() < 1)
        return truncated("u8");
    return input_[pos_++];
}

Result<uint16_t>
BinaryReader::getU16()
{
    if (remaining() < 2)
        return truncated("u16");
    uint16_t v = static_cast<uint16_t>(input_[pos_]) |
                 static_cast<uint16_t>(input_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
}

Result<uint32_t>
BinaryReader::getU32()
{
    if (remaining() < 4)
        return truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(input_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
}

Result<uint64_t>
BinaryReader::getU64()
{
    if (remaining() < 8)
        return truncated("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(input_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

Result<int32_t>
BinaryReader::getI32()
{
    auto r = getU32();
    if (!r.isOk())
        return r.status();
    return static_cast<int32_t>(r.value());
}

Result<int64_t>
BinaryReader::getI64()
{
    auto r = getU64();
    if (!r.isOk())
        return r.status();
    return static_cast<int64_t>(r.value());
}

Result<double>
BinaryReader::getDouble()
{
    auto r = getU64();
    if (!r.isOk())
        return r.status();
    double v;
    uint64_t bits = r.value();
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

Result<bool>
BinaryReader::getBool()
{
    auto r = getU8();
    if (!r.isOk())
        return r.status();
    return r.value() != 0;
}

Result<uint64_t>
BinaryReader::getVarU64()
{
    uint64_t v = 0;
    int shift = 0;
    while (true) {
        if (remaining() < 1)
            return truncated("varint");
        uint8_t byte = input_[pos_++];
        if (shift >= 64 || (shift == 63 && (byte & 0x7e)))
            return Status::corruption("varint overflows u64");
        v |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return v;
        shift += 7;
    }
}

Result<int64_t>
BinaryReader::getVarI64()
{
    auto r = getVarU64();
    if (!r.isOk())
        return r.status();
    uint64_t zz = r.value();
    return static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
}

Result<Slice>
BinaryReader::getLengthPrefixed()
{
    auto len = getVarU64();
    if (!len.isOk())
        return len.status();
    return getRaw(len.value());
}

Result<std::string>
BinaryReader::getString()
{
    auto s = getLengthPrefixed();
    if (!s.isOk())
        return s.status();
    return s.value().toString();
}

Result<Slice>
BinaryReader::getRaw(size_t n)
{
    if (remaining() < n)
        return truncated("raw bytes");
    Slice out = input_.subslice(pos_, n);
    pos_ += n;
    return out;
}

Status
BinaryReader::seek(size_t pos)
{
    if (pos > input_.size())
        return Status::outOfRange("seek past end of input");
    pos_ = pos;
    return Status::ok();
}

} // namespace fusion
