/**
 * @file
 * Deterministic background compaction driven from simulated time. The
 * Compactor owns only policy and scheduling; the heavy mechanism (read
 * base + sealed deltas, re-encode, atomic manifest swap) lives behind
 * the CompactionHost interface the store implements — lifecycle/ never
 * depends on store/.
 *
 * Event discipline: the Compactor schedules bounded, strictly-future
 * events only in response to appends (or its own finite re-arms), so a
 * quiescent store never keeps the DES alive — engine.run() still
 * returns once the last sealed segment is folded. An aborted compaction
 * (e.g. too many nodes down to read the base) deliberately does NOT
 * re-arm itself; the next append re-triggers it, which keeps a
 * permanently degraded cluster from looping the engine forever.
 */
#ifndef FUSION_LIFECYCLE_COMPACTOR_H
#define FUSION_LIFECYCLE_COMPACTOR_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/status.h"
#include "delta_log.h"

namespace fusion::lifecycle {

/** When the background Compactor seals and folds a delta log. */
struct CompactionPolicy {
    bool enabled = true;
    /** Seal when the log's serialized bytes reach this. */
    uint64_t maxDeltaBytes = 1ULL << 20;
    /** ...or when this many segments accumulate. */
    size_t maxDeltaSegments = 8;
    /** ...or when the oldest segment is this old (0 = no age trigger). */
    double maxAgeSeconds = 0.0;
    /** Floor for every scheduled delay, so events are strictly future. */
    double minDelaySeconds = 1e-4;
};

/** The store-side mechanism the Compactor drives. */
class CompactionHost
{
  public:
    virtual ~CompactionHost() = default;

    virtual double lifecycleNowSeconds() const = 0;
    virtual void lifecycleScheduleAfter(double delay_seconds,
                                        std::function<void()> fn) = 0;
    /** Current log snapshot incl. estimatedCompactSeconds. */
    virtual DeltaLogStats deltaLogStats(const std::string &object) const = 0;
    /**
     * Folds segments [0, seal_seq] of `object` into a fresh base
     * generation and swaps the manifest atomically. Must leave the old
     * generation fully intact on any failure. A missing object (deleted
     * while the compaction was in flight) is a successful no-op.
     */
    virtual Status compactObjectNow(const std::string &object,
                                    uint64_t seal_seq) = 0;
};

class Compactor
{
  public:
    Compactor(CompactionHost &host, CompactionPolicy policy)
        : host_(host), policy_(policy)
    {
    }

    const CompactionPolicy &policy() const { return policy_; }

    /**
     * Notifies the Compactor that `object`'s log grew. When a size
     * threshold is already crossed the log is sealed at its current
     * lastSeq and the fold is scheduled estimatedCompactSeconds in the
     * future (the modeled re-encode duration — queries in that window
     * still see the old generation plus every segment). Otherwise an
     * age check is armed at the oldest segment's deadline.
     */
    void noteAppend(const std::string &object);

    /** Forgets pending state for a deleted object. */
    void noteDeleted(const std::string &object);

    /** True while a check or fold event is in flight for `object`. */
    bool pending(const std::string &object) const;

    uint64_t runs() const { return runs_; }
    uint64_t aborts() const { return aborts_; }

  private:
    bool sizeTriggered(const DeltaLogStats &stats) const;
    void scheduleFold(const std::string &object, const DeltaLogStats &stats);
    void ageCheck(const std::string &object);
    void runFold(const std::string &object, uint64_t seal_seq);

    CompactionHost &host_;
    CompactionPolicy policy_;
    /** Sorted map: deterministic and fusion-lint friendly. */
    std::map<std::string, bool> pending_;
    uint64_t runs_ = 0;
    uint64_t aborts_ = 0;
};

} // namespace fusion::lifecycle

#endif // FUSION_LIFECYCLE_COMPACTOR_H
