/**
 * @file
 * Reproduces paper Figs 16b and 16c: storage overhead w.r.t. optimal
 * and runtime overhead (relative to the Put latency) of the three
 * stripe-construction approaches — oracle (exact), padding (Adams et
 * al.) and FAC — on the four paper-scale dataset chunk models.
 * Paper: FAC <= 1.24% storage overhead and <= 0.0027% runtime overhead;
 * oracle runtime is prohibitive; padding costs up to 83.8% storage.
 */
#include "benchutil/harness.h"
#include "common/walltime.h"
#include "fac/constructors.h"
#include "workload/chunk_models.h"

using namespace fusion;

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    benchutil::banner("Fig 16b/16c",
                      "storage + runtime overhead: oracle vs padding vs FAC");

    struct Row {
        const char *name;
        std::vector<fac::ChunkExtent> model;
    };
    Row rows[] = {
        {"tpc-h lineitem", workload::lineitemChunkModel(9)},
        {"taxi", workload::taxiChunkModel(9)},
        {"recipeNLG", workload::recipeChunkModel(9)},
        {"uk pp", workload::ukppChunkModel(9)},
    };

    // Put-latency model for the runtime-overhead denominator: uploading
    // the object at the paper's 25 Gbps shaped NIC.
    const double nic_bw = 25e9 / 8;
    const double oracle_budget = 2.0; // bounded stand-in for Gurobi

    benchutil::TablePrinter storage(
        {"dataset", "oracle (%)", "padding (%)", "fac (%)"});
    benchutil::TablePrinter runtime(
        {"dataset", "put latency", "oracle (%)", "padding (%)", "fac (%)"});

    for (const auto &row : rows) {
        double put_seconds =
            static_cast<double>(workload::modelTotalBytes(row.model)) /
            nic_bw;

        fac::OracleResult oracle =
            fac::buildOracleLayout(row.model, 9, 6, oracle_budget);
        double oracle_seconds = oracle.solveSeconds;

        double t0 = walltime::monotonicSeconds();
        fac::ObjectLayout padding =
            fac::buildPaddingLayout(row.model, 9, 6, 100'000'000);
        double padding_seconds = walltime::monotonicSeconds() - t0;

        t0 = walltime::monotonicSeconds();
        fac::ObjectLayout fac_layout = fac::buildFacLayout(row.model, 9, 6);
        double fac_seconds = walltime::monotonicSeconds() - t0;

        storage.addRow(
            {row.name,
             benchutil::fmt("%.2f%s",
                            oracle.layout.overheadVsOptimal() * 100.0,
                            oracle.optimal ? "" : " (timeout)"),
             benchutil::fmt("%.1f", padding.overheadVsOptimal() * 100.0),
             benchutil::fmt("%.2f", fac_layout.overheadVsOptimal() * 100.0)});
        runtime.addRow(
            {row.name, formatSeconds(put_seconds),
             benchutil::fmt("%.2f%s", oracle_seconds / put_seconds * 100.0,
                            oracle.optimal ? "" : "+ (timeout)"),
             benchutil::fmt("%.4f", padding_seconds / put_seconds * 100.0),
             benchutil::fmt("%.4f", fac_seconds / put_seconds * 100.0)});
    }
    std::printf("Fig 16b: additional storage overhead w.r.t optimal\n");
    storage.print();
    std::printf("\nFig 16c: runtime overhead relative to Put latency\n");
    runtime.print();
    std::printf("\npaper: FAC <= 1.24%% storage, <= 0.0027%% runtime; "
                "padding up to 83.8%%; oracle runtime prohibitive\n");
    return 0;
}
