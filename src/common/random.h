/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis:
 * xoshiro256** core, uniform/int/real helpers, and a bounded Zipf
 * sampler used for chunk-size distributions (paper Fig 16a).
 */
#ifndef FUSION_COMMON_RANDOM_H
#define FUSION_COMMON_RANDOM_H

#include <cstdint>
#include <string>
#include <vector>

#include "status.h"

namespace fusion {

/**
 * Small, fast, seedable PRNG (xoshiro256**). Deterministic across
 * platforms so every experiment is reproducible from its seed.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initializes the state from a seed via SplitMix64. */
    void reseed(uint64_t seed);

    /** Next raw 64-bit output. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Uniform double in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return uniform() < p; }

    /** Picks a uniformly random element index for a container of size n. */
    size_t pickIndex(size_t n);

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i)
            std::swap(v[i - 1], v[pickIndex(i)]);
    }

  private:
    uint64_t s_[4];
};

/**
 * Zipf distribution over ranks {1..n} with exponent theta >= 0.
 * theta = 0 degenerates to the uniform distribution. Sampling is O(log n)
 * by binary search over a precomputed CDF (n is bounded in our use).
 */
class ZipfSampler
{
  public:
    ZipfSampler(size_t n, double theta);

    /** Draws a rank in [1, n]; rank 1 is the most probable. */
    size_t sample(Rng &rng) const;

    size_t n() const { return cdf_.size(); }
    double theta() const { return theta_; }

  private:
    std::vector<double> cdf_;
    double theta_;
};

/** Random lowercase ASCII string of the given length. */
std::string randomString(Rng &rng, size_t length);

} // namespace fusion

#endif // FUSION_COMMON_RANDOM_H
