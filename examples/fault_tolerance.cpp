/**
 * @file
 * Fault tolerance walkthrough: Fusion provides the same guarantees as
 * conventional RS(9,6) coding (paper §5). We kill up to n-k = 3 nodes,
 * run degraded reads and queries, wipe a node's media, and repair it
 * from the surviving stripes.
 *
 *   ./build/examples/fault_tolerance
 */
#include <cstdio>

#include "common/units.h"
#include "store/fusion_store.h"
#include "workload/lineitem.h"

using namespace fusion;

int
main()
{
    auto file = workload::buildLineitemFile(20000, 11);
    if (!file.isOk())
        return 1;
    const Bytes &object = file.value().bytes;

    sim::ClusterConfig cluster_config;
    cluster_config.numNodes = 9;
    sim::Cluster cluster(cluster_config);
    store::FusionStore store(cluster, store::StoreOptions{});
    if (!store.put("lineitem", object).isOk())
        return 1;
    std::printf("stored %s across %zu nodes with RS(9,6)\n",
                formatBytes(object.size()).c_str(), cluster.numNodes());

    auto verify = [&](const char *when) {
        auto back = store.get("lineitem");
        bool bytes_ok = back.isOk() && back.value() == object;
        auto q = store.querySql(
            "SELECT AVG(l_extendedprice) FROM lineitem WHERE "
            "l_quantity < 10");
        std::printf("%-28s get: %-14s query: %s\n", when,
                    bytes_ok ? "byte-identical" : "FAILED",
                    q.isOk() ? "ok" : q.status().toString().c_str());
        return bytes_ok && q.isOk();
    };

    verify("healthy cluster");

    std::printf("\nkilling nodes 1, 4, 7 (= n-k failures)...\n");
    for (size_t node : {1, 4, 7})
        cluster.killNode(node);
    verify("3 nodes down (degraded)");

    std::printf("\nkilling node 8 too (beyond tolerance)...\n");
    cluster.killNode(8);
    auto gone = store.get("lineitem");
    std::printf("%-28s get: %s (expected — 4 > n-k failures)\n",
                "4 nodes down", gone.isOk() ? "unexpected OK!"
                                            : gone.status().toString().c_str());

    std::printf("\nreviving nodes; node 4 lost its media entirely...\n");
    for (size_t node : {1, 7, 8})
        cluster.reviveNode(node);
    cluster.node(4).wipe();
    cluster.reviveNode(4);

    auto rebuilt = store.repairNode(4);
    if (!rebuilt.isOk()) {
        std::fprintf(stderr, "repair failed: %s\n",
                     rebuilt.status().toString().c_str());
        return 1;
    }
    std::printf("repaired node 4: rebuilt %zu blocks (%s)\n",
                rebuilt.value(),
                formatBytes(cluster.node(4).storedBytes()).c_str());
    bool ok = verify("after repair");
    return ok ? 0 : 1;
}
