#include <algorithm>

#include "constructors.h"

namespace fusion::fac {

namespace {

// Groups a flat list of data blocks into stripes of k, preserving order.
ObjectLayout
assembleStripes(std::vector<DataBlockLayout> blocks, size_t n, size_t k,
                LayoutKind kind)
{
    ObjectLayout layout;
    layout.kind = kind;
    layout.n = n;
    layout.k = k;
    for (size_t i = 0; i < blocks.size(); i += k) {
        StripeLayout stripe;
        size_t end = std::min(blocks.size(), i + k);
        for (size_t j = i; j < end; ++j)
            stripe.dataBlocks.push_back(std::move(blocks[j]));
        layout.stripes.push_back(std::move(stripe));
    }
    return layout;
}

} // namespace

ObjectLayout
buildFixedLayout(const std::vector<ChunkExtent> &chunks, size_t n, size_t k,
                 uint64_t block_size)
{
    FUSION_CHECK(block_size > 0);

    std::vector<DataBlockLayout> blocks;
    DataBlockLayout current;
    uint64_t room = block_size;
    uint64_t data_bytes = 0;

    for (const auto &chunk : chunks) {
        data_bytes += chunk.size;
        uint64_t placed = 0;
        while (placed < chunk.size) {
            if (room == 0) {
                blocks.push_back(std::move(current));
                current = DataBlockLayout{};
                room = block_size;
            }
            uint64_t take = std::min(room, chunk.size - placed);
            current.pieces.push_back({chunk.id, placed, take});
            placed += take;
            room -= take;
        }
    }
    if (!current.pieces.empty())
        blocks.push_back(std::move(current));

    ObjectLayout layout =
        assembleStripes(std::move(blocks), n, k, LayoutKind::kFixed);
    layout.dataBytes = data_bytes;
    return layout;
}

ObjectLayout
buildPaddingLayout(const std::vector<ChunkExtent> &chunks, size_t n,
                   size_t k, uint64_t block_size)
{
    FUSION_CHECK(block_size > 0);

    std::vector<DataBlockLayout> blocks;
    DataBlockLayout current;
    uint64_t room = block_size;
    uint64_t data_bytes = 0;
    uint64_t padding_bytes = 0;

    auto close_block = [&]() {
        blocks.push_back(std::move(current));
        current = DataBlockLayout{};
        room = block_size;
    };

    for (const auto &chunk : chunks) {
        data_bytes += chunk.size;
        if (chunk.size <= block_size) {
            if (chunk.size > room) {
                // Pad out the remainder and restart at a block boundary.
                if (room > 0) {
                    current.pieces.push_back({kPaddingChunkId, 0, room});
                    padding_bytes += room;
                    room = 0;
                }
                close_block();
            }
            current.pieces.push_back({chunk.id, 0, chunk.size});
            room -= chunk.size;
            if (room == 0)
                close_block();
        } else {
            // Oversized chunk: alignment impossible; split like fixed.
            if (room < block_size) {
                if (room > 0) {
                    current.pieces.push_back({kPaddingChunkId, 0, room});
                    padding_bytes += room;
                }
                close_block();
            }
            uint64_t placed = 0;
            while (placed < chunk.size) {
                uint64_t take = std::min(block_size, chunk.size - placed);
                current.pieces.push_back({chunk.id, placed, take});
                placed += take;
                room -= take;
                if (room == 0)
                    close_block();
            }
        }
    }
    if (!current.pieces.empty())
        blocks.push_back(std::move(current));

    ObjectLayout layout =
        assembleStripes(std::move(blocks), n, k, LayoutKind::kPadding);
    layout.dataBytes = data_bytes;
    layout.paddingBytes = padding_bytes;
    return layout;
}

} // namespace fusion::fac
