/**
 * @file
 * fusion-lint self-tests. The bad_* fixtures under tools/testdata tag
 * every offending line with `// BAD: <rule>`; the tests assert the
 * linter reports exactly those (line, rule) pairs — no misses, no
 * false positives. A final suite scans the real src/, bench/ and
 * tests/ trees and requires them clean, which is the repo's
 * determinism contract in executable form.
 */
#include "lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace fusion::lint {
namespace {

namespace fs = std::filesystem;

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture: " << p;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::string
fixturePath(const std::string &name)
{
    return (fs::path(FUSION_LINT_TESTDATA) / name).generic_string();
}

/** (line, rule) pairs from `// BAD: <rule>` markers in a fixture. */
std::set<std::pair<size_t, std::string>>
expectedFromMarkers(const std::string &content)
{
    std::set<std::pair<size_t, std::string>> expected;
    std::istringstream in(content);
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        size_t at = line.find("// BAD: ");
        if (at == std::string::npos)
            continue;
        std::string rule = line.substr(at + 8);
        size_t end = rule.find_first_of(" \t");
        if (end != std::string::npos)
            rule.resize(end);
        expected.emplace(lineno, rule);
    }
    return expected;
}

std::set<std::pair<size_t, std::string>>
actualFromFindings(const std::vector<Finding> &findings)
{
    std::set<std::pair<size_t, std::string>> actual;
    for (const Finding &f : findings)
        actual.emplace(f.line, f.rule);
    return actual;
}

/** Lints a fixture and asserts findings == its BAD markers. */
void
checkFixture(const std::string &name)
{
    const std::string path = fixturePath(name);
    const std::string content = readFile(path);
    FileReport report = lintSource(path, content, Options::defaults());
    EXPECT_EQ(actualFromFindings(report.findings),
              expectedFromMarkers(content))
        << "fixture " << name;
    EXPECT_EQ(report.suppressed, 0u) << "fixture " << name;
}

TEST(LintFixtures, Wallclock) { checkFixture("bad_wallclock.cc"); }
TEST(LintFixtures, UnseededRandom) { checkFixture("bad_random.cc"); }
TEST(LintFixtures, UnorderedIter) { checkFixture("bad_unordered_iter.cc"); }
TEST(LintFixtures, PointerFormat) { checkFixture("bad_pointer_format.cc"); }
TEST(LintFixtures, RawMutex) { checkFixture("bad_raw_mutex.cc"); }
TEST(LintFixtures, RawAtomic) { checkFixture("bad_raw_atomic.cc"); }

TEST(LintFixtures, CleanFileHasNoFindings)
{
    const std::string path = fixturePath("good_clean.cc");
    FileReport report =
        lintSource(path, readFile(path), Options::defaults());
    EXPECT_TRUE(report.findings.empty())
        << report.findings.size() << " unexpected finding(s), first: "
        << (report.findings.empty() ? "" : report.findings[0].message);
    EXPECT_EQ(report.suppressed, 0u);
}

TEST(LintFixtures, AllowCommentsSuppress)
{
    const std::string path = fixturePath("good_suppressed.cc");
    FileReport report =
        lintSource(path, readFile(path), Options::defaults());
    EXPECT_TRUE(report.findings.empty())
        << "first leak: "
        << (report.findings.empty() ? "" : report.findings[0].message);
    // wallclock + unseeded-random + unordered-iter, one each.
    EXPECT_EQ(report.suppressed, 3u);
}

TEST(LintRules, RuleNamesSortedAndComplete)
{
    const auto &names = ruleNames();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    EXPECT_EQ(names, (std::vector<std::string>{
                         "pointer-format", "raw-atomic", "raw-mutex",
                         "unordered-iter", "unseeded-random",
                         "wallclock"}));
}

TEST(LintRules, AllowfileSuppressesFileWide)
{
    const std::string src = "// fusion-lint: allowfile(wallclock)\n"
                            "auto a = std::chrono::steady_clock::now();\n"
                            "auto b = std::chrono::system_clock::now();\n"
                            "std::mutex m;\n";
    FileReport report = lintSource("x.cc", src, Options::defaults());
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].rule, "raw-mutex");
    EXPECT_EQ(report.findings[0].line, 4u);
    EXPECT_EQ(report.suppressed, 2u);
}

TEST(LintRules, AllowAllWildcard)
{
    const std::string src = "std::mutex m; // fusion-lint: allow(all)\n";
    FileReport report = lintSource("x.cc", src, Options::defaults());
    EXPECT_TRUE(report.findings.empty());
    EXPECT_EQ(report.suppressed, 1u);
}

TEST(LintRules, PathAllowlistExemptsShim)
{
    const std::string src = "auto t = std::chrono::steady_clock::now();\n";
    FileReport shim = lintSource("src/common/walltime.cc", src,
                                 Options::defaults());
    EXPECT_TRUE(shim.findings.empty());
    FileReport other =
        lintSource("src/store/object_store.cc", src, Options::defaults());
    ASSERT_EQ(other.findings.size(), 1u);
    EXPECT_EQ(other.findings[0].rule, "wallclock");
}

TEST(LintRules, MutexWrapperHeaderIsExempt)
{
    const std::string src = "std::mutex m_;\nstd::condition_variable cv_;\n";
    FileReport report =
        lintSource("src/common/mutex.h", src, Options::defaults());
    EXPECT_TRUE(report.findings.empty());
}

TEST(LintRules, MetricsRegistryAtomicsAreExempt)
{
    const std::string src = "std::atomic<uint64_t> v{0};\n";
    FileReport registry =
        lintSource("src/obs/metrics.h", src, Options::defaults());
    EXPECT_TRUE(registry.findings.empty());
    FileReport pool =
        lintSource("src/common/thread_pool.h", src, Options::defaults());
    EXPECT_TRUE(pool.findings.empty());
    FileReport other =
        lintSource("src/store/object_store.cc", src, Options::defaults());
    ASSERT_EQ(other.findings.size(), 1u);
    EXPECT_EQ(other.findings[0].rule, "raw-atomic");
}

TEST(LintRules, CrossFileUnorderedMember)
{
    // Member declared in a header, iterated in a .cc: only the extra
    // names passed by the two-pass CLI make the iteration visible.
    const std::string header =
        "struct S { std::unordered_map<int, int> table_; };\n";
    const std::string source = "void f(const S &s) {\n"
                               "    for (auto &kv : s.table_) use(kv);\n"
                               "}\n";
    auto names = collectUnorderedNames(header);
    ASSERT_EQ(names, std::vector<std::string>{"table_"});

    FileReport without = lintSource("s.cc", source, Options::defaults());
    EXPECT_TRUE(without.findings.empty());

    FileReport with =
        lintSource("s.cc", source, Options::defaults(), names);
    ASSERT_EQ(with.findings.size(), 1u);
    EXPECT_EQ(with.findings[0].rule, "unordered-iter");
    EXPECT_EQ(with.findings[0].line, 2u);
}

TEST(LintRules, CollectUnorderedNamesHandlesDeclForms)
{
    const std::string src =
        "std::unordered_map<std::string, std::vector<int>> deep;\n"
        "const std::unordered_set<int> &ref = other;\n"
        "std::unordered_map<int, int> *ptr = nullptr;\n"
        "std::unordered_map<int, int> makeMap();\n" // function: skipped
        "using Alias = std::unordered_map<int, int>;\n"; // no var name
    auto names = collectUnorderedNames(src);
    EXPECT_EQ(names,
              (std::vector<std::string>{"deep", "ptr", "ref"}));
}

TEST(LintRules, CommentsAndStringsNeverMatch)
{
    const std::string src =
        "// std::mutex rand() time(0) steady_clock %p\n"
        "/* std::random_device */\n"
        "const char *s = \"std::mutex time() rand()\";\n"
        "const char *r = R\"(std::mutex %x)\";\n";
    FileReport report = lintSource("x.cc", src, Options::defaults());
    EXPECT_TRUE(report.findings.empty());
    EXPECT_EQ(report.suppressed, 0u);
}

TEST(LintReport, JsonShapeAndEscaping)
{
    std::vector<Finding> findings = {
        {"b.cc", 2, "wallclock", "say \"hi\""},
        {"a.cc", 7, "raw-mutex", "msg"},
    };
    std::string json = reportJson(findings, 42, 3);
    // Sorted by file: a.cc first despite input order.
    size_t a = json.find("a.cc"), b = json.find("b.cc");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(b, std::string::npos);
    EXPECT_LT(a, b);
    EXPECT_NE(json.find("\"files_scanned\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"suppressed\": 3"), std::string::npos);
    EXPECT_NE(json.find("say \\\"hi\\\""), std::string::npos);
}

/**
 * The teeth: the real tree must lint clean. Mirrors the CLI's
 * two-pass flow so header-declared unordered members are tracked
 * across files.
 */
TEST(LintRepo, SrcBenchTestsAreClean)
{
    const fs::path root(FUSION_LINT_SOURCE_ROOT);
    std::vector<std::string> files;
    for (const char *dir : {"src", "bench", "tests"}) {
        fs::path d = root / dir;
        ASSERT_TRUE(fs::is_directory(d)) << d;
        for (const auto &entry : fs::recursive_directory_iterator(d)) {
            if (!entry.is_regular_file())
                continue;
            std::string ext = entry.path().extension().string();
            if (ext == ".h" || ext == ".cc" || ext == ".cpp")
                files.push_back(entry.path().generic_string());
        }
    }
    std::sort(files.begin(), files.end());
    ASSERT_GT(files.size(), 50u) << "scan set suspiciously small";

    std::vector<std::pair<std::string, std::string>> contents;
    std::vector<std::string> unorderedNames;
    for (const std::string &file : files) {
        contents.emplace_back(file, readFile(file));
        for (auto &n : collectUnorderedNames(contents.back().second))
            unorderedNames.push_back(std::move(n));
    }
    std::sort(unorderedNames.begin(), unorderedNames.end());
    unorderedNames.erase(
        std::unique(unorderedNames.begin(), unorderedNames.end()),
        unorderedNames.end());

    const Options options = Options::defaults();
    std::vector<Finding> leaks;
    for (const auto &[file, content] : contents) {
        FileReport report =
            lintSource(file, content, options, unorderedNames);
        for (auto &f : report.findings)
            leaks.push_back(std::move(f));
    }
    std::string msg;
    for (const Finding &f : leaks)
        msg += f.file + ":" + std::to_string(f.line) + ": [" + f.rule +
               "] " + f.message + "\n";
    EXPECT_TRUE(leaks.empty()) << msg;
}

/**
 * The coordinator cache is determinism-critical (its hit sequence must
 * be bit-identical across thread counts), so it gets an explicit
 * clean-scan expectation on top of the recursive src/ sweep above.
 */
TEST(LintRepo, CacheModuleIsClean)
{
    const fs::path dir = fs::path(FUSION_LINT_SOURCE_ROOT) / "src/cache";
    ASSERT_TRUE(fs::is_directory(dir)) << dir;
    std::vector<std::string> files;
    for (const auto &entry : fs::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        std::string ext = entry.path().extension().string();
        if (ext == ".h" || ext == ".cc" || ext == ".cpp")
            files.push_back(entry.path().generic_string());
    }
    std::sort(files.begin(), files.end());
    ASSERT_GT(files.size(), 1u) << "cache module scan set empty";

    std::vector<std::string> unorderedNames;
    std::vector<std::pair<std::string, std::string>> contents;
    for (const std::string &file : files) {
        contents.emplace_back(file, readFile(file));
        for (auto &n : collectUnorderedNames(contents.back().second))
            unorderedNames.push_back(std::move(n));
    }
    std::sort(unorderedNames.begin(), unorderedNames.end());

    std::string msg;
    size_t leaks = 0;
    for (const auto &[file, content] : contents) {
        FileReport report = lintSource(file, content,
                                       Options::defaults(),
                                       unorderedNames);
        for (const Finding &f : report.findings) {
            ++leaks;
            msg += f.file + ":" + std::to_string(f.line) + ": [" +
                   f.rule + "] " + f.message + "\n";
        }
    }
    EXPECT_EQ(leaks, 0u) << msg;
}

/** The rewritten admission-window scheduler must stay lint-clean: it
 *  is the repo's densest callback/lifetime code, exactly where the
 *  lint rules earn their keep. */
TEST(LintRepo, SchedModuleIsClean)
{
    const fs::path dir = fs::path(FUSION_LINT_SOURCE_ROOT) / "src/sched";
    ASSERT_TRUE(fs::is_directory(dir)) << dir;
    std::vector<std::string> files;
    for (const auto &entry : fs::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        std::string ext = entry.path().extension().string();
        if (ext == ".h" || ext == ".cc" || ext == ".cpp")
            files.push_back(entry.path().generic_string());
    }
    std::sort(files.begin(), files.end());
    ASSERT_GT(files.size(), 1u) << "sched module scan set empty";

    std::vector<std::string> unorderedNames;
    std::vector<std::pair<std::string, std::string>> contents;
    for (const std::string &file : files) {
        contents.emplace_back(file, readFile(file));
        for (auto &n : collectUnorderedNames(contents.back().second))
            unorderedNames.push_back(std::move(n));
    }
    std::sort(unorderedNames.begin(), unorderedNames.end());

    std::string msg;
    size_t leaks = 0;
    for (const auto &[file, content] : contents) {
        FileReport report = lintSource(file, content,
                                       Options::defaults(),
                                       unorderedNames);
        for (const Finding &f : report.findings) {
            ++leaks;
            msg += f.file + ":" + std::to_string(f.line) + ": [" +
                   f.rule + "] " + f.message + "\n";
        }
    }
    EXPECT_EQ(leaks, 0u) << msg;
}

/** The lifecycle subsystem (append log, compactor, re-stripe policy)
 *  mutates store state from DES callbacks — the same lifetime shape
 *  the sched rules police — so it gets its own clean-scan gate. */
TEST(LintRepo, LifecycleModuleIsClean)
{
    const fs::path dir =
        fs::path(FUSION_LINT_SOURCE_ROOT) / "src/lifecycle";
    ASSERT_TRUE(fs::is_directory(dir)) << dir;
    std::vector<std::string> files;
    for (const auto &entry : fs::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        std::string ext = entry.path().extension().string();
        if (ext == ".h" || ext == ".cc" || ext == ".cpp")
            files.push_back(entry.path().generic_string());
    }
    std::sort(files.begin(), files.end());
    ASSERT_GT(files.size(), 1u) << "lifecycle module scan set empty";

    std::vector<std::string> unorderedNames;
    std::vector<std::pair<std::string, std::string>> contents;
    for (const std::string &file : files) {
        contents.emplace_back(file, readFile(file));
        for (auto &n : collectUnorderedNames(contents.back().second))
            unorderedNames.push_back(std::move(n));
    }
    std::sort(unorderedNames.begin(), unorderedNames.end());

    std::string msg;
    size_t leaks = 0;
    for (const auto &[file, content] : contents) {
        FileReport report = lintSource(file, content,
                                       Options::defaults(),
                                       unorderedNames);
        for (const Finding &f : report.findings) {
            ++leaks;
            msg += f.file + ":" + std::to_string(f.line) + ": [" +
                   f.rule + "] " + f.message + "\n";
        }
    }
    EXPECT_EQ(leaks, 0u) << msg;
}

} // namespace
} // namespace fusion::lint
