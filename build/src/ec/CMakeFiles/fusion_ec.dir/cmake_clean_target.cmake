file(REMOVE_RECURSE
  "libfusion_ec.a"
)
