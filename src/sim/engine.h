/**
 * @file
 * Discrete-event simulation engine. Fusion's evaluation metrics are
 * ratios of time spent moving bytes through disks, NICs and CPUs; a
 * deterministic DES reproduces the paper's latency shapes (including
 * the p50/p99 gap created by queueing) without a physical cluster.
 */
#ifndef FUSION_SIM_ENGINE_H
#define FUSION_SIM_ENGINE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/status.h"

namespace fusion::sim {

/** Simulated time in seconds since simulation start. */
using SimTime = double;

/**
 * A time-ordered event queue with a current-time cursor. Events
 * scheduled at equal times fire in scheduling order (stable).
 */
class SimEngine
{
  public:
    SimTime now() const { return now_; }

    /** Schedules `fn` to run `delay` seconds from now (delay >= 0). */
    void
    schedule(SimTime delay, std::function<void()> fn)
    {
        scheduleAt(now_ + delay, std::move(fn));
    }

    /** Schedules `fn` at an absolute time >= now(). */
    void scheduleAt(SimTime when, std::function<void()> fn);

    /**
     * Processes the single earliest event and advances the clock to
     * it. Returns false (and leaves the clock alone) when the queue is
     * empty. Incremental drivers — the shared-scan scheduler's
     * awaitAny — interleave steps with their own completion checks.
     */
    bool step();

    /** Runs events until the queue is empty. */
    void run();

    /** Runs events with time <= `until`; later events stay queued. */
    void runUntil(SimTime until);

    uint64_t eventsProcessed() const { return eventsProcessed_; }

  private:
    struct Event {
        SimTime time;
        uint64_t seq;
        std::function<void()> fn;

        bool
        operator>(const Event &other) const
        {
            if (time != other.time)
                return time > other.time;
            return seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        queue_;
    SimTime now_ = 0.0;
    uint64_t nextSeq_ = 0;
    uint64_t eventsProcessed_ = 0;
};

} // namespace fusion::sim

#endif // FUSION_SIM_ENGINE_H
