/**
 * @file
 * Closed-loop shared-scan scheduler benchmark. Sweeps concurrent client
 * count x batch overlap factor and compares, per cell, the shared-scan
 * scheduler (one deduplicated batch) against serial isolated execution
 * of the same queries on an identical rig:
 *
 *   - total wire bytes (all six wire.* counters),
 *   - mean per-query latency (serial latency is cumulative from batch
 *     admission, since a lone store serves queries one at a time),
 *   - batch makespan and task dedup ratio.
 *
 * Everything runs in simulation, so every number is deterministic and
 * the JSON output can be gated byte-for-byte-stable in CI. Writes
 * BENCH_shared_scans.json and, with --check, exits nonzero when any
 * metric regressed more than --tolerance vs the checked-in baseline or
 * when sharing fails to beat serial execution on a high-overlap cell.
 *
 * Usage:
 *   bench_shared_scans [--quick] [--out=PATH] [--check=BASELINE]
 *                      [--tolerance=0.05]
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "benchutil/harness.h"
#include "sched/scheduler.h"
#include "sim/cluster.h"
#include "store/fusion_store.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

using namespace fusion;

namespace {

struct Rig {
    std::unique_ptr<sim::Cluster> cluster;
    std::unique_ptr<store::FusionStore> store;
    format::Table table;
};

Rig
makeRig(size_t rows)
{
    Rig rig;
    sim::ClusterConfig config;
    config.numNodes = 9;
    rig.cluster = std::make_unique<sim::Cluster>(config);
    rig.store = std::make_unique<store::FusionStore>(
        *rig.cluster, store::StoreOptions{});
    if (benchutil::obsOptions().enabled())
        rig.store->obs().tracer.setEnabled(true);
    auto file = workload::buildLineitemFile(rows, 7);
    FUSION_CHECK(file.isOk());
    rig.table = workload::makeLineitemTable(rows, 7);
    FUSION_CHECK(rig.store->put("lineitem", file.value().bytes).isOk());
    return rig;
}

/**
 * First ceil(overlap * clients) clients issue one shared template
 * query; the rest are pairwise-distinct (column and selectivity vary
 * per client), so overlap 0 means no cross-query sharing at all.
 */
std::vector<query::Query>
overlappingBatch(const Rig &rig, size_t clients, double overlap)
{
    std::vector<query::Query> batch;
    size_t shared =
        static_cast<size_t>(overlap * static_cast<double>(clients) + 0.5);
    const format::Schema schema = workload::lineitemSchema();
    auto make = [&](size_t col, double sel) {
        return workload::microbenchQuery("lineitem",
                                         schema.column(col).name,
                                         rig.table.column(col), sel);
    };
    query::Query tmpl = make(workload::kOrderKey, 0.02);
    const size_t cols[] = {workload::kPartKey, workload::kSuppKey,
                           workload::kQuantity, workload::kExtendedPrice};
    for (size_t c = 0; c < clients; ++c) {
        if (c < shared)
            batch.push_back(tmpl);
        else
            batch.push_back(make(cols[c % std::size(cols)],
                                 0.01 + 0.002 * static_cast<double>(c)));
    }
    return batch;
}

uint64_t
totalWireBytes(store::ObjectStore &store)
{
    obs::MetricsRegistry &reg = store.obs().metrics;
    return reg.counter("wire.filter.request_bytes").value() +
           reg.counter("wire.filter.reply_bytes").value() +
           reg.counter("wire.projection.request_bytes").value() +
           reg.counter("wire.projection.reply_bytes").value() +
           reg.counter("wire.client.request_bytes").value() +
           reg.counter("wire.client.reply_bytes").value();
}

void
writeJson(const std::string &path, bool quick,
          const std::vector<std::pair<std::string, double>> &metrics)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(2);
    }
    std::fprintf(f, "{\n  \"bench\": \"shared_scans\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"metrics\": {\n");
    for (size_t i = 0; i < metrics.size(); ++i)
        std::fprintf(f, "    \"%s\": %.6g%s\n", metrics[i].first.c_str(),
                     metrics[i].second,
                     i + 1 < metrics.size() ? "," : "");
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
}

/** Minimal parser for the flat {"metrics": {"name": number}} schema
 *  this binary writes (same shape as bench_kernels). */
std::map<std::string, double>
readBaselineMetrics(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
        std::exit(2);
    }
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);

    std::map<std::string, double> metrics;
    size_t obj = text.find("\"metrics\"");
    if (obj == std::string::npos)
        return metrics;
    obj = text.find('{', obj);
    size_t end_obj = text.find('}', obj);
    if (obj == std::string::npos || end_obj == std::string::npos)
        return metrics;
    size_t cur = obj;
    while (true) {
        size_t q0 = text.find('"', cur);
        if (q0 == std::string::npos || q0 > end_obj)
            break;
        size_t q1 = text.find('"', q0 + 1);
        size_t colon = text.find(':', q1);
        if (q1 == std::string::npos || colon == std::string::npos ||
            colon > end_obj)
            break;
        char *end = nullptr;
        double v = std::strtod(text.c_str() + colon + 1, &end);
        if (end == text.c_str() + colon + 1)
            break;
        metrics[text.substr(q0 + 1, q1 - q0 - 1)] = v;
        cur = static_cast<size_t>(end - text.c_str());
    }
    return metrics;
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    bool quick = false;
    std::string out_path = "BENCH_shared_scans.json";
    std::string baseline_path;
    double tolerance = 0.05;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick")
            quick = true;
        else if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else if (arg.rfind("--check=", 0) == 0)
            baseline_path = arg.substr(8);
        else if (arg.rfind("--tolerance=", 0) == 0)
            tolerance = std::atof(arg.c_str() + 12);
        else if (arg.rfind("--trace-out=", 0) == 0 ||
                 arg.rfind("--metrics-out=", 0) == 0)
            continue; // consumed by obsInit
        else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            return 2;
        }
    }

    benchutil::banner("shared-scans",
                      "Shared-scan scheduler vs serial isolated execution");

    const size_t rows = quick ? 4000 : 12000;
    const std::vector<size_t> client_counts =
        quick ? std::vector<size_t>{4, 8}
              : std::vector<size_t>{2, 4, 8, 16};
    const double overlaps[] = {0.0, 0.5, 1.0};

    std::vector<std::pair<std::string, double>> metrics;
    benchutil::TablePrinter table(
        {"clients", "overlap", "serial wire MB", "shared wire MB",
         "wire saved %", "serial mean ms", "shared mean ms",
         "latency gain %", "dedup ratio", "makespan ms"});

    int acceptance_failures = 0;
    for (size_t clients : client_counts) {
        for (double overlap : overlaps) {
            Rig serial_rig = makeRig(rows);
            Rig shared_rig = makeRig(rows);
            auto batch = overlappingBatch(serial_rig, clients, overlap);

            // Serial baseline: one query at a time; latency for query i
            // is its completion time measured from batch admission.
            double serial_sum = 0.0, elapsed = 0.0;
            for (const auto &q : batch) {
                auto outcome = serial_rig.store->query(q);
                FUSION_CHECK(outcome.isOk());
                elapsed += outcome.value().latencySeconds;
                serial_sum += elapsed;
            }
            double serial_mean = serial_sum / double(batch.size());
            uint64_t serial_wire = totalWireBytes(*serial_rig.store);

            sched::SharedScanScheduler scheduler(*shared_rig.store);
            auto outcomes = scheduler.runBatch(batch);
            FUSION_CHECK(outcomes.isOk());
            double shared_sum = 0.0;
            for (const auto &outcome : outcomes.value())
                shared_sum += outcome.latencySeconds;
            double shared_mean = shared_sum / double(batch.size());
            uint64_t shared_wire = totalWireBytes(*shared_rig.store);
            const sched::BatchStats &stats = scheduler.lastBatchStats();

            double wire_ratio =
                double(serial_wire) / double(shared_wire);
            double latency_ratio = serial_mean / shared_mean;
            double dedup_ratio = double(stats.tasksPlanned) /
                                 double(stats.tasksIssued);

            char cell[32];
            std::snprintf(cell, sizeof(cell), "c%zu_o%02d", clients,
                          int(overlap * 100.0 + 0.5));
            metrics.emplace_back(std::string(cell) + "_wire_ratio",
                                 wire_ratio);
            metrics.emplace_back(std::string(cell) + "_latency_ratio",
                                 latency_ratio);
            metrics.emplace_back(std::string(cell) + "_dedup_ratio",
                                 dedup_ratio);

            table.addRow(
                {benchutil::fmt("%zu", clients),
                 benchutil::fmt("%.1f", overlap),
                 benchutil::fmt("%.2f", double(serial_wire) / 1e6),
                 benchutil::fmt("%.2f", double(shared_wire) / 1e6),
                 benchutil::fmt("%.1f", 100.0 * (1.0 - 1.0 / wire_ratio)),
                 benchutil::fmt("%.2f", serial_mean * 1e3),
                 benchutil::fmt("%.2f", shared_mean * 1e3),
                 benchutil::fmt("%.1f",
                                100.0 * (1.0 - 1.0 / latency_ratio)),
                 benchutil::fmt("%.2f", dedup_ratio),
                 benchutil::fmt("%.2f", stats.makespanSeconds * 1e3)});

            // Acceptance: at overlap >= 0.5 and >= 8 clients, sharing
            // must strictly beat serial on both wire bytes and latency.
            if (overlap >= 0.5 && clients >= 8 &&
                (shared_wire >= serial_wire ||
                 shared_mean >= serial_mean)) {
                std::fprintf(stderr,
                             "ACCEPTANCE FAIL %s: wire %llu vs %llu, "
                             "mean %.4f ms vs %.4f ms\n",
                             cell,
                             static_cast<unsigned long long>(shared_wire),
                             static_cast<unsigned long long>(serial_wire),
                             shared_mean * 1e3, serial_mean * 1e3);
                ++acceptance_failures;
            }
            benchutil::obsCollect(*shared_rig.store);
        }
    }
    table.print();

    writeJson(out_path, quick, metrics);
    std::printf("wrote %s\n", out_path.c_str());

    if (!baseline_path.empty()) {
        auto baseline = readBaselineMetrics(baseline_path);
        std::map<std::string, double> current(metrics.begin(),
                                              metrics.end());
        int failures = 0;
        for (const auto &[name, want] : baseline) {
            auto it = current.find(name);
            if (it == current.end())
                continue;
            double floor = want * (1.0 - tolerance);
            bool ok = it->second >= floor;
            std::printf("  check %-28s %10.4f >= %10.4f %s\n",
                        name.c_str(), it->second, floor,
                        ok ? "ok" : "REGRESSED");
            failures += ok ? 0 : 1;
        }
        if (failures > 0) {
            std::fprintf(stderr,
                         "%d shared-scan metric(s) regressed more than "
                         "%.0f%% vs %s\n",
                         failures, tolerance * 100.0,
                         baseline_path.c_str());
            return 1;
        }
        std::printf("all shared-scan metrics within %.0f%% of baseline\n",
                    tolerance * 100.0);
    }
    if (acceptance_failures > 0) {
        std::fprintf(stderr,
                     "%d high-overlap cell(s) failed the sharing "
                     "acceptance bound\n",
                     acceptance_failures);
        return 1;
    }
    return 0;
}
