/**
 * @file
 * Query model: the subset of SQL Fusion supports (paper §5) — SELECT
 * with projections and aggregates over one table, with a conjunctive
 * WHERE clause of column-vs-literal comparisons. Joins are explicitly
 * out of scope (they belong in the data warehouse above Fusion).
 */
#ifndef FUSION_QUERY_AST_H
#define FUSION_QUERY_AST_H

#include <string>
#include <vector>

#include "format/column.h"
#include "format/value.h"

namespace fusion::query {

/** Comparison operators allowed in WHERE predicates. */
enum class CompareOp : uint8_t {
    kLt = 0,
    kLe,
    kGt,
    kGe,
    kEq,
    kNe,
};

const char *compareOpName(CompareOp op);

/** One conjunct of the WHERE clause: <column> <op> <literal>. */
struct Predicate {
    std::string column;
    CompareOp op = CompareOp::kEq;
    format::Value literal;
};

/** Aggregate function applied to a projection. */
enum class AggregateKind : uint8_t {
    kNone = 0, // plain column projection
    kCount,
    kSum,
    kAvg,
    kMin,
    kMax,
};

const char *aggregateKindName(AggregateKind kind);

/** One item of the SELECT list. */
struct Projection {
    std::string column; // empty for COUNT(*)
    AggregateKind aggregate = AggregateKind::kNone;

    bool isCountStar() const
    {
        return aggregate == AggregateKind::kCount && column.empty();
    }
};

/** A parsed query. */
struct Query {
    std::string table;
    std::vector<Projection> projections;
    std::vector<Predicate> filters; // ANDed together

    /** Distinct non-empty column names referenced by projections. */
    std::vector<std::string> projectionColumns() const;

    /** Distinct column names referenced by filters. */
    std::vector<std::string> filterColumns() const;

    std::string toString() const;
};

/** Result of one projection: either row values or an aggregate. */
struct ProjectionResult {
    std::string name;
    bool isAggregate = false;
    double aggregateValue = 0.0;
    format::ColumnData values; // populated when !isAggregate
};

/** Result of a query execution. */
struct QueryResult {
    uint64_t rowsMatched = 0;
    uint64_t rowsScanned = 0;
    std::vector<ProjectionResult> columns;
};

} // namespace fusion::query

#endif // FUSION_QUERY_AST_H
