/**
 * @file
 * Extended store integration tests: differential random-query fuzzing
 * (baseline vs Fusion vs a direct in-memory reference evaluator),
 * RS(14,10) end-to-end, the fixed-layout fallback query path, queries
 * during failures of specific roles (chunk owner, coordinator), and
 * pushdown accounting invariants.
 */
#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "query/eval.h"
#include "store/baseline_store.h"
#include "store/fusion_store.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

namespace fusion::store {
namespace {

using query::AggregateKind;
using query::CompareOp;

/** Reference evaluation of a query against the in-memory table. */
query::QueryResult
referenceEvaluate(const format::Table &table, const query::Query &q)
{
    query::Bitmap rows(table.numRows(), true);
    for (const auto &pred : q.filters) {
        size_t col = table.schema().columnIndex(pred.column).value();
        auto bitmap =
            query::evalPredicate(table.column(col), pred.op, pred.literal);
        FUSION_CHECK(bitmap.isOk());
        rows.intersect(bitmap.value());
    }

    query::QueryResult result;
    result.rowsMatched = rows.count();
    for (const auto &proj : q.projections) {
        query::ProjectionResult out;
        if (proj.aggregate != AggregateKind::kNone) {
            out.isAggregate = true;
            if (proj.isCountStar()) {
                out.aggregateValue = static_cast<double>(rows.count());
            } else {
                size_t col =
                    table.schema().columnIndex(proj.column).value();
                auto selected = query::selectRows(table.column(col), rows);
                out.aggregateValue =
                    query::computeAggregate(proj.aggregate, selected)
                        .valueOr(0.0);
            }
        } else {
            size_t col = table.schema().columnIndex(proj.column).value();
            out.values = query::selectRows(table.column(col), rows);
        }
        result.columns.push_back(std::move(out));
    }
    return result;
}

/** Draws a random (valid) query over the lineitem schema. */
query::Query
randomQuery(Rng &rng, const format::Table &table, const std::string &name)
{
    const format::Schema &schema = table.schema();
    query::Query q;
    q.table = name;

    size_t num_projections = 1 + rng.pickIndex(3);
    for (size_t i = 0; i < num_projections; ++i) {
        size_t col = rng.pickIndex(schema.numColumns());
        query::Projection proj;
        proj.column = schema.column(col).name;
        bool numeric =
            schema.column(col).physical != format::PhysicalType::kString;
        if (numeric && rng.chance(0.3)) {
            AggregateKind kinds[] = {AggregateKind::kSum,
                                     AggregateKind::kAvg,
                                     AggregateKind::kMin,
                                     AggregateKind::kMax};
            proj.aggregate = kinds[rng.pickIndex(4)];
        }
        q.projections.push_back(std::move(proj));
    }
    if (rng.chance(0.2))
        q.projections.push_back({"", AggregateKind::kCount});

    size_t num_filters = rng.pickIndex(3); // 0..2
    for (size_t i = 0; i < num_filters; ++i) {
        size_t col = rng.pickIndex(schema.numColumns());
        query::Predicate pred;
        pred.column = schema.column(col).name;
        CompareOp ops[] = {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                           CompareOp::kGe, CompareOp::kEq, CompareOp::kNe};
        pred.op = ops[rng.pickIndex(6)];
        // Literal drawn from the data so matches are plausible.
        size_t row = rng.pickIndex(table.numRows());
        pred.literal = table.column(col).valueAt(row);
        q.filters.push_back(std::move(pred));
    }
    return q;
}

void
expectSameResult(const query::QueryResult &a, const query::QueryResult &b,
                 const std::string &context)
{
    ASSERT_EQ(a.rowsMatched, b.rowsMatched) << context;
    ASSERT_EQ(a.columns.size(), b.columns.size()) << context;
    for (size_t c = 0; c < a.columns.size(); ++c) {
        EXPECT_EQ(a.columns[c].isAggregate, b.columns[c].isAggregate)
            << context;
        if (a.columns[c].isAggregate) {
            EXPECT_NEAR(a.columns[c].aggregateValue,
                        b.columns[c].aggregateValue,
                        1e-6 * (1.0 + std::abs(a.columns[c].aggregateValue)))
                << context;
        } else {
            EXPECT_TRUE(a.columns[c].values == b.columns[c].values)
                << context;
        }
    }
}

TEST(DifferentialFuzzTest, RandomQueriesAgreeAcrossEnginesAndReference)
{
    const size_t rows = 3000;
    format::Table table = workload::makeLineitemTable(rows, 77);
    auto file = workload::buildLineitemFile(rows, 77);
    ASSERT_TRUE(file.isOk());

    sim::ClusterConfig config;
    sim::Cluster baseline_cluster(config), fusion_cluster(config);
    StoreOptions options;
    options.fixedBlockSize = 16 << 10; // force plenty of splits
    BaselineStore baseline(baseline_cluster, options);
    FusionStore fusion(fusion_cluster, options);
    ASSERT_TRUE(baseline.put("lineitem", file.value().bytes).isOk());
    ASSERT_TRUE(fusion.put("lineitem", file.value().bytes).isOk());

    Rng rng(2025);
    for (int trial = 0; trial < 60; ++trial) {
        query::Query q = randomQuery(rng, table, "lineitem");
        std::string context =
            "trial " + std::to_string(trial) + ": " + q.toString();
        query::QueryResult expect = referenceEvaluate(table, q);
        auto b = baseline.query(q);
        auto f = fusion.query(q);
        ASSERT_TRUE(b.isOk()) << context << " " << b.status().toString();
        ASSERT_TRUE(f.isOk()) << context << " " << f.status().toString();
        expectSameResult(expect, b.value().result, "baseline " + context);
        expectSameResult(expect, f.value().result, "fusion " + context);
    }
}

TEST(Rs1410Test, EndToEndWideCode)
{
    // RS(14,10) needs a 14-node cluster (paper's other config).
    sim::ClusterConfig config;
    config.numNodes = 14;
    sim::Cluster cluster(config);
    StoreOptions options;
    options.n = 14;
    options.k = 10;
    FusionStore store(cluster, options);

    auto file = workload::buildLineitemFile(5000, 3);
    ASSERT_TRUE(file.isOk());
    auto put = store.put("lineitem", file.value().bytes);
    ASSERT_TRUE(put.isOk());
    EXPECT_EQ(put.value().layoutKind, fac::LayoutKind::kFac);

    // RS(14,10) tolerates 4 failures.
    for (size_t node : {0, 3, 7, 12})
        cluster.killNode(node);
    auto back = store.get("lineitem");
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value(), file.value().bytes);
    auto outcome = store.querySql(
        "SELECT COUNT(*) FROM lineitem WHERE l_quantity <= 10");
    ASSERT_TRUE(outcome.isOk());
    EXPECT_GT(outcome.value().result.rowsMatched, 0u);

    cluster.killNode(13); // fifth failure
    EXPECT_FALSE(store.get("lineitem").isOk());
}

TEST(FallbackLayoutTest, QueriesWorkOnFixedFallback)
{
    // Force the fallback by making the threshold impossible.
    sim::ClusterConfig config;
    sim::Cluster cluster(config);
    StoreOptions options;
    options.overheadThreshold = 0.0;
    options.fixedBlockSize = 8 << 10;
    FusionStore store(cluster, options);

    auto file = workload::buildLineitemFile(4000, 5);
    ASSERT_TRUE(file.isOk());
    auto put = store.put("lineitem", file.value().bytes);
    ASSERT_TRUE(put.isOk());
    ASSERT_EQ(put.value().layoutKind, fac::LayoutKind::kFixed);
    EXPECT_GT(put.value().splitFraction, 0.0);

    // Queries on split chunks use the coordinator fetch path.
    auto outcome = store.querySql(
        "SELECT l_comment FROM lineitem WHERE l_extendedprice < 5000");
    ASSERT_TRUE(outcome.isOk());
    EXPECT_GT(outcome.value().filterChunkFetches +
                  outcome.value().filterChunkPushdowns,
              0u);
    // Some chunks must have been split and fetched.
    EXPECT_GT(outcome.value().projectionFetches, 0u);

    format::Table table = workload::makeLineitemTable(4000, 5);
    query::QueryResult expect = referenceEvaluate(
        table,
        query::parseQuery(
            "SELECT l_comment FROM lineitem WHERE l_extendedprice < 5000")
            .value());
    expectSameResult(expect, outcome.value().result, "fallback");
}

TEST(FailureRoleTest, ChunkOwnerFailureFallsBackToDegradedFetch)
{
    sim::ClusterConfig config;
    sim::Cluster cluster(config);
    FusionStore store(cluster, StoreOptions{});
    auto file = workload::buildLineitemFile(4000, 9);
    ASSERT_TRUE(file.isOk());
    ASSERT_TRUE(store.put("lineitem", file.value().bytes).isOk());

    // Find the node owning the first comment chunk and kill it.
    const ObjectManifest &m = *store.manifest("lineitem").value();
    uint32_t chunk_id = m.chunkIdFor(0, workload::kComment);
    size_t owner = m.nodesForChunk(chunk_id)[0];
    cluster.killNode(owner);

    auto outcome = store.querySql(
        "SELECT l_comment FROM lineitem WHERE l_orderkey <= 200");
    ASSERT_TRUE(outcome.isOk()) << outcome.status().toString();
    // The dead owner's chunks take the degraded fetch path.
    EXPECT_GT(outcome.value().filterChunkFetches +
                  outcome.value().projectionFetches,
              0u);
}

TEST(FailureRoleTest, CoordinatorFailureMovesCoordinator)
{
    sim::ClusterConfig config;
    sim::Cluster cluster(config);
    FusionStore store(cluster, StoreOptions{});
    auto file = workload::buildLineitemFile(3000, 13);
    ASSERT_TRUE(file.isOk());
    ASSERT_TRUE(store.put("obj", file.value().bytes).isOk());

    size_t coordinator = cluster.coordinatorFor("obj");
    cluster.killNode(coordinator);
    auto outcome = store.querySql(
        "SELECT COUNT(*) FROM obj WHERE l_quantity <= 5");
    ASSERT_TRUE(outcome.isOk());
    EXPECT_GT(outcome.value().result.rowsMatched, 0u);
}

TEST(AccountingInvariantsTest, CountersAndBytesConsistent)
{
    sim::ClusterConfig config;
    sim::Cluster cluster(config);
    FusionStore store(cluster, StoreOptions{});
    auto file = workload::buildLineitemFile(4000, 21);
    ASSERT_TRUE(file.isOk());
    ASSERT_TRUE(store.put("lineitem", file.value().bytes).isOk());

    uint64_t before = cluster.totalNetworkBytes();
    auto outcome = store.querySql(
        "SELECT l_partkey FROM lineitem WHERE l_suppkey <= 500");
    ASSERT_TRUE(outcome.isOk());
    const QueryOutcome &o = outcome.value();
    // Query-attributed traffic cannot exceed total cluster traffic.
    EXPECT_LE(o.networkBytes, cluster.totalNetworkBytes() - before);
    EXPECT_EQ(o.rowGroupsScanned + o.rowGroupsSkipped, 10u);
    EXPECT_GT(o.latencySeconds, 0.0);
    EXPECT_GT(o.diskSeconds, 0.0);
    EXPECT_GT(o.cpuSeconds, 0.0);
    // Result size matches rowsMatched.
    EXPECT_EQ(o.result.columns[0].values.size(), o.result.rowsMatched);
}

TEST(AccountingInvariantsTest, SkippedRowGroupsMoveNoChunkBytes)
{
    sim::ClusterConfig config;
    sim::Cluster cluster(config);
    FusionStore store(cluster, StoreOptions{});
    auto file = workload::buildLineitemFile(4000, 23);
    ASSERT_TRUE(file.isOk());
    ASSERT_TRUE(store.put("lineitem", file.value().bytes).isOk());

    // No row matches: every row group is skipped via zone maps.
    auto outcome = store.querySql(
        "SELECT l_comment FROM lineitem WHERE l_quantity > 50");
    ASSERT_TRUE(outcome.isOk());
    EXPECT_EQ(outcome.value().result.rowsMatched, 0u);
    EXPECT_EQ(outcome.value().rowGroupsSkipped, 10u);
    // Only the client request/reply rides the network.
    EXPECT_LT(outcome.value().networkBytes, 2048u);
}

TEST(ConcurrencyTest, ParallelQueriesAllCompleteWithSameResults)
{
    sim::ClusterConfig config;
    sim::Cluster cluster(config);
    FusionStore store(cluster, StoreOptions{});
    auto file = workload::buildLineitemFile(4000, 31);
    ASSERT_TRUE(file.isOk());
    ASSERT_TRUE(store.put("lineitem", file.value().bytes).isOk());

    auto q = query::parseQuery(
        "SELECT AVG(l_extendedprice) FROM lineitem WHERE l_quantity <= 25");
    ASSERT_TRUE(q.isOk());

    std::vector<QueryOutcome> outcomes;
    for (int i = 0; i < 20; ++i) {
        store.queryAsync(q.value(), [&](Result<QueryOutcome> o) {
            ASSERT_TRUE(o.isOk());
            outcomes.push_back(std::move(o.value()));
        });
    }
    cluster.engine().run();
    ASSERT_EQ(outcomes.size(), 20u);
    for (const auto &o : outcomes) {
        EXPECT_DOUBLE_EQ(o.result.columns[0].aggregateValue,
                         outcomes[0].result.columns[0].aggregateValue);
        // Later arrivals queue behind earlier ones.
        EXPECT_GE(o.latencySeconds, outcomes[0].latencySeconds - 1e-12);
    }
}


TEST(ObjectManagementTest, ListDeleteAndStats)
{
    sim::ClusterConfig config;
    sim::Cluster cluster(config);
    FusionStore store(cluster, StoreOptions{});
    auto file_a = workload::buildLineitemFile(2000, 1);
    auto file_b = workload::buildLineitemFile(3000, 2);
    ASSERT_TRUE(file_a.isOk());
    ASSERT_TRUE(file_b.isOk());
    ASSERT_TRUE(store.put("b-object", file_b.value().bytes).isOk());
    ASSERT_TRUE(store.put("a-object", file_a.value().bytes).isOk());

    EXPECT_EQ(store.listObjects(),
              (std::vector<std::string>{"a-object", "b-object"}));

    auto stats = store.stats();
    EXPECT_EQ(stats.objectCount, 2u);
    EXPECT_EQ(stats.logicalBytes,
              file_a.value().bytes.size() + file_b.value().bytes.size());
    EXPECT_GT(stats.storedBytes, stats.logicalBytes); // parity on top
    EXPECT_GE(stats.maxNodeBytes, stats.minNodeBytes);
    EXPECT_LT(stats.overheadVsOptimal, 0.05);

    // Node accounting matches the store's view.
    uint64_t on_nodes = 0;
    for (size_t i = 0; i < cluster.numNodes(); ++i)
        on_nodes += cluster.node(i).storedBytes();
    EXPECT_EQ(on_nodes, stats.storedBytes);

    // Delete removes blocks and the manifest.
    ASSERT_TRUE(store.deleteObject("a-object").isOk());
    EXPECT_FALSE(store.contains("a-object"));
    EXPECT_EQ(store.deleteObject("a-object").code(),
              StatusCode::kNotFound);
    on_nodes = 0;
    for (size_t i = 0; i < cluster.numNodes(); ++i)
        on_nodes += cluster.node(i).storedBytes();
    EXPECT_EQ(on_nodes, store.stats().storedBytes);
    EXPECT_EQ(store.stats().objectCount, 1u);

    // The remaining object is still fully readable.
    auto back = store.get("b-object");
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value(), file_b.value().bytes);
}

TEST(ObjectManagementTest, DeleteEverythingLeavesNodesEmpty)
{
    sim::ClusterConfig config;
    sim::Cluster cluster(config);
    FusionStore store(cluster, StoreOptions{});
    auto file = workload::buildLineitemFile(1500, 3);
    ASSERT_TRUE(file.isOk());
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(store
                        .put("obj" + std::to_string(i),
                             file.value().bytes)
                        .isOk());
    for (const auto &name : store.listObjects())
        ASSERT_TRUE(store.deleteObject(name).isOk());
    EXPECT_TRUE(store.listObjects().empty());
    for (size_t i = 0; i < cluster.numNodes(); ++i)
        EXPECT_EQ(cluster.node(i).storedBytes(), 0u) << "node " << i;
}


TEST(PutAsyncTest, SimulatedWritePathCompletesAndQueues)
{
    sim::ClusterConfig config;
    sim::Cluster cluster(config);
    FusionStore store(cluster, StoreOptions{});
    auto file = workload::buildLineitemFile(3000, 41);
    ASSERT_TRUE(file.isOk());

    std::vector<PutResult> results;
    store.putAsync("a", file.value().bytes,
                   [&](Result<PutResult> r) {
                       ASSERT_TRUE(r.isOk());
                       results.push_back(std::move(r.value()));
                   });
    store.putAsync("b", file.value().bytes,
                   [&](Result<PutResult> r) {
                       ASSERT_TRUE(r.isOk());
                       results.push_back(std::move(r.value()));
                   });
    cluster.engine().run();
    ASSERT_EQ(results.size(), 2u);
    for (const auto &r : results) {
        EXPECT_GT(r.simulatedPutSeconds, 0.0);
        EXPECT_EQ(r.objectBytes, file.value().bytes.size());
    }
    // Two concurrent puts through the same client NIC: the second
    // completes later than a lone put would.
    EXPECT_GT(std::max(results[0].simulatedPutSeconds,
                       results[1].simulatedPutSeconds),
              std::min(results[0].simulatedPutSeconds,
                       results[1].simulatedPutSeconds));
    // Both objects are fully readable afterwards.
    for (const char *name : {"a", "b"}) {
        auto back = store.get(name);
        ASSERT_TRUE(back.isOk());
        EXPECT_EQ(back.value(), file.value().bytes);
    }
    EXPECT_FALSE(store.contains("missing"));
    bool error_seen = false;
    store.putAsync("bad", Bytes{}, [&](Result<PutResult> r) {
        error_seen = !r.isOk();
    });
    cluster.engine().run();
    EXPECT_TRUE(error_seen);
}

} // namespace
} // namespace fusion::store
