
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fac/fac_layout.cc" "src/fac/CMakeFiles/fusion_fac.dir/fac_layout.cc.o" "gcc" "src/fac/CMakeFiles/fusion_fac.dir/fac_layout.cc.o.d"
  "/root/repo/src/fac/fixed_layout.cc" "src/fac/CMakeFiles/fusion_fac.dir/fixed_layout.cc.o" "gcc" "src/fac/CMakeFiles/fusion_fac.dir/fixed_layout.cc.o.d"
  "/root/repo/src/fac/layout.cc" "src/fac/CMakeFiles/fusion_fac.dir/layout.cc.o" "gcc" "src/fac/CMakeFiles/fusion_fac.dir/layout.cc.o.d"
  "/root/repo/src/fac/oracle_layout.cc" "src/fac/CMakeFiles/fusion_fac.dir/oracle_layout.cc.o" "gcc" "src/fac/CMakeFiles/fusion_fac.dir/oracle_layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fusion_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
