/**
 * @file
 * Coordinator hot-chunk cache. A bounded (capacity in bytes) cache of
 * raw chunk bytes, with an optional decoded-column layer attached once
 * a resident chunk has been decoded. Residency bends the per-chunk
 * Cost Equation (query/cost.h): a cached chunk makes coordinator-side
 * evaluation free of wire and disk cost, so the planner's verdict
 * flips to "local" regardless of selectivity x compressibility.
 *
 * Eviction is SIEVE (FIFO queue + visited bits + a lazily moving
 * hand): newly admitted entries start unvisited at the queue head;
 * lookups set the visited bit without moving the entry; the hand scans
 * from the tail (oldest) toward the head, clearing visited bits, and
 * evicts the first unvisited entry it meets. Under stationary skewed
 * popularity SIEVE approximates LFU — one-hit wonders are evicted on
 * the hand's first pass while repeatedly looked-up entries survive —
 * which is what a Zipfian object workload needs from a small cache.
 *
 * Determinism: every operation mutates plain ordered containers in
 * call order, keyed on logical recency (queue position + visited
 * bits), never on wall time. All callers sit on the serial planning
 * path of the simulation driver, so the hit/miss/eviction sequence is
 * bit-identical for any FUSION_THREADS value.
 */
#ifndef FUSION_CACHE_CHUNK_CACHE_H
#define FUSION_CACHE_CHUNK_CACHE_H

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "format/column.h"
#include "obs/metrics.h"

namespace fusion::cache {

/** Capacity from FUSION_CACHE_BYTES (bytes; 0 or unset = disabled). */
uint64_t defaultCacheBytesFromEnv();

/** See file comment. Not thread-safe by design: all callers are on
 *  the simulation driver's serial planning path. */
class ChunkCache
{
  public:
    using Key = std::pair<std::string, uint32_t>; // (object, chunk id)

    explicit ChunkCache(uint64_t capacity_bytes);

    /** A zero-capacity cache rejects all admissions and never hits. */
    bool enabled() const { return capacityBytes_ > 0; }
    uint64_t capacityBytes() const { return capacityBytes_; }
    uint64_t sizeBytes() const { return sizeBytes_; }
    size_t entryCount() const { return queue_.size(); }

    /**
     * Counted residency probe: tallies a hit or miss, and on a hit
     * sets the entry's visited bit (its SIEVE survival ticket).
     * Returns the raw chunk bytes, or nullptr on miss.
     */
    std::shared_ptr<const Bytes> lookup(const std::string &object,
                                        uint32_t chunk_id);

    /** Uncounted residency probe (tests and idempotent admission). */
    bool contains(const std::string &object, uint32_t chunk_id) const;

    /**
     * Admits a chunk's raw bytes, evicting from the hand position
     * until it fits. Oversized (> capacity) and empty chunks are
     * rejected. Re-admitting a resident chunk just marks it visited.
     * Returns true when the chunk is resident on return.
     */
    bool admit(const std::string &object, uint32_t chunk_id,
               std::shared_ptr<const Bytes> bytes);

    /**
     * Attaches a decoded-column layer to a resident chunk (no-op on
     * a miss). The decoded form rides along for accounting — only the
     * raw byte size counts against capacity, matching the store's
     * decode-memoization being a separate experiment-speed artifact.
     */
    void attachDecoded(const std::string &object, uint32_t chunk_id,
                       std::shared_ptr<const format::ColumnData> decoded);

    /** Decoded layer of a resident chunk, or nullptr. Uncounted. */
    std::shared_ptr<const format::ColumnData>
    decoded(const std::string &object, uint32_t chunk_id) const;

    /** Drops one chunk (no-op if absent). Degraded reads call this so
     *  reconstruction-touched chunks never claim residency. */
    void invalidate(const std::string &object, uint32_t chunk_id);

    /** Drops every chunk of an object (delete / overwrite). */
    void invalidateObject(const std::string &object);

    /** Drops everything; tallies are kept. */
    void clear();

    // ---- instrumentation ----

    /** Local tallies (always maintained; usable without a registry). */
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t evictions() const { return evictions_; }
    /** New entries accepted (re-admissions of resident chunks are not
     *  counted). The admission window's convert-to-shared-fetch path
     *  asserts on this: a mid-window conversion must land the chunk's
     *  bytes here exactly once. */
    uint64_t admissions() const { return admissions_; }

    /**
     * Mirrors tallies into registry instruments: cache.chunk.hits /
     * misses / evictions counters and the cache.chunk.bytes gauge.
     * Any pointer may be null. Must be bound before first use.
     */
    void bindMetrics(obs::Counter *hits, obs::Counter *misses,
                     obs::Counter *evictions, obs::Gauge *bytes);

    /** Resident keys in queue order, newest first (test introspection). */
    std::vector<Key> residentKeys() const;

  private:
    struct Slot {
        Key key;
        std::shared_ptr<const Bytes> bytes;
        std::shared_ptr<const format::ColumnData> decoded;
        uint64_t size = 0;
        bool visited = false;
    };
    using Queue = std::list<Slot>;

    /** Evicts exactly one entry by the SIEVE hand scan. Requires a
     *  non-empty queue. */
    void evictOne();
    /** Moves the hand off `it` before erasure, then erases it. */
    void erase(Queue::iterator it);
    void syncBytesGauge();

    uint64_t capacityBytes_ = 0;
    uint64_t sizeBytes_ = 0;
    Queue queue_; // front = newest, back = oldest
    std::map<Key, Queue::iterator> index_;
    /** SIEVE hand; only meaningful while handValid_. */
    Queue::iterator hand_;
    bool handValid_ = false;

    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    uint64_t admissions_ = 0;
    obs::Counter *hitCounter_ = nullptr;
    obs::Counter *missCounter_ = nullptr;
    obs::Counter *evictionCounter_ = nullptr;
    obs::Gauge *bytesGauge_ = nullptr;
};

} // namespace fusion::cache

#endif // FUSION_CACHE_CHUNK_CACHE_H
