file(REMOVE_RECURSE
  "CMakeFiles/fusion_workload.dir/chunk_models.cc.o"
  "CMakeFiles/fusion_workload.dir/chunk_models.cc.o.d"
  "CMakeFiles/fusion_workload.dir/lineitem.cc.o"
  "CMakeFiles/fusion_workload.dir/lineitem.cc.o.d"
  "CMakeFiles/fusion_workload.dir/queries.cc.o"
  "CMakeFiles/fusion_workload.dir/queries.cc.o.d"
  "CMakeFiles/fusion_workload.dir/taxi.cc.o"
  "CMakeFiles/fusion_workload.dir/taxi.cc.o.d"
  "CMakeFiles/fusion_workload.dir/textsets.cc.o"
  "CMakeFiles/fusion_workload.dir/textsets.cc.o.d"
  "libfusion_workload.a"
  "libfusion_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
