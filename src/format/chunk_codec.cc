#include "chunk_codec.h"

#include <algorithm>

#include "codec/bitpack.h"
#include "codec/dictionary.h"
#include "codec/rle.h"
#include "common/serde.h"

namespace fusion::format {

namespace {

using codec::Compression;

Bytes
plainEncodeInt32(const std::vector<int32_t> &v, size_t begin, size_t end)
{
    Bytes out;
    BinaryWriter writer(out);
    for (size_t i = begin; i < end; ++i)
        writer.putI32(v[i]);
    return out;
}

Bytes
plainEncodeInt64(const std::vector<int64_t> &v, size_t begin, size_t end)
{
    Bytes out;
    BinaryWriter writer(out);
    for (size_t i = begin; i < end; ++i)
        writer.putI64(v[i]);
    return out;
}

Bytes
plainEncodeDouble(const std::vector<double> &v, size_t begin, size_t end)
{
    Bytes out;
    BinaryWriter writer(out);
    for (size_t i = begin; i < end; ++i)
        writer.putDouble(v[i]);
    return out;
}

Bytes
plainEncodeString(const std::vector<std::string> &v, size_t begin, size_t end)
{
    // Parquet's BYTE_ARRAY plain encoding: 4-byte length + bytes. The
    // fixed prefix matters because plain size is the uncompressed wire
    // form whose ratio to stored size drives the Cost Equation.
    Bytes out;
    BinaryWriter writer(out);
    for (size_t i = begin; i < end; ++i) {
        writer.putU32(static_cast<uint32_t>(v[i].size()));
        writer.putRaw(Slice(v[i]));
    }
    return out;
}

Bytes
plainEncodeRange(const ColumnData &column, size_t begin, size_t end)
{
    switch (column.type()) {
      case PhysicalType::kInt32:
        return plainEncodeInt32(column.int32s(), begin, end);
      case PhysicalType::kInt64:
        return plainEncodeInt64(column.int64s(), begin, end);
      case PhysicalType::kDouble:
        return plainEncodeDouble(column.doubles(), begin, end);
      case PhysicalType::kString:
        return plainEncodeString(column.strings(), begin, end);
    }
    FUSION_CHECK(false);
    return {};
}

Status
plainDecodeInto(BinaryReader &reader, PhysicalType type, size_t count,
                ColumnData &out)
{
    for (size_t i = 0; i < count; ++i) {
        switch (type) {
          case PhysicalType::kInt32: {
            auto v = reader.getI32();
            if (!v.isOk())
                return v.status();
            out.append(v.value());
            break;
          }
          case PhysicalType::kInt64: {
            auto v = reader.getI64();
            if (!v.isOk())
                return v.status();
            out.append(v.value());
            break;
          }
          case PhysicalType::kDouble: {
            auto v = reader.getDouble();
            if (!v.isOk())
                return v.status();
            out.append(v.value());
            break;
          }
          case PhysicalType::kString: {
            auto len = reader.getU32();
            if (!len.isOk())
                return len.status();
            auto raw = reader.getRaw(len.value());
            if (!raw.isOk())
                return raw.status();
            out.append(raw.value().toString());
            break;
          }
        }
    }
    return Status::ok();
}

// Computes min/max over a column; column must be non-empty.
void
computeMinMax(const ColumnData &column, Value &min_v, Value &max_v)
{
    FUSION_CHECK(!column.empty());
    min_v = column.valueAt(0);
    max_v = column.valueAt(0);
    for (size_t i = 1; i < column.size(); ++i) {
        Value v = column.valueAt(i);
        if (v < min_v)
            min_v = v;
        if (max_v < v)
            max_v = v;
    }
}

// Dictionary-encodes a column into (dict column, codes). Returns false
// when the cardinality thresholds are exceeded and plain should be used.
bool
buildDictionary(const ColumnData &column, const ChunkEncodeOptions &options,
                ColumnData &dict_out, std::vector<uint64_t> &codes_out)
{
    size_t limit = std::min<size_t>(
        options.maxDictCardinality,
        static_cast<size_t>(options.dictMaxCardinalityRatio *
                            static_cast<double>(column.size())));
    if (limit == 0)
        return false;

    auto run = [&](const auto &values) -> bool {
        using T = std::decay_t<decltype(values[0])>;
        codec::DictionaryEncoder<T> enc;
        for (const auto &v : values) {
            enc.add(v);
            if (enc.cardinality() > limit)
                return false;
        }
        dict_out = ColumnData(column.type());
        for (const auto &v : enc.dictionary())
            dict_out.append(T(v));
        codes_out.assign(enc.codes().begin(), enc.codes().end());
        return true;
    };

    switch (column.type()) {
      case PhysicalType::kInt32: return run(column.int32s());
      case PhysicalType::kInt64: return run(column.int64s());
      case PhysicalType::kDouble: return run(column.doubles());
      case PhysicalType::kString: return run(column.strings());
    }
    return false;
}

} // namespace

Bytes
plainEncode(const ColumnData &column)
{
    return plainEncodeRange(column, 0, column.size());
}

Result<ColumnData>
plainDecode(Slice bytes, PhysicalType type, size_t count)
{
    ColumnData out(type);
    BinaryReader reader(bytes);
    FUSION_RETURN_IF_ERROR(plainDecodeInto(reader, type, count, out));
    return out;
}

EncodedChunk
encodeChunk(const ColumnData &column, const ChunkEncodeOptions &options)
{
    FUSION_CHECK_MSG(!column.empty(), "cannot encode an empty chunk");

    EncodedChunk result;
    result.valueCount = column.size();
    computeMinMax(column, result.minValue, result.maxValue);

    ColumnData dict;
    std::vector<uint64_t> codes;
    bool use_dict = options.enableDictionary &&
                    buildDictionary(column, options, dict, codes);

    if (options.enableBloomFilter) {
        // For dictionary chunks the dictionary IS the distinct-value
        // set; hashing it is cheaper and gives the same filter.
        const ColumnData &distinct = use_dict ? dict : column;
        result.bloom = BloomFilter(distinct.size());
        result.bloom.insertColumn(distinct);
    }
    result.encoding =
        use_dict ? ChunkEncoding::kDictionary : ChunkEncoding::kPlain;

    Bytes &out = result.bytes;
    BinaryWriter writer(out);
    writer.putU8(static_cast<uint8_t>(result.encoding));
    writer.putU8(static_cast<uint8_t>(options.compression));
    writer.putVarU64(column.size());

    size_t page_values = std::max<size_t>(1, options.pageValueCount);

    if (use_dict) {
        Bytes dict_plain = plainEncode(dict);
        Bytes dict_page = codec::compress(options.compression, dict_plain);
        writer.putVarU64(dict.size());
        writer.putLengthPrefixed(dict_page);

        int width = codec::bitWidthFor(dict.size() - 1);
        writer.putU8(static_cast<uint8_t>(width));

        size_t num_pages = (codes.size() + page_values - 1) / page_values;
        writer.putVarU64(num_pages);
        for (size_t p = 0; p < num_pages; ++p) {
            size_t begin = p * page_values;
            size_t end = std::min(codes.size(), begin + page_values);
            std::vector<uint64_t> page_codes(codes.begin() + begin,
                                             codes.begin() + end);
            Bytes rle = codec::rleEncode(page_codes, width);
            Bytes page = codec::compress(options.compression, rle);
            writer.putVarU64(end - begin);
            writer.putLengthPrefixed(page);
        }
        // The uncompressed form a projection would ship: plain values.
        result.plainSize = plainEncode(column).size();
    } else {
        size_t num_pages = (column.size() + page_values - 1) / page_values;
        writer.putVarU64(num_pages);
        uint64_t plain_total = 0;
        for (size_t p = 0; p < num_pages; ++p) {
            size_t begin = p * page_values;
            size_t end = std::min(column.size(), begin + page_values);
            Bytes plain = plainEncodeRange(column, begin, end);
            plain_total += plain.size();
            Bytes page = codec::compress(options.compression, plain);
            writer.putVarU64(end - begin);
            writer.putLengthPrefixed(page);
        }
        result.plainSize = plain_total;
    }
    return result;
}

Result<ColumnData>
decodeChunk(Slice bytes, PhysicalType type)
{
    BinaryReader reader(bytes);

    auto enc_tag = reader.getU8();
    if (!enc_tag.isOk())
        return enc_tag.status();
    if (enc_tag.value() > 1)
        return Status::corruption("bad chunk encoding tag");
    auto encoding = static_cast<ChunkEncoding>(enc_tag.value());

    auto comp_tag = reader.getU8();
    if (!comp_tag.isOk())
        return comp_tag.status();
    if (comp_tag.value() > 1)
        return Status::corruption("bad chunk compression tag");
    auto compression = static_cast<Compression>(comp_tag.value());

    auto count = reader.getVarU64();
    if (!count.isOk())
        return count.status();
    // Structural sanity bound so corrupt headers cannot trigger huge
    // allocations downstream.
    constexpr uint64_t kMaxChunkValues = 1ULL << 28;
    if (count.value() == 0 || count.value() > kMaxChunkValues)
        return Status::corruption("implausible chunk value count");

    ColumnData out(type);

    if (encoding == ChunkEncoding::kDictionary) {
        auto dict_count = reader.getVarU64();
        if (!dict_count.isOk())
            return dict_count.status();
        if (dict_count.value() == 0 ||
            dict_count.value() > count.value())
            return Status::corruption("implausible dictionary size");
        auto dict_page = reader.getLengthPrefixed();
        if (!dict_page.isOk())
            return dict_page.status();
        auto dict_plain = codec::decompress(compression, dict_page.value());
        if (!dict_plain.isOk())
            return dict_plain.status();
        auto dict = plainDecode(dict_plain.value(), type,
                                dict_count.value());
        if (!dict.isOk())
            return dict.status();

        auto width = reader.getU8();
        if (!width.isOk())
            return width.status();
        if (width.value() > 32)
            return Status::corruption("bad dictionary code width");

        auto num_pages = reader.getVarU64();
        if (!num_pages.isOk())
            return num_pages.status();
        uint64_t decoded = 0;
        for (uint64_t p = 0; p < num_pages.value(); ++p) {
            auto page_count = reader.getVarU64();
            if (!page_count.isOk())
                return page_count.status();
            auto page = reader.getLengthPrefixed();
            if (!page.isOk())
                return page.status();
            auto rle = codec::decompress(compression, page.value());
            if (!rle.isOk())
                return rle.status();
            auto codes = codec::rleDecode(rle.value(), width.value(),
                                          page_count.value());
            if (!codes.isOk())
                return codes.status();
            for (uint64_t code : codes.value()) {
                if (code >= dict.value().size())
                    return Status::corruption("dictionary code out of range");
                out.appendValue(dict.value().valueAt(code));
            }
            decoded += page_count.value();
        }
        if (decoded != count.value())
            return Status::corruption("chunk value count mismatch");
    } else {
        auto num_pages = reader.getVarU64();
        if (!num_pages.isOk())
            return num_pages.status();
        uint64_t decoded = 0;
        for (uint64_t p = 0; p < num_pages.value(); ++p) {
            auto page_count = reader.getVarU64();
            if (!page_count.isOk())
                return page_count.status();
            auto page = reader.getLengthPrefixed();
            if (!page.isOk())
                return page.status();
            auto plain = codec::decompress(compression, page.value());
            if (!plain.isOk())
                return plain.status();
            BinaryReader page_reader{Slice(plain.value())};
            FUSION_RETURN_IF_ERROR(plainDecodeInto(
                page_reader, type, page_count.value(), out));
            decoded += page_count.value();
        }
        if (decoded != count.value())
            return Status::corruption("chunk value count mismatch");
    }
    return out;
}

} // namespace fusion::format
