#include "object_store.h"

#include <algorithm>
#include <array>
#include <set>

#include "common/thread_pool.h"
#include "common/walltime.h"
#include "format/chunk_codec.h"
#include "format/reader.h"
#include "format/writer.h"
#include "lifecycle/restripe.h"
#include "query/cost.h"
#include "query/eval.h"
#include "sim/fault.h"

namespace fusion::store {

namespace {

ec::ReedSolomon
makeCode(size_t n, size_t k)
{
    auto rs = ec::ReedSolomon::create(n, k);
    FUSION_CHECK_MSG(rs.isOk(), "bad (n, k) erasure-code parameters");
    return std::move(rs.value());
}

} // namespace

ObjectStore::ObjectStore(sim::Cluster &cluster, const StoreOptions &options)
    : cluster_(cluster), options_(options),
      rs_(makeCode(options.n, options.k)), chunkCache_(options.cacheBytes)
{
    FUSION_CHECK_MSG(cluster.numNodes() >= options.n,
                     "cluster smaller than erasure-code width n");

    // Spans carry the owning cluster's simulated clock; wall time never
    // appears in a trace.
    obs_.tracer.setClock(
        [engine = &cluster_.engine()]() { return engine->now(); });

    obs::MetricsRegistry &reg = obs_.metrics;
    ins_.readRetries = &reg.counter("fault.read_retries");
    ins_.readTimeouts = &reg.counter("fault.read_timeouts");
    ins_.parityReconstructions =
        &reg.counter("fault.parity_reconstructions");
    ins_.degradedChunkReads = &reg.counter("fault.degraded_chunk_reads");
    ins_.pushdownFallbacks = &reg.counter("fault.pushdown_fallbacks");
    ins_.backoffSeconds = &reg.doubleCounter("fault.backoff_seconds");
    ins_.cacheDecodeHit = &reg.counter("cache.decode.hit");
    ins_.cacheDecodeMiss = &reg.counter("cache.decode.miss");
    ins_.cacheBitmapHit = &reg.counter("cache.bitmap.hit");
    ins_.cacheBitmapMiss = &reg.counter("cache.bitmap.miss");
    ins_.cachePlanHit = &reg.counter("cache.plan.hit");
    ins_.cachePlanMiss = &reg.counter("cache.plan.miss");
    ins_.wireFilterRequest = &reg.counter("wire.filter.request_bytes");
    ins_.wireFilterReply = &reg.counter("wire.filter.reply_bytes");
    ins_.wireProjectionRequest =
        &reg.counter("wire.projection.request_bytes");
    ins_.wireProjectionReply = &reg.counter("wire.projection.reply_bytes");
    ins_.wireClientRequest = &reg.counter("wire.client.request_bytes");
    ins_.wireClientReply = &reg.counter("wire.client.reply_bytes");
    // Hot-chunk cache tier counters are registered even when the cache
    // is disabled so metric snapshots keep a stable key set.
    ins_.cacheChunkHits = &reg.counter("cache.chunk.hits");
    ins_.cacheChunkMisses = &reg.counter("cache.chunk.misses");
    ins_.cacheChunkEvictions = &reg.counter("cache.chunk.evictions");
    ins_.cacheChunkBytes = &reg.gauge("cache.chunk.bytes");
    chunkCache_.bindMetrics(ins_.cacheChunkHits, ins_.cacheChunkMisses,
                            ins_.cacheChunkEvictions, ins_.cacheChunkBytes);
    // 100 us .. ~10 s in x2 steps covers the simulated latency range.
    ins_.queryLatency = &reg.histogram(
        "query.latency_seconds", obs::exponentialBounds(1e-4, 2.0, 17));

    // Windowed telemetry (obs/timeseries.h): per-node health scores
    // feeding the adaptive retry budget and the scheduler's load-shed
    // term, the chunk-heat table and the crash flight recorder. Health
    // gauges are registered for every node up front so snapshots keep
    // a stable key set.
    obs_.telemetry.health().configure(cluster_.numNodes(),
                                      obs_.telemetry.options());
    lastBand_.assign(cluster_.numNodes(),
                     obs::NodeHealthTracker::Band::kHealthy);
    ins_.healthGauges.reserve(cluster_.numNodes());
    for (size_t node = 0; node < cluster_.numNodes(); ++node) {
        obs::Gauge &gauge =
            reg.gauge("health.node." + std::to_string(node));
        gauge.set(1.0);
        ins_.healthGauges.push_back(&gauge);
    }
    ins_.healthUpdates = &reg.counter("health.updates");
    ins_.flightDumps = &reg.counter("health.flight_dumps");
    // Lifecycle instruments are registered even when the store never
    // appends so metric snapshots keep a stable key set.
    ins_.appendAppends = &reg.counter("append.appends");
    ins_.appendRows = &reg.counter("append.rows");
    ins_.appendBytes = &reg.counter("append.segment_bytes");
    ins_.appendDeltaScans = &reg.counter("append.delta_scans");
    ins_.compactionRuns = &reg.counter("compaction.runs");
    ins_.compactionAborts = &reg.counter("compaction.aborts");
    ins_.compactionFoldedSegments =
        &reg.counter("compaction.folded_segments");
    ins_.compactionBytesIn = &reg.counter("compaction.bytes_in");
    ins_.compactionBytesOut = &reg.counter("compaction.bytes_out");
    ins_.compactionHotColocated =
        &reg.counter("compaction.hot_colocated_chunks");
    compactor_ =
        std::make_unique<lifecycle::Compactor>(*this, options_.compaction);
    faultListenerId_ = cluster_.addFaultListener(
        [this](double seconds, int kind, size_t node,
               double slow_factor) {
            onFaultEvent(seconds, kind, node, slow_factor);
        });
}

ObjectStore::~ObjectStore()
{
    cluster_.removeFaultListener(faultListenerId_);
}

void
ObjectStore::recordQueryLatency(double now_seconds,
                                double latency_seconds)
{
    ins_.queryLatency->observe(latency_seconds);
    obs_.telemetry.window("query.latency_seconds")
        .observe(now_seconds, latency_seconds);
    obs_.telemetry.flight().record(
        now_seconds, "query",
        "\"latency_seconds\": " + obs::formatDouble(latency_seconds));
}

ObjectStore::FaultStats
ObjectStore::faultStats() const
{
    FaultStats out;
    out.readRetries = ins_.readRetries->value();
    out.readTimeouts = ins_.readTimeouts->value();
    out.parityReconstructions = ins_.parityReconstructions->value();
    out.degradedChunkReads = ins_.degradedChunkReads->value();
    out.pushdownFallbacks = ins_.pushdownFallbacks->value();
    out.backoffSeconds = ins_.backoffSeconds->value();
    return out;
}

void
ObjectStore::resetFaultStats()
{
    ins_.readRetries->reset();
    ins_.readTimeouts->reset();
    ins_.parityReconstructions->reset();
    ins_.degradedChunkReads->reset();
    ins_.pushdownFallbacks->reset();
    ins_.backoffSeconds->reset();
}

bool
ObjectStore::contains(const std::string &name) const
{
    return manifests_.count(name) > 0;
}

Result<const ObjectManifest *>
ObjectStore::manifest(const std::string &name) const
{
    auto it = manifests_.find(name);
    if (it == manifests_.end())
        return Status::notFound("no object named '" + name + "'");
    return &it->second;
}

Status
ObjectStore::deleteObject(const std::string &name)
{
    auto it = manifests_.find(name);
    if (it == manifests_.end())
        return Status::notFound("no object named '" + name + "'");
    const ObjectManifest &old = it->second;
    for (size_t s = 0; s < old.stripeNodes.size(); ++s) {
        for (size_t b = 0; b < old.stripeNodes[s].size(); ++b)
            cluster_.node(old.stripeNodes[s][b])
                .dropBlock(old.blockKey(s, b));
    }
    auto log = deltaLogs_.find(name);
    if (log != deltaLogs_.end()) {
        dropDeltaBlocks(log->second, UINT64_MAX);
        deltaLogs_.erase(log);
    }
    compactor_->noteDeleted(name);
    // No stale state may survive the name: residency, memoized results
    // and the chunk-heat entries (including "@gN" / "#delta" aliases)
    // all go — a later re-stripe or fusion_top must never see them.
    chunkCache_.invalidateObject(name);
    purgeObjectMemo(name);
    obs_.telemetry.heat().evictObject(name);
    manifests_.erase(it);
    return Status::ok();
}

std::vector<std::string>
ObjectStore::listObjects() const
{
    std::vector<std::string> names;
    names.reserve(manifests_.size());
    for (const auto &[name, manifest] : manifests_)
        names.push_back(name);
    std::sort(names.begin(), names.end());
    return names;
}

ObjectStore::StoreStats
ObjectStore::stats() const
{
    StoreStats out;
    out.objectCount = manifests_.size();
    uint64_t data_bytes = 0, extra_bytes = 0;
    for (const auto &[name, manifest] : manifests_) {
        out.logicalBytes += manifest.objectSize;
        out.storedBytes += manifest.layout.storedBytes();
        data_bytes += manifest.layout.dataBytes;
        extra_bytes += manifest.layout.paddingBytes +
                       manifest.layout.parityBytes();
    }
    if (data_bytes > 0) {
        double optimal = static_cast<double>(data_bytes) *
                         static_cast<double>(options_.n - options_.k) /
                         static_cast<double>(options_.k);
        out.overheadVsOptimal =
            (static_cast<double>(extra_bytes) - optimal) / optimal;
    }
    out.minNodeBytes = UINT64_MAX;
    for (size_t i = 0; i < cluster_.numNodes(); ++i) {
        uint64_t bytes = cluster_.node(i).storedBytes();
        out.minNodeBytes = std::min(out.minNodeBytes, bytes);
        out.maxNodeBytes = std::max(out.maxNodeBytes, bytes);
    }
    if (out.minNodeBytes == UINT64_MAX)
        out.minNodeBytes = 0;
    return out;
}

Result<PutResult>
ObjectStore::put(const std::string &name, Bytes object)
{
    if (object.empty())
        return Status::invalidArgument("cannot store an empty object");
    // Layout + encode + placement run inside one simulated instant, so
    // this span is zero-duration in simulated time; putAsync wraps the
    // streaming write path in a span that does advance the clock.
    obs::Tracer::Scoped put_span(obs_.tracer, "put");
    if (contains(name)) {
        // Updates are fresh inserts (paper §5): drop the old placement.
        FUSION_RETURN_IF_ERROR(deleteObject(name));
    }
    auto stored = buildStoredObject(name, object, 0, {});
    if (!stored.isOk())
        return stored.status();
    manifests_.emplace(name, std::move(stored.value().manifest));
    return stored.value().result;
}

Result<ObjectStore::StoredObject>
ObjectStore::buildStoredObject(const std::string &name, const Bytes &object,
                               uint64_t generation,
                               const std::vector<uint32_t> &hot_chunks)
{
    ObjectManifest manifest;
    manifest.name = name;
    manifest.generation = generation;
    manifest.hotChunkIds = hot_chunks;
    manifest.objectSize = object.size();

    // Identify column chunk boundaries from the format footer.
    auto reader = format::FileReader::open(Slice(object));
    if (reader.isOk()) {
        manifest.isFpax = true;
        manifest.fileMeta = reader.value().metadata();
        uint32_t id = 0;
        uint64_t chunks_end = sizeof(format::kFileMagic);
        for (const auto *chunk : manifest.fileMeta.allChunks()) {
            manifest.extents.push_back(
                {id++, chunk->offset, chunk->storedSize});
            chunks_end =
                std::max(chunks_end, chunk->offset + chunk->storedSize);
        }
        // File header and footer become pseudo-chunks so Get can
        // reassemble the byte-identical object.
        manifest.extents.push_back({id, 0, sizeof(format::kFileMagic)});
        manifest.metaChunkIds.push_back(id++);
        manifest.extents.push_back(
            {id, chunks_end, manifest.objectSize - chunks_end});
        manifest.metaChunkIds.push_back(id++);
    } else {
        // Opaque object: one extent; format-unaware coding applies.
        manifest.extents.push_back({0, 0, manifest.objectSize});
    }

    double layout_start = walltime::monotonicSeconds();
    manifest.layout = hot_chunks.empty()
                          ? buildLayout(manifest.extents)
                          : buildRestripeLayout(manifest.extents, hot_chunks);
    double layout_seconds = walltime::monotonicSeconds() - layout_start;
    FUSION_RETURN_IF_ERROR(manifest.layout.validate(manifest.extents));

    // Place each stripe on n distinct random nodes (paper §4.2).
    std::vector<uint64_t> node_bytes(cluster_.numNodes(), 0);
    for (size_t s = 0; s < manifest.layout.stripes.size(); ++s)
        manifest.stripeNodes.push_back(cluster_.chooseNodes(options_.n));

    // Materialize data blocks and encode parity, one independent task
    // per stripe (reads only the const object + layout; writes only
    // its own slot, so any thread count produces identical stripes).
    // Node placement and storage mutation stay on the calling thread.
    const size_t num_stripes = manifest.layout.stripes.size();
    uint64_t encode_span = obs_.tracer.beginSpan(
        "stripe_encode", "\"object\": \"" + manifest.shareName() +
                             "\", \"stripes\": " +
                             std::to_string(num_stripes));
    std::vector<std::vector<Bytes>> stripe_blocks(num_stripes);
    ThreadPool::shared().parallelFor(0, num_stripes, [&](size_t s) {
        const fac::StripeLayout &stripe = manifest.layout.stripes[s];
        std::vector<Bytes> data_blocks(options_.k);
        for (size_t b = 0; b < stripe.dataBlocks.size(); ++b) {
            Bytes &block = data_blocks[b];
            block.reserve(stripe.dataBlocks[b].size());
            for (const auto &piece : stripe.dataBlocks[b].pieces) {
                if (piece.isPadding()) {
                    block.insert(block.end(), piece.size, 0);
                } else {
                    const auto &extent = manifest.extents.at(piece.chunkId);
                    const uint8_t *src = object.data() + extent.offset +
                                         piece.chunkOffset;
                    block.insert(block.end(), src, src + piece.size);
                }
            }
        }
        std::vector<Slice> views;
        views.reserve(options_.k);
        for (const auto &block : data_blocks)
            views.emplace_back(block);
        std::vector<Bytes> parity = rs_.encodeParity(views);
        stripe_blocks[s] = std::move(data_blocks);
        for (auto &p : parity)
            stripe_blocks[s].push_back(std::move(p));
    });
    obs_.tracer.endSpan(encode_span);

    for (size_t s = 0; s < num_stripes; ++s) {
        for (size_t b = 0; b < options_.n; ++b) {
            Bytes &bytes = stripe_blocks[s][b];
            if (bytes.empty())
                continue; // implicit zero block
            size_t node_id = manifest.stripeNodes[s][b];
            node_bytes[node_id] += bytes.size();
            cluster_.node(node_id).putBlock(manifest.blockKey(s, b),
                                            std::move(bytes));
        }
    }
    manifest.buildLocationMap();

    PutResult result;
    result.layoutKind = manifest.layout.kind;
    result.overheadVsOptimal = manifest.layout.overheadVsOptimal();
    result.objectBytes = manifest.objectSize;
    result.storedBytes = manifest.layout.storedBytes();
    result.numChunks = manifest.numDataChunks();
    result.numStripes = manifest.layout.stripes.size();
    result.splitFraction = [&] {
        // Split statistics over column chunks only.
        auto spans = manifest.layout.chunkSpans(manifest.extents.size());
        size_t split = 0, total = manifest.numDataChunks();
        for (size_t c = 0; c < total; ++c)
            split += spans[c] > 1 ? 1 : 0;
        return total ? static_cast<double>(split) / total : 0.0;
    }();
    result.layoutSeconds = layout_seconds;

    // Analytic put-time model: client uploads to the coordinator, which
    // streams blocks to nodes in parallel; the slowest node bounds it.
    const sim::NodeConfig &nc = cluster_.config().node;
    double client_transfer = static_cast<double>(manifest.objectSize) /
                                 nc.nicBandwidth +
                             nc.rpcLatency;
    double slowest_node = 0.0;
    for (uint64_t bytes : node_bytes) {
        double t = static_cast<double>(bytes) / nc.nicBandwidth +
                   static_cast<double>(bytes) / nc.diskBandwidth;
        slowest_node = std::max(slowest_node, t);
    }
    // Simulated time must stay reproducible, so the wall-clock layout
    // measurement is reported separately (layoutSeconds) and never
    // added here — mixing it in would make put timings (and anything
    // downstream of them) vary run to run with machine load.
    result.simulatedPutSeconds = client_transfer + slowest_node;

    StoredObject out;
    out.manifest = std::move(manifest);
    out.result = result;
    return out;
}

void
ObjectStore::putAsync(const std::string &name, Bytes object,
                      std::function<void(Result<PutResult>)> done)
{
    uint64_t put_span = obs_.tracer.beginSpan(
        "put", "\"object\": \"" + name + "\", \"bytes\": " +
                   std::to_string(object.size()));
    auto result = put(name, std::move(object));
    if (!result.isOk()) {
        obs_.tracer.endSpan(put_span);
        done(result.status());
        return;
    }
    const ObjectManifest &manifest = manifests_.at(name);

    // Per-node bytes this put wrote (data at true size, parity full).
    std::vector<uint64_t> node_bytes(cluster_.numNodes(), 0);
    for (size_t s = 0; s < manifest.layout.stripes.size(); ++s) {
        const fac::StripeLayout &stripe = manifest.layout.stripes[s];
        for (size_t b = 0; b < options_.n; ++b) {
            uint64_t size = (b < options_.k)
                                ? (b < stripe.dataBlocks.size()
                                       ? stripe.dataBlocks[b].size()
                                       : 0)
                                : stripe.blockSize();
            node_bytes[manifest.stripeNodes[s][b]] += size;
        }
    }

    sim::StorageNode *client = &cluster_.client();
    sim::StorageNode *coord = &cluster_.node(cluster_.coordinatorFor(name));
    const double start = cluster_.engine().now();
    const double seek = cluster_.config().node.diskSeekLatency;

    auto shared = std::make_shared<PutResult>(std::move(result.value()));
    auto stream_blocks = [this, shared, node_bytes, coord, seek, start,
                          put_span, done = std::move(done)]() mutable {
        auto join = std::make_shared<sim::Join>(
            node_bytes.size(),
            [this, shared, start, put_span, done = std::move(done)]() {
                shared->simulatedPutSeconds =
                    cluster_.engine().now() - start;
                obs_.tracer.endSpan(put_span);
                done(*shared);
            });
        for (size_t node_id = 0; node_id < node_bytes.size(); ++node_id) {
            uint64_t bytes = node_bytes[node_id];
            sim::StorageNode *node = &cluster_.node(node_id);
            if (bytes == 0 || node == coord) {
                // Local blocks skip the network but still hit the disk.
                node->disk().acquire(static_cast<double>(bytes),
                                     bytes ? seek : 0.0,
                                     [join]() { join->signal(); });
                continue;
            }
            cluster_.transfer(*coord, *node, bytes,
                              [node, bytes, seek, join]() {
                                  node->disk().acquire(
                                      static_cast<double>(bytes), seek,
                                      [join]() { join->signal(); });
                              });
        }
    };
    cluster_.transfer(*client, *coord, shared->objectBytes,
                      std::move(stream_blocks));
}

// ---- object lifecycle (src/lifecycle/) ----

uint64_t
ObjectStore::baseRowGroupRows(const ObjectManifest &manifest) const
{
    // The first row group is always full-size (only the last may be
    // short), so it recovers the base's writer option; the merged
    // materialization and the compacted base re-serialize under it and
    // therefore stay byte-identical to each other.
    const auto &groups = manifest.fileMeta.rowGroups;
    return groups.empty() ? (uint64_t{1} << 16) : groups.front().numRows;
}

Result<AppendResult>
ObjectStore::append(const std::string &name, const format::Table &rows)
{
    auto m = manifest(name);
    if (!m.isOk())
        return m.status();
    const ObjectManifest &base = *m.value();
    if (!base.isFpax)
        return Status::failedPrecondition(
            "append requires an analytics (fpax) object");
    if (rows.numRows() == 0)
        return Status::invalidArgument("cannot append an empty batch");
    if (!(rows.schema() == base.fileMeta.schema))
        return Status::invalidArgument(
            "appended schema does not match object '" + name + "'");
    FUSION_RETURN_IF_ERROR(rows.validate());

    // Like put(), the synchronous form runs in one simulated instant;
    // appendAsync wraps the streaming replication in a timed span.
    obs::Tracer::Scoped span(obs_.tracer, "append");

    format::WriterOptions writer_options;
    writer_options.rowGroupRows = baseRowGroupRows(base);
    auto written = format::writeTable(rows, writer_options);
    if (!written.isOk())
        return written.status();

    lifecycle::DeltaLog &log = deltaLogs_[name];
    lifecycle::DeltaSegment segment;
    segment.rows = rows.numRows();
    segment.bytes = written.value().bytes.size();
    segment.appendSeconds = cluster_.engine().now();
    segment.blockKey =
        base.shareName() + "#d" + std::to_string(log.nextSeq());
    segment.meta = written.value().metadata;
    const size_t replicas =
        std::min(options_.deltaReplicas, cluster_.numNodes());
    segment.replicaNodes = cluster_.chooseNodes(replicas);
    for (size_t node_id : segment.replicaNodes)
        cluster_.node(node_id).putBlock(segment.blockKey,
                                        Bytes(written.value().bytes));

    AppendResult result;
    result.rows = segment.rows;
    result.segmentBytes = segment.bytes;
    result.replicas = replicas;

    // Analytic ingest model: client uploads to the coordinator, which
    // replicates in parallel; one replica's NIC + disk path bounds it.
    const sim::NodeConfig &nc = cluster_.config().node;
    result.simulatedAppendSeconds =
        static_cast<double>(segment.bytes) / nc.nicBandwidth +
        nc.rpcLatency +
        static_cast<double>(segment.bytes) / nc.nicBandwidth +
        static_cast<double>(segment.bytes) / nc.diskBandwidth;

    result.seq = log.append(std::move(segment));
    ins_.appendAppends->add(1);
    ins_.appendRows->add(result.rows);
    ins_.appendBytes->add(result.segmentBytes);
    compactor_->noteAppend(name);
    return result;
}

void
ObjectStore::appendAsync(const std::string &name, const format::Table &rows,
                         std::function<void(Result<AppendResult>)> done)
{
    uint64_t span = obs_.tracer.beginSpan(
        "append", "\"object\": \"" + name + "\", \"rows\": " +
                      std::to_string(rows.numRows()));
    auto result = append(name, rows);
    if (!result.isOk()) {
        obs_.tracer.endSpan(span);
        done(result.status());
        return;
    }
    auto shared = std::make_shared<AppendResult>(result.value());
    const lifecycle::DeltaSegment &segment =
        deltaLogs_.at(name).segments().back();
    const std::vector<size_t> replicas = segment.replicaNodes;
    const uint64_t bytes = segment.bytes;

    sim::StorageNode *client = &cluster_.client();
    sim::StorageNode *coord = &cluster_.node(cluster_.coordinatorFor(name));
    const double start = cluster_.engine().now();
    const double seek = cluster_.config().node.diskSeekLatency;

    auto stream = [this, shared, replicas, coord, bytes, seek, start, span,
                   done = std::move(done)]() mutable {
        auto join = std::make_shared<sim::Join>(
            replicas.size(),
            [this, shared, start, span, done = std::move(done)]() {
                shared->simulatedAppendSeconds =
                    cluster_.engine().now() - start;
                obs_.tracer.endSpan(span);
                done(*shared);
            });
        for (size_t node_id : replicas) {
            sim::StorageNode *node = &cluster_.node(node_id);
            if (node == coord) {
                node->disk().acquire(static_cast<double>(bytes), seek,
                                     [join]() { join->signal(); });
                continue;
            }
            cluster_.transfer(*coord, *node, bytes,
                              [node, bytes, seek, join]() {
                                  node->disk().acquire(
                                      static_cast<double>(bytes), seek,
                                      [join]() { join->signal(); });
                              });
        }
    };
    cluster_.transfer(*client, *coord, bytes, std::move(stream));
}

const lifecycle::DeltaLog *
ObjectStore::deltaLog(const std::string &name) const
{
    auto it = deltaLogs_.find(name);
    return it == deltaLogs_.end() ? nullptr : &it->second;
}

double
ObjectStore::lifecycleNowSeconds() const
{
    return cluster_.engine().now();
}

void
ObjectStore::lifecycleScheduleAfter(double delay_seconds,
                                    std::function<void()> fn)
{
    cluster_.engine().schedule(delay_seconds, std::move(fn));
}

lifecycle::DeltaLogStats
ObjectStore::deltaLogStats(const std::string &object) const
{
    auto it = deltaLogs_.find(object);
    if (it == deltaLogs_.end())
        return {};
    lifecycle::DeltaLogStats stats = it->second.stats();
    // Modeled fold duration: base + deltas stream off disk and across
    // the wire once, and the re-encoded base streams back out.
    uint64_t in_bytes = stats.bytes;
    auto m = manifests_.find(object);
    if (m != manifests_.end())
        in_bytes += m->second.objectSize;
    const sim::NodeConfig &nc = cluster_.config().node;
    stats.estimatedCompactSeconds =
        2.0 * static_cast<double>(in_bytes) *
        (1.0 / nc.diskBandwidth + 1.0 / nc.nicBandwidth);
    return stats;
}

Status
ObjectStore::compactObject(const std::string &name)
{
    auto it = deltaLogs_.find(name);
    if (it == deltaLogs_.end() || it->second.empty())
        return Status::ok();
    return compactObjectNow(name, it->second.lastSeq());
}

Result<Bytes>
ObjectStore::readDeltaSegment(const lifecycle::DeltaSegment &segment)
{
    for (size_t node_id : segment.replicaNodes) {
        const sim::StorageNode &node = cluster_.node(node_id);
        if (!nodeResponsive(node))
            continue;
        const Bytes *block = node.findBlock(segment.blockKey);
        if (block != nullptr)
            return *block;
    }
    return Status::unavailable(
        "no responsive replica holds delta segment '" + segment.blockKey +
        "'");
}

Result<format::Table>
ObjectStore::materializeMergedTable(
    const ObjectManifest &manifest,
    const std::vector<const lifecycle::DeltaSegment *> &segments)
{
    // Base bytes via the chunk read path: degraded-read capable, so a
    // merge (or compaction) survives dead nodes under the EC budget.
    Bytes base(manifest.objectSize);
    for (const auto &extent : manifest.extents) {
        auto chunk = readChunkBytes(manifest, extent.id);
        if (!chunk.isOk())
            return chunk.status();
        std::copy(chunk.value().begin(), chunk.value().end(),
                  base.begin() + extent.offset);
    }
    auto reader = format::FileReader::open(Slice(base));
    if (!reader.isOk())
        return reader.status();
    auto table = reader.value().readTable();
    if (!table.isOk())
        return table.status();
    format::Table merged = std::move(table.value());
    for (const lifecycle::DeltaSegment *segment : segments) {
        auto bytes = readDeltaSegment(*segment);
        if (!bytes.isOk())
            return bytes.status();
        auto delta_reader = format::FileReader::open(Slice(bytes.value()));
        if (!delta_reader.isOk())
            return delta_reader.status();
        auto delta = delta_reader.value().readTable();
        if (!delta.isOk())
            return delta.status();
        for (size_t col = 0; col < merged.numColumns(); ++col) {
            const format::ColumnData &src = delta.value().column(col);
            for (size_t i = 0; i < src.size(); ++i)
                merged.column(col).appendValue(src.valueAt(i));
        }
    }
    return merged;
}

Result<Bytes>
ObjectStore::materializeMergedBytes(const ObjectManifest &manifest,
                                    const lifecycle::DeltaLog &log)
{
    std::vector<const lifecycle::DeltaSegment *> segments;
    segments.reserve(log.size());
    for (const auto &segment : log.segments())
        segments.push_back(&segment);
    auto merged = materializeMergedTable(manifest, segments);
    if (!merged.isOk())
        return merged.status();
    format::WriterOptions writer_options;
    writer_options.rowGroupRows = baseRowGroupRows(manifest);
    auto written = format::writeTable(merged.value(), writer_options);
    if (!written.isOk())
        return written.status();
    return std::move(written.value().bytes);
}

void
ObjectStore::dropDeltaBlocks(const lifecycle::DeltaLog &log,
                             uint64_t up_to_seq)
{
    for (const auto &segment : log.segments()) {
        if (segment.seq > up_to_seq)
            continue;
        for (size_t node_id : segment.replicaNodes)
            cluster_.node(node_id).dropBlock(segment.blockKey);
    }
}

void
ObjectStore::purgeObjectMemo(const std::string &name)
{
    for (auto it = decodeCache_.begin(); it != decodeCache_.end();) {
        if (it->first.first == name)
            it = decodeCache_.erase(it);
        else
            ++it;
    }
    for (auto it = bitmapCache_.begin(); it != bitmapCache_.end();) {
        if (std::get<0>(it->first) == name)
            it = bitmapCache_.erase(it);
        else
            ++it;
    }
    const std::string prefix = name + "|";
    for (auto it = planCache_.begin(); it != planCache_.end();) {
        if (it->first.compare(0, prefix.size(), prefix) == 0)
            it = planCache_.erase(it);
        else
            ++it;
    }
}

Status
ObjectStore::compactObjectNow(const std::string &object, uint64_t seal_seq)
{
    auto m = manifests_.find(object);
    if (m == manifests_.end()) {
        // Deleted while the fold was in flight: a successful no-op.
        deltaLogs_.erase(object);
        return Status::ok();
    }
    auto log_it = deltaLogs_.find(object);
    if (log_it == deltaLogs_.end() || log_it->second.empty())
        return Status::ok();
    lifecycle::DeltaLog &log = log_it->second;

    std::vector<const lifecycle::DeltaSegment *> sealed;
    uint64_t sealed_bytes = 0;
    for (const auto &segment : log.segments()) {
        if (segment.seq <= seal_seq) {
            sealed.push_back(&segment);
            sealed_bytes += segment.bytes;
        }
    }
    if (sealed.empty())
        return Status::ok();

    const ObjectManifest &old = m->second;
    uint64_t span = obs_.tracer.beginSpan(
        "compaction", "\"object\": \"" + object + "\", \"segments\": " +
                          std::to_string(sealed.size()) +
                          ", \"generation\": " +
                          std::to_string(old.generation + 1));

    // Every fallible step runs before the swap point below, so an
    // abort (e.g. too many nodes down to read the base) leaves the old
    // generation and the full delta log untouched and readable.
    auto merged = materializeMergedTable(old, sealed);
    if (!merged.isOk()) {
        ins_.compactionAborts->add(1);
        obs_.tracer.endSpan(span);
        return merged.status();
    }
    format::WriterOptions writer_options;
    writer_options.rowGroupRows = baseRowGroupRows(old);
    auto written = format::writeTable(merged.value(), writer_options);
    if (!written.isOk()) {
        ins_.compactionAborts->add(1);
        obs_.tracer.endSpan(span);
        return written.status();
    }

    // Heat-driven re-stripe: the old generation's access history picks
    // the columns whose chunks the new layout should co-locate.
    lifecycle::RestripeDecision decision = lifecycle::decideRestripe(
        obs_.telemetry.heat(), cluster_.engine().now(), old.shareName(),
        old.fileMeta.schema.numColumns(), old.numDataChunks(),
        written.value().metadata.numRowGroups());

    auto stored = buildStoredObject(object, written.value().bytes,
                                    old.generation + 1, decision.hotChunks);
    if (!stored.isOk()) {
        ins_.compactionAborts->add(1);
        obs_.tracer.endSpan(span);
        return stored.status();
    }

    // ---- the swap: drop old generation + sealed deltas, publish ----
    const uint64_t bytes_in = old.objectSize + sealed_bytes;
    for (size_t s = 0; s < old.stripeNodes.size(); ++s) {
        for (size_t b = 0; b < old.stripeNodes[s].size(); ++b)
            cluster_.node(old.stripeNodes[s][b])
                .dropBlock(old.blockKey(s, b));
    }
    dropDeltaBlocks(log, seal_seq);
    log.dropUpTo(seal_seq);
    // The superseded generation's chunks must not linger anywhere the
    // new layout (or fusion_top) consults: residency, memoized results
    // and the heat table (with its "@gN"/"#delta" aliases) all reset.
    chunkCache_.invalidateObject(object);
    purgeObjectMemo(object);
    obs_.telemetry.heat().evictObject(object);
    m->second = std::move(stored.value().manifest);

    ins_.compactionRuns->add(1);
    ins_.compactionFoldedSegments->add(sealed.size());
    ins_.compactionBytesIn->add(bytes_in);
    ins_.compactionBytesOut->add(m->second.objectSize);
    ins_.compactionHotColocated->add(decision.hotChunks.size());
    const std::string detail =
        "\"object\": \"" + object + "\", \"generation\": " +
        std::to_string(m->second.generation) + ", \"heat_driven\": " +
        (decision.heatDriven ? "true" : "false") + ", \"reason\": \"" +
        decision.reason + "\"";
    obs_.tracer.instant("restripe_decision", detail);
    obs_.telemetry.flight().record(cluster_.engine().now(), "compaction",
                                   detail);
    obs_.tracer.endSpan(span);
    return Status::ok();
}

Status
ObjectStore::mergeDeltaIntoPlan(const ObjectManifest &manifest,
                                const lifecycle::DeltaLog &log,
                                const query::Query &resolved,
                                QueryPlan &plan)
{
    // Base-only figures are captured before any segment folds in: the
    // AVG merge below needs the base's matched-row count.
    query::QueryResult &res = plan.outcome.result;
    const uint64_t base_matched = res.rowsMatched;

    uint64_t delta_scanned = 0, delta_matched = 0;
    std::vector<format::ColumnData> delta_values(res.columns.size());
    std::vector<obs::ExplainChunk> delta_explains;
    const double now = cluster_.engine().now();

    for (const auto &segment : log.segments()) {
        auto bytes = readDeltaSegment(segment);
        if (!bytes.isOk())
            return bytes.status();
        auto scan = lifecycle::scanDeltaSegment(
            segment.meta, Slice(bytes.value()), resolved);
        if (!scan.isOk())
            return scan.status();
        const lifecycle::DeltaScanResult &sr = scan.value();

        // One sim task per (segment, query): the first responsive
        // replica streams the touched chunks to the coordinator, which
        // pays the scan work. The share key carries the full query
        // signature — only identical queries in one admission window
        // move these bytes once.
        size_t replica = segment.replicaNodes.front();
        for (size_t node_id : segment.replicaNodes) {
            if (nodeResponsive(cluster_.node(node_id))) {
                replica = node_id;
                break;
            }
        }
        SimTask task{replica,
                     options_.requestRpcBytes,
                     sr.touchedStoredBytes,
                     0.0,
                     sr.touchedStoredBytes,
                     sr.scanWork,
                     "delta_fetch"};
        task.shareKey = "dfetch|" + manifest.shareName() + "|d" +
                        std::to_string(segment.seq) + "|" +
                        resolved.toString();
        plan.projectionTasks.push_back(std::move(task));

        // The delta log's heat rides under a "#delta" alias so base
        // chunks never inherit append-scan traffic.
        obs_.telemetry.heat().recordAccess(
            now, manifest.shareName() + "#delta",
            static_cast<uint32_t>(segment.seq));

        delta_scanned += sr.rowsScanned;
        delta_matched += sr.rowsMatched;
        for (size_t i = 0; i < sr.selected.size(); ++i) {
            const format::ColumnData &sel = sr.selected[i];
            if (sel.size() == 0)
                continue;
            if (delta_values[i].size() == 0)
                delta_values[i] = sel;
            else
                for (size_t r = 0; r < sel.size(); ++r)
                    delta_values[i].appendValue(sel.valueAt(r));
        }
        plan.clientReplyBytes += sr.clientReplyBytes;
        plan.outcome.rowGroupsScanned += sr.rowGroups.size();
        plan.outcome.rowGroupsSkipped +=
            segment.meta.numRowGroups() - sr.rowGroups.size();
        ++plan.outcome.deltaSegmentsScanned;
        ins_.appendDeltaScans->add(1);

        delta_explains.push_back(
            {static_cast<uint32_t>(segment.seq), 0, "<delta>",
             sr.rowsScanned == 0
                 ? 0.0
                 : static_cast<double>(sr.rowsMatched) /
                       static_cast<double>(sr.rowsScanned),
             1.0, "delta", "delta-log"});
    }

    res.rowsScanned += delta_scanned;
    res.rowsMatched += delta_matched;
    for (size_t i = 0; i < res.columns.size(); ++i) {
        query::ProjectionResult &col = res.columns[i];
        const query::Projection &proj = resolved.projections.at(i);
        if (!col.isAggregate) {
            for (size_t r = 0; r < delta_values[i].size(); ++r)
                col.values.appendValue(delta_values[i].valueAt(r));
            continue;
        }
        const uint64_t dn = delta_values[i].size();
        switch (proj.aggregate) {
          case query::AggregateKind::kCount:
            col.aggregateValue += static_cast<double>(
                proj.isCountStar() ? delta_matched : dn);
            break;
          case query::AggregateKind::kSum: {
            if (dn == 0)
                break;
            auto sum = query::computeAggregate(
                query::AggregateKind::kSum, delta_values[i]);
            if (!sum.isOk())
                return sum.status();
            col.aggregateValue += sum.value();
            break;
          }
          case query::AggregateKind::kAvg: {
            if (dn == 0)
                break;
            auto sum = query::computeAggregate(
                query::AggregateKind::kSum, delta_values[i]);
            if (!sum.isOk())
                return sum.status();
            col.aggregateValue =
                (col.aggregateValue * static_cast<double>(base_matched) +
                 sum.value()) /
                static_cast<double>(base_matched + dn);
            break;
          }
          case query::AggregateKind::kMin:
          case query::AggregateKind::kMax: {
            if (dn == 0)
                break;
            auto extremum =
                query::computeAggregate(proj.aggregate, delta_values[i]);
            if (!extremum.isOk())
                return extremum.status();
            if (base_matched == 0)
                col.aggregateValue = extremum.value();
            else if (proj.aggregate == query::AggregateKind::kMin)
                col.aggregateValue =
                    std::min(col.aggregateValue, extremum.value());
            else
                col.aggregateValue =
                    std::max(col.aggregateValue, extremum.value());
            break;
          }
          case query::AggregateKind::kNone:
            break;
        }
    }

    if (plan.outcome.explain != nullptr && !delta_explains.empty()) {
        // Copy-on-write: the base report may be shared with a caller.
        auto amended =
            std::make_shared<obs::QueryExplain>(*plan.outcome.explain);
        for (auto &entry : delta_explains)
            amended->projections.push_back(std::move(entry));
        plan.outcome.explain = std::move(amended);
    }
    return Status::ok();
}

bool
ObjectStore::nodeResponsive(const sim::StorageNode &node) const
{
    if (!node.alive())
        return false;
    double response =
        node.slowFactor() * cluster_.config().node.rpcLatency;
    return response <= options_.readTimeoutSeconds;
}

const Bytes *
ObjectStore::fetchBlockWithRetry(const ObjectManifest &manifest,
                                 size_t stripe, size_t block_index)
{
    size_t node_id = manifest.stripeNodes[stripe][block_index];
    const sim::StorageNode &node = cluster_.node(node_id);
    const sim::FaultInjector *faults = cluster_.faultInjector();
    const double rpc = cluster_.config().node.rpcLatency;

    double when = cluster_.engine().now();
    double backoff = options_.retryBackoffBaseSeconds;
    // The budget is fixed at read entry: a node's health band decides
    // how much backoff this read may burn before declaring the block
    // lost (healthy nodes keep the configured budget, so fault-free
    // runs are unchanged).
    const size_t budget = retryBudgetFor(node_id, when);
    obs::NodeHealthTracker &health = obs_.telemetry.health();
    for (size_t attempt = 0;; ++attempt) {
        bool responsive;
        if (attempt > 0 && faults != nullptr) {
            // A retry happens `when - now` simulated seconds in the
            // future; the armed schedule predicts health then, so a
            // flapping node can come back mid-backoff.
            responsive =
                faults->aliveAt(node_id, when) &&
                faults->slowFactorAt(node_id, when) * rpc <=
                    options_.readTimeoutSeconds;
        } else {
            responsive = nodeResponsive(node);
        }
        if (responsive) {
            // A success that closes a timeout streak is flap evidence
            // and a band transition; plain successes are free.
            const bool streak_open =
                health.consecutiveTimeouts(node_id) > 0;
            health.recordSuccess(when, node_id);
            if (streak_open)
                noteHealthEvent(when, node_id);
            const Bytes *block =
                node.findBlock(manifest.blockKey(stripe, block_index));
            if (block != nullptr)
                return block;
            return nullptr; // wiped media: retrying cannot help
        }
        if (attempt >= budget)
            break;
        ins_.readRetries->add(1);
        ins_.backoffSeconds->add(backoff);
        health.recordRetry(when, node_id, backoff);
        obs_.telemetry.flight().record(
            when, "retry",
            "\"node\": " + std::to_string(node_id) + ", \"object\": \"" +
                manifest.name + "\"");
        when += backoff;
        backoff = std::min(2.0 * backoff,
                           options_.retryBackoffMaxSeconds);
    }
    ins_.readTimeouts->add(1);
    health.recordTimeout(when, node_id);
    obs_.telemetry.flight().record(
        when, "timeout",
        "\"node\": " + std::to_string(node_id) + ", \"object\": \"" +
            manifest.name + "\"");
    noteHealthEvent(when, node_id);
    return nullptr;
}

size_t
ObjectStore::retryBudgetFor(size_t node_id, double now_seconds) const
{
    switch (obs_.telemetry.health().band(node_id, now_seconds)) {
      case obs::NodeHealthTracker::Band::kHealthy:
        return options_.maxReadRetries;
      case obs::NodeHealthTracker::Band::kFlapping:
        return options_.maxReadRetries + 2;
      case obs::NodeHealthTracker::Band::kDead:
        return options_.maxReadRetries > 0 ? 1 : 0;
    }
    return options_.maxReadRetries;
}

void
ObjectStore::noteHealthEvent(double now_seconds, size_t node_id)
{
    const obs::NodeHealthTracker &health = obs_.telemetry.health();
    ins_.healthGauges[node_id]->set(health.score(node_id, now_seconds));
    const obs::NodeHealthTracker::Band band =
        health.band(node_id, now_seconds);
    if (band == lastBand_[node_id])
        return;
    lastBand_[node_id] = band;
    ins_.healthUpdates->add(1);
    const std::string detail =
        "\"node\": " + std::to_string(node_id) + ", \"band\": \"" +
        obs::NodeHealthTracker::bandName(band) + "\"";
    obs_.tracer.instant("health_update", detail);
    obs_.telemetry.flight().record(now_seconds, "health_update", detail);
}

void
ObjectStore::dumpFlightRecord(double now_seconds, const char *reason)
{
    if (!obs_.telemetry.flight().enabled())
        return;
    obs_.telemetry.flight().dump(now_seconds, reason);
    ins_.flightDumps->add(1);
    obs_.tracer.instant("flight_record_dump",
                        std::string("\"reason\": \"") + reason + "\"");
}

void
ObjectStore::onFaultEvent(double seconds, int kind, size_t node,
                          double slow_factor)
{
    obs_.telemetry.flight().record(
        seconds, "fault",
        "\"node\": " + std::to_string(node) + ", \"kind\": \"" +
            sim::faultKindName(static_cast<sim::FaultKind>(kind)) +
            "\", \"slow_factor\": " + obs::formatDouble(slow_factor));
    if (static_cast<sim::FaultKind>(kind) == sim::FaultKind::kCrash)
        dumpFlightRecord(seconds, "node_crash");
}

Result<Bytes>
ObjectStore::recoverBlock(const ObjectManifest &manifest, size_t stripe,
                          size_t block_index)
{
    const fac::StripeLayout &layout_stripe = manifest.layout.stripes[stripe];
    const uint64_t block_size = layout_stripe.blockSize();
    const size_t k = options_.k, n = options_.n;

    auto true_size = [&](size_t b) -> uint64_t {
        if (b >= k)
            return block_size;
        if (b >= layout_stripe.dataBlocks.size())
            return 0;
        return layout_stripe.dataBlocks[b].size();
    };

    std::vector<std::optional<Bytes>> shards(n);
    size_t survivors = 0;
    for (size_t b = 0; b < n; ++b) {
        if (true_size(b) == 0) {
            shards[b] = Bytes(block_size, 0); // implicit zero block
            ++survivors;
            continue;
        }
        const sim::StorageNode &node =
            cluster_.node(manifest.stripeNodes[stripe][b]);
        if (!nodeResponsive(node))
            continue;
        const Bytes *block = node.findBlock(manifest.blockKey(stripe, b));
        if (!block)
            continue;
        Bytes padded = *block;
        padded.resize(block_size, 0);
        shards[b] = std::move(padded);
        ++survivors;
    }
    if (!rs_.recoverable(survivors))
        return Status::unavailable(
            "cannot rebuild block " + std::to_string(block_index) +
            " of stripe " + std::to_string(stripe) + " of '" +
            manifest.name + "': " + std::to_string(survivors) + " of " +
            std::to_string(n) + " shards reachable, need " +
            std::to_string(k));
    obs::Tracer::Scoped span(obs_.tracer, "reconstruct");
    FUSION_RETURN_IF_ERROR(rs_.reconstruct(shards, block_size));
    ins_.parityReconstructions->add(1);
    Bytes out = std::move(*shards[block_index]);
    out.resize(true_size(block_index));
    return out;
}

Result<Bytes>
ObjectStore::readChunkBytes(const ObjectManifest &manifest,
                            uint32_t chunk_id)
{
    const fac::ChunkExtent &extent = manifest.extents.at(chunk_id);
    Bytes out(extent.size);
    bool degraded = false;
    for (const auto &piece : manifest.chunkPieces.at(chunk_id)) {
        const Bytes *block =
            fetchBlockWithRetry(manifest, piece.stripe, piece.blockIndex);
        if (block) {
            FUSION_CHECK(piece.blockOffset + piece.size <= block->size());
            std::copy(block->begin() + piece.blockOffset,
                      block->begin() + piece.blockOffset + piece.size,
                      out.begin() + piece.chunkOffset);
        } else {
            degraded = true;
            auto recovered =
                recoverBlock(manifest, piece.stripe, piece.blockIndex);
            if (!recovered.isOk())
                return recovered.status();
            FUSION_CHECK(piece.blockOffset + piece.size <=
                         recovered.value().size());
            std::copy(recovered.value().begin() + piece.blockOffset,
                      recovered.value().begin() + piece.blockOffset +
                          piece.size,
                      out.begin() + piece.chunkOffset);
        }
    }
    if (degraded) {
        ins_.degradedChunkReads->add(1);
        // A degraded read means this chunk's canonical placement is
        // suspect; any cached copy could go stale once repair rewrites
        // blocks, so the cache never serves a chunk touched by
        // reconstruction.
        chunkCache_.invalidate(manifest.name, chunk_id);
        obs_.tracer.instant(
            "degraded_read",
            "\"chunk\": " + std::to_string(chunk_id) + ", \"object\": \"" +
                manifest.name + "\"");
        const double now = cluster_.engine().now();
        obs_.telemetry.flight().record(
            now, "degraded_read",
            "\"chunk\": " + std::to_string(chunk_id) +
                ", \"object\": \"" + manifest.name + "\"");
        dumpFlightRecord(now, "degraded_read");
    }
    return out;
}

Result<Bytes>
ObjectStore::get(const std::string &name)
{
    auto m = manifest(name);
    if (!m.isOk())
        return m.status();
    const ObjectManifest &manifest = *m.value();
    // A non-empty delta log returns the merged materialization (base
    // rows plus appends), byte-identical to the post-compaction base.
    auto log = deltaLogs_.find(name);
    if (log != deltaLogs_.end() && !log->second.empty())
        return materializeMergedBytes(manifest, log->second);
    Bytes out(manifest.objectSize);
    for (const auto &extent : manifest.extents) {
        auto chunk = readChunkBytes(manifest, extent.id);
        if (!chunk.isOk())
            return chunk.status();
        std::copy(chunk.value().begin(), chunk.value().end(),
                  out.begin() + extent.offset);
    }
    return out;
}

Result<Bytes>
ObjectStore::get(const std::string &name, uint64_t offset, uint64_t size)
{
    auto m = manifest(name);
    if (!m.isOk())
        return m.status();
    auto log = deltaLogs_.find(name);
    if (log != deltaLogs_.end() && !log->second.empty()) {
        auto merged = materializeMergedBytes(*m.value(), log->second);
        if (!merged.isOk())
            return merged.status();
        if (offset + size > merged.value().size())
            return Status::outOfRange("read beyond object end");
        return Bytes(merged.value().begin() + offset,
                     merged.value().begin() + offset + size);
    }
    if (offset + size > m.value()->objectSize)
        return Status::outOfRange("read beyond object end");
    // Reassemble only the chunks overlapping the range.
    Bytes out(size);
    for (const auto &extent : m.value()->extents) {
        uint64_t lo = std::max(offset, extent.offset);
        uint64_t hi = std::min(offset + size, extent.offset + extent.size);
        if (lo >= hi)
            continue;
        auto chunk = readChunkBytes(*m.value(), extent.id);
        if (!chunk.isOk())
            return chunk.status();
        std::copy(chunk.value().begin() + (lo - extent.offset),
                  chunk.value().begin() + (hi - extent.offset),
                  out.begin() + (lo - offset));
    }
    return out;
}

Result<size_t>
ObjectStore::repairNode(size_t node_id)
{
    if (node_id >= cluster_.numNodes())
        return Status::invalidArgument("no such node");
    sim::StorageNode &node = cluster_.node(node_id);
    if (!node.alive())
        return Status::failedPrecondition("revive the node before repair");

    // The manifest's per-node shard lists exactly the blocks that
    // should live here — no stripes x n scan over every object.
    size_t rebuilt = 0;
    for (const auto &[name, manifest] : manifests_) {
        for (const auto &ref : manifest.blocksOnNode(node_id)) {
            if (node.findBlock(manifest.blockKey(ref.stripe,
                                                 ref.blockIndex)))
                continue; // still intact
            auto block = recoverBlock(manifest, ref.stripe,
                                      ref.blockIndex);
            if (!block.isOk())
                return block.status();
            node.putBlock(manifest.blockKey(ref.stripe, ref.blockIndex),
                          std::move(block.value()));
            ++rebuilt;
        }
    }
    return rebuilt;
}

Result<query::Query>
ObjectStore::resolveQuery(const query::Query &q,
                          const format::Schema &schema) const
{
    query::Query resolved = q;
    resolved.projections.clear();
    for (const auto &proj : q.projections) {
        if (proj.column == query::kStarProjection &&
            proj.aggregate == query::AggregateKind::kNone) {
            for (const auto &col : schema.columns())
                resolved.projections.push_back(
                    {col.name, query::AggregateKind::kNone});
            continue;
        }
        if (!proj.column.empty()) {
            auto idx = schema.columnIndex(proj.column);
            if (!idx.isOk())
                return idx.status();
        }
        resolved.projections.push_back(proj);
    }
    for (const auto &pred : resolved.filters) {
        auto idx = schema.columnIndex(pred.column);
        if (!idx.isOk())
            return idx.status();
    }
    return resolved;
}

Result<std::shared_ptr<const format::ColumnData>>
ObjectStore::decodedChunk(const ObjectManifest &manifest, size_t row_group,
                          size_t column)
{
    uint32_t chunk_id = manifest.chunkIdFor(row_group, column);
    auto key = std::make_pair(manifest.name, uint64_t{chunk_id});
    auto it = decodeCache_.find(key);
    if (it != decodeCache_.end()) {
        ins_.cacheDecodeHit->add(1);
        return it->second;
    }
    ins_.cacheDecodeMiss->add(1);

    auto bytes = readChunkBytes(manifest, chunk_id);
    if (!bytes.isOk())
        return bytes.status();
    auto decoded = format::decodeChunk(
        Slice(bytes.value()),
        manifest.fileMeta.schema.column(column).physical);
    if (!decoded.isOk())
        return decoded.status();
    auto shared = std::make_shared<const format::ColumnData>(
        std::move(decoded.value()));
    decodeCache_.emplace(std::move(key), shared);
    return std::static_pointer_cast<const format::ColumnData>(shared);
}

Result<std::shared_ptr<const query::Bitmap>>
ObjectStore::chunkFilterBitmap(const ObjectManifest &manifest,
                               size_t row_group, size_t column,
                               const query::Predicate &pred)
{
    std::string pred_key = pred.column + compareOpName(pred.op) +
                           pred.literal.toString();
    auto key = std::make_tuple(
        manifest.name, uint64_t{manifest.chunkIdFor(row_group, column)},
        std::move(pred_key));
    auto it = bitmapCache_.find(key);
    if (it != bitmapCache_.end()) {
        ins_.cacheBitmapHit->add(1);
        return it->second;
    }
    ins_.cacheBitmapMiss->add(1);

    auto chunk = decodedChunk(manifest, row_group, column);
    if (!chunk.isOk())
        return chunk.status();
    auto bitmap = query::evalPredicate(*chunk.value(), pred.op,
                                       pred.literal);
    if (!bitmap.isOk())
        return bitmap.status();
    auto shared = std::make_shared<const query::Bitmap>(
        std::move(bitmap.value()));
    bitmapCache_.emplace(std::move(key), shared);
    return std::static_pointer_cast<const query::Bitmap>(shared);
}

Status
ObjectStore::prefetchDecodedChunks(
    const ObjectManifest &manifest,
    const std::vector<std::pair<size_t, size_t>> &rg_cols)
{
    // Dedupe against the cache (and within the request) first.
    std::vector<std::pair<size_t, size_t>> todo;
    std::set<uint32_t> seen;
    for (const auto &[rg, col] : rg_cols) {
        uint32_t chunk_id = manifest.chunkIdFor(rg, col);
        if (!seen.insert(chunk_id).second)
            continue;
        if (decodeCache_.count({manifest.name, uint64_t{chunk_id}}) > 0)
            continue;
        todo.emplace_back(rg, col);
    }
    if (todo.empty())
        return Status::ok();

    // Phase 1 (serial): fetch raw chunk bytes. This is where degraded
    // reads, retries and fault counters happen — it must stay on the
    // calling thread so FaultStats are identical for any thread count.
    std::vector<Bytes> raw(todo.size());
    for (size_t i = 0; i < todo.size(); ++i) {
        auto bytes = readChunkBytes(
            manifest, manifest.chunkIdFor(todo[i].first, todo[i].second));
        if (!bytes.isOk())
            return bytes.status();
        raw[i] = std::move(bytes.value());
    }

    // Phase 2 (parallel): decompress + decode, pure per-slot CPU work.
    std::vector<Result<format::ColumnData>> decoded(
        todo.size(), Result<format::ColumnData>(format::ColumnData()));
    ThreadPool::shared().parallelFor(0, todo.size(), [&](size_t i) {
        decoded[i] = format::decodeChunk(
            Slice(raw[i]),
            manifest.fileMeta.schema.column(todo[i].second).physical);
    });

    // Phase 3 (serial): surface errors in index order, fill the cache.
    for (size_t i = 0; i < todo.size(); ++i) {
        if (!decoded[i].isOk())
            return decoded[i].status();
        uint32_t chunk_id =
            manifest.chunkIdFor(todo[i].first, todo[i].second);
        decodeCache_.emplace(
            std::make_pair(manifest.name, uint64_t{chunk_id}),
            std::make_shared<const format::ColumnData>(
                std::move(decoded[i].value())));
    }
    return Status::ok();
}

Result<ObjectStore::DataPlane>
ObjectStore::executeDataPlane(const ObjectManifest &manifest,
                              const query::Query &q)
{
    std::string cache_key = manifest.name + "|" + q.toString();
    auto cached = planCache_.find(cache_key);
    if (cached != planCache_.end()) {
        ins_.cachePlanHit->add(1);
        return *cached->second;
    }
    ins_.cachePlanMiss->add(1);

    const format::FileMetadata &meta = manifest.fileMeta;
    const format::Schema &schema = meta.schema;
    DataPlane plane;

    // Zone-map pruning (metadata only) decides which row groups scan.
    std::vector<bool> scan_rg(meta.numRowGroups(), true);
    for (size_t rg = 0; rg < meta.numRowGroups(); ++rg) {
        for (const auto &pred : q.filters) {
            size_t col = schema.columnIndex(pred.column).value();
            if (!query::chunkMayMatch(meta.chunk(rg, col), pred)) {
                scan_rg[rg] = false;
                break;
            }
        }
    }

    // Decode every filter chunk the scan will touch, concurrently
    // (fetch stays serial inside; see prefetchDecodedChunks), then
    // evaluate all missing per-chunk predicate bitmaps concurrently —
    // both are pure CPU work inside this one simulated event.
    std::vector<std::pair<size_t, size_t>> filter_chunks;
    for (size_t rg = 0; rg < meta.numRowGroups(); ++rg) {
        if (!scan_rg[rg])
            continue;
        for (const auto &col_name : q.filterColumns())
            filter_chunks.emplace_back(
                rg, schema.columnIndex(col_name).value());
    }
    FUSION_RETURN_IF_ERROR(prefetchDecodedChunks(manifest, filter_chunks));

    struct BitmapTask {
        size_t rg;
        size_t col;
        const query::Predicate *pred;
        std::tuple<std::string, uint64_t, std::string> key;
        Result<query::Bitmap> result = query::Bitmap();
    };
    std::vector<BitmapTask> bitmap_tasks;
    for (size_t rg = 0; rg < meta.numRowGroups(); ++rg) {
        if (!scan_rg[rg])
            continue;
        for (const auto &pred : q.filters) {
            size_t col = schema.columnIndex(pred.column).value();
            auto key = std::make_tuple(
                manifest.name, uint64_t{manifest.chunkIdFor(rg, col)},
                pred.column + compareOpName(pred.op) +
                    pred.literal.toString());
            if (bitmapCache_.count(key) > 0)
                continue;
            bitmap_tasks.push_back(
                {rg, col, &pred, std::move(key), query::Bitmap()});
        }
    }
    ThreadPool::shared().parallelFor(
        0, bitmap_tasks.size(), [&](size_t i) {
            BitmapTask &task = bitmap_tasks[i];
            auto chunk = decodeCache_.find(
                {manifest.name,
                 uint64_t{manifest.chunkIdFor(task.rg, task.col)}});
            FUSION_CHECK(chunk != decodeCache_.end());
            task.result = query::evalPredicate(
                *chunk->second, task.pred->op, task.pred->literal);
        });
    for (auto &task : bitmap_tasks) {
        if (!task.result.isOk())
            return task.result.status();
        bitmapCache_.emplace(std::move(task.key),
                             std::make_shared<const query::Bitmap>(
                                 std::move(task.result.value())));
    }

    // ---- filter stage (real) ----
    uint64_t matched = 0;
    plane.rowGroupBitmaps.resize(meta.numRowGroups());
    plane.rowGroupBitmapWireSize.assign(meta.numRowGroups(), 0);
    for (size_t rg = 0; rg < meta.numRowGroups(); ++rg) {
        if (!scan_rg[rg])
            continue; // skipped row group: nullopt bitmap

        query::Bitmap bitmap(meta.rowGroups[rg].numRows, true);
        // Predicates grouped per column: a storage node ANDs all
        // predicates on its chunk and returns one bitmap.
        for (const auto &col_name : q.filterColumns()) {
            size_t col = schema.columnIndex(col_name).value();
            query::Bitmap col_bitmap(meta.rowGroups[rg].numRows, true);
            for (const auto &pred : q.filters) {
                if (pred.column != col_name)
                    continue;
                auto chunk_bitmap =
                    chunkFilterBitmap(manifest, rg, col, pred);
                if (!chunk_bitmap.isOk())
                    return chunk_bitmap.status();
                col_bitmap.intersect(*chunk_bitmap.value());
            }
            plane.filterReplyWireSize[{rg, col}] =
                col_bitmap.compressedWireSize();
            bitmap.intersect(col_bitmap);
        }
        matched += bitmap.count();
        plane.result.rowsScanned += meta.rowGroups[rg].numRows;
        plane.rowGroupBitmapWireSize[rg] = bitmap.compressedWireSize();
        plane.rowGroupBitmaps[rg] = std::move(bitmap);
    }
    plane.result.rowsMatched = matched;
    plane.selectivity =
        meta.numRows == 0
            ? 0.0
            : static_cast<double>(matched) /
                  static_cast<double>(meta.numRows);

    // ---- projection stage (real) ----
    // Decode all projection chunks the selection touches concurrently
    // before the (ordered) materialization loop below.
    std::vector<std::pair<size_t, size_t>> projection_chunks;
    for (const auto &name : q.projectionColumns()) {
        size_t col = schema.columnIndex(name).value();
        for (size_t rg = 0; rg < meta.numRowGroups(); ++rg) {
            const auto &bitmap = plane.rowGroupBitmaps[rg];
            if (bitmap.has_value() && bitmap->count() > 0)
                projection_chunks.emplace_back(rg, col);
        }
    }
    FUSION_RETURN_IF_ERROR(
        prefetchDecodedChunks(manifest, projection_chunks));

    std::map<std::string, format::ColumnData> projected;
    for (const auto &name : q.projectionColumns()) {
        size_t col = schema.columnIndex(name).value();
        format::ColumnData values(schema.column(col).physical);
        for (size_t rg = 0; rg < meta.numRowGroups(); ++rg) {
            const auto &bitmap = plane.rowGroupBitmaps[rg];
            if (!bitmap.has_value() || bitmap->count() == 0)
                continue;
            auto chunk = decodedChunk(manifest, rg, col);
            if (!chunk.isOk())
                return chunk.status();
            format::ColumnData selected =
                query::selectRows(*chunk.value(), *bitmap);
            uint64_t wire = format::plainEncode(selected).size();
            plane.projectionReplySize[{rg, col}] = wire;
            for (size_t i = 0; i < selected.size(); ++i)
                values.appendValue(selected.valueAt(i));
        }
        projected.emplace(name, std::move(values));
    }

    for (const auto &proj : q.projections) {
        query::ProjectionResult out;
        if (proj.aggregate != query::AggregateKind::kNone) {
            out.isAggregate = true;
            out.name = std::string(aggregateKindName(proj.aggregate)) +
                       "(" + (proj.isCountStar() ? "*" : proj.column) + ")";
            if (proj.isCountStar()) {
                out.aggregateValue = static_cast<double>(matched);
            } else {
                auto agg = query::computeAggregate(
                    proj.aggregate, projected.at(proj.column));
                if (!agg.isOk())
                    return agg.status();
                out.aggregateValue = agg.value();
            }
            plane.resultWireBytes += 16;
        } else {
            out.name = proj.column;
            out.values = projected.at(proj.column);
            plane.resultWireBytes +=
                format::plainEncode(out.values).size();
        }
        plane.result.columns.push_back(std::move(out));
    }

    auto shared = std::make_shared<const DataPlane>(std::move(plane));
    planCache_.emplace(std::move(cache_key), shared);
    return *shared;
}

bool
ObjectStore::chunkIntactOnSingleNode(const ObjectManifest &manifest,
                                     uint32_t chunk_id) const
{
    return chunkPushdownState(manifest, chunk_id) ==
           ChunkPushdownState::kPushable;
}

ObjectStore::ChunkPushdownState
ObjectStore::chunkPushdownState(const ObjectManifest &manifest,
                                uint32_t chunk_id) const
{
    auto nodes = manifest.nodesForChunk(chunk_id);
    if (nodes.size() != 1)
        return ChunkPushdownState::kSplit;
    return nodeResponsive(cluster_.node(nodes[0]))
               ? ChunkPushdownState::kPushable
               : ChunkPushdownState::kFaulted;
}

void
ObjectStore::dropCaches()
{
    // Memoization caches only; the semantic hot-chunk cache survives
    // (it is kept correct by invalidation, not recomputation).
    decodeCache_.clear();
    bitmapCache_.clear();
    planCache_.clear();
}

ObjectStore::CacheLookup
ObjectStore::cacheLookupChunk(const ObjectManifest &manifest,
                              uint32_t chunk_id)
{
    CacheLookup out;
    // Every counted probe is an access for the chunk-heat table,
    // whether or not the cache tier is on — the heat signal must
    // exist before anyone sizes a cache (or re-stripes) from it.
    obs_.telemetry.heat().recordAccess(cluster_.engine().now(),
                                       manifest.shareName(), chunk_id);
    if (!chunkCache_.enabled())
        return out;
    uint64_t span = obs_.tracer.beginSpan(
        "cache_lookup",
        "\"chunk\": " + std::to_string(chunk_id) + ", \"object\": \"" +
            manifest.name + "\"");
    out.hit = chunkCache_.lookup(manifest.name, chunk_id) != nullptr;
    out.decoded =
        out.hit && chunkCache_.decoded(manifest.name, chunk_id) != nullptr;
    obs_.tracer.endSpan(span);
    return out;
}

bool
ObjectStore::cacheAdmitChunk(const ObjectManifest &manifest,
                             uint32_t chunk_id)
{
    if (!chunkCache_.enabled())
        return false;
    if (chunkCache_.contains(manifest.name, chunk_id)) {
        // Refresh the SIEVE visited bit without re-assembling bytes.
        return chunkCache_.admit(manifest.name, chunk_id, nullptr);
    }
    // Assemble directly from node block maps: admission models the
    // coordinator keeping bytes it already moved, so it must not count
    // extra fault-path work — and degraded bytes never enter the cache.
    const fac::ChunkExtent &extent = manifest.extents.at(chunk_id);
    auto bytes = std::make_shared<Bytes>(extent.size);
    for (const auto &piece : manifest.chunkPieces.at(chunk_id)) {
        const sim::StorageNode &node = cluster_.node(
            manifest.stripeNodes[piece.stripe][piece.blockIndex]);
        if (!nodeResponsive(node))
            return false;
        const Bytes *block =
            node.findBlock(manifest.blockKey(piece.stripe, piece.blockIndex));
        if (!block || piece.blockOffset + piece.size > block->size())
            return false;
        std::copy(block->begin() + piece.blockOffset,
                  block->begin() + piece.blockOffset + piece.size,
                  bytes->begin() + piece.chunkOffset);
    }
    if (!chunkCache_.admit(manifest.name, chunk_id, std::move(bytes)))
        return false;
    // Attach the decoded layer when the memoization cache already has
    // it: local evaluation then skips the decompress/decode pass.
    auto decoded = decodeCache_.find({manifest.name, uint64_t{chunk_id}});
    if (decoded != decodeCache_.end())
        chunkCache_.attachDecoded(manifest.name, chunk_id, decoded->second);
    return true;
}

bool
ObjectStore::admitChunkToCache(const std::string &object, uint32_t chunk_id)
{
    // The scheduler hands back the object part of a share key, which
    // embeds the generation ("name@gN") for compacted objects. An exact
    // manifest match wins (an object could literally be named with
    // "@g"); otherwise strip the suffix — and refuse when the key's
    // generation is no longer current, so a conversion planned against
    // a superseded generation never admits stale chunk ids.
    auto exact = manifests_.find(object);
    if (exact != manifests_.end() && exact->second.generation == 0)
        return cacheAdmitChunk(exact->second, chunk_id);
    std::string name = object;
    uint64_t generation = 0;
    size_t at = object.rfind("@g");
    if (at != std::string::npos && at + 2 < object.size()) {
        bool digits = true;
        for (size_t i = at + 2; i < object.size() && digits; ++i)
            digits = object[i] >= '0' && object[i] <= '9';
        if (digits) {
            name = object.substr(0, at);
            generation = std::stoull(object.substr(at + 2));
        }
    }
    auto m = manifests_.find(name);
    if (m == manifests_.end() || m->second.generation != generation)
        return false;
    return cacheAdmitChunk(m->second, chunk_id);
}

uint64_t
ObjectStore::appendChunkFetchTasks(const ObjectManifest &manifest,
                                   uint32_t chunk_id, size_t coordinator,
                                   double coord_cpu_work,
                                   std::vector<SimTask> &tasks)
{
    uint64_t total = 0;
    size_t first_new = tasks.size();
    std::set<std::pair<size_t, size_t>> degraded_stripes;
    obs_.telemetry.heat().recordAccess(cluster_.engine().now(),
                                       manifest.shareName(), chunk_id);

    // Share keys: any query fetching the same healthy piece (or the
    // same surviving stripe block during a degraded read) moves the
    // same bytes, so the batch scheduler can issue it once. The
    // generation-qualified name keeps in-flight shares planned against
    // a superseded generation from aliasing the new one.
    const std::string key_base = "fetch|" + manifest.shareName() + "|" +
                                 std::to_string(chunk_id) + "|";
    size_t ordinal = 0;
    for (const auto &piece : manifest.chunkPieces.at(chunk_id)) {
        size_t node_id =
            manifest.stripeNodes[piece.stripe][piece.blockIndex];
        if (nodeResponsive(cluster_.node(node_id))) {
            SimTask task{node_id, options_.requestRpcBytes, piece.size,
                         0.0, piece.size, 0.0};
            task.shareKey = key_base + std::to_string(ordinal++);
            task.chunkId = chunk_id;
            tasks.push_back(std::move(task));
            total += piece.size;
        } else {
            degraded_stripes.insert({piece.stripe, piece.blockIndex});
        }
    }

    // Degraded read: pull k surviving blocks of each affected stripe and
    // decode the erasure code at the coordinator.
    for (const auto &[stripe, block] : degraded_stripes) {
        (void)block;
        const fac::StripeLayout &ls = manifest.layout.stripes[stripe];
        size_t fetched = 0;
        for (size_t b = 0; b < options_.n && fetched < options_.k; ++b) {
            size_t node_id = manifest.stripeNodes[stripe][b];
            if (!nodeResponsive(cluster_.node(node_id)))
                continue;
            uint64_t size = (b < options_.k)
                                ? (b < ls.dataBlocks.size()
                                       ? ls.dataBlocks[b].size()
                                       : 0)
                                : ls.blockSize();
            SimTask task{node_id, options_.requestRpcBytes, size, 0.0,
                         size, 0.0};
            task.shareKey = "stripe|" + manifest.shareName() + "|" +
                            std::to_string(stripe) + "|" +
                            std::to_string(b);
            task.chunkId = chunk_id;
            tasks.push_back(std::move(task));
            total += size;
            ++fetched;
        }
        // EC decode cost: k blocks combined per recovered block.
        coord_cpu_work +=
            static_cast<double>(ls.blockSize()) * options_.k;
    }

    if (tasks.size() > first_new)
        tasks.back().coordCpuWork += coord_cpu_work;
    else if (coord_cpu_work > 0 && !tasks.empty())
        tasks.back().coordCpuWork += coord_cpu_work;
    (void)coordinator;
    return total;
}

void
ObjectStore::accountTask(const SimTask &task, size_t coordinator,
                         bool projection_stage, QueryOutcome &out) const
{
    const sim::NodeConfig &nc = cluster_.config().node;
    obs::Counter *wire_request =
        projection_stage ? ins_.wireProjectionRequest : ins_.wireFilterRequest;
    obs::Counter *wire_reply =
        projection_stage ? ins_.wireProjectionReply : ins_.wireFilterReply;
    if (task.nodeId != coordinator) {
        out.networkBytes += task.requestBytes + task.replyBytes;
        out.networkSeconds +=
            static_cast<double>(task.requestBytes + task.replyBytes) /
                nc.nicBandwidth +
            2 * nc.rpcLatency;
        wire_request->add(task.requestBytes);
        wire_reply->add(task.replyBytes);
    }
    if (task.diskBytes > 0) {
        out.diskSeconds +=
            static_cast<double>(task.diskBytes) / nc.diskBandwidth +
            nc.diskSeekLatency;
    }
    out.cpuSeconds += (task.nodeCpuWork + task.coordCpuWork) / nc.cpuRate;
}

void
ObjectStore::accountClientExchange(uint64_t reply_bytes,
                                   QueryOutcome &out) const
{
    const sim::NodeConfig &nc = cluster_.config().node;
    out.networkBytes += options_.clientRequestBytes + reply_bytes;
    out.networkSeconds +=
        static_cast<double>(options_.clientRequestBytes + reply_bytes) /
            nc.nicBandwidth +
        2 * nc.rpcLatency;
    ins_.wireClientRequest->add(options_.clientRequestBytes);
    ins_.wireClientReply->add(reply_bytes);
}

ObjectStore::SimTask
ObjectStore::makeSharedFetchTask(const SimTask &pushdown) const
{
    // "ppush|object|chunk|sig" (or apush) -> "cfetch|object|chunk".
    size_t p1 = pushdown.shareKey.find('|');
    size_t p2 = pushdown.shareKey.find('|', p1 + 1);
    size_t p3 = pushdown.shareKey.find('|', p2 + 1);
    FUSION_CHECK_MSG(p3 != std::string::npos,
                     "not a per-chunk pushdown task");
    SimTask fetch;
    fetch.nodeId = pushdown.nodeId;
    fetch.requestBytes = options_.requestRpcBytes;
    fetch.diskBytes = pushdown.chunkStoredBytes;
    fetch.nodeCpuWork = 0.0;
    fetch.replyBytes = pushdown.chunkStoredBytes;
    fetch.coordCpuWork = pushdown.fetchDecodeWork;
    fetch.label = "chunk_fetch";
    fetch.shareKey =
        "cfetch|" + pushdown.shareKey.substr(p1 + 1, p3 - p1 - 1);
    fetch.chunkId = pushdown.chunkId;
    fetch.selectivity = pushdown.selectivity;
    fetch.chunkStoredBytes = pushdown.chunkStoredBytes;
    fetch.chunkPlainBytes = pushdown.chunkPlainBytes;
    fetch.fetchDecodeWork = pushdown.fetchDecodeWork;
    fetch.consumerSelectWork = pushdown.consumerSelectWork;
    return fetch;
}

void
ObjectStore::accountPlanResources(QueryPlan &plan) const
{
    QueryOutcome &out = plan.outcome;
    for (const auto &task : plan.filterTasks)
        accountTask(task, plan.coordinatorId, false, out);
    for (const auto &task : plan.projectionTasks)
        accountTask(task, plan.coordinatorId, true, out);
    out.cpuSeconds +=
        plan.interStageCoordWork / cluster_.config().node.cpuRate;
    accountClientExchange(plan.clientReplyBytes, out);
}

void
ObjectStore::executeTask(const SimTask &task, size_t coordinator,
                         std::shared_ptr<sim::Join> join)
{
    sim::StorageNode *node = &cluster_.node(task.nodeId);
    sim::StorageNode *coord = &cluster_.node(coordinator);
    const double seek = cluster_.config().node.diskSeekLatency;

    // All DES callbacks run on the driver thread, so recording into the
    // tracer here is safe; the span covers the task's full simulated
    // lifetime (request, disk, node CPU, reply, coordinator CPU).
    uint64_t span = obs_.tracer.beginSpan(
        task.label, "\"node\": " + std::to_string(task.nodeId) +
                        ", \"disk_bytes\": " +
                        std::to_string(task.diskBytes) +
                        ", \"reply_bytes\": " +
                        std::to_string(task.replyBytes));

    auto node_work = [this, node, coord, task, join, seek, span]() {
        node->disk().acquire(
            static_cast<double>(task.diskBytes),
            task.diskBytes ? seek : 0.0,
            [this, node, coord, task, join, span]() {
                node->cpu().acquire(task.nodeCpuWork, [this, node, coord,
                                                       task, join, span]() {
                    auto coord_work = [this, coord, task, join, span]() {
                        coord->cpu().acquire(task.coordCpuWork,
                                             [this, join, span]() {
                                                 obs_.tracer.endSpan(span);
                                                 join->signal();
                                             });
                    };
                    if (node == coord) {
                        coord_work();
                    } else {
                        cluster_.transfer(*node, *coord, task.replyBytes,
                                          std::move(coord_work));
                    }
                });
            });
    };

    if (task.nodeId == coordinator) {
        node_work();
    } else {
        cluster_.transfer(*coord, *node, task.requestBytes,
                          std::move(node_work));
    }
}

void
ObjectStore::simulateQuery(std::shared_ptr<QueryPlan> plan,
                           std::function<void(Result<QueryOutcome>)> done)
{
    accountPlanResources(*plan);

    sim::StorageNode *client = &cluster_.client();
    sim::StorageNode *coord = &cluster_.node(plan->coordinatorId);
    const double start = cluster_.engine().now();

    // Stage span ids cross several DES callbacks; the array outlives
    // this frame via shared_ptr. [0]=query, [1]=filter, [2]=projection.
    auto spans = std::make_shared<std::array<uint64_t, 3>>();
    (*spans)[0] = obs_.tracer.beginSpan(
        "query", "\"filter_tasks\": " +
                     std::to_string(plan->filterTasks.size()) +
                     ", \"projection_tasks\": " +
                     std::to_string(plan->projectionTasks.size()));

    auto finish = [this, plan, done, client, coord, start, spans]() {
        obs_.tracer.endSpan((*spans)[2]);
        cluster_.transfer(*coord, *client, plan->clientReplyBytes,
                          [this, plan, done, start, spans]() {
                              plan->outcome.latencySeconds =
                                  cluster_.engine().now() - start;
                              recordQueryLatency(
                                  cluster_.engine().now(),
                                  plan->outcome.latencySeconds);
                              obs_.tracer.endSpan((*spans)[0]);
                              done(plan->outcome);
                          });
    };

    auto projection_stage = [this, plan, finish, coord, spans]() {
        obs_.tracer.endSpan((*spans)[1]);
        (*spans)[2] = obs_.tracer.beginSpan("projection_stage");
        coord->cpu().acquire(
            plan->interStageCoordWork, [this, plan, finish]() {
                auto join = std::make_shared<sim::Join>(
                    plan->projectionTasks.size(), finish);
                for (const auto &task : plan->projectionTasks)
                    executeTask(task, plan->coordinatorId, join);
            });
    };

    auto filter_stage = [this, plan, projection_stage, spans]() {
        (*spans)[1] = obs_.tracer.beginSpan("filter_stage");
        auto join = std::make_shared<sim::Join>(plan->filterTasks.size(),
                                                projection_stage);
        for (const auto &task : plan->filterTasks)
            executeTask(task, plan->coordinatorId, join);
    };

    // Retry backoff against faulted nodes delays the whole plan (the
    // coordinator waited before falling back to reconstruction).
    auto start_plan = [this, plan, filter_stage]() {
        if (plan->extraLatencySeconds > 0.0)
            cluster_.engine().schedule(plan->extraLatencySeconds,
                                       filter_stage);
        else
            filter_stage();
    };

    cluster_.transfer(*client, *coord, options_.clientRequestBytes,
                      start_plan);
}

Result<std::shared_ptr<ObjectStore::QueryPlan>>
ObjectStore::planQueryForBatch(const query::Query &q)
{
    auto m = manifest(q.table);
    if (!m.isOk())
        return m.status();
    if (!m.value()->isFpax)
        return Status::failedPrecondition(
            "object '" + q.table + "' is not an analytics (fpax) object");
    auto resolved = resolveQuery(q, m.value()->fileMeta.schema);
    if (!resolved.isOk())
        return resolved.status();
    FaultStats before = faultStats();
    auto plan = planQuery(*m.value(), resolved.value());
    if (!plan.isOk())
        return plan.status();
    FaultStats after = faultStats();
    QueryPlan &p = plan.value();
    p.outcome.parityReconstructions =
        after.parityReconstructions - before.parityReconstructions;
    p.outcome.readRetries = after.readRetries - before.readRetries;
    p.extraLatencySeconds = after.backoffSeconds - before.backoffSeconds;
    auto shared = std::make_shared<QueryPlan>(std::move(p));
    // Queries see appended rows immediately: every live delta segment
    // merges on top of the planned base-generation results.
    auto log = deltaLogs_.find(q.table);
    if (log != deltaLogs_.end() && !log->second.empty()) {
        Status merged = mergeDeltaIntoPlan(*m.value(), log->second,
                                           resolved.value(), *shared);
        if (!merged.isOk())
            return merged;
    }
    return shared;
}

void
ObjectStore::queryAsync(const query::Query &q,
                        std::function<void(Result<QueryOutcome>)> done)
{
    auto plan = planQueryForBatch(q);
    if (!plan.isOk()) {
        done(plan.status());
        return;
    }
    simulateQuery(std::move(plan.value()), std::move(done));
}

Result<QueryOutcome>
ObjectStore::query(const query::Query &q)
{
    std::optional<Result<QueryOutcome>> captured;
    queryAsync(q, [&captured](Result<QueryOutcome> outcome) {
        captured.emplace(std::move(outcome));
    });
    cluster_.engine().run();
    FUSION_CHECK_MSG(captured.has_value(), "query did not complete");
    return std::move(*captured);
}

Result<QueryOutcome>
ObjectStore::querySql(const std::string &sql)
{
    auto q = query::parseQuery(sql);
    if (!q.isOk())
        return q.status();
    return query(q.value());
}

} // namespace fusion::store
