#include "gf256.h"

#include "common/status.h"

namespace fusion::ec {

namespace {
constexpr unsigned kPrimitivePoly = 0x11d;
} // namespace

Gf256::Gf256()
{
    unsigned x = 1;
    for (int i = 0; i < 255; ++i) {
        exp_[i] = static_cast<uint8_t>(x);
        log_[x] = static_cast<uint8_t>(i);
        x <<= 1;
        if (x & 0x100)
            x ^= kPrimitivePoly;
    }
    for (int i = 255; i < 512; ++i)
        exp_[i] = exp_[i - 255];
    log_[0] = 0; // never consulted: mul/div guard zero operands
}

const Gf256 &
Gf256::instance()
{
    static const Gf256 table;
    return table;
}

uint8_t
Gf256::div(uint8_t a, uint8_t b) const
{
    FUSION_CHECK_MSG(b != 0, "GF(256) division by zero");
    if (a == 0)
        return 0;
    return exp_[255 + log_[a] - log_[b]];
}

uint8_t
Gf256::inv(uint8_t a) const
{
    FUSION_CHECK_MSG(a != 0, "GF(256) inverse of zero");
    return exp_[255 - log_[a]];
}

uint8_t
Gf256::pow(uint8_t a, unsigned e) const
{
    if (e == 0)
        return 1;
    if (a == 0)
        return 0;
    unsigned le = (static_cast<unsigned>(log_[a]) * e) % 255;
    return exp_[le];
}

void
Gf256::mulAccumulate(uint8_t *dst, const uint8_t *src, size_t len,
                     uint8_t c) const
{
    if (c == 0)
        return;
    if (c == 1) {
        for (size_t i = 0; i < len; ++i)
            dst[i] ^= src[i];
        return;
    }
    const uint8_t lc = log_[c];
    for (size_t i = 0; i < len; ++i) {
        uint8_t s = src[i];
        if (s)
            dst[i] ^= exp_[lc + log_[s]];
    }
}

} // namespace fusion::ec
