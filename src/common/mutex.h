/**
 * @file
 * Thread-safety-annotated synchronization primitives. fusion::Mutex is
 * a std::mutex carrying the Clang `capability` attribute, so members
 * declared FUSION_GUARDED_BY(mutex_) are statically checked under
 * `clang++ -Wthread-safety` (the analysis cannot see through a raw
 * std::mutex with libstdc++, which lacks the attributes). fusion-lint
 * rule `raw-mutex` enforces that all locked code in src/ uses these
 * wrappers instead of raw std primitives.
 *
 * CondVar follows the abseil convention of taking the Mutex itself
 * (not a lock object): `wait(m)` requires `m` held, releases it while
 * blocked, and re-acquires before returning — which is exactly what
 * the analysis assumes, so condition loops check cleanly:
 *
 *     MutexLock lock(mutex_);
 *     while (!ready_)        // ready_ is FUSION_GUARDED_BY(mutex_)
 *         cv_.wait(mutex_);
 *
 * Prefer explicit while-loops over predicate lambdas with guarded
 * state: the analysis treats lambda bodies as separate functions and
 * would flag the guarded reads inside them.
 */
#ifndef FUSION_COMMON_MUTEX_H
#define FUSION_COMMON_MUTEX_H

// fusion-lint: allowfile(raw-mutex) — this is the annotated wrapper.
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace fusion {

/** std::mutex annotated as a Clang thread-safety capability. */
class FUSION_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() FUSION_ACQUIRE() { m_.lock(); }
    void unlock() FUSION_RELEASE() { m_.unlock(); }
    bool try_lock() FUSION_TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex m_;
};

/** RAII lock for fusion::Mutex (scoped capability). */
class FUSION_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) FUSION_ACQUIRE(m) : m_(m) { m_.lock(); }
    ~MutexLock() FUSION_RELEASE() { m_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &m_;
};

/**
 * Condition variable bound to fusion::Mutex. `wait` must be called
 * with the mutex held (enforced by the analysis); it atomically
 * releases the mutex while blocked and re-acquires it before
 * returning, like std::condition_variable.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

    /** Blocks until notified. Spurious wakeups possible — always wait
     *  in a while-loop re-checking the guarded condition. */
    void
    wait(Mutex &m) FUSION_REQUIRES(m)
    {
        // Adopt the caller's hold for the duration of the wait, then
        // release it back without unlocking — the caller's MutexLock
        // still owns the mutex when this returns.
        std::unique_lock<std::mutex> lock(m.m_, std::adopt_lock);
        cv_.wait(lock);
        lock.release();
    }

  private:
    std::condition_variable cv_;
};

} // namespace fusion

#endif // FUSION_COMMON_MUTEX_H
