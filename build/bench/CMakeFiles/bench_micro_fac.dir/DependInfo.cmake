
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_fac.cpp" "bench/CMakeFiles/bench_micro_fac.dir/bench_micro_fac.cpp.o" "gcc" "bench/CMakeFiles/bench_micro_fac.dir/bench_micro_fac.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codec/CMakeFiles/fusion_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/fusion_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/fac/CMakeFiles/fusion_fac.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fusion_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/fusion_query.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/fusion_format.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fusion_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
