/**
 * @file
 * Ablation A2: aggregate pushdown (the paper's stated future work,
 * §5 "SQL Support"). Pure-aggregate projections reply with scalars
 * instead of value streams; we measure the extra latency and traffic
 * reduction it buys on top of Fusion for SUM/AVG queries.
 */
#include "benchutil/rigs.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

using namespace fusion;
using namespace fusion::benchutil;

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    banner("Ablation A2", "aggregate pushdown (paper future work)");

    RigOptions base_options;
    base_options.rows = 60000;
    base_options.copies = 4;

    RigOptions agg_options = base_options;
    agg_options.store.aggregatePushdown = true;

    StorePair plain = makeStorePair(Dataset::kLineitem, base_options);
    StorePair with_agg = makeStorePair(Dataset::kLineitem, agg_options);

    struct Row {
        const char *name;
        const char *sql; // table is a placeholder rewritten per copy
    };
    Row rows[] = {
        {"SUM price, 10% sel",
         "SELECT SUM(l_extendedprice) FROM t WHERE l_suppkey < 1000"},
        {"AVG price, 50% sel",
         "SELECT AVG(l_extendedprice) FROM t WHERE l_quantity < 26"},
        {"COUNT + SUM, full scan",
         "SELECT COUNT(*), SUM(l_quantity) FROM t WHERE l_orderkey > 0"},
    };

    RunConfig config;
    config.totalQueries = 200;

    TablePrinter table({"query", "fusion p50", "fusion+aggpush p50",
                        "latency reduction (%)", "traffic x lower"});
    for (const auto &row : rows) {
        auto parsed = query::parseQuery(row.sql);
        FUSION_CHECK(parsed.isOk());
        auto tmpl = [&](StorePair &pair, size_t i) {
            return pair.onCopy(parsed.value(), i);
        };
        RunStats a = runClosedLoop(*plain.fusion, config, [&](size_t i) {
            return tmpl(plain, i);
        });
        RunStats b = runClosedLoop(*with_agg.fusion, config, [&](size_t i) {
            return tmpl(with_agg, i);
        });
        table.addRow(
            {row.name, formatSeconds(a.latency.p50()),
             formatSeconds(b.latency.p50()),
             fmt("%.1f", latencyReductionPct(a.latency.p50(),
                                             b.latency.p50())),
             fmt("%.1f", static_cast<double>(a.networkBytes) /
                             std::max<uint64_t>(b.networkBytes, 1))});
    }
    table.print();
    return 0;
}
