#include "bloom.h"

#include <cstring>

#include "common/serde.h"

namespace fusion::format {

namespace {

constexpr size_t kBitsPerValue = 10; // ~1% false-positive rate
constexpr uint32_t kNumHashes = 7;   // optimal k for 10 bits/value
constexpr size_t kMaxFilterBytes = 1 << 20;

uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** 64-bit hash of a value's canonical byte representation. */
uint64_t
hashValue(const Value &value)
{
    switch (value.type()) {
      case PhysicalType::kInt32:
        return mix64(static_cast<uint64_t>(
            static_cast<int64_t>(value.asInt32())));
      case PhysicalType::kInt64:
        return mix64(static_cast<uint64_t>(value.asInt64()));
      case PhysicalType::kDouble: {
        uint64_t bits;
        double v = value.asDouble();
        std::memcpy(&bits, &v, sizeof(bits));
        return mix64(bits);
      }
      case PhysicalType::kString: {
        // FNV-1a then mixed.
        uint64_t h = 1469598103934665603ULL;
        for (char c : value.asString()) {
            h ^= static_cast<uint8_t>(c);
            h *= 1099511628211ULL;
        }
        return mix64(h);
      }
    }
    return 0;
}

} // namespace

BloomFilter::BloomFilter(size_t expected_distinct)
{
    size_t bits = std::max<size_t>(64, expected_distinct * kBitsPerValue);
    size_t bytes = std::min(kMaxFilterBytes, (bits + 7) / 8);
    bits_.assign(bytes, 0);
    numHashes_ = kNumHashes;
}

void
BloomFilter::insert(const Value &value)
{
    FUSION_CHECK(!bits_.empty());
    uint64_t h = hashValue(value);
    uint64_t h1 = h;
    uint64_t h2 = mix64(h) | 1; // odd step for full-cycle probing
    size_t nbits = bits_.size() * 8;
    for (uint32_t i = 0; i < numHashes_; ++i) {
        uint64_t bit = (h1 + i * h2) % nbits;
        bits_[bit >> 3] |= static_cast<uint8_t>(1u << (bit & 7));
    }
}

void
BloomFilter::insertColumn(const ColumnData &column)
{
    for (size_t i = 0; i < column.size(); ++i)
        insert(column.valueAt(i));
}

bool
BloomFilter::mayContain(const Value &value) const
{
    if (bits_.empty())
        return true; // no filter: cannot prune
    uint64_t h = hashValue(value);
    uint64_t h1 = h;
    uint64_t h2 = mix64(h) | 1;
    size_t nbits = bits_.size() * 8;
    for (uint32_t i = 0; i < numHashes_; ++i) {
        uint64_t bit = (h1 + i * h2) % nbits;
        if (!(bits_[bit >> 3] & (1u << (bit & 7))))
            return false;
    }
    return true;
}

Bytes
BloomFilter::serialize() const
{
    Bytes out;
    BinaryWriter writer(out);
    writer.putVarU64(numHashes_);
    writer.putLengthPrefixed(Slice(bits_));
    return out;
}

Result<BloomFilter>
BloomFilter::deserialize(Slice bytes)
{
    BinaryReader reader(bytes);
    auto hashes = reader.getVarU64();
    if (!hashes.isOk())
        return hashes.status();
    if (hashes.value() == 0 || hashes.value() > 64)
        return Status::corruption("bad bloom hash count");
    auto bits = reader.getLengthPrefixed();
    if (!bits.isOk())
        return bits.status();
    if (bits.value().size() > kMaxFilterBytes)
        return Status::corruption("bloom filter too large");
    BloomFilter filter;
    filter.numHashes_ = static_cast<uint32_t>(hashes.value());
    filter.bits_ = bits.value().toBytes();
    return filter;
}

} // namespace fusion::format
