/**
 * @file
 * The Fusion store (paper §4-§5): FAC stripe layout (with fixed-block
 * fallback under the storage-overhead threshold) plus the two-stage
 * fine-grained adaptive pushdown executor:
 *
 *   filter stage    — filters run in-situ on the storage nodes holding
 *                     each (intact) chunk; nodes return compressed
 *                     bitmaps; the coordinator ANDs them and learns the
 *                     exact query selectivity.
 *   projection stage— per chunk, the Cost Equation
 *                     (selectivity x compressibility < 1) decides
 *                     between pushing the projection down and fetching
 *                     the compressed chunk to the coordinator.
 *
 * Chunks that are split (fixed fallback) or on dead nodes transparently
 * use the baseline fetch/reassemble path for correctness.
 */
#ifndef FUSION_STORE_FUSION_STORE_H
#define FUSION_STORE_FUSION_STORE_H

#include "object_store.h"

namespace fusion::store {

/** The analytics object store this repository reproduces. */
class FusionStore : public ObjectStore
{
  public:
    FusionStore(sim::Cluster &cluster, const StoreOptions &options)
        : ObjectStore(cluster, options)
    {
    }

    const char *kindName() const override { return "fusion"; }

  protected:
    fac::ObjectLayout
    buildLayout(const std::vector<fac::ChunkExtent> &extents) override;

    /**
     * Compaction re-stripe: packs the heat-chosen hot chunks into
     * leading stripes (fac::buildHeatFacLayout) so the workload's hot
     * set shares node groups. Falls back to the plain Fusion layout
     * when the two-partition packing wastes more than twice the
     * configured overhead threshold.
     */
    fac::ObjectLayout
    buildRestripeLayout(const std::vector<fac::ChunkExtent> &extents,
                        const std::vector<uint32_t> &hot_chunks) override;

    Result<QueryPlan> planQuery(const ObjectManifest &manifest,
                                const query::Query &q) override;
};

} // namespace fusion::store

#endif // FUSION_STORE_FUSION_STORE_H
