/**
 * @file
 * Text report over observability artifacts: renders per-node health
 * scores, the hottest chunks, sliding-window rates and histogram
 * percentiles from the JSON files the bench binaries dump via
 * `--metrics-out` / `--timeseries-out` (benchutil::obsInit). A "top"
 * for the simulated cluster — point it at CI artifacts or local dumps.
 *
 * Usage:
 *   fusion_top [--metrics=FILE] [--timeseries=FILE] [--top=N]
 *
 * Both inputs are optional but at least one must be given. The parser
 * is a tolerant scanner in the style of trace_diff: it understands
 * exactly the canonical shapes obs::MetricsSnapshot::toJson and
 * obs::Telemetry::toJson emit and ignores everything else.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace {

std::string
readFile(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
        std::fprintf(stderr, "fusion_top: cannot read %s\n",
                     path.c_str());
        std::exit(2);
    }
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    return text;
}

/** Value of `"key": <number>` inside `obj`, or fallback. */
double
findNumber(const std::string &obj, const std::string &key,
           double fallback = 0.0)
{
    const std::string needle = "\"" + key + "\": ";
    size_t pos = obj.find(needle);
    if (pos == std::string::npos)
        return fallback;
    return std::atof(obj.c_str() + pos + needle.size());
}

/** Value of `"key": "<string>"` inside `obj`, or empty. */
std::string
findString(const std::string &obj, const std::string &key)
{
    const std::string needle = "\"" + key + "\": \"";
    size_t pos = obj.find(needle);
    if (pos == std::string::npos)
        return "";
    size_t begin = pos + needle.size();
    size_t end = obj.find('"', begin);
    if (end == std::string::npos)
        return "";
    return obj.substr(begin, end - begin);
}

/**
 * Splits the top-level objects of a JSON array found at
 * `"key": [...]` — brace-matching, no nesting across strings needed
 * for the canonical emitters this tool reads.
 */
std::vector<std::string>
findObjectArray(const std::string &text, const std::string &key,
                size_t from = 0)
{
    std::vector<std::string> out;
    const std::string needle = "\"" + key + "\": [";
    size_t pos = text.find(needle, from);
    if (pos == std::string::npos)
        return out;
    size_t i = pos + needle.size();
    int array_depth = 1;
    while (i < text.size() && array_depth > 0) {
        char c = text[i];
        if (c == ']') {
            --array_depth;
            ++i;
        } else if (c == '{') {
            int depth = 0;
            size_t begin = i;
            while (i < text.size()) {
                if (text[i] == '{')
                    ++depth;
                else if (text[i] == '}' && --depth == 0) {
                    ++i;
                    break;
                }
                ++i;
            }
            out.push_back(text.substr(begin, i - begin));
        } else {
            ++i;
        }
    }
    return out;
}

void
reportMetrics(const std::string &text, size_t top)
{
    // Per-node health gauges: "health.node.<id>": <score>.
    std::vector<std::pair<size_t, double>> health;
    const std::string needle = "\"health.node.";
    size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
        pos += needle.size();
        size_t id = static_cast<size_t>(std::atol(text.c_str() + pos));
        size_t colon = text.find(": ", pos);
        if (colon == std::string::npos)
            break;
        health.emplace_back(id, std::atof(text.c_str() + colon + 2));
        pos = colon;
    }
    if (!health.empty()) {
        std::printf("node health (metrics gauges)\n");
        std::printf("  %-6s %-8s\n", "node", "score");
        for (const auto &[id, score] : health)
            std::printf("  %-6zu %-8.4f%s\n", id, score,
                        score < 0.5    ? "  <-- degraded"
                        : score < 0.99 ? "  <-- recovering"
                                       : "");
        std::printf("\n");
    }

    // Histograms: "name": {"bounds": ..., "p50": ...}.
    std::printf("histograms (interpolated percentiles)\n");
    std::printf("  %-28s %12s %12s %12s\n", "name", "p50", "p95",
                "p99");
    size_t shown = 0;
    pos = 0;
    while ((pos = text.find("\": {\"bounds\": [", pos)) !=
           std::string::npos) {
        size_t name_end = pos;
        size_t name_begin = text.rfind('"', name_end - 1);
        if (name_begin == std::string::npos)
            break;
        ++name_begin;
        size_t obj_end = text.find('}', pos);
        if (obj_end == std::string::npos)
            break;
        const std::string name =
            text.substr(name_begin, name_end - name_begin);
        const std::string obj = text.substr(pos, obj_end - pos + 1);
        std::printf("  %-28s %12.6g %12.6g %12.6g\n", name.c_str(),
                    findNumber(obj, "p50"), findNumber(obj, "p95"),
                    findNumber(obj, "p99"));
        ++shown;
        pos = obj_end;
    }
    if (shown == 0)
        std::printf("  (none)\n");
    std::printf("\n");
    (void)top;
}

void
reportTimeseries(const std::string &text, size_t top)
{
    const auto snapshots = findObjectArray(text, "timeseries");
    // A bare Telemetry::toJson dump (no benchutil wrapper) also works:
    // treat the whole file as one snapshot.
    std::vector<std::string> docs =
        snapshots.empty() ? std::vector<std::string>{text} : snapshots;

    for (const auto &doc : docs) {
        const std::string process = findString(doc, "process");
        std::printf("timeseries%s%s (sim t=%.6gs)\n",
                    process.empty() ? "" : " for ",
                    process.c_str(), findNumber(doc, "now"));

        const auto nodes = findObjectArray(doc, "nodes");
        if (!nodes.empty()) {
            std::printf("  %-6s %-10s %-8s %-10s\n", "node", "band",
                        "score", "penalty");
            for (const auto &n : nodes) {
                const std::string band = findString(n, "band");
                std::printf("  %-6.0f %-10s %-8.4f %-10.4g%s\n",
                            findNumber(n, "node"), band.c_str(),
                            findNumber(n, "score"),
                            findNumber(n, "penalty"),
                            band == "dead"       ? "  <-- failing fast"
                            : band == "flapping" ? "  <-- stretched budget"
                                                 : "");
            }
        }

        const auto chunks = findObjectArray(doc, "chunks");
        if (!chunks.empty()) {
            std::printf("  hottest chunks\n");
            std::printf("  %-24s %-8s %-10s\n", "object", "chunk",
                        "heat");
            size_t shown = 0;
            for (const auto &c : chunks) {
                if (shown++ >= top)
                    break;
                std::printf("  %-24s %-8.0f %-10.4g\n",
                            findString(c, "object").c_str(),
                            findNumber(c, "chunk"),
                            findNumber(c, "heat"));
            }
        }

        const auto windows = findObjectArray(doc, "windows");
        if (!windows.empty()) {
            std::printf("  windows\n");
            std::printf("  %-28s %8s %12s %12s %12s\n", "name",
                        "count", "rate/s", "mean", "p99");
            for (const auto &w : windows)
                std::printf("  %-28s %8.0f %12.6g %12.6g %12.6g\n",
                            findString(w, "name").c_str(),
                            findNumber(w, "count"),
                            findNumber(w, "rate"),
                            findNumber(w, "mean"),
                            findNumber(w, "p99"));
        }

        const auto dumps = findObjectArray(doc, "flight_dumps");
        if (!dumps.empty()) {
            std::printf("  flight dumps: %zu", dumps.size());
            std::printf(" (last reason: %s, %s events)\n",
                        findString(dumps.back(), "reason").c_str(),
                        std::to_string(
                            findObjectArray(dumps.back(), "events")
                                .size())
                            .c_str());
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string metrics_path;
    std::string timeseries_path;
    size_t top = 10;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--metrics=", 0) == 0)
            metrics_path = arg.substr(10);
        else if (arg.rfind("--timeseries=", 0) == 0)
            timeseries_path = arg.substr(13);
        else if (arg.rfind("--top=", 0) == 0)
            top = static_cast<size_t>(std::atol(arg.c_str() + 6));
        else {
            std::fprintf(stderr,
                         "usage: fusion_top [--metrics=FILE] "
                         "[--timeseries=FILE] [--top=N]\n");
            return 2;
        }
    }
    if (metrics_path.empty() && timeseries_path.empty()) {
        std::fprintf(stderr,
                     "fusion_top: need --metrics and/or --timeseries\n");
        return 2;
    }

    std::printf("=== fusion_top ===\n\n");
    if (!metrics_path.empty())
        reportMetrics(readFile(metrics_path), top);
    if (!timeseries_path.empty())
        reportTimeseries(readFile(timeseries_path), top);
    return 0;
}
