#include "metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace fusion::obs {

/** See metrics.h. */
std::string
formatDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new Counter[bounds_.size() + 1])
{
    if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
        std::fprintf(stderr,
                     "obs::Histogram: bucket bounds must be sorted\n");
        std::abort();
    }
}

void
Histogram::observe(double v) noexcept
{
    size_t idx = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin());
    buckets_[idx].add(1);
}

std::vector<uint64_t>
Histogram::bucketCounts() const
{
    std::vector<uint64_t> counts(bounds_.size() + 1);
    for (size_t i = 0; i < counts.size(); ++i)
        counts[i] = buckets_[i].value();
    return counts;
}

uint64_t
Histogram::count() const
{
    uint64_t total = 0;
    for (size_t i = 0; i <= bounds_.size(); ++i)
        total += buckets_[i].value();
    return total;
}

void
Histogram::reset() noexcept
{
    for (size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].reset();
}

std::vector<double>
exponentialBounds(double first, double factor, size_t count)
{
    std::vector<double> bounds;
    bounds.reserve(count);
    double v = first;
    for (size_t i = 0; i < count; ++i) {
        bounds.push_back(v);
        v *= factor;
    }
    return bounds;
}

double
histogramPercentile(const SnapshotValue &v, double p)
{
    uint64_t n = 0;
    for (uint64_t c : v.buckets)
        n += c;
    if (n == 0 || v.bounds.empty())
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 100.0)
        p = 100.0;
    const double h = static_cast<double>(n - 1) * p / 100.0;
    uint64_t before = 0;
    for (size_t i = 0; i < v.buckets.size(); ++i) {
        const uint64_t c = v.buckets[i];
        if (c == 0)
            continue;
        if (h < static_cast<double>(before + c) ||
            before + c == n) {
            // Overflow bucket: unbounded above, clamp to the last
            // bound so the estimate never invents a value.
            if (i == v.bounds.size())
                return v.bounds.back();
            const double lo = i == 0 ? 0.0 : v.bounds[i - 1];
            const double hi = v.bounds[i];
            const double pos =
                (h - static_cast<double>(before) + 0.5) /
                static_cast<double>(c);
            double value = lo + (hi - lo) * pos;
            if (value < lo)
                value = lo;
            if (value > hi)
                value = hi;
            return value;
        }
        before += c;
    }
    return v.bounds.back();
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

bool
SnapshotValue::operator==(const SnapshotValue &other) const
{
    return kind == other.kind && count == other.count &&
           number == other.number && bounds == other.bounds &&
           buckets == other.buckets;
}

std::string
MetricsSnapshot::toJson() const
{
    std::string out = "{\n";
    bool first = true;
    for (const auto &[name, v] : values) {
        if (!first)
            out += ",\n";
        first = false;
        out += "  \"" + name + "\": ";
        switch (v.kind) {
          case SnapshotValue::Kind::kCounter:
            out += std::to_string(v.count);
            break;
          case SnapshotValue::Kind::kDouble:
          case SnapshotValue::Kind::kGauge:
            out += formatDouble(v.number);
            break;
          case SnapshotValue::Kind::kHistogram: {
            out += "{\"bounds\": [";
            for (size_t i = 0; i < v.bounds.size(); ++i)
                out += (i ? ", " : "") + formatDouble(v.bounds[i]);
            out += "], \"counts\": [";
            for (size_t i = 0; i < v.buckets.size(); ++i)
                out += (i ? ", " : "") + std::to_string(v.buckets[i]);
            out += "], \"p50\": " + formatDouble(histogramPercentile(v, 50.0));
            out += ", \"p95\": " + formatDouble(histogramPercentile(v, 95.0));
            out += ", \"p99\": " + formatDouble(histogramPercentile(v, 99.0));
            out += "}";
            break;
          }
        }
    }
    out += "\n}\n";
    return out;
}

std::string
MetricsSnapshot::render() const
{
    size_t width = 0;
    for (const auto &[name, v] : values)
        width = std::max(width, name.size());
    std::string out;
    char line[256];
    for (const auto &[name, v] : values) {
        switch (v.kind) {
          case SnapshotValue::Kind::kCounter:
            std::snprintf(line, sizeof(line), "%-*s %llu\n",
                          static_cast<int>(width), name.c_str(),
                          static_cast<unsigned long long>(v.count));
            break;
          case SnapshotValue::Kind::kDouble:
          case SnapshotValue::Kind::kGauge:
            std::snprintf(line, sizeof(line), "%-*s %g\n",
                          static_cast<int>(width), name.c_str(), v.number);
            break;
          case SnapshotValue::Kind::kHistogram: {
            uint64_t total = 0;
            for (uint64_t b : v.buckets)
                total += b;
            std::snprintf(line, sizeof(line),
                          "%-*s histogram, %llu samples\n",
                          static_cast<int>(width), name.c_str(),
                          static_cast<unsigned long long>(total));
            break;
          }
        }
        out += line;
    }
    return out;
}

MetricsSnapshot
MetricsSnapshot::diff(const MetricsSnapshot &earlier) const
{
    MetricsSnapshot out = *this;
    for (auto &[name, v] : out.values) {
        auto it = earlier.values.find(name);
        if (it == earlier.values.end() || it->second.kind != v.kind)
            continue;
        switch (v.kind) {
          case SnapshotValue::Kind::kCounter:
            v.count -= std::min(it->second.count, v.count);
            break;
          case SnapshotValue::Kind::kDouble:
            v.number -= it->second.number;
            break;
          case SnapshotValue::Kind::kGauge:
            break; // point-in-time: keep the later reading
          case SnapshotValue::Kind::kHistogram:
            if (it->second.buckets.size() == v.buckets.size())
                for (size_t i = 0; i < v.buckets.size(); ++i)
                    v.buckets[i] -=
                        std::min(it->second.buckets[i], v.buckets[i]);
            break;
        }
    }
    return out;
}

void
MetricsSnapshot::mergeFrom(const MetricsSnapshot &other)
{
    for (const auto &[name, v] : other.values) {
        auto [it, inserted] = values.emplace(name, v);
        if (inserted)
            continue;
        SnapshotValue &mine = it->second;
        if (mine.kind != v.kind)
            continue;
        switch (v.kind) {
          case SnapshotValue::Kind::kCounter:
            mine.count += v.count;
            break;
          case SnapshotValue::Kind::kDouble:
            mine.number += v.number;
            break;
          case SnapshotValue::Kind::kGauge:
            mine.number = v.number;
            break;
          case SnapshotValue::Kind::kHistogram:
            if (mine.buckets.size() == v.buckets.size())
                for (size_t i = 0; i < v.buckets.size(); ++i)
                    mine.buckets[i] += v.buckets[i];
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

MetricsRegistry::Entry &
MetricsRegistry::entry(const std::string &name, SnapshotValue::Kind kind)
{
    MutexLock lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        Entry e;
        e.kind = kind;
        it = entries_.emplace(name, std::move(e)).first;
    } else if (it->second.kind != kind) {
        std::fprintf(stderr,
                     "obs::MetricsRegistry: metric '%s' re-registered "
                     "as a different kind\n",
                     name.c_str());
        std::abort();
    }
    return it->second;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    Entry &e = entry(name, SnapshotValue::Kind::kCounter);
    MutexLock lock(mutex_);
    if (!e.counter)
        e.counter = std::make_unique<Counter>();
    return *e.counter;
}

DoubleCounter &
MetricsRegistry::doubleCounter(const std::string &name)
{
    Entry &e = entry(name, SnapshotValue::Kind::kDouble);
    MutexLock lock(mutex_);
    if (!e.dcounter)
        e.dcounter = std::make_unique<DoubleCounter>();
    return *e.dcounter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    Entry &e = entry(name, SnapshotValue::Kind::kGauge);
    MutexLock lock(mutex_);
    if (!e.gauge)
        e.gauge = std::make_unique<Gauge>();
    return *e.gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::vector<double> &bounds)
{
    Entry &e = entry(name, SnapshotValue::Kind::kHistogram);
    MutexLock lock(mutex_);
    if (!e.histogram)
        e.histogram = std::make_unique<Histogram>(bounds);
    return *e.histogram;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MutexLock lock(mutex_);
    MetricsSnapshot snap;
    for (const auto &[name, e] : entries_) {
        SnapshotValue v;
        v.kind = e.kind;
        switch (e.kind) {
          case SnapshotValue::Kind::kCounter:
            v.count = e.counter ? e.counter->value() : 0;
            break;
          case SnapshotValue::Kind::kDouble:
            v.number = e.dcounter ? e.dcounter->value() : 0.0;
            break;
          case SnapshotValue::Kind::kGauge:
            v.number = e.gauge ? e.gauge->value() : 0.0;
            break;
          case SnapshotValue::Kind::kHistogram:
            if (e.histogram) {
                v.bounds = e.histogram->bounds();
                v.buckets = e.histogram->bucketCounts();
            }
            break;
        }
        snap.values.emplace(name, std::move(v));
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    MutexLock lock(mutex_);
    for (auto &[name, e] : entries_) {
        if (e.counter)
            e.counter->reset();
        if (e.dcounter)
            e.dcounter->reset();
        if (e.gauge)
            e.gauge->reset();
        if (e.histogram)
            e.histogram->reset();
    }
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace fusion::obs
