# Empty dependencies file for fusion_workload.
# This may be replaced when dependencies are built.
