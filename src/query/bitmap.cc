#include "bitmap.h"

#include <bit>

#include "codec/snappy.h"
#include "common/serde.h"

namespace fusion::query {

Bitmap::Bitmap(size_t size, bool initial) : size_(size)
{
    words_.assign((size + 63) / 64, initial ? ~0ULL : 0ULL);
    if (initial && size % 64 != 0) {
        // Mask tail bits beyond `size` so count() stays exact.
        words_.back() &= (1ULL << (size % 64)) - 1;
    }
}

size_t
Bitmap::count() const
{
    size_t total = 0;
    for (uint64_t word : words_)
        total += static_cast<size_t>(std::popcount(word));
    return total;
}

void
Bitmap::intersect(const Bitmap &other)
{
    FUSION_CHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] &= other.words_[i];
}

void
Bitmap::unionWith(const Bitmap &other)
{
    FUSION_CHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] |= other.words_[i];
}

Bytes
Bitmap::toBytes() const
{
    Bytes out;
    BinaryWriter writer(out);
    writer.putVarU64(size_);
    for (uint64_t word : words_)
        writer.putU64(word);
    return out;
}

Result<Bitmap>
Bitmap::fromBytes(Slice bytes)
{
    BinaryReader reader(bytes);
    auto size = reader.getVarU64();
    if (!size.isOk())
        return size.status();
    // The words must actually be present before allocating for them.
    uint64_t words = (size.value() + 63) / 64;
    if (words * 8 > reader.remaining())
        return Status::corruption("bitmap size exceeds serialized words");
    Bitmap bitmap(size.value());
    for (auto &word : bitmap.words_) {
        auto w = reader.getU64();
        if (!w.isOk())
            return w.status();
        word = w.value();
    }
    if (size.value() % 64 != 0) {
        uint64_t tail_mask = (1ULL << (size.value() % 64)) - 1;
        if (!bitmap.words_.empty() && (bitmap.words_.back() & ~tail_mask))
            return Status::corruption("bitmap tail bits set beyond size");
    }
    return bitmap;
}

uint64_t
Bitmap::compressedWireSize() const
{
    return codec::snappyCompress(Slice(toBytes())).size();
}

} // namespace fusion::query
