#include "csv.h"

#include <cstdlib>

namespace fusion::format {

namespace {

/** Splits CSV text into rows of fields, honoring quotes. */
Result<std::vector<std::vector<std::string>>>
tokenize(const std::string &text, char delimiter)
{
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> row;
    std::string field;
    bool in_quotes = false;
    bool field_started = false;

    auto end_field = [&]() {
        row.push_back(std::move(field));
        field.clear();
        field_started = false;
    };
    auto end_row = [&]() {
        end_field();
        rows.push_back(std::move(row));
        row.clear();
    };

    for (size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    field += '"'; // escaped quote
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                field += c;
            }
            continue;
        }
        if (c == '"' && !field_started && field.empty()) {
            in_quotes = true;
            field_started = true;
        } else if (c == delimiter) {
            end_field();
        } else if (c == '\n') {
            // Tolerate trailing blank line; \r\n line endings.
            if (!field.empty() && field.back() == '\r')
                field.pop_back();
            end_row();
        } else {
            field += c;
            field_started = true;
        }
    }
    if (in_quotes)
        return Status::corruption("unterminated quoted CSV field");
    if (!field.empty() || !row.empty())
        end_row();
    return rows;
}

bool
parseInt(const std::string &s, int64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(s.c_str(), &end);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

bool
needsQuoting(const std::string &s, char delimiter)
{
    for (char c : s)
        if (c == delimiter || c == '"' || c == '\n' || c == '\r')
            return true;
    return false;
}

std::string
quoteField(const std::string &s, char delimiter)
{
    if (!needsQuoting(s, delimiter))
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

Result<Table>
readCsv(const std::string &text, const Schema &schema,
        const CsvOptions &options)
{
    auto rows = tokenize(text, options.delimiter);
    if (!rows.isOk())
        return rows.status();

    size_t start = 0;
    if (options.hasHeader) {
        if (rows.value().empty())
            return Status::corruption("missing CSV header row");
        const auto &header = rows.value()[0];
        if (header.size() != schema.numColumns())
            return Status::corruption("CSV header column count mismatch");
        for (size_t c = 0; c < header.size(); ++c) {
            if (header[c] != schema.column(c).name)
                return Status::corruption("CSV header name '" + header[c] +
                                          "' != schema column '" +
                                          schema.column(c).name + "'");
        }
        start = 1;
    }

    Table table(schema);
    for (size_t r = start; r < rows.value().size(); ++r) {
        const auto &fields = rows.value()[r];
        if (fields.size() != schema.numColumns())
            return Status::corruption("CSV row " + std::to_string(r) +
                                      " has wrong field count");
        for (size_t c = 0; c < fields.size(); ++c) {
            const std::string &field = fields[c];
            switch (schema.column(c).physical) {
              case PhysicalType::kInt32: {
                int64_t v;
                if (!parseInt(field, v) || v < INT32_MIN || v > INT32_MAX)
                    return Status::corruption("bad int32 field '" + field +
                                              "' at row " +
                                              std::to_string(r));
                table.column(c).append(static_cast<int32_t>(v));
                break;
              }
              case PhysicalType::kInt64: {
                int64_t v;
                if (!parseInt(field, v))
                    return Status::corruption("bad int64 field '" + field +
                                              "' at row " +
                                              std::to_string(r));
                table.column(c).append(v);
                break;
              }
              case PhysicalType::kDouble: {
                double v;
                if (!parseDouble(field, v))
                    return Status::corruption("bad double field '" + field +
                                              "' at row " +
                                              std::to_string(r));
                table.column(c).append(v);
                break;
              }
              case PhysicalType::kString:
                table.column(c).append(field);
                break;
            }
        }
    }
    return table;
}

std::string
writeCsv(const Table &table, const CsvOptions &options)
{
    std::string out;
    const Schema &schema = table.schema();
    if (options.hasHeader) {
        for (size_t c = 0; c < schema.numColumns(); ++c) {
            if (c)
                out += options.delimiter;
            out += quoteField(schema.column(c).name, options.delimiter);
        }
        out += '\n';
    }
    for (size_t r = 0; r < table.numRows(); ++r) {
        for (size_t c = 0; c < schema.numColumns(); ++c) {
            if (c)
                out += options.delimiter;
            out += quoteField(table.column(c).valueAt(r).toString(),
                              options.delimiter);
        }
        out += '\n';
    }
    return out;
}

Result<Schema>
inferCsvSchema(const std::string &text, const CsvOptions &options)
{
    if (!options.hasHeader)
        return Status::invalidArgument(
            "schema inference needs a header row");
    auto rows = tokenize(text, options.delimiter);
    if (!rows.isOk())
        return rows.status();
    if (rows.value().size() < 2)
        return Status::invalidArgument(
            "schema inference needs at least one data row");

    const auto &header = rows.value()[0];
    size_t columns = header.size();
    std::vector<bool> is_int(columns, true), is_real(columns, true);
    for (size_t r = 1; r < rows.value().size(); ++r) {
        const auto &fields = rows.value()[r];
        if (fields.size() != columns)
            return Status::corruption("ragged CSV row " + std::to_string(r));
        for (size_t c = 0; c < columns; ++c) {
            int64_t iv;
            double dv;
            if (!parseInt(fields[c], iv))
                is_int[c] = false;
            if (!parseDouble(fields[c], dv))
                is_real[c] = false;
        }
    }

    Schema schema;
    for (size_t c = 0; c < columns; ++c) {
        ColumnDesc desc;
        desc.name = header[c];
        if (is_int[c])
            desc.physical = PhysicalType::kInt64;
        else if (is_real[c])
            desc.physical = PhysicalType::kDouble;
        else
            desc.physical = PhysicalType::kString;
        schema.addColumn(std::move(desc));
    }
    return schema;
}

} // namespace fusion::format
