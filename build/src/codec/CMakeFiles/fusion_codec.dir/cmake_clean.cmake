file(REMOVE_RECURSE
  "CMakeFiles/fusion_codec.dir/bitpack.cc.o"
  "CMakeFiles/fusion_codec.dir/bitpack.cc.o.d"
  "CMakeFiles/fusion_codec.dir/codec.cc.o"
  "CMakeFiles/fusion_codec.dir/codec.cc.o.d"
  "CMakeFiles/fusion_codec.dir/rle.cc.o"
  "CMakeFiles/fusion_codec.dir/rle.cc.o.d"
  "CMakeFiles/fusion_codec.dir/snappy.cc.o"
  "CMakeFiles/fusion_codec.dir/snappy.cc.o.d"
  "libfusion_codec.a"
  "libfusion_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
