/**
 * @file
 * Tests for the Locally Repairable Code extension: encode/reconstruct,
 * local-repair behavior, repair locality, and undecodable-pattern
 * detection.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "common/random.h"
#include "ec/lrc.h"

namespace fusion::ec {
namespace {

std::vector<Bytes>
randomBlocks(size_t count, size_t size, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Bytes> blocks(count, Bytes(size));
    for (auto &block : blocks)
        for (auto &b : block)
            b = static_cast<uint8_t>(rng.next());
    return blocks;
}

std::vector<std::optional<Bytes>>
encodeAll(const LrcCode &code, const std::vector<Bytes> &data)
{
    std::vector<Slice> views(data.begin(), data.end());
    auto parity = code.encodeParity(views);
    std::vector<std::optional<Bytes>> shards;
    for (const auto &block : data)
        shards.emplace_back(block);
    for (auto &block : parity)
        shards.emplace_back(std::move(block));
    return shards;
}

TEST(LrcTest, CreateValidatesParameters)
{
    EXPECT_FALSE(LrcCode::create(0, 1, 1).isOk());
    EXPECT_FALSE(LrcCode::create(6, 4, 2).isOk()); // l does not divide k
    EXPECT_FALSE(LrcCode::create(250, 5, 5).isOk());
    auto code = LrcCode::create(6, 2, 2);
    ASSERT_TRUE(code.isOk());
    EXPECT_EQ(code.value().n(), 10u);
    EXPECT_EQ(code.value().groupSize(), 3u);
}

TEST(LrcTest, LocalParityIsGroupXor)
{
    auto code = LrcCode::create(6, 2, 2).value();
    auto data = randomBlocks(6, 64, 1);
    auto shards = encodeAll(code, data);
    for (size_t group = 0; group < 2; ++group) {
        Bytes expect(64, 0);
        for (size_t j = 0; j < 3; ++j)
            for (size_t b = 0; b < 64; ++b)
                expect[b] ^= data[group * 3 + j][b];
        EXPECT_EQ(*shards[code.localParityIndex(group)], expect);
    }
}

TEST(LrcTest, SingleDataFailureRepairsLocally)
{
    auto code = LrcCode::create(6, 2, 2).value();
    auto data = randomBlocks(6, 128, 2);
    for (size_t lost = 0; lost < 6; ++lost) {
        auto shards = encodeAll(code, data);
        shards[lost] = std::nullopt;
        ASSERT_TRUE(code.reconstruct(shards, 128).isOk());
        EXPECT_EQ(*shards[lost], data[lost]) << "lost " << lost;
        // Repair locality: a data block needs only groupSize reads.
        EXPECT_EQ(code.repairReadCount(lost), 3u);
    }
    // Global parity repair needs k reads.
    EXPECT_EQ(code.repairReadCount(8), 6u);
    EXPECT_EQ(code.repairReadCount(9), 6u);
}

TEST(LrcTest, LostLocalParityRebuilds)
{
    auto code = LrcCode::create(6, 2, 2).value();
    auto data = randomBlocks(6, 64, 3);
    auto pristine = encodeAll(code, data);
    auto shards = pristine;
    shards[code.localParityIndex(0)] = std::nullopt;
    shards[code.localParityIndex(1)] = std::nullopt;
    ASSERT_TRUE(code.reconstruct(shards, 64).isOk());
    for (size_t i = 0; i < code.n(); ++i)
        EXPECT_EQ(*shards[i], *pristine[i]) << i;
}

TEST(LrcTest, MultiFailureGlobalRecovery)
{
    auto code = LrcCode::create(6, 2, 2).value();
    auto data = randomBlocks(6, 96, 4);
    auto pristine = encodeAll(code, data);

    // Three failures spread so local repair alone cannot fix them all:
    // two data blocks in group 0 and one global parity.
    auto shards = pristine;
    shards[0] = std::nullopt;
    shards[1] = std::nullopt;
    shards[8] = std::nullopt;
    ASSERT_TRUE(code.reconstruct(shards, 96).isOk());
    for (size_t i = 0; i < code.n(); ++i)
        EXPECT_EQ(*shards[i], *pristine[i]) << i;
}

TEST(LrcTest, RandomDecodablePatterns)
{
    auto code = LrcCode::create(6, 2, 2).value();
    auto data = randomBlocks(6, 64, 5);
    auto pristine = encodeAll(code, data);
    Rng rng(6);
    size_t decodable = 0, undecodable = 0;
    for (int trial = 0; trial < 200; ++trial) {
        auto shards = pristine;
        // Erase up to 4 random blocks (l + g = 4 is the max tolerable).
        std::vector<size_t> ids(code.n());
        std::iota(ids.begin(), ids.end(), 0);
        rng.shuffle(ids);
        size_t erasures = 1 + rng.pickIndex(4);
        for (size_t e = 0; e < erasures; ++e)
            shards[ids[e]] = std::nullopt;

        Status status = code.reconstruct(shards, 64);
        if (status.isOk()) {
            ++decodable;
            for (size_t i = 0; i < code.n(); ++i)
                EXPECT_EQ(*shards[i], *pristine[i]);
        } else {
            ++undecodable;
            EXPECT_EQ(status.code(), StatusCode::kUnavailable);
        }
    }
    // Most patterns up to 4 erasures decode; up to 3 always do for this
    // construction in practice.
    EXPECT_GT(decodable, 150u);
}

TEST(LrcTest, ThreeErasuresAlwaysDecode)
{
    // LRC(6,2,2) tolerates any 3 erasures (distance 4).
    auto code = LrcCode::create(6, 2, 2).value();
    auto data = randomBlocks(6, 32, 7);
    auto pristine = encodeAll(code, data);
    const size_t n = code.n();
    for (size_t a = 0; a < n; ++a) {
        for (size_t b = a + 1; b < n; ++b) {
            for (size_t c = b + 1; c < n; ++c) {
                auto shards = pristine;
                shards[a] = shards[b] = shards[c] = std::nullopt;
                ASSERT_TRUE(code.reconstruct(shards, 32).isOk())
                    << a << "," << b << "," << c;
                for (size_t i = 0; i < n; ++i)
                    ASSERT_EQ(*shards[i], *pristine[i]);
            }
        }
    }
}

TEST(LrcTest, TooManyErasuresDetected)
{
    auto code = LrcCode::create(6, 2, 2).value();
    auto data = randomBlocks(6, 32, 8);
    auto shards = encodeAll(code, data);
    // Five erasures exceed l + g: never decodable.
    for (size_t i = 0; i < 5; ++i)
        shards[i] = std::nullopt;
    EXPECT_EQ(code.reconstruct(shards, 32).code(),
              StatusCode::kUnavailable);
}

TEST(LrcTest, VariableSizeBlocks)
{
    auto code = LrcCode::create(6, 2, 2).value();
    Rng rng(9);
    std::vector<Bytes> data;
    for (size_t size : {100u, 20u, 80u, 100u, 1u, 50u}) {
        Bytes block(size);
        for (auto &b : block)
            b = static_cast<uint8_t>(rng.next());
        data.push_back(std::move(block));
    }
    std::vector<Slice> views(data.begin(), data.end());
    auto parity = code.encodeParity(views);
    for (const auto &block : parity)
        EXPECT_EQ(block.size(), 100u);

    // Zero-extend data shards and verify recovery of a short block.
    std::vector<std::optional<Bytes>> shards;
    for (const auto &block : data) {
        Bytes padded = block;
        padded.resize(100, 0);
        shards.emplace_back(std::move(padded));
    }
    for (auto &block : parity)
        shards.emplace_back(std::move(block));
    shards[1] = std::nullopt; // the 20-byte block
    shards[4] = std::nullopt; // the 1-byte block
    ASSERT_TRUE(code.reconstruct(shards, 100).isOk());
    EXPECT_TRUE(std::equal(data[1].begin(), data[1].end(),
                           shards[1]->begin()));
    EXPECT_TRUE(std::equal(data[4].begin(), data[4].end(),
                           shards[4]->begin()));
}

TEST(LrcTest, Azure1222Configuration)
{
    auto code = LrcCode::create(12, 2, 2).value();
    EXPECT_EQ(code.n(), 16u);
    EXPECT_EQ(code.groupSize(), 6u);
    auto data = randomBlocks(12, 64, 10);
    auto pristine = encodeAll(code, data);
    auto shards = pristine;
    shards[3] = std::nullopt;
    ASSERT_TRUE(code.reconstruct(shards, 64).isOk());
    EXPECT_EQ(*shards[3], data[3]);
    EXPECT_EQ(code.repairReadCount(3), 6u); // half of RS(16,12)'s 12
}

} // namespace
} // namespace fusion::ec
