/**
 * @file
 * Reproduces paper Figs 15a/15b: median and tail latency reduction and
 * total network traffic for the four real-world queries of Table 4.
 * Paper: Q1/Q2 up to 48%/40% (p50/p99); taxi queries up to 32%/48%;
 * traffic up to 8.9x lower. For Q4 the fare projection is not pushed
 * (Cost Equation) yet Fusion still wins via the date column.
 */
#include "benchutil/rigs.h"
#include "workload/lineitem.h"
#include "workload/queries.h"
#include "workload/taxi.h"

using namespace fusion;
using namespace fusion::benchutil;

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    banner("Fig 15a/15b", "real-world SQL queries: latency + traffic");

    RigOptions li_options;
    li_options.rows = 60000;
    li_options.copies = 4;
    StorePair lineitem = makeStorePair(Dataset::kLineitem, li_options);

    RigOptions taxi_options;
    taxi_options.rows = 64000;
    taxi_options.copies = 4;
    StorePair taxi = makeStorePair(Dataset::kTaxi, taxi_options);

    struct Row {
        const char *name;
        StorePair *pair;
        query::Query query;
    };
    Row rows[] = {
        {"Q1 (projection heavy)", &lineitem,
         workload::lineitemQ1("x", lineitem.table)},
        {"Q2 (filter heavy)", &lineitem,
         workload::lineitemQ2("x", lineitem.table)},
        {"Q3 (high selectivity)", &taxi, workload::taxiQ3("x", taxi.table)},
        {"Q4 (low selectivity)", &taxi, workload::taxiQ4("x", taxi.table)},
    };

    RunConfig config;
    config.totalQueries = 300;

    TablePrinter table({"query", "p50 reduction (%)", "p99 reduction (%)",
                        "traffic x lower", "fusion pushdowns",
                        "fusion fetches"});
    for (auto &row : rows) {
        Comparison cmp = compareStores(*row.pair, config,
                                       [&](size_t) { return row.query; });
        table.addRow({row.name, fmt("%.1f", cmp.p50ReductionPct()),
                      fmt("%.1f", cmp.p99ReductionPct()),
                      fmt("%.1f", cmp.trafficRatio()),
                      std::to_string(cmp.fusion.projectionPushdowns),
                      std::to_string(cmp.fusion.projectionFetches)});
    }
    table.print();
    std::printf("\npaper: Q1/Q2 up to 48%%/40%%, Q3/Q4 up to 32%%/48%%, "
                "traffic up to 8.9x lower; Q4 disables the fare "
                "projection pushdown\n");
    return 0;
}
