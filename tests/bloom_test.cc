/**
 * @file
 * Tests for the Bloom-filter extension: membership semantics, false
 * positive rate, serialization, footer integration and end-to-end
 * equality-predicate chunk skipping.
 */
#include <gtest/gtest.h>

#include "common/random.h"
#include "format/bloom.h"
#include "format/reader.h"
#include "format/writer.h"
#include "query/eval.h"
#include "sim/cluster.h"
#include "store/fusion_store.h"

namespace fusion::format {
namespace {

TEST(BloomFilterTest, NoFalseNegatives)
{
    BloomFilter filter(1000);
    Rng rng(1);
    std::vector<int64_t> inserted;
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.uniformInt(0, 1 << 30);
        inserted.push_back(v);
        filter.insert(Value::ofInt64(v));
    }
    for (int64_t v : inserted)
        EXPECT_TRUE(filter.mayContain(Value::ofInt64(v)));
}

TEST(BloomFilterTest, FalsePositiveRateNearTarget)
{
    BloomFilter filter(2000);
    Rng rng(2);
    std::set<int64_t> inserted;
    while (inserted.size() < 2000) {
        int64_t v = rng.uniformInt(0, 1 << 30);
        if (inserted.insert(v).second)
            filter.insert(Value::ofInt64(v));
    }
    int false_positives = 0;
    const int probes = 20000;
    for (int i = 0; i < probes; ++i) {
        int64_t v = rng.uniformInt(1 << 30, 1LL << 40);
        false_positives += filter.mayContain(Value::ofInt64(v)) ? 1 : 0;
    }
    double fpp = static_cast<double>(false_positives) / probes;
    EXPECT_LT(fpp, 0.03); // target ~1%
}

TEST(BloomFilterTest, AllTypes)
{
    BloomFilter filter(100);
    filter.insert(Value::ofInt32(-5));
    filter.insert(Value::ofInt64(1LL << 40));
    filter.insert(Value::ofDouble(2.75));
    filter.insert(Value::ofString("fusion"));
    EXPECT_TRUE(filter.mayContain(Value::ofInt32(-5)));
    EXPECT_TRUE(filter.mayContain(Value::ofInt64(1LL << 40)));
    EXPECT_TRUE(filter.mayContain(Value::ofDouble(2.75)));
    EXPECT_TRUE(filter.mayContain(Value::ofString("fusion")));
    EXPECT_FALSE(filter.mayContain(Value::ofString("absent-key")));
}

TEST(BloomFilterTest, SerializeRoundTrip)
{
    BloomFilter filter(500);
    for (int i = 0; i < 500; ++i)
        filter.insert(Value::ofInt64(i * 7));
    auto back = BloomFilter::deserialize(Slice(filter.serialize()));
    ASSERT_TRUE(back.isOk());
    EXPECT_TRUE(back.value() == filter);
    for (int i = 0; i < 500; ++i)
        EXPECT_TRUE(back.value().mayContain(Value::ofInt64(i * 7)));
}

TEST(BloomFilterTest, EmptyFilterNeverPrunes)
{
    BloomFilter filter;
    EXPECT_TRUE(filter.empty());
    EXPECT_TRUE(filter.mayContain(Value::ofInt64(42)));
}

TEST(BloomFilterTest, CorruptDeserializeRejected)
{
    Bytes garbage = {0xff, 0xff, 0xff};
    EXPECT_FALSE(BloomFilter::deserialize(Slice(garbage)).isOk());
    BloomFilter filter(10);
    Bytes truncated = filter.serialize();
    truncated.resize(2);
    EXPECT_FALSE(BloomFilter::deserialize(Slice(truncated)).isOk());
}

Table
makeIdTable(size_t rows)
{
    Schema schema({{"user_id", PhysicalType::kInt64, LogicalType::kNone},
                   {"score", PhysicalType::kDouble, LogicalType::kNone}});
    Table t(schema);
    Rng rng(3);
    for (size_t i = 0; i < rows; ++i) {
        // Unsorted ids: zone maps cannot prune equality lookups.
        t.column(0).append(rng.uniformInt(0, 1 << 24) * 2); // even ids
        t.column(1).append(rng.uniform());
    }
    return t;
}

TEST(BloomIntegrationTest, FooterCarriesFilters)
{
    Table t = makeIdTable(4000);
    WriterOptions options;
    options.rowGroupRows = 1000;
    options.chunk.enableBloomFilter = true;
    auto file = writeTable(t, options);
    ASSERT_TRUE(file.isOk());
    auto reader = FileReader::open(Slice(file.value().bytes));
    ASSERT_TRUE(reader.isOk());
    for (size_t rg = 0; rg < 4; ++rg)
        EXPECT_FALSE(reader.value().metadata().chunk(rg, 0).bloom.empty());
}

TEST(BloomIntegrationTest, EqualityPruningSkipsChunks)
{
    Table t = makeIdTable(4000);
    WriterOptions options;
    options.rowGroupRows = 1000;
    options.chunk.enableBloomFilter = true;
    auto file = writeTable(t, options);
    ASSERT_TRUE(file.isOk());
    const auto &meta = file.value().metadata;

    // Odd ids are never present; zone maps cannot prune (odd values lie
    // inside [min, max]) but blooms almost surely can.
    query::Predicate absent{"user_id", query::CompareOp::kEq,
                            Value::ofInt64(1234567)};
    size_t zone_pruned = 0, bloom_pruned = 0;
    for (size_t rg = 0; rg < 4; ++rg) {
        zone_pruned +=
            query::zoneMapMayMatch(meta.chunk(rg, 0), absent) ? 0 : 1;
        bloom_pruned +=
            query::chunkMayMatch(meta.chunk(rg, 0), absent) ? 0 : 1;
    }
    EXPECT_EQ(zone_pruned, 0u);
    EXPECT_GE(bloom_pruned, 3u);

    // Present values must never be pruned.
    for (size_t rg = 0; rg < 4; ++rg) {
        int64_t present = t.column(0).int64s()[rg * 1000 + 17];
        query::Predicate pred{"user_id", query::CompareOp::kEq,
                              Value::ofInt64(present)};
        EXPECT_TRUE(query::chunkMayMatch(meta.chunk(rg, 0), pred));
    }
}

TEST(BloomIntegrationTest, CrossTypeLiteralsAreSafe)
{
    Table t = makeIdTable(2000);
    WriterOptions options;
    options.chunk.enableBloomFilter = true;
    auto file = writeTable(t, options);
    ASSERT_TRUE(file.isOk());
    const ChunkMeta &chunk = file.value().metadata.chunk(0, 0);

    int64_t present = t.column(0).int64s()[5];
    // Double literal with an exact int value: convertible, usable.
    query::Predicate exact{"user_id", query::CompareOp::kEq,
                           Value::ofDouble(static_cast<double>(present))};
    EXPECT_TRUE(query::chunkMayMatch(chunk, exact));
    // Fractional literal: zone map may pass, bloom must be skipped
    // (conversion inexact) — conservative true.
    query::Predicate fractional{"user_id", query::CompareOp::kEq,
                                Value::ofDouble(present + 0.5)};
    EXPECT_TRUE(query::chunkMayMatch(chunk, fractional));
}

TEST(BloomIntegrationTest, StoreSkipsRowGroupsOnPointLookups)
{
    Table t = makeIdTable(8000);
    WriterOptions writer_options;
    writer_options.rowGroupRows = 1000;
    writer_options.chunk.enableBloomFilter = true;
    auto file = writeTable(t, writer_options);
    ASSERT_TRUE(file.isOk());

    sim::ClusterConfig config;
    sim::Cluster cluster(config);
    store::FusionStore store(cluster, store::StoreOptions{});
    ASSERT_TRUE(store.put("events", file.value().bytes).isOk());

    // Lookup of an absent odd id: every row group bloom-pruned.
    auto absent = store.querySql(
        "SELECT score FROM events WHERE user_id = 999999999");
    ASSERT_TRUE(absent.isOk());
    EXPECT_EQ(absent.value().result.rowsMatched, 0u);
    EXPECT_GE(absent.value().rowGroupsSkipped, 7u);

    // Lookup of a present id returns it and scans its row group.
    int64_t present = t.column(0).int64s()[4321];
    auto hit = store.querySql(
        "SELECT score FROM events WHERE user_id = " +
        std::to_string(present));
    ASSERT_TRUE(hit.isOk());
    EXPECT_GE(hit.value().result.rowsMatched, 1u);
}

} // namespace
} // namespace fusion::format
