# Empty dependencies file for bench_fig16bc_overhead_datasets.
# This may be replaced when dependencies are built.
