# Empty dependencies file for fac_test.
# This may be replaced when dependencies are built.
