# Empty dependencies file for bench_fig14c_network.
# This may be replaced when dependencies are built.
