# Empty dependencies file for bench_fig04a_split.
# This may be replaced when dependencies are built.
