/**
 * @file
 * Structural trace/metrics regression differ for the CI bench-smoke
 * job. The simulator is deterministic, so the observability dumps of a
 * fixed bench invocation are reproducible structure-for-structure: the
 * number of spans per name and the machine-independent counter families
 * (wire.*, fault.*, sched.*, cache.*, append.*, compaction.*) must
 * match a checked-in golden
 * exactly. Histograms, pool.* and throughput numbers are skipped — they
 * vary with host core count and speed.
 *
 * Usage:
 *   trace_diff --trace=fusion_trace.json --metrics=fusion_metrics.json
 *              --golden=bench/baselines/bench_smoke_golden.json
 *              [--regold]
 *
 * Exits 0 when the run matches the golden, 1 with a structural diff on
 * stderr otherwise. --regold rewrites the golden from the current run
 * (the one-command regold after an intentional behaviour change).
 */
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

namespace {

std::string
readFile(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
        std::fprintf(stderr, "trace_diff: cannot read %s\n", path.c_str());
        std::exit(2);
    }
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    return text;
}

/** Counts complete spans per name: every `{"name":"X","cat":"fusion",
 *  "ph":"X"` event the tracer emits. Metadata events don't match. */
void
summarizeTrace(const std::string &text,
               std::map<std::string, double> &summary)
{
    const std::string open = "{\"name\":\"";
    const std::string tail = "\",\"cat\":\"fusion\",\"ph\":\"X\"";
    size_t pos = 0;
    while ((pos = text.find(open, pos)) != std::string::npos) {
        size_t name_begin = pos + open.size();
        size_t name_end = text.find('"', name_begin);
        pos = name_begin;
        if (name_end == std::string::npos)
            break;
        if (text.compare(name_end, tail.size(), tail) != 0)
            continue;
        summary["span." + text.substr(name_begin, name_end - name_begin)] +=
            1.0;
    }
}

bool
stablePrefix(const std::string &name)
{
    return name.rfind("wire.", 0) == 0 || name.rfind("fault.", 0) == 0 ||
           name.rfind("sched.", 0) == 0 || name.rfind("cache.", 0) == 0 ||
           name.rfind("health.", 0) == 0 || name.rfind("append.", 0) == 0 ||
           name.rfind("compaction.", 0) == 0;
}

/** Pulls scalar `"name": number` pairs out of a flat JSON object,
 *  keeping only the machine-independent counter families. Histogram
 *  values (nested objects) never parse as a number and are skipped. */
void
summarizeMetrics(const std::string &text,
                 std::map<std::string, double> &summary)
{
    size_t cur = 0;
    while (true) {
        size_t q0 = text.find('"', cur);
        if (q0 == std::string::npos)
            break;
        size_t q1 = text.find('"', q0 + 1);
        if (q1 == std::string::npos)
            break;
        size_t colon = text.find_first_not_of(" \t", q1 + 1);
        cur = q1 + 1;
        if (colon == std::string::npos || text[colon] != ':')
            continue;
        size_t value = text.find_first_not_of(" \t", colon + 1);
        if (value == std::string::npos || text[value] == '{' ||
            text[value] == '"' || text[value] == '[')
            continue;
        char *end = nullptr;
        double v = std::strtod(text.c_str() + value, &end);
        if (end == text.c_str() + value)
            continue;
        std::string name = text.substr(q0 + 1, q1 - q0 - 1);
        if (stablePrefix(name))
            summary[name] = v;
        cur = static_cast<size_t>(end - text.c_str());
    }
}

/** Same flat {"metrics": {...}} schema the bench trackers use. */
std::map<std::string, double>
readGolden(const std::string &text)
{
    std::map<std::string, double> golden;
    size_t obj = text.find("\"metrics\"");
    if (obj == std::string::npos)
        return golden;
    obj = text.find('{', obj);
    size_t end_obj = text.find('}', obj);
    if (obj == std::string::npos || end_obj == std::string::npos)
        return golden;
    size_t cur = obj;
    while (true) {
        size_t q0 = text.find('"', cur);
        if (q0 == std::string::npos || q0 > end_obj)
            break;
        size_t q1 = text.find('"', q0 + 1);
        size_t colon = text.find(':', q1);
        if (q1 == std::string::npos || colon == std::string::npos ||
            colon > end_obj)
            break;
        char *end = nullptr;
        double v = std::strtod(text.c_str() + colon + 1, &end);
        if (end == text.c_str() + colon + 1)
            break;
        golden[text.substr(q0 + 1, q1 - q0 - 1)] = v;
        cur = static_cast<size_t>(end - text.c_str());
    }
    return golden;
}

void
writeGolden(const std::string &path,
            const std::map<std::string, double> &summary)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "trace_diff: cannot write %s\n",
                     path.c_str());
        std::exit(2);
    }
    std::fprintf(f, "{\n  \"golden\": \"bench_smoke\",\n");
    std::fprintf(f, "  \"metrics\": {\n");
    size_t i = 0;
    for (const auto &[name, v] : summary)
        std::fprintf(f, "    \"%s\": %.17g%s\n", name.c_str(), v,
                     ++i < summary.size() ? "," : "");
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path, metrics_path, golden_path;
    bool regold = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--trace=", 0) == 0)
            trace_path = arg.substr(8);
        else if (arg.rfind("--metrics=", 0) == 0)
            metrics_path = arg.substr(10);
        else if (arg.rfind("--golden=", 0) == 0)
            golden_path = arg.substr(9);
        else if (arg == "--regold")
            regold = true;
        else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            return 2;
        }
    }
    if (golden_path.empty() ||
        (trace_path.empty() && metrics_path.empty())) {
        std::fprintf(stderr,
                     "usage: trace_diff --trace=F --metrics=F "
                     "--golden=G [--regold]\n");
        return 2;
    }

    std::map<std::string, double> summary;
    if (!trace_path.empty())
        summarizeTrace(readFile(trace_path), summary);
    if (!metrics_path.empty())
        summarizeMetrics(readFile(metrics_path), summary);

    if (regold) {
        writeGolden(golden_path, summary);
        std::printf("trace_diff: wrote %zu metric(s) to %s\n",
                    summary.size(), golden_path.c_str());
        return 0;
    }

    auto golden = readGolden(readFile(golden_path));
    int drifts = 0;
    for (const auto &[name, want] : golden) {
        auto it = summary.find(name);
        if (it == summary.end()) {
            std::fprintf(stderr, "  MISSING  %-40s golden=%.17g\n",
                         name.c_str(), want);
            ++drifts;
        } else if (it->second != want) {
            std::fprintf(stderr,
                         "  DRIFT    %-40s golden=%.17g run=%.17g\n",
                         name.c_str(), want, it->second);
            ++drifts;
        }
    }
    for (const auto &[name, got] : summary) {
        if (golden.find(name) == golden.end()) {
            std::fprintf(stderr, "  NEW      %-40s run=%.17g\n",
                         name.c_str(), got);
            ++drifts;
        }
    }
    if (drifts > 0) {
        std::fprintf(stderr,
                     "trace_diff: %d structural difference(s) vs %s\n"
                     "(intentional change? re-run with --regold and "
                     "commit the golden)\n",
                     drifts, golden_path.c_str());
        return 1;
    }
    std::printf("trace_diff: %zu metric(s) match %s\n", summary.size(),
                golden_path.c_str());
    return 0;
}
