/**
 * @file
 * Small fixed-size thread pool with a `parallelFor` primitive, used to
 * parallelize real CPU work (erasure-code math, chunk decode, predicate
 * evaluation) inside a single simulated event. The determinism contract
 * with the simulator: only pure per-index work runs on the pool, every
 * index writes disjoint output, and all merging/accounting happens on
 * the calling thread after the join — so results are bit-identical for
 * any thread count, and simulated time never observes wall-clock
 * scheduling. Thread count comes from the FUSION_THREADS environment
 * variable (default 1, the fully serial mode tests run under).
 */
#ifndef FUSION_COMMON_THREAD_POOL_H
#define FUSION_COMMON_THREAD_POOL_H

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace fusion {

/** Fixed-size worker pool; see file comment for the usage contract. */
class ThreadPool
{
  public:
    /** Spawns `threads - 1` workers (the caller participates in every
     *  parallelFor). `threads <= 1` means fully inline execution. */
    explicit ThreadPool(size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Process-wide pool, sized from FUSION_THREADS (clamped to
     *  [1, 256]) on first use; 1 when unset or unparsable. */
    static ThreadPool &shared();

    /** Resizes the shared pool (test hook; not thread-safe against
     *  concurrent parallelFor calls on the shared pool). */
    static void setSharedThreads(size_t threads);

    size_t threadCount() const { return threads_; }

    /**
     * Calls `fn(i)` for every i in [begin, end), distributing indices
     * across the pool, and returns once all calls finished. Indices may
     * run in any order and on any thread; `fn` must only write state
     * disjoint per index. Runs inline when the pool is size 1, the
     * range is a single index, or the caller is itself a pool worker
     * (nested parallelism degenerates to serial, keeping the pool
     * deadlock-free).
     */
    void parallelFor(size_t begin, size_t end,
                     const std::function<void(size_t)> &fn);

  private:
    struct Batch {
        const std::function<void(size_t)> *fn = nullptr;
        std::atomic<size_t> next{0};
        size_t end = 0;
        std::atomic<size_t> done{0};
        Mutex doneMutex; // serializes the done/doneCv rendezvous only
        CondVar doneCv;
    };

    void workerLoop();
    static void drain(Batch &batch);

    size_t threads_;
    std::vector<std::thread> workers_;

    Mutex mutex_;
    CondVar wake_;
    std::shared_ptr<Batch> current_ FUSION_GUARDED_BY(mutex_);
    /** Bumps when a new batch is posted. */
    uint64_t generation_ FUSION_GUARDED_BY(mutex_) = 0;
    bool stopping_ FUSION_GUARDED_BY(mutex_) = false;
};

} // namespace fusion

#endif // FUSION_COMMON_THREAD_POOL_H
