/**
 * @file
 * Reproduces paper Figs 13c/13d: latency breakdown of the microbench
 * query on column 5 (large chunks, baseline reassembles across nodes)
 * and column 9 (tiny, highly compressed chunks, both systems cheap).
 * Paper: on c5 the baseline spends ~57% of its time reassembling
 * chunks over the network while Fusion's network share is <4%; on c9
 * both spend <3% on network.
 */
#include "benchutil/rigs.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

using namespace fusion;
using namespace fusion::benchutil;

namespace {

void
breakdownRow(TablePrinter &table, const char *system, const char *column,
             const RunStats &stats)
{
    double total =
        stats.diskSeconds + stats.cpuSeconds + stats.networkSeconds;
    table.addRow({column, system,
                  fmt("%.1f", stats.diskSeconds / total * 100),
                  fmt("%.1f", stats.cpuSeconds / total * 100),
                  fmt("%.1f", stats.networkSeconds / total * 100),
                  fmt("%s", formatBytes(stats.networkBytes).c_str())});
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    banner("Fig 13c/13d", "latency breakdown for column 5 and column 9");

    RigOptions options;
    options.rows = 60000;
    options.copies = 4;
    StorePair pair = makeStorePair(Dataset::kLineitem, options);

    RunConfig config;
    config.totalQueries = 300;

    TablePrinter table({"column", "system", "disk (%)", "processing (%)",
                        "network (%)", "bytes moved"});
    // c5 is the paper's showcase column. Our c9 (l_linestatus) cannot
    // express a 1% selectivity (2 distinct values), so the tiny,
    // highly compressed l_quantity column stands in for the
    // "both-systems-cheap" case.
    for (size_t c : {workload::kExtendedPrice, workload::kQuantity}) {
        const char *label =
            (c == workload::kExtendedPrice) ? "c5" : "c4 (stands in for c9)";
        query::Query q = workload::microbenchQuery(
            "x", workload::lineitemSchema().column(c).name,
            pair.table.column(c), 0.01);
        Comparison cmp =
            compareStores(pair, config, [&](size_t) { return q; });
        breakdownRow(table, "baseline", label, cmp.baseline);
        breakdownRow(table, "fusion", label, cmp.fusion);
    }
    table.print();
    std::printf("\npaper: c5 baseline ~57%% network vs Fusion <4%%; c9 both "
                "<3%% network\n");
    return 0;
}
