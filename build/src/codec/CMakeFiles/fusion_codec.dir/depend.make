# Empty dependencies file for fusion_codec.
# This may be replaced when dependencies are built.
