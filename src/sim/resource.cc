#include "resource.h"

namespace fusion::sim {

SimResource::SimResource(SimEngine &engine, std::string name, double rate,
                         size_t slots)
    : engine_(engine), name_(std::move(name)), rate_(rate)
{
    FUSION_CHECK_MSG(rate > 0.0, "resource rate must be positive");
    FUSION_CHECK_MSG(slots >= 1, "resource needs at least one server");
    slotFree_.assign(slots, 0.0);
}

void
SimResource::acquire(double work, double extra_latency,
                     std::function<void()> done)
{
    FUSION_CHECK(work >= 0.0 && extra_latency >= 0.0);

    // Dispatch to the earliest-free server.
    auto slot = std::min_element(slotFree_.begin(), slotFree_.end());
    SimTime start = std::max(engine_.now(), *slot);
    double service = work / (rate_ * rateScale_) + extra_latency;
    SimTime end = start + service;
    *slot = end;

    ++requests_;
    workServed_ += work;
    busySeconds_ += service;

    engine_.scheduleAt(end, std::move(done));
}

} // namespace fusion::sim
