#include "reader.h"

#include <cstring>

#include "common/serde.h"
#include "writer.h"

namespace fusion::format {

Result<FileReader>
FileReader::open(Slice file)
{
    constexpr size_t kMagicLen = sizeof(kFileMagic);
    constexpr size_t kTrailerLen = 4 + sizeof(kFileEndMagic);
    if (file.size() < kMagicLen + kTrailerLen)
        return Status::corruption("file too small for fpax format");
    if (std::memcmp(file.data(), kFileMagic, kMagicLen) != 0)
        return Status::corruption("bad leading magic");
    if (std::memcmp(file.data() + file.size() - sizeof(kFileEndMagic),
                    kFileEndMagic, sizeof(kFileEndMagic)) != 0)
        return Status::corruption("bad trailing magic");

    BinaryReader trailer(file.subslice(file.size() - kTrailerLen, 4));
    auto footer_len = trailer.getU32();
    if (!footer_len.isOk())
        return footer_len.status();
    uint64_t flen = footer_len.value();
    if (flen + kMagicLen + kTrailerLen > file.size())
        return Status::corruption("footer length out of range");

    Slice footer = file.subslice(file.size() - kTrailerLen - flen, flen);
    auto metadata = FileMetadata::deserialize(footer);
    if (!metadata.isOk())
        return metadata.status();

    // Validate chunk extents before trusting them.
    for (const auto *chunk : metadata.value().allChunks()) {
        if (chunk->offset < kMagicLen ||
            chunk->offset + chunk->storedSize >
                file.size() - kTrailerLen - flen) {
            return Status::corruption("chunk extent out of range");
        }
    }
    return FileReader(file, std::move(metadata.value()));
}

Slice
FileReader::chunkBytes(size_t row_group, size_t column) const
{
    const ChunkMeta &meta = metadata_.chunk(row_group, column);
    return file_.subslice(meta.offset, meta.storedSize);
}

Result<ColumnData>
FileReader::readChunk(size_t row_group, size_t column) const
{
    const ColumnDesc &desc = metadata_.schema.column(column);
    return decodeChunk(chunkBytes(row_group, column), desc.physical);
}

Result<Table>
FileReader::readColumns(const std::vector<std::string> &column_names) const
{
    Schema projected;
    std::vector<size_t> ids;
    for (const auto &name : column_names) {
        auto id = metadata_.schema.columnIndex(name);
        if (!id.isOk())
            return id.status();
        ids.push_back(id.value());
        projected.addColumn(metadata_.schema.column(id.value()));
    }

    Table table(projected);
    for (size_t rg = 0; rg < metadata_.numRowGroups(); ++rg) {
        for (size_t out = 0; out < ids.size(); ++out) {
            auto chunk = readChunk(rg, ids[out]);
            if (!chunk.isOk())
                return chunk.status();
            const ColumnData &data = chunk.value();
            for (size_t i = 0; i < data.size(); ++i)
                table.column(out).appendValue(data.valueAt(i));
        }
    }
    FUSION_RETURN_IF_ERROR(table.validate());
    return table;
}

Result<Table>
FileReader::readTable() const
{
    Table table(metadata_.schema);
    for (size_t rg = 0; rg < metadata_.numRowGroups(); ++rg) {
        for (size_t c = 0; c < metadata_.schema.numColumns(); ++c) {
            auto chunk = readChunk(rg, c);
            if (!chunk.isOk())
                return chunk.status();
            const ColumnData &data = chunk.value();
            for (size_t i = 0; i < data.size(); ++i)
                table.column(c).appendValue(data.valueAt(i));
        }
    }
    FUSION_RETURN_IF_ERROR(table.validate());
    return table;
}

} // namespace fusion::format
