/**
 * @file
 * Arithmetic over GF(2^8) with the AES/Rijndael-compatible primitive
 * polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), via exp/log tables.
 * This is the field underlying the systematic Reed-Solomon codes used
 * by both the baseline store and Fusion.
 *
 * The hot primitive, mulAccumulate (dst[i] ^= c * src[i]), runs on one
 * of three kernels selected at runtime:
 *  - kAvx2 / kSsse3: 4-bit split tables. A product c*s in GF(256)
 *    splits as c*(s_lo ^ s_hi<<4) = c*s_lo ^ c*(s_hi<<4), so two
 *    16-entry tables per coefficient (32 bytes, precomputed for every
 *    c at startup) turn the multiply into two pshufb lookups per
 *    16/32-byte vector.
 *  - kScalar: a branch-free blocked loop over the precomputed 256-entry
 *    product row for c (no per-byte zero test, no log/exp chain).
 * All kernels are bit-identical; dispatch honours the FUSION_SIMD
 * environment variable ("scalar", "ssse3", "avx2") for forcing a level.
 */
#ifndef FUSION_EC_GF256_H
#define FUSION_EC_GF256_H

#include <cstddef>
#include <cstdint>

namespace fusion::ec {

/** Instruction-set level a mulAccumulate kernel targets. */
enum class SimdLevel : uint8_t {
    kScalar = 0,
    kSsse3 = 1,
    kAvx2 = 2,
};

const char *simdLevelName(SimdLevel level);

/** Table-driven GF(2^8) arithmetic. All operations are total except
 *  division/inverse by zero, which abort. */
class Gf256
{
  public:
    /** Returns the process-wide table instance. */
    static const Gf256 &instance();

    /** Best kernel the CPU supports, after the FUSION_SIMD override. */
    static SimdLevel bestSimdLevel();

    uint8_t
    add(uint8_t a, uint8_t b) const
    {
        return a ^ b;
    }

    uint8_t
    mul(uint8_t a, uint8_t b) const
    {
        return mul_[a][b];
    }

    uint8_t div(uint8_t a, uint8_t b) const;
    uint8_t inv(uint8_t a) const;

    /** a raised to the integer power e (e >= 0). */
    uint8_t pow(uint8_t a, unsigned e) const;

    /** Multiply-accumulate over a byte range: dst[i] ^= c * src[i],
     *  using the best kernel available on this CPU. */
    void
    mulAccumulate(uint8_t *dst, const uint8_t *src, size_t len,
                  uint8_t c) const
    {
        mulAccumulate(dst, src, len, c, bestSimdLevel());
    }

    /** Same, forcing a specific kernel (used by tests and benches; a
     *  level above what the CPU supports falls back to scalar). */
    void mulAccumulate(uint8_t *dst, const uint8_t *src, size_t len,
                       uint8_t c, SimdLevel level) const;

  private:
    Gf256();

    void mulAccumulateScalar(uint8_t *dst, const uint8_t *src, size_t len,
                             uint8_t c) const;

    // exp_ is doubled so pow()/div() can skip the mod-255 reduction.
    uint8_t exp_[512];
    uint8_t log_[256];
    // Full product table: mul_[c][s] = c * s. Row c is the scalar
    // kernel's lookup table (64 KiB total; rows used in a stripe stay
    // L1-resident).
    uint8_t mul_[256][256];
    // 4-bit split tables: nibLo_[c][x] = c * x, nibHi_[c][x] = c * (x<<4)
    // for x in [0, 16). Each row is the 32-byte pshufb operand pair.
    alignas(16) uint8_t nibLo_[256][16];
    alignas(16) uint8_t nibHi_[256][16];
};

} // namespace fusion::ec

#endif // FUSION_EC_GF256_H
