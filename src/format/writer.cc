#include "writer.h"

#include <algorithm>

#include "common/serde.h"

namespace fusion::format {

Result<WrittenFile>
writeTable(const Table &table, const WriterOptions &options)
{
    FUSION_RETURN_IF_ERROR(table.validate());
    if (table.numRows() == 0)
        return Status::invalidArgument("cannot write an empty table");
    if (options.rowGroupRows == 0)
        return Status::invalidArgument("rowGroupRows must be positive");

    WrittenFile out;
    out.metadata.schema = table.schema();
    out.metadata.numRows = table.numRows();

    Bytes &file = out.bytes;
    file.insert(file.end(), kFileMagic, kFileMagic + sizeof(kFileMagic));

    const size_t num_rows = table.numRows();
    const size_t num_cols = table.numColumns();
    for (size_t begin = 0; begin < num_rows; begin += options.rowGroupRows) {
        size_t end = std::min(num_rows, begin + options.rowGroupRows);
        RowGroupMeta rg;
        rg.numRows = end - begin;
        uint32_t rg_id = static_cast<uint32_t>(out.metadata.rowGroups.size());

        for (size_t c = 0; c < num_cols; ++c) {
            // Materialize this row group's slice of the column.
            ColumnData slice(table.schema().column(c).physical);
            for (size_t r = begin; r < end; ++r)
                slice.appendValue(table.column(c).valueAt(r));

            EncodedChunk encoded = encodeChunk(slice, options.chunk);

            ChunkMeta meta;
            meta.rowGroupId = rg_id;
            meta.columnId = static_cast<uint32_t>(c);
            meta.offset = file.size();
            meta.storedSize = encoded.bytes.size();
            meta.plainSize = encoded.plainSize;
            meta.valueCount = encoded.valueCount;
            meta.encoding = encoded.encoding;
            meta.minValue = encoded.minValue;
            meta.maxValue = encoded.maxValue;
            meta.bloom = std::move(encoded.bloom);
            rg.chunks.push_back(std::move(meta));

            appendBytes(file, encoded.bytes);
        }
        out.metadata.rowGroups.push_back(std::move(rg));
    }

    Bytes footer = out.metadata.serialize();
    appendBytes(file, footer);
    BinaryWriter writer(file);
    writer.putU32(static_cast<uint32_t>(footer.size()));
    file.insert(file.end(), kFileEndMagic,
                kFileEndMagic + sizeof(kFileEndMagic));
    return out;
}

} // namespace fusion::format
