/**
 * @file
 * Simulated-time span tracer. Spans are stamped with the owning
 * store's sim::Engine clock (injected as a plain callback so this
 * layer stays dependency-free), which makes traces bit-identical
 * across thread counts and repeat runs: the discrete-event simulation
 * is deterministic, spans are only recorded from the simulation driver
 * thread (never from thread-pool workers), and the exporter uses fixed
 * formatting.
 *
 * Export is Chrome/Perfetto `trace_event` JSON ("X" complete events).
 * Overlapping spans — concurrent simulated tasks inside one query
 * stage — are laid out by assigning each span the lowest free lane
 * (tid), a deterministic greedy sweep, so every per-tid track is
 * properly nested.
 */
#ifndef FUSION_OBS_TRACE_H
#define FUSION_OBS_TRACE_H

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace fusion::obs {

/** One recorded span, in simulated seconds. */
struct TraceSpan {
    const char *name = "";
    double beginSeconds = 0.0;
    double endSeconds = -1.0;  // < begin means never ended
    std::string args;          // preformatted JSON object body, or ""
};

/** A named process worth of spans for multi-store trace files. */
struct TraceProcess {
    std::string name;
    std::vector<TraceSpan> spans;
};

/** Renders processes to a Chrome `trace_event` JSON document. */
std::string chromeTraceJson(const std::vector<TraceProcess> &processes);

/** Writes `text` to `path`; returns false (with stderr note) on I/O
 *  failure. */
bool writeTextFile(const std::string &path, const std::string &text);

/**
 * Span recorder. Disabled by default: beginSpan costs one branch and
 * returns 0, endSpan on id 0 is a no-op. Not thread-safe by design —
 * record only from the simulation driver thread.
 */
class Tracer
{
  public:
    using Clock = std::function<double()>;

    /** Installs the simulated-seconds clock (unset clock reads 0.0). */
    void setClock(Clock clock) { clock_ = std::move(clock); }

    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /** Opens a span; returns its id (0 when disabled). `name` must
     *  outlive the tracer (string literals). */
    uint64_t
    beginSpan(const char *name, std::string args = std::string())
    {
        if (!enabled_)
            return 0;
        spans_.push_back({name, now(), -1.0, std::move(args)});
        return spans_.size();
    }

    void
    endSpan(uint64_t id)
    {
        if (id == 0)
            return;
        spans_[id - 1].endSeconds = now();
    }

    /** endSpan, attaching (or replacing) the span's args. */
    void
    endSpan(uint64_t id, std::string args)
    {
        if (id == 0)
            return;
        spans_[id - 1].endSeconds = now();
        spans_[id - 1].args = std::move(args);
    }

    /** Records a zero-duration span. */
    void
    instant(const char *name, std::string args = std::string())
    {
        if (!enabled_)
            return;
        double t = now();
        spans_.push_back({name, t, t, std::move(args)});
    }

    /** RAII span for synchronous scopes. */
    class Scoped
    {
      public:
        Scoped(Tracer &tracer, const char *name)
            : tracer_(tracer), id_(tracer.beginSpan(name))
        {
        }
        ~Scoped() { tracer_.endSpan(id_); }
        Scoped(const Scoped &) = delete;
        Scoped &operator=(const Scoped &) = delete;

      private:
        Tracer &tracer_;
        uint64_t id_;
    };

    size_t spanCount() const { return spans_.size(); }
    const std::vector<TraceSpan> &spans() const { return spans_; }

    /** Moves all recorded spans out (tracer keeps running). */
    std::vector<TraceSpan> takeSpans();

    /** Chrome trace JSON of this tracer's spans as one process. */
    std::string toChromeJson(const std::string &process_name) const;

    void clear() { spans_.clear(); }

  private:
    double now() const { return clock_ ? clock_() : 0.0; }

    Clock clock_;
    bool enabled_ = false;
    std::vector<TraceSpan> spans_;
};

} // namespace fusion::obs

#endif // FUSION_OBS_TRACE_H
