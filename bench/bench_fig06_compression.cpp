/**
 * @file
 * Reproduces paper Fig 6: average compression ratio of column chunks
 * per column of the TPC-H lineitem file. Paper: median 9.3, max 63.5;
 * flag/status columns extreme, comment and price columns low.
 */
#include <algorithm>

#include "benchutil/harness.h"
#include "workload/lineitem.h"

using namespace fusion;

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    benchutil::banner("Fig 6",
                      "compression ratio per lineitem column (avg chunks)");

    auto file = workload::buildLineitemFile(120000, 6);
    FUSION_CHECK(file.isOk());
    const auto &meta = file.value().metadata;

    benchutil::TablePrinter table(
        {"column id", "name", "compression ratio", "stored bytes"});
    std::vector<double> ratios;
    for (size_t c = 0; c < meta.schema.numColumns(); ++c) {
        double plain = 0, stored = 0;
        for (size_t rg = 0; rg < meta.numRowGroups(); ++rg) {
            plain += static_cast<double>(meta.chunk(rg, c).plainSize);
            stored += static_cast<double>(meta.chunk(rg, c).storedSize);
        }
        double ratio = plain / stored;
        ratios.push_back(ratio);
        table.addRow({std::to_string(c), meta.schema.column(c).name,
                      benchutil::fmt("%.1f", ratio),
                      formatBytes(static_cast<uint64_t>(stored))});
    }
    table.print();

    std::sort(ratios.begin(), ratios.end());
    std::printf("\nmedian ratio %.1f (paper ~9.3), max %.1f (paper ~63.5)\n",
                ratios[ratios.size() / 2], ratios.back());
    return 0;
}
