#include "reed_solomon.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace fusion::ec {

namespace {

/**
 * Tile width for stripe math. Small enough that one destination tile
 * plus one source tile stay cache-resident across the coefficient
 * loop; large enough that per-tile dispatch overhead vanishes.
 */
constexpr size_t kStripeTileBytes = 32 * 1024;

size_t
tileCount(size_t block_size)
{
    return (block_size + kStripeTileBytes - 1) / kStripeTileBytes;
}

} // namespace

Result<ReedSolomon>
ReedSolomon::create(size_t n, size_t k)
{
    if (k == 0 || n <= k)
        return Status::invalidArgument("require 0 < k < n");
    if (n > 256)
        return Status::invalidArgument("GF(256) supports at most n = 256");

    // Normalize a Vandermonde matrix so the top k rows become the
    // identity; the bottom n-k rows then generate parity. Any k rows of
    // the result remain linearly independent.
    Matrix vand = Matrix::vandermonde(n, k);
    std::vector<size_t> top(k);
    for (size_t i = 0; i < k; ++i)
        top[i] = i;
    auto top_inv = vand.selectRows(top).inverse();
    if (!top_inv.isOk())
        return top_inv.status();
    Matrix systematic = vand.multiply(top_inv.value());
    return ReedSolomon(n, k, std::move(systematic));
}

std::vector<Bytes>
ReedSolomon::encodeParity(const std::vector<Slice> &data_blocks) const
{
    FUSION_CHECK(data_blocks.size() == k_);
    size_t block_size = 0;
    for (const auto &block : data_blocks)
        block_size = std::max(block_size, block.size());

    const Gf256 &gf = Gf256::instance();
    std::vector<Bytes> parity(parityCount(), Bytes(block_size, 0));
    // Tiled accumulation: each task owns one tile of every parity
    // block, so a source tile is read once per tile while the (n-k)
    // destination tiles stay cache-resident. Tiles write disjoint
    // ranges, making the parallelFor deterministic by construction.
    ThreadPool::shared().parallelFor(
        0, tileCount(block_size), [&](size_t tile) {
            size_t lo = tile * kStripeTileBytes;
            size_t hi = std::min(lo + kStripeTileBytes, block_size);
            for (size_t j = 0; j < k_; ++j) {
                if (data_blocks[j].size() <= lo)
                    continue; // implicit zero extension
                size_t len = std::min(hi, data_blocks[j].size()) - lo;
                for (size_t p = 0; p < parityCount(); ++p) {
                    gf.mulAccumulate(parity[p].data() + lo,
                                     data_blocks[j].data() + lo, len,
                                     matrix_.at(k_ + p, j));
                }
            }
        });
    return parity;
}

Status
ReedSolomon::reconstruct(std::vector<std::optional<Bytes>> &shards,
                         size_t block_size) const
{
    if (shards.size() != n_)
        return Status::invalidArgument("expected n shards");

    std::vector<size_t> present;
    for (size_t i = 0; i < n_; ++i) {
        if (shards[i].has_value()) {
            if (shards[i]->size() != block_size)
                return Status::invalidArgument(
                    "survivor shard size != block size");
            present.push_back(i);
        }
    }
    if (!recoverable(present.size()))
        return Status::unavailable(
            "too many erasures to reconstruct: " +
            std::to_string(present.size()) + " of " + std::to_string(n_) +
            " shards survive, need " + std::to_string(k_));
    if (present.size() == n_)
        return Status::ok();

    // Use the first k survivors: rows of the encoding matrix.
    present.resize(k_);
    auto decode = matrix_.selectRows(present).inverse();
    if (!decode.isOk())
        return decode.status();

    const Gf256 &gf = Gf256::instance();

    // Recover data blocks: data[j] = sum_i decode[j][i] * survivor[i].
    // Missing blocks are independent linear combinations over the same
    // k survivors, so the tile loop parallelizes exactly like encode.
    std::vector<Bytes> data(k_);
    std::vector<size_t> missing;
    for (size_t j = 0; j < k_; ++j) {
        if (shards[j].has_value())
            data[j] = *shards[j];
        else {
            data[j].assign(block_size, 0);
            missing.push_back(j);
        }
    }
    ThreadPool::shared().parallelFor(
        0, tileCount(block_size), [&](size_t tile) {
            size_t lo = tile * kStripeTileBytes;
            size_t len = std::min(lo + kStripeTileBytes, block_size) - lo;
            for (size_t i = 0; i < k_; ++i) {
                const uint8_t *src = shards[present[i]]->data() + lo;
                for (size_t j : missing) {
                    gf.mulAccumulate(data[j].data() + lo, src, len,
                                     decode.value().at(j, i));
                }
            }
        });
    for (size_t j = 0; j < k_; ++j) {
        if (!shards[j].has_value())
            shards[j] = data[j];
    }

    // Re-encode any missing parity from the recovered data.
    std::vector<Slice> data_views;
    data_views.reserve(k_);
    for (size_t j = 0; j < k_; ++j)
        data_views.emplace_back(data[j]);
    bool parity_missing = false;
    for (size_t p = k_; p < n_; ++p)
        parity_missing |= !shards[p].has_value();
    if (parity_missing) {
        std::vector<Bytes> parity = encodeParity(data_views);
        for (size_t p = k_; p < n_; ++p) {
            if (!shards[p].has_value())
                shards[p] = std::move(parity[p - k_]);
        }
    }
    return Status::ok();
}

Result<Stripe>
encodeStripe(const ReedSolomon &rs, std::vector<Bytes> data_blocks)
{
    if (data_blocks.size() != rs.k())
        return Status::invalidArgument("expected k data blocks");

    Stripe stripe;
    stripe.dataSizes.reserve(rs.k());
    std::vector<Slice> views;
    views.reserve(rs.k());
    for (const auto &block : data_blocks) {
        stripe.dataSizes.push_back(block.size());
        stripe.blockSize = std::max<uint64_t>(stripe.blockSize, block.size());
        views.emplace_back(block);
    }
    std::vector<Bytes> parity = rs.encodeParity(views);
    stripe.blocks = std::move(data_blocks);
    for (auto &p : parity)
        stripe.blocks.push_back(std::move(p));
    return stripe;
}

Result<std::vector<Bytes>>
recoverStripeData(const ReedSolomon &rs,
                  std::vector<std::optional<Bytes>> shards,
                  const std::vector<uint64_t> &data_sizes,
                  uint64_t block_size)
{
    if (shards.size() != rs.n())
        return Status::invalidArgument("expected n shards");
    if (data_sizes.size() != rs.k())
        return Status::invalidArgument("expected k data sizes");

    // Zero-extend surviving data blocks to the stripe block size.
    for (size_t i = 0; i < rs.k(); ++i) {
        if (shards[i].has_value()) {
            if (shards[i]->size() > block_size)
                return Status::invalidArgument("shard larger than block");
            shards[i]->resize(block_size, 0);
        }
    }
    FUSION_RETURN_IF_ERROR(rs.reconstruct(shards, block_size));

    std::vector<Bytes> data;
    data.reserve(rs.k());
    for (size_t i = 0; i < rs.k(); ++i) {
        Bytes block = std::move(*shards[i]);
        block.resize(data_sizes[i]);
        data.push_back(std::move(block));
    }
    return data;
}

} // namespace fusion::ec
