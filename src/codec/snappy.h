/**
 * @file
 * A from-scratch implementation of the Snappy compression format
 * (https://github.com/google/snappy/blob/main/format_description.txt).
 *
 * The paper's column chunks are Snappy-compressed before hitting disk;
 * per-chunk compressibility drives both the FAC size distribution and
 * the pushdown Cost Equation, so a real byte-oriented LZ codec (not a
 * stub) is required for the compression ratios to be meaningful.
 *
 * Stream layout: varint uncompressed length, then tagged elements:
 *   tag & 3 == 0: literal; length-1 in tag>>2, or 60..63 selects a
 *                 1..4-byte little-endian length-1 suffix.
 *   tag & 3 == 1: copy, 1-byte offset; len = 4 + ((tag>>2) & 7),
 *                 offset = ((tag>>5) << 8) | next byte.
 *   tag & 3 == 2: copy, 2-byte LE offset; len = (tag>>2) + 1.
 *   tag & 3 == 3: copy, 4-byte LE offset; len = (tag>>2) + 1.
 */
#ifndef FUSION_CODEC_SNAPPY_H
#define FUSION_CODEC_SNAPPY_H

#include "common/bytes.h"
#include "common/status.h"

namespace fusion::codec {

/** Compresses `input` into Snappy format. Never fails. */
Bytes snappyCompress(Slice input);

/** Decompresses a Snappy stream; kCorruption on malformed input. */
Result<Bytes> snappyDecompress(Slice input);

/** Reads the uncompressed-length preamble without decompressing. */
Result<uint64_t> snappyUncompressedLength(Slice input);

} // namespace fusion::codec

#endif // FUSION_CODEC_SNAPPY_H
