/**
 * @file
 * Corruption-robustness fuzzing: random byte flips, truncations and
 * garbage inputs against every decoder in the stack (snappy, RLE,
 * chunk, file footer, bitmap, metadata). Decoders must never crash or
 * hang — they either return an error or, rarely, a benign value.
 */
#include <gtest/gtest.h>

#include "codec/rle.h"
#include "codec/snappy.h"
#include "common/random.h"
#include "format/chunk_codec.h"
#include "format/metadata.h"
#include "format/reader.h"
#include "format/writer.h"
#include "query/bitmap.h"
#include "workload/lineitem.h"

namespace fusion {
namespace {

Bytes
flipBytes(const Bytes &input, Rng &rng, int flips)
{
    Bytes out = input;
    for (int i = 0; i < flips && !out.empty(); ++i)
        out[rng.pickIndex(out.size())] ^=
            static_cast<uint8_t>(1 + rng.uniformInt(0, 254));
    return out;
}

Bytes
randomGarbage(Rng &rng, size_t max_size)
{
    Bytes out(rng.pickIndex(max_size + 1));
    for (auto &b : out)
        b = static_cast<uint8_t>(rng.next());
    return out;
}

TEST(FuzzTest, SnappySurvivesCorruption)
{
    Rng rng(1);
    std::string payload;
    for (int i = 0; i < 500; ++i)
        payload += "chunk payload " + std::to_string(i % 17) + ";";
    Bytes compressed = codec::snappyCompress(Slice(payload));

    for (int trial = 0; trial < 300; ++trial) {
        Bytes corrupt = flipBytes(compressed, rng, 1 + trial % 5);
        auto result = codec::snappyDecompress(Slice(corrupt));
        if (result.isOk()) {
            // A lucky flip may still satisfy the format; output must
            // match the declared length at least.
            auto len = codec::snappyUncompressedLength(Slice(corrupt));
            ASSERT_TRUE(len.isOk());
            EXPECT_EQ(result.value().size(), len.value());
        }
    }
    for (int trial = 0; trial < 200; ++trial) {
        Bytes garbage = randomGarbage(rng, 512);
        (void)codec::snappyDecompress(Slice(garbage)); // must not crash
    }
}

TEST(FuzzTest, SnappySurvivesTruncation)
{
    std::string payload(10000, 'x');
    for (size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<char>('a' + i % 7);
    Bytes compressed = codec::snappyCompress(Slice(payload));
    for (size_t keep = 0; keep < compressed.size(); keep += 7) {
        Bytes truncated(compressed.begin(), compressed.begin() + keep);
        auto result = codec::snappyDecompress(Slice(truncated));
        EXPECT_FALSE(result.isOk());
    }
}

TEST(FuzzTest, RleSurvivesCorruption)
{
    Rng rng(2);
    std::vector<uint64_t> values;
    for (int i = 0; i < 4000; ++i)
        values.push_back((i / 37) % 11);
    Bytes encoded = codec::rleEncode(values, 4);

    for (int trial = 0; trial < 300; ++trial) {
        Bytes corrupt = flipBytes(encoded, rng, 1 + trial % 3);
        auto result = codec::rleDecode(Slice(corrupt), 4, values.size());
        if (result.isOk())
            EXPECT_EQ(result.value().size(), values.size());
    }
    for (int trial = 0; trial < 200; ++trial) {
        Bytes garbage = randomGarbage(rng, 256);
        (void)codec::rleDecode(Slice(garbage), 4, 1000);
    }
}

TEST(FuzzTest, ChunkDecoderSurvivesCorruption)
{
    Rng rng(3);
    format::ColumnData column(format::PhysicalType::kInt64);
    for (int i = 0; i < 5000; ++i)
        column.append(static_cast<int64_t>(rng.uniformInt(0, 50)));
    format::EncodedChunk encoded = format::encodeChunk(column, {});

    for (int trial = 0; trial < 400; ++trial) {
        Bytes corrupt = flipBytes(encoded.bytes, rng, 1 + trial % 8);
        auto result =
            format::decodeChunk(Slice(corrupt), format::PhysicalType::kInt64);
        if (result.isOk()) {
            // Even a "successful" decode of corrupt data must keep the
            // declared value count.
            EXPECT_EQ(result.value().size(), column.size());
        }
    }
}

TEST(FuzzTest, FileReaderSurvivesCorruption)
{
    auto file = workload::buildLineitemFile(500, 1);
    ASSERT_TRUE(file.isOk());
    Rng rng(4);

    for (int trial = 0; trial < 200; ++trial) {
        Bytes corrupt = flipBytes(file.value().bytes, rng, 1 + trial % 4);
        auto reader = format::FileReader::open(Slice(corrupt));
        if (!reader.isOk())
            continue;
        // Footer may have survived; decoding chunks must stay safe.
        for (size_t rg = 0; rg < reader.value().metadata().numRowGroups();
             ++rg) {
            for (size_t c = 0;
                 c < reader.value().metadata().schema.numColumns(); ++c) {
                (void)reader.value().readChunk(rg, c);
            }
        }
    }
    for (int trial = 0; trial < 100; ++trial) {
        Bytes garbage = randomGarbage(rng, 4096);
        EXPECT_FALSE(format::FileReader::open(Slice(garbage)).isOk());
    }
}

TEST(FuzzTest, FooterSurvivesCorruption)
{
    auto file = workload::buildLineitemFile(300, 2);
    ASSERT_TRUE(file.isOk());
    Bytes footer = file.value().metadata.serialize();
    Rng rng(5);
    for (int trial = 0; trial < 300; ++trial) {
        Bytes corrupt = flipBytes(footer, rng, 1 + trial % 6);
        (void)format::FileMetadata::deserialize(Slice(corrupt));
    }
    for (size_t keep = 0; keep < footer.size(); keep += 11) {
        Bytes truncated(footer.begin(), footer.begin() + keep);
        EXPECT_FALSE(
            format::FileMetadata::deserialize(Slice(truncated)).isOk());
    }
}

TEST(FuzzTest, BitmapSurvivesCorruption)
{
    query::Bitmap bitmap(1000);
    for (size_t i = 0; i < 1000; i += 3)
        bitmap.set(i);
    Bytes bytes = bitmap.toBytes();
    Rng rng(6);
    for (int trial = 0; trial < 200; ++trial) {
        Bytes corrupt = flipBytes(bytes, rng, 1 + trial % 3);
        auto result = query::Bitmap::fromBytes(Slice(corrupt));
        if (result.isOk())
            EXPECT_LE(result.value().count(), result.value().size());
    }
}

// Property: whatever bytes a chunk is fed, decode + re-encode of a
// *valid* decode must round trip (no silent value corruption).
TEST(FuzzTest, ValidDecodesAreSelfConsistent)
{
    Rng rng(7);
    for (int trial = 0; trial < 30; ++trial) {
        format::ColumnData column(format::PhysicalType::kInt32);
        size_t n = 100 + rng.pickIndex(2000);
        for (size_t i = 0; i < n; ++i)
            column.append(
                static_cast<int32_t>(rng.uniformInt(-1000, 1000)));
        format::ChunkEncodeOptions options;
        options.pageValueCount = 64 + rng.pickIndex(512);
        format::EncodedChunk encoded = format::encodeChunk(column, options);
        auto decoded = format::decodeChunk(Slice(encoded.bytes),
                                           format::PhysicalType::kInt32);
        ASSERT_TRUE(decoded.isOk());
        ASSERT_TRUE(decoded.value() == column);
        format::EncodedChunk re =
            format::encodeChunk(decoded.value(), options);
        auto re_decoded = format::decodeChunk(Slice(re.bytes),
                                              format::PhysicalType::kInt32);
        ASSERT_TRUE(re_decoded.isOk());
        EXPECT_TRUE(re_decoded.value() == column);
    }
}

} // namespace
} // namespace fusion
