/**
 * @file
 * Object-lifecycle benchmark: a lineitem object ingests a steady
 * append stream while closed-loop clients query it, with background
 * compaction on vs off (src/lifecycle/). The query mix is skewed to
 * the quantity/extendedprice columns, so the compaction-on rig's
 * heat-driven re-stripe co-locates those chunks in leading stripes.
 *
 * Per cell the bench reports storage wire bytes (wire.filter.* +
 * wire.projection.* — the delta-merge fetches land in the projection
 * family), p50/p99 query latency, delta segments scanned, and the
 * compaction counters. With compaction off every query re-ships every
 * live delta segment off a replica; with compaction on the log stays
 * bounded and folded rows are served from the FAC base — the gap this
 * bench quantifies.
 *
 * Everything runs in simulation, so every number is deterministic and
 * the JSON output can be gated byte-for-byte-stable in CI. Writes
 * BENCH_ingest_compact.json and, with --check, exits nonzero when any
 * metric regressed more than --tolerance vs the checked-in baseline,
 * when compaction-on fails to beat compaction-off on both p99 latency
 * and storage wire bytes, or when the re-striped layout shows no
 * hot-colocated chunk in EXPLAIN.
 *
 * Usage:
 *   bench_ingest_compact [--quick] [--out=PATH] [--check=BASELINE]
 *                        [--tolerance=0.05]
 */
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "benchutil/harness.h"
#include "format/writer.h"
#include "query/parser.h"
#include "sim/cluster.h"
#include "store/fusion_store.h"
#include "workload/lineitem.h"

using namespace fusion;

namespace {

constexpr const char *kHotSql =
    "SELECT l_extendedprice FROM lineitem WHERE l_quantity > 30";
constexpr const char *kColdSql =
    "SELECT l_shipmode FROM lineitem WHERE l_discount < 0.03";

struct Rig {
    std::unique_ptr<sim::Cluster> cluster;
    std::unique_ptr<store::FusionStore> store;
};

Rig
makeRig(bool compaction_enabled)
{
    Rig rig;
    sim::ClusterConfig config;
    config.numNodes = 9;
    rig.cluster = std::make_unique<sim::Cluster>(config);
    store::StoreOptions options;
    options.compaction.enabled = compaction_enabled;
    // Fold every four appended batches: several generations roll over
    // within the run, so both the fold path and the re-stripe decision
    // are exercised repeatedly.
    options.compaction.maxDeltaSegments = 4;
    rig.store =
        std::make_unique<store::FusionStore>(*rig.cluster, options);
    if (benchutil::obsOptions().enabled())
        rig.store->obs().tracer.setEnabled(true);
    return rig;
}

uint64_t
storageWireBytes(store::ObjectStore &store)
{
    obs::MetricsRegistry &reg = store.obs().metrics;
    return reg.counter("wire.filter.request_bytes").value() +
           reg.counter("wire.filter.reply_bytes").value() +
           reg.counter("wire.projection.request_bytes").value() +
           reg.counter("wire.projection.reply_bytes").value();
}

struct CellResult {
    uint64_t wireBytes = 0;
    double p50 = 0.0;
    double p99 = 0.0;
    uint64_t deltaScans = 0;   // append.delta_scans (segment merges)
    uint64_t compactionRuns = 0;
    uint64_t foldedSegments = 0;
    uint64_t hotColocated = 0; // chunks the re-stripe co-located
    uint64_t generation = 0;   // final base generation
    /** hot-colocated markers in a post-run EXPLAIN of the hot query. */
    size_t explainColocated = 0;
};

/**
 * One ingest-while-query cell: `appends` pre-built batches arrive on a
 * fixed simulated-time schedule while the closed-loop clients drain
 * `queries` requests (4 hot : 1 cold). Identical schedules and
 * identical rows on both cells — only the compaction policy differs.
 */
CellResult
runCell(bool compaction_enabled, size_t base_rows, size_t appends,
        size_t batch_rows, size_t queries)
{
    Rig rig = makeRig(compaction_enabled);
    auto base = workload::buildLineitemFile(base_rows, 7);
    FUSION_CHECK(base.isOk());
    FUSION_CHECK(rig.store->put("lineitem", base.value().bytes).isOk());

    // The append stream: batch i lands at (i+1) x 4 ms, spanning the
    // whole query makespan.
    sim::SimEngine &engine = rig.cluster->engine();
    auto store = rig.store.get();
    for (size_t i = 0; i < appends; ++i) {
        format::Table batch =
            workload::makeLineitemTable(batch_rows, 100 + i);
        engine.scheduleAt(
            0.004 * static_cast<double>(i + 1),
            [store, batch = std::move(batch)]() {
                store->appendAsync("lineitem", batch,
                                   [](Result<store::AppendResult> r) {
                                       FUSION_CHECK_MSG(
                                           r.isOk(),
                                           r.status().toString());
                                   });
            });
    }

    auto hot = query::parseQuery(kHotSql);
    auto cold = query::parseQuery(kColdSql);
    FUSION_CHECK(hot.isOk() && cold.isOk());
    benchutil::RunConfig config;
    config.clients = 4;
    config.totalQueries = queries;
    benchutil::RunStats stats = benchutil::runClosedLoop(
        *rig.store, config, [&](size_t i) {
            return i % 5 == 4 ? cold.value() : hot.value();
        });

    CellResult cell;
    cell.wireBytes = storageWireBytes(*rig.store);
    cell.p50 = stats.latency.p50();
    cell.p99 = stats.latency.p99();
    obs::MetricsRegistry &reg = rig.store->obs().metrics;
    cell.deltaScans = reg.counter("append.delta_scans").value();
    cell.compactionRuns = reg.counter("compaction.runs").value();
    cell.foldedSegments = reg.counter("compaction.folded_segments").value();
    cell.hotColocated =
        reg.counter("compaction.hot_colocated_chunks").value();
    auto manifest = rig.store->manifest("lineitem");
    FUSION_CHECK(manifest.isOk());
    cell.generation = manifest.value()->generation;

    // Is the co-location visible to the planner? One EXPLAIN probe of
    // the hot query against the final (re-striped) layout.
    rig.store->obs().explainEnabled = true;
    auto probe = rig.store->querySql(kHotSql);
    FUSION_CHECK_MSG(probe.isOk(), probe.status().toString());
    FUSION_CHECK(probe.value().explain != nullptr);
    for (const auto &chunk : probe.value().explain->projections)
        if (chunk.reason.find("hot-colocated") != std::string::npos)
            ++cell.explainColocated;
    return cell;
}

void
writeJson(const std::string &path, bool quick,
          const std::vector<std::pair<std::string, double>> &metrics)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(2);
    }
    std::fprintf(f, "{\n  \"bench\": \"ingest_compact\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"metrics\": {\n");
    for (size_t i = 0; i < metrics.size(); ++i)
        std::fprintf(f, "    \"%s\": %.6g%s\n", metrics[i].first.c_str(),
                     metrics[i].second,
                     i + 1 < metrics.size() ? "," : "");
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
}

/** Minimal parser for the flat {"metrics": {"name": number}} schema
 *  this binary writes (same shape as bench_kernels). */
std::map<std::string, double>
readBaselineMetrics(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
        std::exit(2);
    }
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);

    std::map<std::string, double> metrics;
    size_t obj = text.find("\"metrics\"");
    if (obj == std::string::npos)
        return metrics;
    obj = text.find('{', obj);
    size_t end_obj = text.find('}', obj);
    if (obj == std::string::npos || end_obj == std::string::npos)
        return metrics;
    size_t cur = obj;
    while (true) {
        size_t q0 = text.find('"', cur);
        if (q0 == std::string::npos || q0 > end_obj)
            break;
        size_t q1 = text.find('"', q0 + 1);
        size_t colon = text.find(':', q1);
        if (q1 == std::string::npos || colon == std::string::npos ||
            colon > end_obj)
            break;
        char *end = nullptr;
        double v = std::strtod(text.c_str() + colon + 1, &end);
        if (end == text.c_str() + colon + 1)
            break;
        metrics[text.substr(q0 + 1, q1 - q0 - 1)] = v;
        cur = static_cast<size_t>(end - text.c_str());
    }
    return metrics;
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    bool quick = false;
    std::string out_path = "BENCH_ingest_compact.json";
    std::string baseline_path;
    double tolerance = 0.05;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick")
            quick = true;
        else if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else if (arg.rfind("--check=", 0) == 0)
            baseline_path = arg.substr(8);
        else if (arg.rfind("--tolerance=", 0) == 0)
            tolerance = std::atof(arg.c_str() + 12);
        else if (arg.rfind("--trace-out=", 0) == 0 ||
                 arg.rfind("--metrics-out=", 0) == 0 ||
                 arg.rfind("--timeseries-out=", 0) == 0)
            continue; // consumed by obsInit
        else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            return 2;
        }
    }

    benchutil::banner("ingest-compact",
                      "Append stream vs queries, compaction on/off");

    const size_t base_rows = quick ? 2000 : 4000;
    const size_t appends = quick ? 16 : 32;
    const size_t batch_rows = quick ? 150 : 250;
    const size_t queries = quick ? 300 : 800;
    std::printf("base rows=%zu appends=%zu x %zu rows queries=%zu\n\n",
                base_rows, appends, batch_rows, queries);

    CellResult off =
        runCell(false, base_rows, appends, batch_rows, queries);
    CellResult on = runCell(true, base_rows, appends, batch_rows, queries);

    benchutil::TablePrinter table(
        {"compaction", "wire MB", "p50 ms", "p99 ms", "delta scans",
         "folds", "folded segs", "hot chunks", "final gen"});
    for (const auto &[label, cell] :
         {std::pair<const char *, const CellResult &>{"off", off},
          {"on", on}})
        table.addRow(
            {label,
             benchutil::fmt("%.2f",
                            static_cast<double>(cell.wireBytes) / 1e6),
             benchutil::fmt("%.3f", cell.p50 * 1e3),
             benchutil::fmt("%.3f", cell.p99 * 1e3),
             benchutil::fmt("%llu", static_cast<unsigned long long>(
                                        cell.deltaScans)),
             benchutil::fmt("%llu", static_cast<unsigned long long>(
                                        cell.compactionRuns)),
             benchutil::fmt("%llu", static_cast<unsigned long long>(
                                        cell.foldedSegments)),
             benchutil::fmt("%llu", static_cast<unsigned long long>(
                                        cell.hotColocated)),
             benchutil::fmt("%llu", static_cast<unsigned long long>(
                                        cell.generation))});
    table.print();

    double wire_ratio = static_cast<double>(off.wireBytes) /
                        static_cast<double>(on.wireBytes);
    double p99_ratio = off.p99 / on.p99;
    double scan_ratio = static_cast<double>(off.deltaScans) /
                        static_cast<double>(on.deltaScans);
    std::printf("\ncompaction-on: %.2fx fewer wire bytes, %.2fx lower "
                "p99, %.1fx fewer delta scans, %zu hot-colocated "
                "chunk(s) in EXPLAIN\n",
                wire_ratio, p99_ratio, scan_ratio, on.explainColocated);

    std::vector<std::pair<std::string, double>> metrics;
    metrics.emplace_back("wire_ratio", wire_ratio);
    metrics.emplace_back("p99_ratio", p99_ratio);
    metrics.emplace_back("delta_scan_ratio", scan_ratio);
    metrics.emplace_back("compaction_runs",
                         static_cast<double>(on.compactionRuns));
    metrics.emplace_back("hot_colocated_chunks",
                         static_cast<double>(on.hotColocated));
    writeJson(out_path, quick, metrics);
    std::printf("wrote %s\n", out_path.c_str());

    int failures = 0;
    // Acceptance: compaction must pay for itself on this workload —
    // lower tail latency AND fewer storage wire bytes than letting the
    // log grow, with the heat-driven re-stripe visible to the planner.
    if (on.p99 >= off.p99 || on.wireBytes >= off.wireBytes) {
        std::fprintf(stderr,
                     "ACCEPTANCE FAIL: compaction-on p99 %.4f ms / wire "
                     "%llu must beat off p99 %.4f ms / wire %llu\n",
                     on.p99 * 1e3,
                     static_cast<unsigned long long>(on.wireBytes),
                     off.p99 * 1e3,
                     static_cast<unsigned long long>(off.wireBytes));
        ++failures;
    }
    if (on.compactionRuns == 0 || on.generation == 0) {
        std::fprintf(stderr,
                     "ACCEPTANCE FAIL: no fold landed (runs=%llu "
                     "generation=%llu)\n",
                     static_cast<unsigned long long>(on.compactionRuns),
                     static_cast<unsigned long long>(on.generation));
        ++failures;
    }
    if (on.explainColocated == 0) {
        std::fprintf(stderr, "ACCEPTANCE FAIL: no hot-colocated chunk "
                             "in the post-run EXPLAIN\n");
        ++failures;
    }
    if (off.compactionRuns != 0 || off.generation != 0) {
        std::fprintf(stderr, "ACCEPTANCE FAIL: compaction-off rig "
                             "folded anyway\n");
        ++failures;
    }

    if (!baseline_path.empty()) {
        auto baseline = readBaselineMetrics(baseline_path);
        std::map<std::string, double> current(metrics.begin(),
                                              metrics.end());
        for (const auto &[name, want] : baseline) {
            auto it = current.find(name);
            if (it == current.end())
                continue;
            double floor = want * (1.0 - tolerance);
            bool ok = it->second >= floor;
            std::printf("  check %-24s %10.4f >= %10.4f %s\n",
                        name.c_str(), it->second, floor,
                        ok ? "ok" : "REGRESSED");
            failures += ok ? 0 : 1;
        }
    }
    if (failures > 0) {
        std::fprintf(stderr, "%d ingest-compact check(s) failed\n",
                     failures);
        return 1;
    }
    std::printf("all ingest-compact checks passed\n");
    return 0;
}
