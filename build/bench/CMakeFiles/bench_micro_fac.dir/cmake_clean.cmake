file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_fac.dir/bench_micro_fac.cpp.o"
  "CMakeFiles/bench_micro_fac.dir/bench_micro_fac.cpp.o.d"
  "bench_micro_fac"
  "bench_micro_fac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_fac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
