// Fixture: each line tagged `BAD: <rule>` must produce exactly that
// finding; untagged lines must produce none.
#include <condition_variable>
#include <mutex>

struct Queue {
    std::mutex m;               // BAD: raw-mutex
    std::condition_variable cv; // BAD: raw-mutex

    void
    poke()
    {
        std::lock_guard<std::mutex> lock(m); // BAD: raw-mutex
        cv.notify_one();
    }
};

// Unqualified identifiers are fine (could be fusion::Mutex brought in
// by a using-declaration; the rule only fires on std::-qualified uses).
struct Wrapper {
    int mutex = 0;
    int lock_guard = 0;
};
