/**
 * @file
 * The baseline store (paper §6 "Baseline"): representative of MinIO and
 * Ceph. Objects are erasure coded into fixed-size blocks with no
 * format awareness, so column chunks split across nodes. Queries use
 * the footer zone-map optimization but must reassemble every needed
 * chunk at a coordinator node before evaluating anything.
 */
#ifndef FUSION_STORE_BASELINE_STORE_H
#define FUSION_STORE_BASELINE_STORE_H

#include "object_store.h"

namespace fusion::store {

/** Fixed-block store with coordinator-side query evaluation. */
class BaselineStore : public ObjectStore
{
  public:
    BaselineStore(sim::Cluster &cluster, const StoreOptions &options)
        : ObjectStore(cluster, options)
    {
    }

    const char *kindName() const override { return "baseline"; }

  protected:
    fac::ObjectLayout
    buildLayout(const std::vector<fac::ChunkExtent> &extents) override;

    Result<QueryPlan> planQuery(const ObjectManifest &manifest,
                                const query::Query &q) override;
};

} // namespace fusion::store

#endif // FUSION_STORE_BASELINE_STORE_H
