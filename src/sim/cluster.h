/**
 * @file
 * The simulated storage cluster: a set of storage nodes plus a client
 * endpoint, message transfer between them (NIC queueing + wire
 * latency), placement helpers, failure injection and byte-accurate
 * network-traffic accounting.
 */
#ifndef FUSION_SIM_CLUSTER_H
#define FUSION_SIM_CLUSTER_H

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/random.h"
#include "engine.h"
#include "node.h"

namespace fusion::sim {

class FaultInjector;

/** Cluster shape and per-node parameters. */
struct ClusterConfig {
    size_t numNodes = 9; // storage nodes (paper: 9 + 1 client)
    NodeConfig node;
    uint64_t placementSeed = 0x5eed;
};

/** Simulated cluster. Owns the engine, the nodes and a client node. */
class Cluster
{
  public:
    explicit Cluster(const ClusterConfig &config);

    SimEngine &engine() { return engine_; }
    size_t numNodes() const { return nodes_.size(); }
    StorageNode &node(size_t id) { return *nodes_.at(id); }
    const StorageNode &node(size_t id) const { return *nodes_.at(id); }

    /** The client endpoint (has NICs/CPU but stores no blocks). */
    StorageNode &client() { return *client_; }

    const ClusterConfig &config() const { return config_; }

    /**
     * Picks `count` distinct storage-node ids uniformly at random using
     * the cluster's placement RNG (deterministic per seed).
     */
    std::vector<size_t> chooseNodes(size_t count);

    /** Storage node id a client request for `object_name` routes to
     *  (hash-based coordinator selection, paper §5). Dead nodes are
     *  skipped by linear probing. */
    size_t coordinatorFor(const std::string &object_name) const;

    /**
     * Simulates sending `bytes` from `src` to `dst`: queues on the
     * source's egress NIC, crosses the wire (pure latency, no
     * occupancy), queues on the destination's ingress NIC, then calls
     * `done`. Counts toward total network traffic.
     */
    void transfer(StorageNode &src, StorageNode &dst, uint64_t bytes,
                  std::function<void()> done);

    void killNode(size_t id) { node(id).setAlive(false); }
    void reviveNode(size_t id) { node(id).setAlive(true); }
    size_t aliveNodeCount() const;

    /**
     * The fault injector driving this cluster (nullptr when none).
     * Attached by FaultInjector::arm(); stores use it to predict node
     * health at future simulated times when scheduling read retries.
     */
    FaultInjector *faultInjector() const { return faultInjector_; }
    void attachFaultInjector(FaultInjector *injector)
    {
        faultInjector_ = injector;
    }

    /**
     * Observer of applied fault-schedule events. Arguments: simulated
     * seconds, static_cast<int>(FaultKind), node id, slow factor.
     * Primitive arguments keep this header free of fault.h (which
     * includes cluster.h). Listeners run on the driver thread, in
     * registration order, after the event has been applied.
     */
    using FaultEventListener =
        std::function<void(double, int, size_t, double)>;

    /** Registers a listener; returns an id for removeFaultListener. */
    size_t addFaultListener(FaultEventListener listener)
    {
        faultListeners_.emplace_back(++nextFaultListenerId_,
                                     std::move(listener));
        return nextFaultListenerId_;
    }

    void removeFaultListener(size_t id)
    {
        for (auto it = faultListeners_.begin();
             it != faultListeners_.end(); ++it) {
            if (it->first == id) {
                faultListeners_.erase(it);
                return;
            }
        }
    }

    /** Called by FaultInjector::apply after stamping the event. */
    void notifyFaultEvent(double seconds, int kind, size_t node,
                          double slow_factor) const
    {
        for (const auto &[id, listener] : faultListeners_)
            listener(seconds, kind, node, slow_factor);
    }

    uint64_t totalNetworkBytes() const { return totalNetworkBytes_; }
    void resetTrafficStats() { totalNetworkBytes_ = 0; }

    /** Mean CPU utilization across storage nodes over [0, now]. */
    double meanStorageCpuUtilization() const;

  private:
    ClusterConfig config_;
    SimEngine engine_;
    std::vector<std::unique_ptr<StorageNode>> nodes_;
    std::unique_ptr<StorageNode> client_;
    Rng placementRng_;
    uint64_t totalNetworkBytes_ = 0;
    FaultInjector *faultInjector_ = nullptr;
    std::vector<std::pair<size_t, FaultEventListener>> faultListeners_;
    size_t nextFaultListenerId_ = 0;
};

} // namespace fusion::sim

#endif // FUSION_SIM_CLUSTER_H
