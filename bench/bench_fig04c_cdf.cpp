/**
 * @file
 * Reproduces paper Fig 4c: CDF of normalized column chunk sizes in the
 * four generated datasets. Shape check: lineitem is bimodal (many tiny
 * chunks + a huge comment column), taxi is much more uniform.
 */
#include <algorithm>

#include "benchutil/harness.h"
#include "workload/lineitem.h"
#include "workload/taxi.h"
#include "workload/textsets.h"

using namespace fusion;

namespace {

std::vector<double>
normalizedChunkSizes(const format::FileMetadata &meta)
{
    std::vector<double> sizes;
    uint64_t max_size = 0;
    for (const auto *chunk : meta.allChunks())
        max_size = std::max(max_size, chunk->storedSize);
    for (const auto *chunk : meta.allChunks())
        sizes.push_back(static_cast<double>(chunk->storedSize) /
                        static_cast<double>(max_size));
    std::sort(sizes.begin(), sizes.end());
    return sizes;
}

double
quantile(const std::vector<double> &sorted, double q)
{
    size_t idx = static_cast<size_t>(q * (sorted.size() - 1));
    return sorted[idx];
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    benchutil::banner("Fig 4c", "CDF of normalized column chunk sizes");

    struct Row {
        const char *name;
        Result<format::WrittenFile> file;
    };
    Row rows[] = {
        {"tpc-h lineitem", workload::buildLineitemFile(60000, 3)},
        {"taxi", workload::buildTaxiFile(64000, 3)},
        {"recipeNLG", workload::buildRecipeFile(24000, 3)},
        {"uk pp", workload::buildUkppFile(30000, 3)},
    };

    benchutil::TablePrinter table({"dataset", "p10", "p25", "p50", "p75",
                                   "p90", "p100 (normalized size)"});
    for (auto &row : rows) {
        FUSION_CHECK(row.file.isOk());
        auto sizes = normalizedChunkSizes(row.file.value().metadata);
        table.addRow({row.name, benchutil::fmt("%.3f", quantile(sizes, .1)),
                      benchutil::fmt("%.3f", quantile(sizes, .25)),
                      benchutil::fmt("%.3f", quantile(sizes, .5)),
                      benchutil::fmt("%.3f", quantile(sizes, .75)),
                      benchutil::fmt("%.3f", quantile(sizes, .9)), "1.000"});
    }
    table.print();
    std::printf("\npaper shape: lineitem extremely skewed (median near 0); "
                "taxi comparatively uniform\n");
    return 0;
}
