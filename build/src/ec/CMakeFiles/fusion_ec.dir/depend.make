# Empty dependencies file for fusion_ec.
# This may be replaced when dependencies are built.
