file(REMOVE_RECURSE
  "CMakeFiles/fac_test.dir/fac_test.cc.o"
  "CMakeFiles/fac_test.dir/fac_test.cc.o.d"
  "fac_test"
  "fac_test.pdb"
  "fac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
