/**
 * @file
 * Pre-built experiment rigs: dataset + object copies + paired
 * baseline/Fusion stores on identical (but independent) simulated
 * clusters. The paper duplicates each Parquet file 10x and spreads
 * queries across the copies (§6, Datasets); the rigs reproduce that
 * with a configurable copy count.
 */
#ifndef FUSION_BENCHUTIL_RIGS_H
#define FUSION_BENCHUTIL_RIGS_H

#include <memory>
#include <string>
#include <vector>

#include "format/writer.h"
#include "harness.h"
#include "sim/fault.h"
#include "store/baseline_store.h"
#include "store/fusion_store.h"

namespace fusion::benchutil {

/** Which generator to use. */
enum class Dataset {
    kLineitem,
    kTaxi,
    kRecipe,
    kUkpp,
};

const char *datasetName(Dataset d);

/** A dataset stored as several object copies in two paired stores. */
struct StorePair {
    format::Table table;         // decoded source-of-truth
    format::WrittenFile file;    // one encoded copy
    std::vector<std::string> objects; // names of the stored copies
    std::unique_ptr<sim::Cluster> baselineCluster;
    std::unique_ptr<sim::Cluster> fusionCluster;
    std::unique_ptr<store::BaselineStore> baseline;
    std::unique_ptr<store::FusionStore> fusion;
    std::unique_ptr<sim::FaultInjector> baselineFaults;
    std::unique_ptr<sim::FaultInjector> fusionFaults;

    /** Rewrites q.table to a copy chosen by `index` (round robin). */
    query::Query onCopy(query::Query q, size_t index) const;

    /**
     * Arms the same fault schedule on both clusters (independent
     * injector per cluster so the paired runs see identical faults).
     * Call before the first runClosedLoop / compareStores.
     */
    void armFaults(const sim::FaultSchedule &schedule);
};

/** Rig parameters. */
struct RigOptions {
    size_t rows = 60000;
    size_t copies = 5;
    uint64_t seed = 42;
    store::StoreOptions store;
    sim::NodeConfig node;
    size_t numNodes = 9;
    /** When 0, the baseline block size is set to objectSize / 25,
     *  mirroring the paper's 100 MB blocks on multi-GB files. */
    uint64_t fixedBlockSize = 0;
    /**
     * The paper's file size for this dataset. Node service rates (disk,
     * NIC, CPU) are divided by paperBytes / actualBytes so that
     * per-byte costs and their ratios match the paper's scale: transfer
     * and decode times dominate fixed RPC latencies, exactly as on the
     * real 10 GB files. 0 picks the dataset's Table 3 size; set to the
     * actual file size to disable scaling.
     */
    double paperBytes = 0;
};

/** Scales a node's service rates so `actual_bytes` of data behave like
 *  `paper_bytes` (see RigOptions::paperBytes). */
sim::NodeConfig scaledNodeConfig(sim::NodeConfig config,
                                 uint64_t actual_bytes, double paper_bytes);

/** Builds a dataset and uploads `copies` objects to both stores. */
StorePair makeStorePair(Dataset dataset, const RigOptions &options);

/** Runs the same closed-loop workload on both stores. */
struct Comparison {
    RunStats baseline;
    RunStats fusion;

    double p50ReductionPct() const;
    double p99ReductionPct() const;
    double trafficRatio() const; // baseline bytes / fusion bytes
};

Comparison compareStores(StorePair &pair, const RunConfig &config,
                         const std::function<query::Query(size_t)> &tmpl);

} // namespace fusion::benchutil

#endif // FUSION_BENCHUTIL_RIGS_H
