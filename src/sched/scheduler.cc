#include "scheduler.h"

#include <utility>

#include "sim/cluster.h"

namespace fusion::sched {

using store::ObjectStore;
using store::QueryOutcome;

namespace {

/** Share-key family prefix, up to the first '|' ("" for unkeyed). */
std::string
keyFamily(const std::string &key)
{
    size_t p = key.find('|');
    return p == std::string::npos ? std::string() : key.substr(0, p);
}

bool
isPushdownFamily(const std::string &family)
{
    return family == "fpush" || family == "ppush" || family == "apush";
}

/**
 * "object|chunk" grouping key for the merged Cost Equation, or "" for
 * tasks that are not per-chunk projection work. cfetch keys are already
 * "cfetch|object|chunk"; ppush/apush carry a trailing filter signature
 * that must not split the group.
 */
std::string
chunkGroupKey(const std::string &key)
{
    size_t p = key.find('|');
    if (p == std::string::npos)
        return {};
    std::string family = key.substr(0, p);
    if (family == "cfetch")
        return key.substr(p + 1);
    if (family == "ppush" || family == "apush") {
        size_t p2 = key.find('|', p + 1);
        size_t p3 = p2 == std::string::npos
                        ? std::string::npos
                        : key.find('|', p2 + 1);
        if (p3 == std::string::npos)
            return {};
        return key.substr(p + 1, p3 - p - 1);
    }
    return {};
}

} // namespace

SharedScanScheduler::SharedScanScheduler(store::ObjectStore &store,
                                         const SchedOptions &options)
    : store_(store), options_(options)
{
    const sim::NodeConfig &nc = store.cluster().config().node;
    nodeCapacity_ = nc.cpuRate * static_cast<double>(nc.cpuCores);

    obs::MetricsRegistry &reg = store.obs().metrics;
    ins_.batches = &reg.counter("sched.batches");
    ins_.queries = &reg.counter("sched.queries");
    ins_.tasksPlanned = &reg.counter("sched.tasks_planned");
    ins_.tasksIssued = &reg.counter("sched.tasks_issued");
    ins_.sharedFetches = &reg.counter("sched.shared_fetches");
    ins_.mergedPushdowns = &reg.counter("sched.merged_pushdowns");
    ins_.joinedInflight = &reg.counter("sched.joined_inflight");
    ins_.fetchConversions = &reg.counter("sched.fetch_conversions");
    ins_.loadSheds = &reg.counter("sched.load_sheds");
    ins_.wireBytesSaved = &reg.counter("sched.wire_bytes_saved");
    ins_.queueWait = &reg.histogram("sched.queue_wait_seconds",
                                    obs::exponentialBounds(1e-6, 4.0, 14));
}

// ---- handle pool ----

QueryHandle *
SharedScanScheduler::acquireHandle(uint64_t tag)
{
    QueryHandle *h;
    if (!freeHandles_.empty()) {
        h = freeHandles_.front();
        freeHandles_.pop_front();
    } else {
        handles_.push_back(std::make_unique<QueryHandle>());
        h = handles_.back().get();
    }
    h->tag = tag;
    h->state_ = QueryHandle::State::kPending;
    h->status_ = Status::ok();
    h->outcome_ = QueryOutcome{};
    h->submitSeconds_ = store_.cluster().engine().now();
    h->doneSeconds_ = 0.0;
    return h;
}

QueryHandle *
SharedScanScheduler::failHandle(QueryHandle *h, Status status)
{
    h->state_ = QueryHandle::State::kDone;
    h->status_ = std::move(status);
    h->doneSeconds_ = h->submitSeconds_;
    completed_.push_back(h);
    return h;
}

// ---- admission ----

QueryHandle *
SharedScanScheduler::submit(const query::Query &q, uint64_t tag)
{
    QueryHandle *h = acquireHandle(tag);
    ++stats_.queries;
    ins_.queries->add(1);

    auto planned = store_.planQueryForBatch(q);
    if (!planned.isOk())
        return failHandle(h, planned.status());

    auto pq = std::make_shared<PendingQuery>();
    pq->handle = h;
    pq->seq = nextSeq_++;
    pq->submitSeconds = h->submitSeconds_;
    pq->plan = std::move(planned.value());

    const size_t planned_tasks =
        pq->plan->filterTasks.size() + pq->plan->projectionTasks.size();
    stats_.tasksPlanned += planned_tasks;
    ins_.tasksPlanned->add(planned_tasks);
    for (const SimTask &t : pq->plan->filterTasks)
        ++stats_.perNode[t.nodeId].tasksPlanned;
    for (const SimTask &t : pq->plan->projectionTasks)
        ++stats_.perNode[t.nodeId].tasksPlanned;

    // Group pass: admit each per-chunk projection to the merged Cost
    // Equation, converting groups whose verdict flips. Runs before the
    // entry pass so a task rewritten here attaches its final key.
    for (size_t ti = 0; ti < pq->plan->projectionTasks.size(); ++ti)
        attachGroup(pq, ti);

    // Entry pass: create-or-join one window entry per keyed task.
    auto attach_all = [this](const std::vector<SimTask> &tasks) {
        std::vector<std::shared_ptr<ExecEntry>> entries(tasks.size());
        if (!options_.dedupFetches)
            return entries; // every task runs alone, old semantics
        for (size_t i = 0; i < tasks.size(); ++i)
            if (!tasks[i].shareKey.empty())
                entries[i] = attachEntry(tasks[i].shareKey);
        return entries;
    };
    pq->filterEntries = attach_all(pq->plan->filterTasks);
    pq->projEntries = attach_all(pq->plan->projectionTasks);

    active_.emplace(pq->seq, pq);
    startQueue_.push_back(std::move(pq));
    return h;
}

QueryHandle *
SharedScanScheduler::submitSql(const std::string &sql, uint64_t tag)
{
    auto q = query::parseQuery(sql);
    if (!q.isOk())
        return failHandle(acquireHandle(tag), q.status());
    return submit(q.value(), tag);
}

void
SharedScanScheduler::markOverride(PendingQuery &pq, uint32_t chunk_id,
                                  const char *verdict, const char *reason)
{
    pq.overrides[chunk_id] = {verdict, reason};
}

void
SharedScanScheduler::attachGroup(const std::shared_ptr<PendingQuery> &pq,
                                 size_t ti)
{
    SimTask &t = pq->plan->projectionTasks[ti];
    std::string gkey = chunkGroupKey(t.shareKey);
    if (gkey.empty())
        return;
    const double now = store_.cluster().engine().now();
    const bool pusher = isPushdownFamily(keyFamily(t.shareKey));

    auto &slot = groupWindow_[gkey];
    if (!slot) {
        slot = std::make_shared<ChunkGroup>();
        slot->key = gkey;
        slot->createdSeconds = now;
        slot->nodeId = t.nodeId;
        slot->chunkId = t.chunkId;
        format::ChunkMeta chunk;
        chunk.storedSize = t.chunkStoredBytes;
        chunk.plainSize = t.chunkPlainBytes;
        slot->merge = query::SharedPushdownMerge(chunk);
    }
    ChunkGroup &g = *slot;
    const bool late = now > g.createdSeconds;
    if (late) {
        ++stats_.joinedInflight;
        ins_.joinedInflight->add(1);
    }

    if (!pusher) {
        // A consumer that fetches the whole chunk to the coordinator.
        g.hasFetcher = true;
        g.consumers.push_back({pq, ti, false, now});
        if (late)
            markOverride(*pq, t.chunkId, "fetch", "joined-inflight");
        // Pushdown replies on top of that fetch are pure extra wire:
        // flip any admitted pushdowns to ride it.
        if (options_.dedupFetches && !g.converted && g.pusherCount > 0)
            convertGroup(g, "shared-fetch", false);
        return;
    }

    if (g.converted || (g.hasFetcher && options_.dedupFetches)) {
        // The chunk already crosses the wire whole; ride that fetch.
        convertConsumer(*pq, ti, late ? "joined-inflight" : "shared-fetch",
                        false);
        g.consumers.push_back({pq, ti, true, now});
        return;
    }

    // Incremental merged Cost Equation. The load term sees the node's
    // live outstanding work plus what this attach would add (a new
    // filter signature is one more storage-node execution; a duplicate
    // shares an admitted reply and adds nothing).
    const bool first_of_subgroup = g.merge.subgroupMembers(t.shareKey) == 0;
    const double inc =
        first_of_subgroup ? t.nodeCpuWork / nodeCapacity_ : 0.0;
    // The load-shed term is scaled by the target node's health score
    // (obs/timeseries.h): a node working through retries/timeouts
    // advertises less capacity, so pushdowns convert to coordinator
    // fetches earlier. Healthy nodes score exactly 1.0, leaving the
    // configured limit untouched.
    const double load_limit =
        options_.nodeLoadLimitSeconds *
        store_.obs().telemetry.health().score(g.nodeId, now);
    auto decision =
        g.merge.attach(t.shareKey, t.replyBytes,
                       nodeOutstanding_[g.nodeId] + inc, load_limit);
    g.merge.addMember(t.shareKey);
    g.consumers.push_back({pq, ti, true, now});
    ++g.pusherCount;

    bool convert = false;
    bool load_shed = false;
    const char *reason = nullptr;
    if (options_.mergePushdowns && g.pusherCount >= 2) {
        if (!decision.push) {
            convert = true;
            load_shed = decision.loadShed;
            reason = load_shed ? "load-shed" : "shared-fetch";
        }
    } else if (options_.nodeLoadLimitSeconds > 0.0 &&
               nodeOutstanding_[g.nodeId] + inc > load_limit) {
        // Singleton pushdown keeps its planner verdict unless the
        // target node is already oversubscribed.
        convert = true;
        load_shed = true;
        reason = "load-shed";
    }
    if (convert) {
        convertGroup(g, reason, load_shed);
        return;
    }

    // Admitted: charge one execution per new filter signature to the
    // node; the charge is refunded when the execution completes (or
    // when the group converts).
    if (first_of_subgroup) {
        nodeOutstanding_[g.nodeId] += inc;
        chargedLoad_[t.shareKey] = {g.nodeId, inc};
    }
    // Consumers of a multi-member subgroup share one reply; re-mark
    // the whole subgroup so every member's EXPLAIN shows the sharing
    // (late joiners keep the more specific "joined-inflight").
    if (g.merge.subgroupMembers(t.shareKey) >= 2) {
        for (const GroupConsumer &c : g.consumers) {
            const SimTask &ct = c.pq->plan->projectionTasks[c.ti];
            if (!c.pusher || ct.shareKey != t.shareKey)
                continue;
            markOverride(*c.pq, ct.chunkId, "push",
                         c.attachSeconds > g.createdSeconds
                             ? "joined-inflight"
                             : "merged-pushdown");
        }
    } else if (late) {
        markOverride(*pq, t.chunkId, "push", "joined-inflight");
    }
}

std::shared_ptr<SharedScanScheduler::ExecEntry>
SharedScanScheduler::attachEntry(const std::string &key)
{
    auto it = execWindow_.find(key);
    if (it != execWindow_.end()) {
        ++it->second->consumers;
        return it->second;
    }
    auto entry = std::make_shared<ExecEntry>();
    entry->key = key;
    entry->consumers = 1;
    entry->createdSeconds = store_.cluster().engine().now();
    entry->windowSpan = store_.obs().tracer.beginSpan(
        "admission_window", "\"key\": \"" + key + "\"");
    execWindow_.emplace(key, entry);
    return entry;
}

void
SharedScanScheduler::releaseEntry(const std::shared_ptr<ExecEntry> &entry)
{
    if (entry == nullptr)
        return;
    FUSION_CHECK_MSG(!entry->issued,
                     "cannot detach from an issued window entry");
    FUSION_CHECK(entry->consumers > 0);
    if (--entry->consumers == 0) {
        store_.obs().tracer.endSpan(entry->windowSpan);
        entry->windowSpan = 0;
        execWindow_.erase(entry->key);
    }
}

void
SharedScanScheduler::convertConsumer(PendingQuery &pq, size_t ti,
                                     const char *reason, bool load_shed)
{
    SimTask &t = pq.plan->projectionTasks[ti];
    t = store_.makeSharedFetchTask(t);
    FUSION_CHECK(pq.plan->outcome.projectionPushdowns > 0);
    --pq.plan->outcome.projectionPushdowns;
    ++pq.plan->outcome.projectionFetches;
    markOverride(pq, t.chunkId, "fetch", reason);
    if (load_shed) {
        ++stats_.loadSheds;
        ins_.loadSheds->add(1);
    } else {
        ++stats_.fetchConversions;
        ins_.fetchConversions->add(1);
    }
    // Consumers admitted in earlier submits already attached a window
    // entry under the pushdown key; rebind them to the shared fetch.
    // (The submitting query's entry pass runs after the group pass and
    // picks up the rewritten key by itself.)
    if (options_.dedupFetches && ti < pq.projEntries.size()) {
        releaseEntry(pq.projEntries[ti]);
        pq.projEntries[ti] = attachEntry(t.shareKey);
    }
}

void
SharedScanScheduler::convertGroup(ChunkGroup &g, const char *reason,
                                  bool load_shed)
{
    // Flip every admitted pushdown consumer to the shared-fetch form
    // of its task, refunding the pushdown load charged at admission.
    for (const GroupConsumer &c : g.consumers) {
        if (!c.pusher)
            continue;
        const std::string key = c.pq->plan->projectionTasks[c.ti].shareKey;
        auto charged = chargedLoad_.find(key);
        if (charged != chargedLoad_.end()) {
            nodeOutstanding_[charged->second.first] -=
                charged->second.second;
            chargedLoad_.erase(charged);
        }
        convertConsumer(*c.pq, c.ti, reason, load_shed);
    }
    g.pusherCount = 0;
    g.converted = true;
    // The converted chunk now crosses the wire once to the
    // coordinator — admit it so later queries plan it as
    // "cached-local" instead of re-moving the bytes.
    store_.admitChunkToCache(g.key.substr(0, g.key.find('|')), g.chunkId);
}

// ---- issue / drive ----

void
SharedScanScheduler::sealAtIssue(ExecEntry &entry)
{
    store_.obs().tracer.endSpan(entry.windowSpan);
    entry.windowSpan = 0;
    // Later arrivals must not join an issued transfer: the key (and
    // its chunk group) leave the window, starting a new generation.
    execWindow_.erase(entry.key);
    std::string gkey = chunkGroupKey(entry.key);
    if (!gkey.empty())
        groupWindow_.erase(gkey);
    // An issued pushdown's admission charge rides on the entry until
    // the storage node finishes the work.
    auto charged = chargedLoad_.find(entry.key);
    if (charged != chargedLoad_.end()) {
        entry.releaseNode = charged->second.first;
        entry.releaseSeconds = charged->second.second;
        chargedLoad_.erase(charged);
    }
}

void
SharedScanScheduler::releaseEntryLoad(ExecEntry &entry)
{
    if (entry.releaseSeconds > 0.0) {
        nodeOutstanding_[entry.releaseNode] -= entry.releaseSeconds;
        entry.releaseSeconds = 0.0;
    }
}

void
SharedScanScheduler::demand(const std::shared_ptr<PendingQuery> &pq,
                            bool projection, size_t ti,
                            const std::shared_ptr<sim::Join> &join)
{
    QueryPlan &plan = *pq->plan;
    const SimTask &task =
        projection ? plan.projectionTasks[ti] : plan.filterTasks[ti];
    const std::shared_ptr<ExecEntry> &entry =
        projection ? pq->projEntries[ti] : pq->filterEntries[ti];
    const size_t coordinator = plan.coordinatorId;
    sim::Cluster &cluster = store_.cluster();
    obs::Tracer &tracer = store_.obs().tracer;

    if (entry == nullptr) {
        // Unkeyed (or dedup disabled): runs alone. Refund any
        // admission charge once the work completes.
        ++stats_.tasksIssued;
        ins_.tasksIssued->add(1);
        ++stats_.perNode[task.nodeId].tasksIssued;
        store_.accountTask(task, coordinator, projection, plan.outcome);
        auto charged = chargedLoad_.find(task.shareKey);
        if (!task.shareKey.empty() && charged != chargedLoad_.end()) {
            auto release = charged->second;
            chargedLoad_.erase(charged);
            auto wrap = std::make_shared<sim::Join>(
                1, [this, release, join]() {
                    nodeOutstanding_[release.first] -= release.second;
                    join->signal();
                });
            store_.executeTask(task, coordinator, wrap);
        } else {
            store_.executeTask(task, coordinator, join);
        }
        return;
    }

    if (!entry->issued) {
        entry->issued = true;
        sealAtIssue(*entry);
        ++stats_.tasksIssued;
        ins_.tasksIssued->add(1);
        ++stats_.perNode[task.nodeId].tasksIssued;
        store_.accountTask(task, coordinator, projection, plan.outcome);
        // The issuer's own join signal plus waiter fan-out.
        auto fanout = std::make_shared<sim::Join>(
            1, [this, entry, join]() {
                entry->done = true;
                releaseEntryLoad(*entry);
                join->signal();
                auto waiters = std::move(entry->waiters);
                entry->waiters.clear();
                for (auto &waiter : waiters)
                    waiter();
            });
        store_.executeTask(task, coordinator, fanout);
        return;
    }

    // Absorbed: the bytes are (or were) already on their way to this
    // coordinator. Pay only the per-consumer coordinator work (select
    // pass on the shared reply, or this task's own coord work when no
    // cheaper shared form exists).
    const bool push_family = isPushdownFamily(keyFamily(task.shareKey));
    if (push_family) {
        ++stats_.mergedPushdowns;
        ins_.mergedPushdowns->add(1);
    } else {
        ++stats_.sharedFetches;
        ins_.sharedFetches->add(1);
    }
    if (task.nodeId != coordinator) {
        uint64_t saved = task.requestBytes + task.replyBytes;
        stats_.wireBytesSaved += saved;
        ins_.wireBytesSaved->add(saved);
    }
    double coord_work = task.consumerSelectWork > 0.0
                            ? task.consumerSelectWork
                            : task.coordCpuWork;
    plan.outcome.cpuSeconds +=
        coord_work / cluster.config().node.cpuRate;
    uint64_t wait_span = tracer.beginSpan(
        "sched_wait", "\"key\": \"" + task.shareKey + "\"");
    sim::StorageNode *coord = &cluster.node(coordinator);
    const double demanded = cluster.engine().now();
    auto complete = [this, coord, coord_work, join, wait_span,
                     demanded]() {
        ins_.queueWait->observe(store_.cluster().engine().now() -
                                demanded);
        store_.obs().tracer.endSpan(wait_span);
        coord->cpu().acquire(coord_work, [join]() { join->signal(); });
    };
    if (entry->done)
        complete();
    else
        entry->waiters.push_back(std::move(complete));
}

void
SharedScanScheduler::startQuery(const std::shared_ptr<PendingQuery> &pq)
{
    sim::Cluster &cluster = store_.cluster();
    obs::Tracer &tracer = store_.obs().tracer;
    sim::StorageNode *client = &cluster.client();
    sim::StorageNode *coord = &cluster.node(pq->plan->coordinatorId);

    pq->spans[0] = tracer.beginSpan(
        "query",
        "\"seq\": " + std::to_string(pq->seq) +
            ", \"tag\": " + std::to_string(pq->handle->tag) +
            ", \"filter_tasks\": " +
            std::to_string(pq->plan->filterTasks.size()) +
            ", \"projection_tasks\": " +
            std::to_string(pq->plan->projectionTasks.size()));

    auto finish = [this, pq, client, coord]() {
        store_.obs().tracer.endSpan(pq->spans[2]);
        store_.cluster().transfer(*coord, *client,
                                  pq->plan->clientReplyBytes,
                                  [this, pq]() { complete(pq); });
    };

    auto projection_stage = [this, pq, coord, finish]() {
        obs::Tracer &t = store_.obs().tracer;
        t.endSpan(pq->spans[1]);
        pq->spans[2] = t.beginSpan("projection_stage");
        coord->cpu().acquire(
            pq->plan->interStageCoordWork, [this, pq, finish]() {
                auto join = std::make_shared<sim::Join>(
                    pq->plan->projectionTasks.size(), finish);
                for (size_t ti = 0;
                     ti < pq->plan->projectionTasks.size(); ++ti)
                    demand(pq, true, ti, join);
            });
    };

    auto filter_stage = [this, pq, projection_stage]() {
        pq->spans[1] = store_.obs().tracer.beginSpan("filter_stage");
        auto join = std::make_shared<sim::Join>(
            pq->plan->filterTasks.size(), projection_stage);
        for (size_t ti = 0; ti < pq->plan->filterTasks.size(); ++ti)
            demand(pq, false, ti, join);
    };

    auto start_plan = [this, pq, filter_stage]() {
        if (pq->plan->extraLatencySeconds > 0.0)
            store_.cluster().engine().schedule(
                pq->plan->extraLatencySeconds, filter_stage);
        else
            filter_stage();
    };

    cluster.transfer(*client, *coord, store_.options().clientRequestBytes,
                     start_plan);
}

void
SharedScanScheduler::complete(const std::shared_ptr<PendingQuery> &pq)
{
    sim::Cluster &cluster = store_.cluster();
    QueryPlan &plan = *pq->plan;
    plan.outcome.latencySeconds =
        cluster.engine().now() - pq->submitSeconds;
    store_.recordQueryLatency(cluster.engine().now(),
                              plan.outcome.latencySeconds);
    store_.accountClientExchange(plan.clientReplyBytes, plan.outcome);

    // Re-attach the amended EXPLAIN report. All of this query's chunk
    // groups are sealed by now, so the overrides are final.
    if (!pq->overrides.empty() && plan.outcome.explain != nullptr) {
        obs::QueryExplain amended = *plan.outcome.explain;
        for (auto &pc : amended.projections) {
            auto it = pq->overrides.find(pc.chunkId);
            if (it == pq->overrides.end())
                continue;
            pc.verdict = it->second.first;
            pc.reason = it->second.second;
        }
        plan.outcome.explain =
            std::make_shared<const obs::QueryExplain>(std::move(amended));
    }

    store_.obs().tracer.endSpan(pq->spans[0]);

    QueryHandle *h = pq->handle;
    h->outcome_ = plan.outcome;
    h->status_ = Status::ok();
    h->doneSeconds_ = cluster.engine().now();
    h->state_ = QueryHandle::State::kDone;
    lastDoneSeconds_ = h->doneSeconds_;
    completed_.push_back(h);
    active_.erase(pq->seq);
}

void
SharedScanScheduler::startPending()
{
    while (!startQueue_.empty()) {
        auto pq = std::move(startQueue_.front());
        startQueue_.pop_front();
        pq->started = true;
        startQuery(pq);
    }
}

QueryHandle *
SharedScanScheduler::awaitAny()
{
    obs::Tracer &tracer = store_.obs().tracer;
    sim::SimEngine &engine = store_.cluster().engine();
    uint64_t span = tracer.beginSpan("handle_await", "\"mode\": \"any\"");
    startPending();
    while (completed_.empty() && engine.step())
        startPending();
    tracer.endSpan(span);
    if (completed_.empty())
        return nullptr;
    QueryHandle *h = completed_.front();
    completed_.pop_front();
    freeHandles_.push_back(h);
    return h;
}

void
SharedScanScheduler::awaitAll()
{
    obs::Tracer &tracer = store_.obs().tracer;
    sim::SimEngine &engine = store_.cluster().engine();
    uint64_t span = tracer.beginSpan("handle_await", "\"mode\": \"all\"");
    startPending();
    while (engine.step())
        startPending();
    tracer.endSpan(span);
    FUSION_CHECK_MSG(active_.empty(),
                     "await_all left queries in flight");
}

// ---- closed-batch compatibility wrappers ----

Result<std::vector<QueryOutcome>>
SharedScanScheduler::runBatch(const std::vector<query::Query> &batch)
{
    stats_ = BatchStats{};
    ins_.batches->add(1);
    if (batch.empty())
        return std::vector<QueryOutcome>{};

    sim::Cluster &cluster = store_.cluster();
    obs::Tracer &tracer = store_.obs().tracer;
    const double batch_start = cluster.engine().now();

    std::vector<QueryHandle *> handles;
    handles.reserve(batch.size());
    for (const auto &q : batch)
        handles.push_back(submit(q));

    uint64_t batch_span = tracer.beginSpan(
        "shared_scan",
        "\"queries\": " + std::to_string(batch.size()) +
            ", \"tasks_planned\": " +
            std::to_string(stats_.tasksPlanned));
    awaitAll();
    stats_.makespanSeconds =
        lastDoneSeconds_ > batch_start ? lastDoneSeconds_ - batch_start
                                       : 0.0;
    tracer.endSpan(batch_span);

    std::vector<QueryOutcome> outcomes;
    outcomes.reserve(batch.size());
    Status error = Status::ok();
    for (QueryHandle *h : handles) {
        if (!h->status().isOk() && error.isOk())
            error = h->status();
        outcomes.push_back(h->outcome());
    }
    // Recycle the batch's handles back into the submit pool (outcomes
    // were copied out above, so reuse cannot clobber them).
    while (!completed_.empty()) {
        freeHandles_.push_back(completed_.front());
        completed_.pop_front();
    }
    if (!error.isOk())
        return error;
    return outcomes;
}

Result<std::vector<QueryOutcome>>
SharedScanScheduler::runBatchSql(const std::vector<std::string> &statements)
{
    std::vector<query::Query> batch;
    batch.reserve(statements.size());
    for (const auto &sql : statements) {
        auto q = query::parseQuery(sql);
        if (!q.isOk())
            return q.status();
        batch.push_back(std::move(q.value()));
    }
    return runBatch(batch);
}

} // namespace fusion::sched
