file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nk.dir/bench_ablation_nk.cpp.o"
  "CMakeFiles/bench_ablation_nk.dir/bench_ablation_nk.cpp.o.d"
  "bench_ablation_nk"
  "bench_ablation_nk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
