#include "chunk_models.h"

#include <cmath>

namespace fusion::workload {

namespace {

constexpr uint64_t kMB = 1000000;

// Builds extents laid out contiguously in row-group-major order from
// per-column mean sizes, with +-10% jitter like real encoded chunks.
std::vector<fac::ChunkExtent>
fromColumnMeans(const std::vector<double> &column_mb, size_t row_groups,
                uint64_t seed)
{
    Rng rng(seed);
    std::vector<fac::ChunkExtent> chunks;
    uint32_t id = 0;
    uint64_t offset = 0;
    for (size_t rg = 0; rg < row_groups; ++rg) {
        for (double mean : column_mb) {
            double jitter = rng.uniformReal(0.9, 1.1);
            uint64_t size = static_cast<uint64_t>(mean * jitter * kMB);
            size = std::max<uint64_t>(size, 64 * 1024);
            chunks.push_back({id++, offset, size});
            offset += size;
        }
    }
    return chunks;
}

} // namespace

std::vector<fac::ChunkExtent>
lineitemChunkModel(uint64_t seed)
{
    // Paper Fig 12, average chunk size per column (MB).
    static const std::vector<double> kColumnMb = {
        48, 148, 60, 7, 23, 173, 15, 15, 7, 4, 45, 45, 45, 8, 11, 386};
    return fromColumnMeans(kColumnMb, 10, seed);
}

std::vector<fac::ChunkExtent>
taxiChunkModel(uint64_t seed)
{
    // 8.4 GB over 320 chunks ~ 26 MB average, moderately uniform.
    std::vector<double> column_mb = {8,  12, 38, 38, 10, 32, 22, 40, 40, 40,
                                     40, 10, 2,  8,  18, 10, 1,  24, 6,  36};
    return fromColumnMeans(column_mb, 16, seed);
}

std::vector<fac::ChunkExtent>
recipeChunkModel(uint64_t seed)
{
    // 0.98 GB over 84 chunks; text columns dominate.
    std::vector<double> column_mb = {2, 6, 22, 32, 10, 0.3, 10};
    return fromColumnMeans(column_mb, 12, seed);
}

std::vector<fac::ChunkExtent>
ukppChunkModel(uint64_t seed)
{
    // 1.5 GB over 240 chunks; uuid/text columns dominate.
    std::vector<double> column_mb = {36, 4,  2, 8, 1, 0.8, 0.8, 6,
                                     2,  12, 4, 6, 4, 2,   0.8, 0.6};
    return fromColumnMeans(column_mb, 15, seed);
}

std::vector<fac::ChunkExtent>
zipfChunkModel(size_t count, double theta, uint64_t seed)
{
    Rng rng(seed);
    std::vector<fac::ChunkExtent> chunks;
    uint64_t offset = 0;
    if (theta > 0.0) {
        ZipfSampler zipf(100, theta);
        for (size_t i = 0; i < count; ++i) {
            // Rank r maps to r MB, so sizes span [1 MB, 100 MB].
            uint64_t size = zipf.sample(rng) * kMB;
            chunks.push_back({static_cast<uint32_t>(i), offset, size});
            offset += size;
        }
    } else {
        for (size_t i = 0; i < count; ++i) {
            uint64_t size =
                static_cast<uint64_t>(rng.uniformInt(1, 100)) * kMB;
            chunks.push_back({static_cast<uint32_t>(i), offset, size});
            offset += size;
        }
    }
    return chunks;
}

uint64_t
modelTotalBytes(const std::vector<fac::ChunkExtent> &chunks)
{
    uint64_t total = 0;
    for (const auto &chunk : chunks)
        total += chunk.size;
    return total;
}

} // namespace fusion::workload
