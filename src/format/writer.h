/**
 * @file
 * fpax file writer: partitions a table into row groups (PAX), encodes
 * each column of each row group as a self-contained column chunk, and
 * appends a footer with per-chunk extents and statistics.
 *
 * File layout:
 *   [8-byte magic][chunk bytes ...][footer][u32 footer length][8-byte magic]
 */
#ifndef FUSION_FORMAT_WRITER_H
#define FUSION_FORMAT_WRITER_H

#include "chunk_codec.h"
#include "column.h"
#include "metadata.h"

namespace fusion::format {

/** Leading and trailing file magic. */
inline constexpr char kFileMagic[8] = {'F', 'P', 'A', 'X', '0', '0', '0',
                                       '1'};
inline constexpr char kFileEndMagic[8] = {'F', 'P', 'A', 'X', 'E', 'N', 'D',
                                          '1'};

/** Writer tuning knobs. */
struct WriterOptions {
    /** Rows per row group (the last group may be smaller). */
    size_t rowGroupRows = 1 << 16;
    ChunkEncodeOptions chunk;
};

/** A serialized file together with its parsed footer. */
struct WrittenFile {
    Bytes bytes;
    FileMetadata metadata;
};

/** Serializes `table` to the fpax format. */
Result<WrittenFile> writeTable(const Table &table,
                               const WriterOptions &options);

} // namespace fusion::format

#endif // FUSION_FORMAT_WRITER_H
