#include "random.h"

#include <algorithm>
#include <cmath>

namespace fusion {

namespace {

uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &s : s_)
        s = splitMix64(x);
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    FUSION_CHECK(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + static_cast<int64_t>(v % span);
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

double
Rng::normal()
{
    double u1 = uniform();
    double u2 = uniform();
    // Guard against log(0).
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

size_t
Rng::pickIndex(size_t n)
{
    FUSION_CHECK(n > 0);
    return static_cast<size_t>(uniformInt(0, static_cast<int64_t>(n) - 1));
}

ZipfSampler::ZipfSampler(size_t n, double theta) : theta_(theta)
{
    FUSION_CHECK(n > 0);
    FUSION_CHECK(theta >= 0.0);
    cdf_.resize(n);
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
        cdf_[i] = sum;
    }
    for (auto &c : cdf_)
        c /= sum;
}

size_t
ZipfSampler::sample(Rng &rng) const
{
    double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    size_t idx = static_cast<size_t>(it - cdf_.begin());
    if (idx >= cdf_.size())
        idx = cdf_.size() - 1;
    return idx + 1;
}

std::string
randomString(Rng &rng, size_t length)
{
    std::string s(length, 'a');
    for (auto &c : s)
        c = static_cast<char>('a' + rng.uniformInt(0, 25));
    return s;
}

} // namespace fusion
