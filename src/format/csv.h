/**
 * @file
 * CSV import/export for tables: the practical on-ramp for getting real
 * data (e.g. the NYC taxi or UK price-paid CSVs the paper uses) into
 * the fpax format. Supports RFC-4180-style quoting, a header row, and
 * per-column type parsing against a target schema.
 */
#ifndef FUSION_FORMAT_CSV_H
#define FUSION_FORMAT_CSV_H

#include <string>

#include "column.h"

namespace fusion::format {

/** CSV parsing options. */
struct CsvOptions {
    char delimiter = ',';
    /** First row holds column names; validated against the schema. */
    bool hasHeader = true;
};

/**
 * Parses CSV text into a table with the given schema. Numeric fields
 * are parsed per the column's physical type; kCorruption on malformed
 * rows (wrong field count, unparsable numbers, unterminated quotes).
 */
Result<Table> readCsv(const std::string &text, const Schema &schema,
                      const CsvOptions &options = {});

/** Serializes a table to CSV (with header when options.hasHeader). */
std::string writeCsv(const Table &table, const CsvOptions &options = {});

/**
 * Infers a schema from CSV text: columns that parse as integers become
 * kInt64, as reals kDouble, otherwise kString. Requires a header row
 * for the column names.
 */
Result<Schema> inferCsvSchema(const std::string &text,
                              const CsvOptions &options = {});

} // namespace fusion::format

#endif // FUSION_FORMAT_CSV_H
