
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/bitpack.cc" "src/codec/CMakeFiles/fusion_codec.dir/bitpack.cc.o" "gcc" "src/codec/CMakeFiles/fusion_codec.dir/bitpack.cc.o.d"
  "/root/repo/src/codec/codec.cc" "src/codec/CMakeFiles/fusion_codec.dir/codec.cc.o" "gcc" "src/codec/CMakeFiles/fusion_codec.dir/codec.cc.o.d"
  "/root/repo/src/codec/rle.cc" "src/codec/CMakeFiles/fusion_codec.dir/rle.cc.o" "gcc" "src/codec/CMakeFiles/fusion_codec.dir/rle.cc.o.d"
  "/root/repo/src/codec/snappy.cc" "src/codec/CMakeFiles/fusion_codec.dir/snappy.cc.o" "gcc" "src/codec/CMakeFiles/fusion_codec.dir/snappy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fusion_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
