# Empty dependencies file for store_extra_test.
# This may be replaced when dependencies are built.
