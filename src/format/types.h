/**
 * @file
 * Schema model for the Fusion PAX ("fpax") columnar file format: column
 * physical/logical types and the table schema.
 */
#ifndef FUSION_FORMAT_TYPES_H
#define FUSION_FORMAT_TYPES_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace fusion::format {

/** On-disk representation of a column's values. */
enum class PhysicalType : uint8_t {
    kInt32 = 0,
    kInt64 = 1,
    kDouble = 2,
    kString = 3,
};

/** Interpretation hint layered on the physical type. */
enum class LogicalType : uint8_t {
    kNone = 0,
    kDate = 1,      // int32 days since epoch
    kTimestamp = 2, // int64 microseconds since epoch
    kDecimal = 3,   // int64 scaled by 100 (two decimal places)
};

const char *physicalTypeName(PhysicalType t);

/** Fixed byte width of a plain-encoded value; 0 for variable (string). */
size_t physicalTypeWidth(PhysicalType t);

/** A single column declaration. */
struct ColumnDesc {
    std::string name;
    PhysicalType physical = PhysicalType::kInt64;
    LogicalType logical = LogicalType::kNone;

    bool
    operator==(const ColumnDesc &o) const
    {
        return name == o.name && physical == o.physical &&
               logical == o.logical;
    }
};

/** Ordered list of columns; column ids are positions in this list. */
class Schema
{
  public:
    Schema() = default;
    explicit Schema(std::vector<ColumnDesc> columns)
        : columns_(std::move(columns))
    {
    }

    size_t numColumns() const { return columns_.size(); }
    const ColumnDesc &column(size_t id) const { return columns_.at(id); }
    const std::vector<ColumnDesc> &columns() const { return columns_; }

    /** Index of the column with the given name. */
    Result<size_t> columnIndex(const std::string &name) const;

    void addColumn(ColumnDesc desc) { columns_.push_back(std::move(desc)); }

    bool operator==(const Schema &o) const { return columns_ == o.columns_; }

  private:
    std::vector<ColumnDesc> columns_;
};

} // namespace fusion::format

#endif // FUSION_FORMAT_TYPES_H
