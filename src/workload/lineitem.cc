#include "lineitem.h"

#include "common/random.h"

namespace fusion::workload {

using format::LogicalType;
using format::PhysicalType;
using format::Schema;
using format::Table;

namespace {

const char *kFlagValues[] = {"N", "A", "R"};
const char *kStatusValues[] = {"O", "F"};
const char *kInstructValues[] = {"DELIVER IN PERSON", "COLLECT COD",
                               "NONE", "TAKE BACK RETURN"};
const char *kModeValues[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK",
                            "MAIL", "FOB"};

// dbgen builds comments from a grammar over a fixed vocabulary; a
// vocabulary-driven generator reproduces its mild compressibility.
const char *kWords[] = {
    "furiously", "quickly", "carefully", "blithely", "slyly", "express",
    "regular",   "special", "pending",   "final",    "ironic", "even",
    "bold",      "silent",  "daring",    "accounts", "packages", "deposits",
    "requests",  "theodolites", "platelets", "instructions", "foxes",
    "ideas",     "dependencies", "excuses", "sleep", "haggle", "nag",
    "cajole",    "integrate", "wake", "among", "above", "against",
};

std::string
makeComment(Rng &rng)
{
    // dbgen comments are 10-43 chars.
    size_t target = static_cast<size_t>(rng.uniformInt(10, 43));
    std::string out;
    while (out.size() < target) {
        if (!out.empty())
            out += ' ';
        out += kWords[rng.pickIndex(std::size(kWords))];
    }
    out.resize(target, ' ');
    return out;
}

} // namespace

Schema
lineitemSchema()
{
    return Schema({
        {"l_orderkey", PhysicalType::kInt64, LogicalType::kNone},
        {"l_partkey", PhysicalType::kInt64, LogicalType::kNone},
        {"l_suppkey", PhysicalType::kInt64, LogicalType::kNone},
        {"l_linenumber", PhysicalType::kInt32, LogicalType::kNone},
        {"l_quantity", PhysicalType::kInt32, LogicalType::kNone},
        {"l_extendedprice", PhysicalType::kDouble, LogicalType::kDecimal},
        {"l_discount", PhysicalType::kDouble, LogicalType::kDecimal},
        {"l_tax", PhysicalType::kDouble, LogicalType::kDecimal},
        {"l_returnflag", PhysicalType::kString, LogicalType::kNone},
        {"l_linestatus", PhysicalType::kString, LogicalType::kNone},
        {"l_shipdate", PhysicalType::kInt32, LogicalType::kDate},
        {"l_commitdate", PhysicalType::kInt32, LogicalType::kDate},
        {"l_receiptdate", PhysicalType::kInt32, LogicalType::kDate},
        {"l_shipinstruct", PhysicalType::kString, LogicalType::kNone},
        {"l_shipmode", PhysicalType::kString, LogicalType::kNone},
        {"l_comment", PhysicalType::kString, LogicalType::kNone},
    });
}

Table
makeLineitemTable(size_t rows, uint64_t seed)
{
    Rng rng(seed);
    Table t(lineitemSchema());

    // TPC-H dates span 1992-01-01 .. 1998-12-31 (days since 1992-01-01).
    constexpr int32_t kDateSpan = 2557;

    int64_t order_key = 0;
    int32_t lines_left = 0;
    int32_t line_number = 0;
    for (size_t i = 0; i < rows; ++i) {
        if (lines_left == 0) {
            // Orders have 1-7 lineitems; keys stride by 4 like dbgen.
            order_key += 1 + static_cast<int64_t>(rng.uniformInt(0, 3));
            lines_left = static_cast<int32_t>(rng.uniformInt(1, 7));
            line_number = 0;
        }
        --lines_left;
        ++line_number;

        int64_t part_key = rng.uniformInt(1, 200000);
        int32_t quantity = static_cast<int32_t>(rng.uniformInt(1, 50));
        // dbgen: extendedprice = quantity * part retail price.
        double retail = 900.0 + (part_key % 1000) / 10.0 +
                        (part_key % 99) * 1.0;
        double price = quantity * retail;
        int32_t ship_date =
            static_cast<int32_t>(rng.uniformInt(0, kDateSpan - 60));

        t.column(kOrderKey).append(order_key);
        t.column(kPartKey).append(part_key);
        t.column(kSuppKey).append(rng.uniformInt(1, 10000));
        t.column(kLineNumber).append(line_number);
        t.column(kQuantity).append(quantity);
        t.column(kExtendedPrice).append(price);
        t.column(kDiscount)
            .append(static_cast<double>(rng.uniformInt(0, 10)) / 100.0);
        t.column(kTax).append(
            static_cast<double>(rng.uniformInt(0, 8)) / 100.0);

        // Return flag depends on receipt date vs. a cutoff, like dbgen.
        bool old = ship_date < kDateSpan / 2;
        const char *flag =
            old ? kFlagValues[rng.uniformInt(1, 2)] : kFlagValues[0];
        t.column(kReturnFlag).append(std::string(flag));
        t.column(kLineStatus)
            .append(std::string(old ? kStatusValues[1] : kStatusValues[0]));

        t.column(kShipDate).append(ship_date);
        t.column(kCommitDate)
            .append(ship_date +
                    static_cast<int32_t>(rng.uniformInt(-30, 30)));
        t.column(kReceiptDate)
            .append(ship_date + static_cast<int32_t>(rng.uniformInt(1, 30)));
        t.column(kShipInstruct)
            .append(std::string(
                kInstructValues[rng.pickIndex(std::size(kInstructValues))]));
        t.column(kShipMode).append(
            std::string(kModeValues[rng.pickIndex(std::size(kModeValues))]));
        t.column(kComment).append(makeComment(rng));
    }
    return t;
}

Result<format::WrittenFile>
buildLineitemFile(size_t rows, uint64_t seed)
{
    Table t = makeLineitemTable(rows, seed);
    format::WriterOptions options;
    options.rowGroupRows = (rows + 9) / 10; // 10 row groups (Table 3)
    return format::writeTable(t, options);
}

} // namespace fusion::workload
