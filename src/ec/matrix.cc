#include "matrix.h"

namespace fusion::ec {

Matrix
Matrix::identity(size_t n)
{
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        m.set(i, i, 1);
    return m;
}

Matrix
Matrix::vandermonde(size_t rows, size_t cols)
{
    const Gf256 &gf = Gf256::instance();
    Matrix m(rows, cols);
    for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < cols; ++c)
            m.set(r, c, gf.pow(static_cast<uint8_t>(r), c));
    }
    return m;
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    FUSION_CHECK(cols_ == other.rows_);
    const Gf256 &gf = Gf256::instance();
    Matrix out(rows_, other.cols_);
    for (size_t r = 0; r < rows_; ++r) {
        for (size_t c = 0; c < other.cols_; ++c) {
            uint8_t acc = 0;
            for (size_t i = 0; i < cols_; ++i)
                acc ^= gf.mul(at(r, i), other.at(i, c));
            out.set(r, c, acc);
        }
    }
    return out;
}

Matrix
Matrix::selectRows(const std::vector<size_t> &row_ids) const
{
    Matrix out(row_ids.size(), cols_);
    for (size_t i = 0; i < row_ids.size(); ++i) {
        FUSION_CHECK(row_ids[i] < rows_);
        for (size_t c = 0; c < cols_; ++c)
            out.set(i, c, at(row_ids[i], c));
    }
    return out;
}

Result<std::vector<size_t>>
Matrix::selectIndependentRows(const std::vector<size_t> &candidates) const
{
    const Gf256 &gf = Gf256::instance();
    // Gaussian elimination over a working copy of the candidate rows,
    // keeping track of which original rows supplied pivots.
    std::vector<std::vector<uint8_t>> work;
    work.reserve(candidates.size());
    for (size_t row : candidates) {
        FUSION_CHECK(row < rows_);
        work.emplace_back(rowData(row), rowData(row) + cols_);
    }

    std::vector<size_t> chosen;
    std::vector<bool> used(work.size(), false);
    for (size_t col = 0; col < cols_; ++col) {
        // Find an unused row with a nonzero entry in this column.
        size_t pivot = work.size();
        for (size_t r = 0; r < work.size(); ++r) {
            if (!used[r] && work[r][col] != 0) {
                pivot = r;
                break;
            }
        }
        if (pivot == work.size())
            return Status::invalidArgument(
                "candidate rows do not span the data space");
        used[pivot] = true;
        chosen.push_back(candidates[pivot]);
        // Eliminate this column from all other unused rows.
        uint8_t inv = gf.inv(work[pivot][col]);
        for (size_t r = 0; r < work.size(); ++r) {
            if (used[r] || work[r][col] == 0)
                continue;
            uint8_t factor = gf.mul(work[r][col], inv);
            for (size_t c = col; c < cols_; ++c) {
                work[r][c] = work[r][c] ^
                             gf.mul(factor, work[pivot][c]);
            }
        }
    }
    return chosen;
}

Result<Matrix>
Matrix::inverse() const
{
    if (rows_ != cols_)
        return Status::invalidArgument("inverse of non-square matrix");
    const Gf256 &gf = Gf256::instance();
    const size_t n = rows_;
    Matrix work = *this;
    Matrix inv = identity(n);

    for (size_t col = 0; col < n; ++col) {
        // Find a pivot row at or below `col`.
        size_t pivot = col;
        while (pivot < n && work.at(pivot, col) == 0)
            ++pivot;
        if (pivot == n)
            return Status::invalidArgument("singular matrix");
        if (pivot != col) {
            for (size_t c = 0; c < n; ++c) {
                std::swap(work.data_[pivot * n + c], work.data_[col * n + c]);
                std::swap(inv.data_[pivot * n + c], inv.data_[col * n + c]);
            }
        }
        // Scale the pivot row to 1.
        uint8_t scale = gf.inv(work.at(col, col));
        for (size_t c = 0; c < n; ++c) {
            work.set(col, c, gf.mul(work.at(col, c), scale));
            inv.set(col, c, gf.mul(inv.at(col, c), scale));
        }
        // Eliminate the column from every other row.
        for (size_t r = 0; r < n; ++r) {
            if (r == col)
                continue;
            uint8_t factor = work.at(r, col);
            if (factor == 0)
                continue;
            for (size_t c = 0; c < n; ++c) {
                work.set(r, c, work.at(r, c) ^
                                   gf.mul(factor, work.at(col, c)));
                inv.set(r, c,
                        inv.at(r, c) ^ gf.mul(factor, inv.at(col, c)));
            }
        }
    }
    return inv;
}

} // namespace fusion::ec
