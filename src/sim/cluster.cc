#include "cluster.h"

#include <numeric>

namespace fusion::sim {

Cluster::Cluster(const ClusterConfig &config)
    : config_(config), placementRng_(config.placementSeed)
{
    FUSION_CHECK_MSG(config.numNodes >= 1, "cluster needs storage nodes");
    nodes_.reserve(config.numNodes);
    for (size_t i = 0; i < config.numNodes; ++i)
        nodes_.push_back(
            std::make_unique<StorageNode>(engine_, i, config.node));
    client_ = std::make_unique<StorageNode>(engine_, config.numNodes,
                                            config.node);
}

std::vector<size_t>
Cluster::chooseNodes(size_t count)
{
    FUSION_CHECK_MSG(count <= nodes_.size(),
                     "placement wants more nodes than the cluster has");
    std::vector<size_t> ids(nodes_.size());
    std::iota(ids.begin(), ids.end(), 0);
    placementRng_.shuffle(ids);
    ids.resize(count);
    return ids;
}

size_t
Cluster::coordinatorFor(const std::string &object_name) const
{
    // FNV-1a over the object name; stable across runs.
    uint64_t h = 1469598103934665603ULL;
    for (char c : object_name) {
        h ^= static_cast<uint8_t>(c);
        h *= 1099511628211ULL;
    }
    for (size_t probe = 0; probe < nodes_.size(); ++probe) {
        size_t id = (h + probe) % nodes_.size();
        if (nodes_[id]->alive())
            return id;
    }
    return h % nodes_.size(); // all dead: caller will fail the request
}

void
Cluster::transfer(StorageNode &src, StorageNode &dst, uint64_t bytes,
                  std::function<void()> done)
{
    totalNetworkBytes_ += bytes;

    // Network-stack CPU: both endpoints burn cores proportionally to
    // the bytes they push/pull. Charged as occupancy (it contends with
    // decode work) without serializing the transfer itself.
    double stack_work =
        static_cast<double>(bytes) * config_.node.networkCpuFactor;
    if (stack_work > 0.0) {
        src.cpu().acquire(stack_work, [] {});
        dst.cpu().acquire(stack_work, [] {});
    }

    double wire_latency = config_.node.rpcLatency;
    SimResource &in = dst.nicIn();
    SimEngine &engine = engine_;
    src.nicOut().acquire(
        static_cast<double>(bytes),
        [&engine, &in, bytes, wire_latency, done = std::move(done)]() mutable {
            engine.schedule(wire_latency, [&in, bytes,
                                           done = std::move(done)]() mutable {
                in.acquire(static_cast<double>(bytes), std::move(done));
            });
        });
}

size_t
Cluster::aliveNodeCount() const
{
    size_t count = 0;
    for (const auto &node : nodes_)
        count += node->alive() ? 1 : 0;
    return count;
}

double
Cluster::meanStorageCpuUtilization() const
{
    if (nodes_.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &node : nodes_)
        total += node->cpu().utilization(engine_.now());
    return total / static_cast<double>(nodes_.size());
}

} // namespace fusion::sim
