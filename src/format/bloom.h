/**
 * @file
 * Per-chunk Bloom filters for equality predicates — the companion to
 * min/max zone maps (Parquet ships the same pair). Zone maps prune
 * range predicates well but are nearly useless for point lookups on
 * unsorted columns (min <= v <= max almost always holds); a small
 * Bloom filter over the chunk's values lets the coordinator skip
 * chunks for `col = literal` queries without touching storage nodes.
 *
 * Classic Bloom filter with double hashing (h1 + i*h2), sized at
 * ~10 bits per distinct value for ~1% false positives.
 */
#ifndef FUSION_FORMAT_BLOOM_H
#define FUSION_FORMAT_BLOOM_H

#include <cstdint>

#include "column.h"
#include "value.h"

namespace fusion::format {

/** Bloom filter over a column chunk's values. */
class BloomFilter
{
  public:
    BloomFilter() = default;

    /** Builds a filter sized for roughly `expected_distinct` values. */
    explicit BloomFilter(size_t expected_distinct);

    /** Inserts one value. */
    void insert(const Value &value);

    /** Inserts every value of a column. */
    void insertColumn(const ColumnData &column);

    /** False means definitely absent; true means possibly present. */
    bool mayContain(const Value &value) const;

    bool empty() const { return bits_.empty(); }
    size_t sizeBytes() const { return bits_.size(); }

    /** Serialized form: varint numHashes, varint byte count, raw bits. */
    Bytes serialize() const;
    static Result<BloomFilter> deserialize(Slice bytes);

    bool operator==(const BloomFilter &other) const = default;

  private:
    uint32_t numHashes_ = 0;
    Bytes bits_;
};

} // namespace fusion::format

#endif // FUSION_FORMAT_BLOOM_H
