/**
 * @file
 * A typed scalar value, used for chunk min/max statistics (zone maps)
 * and query predicate literals.
 */
#ifndef FUSION_FORMAT_VALUE_H
#define FUSION_FORMAT_VALUE_H

#include <cstdint>
#include <string>
#include <variant>

#include "common/serde.h"
#include "types.h"

namespace fusion::format {

/**
 * Scalar wrapper over the four physical types. Ordering is defined only
 * between values of the same physical type, except that kInt32/kInt64
 * compare numerically with each other (convenient for predicate
 * literals written as plain integers).
 */
class Value
{
  public:
    Value() : v_(int64_t{0}) {}
    explicit Value(int32_t v) : v_(v) {}
    explicit Value(int64_t v) : v_(v) {}
    explicit Value(double v) : v_(v) {}
    explicit Value(std::string v) : v_(std::move(v)) {}

    static Value ofInt32(int32_t v) { return Value(v); }
    static Value ofInt64(int64_t v) { return Value(v); }
    static Value ofDouble(double v) { return Value(v); }
    static Value ofString(std::string v) { return Value(std::move(v)); }

    PhysicalType type() const;

    int32_t asInt32() const { return std::get<int32_t>(v_); }
    int64_t asInt64() const { return std::get<int64_t>(v_); }
    double asDouble() const { return std::get<double>(v_); }
    const std::string &asString() const { return std::get<std::string>(v_); }

    /** Numeric view (int32/int64/double); aborts on string. */
    double numeric() const;

    /** Three-way comparison; FUSION_CHECK on incomparable types. */
    int compare(const Value &other) const;

    bool operator==(const Value &o) const { return compare(o) == 0; }
    bool operator<(const Value &o) const { return compare(o) < 0; }
    bool operator<=(const Value &o) const { return compare(o) <= 0; }
    bool operator>(const Value &o) const { return compare(o) > 0; }
    bool operator>=(const Value &o) const { return compare(o) >= 0; }

    std::string toString() const;

    void serialize(BinaryWriter &writer) const;
    static Result<Value> deserialize(BinaryReader &reader);

  private:
    std::variant<int32_t, int64_t, double, std::string> v_;
};

} // namespace fusion::format

#endif // FUSION_FORMAT_VALUE_H
