/**
 * @file
 * Quickstart: build a small analytics table, store it in Fusion, read
 * it back byte-identical, and run SQL with adaptive query pushdown.
 *
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "common/units.h"
#include "format/writer.h"
#include "sim/cluster.h"
#include "store/fusion_store.h"

using namespace fusion;

int
main()
{
    // 1. A simulated 9-node cluster (RS(9,6) needs at least n nodes).
    sim::ClusterConfig cluster_config;
    cluster_config.numNodes = 9;
    sim::Cluster cluster(cluster_config);

    // RS(9,6). Tiny demo objects have few chunks, where FAC's packing
    // has little room; a looser overhead threshold keeps format-aware
    // coding on (production objects use the paper's 2% default).
    store::StoreOptions options;
    options.overheadThreshold = 0.30;
    store::FusionStore store(cluster, options);

    // 2. Build a table: employees with name and salary (paper Table 1).
    format::Schema schema({
        {"name", format::PhysicalType::kString, format::LogicalType::kNone},
        {"salary", format::PhysicalType::kInt64, format::LogicalType::kNone},
    });
    format::Table employees(schema);
    const char *names[] = {"Alice", "Bob", "Charlie", "David", "Emily",
                           "Frank"};
    int64_t salaries[] = {70000, 80000, 70000, 60000, 60000, 70000};
    for (int copy = 0; copy < 2000; ++copy) {
        for (size_t i = 0; i < 6; ++i) {
            employees.column(0).append(std::string(names[i]) +
                                       std::to_string(copy % 7));
            employees.column(1).append(salaries[i] + copy % 100);
        }
    }

    // 3. Encode to the fpax columnar format and upload.
    format::WriterOptions writer_options;
    writer_options.rowGroupRows = 1500; // 8 row groups -> 16 chunks
    auto file = format::writeTable(employees, writer_options);
    if (!file.isOk()) {
        std::fprintf(stderr, "encode failed: %s\n",
                     file.status().toString().c_str());
        return 1;
    }
    auto put = store.put("employees", file.value().bytes);
    if (!put.isOk()) {
        std::fprintf(stderr, "put failed: %s\n",
                     put.status().toString().c_str());
        return 1;
    }
    std::printf("stored 'employees': %s object, %s on disk, layout=%s, "
                "overhead vs optimal=%.2f%%, %zu chunks in %zu stripes\n",
                formatBytes(put.value().objectBytes).c_str(),
                formatBytes(put.value().storedBytes).c_str(),
                fac::layoutKindName(put.value().layoutKind),
                put.value().overheadVsOptimal * 100.0,
                put.value().numChunks, put.value().numStripes);

    // 4. Byte-identical Get.
    auto back = store.get("employees");
    std::printf("get round-trip: %s\n",
                (back.isOk() && back.value() == file.value().bytes)
                    ? "byte-identical"
                    : "MISMATCH");

    // 5. SQL with pushdown (the paper's running example).
    auto outcome = store.querySql(
        "SELECT salary FROM employees WHERE name = 'Bob3'");
    if (!outcome.isOk()) {
        std::fprintf(stderr, "query failed: %s\n",
                     outcome.status().toString().c_str());
        return 1;
    }
    const store::QueryOutcome &o = outcome.value();
    std::printf("query matched %llu rows in %s (simulated); "
                "%zu filter pushdowns, %zu projection pushdowns, "
                "%zu projection fetches, %s over the network\n",
                static_cast<unsigned long long>(o.result.rowsMatched),
                formatSeconds(o.latencySeconds).c_str(),
                o.filterChunkPushdowns, o.projectionPushdowns,
                o.projectionFetches, formatBytes(o.networkBytes).c_str());
    if (!o.result.columns.empty() && o.result.columns[0].values.size() > 0)
        std::printf("first salary: %lld\n",
                    static_cast<long long>(
                        o.result.columns[0].values.int64s()[0]));

    // 6. Aggregates run at the coordinator.
    auto avg = store.querySql(
        "SELECT COUNT(*), AVG(salary) FROM employees WHERE salary >= 70000");
    if (avg.isOk()) {
        std::printf("high earners: count=%.0f avg=%.1f\n",
                    avg.value().result.columns[0].aggregateValue,
                    avg.value().result.columns[1].aggregateValue);
    }
    return 0;
}
