/**
 * @file
 * Shared-scan scheduler benchmark, two modes.
 *
 * Closed-loop (default): sweeps concurrent client count x batch
 * overlap factor and compares, per cell, the shared-scan scheduler
 * (one deduplicated batch) against serial isolated execution of the
 * same queries on an identical rig:
 *
 *   - total wire bytes (all six wire.* counters),
 *   - mean per-query latency (serial latency is cumulative from batch
 *     admission, since a lone store serves queries one at a time),
 *   - batch makespan and task dedup ratio.
 *
 * Open-loop (--open-loop): the headline rig for the continuous
 * admission window. A Poisson client process submits queries through
 * the async QueryHandle API at `mult` x the closed-batch arrival rate
 * (closed rate = reference batch size / its makespan), sweeping rate
 * multiplier x overlap. Per cell it reports the sustained (peak and
 * mean) in-flight query count, window dedup rate vs the closed batch,
 * wire bytes vs serial, and p50/p99/mean sojourn against an analytic
 * serial baseline (c_i = max(arrival_i, c_{i-1}) + isolated service),
 * and enforces the admission-window acceptance bound: at 8x the
 * closed-batch rate the window must sustain >= 1000 in-flight
 * queries, hold its dedup rate within 10% of the closed batch, and
 * deliver a lower mean sojourn than serial execution.
 *
 * Everything runs in simulation, so every number is deterministic and
 * the JSON output can be gated byte-for-byte-stable in CI. Writes
 * BENCH_shared_scans.json (or BENCH_shared_scans_openloop.json) and,
 * with --check, exits nonzero when any metric regressed more than
 * --tolerance vs the checked-in baseline or when an acceptance bound
 * fails.
 *
 * Usage:
 *   bench_shared_scans [--quick] [--open-loop] [--out=PATH]
 *                      [--check=BASELINE] [--tolerance=0.05]
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "benchutil/harness.h"
#include "common/random.h"
#include "sched/scheduler.h"
#include "sim/cluster.h"
#include "store/fusion_store.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

using namespace fusion;

namespace {

struct Rig {
    std::unique_ptr<sim::Cluster> cluster;
    std::unique_ptr<store::FusionStore> store;
    format::Table table;
};

Rig
makeRig(size_t rows)
{
    Rig rig;
    sim::ClusterConfig config;
    config.numNodes = 9;
    rig.cluster = std::make_unique<sim::Cluster>(config);
    rig.store = std::make_unique<store::FusionStore>(
        *rig.cluster, store::StoreOptions{});
    if (benchutil::obsOptions().enabled())
        rig.store->obs().tracer.setEnabled(true);
    auto file = workload::buildLineitemFile(rows, 7);
    FUSION_CHECK(file.isOk());
    rig.table = workload::makeLineitemTable(rows, 7);
    FUSION_CHECK(rig.store->put("lineitem", file.value().bytes).isOk());
    return rig;
}

/**
 * First ceil(overlap * clients) clients issue one shared template
 * query; the rest are pairwise-distinct (column and selectivity vary
 * per client), so overlap 0 means no cross-query sharing at all.
 */
std::vector<query::Query>
overlappingBatch(const Rig &rig, size_t clients, double overlap)
{
    std::vector<query::Query> batch;
    size_t shared =
        static_cast<size_t>(overlap * static_cast<double>(clients) + 0.5);
    const format::Schema schema = workload::lineitemSchema();
    auto make = [&](size_t col, double sel) {
        return workload::microbenchQuery("lineitem",
                                         schema.column(col).name,
                                         rig.table.column(col), sel);
    };
    query::Query tmpl = make(workload::kOrderKey, 0.02);
    const size_t cols[] = {workload::kPartKey, workload::kSuppKey,
                           workload::kQuantity, workload::kExtendedPrice};
    for (size_t c = 0; c < clients; ++c) {
        if (c < shared)
            batch.push_back(tmpl);
        else
            batch.push_back(make(cols[c % std::size(cols)],
                                 0.01 + 0.002 * static_cast<double>(c)));
    }
    return batch;
}

uint64_t
totalWireBytes(store::ObjectStore &store)
{
    obs::MetricsRegistry &reg = store.obs().metrics;
    return reg.counter("wire.filter.request_bytes").value() +
           reg.counter("wire.filter.reply_bytes").value() +
           reg.counter("wire.projection.request_bytes").value() +
           reg.counter("wire.projection.reply_bytes").value() +
           reg.counter("wire.client.request_bytes").value() +
           reg.counter("wire.client.reply_bytes").value();
}

// ---- open-loop (Poisson client) mode -------------------------------

/**
 * Finite query-template pool for the open-loop arrival stream:
 * pool[0] is the shared template every "overlapping" arrival issues,
 * pool[1..4] are the distinct variants. A finite pool models hot
 * dashboard templates: even the non-shared arrivals repeat, which is
 * what gives the admission window something to join mid-flight.
 */
std::vector<query::Query>
templatePool(const Rig &rig)
{
    const format::Schema schema = workload::lineitemSchema();
    auto make = [&](size_t col, double sel) {
        return workload::microbenchQuery("lineitem",
                                         schema.column(col).name,
                                         rig.table.column(col), sel);
    };
    std::vector<query::Query> pool;
    pool.push_back(make(workload::kOrderKey, 0.02));
    const size_t cols[] = {workload::kPartKey, workload::kSuppKey,
                           workload::kQuantity, workload::kExtendedPrice};
    for (size_t k = 0; k < std::size(cols); ++k)
        pool.push_back(make(cols[k], 0.01 + 0.01 * double(k)));
    return pool;
}

/** Which pool template arrival i draws: Bresenham-interleaved so an
 *  `overlap` fraction of arrivals issue the shared template pool[0]
 *  and the rest cycle the distinct variants. */
size_t
poolIndexFor(size_t i, double overlap)
{
    double a = double(i) * overlap;
    double b = double(i + 1) * overlap;
    if (std::floor(b) > std::floor(a))
        return 0;
    return 1 + i % 4;
}

struct OpenLoopCell {
    size_t arrivals = 0;
    size_t peakInflight = 0;
    double meanInflight = 0.0;
    double dedupClosed = 0.0; // closed reference batch dedupRate()
    double dedupOpen = 0.0;   // open-loop window dedupRate()
    double openWireMb = 0.0;
    double wireRatio = 0.0;   // analytic serial wire / open wire
    double p50Ms = 0.0, p99Ms = 0.0, meanMs = 0.0;
    double serialMeanMs = 0.0; // analytic serial mean sojourn
    double sojournGain = 0.0;  // serial mean / open mean
};

/**
 * One open-loop cell: closed reference batch fixes the base arrival
 * rate (ref queries / makespan) and the dedup yardstick, a solo rig
 * measures isolated per-template service times for the analytic
 * serial baseline, then `n` Poisson arrivals at `mult` x the base
 * rate stream through scheduler.submit() as engine events.
 */
OpenLoopCell
runOpenLoopCell(size_t rows, size_t n, size_t mult, double overlap)
{
    OpenLoopCell cell;
    cell.arrivals = n;

    // Closed-batch reference: a barrier batch of kRefBatch queries
    // drawn from the same template mix. Its steady throughput —
    // kRefBatch / makespan, the rate a closed-loop driver sustains by
    // admitting such batches back to back — is the base arrival rate
    // the multiplier scales, and its dedup rate is the yardstick the
    // open-loop window is held to (a barrier sees every overlap; the
    // window only sees overlaps that land before issue).
    const size_t kRefBatch = 128;
    double closed_rate;
    {
        Rig rig = makeRig(rows);
        auto pool = templatePool(rig);
        std::vector<query::Query> batch;
        for (size_t i = 0; i < kRefBatch; ++i)
            batch.push_back(pool[poolIndexFor(i, overlap)]);
        sched::SharedScanScheduler scheduler(*rig.store);
        auto outcomes = scheduler.runBatch(batch);
        FUSION_CHECK(outcomes.isOk());
        const sched::BatchStats &stats = scheduler.lastBatchStats();
        cell.dedupClosed = stats.dedupRate();
        FUSION_CHECK(stats.makespanSeconds > 0.0);
        closed_rate = double(kRefBatch) / stats.makespanSeconds;
    }

    // Isolated service time and wire bytes per template, for the
    // analytic serial baseline.
    double service[8] = {0};
    uint64_t wire[8] = {0};
    {
        Rig rig = makeRig(rows);
        auto pool = templatePool(rig);
        for (size_t k = 0; k < pool.size(); ++k) {
            uint64_t before = totalWireBytes(*rig.store);
            auto outcome = rig.store->query(pool[k]);
            FUSION_CHECK(outcome.isOk());
            service[k] = outcome.value().latencySeconds;
            wire[k] = totalWireBytes(*rig.store) - before;
        }
    }

    // Poisson arrivals at mult x the closed-batch rate, submitted from
    // inside engine events (submit never advances simulated time).
    const double lambda = double(mult) * closed_rate;
    Rng rng(0xf05500ULL + mult * 131 + uint64_t(overlap * 100.0));
    std::vector<double> arrival(n);
    double t = 0.0;
    for (size_t i = 0; i < n; ++i) {
        t += -std::log(1.0 - rng.uniform()) / lambda;
        arrival[i] = t;
    }

    Rig rig = makeRig(rows);
    auto pool = templatePool(rig);
    sched::SharedScanScheduler scheduler(*rig.store);
    sim::SimEngine &engine = rig.store->cluster().engine();
    size_t peak = 0;
    double inflight_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
        engine.scheduleAt(arrival[i], [&, i] {
            scheduler.submit(pool[poolIndexFor(i, overlap)], i);
            size_t f = scheduler.inFlight();
            peak = std::max(peak, f);
            inflight_sum += double(f);
        });
    }
    scheduler.awaitAll();
    cell.peakInflight = peak;
    cell.meanInflight = inflight_sum / double(n);
    cell.dedupOpen = scheduler.windowStats().dedupRate();
    uint64_t open_wire = totalWireBytes(*rig.store);
    cell.openWireMb = double(open_wire) / 1e6;

    std::vector<double> sojourn(n, 0.0);
    while (sched::QueryHandle *h = scheduler.awaitAny()) {
        FUSION_CHECK(h->status().isOk());
        sojourn[h->tag] = h->sojournSeconds();
    }
    std::vector<double> sorted = sojourn;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (double s : sorted)
        sum += s;
    cell.p50Ms = sorted[n / 2] * 1e3;
    cell.p99Ms = sorted[(n * 99) / 100] * 1e3;
    cell.meanMs = sum / double(n) * 1e3;

    // Analytic serial baseline: one query at a time in arrival order,
    // each paying its isolated service time.
    double c = 0.0, serial_sum = 0.0;
    uint64_t serial_wire = 0;
    for (size_t i = 0; i < n; ++i) {
        size_t k = poolIndexFor(i, overlap);
        double start = std::max(arrival[i], c);
        c = start + service[k];
        serial_sum += c - arrival[i];
        serial_wire += wire[k];
    }
    cell.serialMeanMs = serial_sum / double(n) * 1e3;
    cell.sojournGain = cell.serialMeanMs / cell.meanMs;
    cell.wireRatio = double(serial_wire) / double(open_wire);

    benchutil::obsCollect(*rig.store);
    return cell;
}

/** Open-loop sweep: rate multiplier x overlap. Returns the number of
 *  acceptance failures at the gated 8x-rate cells. */
int
runOpenLoopSweep(bool quick,
                 std::vector<std::pair<std::string, double>> &metrics)
{
    const size_t rows = quick ? 4000 : 12000;
    const size_t arrivals = quick ? 2000 : 2600;
    const std::vector<size_t> mults =
        quick ? std::vector<size_t>{1, 8} : std::vector<size_t>{1, 2, 8};
    const double overlaps[] = {0.5, 1.0};

    benchutil::TablePrinter table(
        {"rate", "overlap", "arrivals", "peak infl", "mean infl",
         "dedup closed", "dedup open", "open wire MB", "p50 ms",
         "p99 ms", "mean ms", "serial mean ms", "gain"});

    int failures = 0;
    for (size_t mult : mults) {
        for (double overlap : overlaps) {
            OpenLoopCell cell =
                runOpenLoopCell(rows, arrivals, mult, overlap);

            char name[32];
            std::snprintf(name, sizeof(name), "r%zu_o%02d", mult,
                          int(overlap * 100.0 + 0.5));
            double dedup_vs_closed = cell.dedupOpen / cell.dedupClosed;
            metrics.emplace_back(std::string(name) + "_inflight_peak",
                                 double(cell.peakInflight));
            metrics.emplace_back(std::string(name) + "_dedup_vs_closed",
                                 dedup_vs_closed);
            metrics.emplace_back(std::string(name) + "_sojourn_gain",
                                 cell.sojournGain);
            metrics.emplace_back(std::string(name) + "_wire_ratio",
                                 cell.wireRatio);

            table.addRow({benchutil::fmt("%zux", mult),
                          benchutil::fmt("%.1f", overlap),
                          benchutil::fmt("%zu", cell.arrivals),
                          benchutil::fmt("%zu", cell.peakInflight),
                          benchutil::fmt("%.0f", cell.meanInflight),
                          benchutil::fmt("%.2f", cell.dedupClosed),
                          benchutil::fmt("%.2f", cell.dedupOpen),
                          benchutil::fmt("%.2f", cell.openWireMb),
                          benchutil::fmt("%.2f", cell.p50Ms),
                          benchutil::fmt("%.2f", cell.p99Ms),
                          benchutil::fmt("%.2f", cell.meanMs),
                          benchutil::fmt("%.2f", cell.serialMeanMs),
                          benchutil::fmt("%.2f", cell.sojournGain)});

            // Acceptance: at 8x the closed-batch arrival rate the
            // window must sustain >= 1000 in-flight queries, keep its
            // dedup rate within 10% of the closed batch, and beat the
            // serial baseline on mean sojourn. The in-flight bound is
            // pinned to the overlap-0.5 cell: at overlap 1.0 the
            // backlog plateaus at a drain/arrival equilibrium instead
            // of growing with the arrival count, so its peak sits
            // wherever the cost model puts the plateau.
            bool gate_inflight = overlap <= 0.5;
            if (mult == 8 &&
                ((gate_inflight && cell.peakInflight < 1000) ||
                 dedup_vs_closed < 0.9 || cell.sojournGain <= 1.0)) {
                std::fprintf(stderr,
                             "ACCEPTANCE FAIL %s: peak in-flight %zu, "
                             "dedup vs closed %.3f, sojourn gain %.3f\n",
                             name, cell.peakInflight, dedup_vs_closed,
                             cell.sojournGain);
                ++failures;
            }
        }
    }
    table.print();
    return failures;
}

void
writeJson(const std::string &path, const char *bench, bool quick,
          const std::vector<std::pair<std::string, double>> &metrics)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(2);
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench);
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"metrics\": {\n");
    for (size_t i = 0; i < metrics.size(); ++i)
        std::fprintf(f, "    \"%s\": %.6g%s\n", metrics[i].first.c_str(),
                     metrics[i].second,
                     i + 1 < metrics.size() ? "," : "");
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
}

/** Minimal parser for the flat {"metrics": {"name": number}} schema
 *  this binary writes (same shape as bench_kernels). */
std::map<std::string, double>
readBaselineMetrics(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
        std::exit(2);
    }
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);

    std::map<std::string, double> metrics;
    size_t obj = text.find("\"metrics\"");
    if (obj == std::string::npos)
        return metrics;
    obj = text.find('{', obj);
    size_t end_obj = text.find('}', obj);
    if (obj == std::string::npos || end_obj == std::string::npos)
        return metrics;
    size_t cur = obj;
    while (true) {
        size_t q0 = text.find('"', cur);
        if (q0 == std::string::npos || q0 > end_obj)
            break;
        size_t q1 = text.find('"', q0 + 1);
        size_t colon = text.find(':', q1);
        if (q1 == std::string::npos || colon == std::string::npos ||
            colon > end_obj)
            break;
        char *end = nullptr;
        double v = std::strtod(text.c_str() + colon + 1, &end);
        if (end == text.c_str() + colon + 1)
            break;
        metrics[text.substr(q0 + 1, q1 - q0 - 1)] = v;
        cur = static_cast<size_t>(end - text.c_str());
    }
    return metrics;
}

/** --check: every baseline metric must satisfy
 *  current >= baseline * (1 - tolerance). Returns failure count. */
int
checkBaseline(const std::string &baseline_path, double tolerance,
              const std::vector<std::pair<std::string, double>> &metrics)
{
    auto baseline = readBaselineMetrics(baseline_path);
    std::map<std::string, double> current(metrics.begin(), metrics.end());
    int failures = 0;
    for (const auto &[name, want] : baseline) {
        auto it = current.find(name);
        if (it == current.end())
            continue;
        double floor = want * (1.0 - tolerance);
        bool ok = it->second >= floor;
        std::printf("  check %-28s %10.4f >= %10.4f %s\n", name.c_str(),
                    it->second, floor, ok ? "ok" : "REGRESSED");
        failures += ok ? 0 : 1;
    }
    if (failures > 0)
        std::fprintf(stderr,
                     "%d shared-scan metric(s) regressed more than "
                     "%.0f%% vs %s\n",
                     failures, tolerance * 100.0, baseline_path.c_str());
    else
        std::printf("all shared-scan metrics within %.0f%% of baseline\n",
                    tolerance * 100.0);
    return failures;
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    bool quick = false;
    bool open_loop = false;
    std::string out_path;
    std::string baseline_path;
    double tolerance = 0.05;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick")
            quick = true;
        else if (arg == "--open-loop")
            open_loop = true;
        else if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else if (arg.rfind("--check=", 0) == 0)
            baseline_path = arg.substr(8);
        else if (arg.rfind("--tolerance=", 0) == 0)
            tolerance = std::atof(arg.c_str() + 12);
        else if (arg.rfind("--trace-out=", 0) == 0 ||
                 arg.rfind("--metrics-out=", 0) == 0 ||
                 arg.rfind("--timeseries-out=", 0) == 0)
            continue; // consumed by obsInit
        else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            return 2;
        }
    }

    if (out_path.empty())
        out_path = open_loop ? "BENCH_shared_scans_openloop.json"
                             : "BENCH_shared_scans.json";

    std::vector<std::pair<std::string, double>> metrics;
    int acceptance_failures = 0;
    if (open_loop) {
        benchutil::banner("shared-scans-openloop",
                          "Open-loop Poisson clients through the "
                          "admission window vs serial baseline");
        acceptance_failures = runOpenLoopSweep(quick, metrics);
        writeJson(out_path, "shared_scans_openloop", quick, metrics);
        std::printf("wrote %s\n", out_path.c_str());
        if (!baseline_path.empty() &&
            checkBaseline(baseline_path, tolerance, metrics) > 0)
            return 1;
        if (acceptance_failures > 0) {
            std::fprintf(stderr,
                         "%d open-loop cell(s) failed the admission-"
                         "window acceptance bound\n",
                         acceptance_failures);
            return 1;
        }
        return 0;
    }

    benchutil::banner("shared-scans",
                      "Shared-scan scheduler vs serial isolated execution");

    const size_t rows = quick ? 4000 : 12000;
    const std::vector<size_t> client_counts =
        quick ? std::vector<size_t>{4, 8}
              : std::vector<size_t>{2, 4, 8, 16};
    const double overlaps[] = {0.0, 0.5, 1.0};

    benchutil::TablePrinter table(
        {"clients", "overlap", "serial wire MB", "shared wire MB",
         "wire saved %", "serial mean ms", "shared mean ms",
         "latency gain %", "dedup ratio", "makespan ms"});

    for (size_t clients : client_counts) {
        for (double overlap : overlaps) {
            Rig serial_rig = makeRig(rows);
            Rig shared_rig = makeRig(rows);
            auto batch = overlappingBatch(serial_rig, clients, overlap);

            // Serial baseline: one query at a time; latency for query i
            // is its completion time measured from batch admission.
            double serial_sum = 0.0, elapsed = 0.0;
            for (const auto &q : batch) {
                auto outcome = serial_rig.store->query(q);
                FUSION_CHECK(outcome.isOk());
                elapsed += outcome.value().latencySeconds;
                serial_sum += elapsed;
            }
            double serial_mean = serial_sum / double(batch.size());
            uint64_t serial_wire = totalWireBytes(*serial_rig.store);

            sched::SharedScanScheduler scheduler(*shared_rig.store);
            auto outcomes = scheduler.runBatch(batch);
            FUSION_CHECK(outcomes.isOk());
            double shared_sum = 0.0;
            for (const auto &outcome : outcomes.value())
                shared_sum += outcome.latencySeconds;
            double shared_mean = shared_sum / double(batch.size());
            uint64_t shared_wire = totalWireBytes(*shared_rig.store);
            const sched::BatchStats &stats = scheduler.lastBatchStats();

            double wire_ratio =
                double(serial_wire) / double(shared_wire);
            double latency_ratio = serial_mean / shared_mean;
            double dedup_ratio = double(stats.tasksPlanned) /
                                 double(stats.tasksIssued);

            char cell[32];
            std::snprintf(cell, sizeof(cell), "c%zu_o%02d", clients,
                          int(overlap * 100.0 + 0.5));
            metrics.emplace_back(std::string(cell) + "_wire_ratio",
                                 wire_ratio);
            metrics.emplace_back(std::string(cell) + "_latency_ratio",
                                 latency_ratio);
            metrics.emplace_back(std::string(cell) + "_dedup_ratio",
                                 dedup_ratio);

            table.addRow(
                {benchutil::fmt("%zu", clients),
                 benchutil::fmt("%.1f", overlap),
                 benchutil::fmt("%.2f", double(serial_wire) / 1e6),
                 benchutil::fmt("%.2f", double(shared_wire) / 1e6),
                 benchutil::fmt("%.1f", 100.0 * (1.0 - 1.0 / wire_ratio)),
                 benchutil::fmt("%.2f", serial_mean * 1e3),
                 benchutil::fmt("%.2f", shared_mean * 1e3),
                 benchutil::fmt("%.1f",
                                100.0 * (1.0 - 1.0 / latency_ratio)),
                 benchutil::fmt("%.2f", dedup_ratio),
                 benchutil::fmt("%.2f", stats.makespanSeconds * 1e3)});

            // Acceptance: at overlap >= 0.5 and >= 8 clients, sharing
            // must strictly beat serial on both wire bytes and latency.
            if (overlap >= 0.5 && clients >= 8 &&
                (shared_wire >= serial_wire ||
                 shared_mean >= serial_mean)) {
                std::fprintf(stderr,
                             "ACCEPTANCE FAIL %s: wire %llu vs %llu, "
                             "mean %.4f ms vs %.4f ms\n",
                             cell,
                             static_cast<unsigned long long>(shared_wire),
                             static_cast<unsigned long long>(serial_wire),
                             shared_mean * 1e3, serial_mean * 1e3);
                ++acceptance_failures;
            }
            benchutil::obsCollect(*shared_rig.store);
        }
    }
    table.print();

    writeJson(out_path, "shared_scans", quick, metrics);
    std::printf("wrote %s\n", out_path.c_str());

    if (!baseline_path.empty() &&
        checkBaseline(baseline_path, tolerance, metrics) > 0)
        return 1;
    if (acceptance_failures > 0) {
        std::fprintf(stderr,
                     "%d high-overlap cell(s) failed the sharing "
                     "acceptance bound\n",
                     acceptance_failures);
        return 1;
    }
    return 0;
}
