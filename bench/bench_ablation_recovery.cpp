/**
 * @file
 * Ablation A5: recovery cost under FAC. The paper keeps conventional
 * recovery (§5, "Recovery and Fault Tolerance"); this ablation
 * quantifies two design questions it leaves open:
 *
 *  1. Does FAC's variable-size-block layout change single-node repair
 *     traffic vs fixed blocks? (Repair reads k surviving blocks per
 *     affected stripe; FAC stripes are sized by their largest chunk.)
 *  2. What would a locally repairable code buy on top of FAC?
 *     (LRC(6,2,2) repairs a block from 3 reads instead of 6.)
 *
 * Traffic is computed from the layouts at paper scale (lineitem model).
 */
#include "benchutil/harness.h"
#include "common/units.h"
#include "ec/lrc.h"
#include "fac/constructors.h"
#include "workload/chunk_models.h"

using namespace fusion;
using namespace fusion::benchutil;

namespace {

/** Bytes read to rebuild every block of one failed node, assuming the
 *  node held `fraction` of each stripe's blocks on average and repair
 *  reads `reads_per_block` surviving blocks of the stripe size. */
uint64_t
repairTraffic(const fac::ObjectLayout &layout, size_t n,
              size_t reads_per_block)
{
    // Expected blocks of a random node: each stripe places its n blocks
    // on n distinct nodes of a 10-node cluster, so a node holds a block
    // of a stripe with probability n/10; repairing it reads
    // reads_per_block blocks of ~blockSize bytes.
    uint64_t total = 0;
    for (const auto &stripe : layout.stripes)
        total += stripe.blockSize() * reads_per_block;
    // Scale by the probability the failed node held one of the
    // stripe's blocks.
    return static_cast<uint64_t>(static_cast<double>(total) *
                                 static_cast<double>(n) / 10.0);
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    banner("Ablation A5", "single-node repair traffic: layout x code");

    auto model = workload::lineitemChunkModel(77);
    uint64_t object_bytes = workload::modelTotalBytes(model);

    fac::ObjectLayout fac_layout = fac::buildFacLayout(model, 9, 6);
    fac::ObjectLayout fixed_layout =
        fac::buildFixedLayout(model, 9, 6, 100'000'000);
    // LRC(6,2,2) has n = 10 blocks per stripe; rebuild the FAC layout
    // with matching k = 6 (stripe shapes are identical; only parity
    // count differs).
    auto lrc = ec::LrcCode::create(6, 2, 2).value();

    TablePrinter table({"layout + code", "stripes", "repair reads/block",
                        "repair traffic", "vs object size"});
    struct Row {
        const char *name;
        const fac::ObjectLayout *layout;
        size_t n;
        size_t reads;
    };
    Row rows[] = {
        {"fixed + RS(9,6)", &fixed_layout, 9, 6},
        {"FAC + RS(9,6)", &fac_layout, 9, 6},
        {"fixed + LRC(6,2,2)", &fixed_layout, 10, lrc.repairReadCount(0)},
        {"FAC + LRC(6,2,2)", &fac_layout, 10, lrc.repairReadCount(0)},
    };
    for (const auto &row : rows) {
        uint64_t traffic = repairTraffic(*row.layout, row.n, row.reads);
        table.addRow({row.name, std::to_string(row.layout->stripes.size()),
                      std::to_string(row.reads), formatBytes(traffic),
                      fmt("%.2fx", static_cast<double>(traffic) /
                                       static_cast<double>(object_bytes))});
    }
    table.print();

    std::printf("\nstripe block-size distribution (drives repair reads):\n");
    auto describe = [&](const char *name, const fac::ObjectLayout &layout) {
        SampleHistogram sizes;
        for (const auto &stripe : layout.stripes)
            sizes.add(static_cast<double>(stripe.blockSize()));
        std::printf("  %-6s %3zu stripes, block size p50 %s, max %s\n",
                    name, layout.stripes.size(),
                    formatBytes(static_cast<uint64_t>(sizes.p50())).c_str(),
                    formatBytes(static_cast<uint64_t>(sizes.max())).c_str());
    };
    describe("fixed", fixed_layout);
    describe("FAC", fac_layout);

    std::printf("\nexpected: FAC's repair traffic is comparable to fixed "
                "(bounded by its ~1%% extra parity), and an LRC halves "
                "repair reads under either layout — supporting the "
                "paper's claim that FAC is orthogonal to the choice of "
                "code\n");
    return 0;
}
