/**
 * @file
 * TPC-H lineitem generator. Reproduces the 16-column schema with the
 * column ids (0-15) used throughout the paper's figures, and value
 * distributions that mirror dbgen closely enough that the per-column
 * chunk sizes and compression ratios show the paper's shape: tiny
 * highly-repetitive flag/date columns, large high-cardinality price
 * columns, and a dominant free-text comment column (paper Figs 6, 12).
 */
#ifndef FUSION_WORKLOAD_LINEITEM_H
#define FUSION_WORKLOAD_LINEITEM_H

#include "format/column.h"
#include "format/writer.h"

namespace fusion::workload {

/** Column ids of lineitem, matching the paper's figures. */
enum LineitemColumn : size_t {
    kOrderKey = 0,      // c0
    kPartKey = 1,       // c1
    kSuppKey = 2,       // c2
    kLineNumber = 3,    // c3
    kQuantity = 4,      // c4
    kExtendedPrice = 5, // c5
    kDiscount = 6,      // c6
    kTax = 7,           // c7
    kReturnFlag = 8,    // c8
    kLineStatus = 9,    // c9
    kShipDate = 10,     // c10
    kCommitDate = 11,   // c11
    kReceiptDate = 12,  // c12
    kShipInstruct = 13, // c13
    kShipMode = 14,     // c14
    kComment = 15,      // c15
};

/** The 16-column lineitem schema. */
format::Schema lineitemSchema();

/** Generates `rows` lineitem rows (deterministic per seed). */
format::Table makeLineitemTable(size_t rows, uint64_t seed);

/**
 * Generates and encodes a lineitem fpax file with 10 row groups (160
 * column chunks, as in paper Table 3).
 */
Result<format::WrittenFile> buildLineitemFile(size_t rows, uint64_t seed);

} // namespace fusion::workload

#endif // FUSION_WORKLOAD_LINEITEM_H
