/**
 * @file
 * Reproduces paper Fig 14c: latency reduction for the column-5
 * microbenchmark under 10 / 25 / 100 Gbps NICs. Paper: Fusion's edge
 * grows as the network gets slower, because the baseline's reassembly
 * traffic hurts more.
 */
#include "benchutil/rigs.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

using namespace fusion;
using namespace fusion::benchutil;

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    banner("Fig 14c", "latency reduction vs network bandwidth (column 5)");

    TablePrinter table({"NIC bandwidth", "p50 reduction (%)",
                        "p99 reduction (%)", "baseline p50", "fusion p50"});
    for (double gbps : {10.0, 25.0, 100.0}) {
        RigOptions options;
        options.rows = 60000;
        options.copies = 4;
        options.node.nicBandwidth = gbps * 1e9 / 8;
        StorePair pair = makeStorePair(Dataset::kLineitem, options);

        query::Query q = workload::microbenchQuery(
            "x", "l_extendedprice",
            pair.table.column(workload::kExtendedPrice), 0.01);

        RunConfig config;
        config.totalQueries = 250;
        Comparison cmp =
            compareStores(pair, config, [&](size_t) { return q; });
        table.addRow({fmt("%.0f Gbps", gbps),
                      fmt("%.1f", cmp.p50ReductionPct()),
                      fmt("%.1f", cmp.p99ReductionPct()),
                      formatSeconds(cmp.baseline.latency.p50()),
                      formatSeconds(cmp.fusion.latency.p50())});
    }
    table.print();
    std::printf("\npaper: higher gains on slower networks\n");
    return 0;
}
