/**
 * @file
 * Tests for the benchmark harness itself, plus a pinned end-to-end
 * "headline claim" regression: on the paper-calibrated rig, Fusion must
 * beat the baseline by a healthy margin on a selective query over a
 * large column, while moving several times less data. If a change to
 * the stores or the simulator breaks the reproduction, this fails in
 * ctest rather than silently skewing the bench outputs.
 */
#include <gtest/gtest.h>

#include "benchutil/harness.h"
#include "benchutil/rigs.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

namespace fusion::benchutil {
namespace {

TEST(HarnessTest, LatencyReductionPct)
{
    EXPECT_DOUBLE_EQ(latencyReductionPct(2.0, 1.0), 50.0);
    EXPECT_DOUBLE_EQ(latencyReductionPct(1.0, 2.0), -100.0);
    EXPECT_DOUBLE_EQ(latencyReductionPct(0.0, 1.0), 0.0);
}

TEST(HarnessTest, ScaledNodeConfigDividesRates)
{
    sim::NodeConfig base;
    sim::NodeConfig scaled = scaledNodeConfig(base, 1000, 10000.0);
    EXPECT_DOUBLE_EQ(scaled.diskBandwidth, base.diskBandwidth / 10);
    EXPECT_DOUBLE_EQ(scaled.nicBandwidth, base.nicBandwidth / 10);
    EXPECT_DOUBLE_EQ(scaled.cpuRate, base.cpuRate / 10);
    // Latencies are not scaled.
    EXPECT_DOUBLE_EQ(scaled.rpcLatency, base.rpcLatency);
    EXPECT_DOUBLE_EQ(scaled.diskSeekLatency, base.diskSeekLatency);
}

class RigFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        RigOptions options;
        options.rows = 20000;
        options.copies = 3;
        pair_ = new StorePair(makeStorePair(Dataset::kLineitem, options));
    }

    static void
    TearDownTestSuite()
    {
        delete pair_;
        pair_ = nullptr;
    }

    static StorePair *pair_;
};

StorePair *RigFixture::pair_ = nullptr;

TEST_F(RigFixture, RigStoresAllCopiesInBothStores)
{
    ASSERT_EQ(pair_->objects.size(), 3u);
    for (const auto &name : pair_->objects) {
        EXPECT_TRUE(pair_->baseline->contains(name));
        EXPECT_TRUE(pair_->fusion->contains(name));
    }
    // onCopy rotates deterministically.
    query::Query q;
    q.table = "x";
    EXPECT_EQ(pair_->onCopy(q, 0).table, pair_->objects[0]);
    EXPECT_EQ(pair_->onCopy(q, 4).table, pair_->objects[1]);
}

TEST_F(RigFixture, ClosedLoopRunsAllQueries)
{
    query::Query q = workload::microbenchQuery(
        "x", "l_extendedprice",
        pair_->table.column(workload::kExtendedPrice), 0.01);
    RunConfig config;
    config.totalQueries = 40;
    config.clients = 4;
    RunStats stats = runClosedLoop(*pair_->fusion, config, [&](size_t i) {
        return pair_->onCopy(q, i);
    });
    EXPECT_EQ(stats.latency.count(), 40u);
    EXPECT_GT(stats.latency.p50(), 0.0);
    EXPECT_GT(stats.networkBytes, 0u);
    EXPECT_GT(stats.wallSimSeconds, 0.0);
}

TEST_F(RigFixture, OpenLoopPacesArrivals)
{
    query::Query q = workload::microbenchQuery(
        "x", "l_linenumber", pair_->table.column(workload::kLineNumber),
        0.01);
    RunConfig config;
    config.totalQueries = 20;
    config.openLoopQps = 100.0;
    RunStats stats = runClosedLoop(*pair_->fusion, config, [&](size_t i) {
        return pair_->onCopy(q, i);
    });
    EXPECT_EQ(stats.latency.count(), 20u);
    // 20 arrivals at 100 qps span at least 0.19 simulated seconds.
    EXPECT_GE(stats.wallSimSeconds, 0.19);
}

TEST_F(RigFixture, HeadlineClaimFusionWinsSelectiveQueries)
{
    // The reproduction's core claim (paper Figs 13/15): on a selective
    // query over a large column, Fusion cuts p50 latency by a healthy
    // margin and moves several times fewer bytes.
    query::Query q = workload::microbenchQuery(
        "x", "l_extendedprice",
        pair_->table.column(workload::kExtendedPrice), 0.01);
    RunConfig config;
    config.totalQueries = 60;
    Comparison cmp = compareStores(*pair_, config, [&](size_t) {
        return q;
    });
    EXPECT_GT(cmp.p50ReductionPct(), 15.0)
        << "Fusion's latency advantage regressed";
    EXPECT_GT(cmp.trafficRatio(), 5.0)
        << "Fusion's traffic advantage regressed";
    // Results identical across stores (spot check via counts).
    EXPECT_EQ(cmp.baseline.latency.count(), cmp.fusion.latency.count());
}

TEST(TablePrinterTest, AlignsAndPrints)
{
    TablePrinter table({"a", "long header"});
    table.addRow({"1", "2"});
    table.addRow({"333333", "4"});
    testing::internal::CaptureStdout();
    table.print();
    std::string out = testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("| a      | long header |"), std::string::npos);
    EXPECT_NE(out.find("| 333333 | 4           |"), std::string::npos);
}

TEST(FmtTest, FormatsLikePrintf)
{
    EXPECT_EQ(fmt("%.2f%%", 12.345), "12.35%");
    EXPECT_EQ(fmt("%d-%s", 7, "x"), "7-x");
}

} // namespace
} // namespace fusion::benchutil
