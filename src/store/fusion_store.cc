#include "fusion_store.h"

#include <set>

#include "fac/constructors.h"
#include "query/cost.h"

namespace fusion::store {

fac::ObjectLayout
FusionStore::buildLayout(const std::vector<fac::ChunkExtent> &extents)
{
    fac::FusionLayoutOptions layout_options;
    layout_options.n = options_.n;
    layout_options.k = options_.k;
    layout_options.overheadThreshold = options_.overheadThreshold;
    layout_options.fallbackBlockSize = options_.fixedBlockSize;
    return fac::buildFusionLayout(extents, layout_options);
}

fac::ObjectLayout
FusionStore::buildRestripeLayout(
    const std::vector<fac::ChunkExtent> &extents,
    const std::vector<uint32_t> &hot_chunks)
{
    if (hot_chunks.empty())
        return buildLayout(extents);
    fac::ObjectLayout heat_layout = fac::buildHeatFacLayout(
        extents, options_.n, options_.k, hot_chunks);
    // Two independent packings waste more bin tail than one; when that
    // exceeds twice the configured threshold, locality loses to
    // storage overhead and the ordinary Fusion layout applies.
    if (heat_layout.overheadVsOptimal() > 2.0 * options_.overheadThreshold)
        return buildLayout(extents);
    return heat_layout;
}

Result<ObjectStore::QueryPlan>
FusionStore::planQuery(const ObjectManifest &manifest,
                       const query::Query &q)
{
    auto plane_r = executeDataPlane(manifest, q);
    if (!plane_r.isOk())
        return plane_r.status();
    const DataPlane &plane = plane_r.value();

    const format::FileMetadata &meta = manifest.fileMeta;
    const format::Schema &schema = meta.schema;

    QueryPlan plan;
    plan.coordinatorId = cluster_.coordinatorFor(manifest.name);
    plan.outcome.result = plane.result;
    plan.clientReplyBytes = plane.resultWireBytes;

    // Filter signatures identify the reply payload for cross-query
    // sharing: a filter-pushdown bitmap depends only on the predicates
    // over its own column; a projection-pushdown reply depends on the
    // whole filter set (the final ANDed bitmap selects its rows).
    auto column_filter_sig = [&](const std::string &col_name) {
        std::string sig;
        for (const auto &pred : q.filters) {
            if (pred.column != col_name)
                continue;
            sig += pred.column;
            sig += compareOpName(pred.op);
            sig += pred.literal.toString();
            sig += ';';
        }
        return sig;
    };
    std::string full_filter_sig;
    for (const auto &pred : q.filters) {
        full_filter_sig += pred.column;
        full_filter_sig += compareOpName(pred.op);
        full_filter_sig += pred.literal.toString();
        full_filter_sig += ';';
    }

    // EXPLAIN collection (per-chunk Cost Equation inputs + verdicts);
    // only filled when the report was asked for.
    const bool explain = obs_.explainEnabled;
    obs::QueryExplain report;
    if (explain) {
        report.table = manifest.name;
        report.query = q.toString();
        report.selectivity = plane.selectivity;
    }

    // ---- filter stage ----
    // Chunks decoded in-situ during this stage stay warm on their node
    // for the projection stage of the same query (the paper's Fig 13c
    // shows both systems paying the disk/decode cost once).
    std::set<std::pair<size_t, uint32_t>> warm_chunks;
    for (size_t rg = 0; rg < meta.numRowGroups(); ++rg) {
        if (!plane.rowGroupBitmaps[rg].has_value()) {
            ++plan.outcome.rowGroupsSkipped;
            continue;
        }
        ++plan.outcome.rowGroupsScanned;
        for (const auto &col_name : q.filterColumns()) {
            size_t col = schema.columnIndex(col_name).value();
            const format::ChunkMeta &chunk = meta.chunk(rg, col);
            uint32_t chunk_id = manifest.chunkIdFor(rg, col);
            // Cache residency wins over node health AND the wire math:
            // a resident chunk filters at the coordinator for pure CPU
            // cost, no request, disk or reply bytes.
            auto cached = cacheLookupChunk(manifest, chunk_id);
            if (cached.hit) {
                SimTask task{plan.coordinatorId, 0, 0, 0.0, 0,
                             cached.decoded ? chunkSelectWork(chunk)
                                            : chunkDecodeWork(chunk),
                             "cached_local"};
                task.chunkId = chunk_id;
                plan.filterTasks.push_back(std::move(task));
                ++plan.outcome.filterChunkCached;
                continue;
            }
            auto state = chunkPushdownState(manifest, chunk_id);
            if (state == ChunkPushdownState::kPushable) {
                size_t node = manifest.nodesForChunk(chunk_id)[0];
                SimTask task{node, options_.requestRpcBytes,
                             chunk.storedSize, chunkDecodeWork(chunk),
                             plane.filterReplyWireSize.at({rg, col}), 0.0,
                             "filter_pushdown"};
                task.shareKey = "fpush|" + manifest.shareName() + "|" +
                                std::to_string(chunk_id) + "|" +
                                column_filter_sig(col_name);
                task.chunkId = chunk_id;
                obs_.telemetry.heat().recordAccess(
                    cluster_.engine().now(), manifest.shareName(),
                    chunk_id);
                plan.filterTasks.push_back(std::move(task));
                warm_chunks.insert({node, chunk_id});
                ++plan.outcome.filterChunkPushdowns;
            } else {
                // Split or degraded chunk: fall back to reassembly at
                // the coordinator, which also evaluates the filter.
                if (state == ChunkPushdownState::kFaulted) {
                    ++plan.outcome.pushdownFallbacks;
                    ins_.pushdownFallbacks->add(1);
                }
                appendChunkFetchTasks(manifest, chunk_id,
                                      plan.coordinatorId,
                                      chunkDecodeWork(chunk),
                                      plan.filterTasks);
                ++plan.outcome.filterChunkFetches;
                // The bytes land at the coordinator anyway: keep them.
                cacheAdmitChunk(manifest, chunk_id);
            }
        }
    }

    // Bitmap consolidation at the coordinator (cheap, byte-counted).
    for (size_t rg = 0; rg < meta.numRowGroups(); ++rg)
        plan.interStageCoordWork +=
            static_cast<double>(plane.rowGroupBitmapWireSize[rg]);

    // ---- projection stage (fine-grained adaptive pushdown) ----
    // Columns only referenced by aggregates can use aggregate pushdown
    // (extension; off by default as in the paper).
    std::set<std::string> plain_projected;
    for (const auto &proj : q.projections)
        if (proj.aggregate == query::AggregateKind::kNone)
            plain_projected.insert(proj.column);

    for (const auto &col_name : q.projectionColumns()) {
        size_t col = schema.columnIndex(col_name).value();
        bool aggregate_only = plain_projected.count(col_name) == 0;
        for (size_t rg = 0; rg < meta.numRowGroups(); ++rg) {
            const auto &bitmap = plane.rowGroupBitmaps[rg];
            if (!bitmap.has_value() || bitmap->count() == 0)
                continue;
            const format::ChunkMeta &chunk = meta.chunk(rg, col);
            uint32_t chunk_id = manifest.chunkIdFor(rg, col);

            // The Cost Equation inputs are computed for every chunk so
            // EXPLAIN can report them even when residency or health
            // overrides the verdict.
            auto cached = cacheLookupChunk(manifest, chunk_id);
            auto cached_decision = query::decideProjectionPushdownCached(
                cached.hit, plane.selectivity, chunk);
            const query::PushdownDecision &decision = cached_decision.base;
            auto record = [&](const char *verdict, const char *reason) {
                if (!explain)
                    return;
                // A chunk the compaction re-stripe co-located carries
                // the fact into EXPLAIN, whatever the verdict.
                std::string why = reason;
                if (manifest.isHotColocated(chunk_id))
                    why += "; hot-colocated";
                report.projections.push_back(
                    {chunk_id, static_cast<uint32_t>(rg), col_name,
                     decision.selectivity, decision.compressibility,
                     verdict, std::move(why)});
            };

            if (cached_decision.local) {
                // Resident at the coordinator: evaluate locally. No
                // wire, no disk — only the decode (or, with a decoded
                // layer attached, just the row-selection pass).
                SimTask task{plan.coordinatorId, 0, 0, 0.0, 0,
                             cached.decoded ? chunkSelectWork(chunk)
                                            : chunkDecodeWork(chunk),
                             "cached_local"};
                task.chunkId = chunk_id;
                plan.projectionTasks.push_back(std::move(task));
                ++plan.outcome.projectionCachedLocal;
                record("local", "cached-local");
                continue;
            }

            auto state = chunkPushdownState(manifest, chunk_id);
            if (state != ChunkPushdownState::kPushable) {
                // The Cost Equation is only consulted for healthy
                // single-node chunks; a faulted target forces
                // coordinator-side evaluation regardless of its verdict.
                if (state == ChunkPushdownState::kFaulted) {
                    ++plan.outcome.pushdownFallbacks;
                    ins_.pushdownFallbacks->add(1);
                    record("fetch", "node unresponsive (health fallback)");
                } else {
                    record("fetch", "chunk split across nodes");
                }
                appendChunkFetchTasks(manifest, chunk_id,
                                      plan.coordinatorId,
                                      chunkDecodeWork(chunk),
                                      plan.projectionTasks);
                ++plan.outcome.projectionFetches;
                cacheAdmitChunk(manifest, chunk_id);
                continue;
            }
            size_t node = manifest.nodesForChunk(chunk_id)[0];
            uint64_t request = options_.requestRpcBytes +
                               plane.rowGroupBitmapWireSize[rg];
            // If this node decoded the chunk during the filter stage of
            // this query, projection reuses the decoded form: no second
            // disk read, only the row-selection pass.
            bool warm = warm_chunks.count({node, chunk_id}) > 0;
            uint64_t disk_bytes = warm ? 0 : chunk.storedSize;
            double decode_work =
                warm ? chunkSelectWork(chunk) : chunkDecodeWork(chunk);

            // Shared-scan metadata: enough for the scheduler to re-run
            // the Cost Equation over a merged consumer set, or to
            // convert this pushdown into a shared chunk fetch.
            auto fill_shared = [&](SimTask &task) {
                task.chunkId = chunk_id;
                task.selectivity = plane.selectivity;
                task.chunkStoredBytes = chunk.storedSize;
                task.chunkPlainBytes = chunk.plainSize;
                task.fetchDecodeWork = chunkDecodeWork(chunk);
                task.consumerSelectWork = chunkSelectWork(chunk);
            };

            // Every projection-stage task (push or fetch) is one more
            // access for the chunk-heat table.
            obs_.telemetry.heat().recordAccess(cluster_.engine().now(),
                                               manifest.shareName(),
                                               chunk_id);

            if (options_.aggregatePushdown && aggregate_only) {
                // Node returns a (count, sum, min, max) scalar tuple.
                SimTask task{node, request, disk_bytes, decode_work, 32,
                             0.0, "projection_pushdown"};
                task.shareKey = "apush|" + manifest.shareName() + "|" +
                                std::to_string(chunk_id) + "|" +
                                full_filter_sig;
                fill_shared(task);
                plan.projectionTasks.push_back(std::move(task));
                ++plan.outcome.projectionPushdowns;
                record("push", "aggregate-only projection");
                continue;
            }

            bool push = options_.adaptivePushdown ? decision.push : true;
            if (push) {
                SimTask task{node, request, disk_bytes, decode_work,
                             plane.projectionReplySize.at({rg, col}), 0.0,
                             "projection_pushdown"};
                task.shareKey = "ppush|" + manifest.shareName() + "|" +
                                std::to_string(chunk_id) + "|" +
                                full_filter_sig;
                fill_shared(task);
                plan.projectionTasks.push_back(std::move(task));
                ++plan.outcome.projectionPushdowns;
                record("push", options_.adaptivePushdown
                                   ? "cost product < 1"
                                   : "adaptive pushdown disabled");
            } else {
                // Fetch the compressed chunk; decode + select locally.
                SimTask task{node, options_.requestRpcBytes,
                             chunk.storedSize, 0.0, chunk.storedSize,
                             chunkDecodeWork(chunk), "chunk_fetch"};
                task.shareKey =
                    "cfetch|" + manifest.shareName() + "|" +
                    std::to_string(chunk_id);
                fill_shared(task);
                plan.projectionTasks.push_back(std::move(task));
                ++plan.outcome.projectionFetches;
                record("fetch", "cost product >= 1");
                // The fetch parks the chunk at the coordinator — admit
                // it so repeat queries flip to "cached-local".
                cacheAdmitChunk(manifest, chunk_id);
            }
        }
    }

    if (explain) {
        report.rowGroupsScanned = plan.outcome.rowGroupsScanned;
        report.rowGroupsSkipped = plan.outcome.rowGroupsSkipped;
        report.filterPushdowns = plan.outcome.filterChunkPushdowns;
        report.filterFetches = plan.outcome.filterChunkFetches;
        report.filterCached = plan.outcome.filterChunkCached;
        plan.outcome.explain =
            std::make_shared<const obs::QueryExplain>(std::move(report));
    }
    return plan;
}

} // namespace fusion::store
