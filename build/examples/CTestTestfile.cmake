# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tpch_analytics "/root/repo/build/examples/tpch_analytics" "20000")
set_tests_properties(example_tpch_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_taxi_analytics "/root/repo/build/examples/taxi_analytics" "24000")
set_tests_properties(example_taxi_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_tolerance "/root/repo/build/examples/fault_tolerance")
set_tests_properties(example_fault_tolerance PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_csv_to_fusion "/root/repo/build/examples/csv_to_fusion")
set_tests_properties(example_csv_to_fusion PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
