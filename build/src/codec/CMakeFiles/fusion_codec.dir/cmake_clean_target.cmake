file(REMOVE_RECURSE
  "libfusion_codec.a"
)
