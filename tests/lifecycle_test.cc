/**
 * @file
 * Object lifecycle tests (src/lifecycle/): the append delta log, the
 * background Compactor and the heat-driven re-stripe policy. The
 * invariants probed here are the subsystem's contract:
 *
 *   - queries against base + live delta segments return exactly what a
 *     monolithic put of the concatenated table returns;
 *   - get() of an appended object is byte-identical to the fpax file
 *     the compactor will eventually write (so compaction is
 *     unobservable through the read path);
 *   - compaction folds deterministically (generation bump, counters,
 *     byte-identity) and an aborted fold leaves the old generation and
 *     the full log untouched without keeping the DES alive;
 *   - the re-stripe decision consults real access heat and surfaces in
 *     the manifest and EXPLAIN;
 *   - deleteObject leaves no residue: delta replicas, heat entries and
 *     cache residency all drop with the object.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "format/reader.h"
#include "lifecycle/delta_log.h"
#include "query/parser.h"
#include "store/fusion_store.h"
#include "workload/lineitem.h"

namespace fusion::store {
namespace {

struct TestRig {
    std::unique_ptr<sim::Cluster> cluster;
    std::unique_ptr<FusionStore> store;
};

TestRig
makeRig(StoreOptions options = {}, size_t nodes = 9)
{
    TestRig rig;
    sim::ClusterConfig config;
    config.numNodes = nodes;
    rig.cluster = std::make_unique<sim::Cluster>(config);
    rig.store = std::make_unique<FusionStore>(*rig.cluster, options);
    return rig;
}

/** Options with background compaction off, so delta logs stay live. */
StoreOptions
noCompactionOptions()
{
    StoreOptions options;
    options.compaction.enabled = false;
    return options;
}

/** Appends every row of `extra` onto a copy of `base`. */
format::Table
concatTables(const format::Table &base, const format::Table &extra)
{
    format::Table merged = base;
    for (size_t col = 0; col < merged.numColumns(); ++col) {
        const format::ColumnData &src = extra.column(col);
        for (size_t i = 0; i < src.size(); ++i)
            merged.column(col).appendValue(src.valueAt(i));
    }
    return merged;
}

/** The delta path merges aggregates incrementally (running AVG and
 *  SUM folds), so doubles may differ from the single-pass reference in
 *  the last few bits — everything else must match exactly. */
void
expectSameResult(const query::QueryResult &got,
                 const query::QueryResult &want)
{
    EXPECT_EQ(got.rowsMatched, want.rowsMatched);
    ASSERT_EQ(got.columns.size(), want.columns.size());
    for (size_t i = 0; i < want.columns.size(); ++i) {
        const auto &g = got.columns[i];
        const auto &w = want.columns[i];
        EXPECT_EQ(g.name, w.name);
        EXPECT_EQ(g.isAggregate, w.isAggregate);
        if (w.isAggregate) {
            double tol =
                1e-9 * std::max(1.0, std::fabs(w.aggregateValue));
            EXPECT_NEAR(g.aggregateValue, w.aggregateValue, tol)
                << "aggregate " << w.name;
        } else {
            EXPECT_TRUE(g.values == w.values) << "projection " << w.name;
        }
    }
}

constexpr size_t kBaseRows = 4000;
// buildLineitemFile writes 10 row groups: 400 rows each, all full, so
// the store's baseRowGroupRows probe and this constant agree.
constexpr size_t kBaseGroupRows = 400;

const std::vector<std::string> &
coverageQueries()
{
    static const std::vector<std::string> queries = {
        "SELECT COUNT(*) FROM lineitem WHERE l_quantity > 25",
        "SELECT l_orderkey FROM lineitem WHERE l_quantity < 4",
        "SELECT SUM(l_extendedprice), AVG(l_discount) FROM lineitem "
        "WHERE l_quantity >= 30",
        "SELECT COUNT(*), MIN(l_extendedprice), MAX(l_extendedprice) "
        "FROM lineitem",
        "SELECT l_comment FROM lineitem WHERE l_returnflag = 'R'",
        "SELECT * FROM lineitem WHERE l_orderkey < 40",
    };
    return queries;
}

TEST(LifecycleAppendTest, QueriesMergeDeltaSegments)
{
    TestRig rig = makeRig(noCompactionOptions());
    auto base = workload::buildLineitemFile(kBaseRows, 7);
    ASSERT_TRUE(base.isOk());
    ASSERT_TRUE(rig.store->put("lineitem", base.value().bytes).isOk());

    format::Table batch_a = workload::makeLineitemTable(120, 21);
    format::Table batch_b = workload::makeLineitemTable(250, 22);
    auto a = rig.store->append("lineitem", batch_a);
    ASSERT_TRUE(a.isOk()) << a.status().toString();
    EXPECT_EQ(a.value().seq, 0u);
    EXPECT_EQ(a.value().rows, 120u);
    EXPECT_EQ(a.value().replicas, rig.store->options().deltaReplicas);
    EXPECT_GT(a.value().segmentBytes, 0u);
    auto b = rig.store->append("lineitem", batch_b);
    ASSERT_TRUE(b.isOk());
    EXPECT_EQ(b.value().seq, 1u);
    ASSERT_NE(rig.store->deltaLog("lineitem"), nullptr);
    EXPECT_EQ(rig.store->deltaLog("lineitem")->size(), 2u);

    // Reference: a monolithic put of the concatenated table, written
    // with the same row-group geometry as the appended object's base.
    TestRig ref = makeRig(noCompactionOptions());
    format::Table merged =
        concatTables(concatTables(workload::makeLineitemTable(kBaseRows, 7),
                                  batch_a),
                     batch_b);
    format::WriterOptions writer_options;
    writer_options.rowGroupRows = kBaseGroupRows;
    auto merged_file = format::writeTable(merged, writer_options);
    ASSERT_TRUE(merged_file.isOk());
    ASSERT_TRUE(
        ref.store->put("lineitem", merged_file.value().bytes).isOk());

    rig.store->obs().explainEnabled = true;
    for (const std::string &text : coverageQueries()) {
        auto got = rig.store->querySql(text);
        auto want = ref.store->querySql(text);
        ASSERT_TRUE(got.isOk()) << text << ": " << got.status().toString();
        ASSERT_TRUE(want.isOk()) << text;
        expectSameResult(got.value().result, want.value().result);
        EXPECT_EQ(got.value().deltaSegmentsScanned, 2u) << text;
        EXPECT_EQ(want.value().deltaSegmentsScanned, 0u) << text;
        // The merge surfaces in EXPLAIN as per-segment delta rows.
        ASSERT_NE(got.value().explain, nullptr);
        bool has_delta = false;
        for (const auto &chunk : got.value().explain->projections)
            has_delta = has_delta || chunk.verdict == "delta";
        EXPECT_TRUE(has_delta) << text;
    }
    EXPECT_EQ(rig.store->obs().metrics.counter("append.appends").value(),
              2u);
    EXPECT_EQ(rig.store->obs().metrics.counter("append.rows").value(),
              370u);
    EXPECT_GT(
        rig.store->obs().metrics.counter("append.delta_scans").value(),
        0u);
}

TEST(LifecycleAppendTest, GetReturnsMergedMaterialization)
{
    TestRig rig = makeRig(noCompactionOptions());
    auto base = workload::buildLineitemFile(kBaseRows, 7);
    ASSERT_TRUE(base.isOk());
    ASSERT_TRUE(rig.store->put("lineitem", base.value().bytes).isOk());
    format::Table batch = workload::makeLineitemTable(90, 33);
    ASSERT_TRUE(rig.store->append("lineitem", batch).isOk());

    format::Table merged =
        concatTables(workload::makeLineitemTable(kBaseRows, 7), batch);
    format::WriterOptions writer_options;
    writer_options.rowGroupRows = kBaseGroupRows;
    auto want = format::writeTable(merged, writer_options);
    ASSERT_TRUE(want.isOk());

    auto got = rig.store->get("lineitem");
    ASSERT_TRUE(got.isOk());
    EXPECT_TRUE(got.value() == want.value().bytes);

    // Range reads slice the same merged image.
    auto slice = rig.store->get("lineitem", 100, 4096);
    ASSERT_TRUE(slice.isOk());
    EXPECT_TRUE(slice.value() ==
                Bytes(want.value().bytes.begin() + 100,
                      want.value().bytes.begin() + 100 + 4096));
    EXPECT_FALSE(
        rig.store->get("lineitem", want.value().bytes.size(), 1).isOk());
}

TEST(LifecycleCompactionTest, SizeTriggerFoldsLogAndBumpsGeneration)
{
    StoreOptions options;
    options.compaction.maxDeltaSegments = 2;
    TestRig rig = makeRig(options);
    auto base = workload::buildLineitemFile(kBaseRows, 7);
    ASSERT_TRUE(base.isOk());
    ASSERT_TRUE(rig.store->put("lineitem", base.value().bytes).isOk());

    ASSERT_TRUE(
        rig.store->append("lineitem", workload::makeLineitemTable(80, 41))
            .isOk());
    ASSERT_TRUE(
        rig.store->append("lineitem", workload::makeLineitemTable(60, 42))
            .isOk());

    // The merged read before the fold is the compactor's target image.
    auto before = rig.store->get("lineitem");
    ASSERT_TRUE(before.isOk());
    auto count_before =
        rig.store->querySql("SELECT COUNT(*) FROM lineitem");
    ASSERT_TRUE(count_before.isOk());

    // The second append crossed maxDeltaSegments, so a fold is already
    // scheduled; querySql above ran the engine to completion and the
    // fold landed with it.
    auto m = rig.store->manifest("lineitem");
    ASSERT_TRUE(m.isOk());
    EXPECT_EQ(m.value()->generation, 1u);
    ASSERT_NE(rig.store->deltaLog("lineitem"), nullptr);
    EXPECT_TRUE(rig.store->deltaLog("lineitem")->empty());
    EXPECT_EQ(rig.store->compactor().runs(), 1u);
    EXPECT_EQ(rig.store->compactor().aborts(), 0u);

    auto &metrics = rig.store->obs().metrics;
    EXPECT_EQ(metrics.counter("compaction.runs").value(), 1u);
    EXPECT_EQ(metrics.counter("compaction.folded_segments").value(), 2u);
    EXPECT_GT(metrics.counter("compaction.bytes_in").value(), 0u);
    EXPECT_GT(metrics.counter("compaction.bytes_out").value(), 0u);

    // Compaction must be unobservable through reads: the new base is
    // byte-identical to the pre-fold merged materialization, and the
    // delta sequence counter never rewinds.
    auto after = rig.store->get("lineitem");
    ASSERT_TRUE(after.isOk());
    EXPECT_TRUE(after.value() == before.value());
    auto count_after =
        rig.store->querySql("SELECT COUNT(*) FROM lineitem");
    ASSERT_TRUE(count_after.isOk());
    EXPECT_EQ(count_after.value().result.rowsMatched,
              count_before.value().result.rowsMatched);
    EXPECT_EQ(count_after.value().deltaSegmentsScanned, 0u);
    EXPECT_EQ(rig.store->deltaLog("lineitem")->nextSeq(), 2u);

    // A post-fold append lands in the new generation's log with the
    // next monotone sequence number.
    auto again =
        rig.store->append("lineitem", workload::makeLineitemTable(10, 43));
    ASSERT_TRUE(again.isOk());
    EXPECT_EQ(again.value().seq, 2u);
}

TEST(LifecycleCompactionTest, AgeTriggerFoldsWithoutSizePressure)
{
    StoreOptions options;
    options.compaction.maxAgeSeconds = 0.05;
    TestRig rig = makeRig(options);
    auto base = workload::buildLineitemFile(kBaseRows, 7);
    ASSERT_TRUE(base.isOk());
    ASSERT_TRUE(rig.store->put("lineitem", base.value().bytes).isOk());
    ASSERT_TRUE(
        rig.store->append("lineitem", workload::makeLineitemTable(30, 51))
            .isOk());

    // One small segment: far below both size thresholds, so only the
    // age deadline can seal it. engine.run() must still return (the
    // event chain is finite) with the fold done.
    rig.cluster->engine().run();
    auto m = rig.store->manifest("lineitem");
    ASSERT_TRUE(m.isOk());
    EXPECT_EQ(m.value()->generation, 1u);
    EXPECT_TRUE(rig.store->deltaLog("lineitem")->empty());
    EXPECT_EQ(rig.store->compactor().runs(), 1u);
    EXPECT_GE(rig.cluster->engine().now(), 0.05);
}

TEST(LifecycleCompactionTest, AbortLeavesOldGenerationAndLogIntact)
{
    StoreOptions options;
    options.compaction.maxDeltaSegments = 2;
    TestRig rig = makeRig(options);
    auto base = workload::buildLineitemFile(kBaseRows, 7);
    ASSERT_TRUE(base.isOk());
    ASSERT_TRUE(rig.store->put("lineitem", base.value().bytes).isOk());
    ASSERT_TRUE(
        rig.store->append("lineitem", workload::makeLineitemTable(40, 61))
            .isOk());

    // Kill n-k+1 nodes: the base can no longer be read even with
    // parity, so the scheduled fold must abort — and must NOT re-arm
    // itself (engine.run() returns instead of looping forever).
    for (size_t node = 0; node < 4; ++node)
        rig.cluster->killNode(node);
    ASSERT_TRUE(
        rig.store->append("lineitem", workload::makeLineitemTable(40, 62))
            .isOk());
    rig.cluster->engine().run();

    EXPECT_GE(rig.store->compactor().aborts(), 1u);
    EXPECT_EQ(rig.store->compactor().runs(), 0u);
    EXPECT_GE(
        rig.store->obs().metrics.counter("compaction.aborts").value(), 1u);
    auto m = rig.store->manifest("lineitem");
    ASSERT_TRUE(m.isOk());
    EXPECT_EQ(m.value()->generation, 0u);
    EXPECT_EQ(rig.store->deltaLog("lineitem")->size(), 2u);

    // Recovery: revive the nodes; the next append re-triggers the fold
    // and it now succeeds over the full three-segment log.
    for (size_t node = 0; node < 4; ++node)
        rig.cluster->reviveNode(node);
    ASSERT_TRUE(
        rig.store->append("lineitem", workload::makeLineitemTable(40, 63))
            .isOk());
    rig.cluster->engine().run();
    m = rig.store->manifest("lineitem");
    ASSERT_TRUE(m.isOk());
    EXPECT_EQ(m.value()->generation, 1u);
    EXPECT_TRUE(rig.store->deltaLog("lineitem")->empty());
    EXPECT_EQ(rig.store->compactor().runs(), 1u);

    format::Table merged = concatTables(
        concatTables(
            concatTables(workload::makeLineitemTable(kBaseRows, 7),
                         workload::makeLineitemTable(40, 61)),
            workload::makeLineitemTable(40, 62)),
        workload::makeLineitemTable(40, 63));
    format::WriterOptions writer_options;
    writer_options.rowGroupRows = kBaseGroupRows;
    auto want = format::writeTable(merged, writer_options);
    ASSERT_TRUE(want.isOk());
    auto got = rig.store->get("lineitem");
    ASSERT_TRUE(got.isOk());
    EXPECT_TRUE(got.value() == want.value().bytes);
}

TEST(LifecycleRestripeTest, HotColumnsColocateAndSurfaceInExplain)
{
    TestRig rig = makeRig(noCompactionOptions());
    rig.store->obs().explainEnabled = true;
    auto base = workload::buildLineitemFile(kBaseRows, 7);
    ASSERT_TRUE(base.isOk());
    ASSERT_TRUE(rig.store->put("lineitem", base.value().bytes).isOk());

    // A skewed workload: every query touches the quantity filter column
    // and the extendedprice projection column, concentrating decayed
    // heat on columns 4 and 5.
    for (int i = 0; i < 12; ++i) {
        auto outcome = rig.store->querySql(
            "SELECT l_extendedprice FROM lineitem WHERE l_quantity > 30");
        ASSERT_TRUE(outcome.isOk());
    }

    ASSERT_TRUE(
        rig.store->append("lineitem", workload::makeLineitemTable(50, 71))
            .isOk());
    ASSERT_TRUE(rig.store->compactObject("lineitem").isOk());

    auto m = rig.store->manifest("lineitem");
    ASSERT_TRUE(m.isOk());
    EXPECT_EQ(m.value()->generation, 1u);
    ASSERT_FALSE(m.value()->hotChunkIds.empty());
    const size_t num_columns = workload::lineitemSchema().numColumns();
    for (uint32_t chunk : m.value()->hotChunkIds) {
        size_t column = chunk % num_columns;
        EXPECT_TRUE(column == workload::kQuantity ||
                    column == workload::kExtendedPrice)
            << "unexpectedly hot column " << column;
    }
    EXPECT_GT(rig.store->obs()
                  .metrics.counter("compaction.hot_colocated_chunks")
                  .value(),
              0u);

    // The re-stripe is visible to the planner: projections on the hot
    // column carry the co-location marker in their EXPLAIN reason.
    auto outcome = rig.store->querySql(
        "SELECT l_extendedprice FROM lineitem WHERE l_quantity > 30");
    ASSERT_TRUE(outcome.isOk());
    ASSERT_NE(outcome.value().explain, nullptr);
    bool saw_marker = false;
    for (const auto &chunk : outcome.value().explain->projections)
        saw_marker = saw_marker ||
                     chunk.reason.find("hot-colocated") !=
                         std::string::npos;
    EXPECT_TRUE(saw_marker);

    // Results over the re-striped layout still match a fresh put.
    TestRig ref = makeRig(noCompactionOptions());
    format::Table merged =
        concatTables(workload::makeLineitemTable(kBaseRows, 7),
                     workload::makeLineitemTable(50, 71));
    format::WriterOptions writer_options;
    writer_options.rowGroupRows = kBaseGroupRows;
    auto merged_file = format::writeTable(merged, writer_options);
    ASSERT_TRUE(merged_file.isOk());
    ASSERT_TRUE(
        ref.store->put("lineitem", merged_file.value().bytes).isOk());
    for (const std::string &text : coverageQueries()) {
        auto got = rig.store->querySql(text);
        auto want = ref.store->querySql(text);
        ASSERT_TRUE(got.isOk()) << text;
        ASSERT_TRUE(want.isOk()) << text;
        expectSameResult(got.value().result, want.value().result);
    }
}

TEST(LifecycleRestripeTest, UniformHeatKeepsSizeOnlyLayout)
{
    TestRig rig = makeRig(noCompactionOptions());
    auto base = workload::buildLineitemFile(kBaseRows, 7);
    ASSERT_TRUE(base.isOk());
    ASSERT_TRUE(rig.store->put("lineitem", base.value().bytes).isOk());
    // No queries => no heat: the fold must fall back to the plain FAC
    // layout with an empty co-location hint.
    ASSERT_TRUE(
        rig.store->append("lineitem", workload::makeLineitemTable(50, 72))
            .isOk());
    ASSERT_TRUE(rig.store->compactObject("lineitem").isOk());
    auto m = rig.store->manifest("lineitem");
    ASSERT_TRUE(m.isOk());
    EXPECT_EQ(m.value()->generation, 1u);
    EXPECT_TRUE(m.value()->hotChunkIds.empty());
    EXPECT_EQ(rig.store->obs()
                  .metrics.counter("compaction.hot_colocated_chunks")
                  .value(),
              0u);
}

TEST(LifecycleDeleteTest, DeleteEvictsDeltaReplicasHeatAndCache)
{
    StoreOptions options = noCompactionOptions();
    options.cacheBytes = 8ULL << 20;
    TestRig rig = makeRig(options);
    auto base = workload::buildLineitemFile(kBaseRows, 7);
    ASSERT_TRUE(base.isOk());
    ASSERT_TRUE(rig.store->put("lineitem", base.value().bytes).isOk());
    ASSERT_TRUE(
        rig.store->append("lineitem", workload::makeLineitemTable(40, 81))
            .isOk());
    // Warm heat (base chunks + the delta alias) and cache residency.
    ASSERT_TRUE(rig.store
                    ->querySql("SELECT l_extendedprice FROM lineitem "
                               "WHERE l_quantity > 30")
                    .isOk());
    double now = rig.cluster->engine().now();
    EXPECT_GT(rig.store->obs().telemetry.heat().size(), 0u);
    EXPECT_FALSE(
        rig.store->obs().telemetry.heat().hottest(now, 4).empty());

    ASSERT_TRUE(rig.store->deleteObject("lineitem").isOk());
    EXPECT_FALSE(rig.store->contains("lineitem"));
    EXPECT_EQ(rig.store->deltaLog("lineitem"), nullptr);
    // No stale chunks anywhere the re-stripe policy or fusion_top
    // consult, and no bytes left on any node (base stripes AND the
    // replicated delta segments are gone).
    EXPECT_EQ(rig.store->obs().telemetry.heat().size(), 0u);
    EXPECT_EQ(rig.store->chunkCache().sizeBytes(), 0u);
    uint64_t remaining = 0;
    for (size_t node = 0; node < rig.cluster->numNodes(); ++node)
        remaining += rig.cluster->node(node).storedBytes();
    EXPECT_EQ(remaining, 0u);
}

TEST(LifecycleAppendTest, ValidationRejectsBadBatches)
{
    TestRig rig = makeRig(noCompactionOptions());
    format::Table batch = workload::makeLineitemTable(10, 91);

    // Unknown object.
    EXPECT_FALSE(rig.store->append("missing", batch).isOk());

    // Non-fpax object.
    Bytes blob;
    for (int i = 0; i < 1024; ++i)
        blob.push_back(static_cast<uint8_t>(i & 0xff));
    ASSERT_TRUE(rig.store->put("blob", blob).isOk());
    EXPECT_EQ(rig.store->append("blob", batch).status().code(),
              StatusCode::kFailedPrecondition);

    auto base = workload::buildLineitemFile(kBaseRows, 7);
    ASSERT_TRUE(base.isOk());
    ASSERT_TRUE(rig.store->put("lineitem", base.value().bytes).isOk());

    // Empty batch.
    format::Table empty(workload::lineitemSchema());
    EXPECT_EQ(rig.store->append("lineitem", empty).status().code(),
              StatusCode::kInvalidArgument);

    // Schema mismatch.
    format::Schema narrow;
    narrow.addColumn({"only", format::PhysicalType::kInt64,
                      format::LogicalType::kNone});
    format::Table mismatched(narrow);
    mismatched.column(0).append(static_cast<int64_t>(1));
    EXPECT_EQ(rig.store->append("lineitem", mismatched).status().code(),
              StatusCode::kInvalidArgument);

    // Nothing slipped into the log or the counters.
    const lifecycle::DeltaLog *log = rig.store->deltaLog("lineitem");
    EXPECT_TRUE(log == nullptr || log->empty());
    EXPECT_EQ(rig.store->obs().metrics.counter("append.appends").value(),
              0u);
}

} // namespace
} // namespace fusion::store
