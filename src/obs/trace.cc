#include "trace.h"

#include <cstdio>

namespace fusion::obs {

namespace {

/** Microsecond timestamp with fixed sub-microsecond precision. */
std::string
formatMicros(double seconds)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
    return buf;
}

std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
chromeTraceJson(const std::vector<TraceProcess> &processes)
{
    std::string out = "{\"traceEvents\":[\n";
    bool first = true;
    auto emit = [&](const std::string &event) {
        if (!first)
            out += ",\n";
        first = false;
        out += event;
    };

    int pid = 0;
    for (const auto &proc : processes) {
        ++pid;
        emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
             std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
             escapeJson(proc.name) + "\"}}");

        // Deterministic greedy lane assignment: each span takes the
        // lowest tid whose previous span has already ended, so every
        // per-tid track contains non-overlapping, orderly X events.
        std::vector<double> laneEnd;
        for (const auto &span : proc.spans) {
            double begin = span.beginSeconds;
            double end = span.endSeconds < begin ? begin : span.endSeconds;
            size_t lane = laneEnd.size();
            for (size_t i = 0; i < laneEnd.size(); ++i) {
                if (laneEnd[i] <= begin) {
                    lane = i;
                    break;
                }
            }
            if (lane == laneEnd.size())
                laneEnd.push_back(end);
            else
                laneEnd[lane] = end;

            std::string event = "{\"name\":\"";
            event += escapeJson(span.name);
            event += "\",\"cat\":\"fusion\",\"ph\":\"X\",\"ts\":";
            event += formatMicros(begin);
            event += ",\"dur\":";
            event += formatMicros(end - begin);
            event += ",\"pid\":" + std::to_string(pid);
            event += ",\"tid\":" + std::to_string(lane + 1);
            if (!span.args.empty())
                event += ",\"args\":{" + span.args + "}";
            event += "}";
            emit(event);
        }
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
        return false;
    }
    bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    return ok;
}

std::vector<TraceSpan>
Tracer::takeSpans()
{
    std::vector<TraceSpan> out = std::move(spans_);
    spans_.clear();
    return out;
}

std::string
Tracer::toChromeJson(const std::string &process_name) const
{
    return chromeTraceJson({TraceProcess{process_name, spans_}});
}

} // namespace fusion::obs
