# Empty dependencies file for bench_fig06_compression.
# This may be replaced when dependencies are built.
