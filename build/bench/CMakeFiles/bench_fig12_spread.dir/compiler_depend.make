# Empty compiler generated dependencies file for bench_fig12_spread.
# This may be replaced when dependencies are built.
