/**
 * @file
 * Queued rate-limited resources: the building block for disks, NIC
 * directions and CPU pools. A resource has `slots` parallel servers,
 * each serving work at `rate` units/second; requests are dispatched to
 * the earliest-free server (G/G/c queueing). Busy time and served
 * volume are tracked for the utilization and traffic figures.
 */
#ifndef FUSION_SIM_RESOURCE_H
#define FUSION_SIM_RESOURCE_H

#include <algorithm>
#include <string>
#include <vector>

#include "engine.h"

namespace fusion::sim {

/** A c-server FIFO queueing resource with a fixed service rate. */
class SimResource
{
  public:
    /**
     * @param engine owning simulation engine
     * @param name   diagnostic label, e.g. "node3.nicOut"
     * @param rate   service rate in work units (bytes) per second
     * @param slots  number of parallel servers (>= 1)
     */
    SimResource(SimEngine &engine, std::string name, double rate,
                size_t slots = 1);

    /**
     * Enqueues `work` units plus a fixed `extra_latency`, then invokes
     * `done` when service completes. Zero-work requests still pay the
     * extra latency.
     */
    void acquire(double work, double extra_latency,
                 std::function<void()> done);

    /** acquire() with no extra latency. */
    void
    acquire(double work, std::function<void()> done)
    {
        acquire(work, 0.0, std::move(done));
    }

    const std::string &name() const { return name_; }
    double rate() const { return rate_; }

    /**
     * Scales the effective service rate of future requests (fault
     * injection: a "slow" node serves at rate * scale, scale < 1).
     * In-flight requests keep the rate they were admitted with.
     */
    void
    setRateScale(double scale)
    {
        FUSION_CHECK_MSG(scale > 0.0, "rate scale must be positive");
        rateScale_ = scale;
    }
    double rateScale() const { return rateScale_; }

    uint64_t requestCount() const { return requests_; }
    double workServed() const { return workServed_; }
    double busySeconds() const { return busySeconds_; }

    /** Mean fraction of server capacity in use over [0, elapsed]. */
    double
    utilization(SimTime elapsed) const
    {
        if (elapsed <= 0.0)
            return 0.0;
        return busySeconds_ / (elapsed * static_cast<double>(slotFree_.size()));
    }

    void
    resetStats()
    {
        requests_ = 0;
        workServed_ = 0.0;
        busySeconds_ = 0.0;
    }

  private:
    SimEngine &engine_;
    std::string name_;
    double rate_;
    double rateScale_ = 1.0;
    std::vector<SimTime> slotFree_; // next-free time per server
    uint64_t requests_ = 0;
    double workServed_ = 0.0;
    double busySeconds_ = 0.0;
};

/**
 * Completion barrier: runs a callback after `expected` signals. Create
 * via std::make_shared and capture in each branch's completion.
 */
class Join
{
  public:
    Join(size_t expected, std::function<void()> done)
        : remaining_(expected), done_(std::move(done))
    {
        if (remaining_ == 0) {
            auto fn = std::move(done_);
            fn();
        }
    }

    void
    signal()
    {
        FUSION_CHECK(remaining_ > 0);
        if (--remaining_ == 0) {
            auto fn = std::move(done_);
            fn();
        }
    }

  private:
    size_t remaining_;
    std::function<void()> done_;
};

} // namespace fusion::sim

#endif // FUSION_SIM_RESOURCE_H
