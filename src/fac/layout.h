/**
 * @file
 * Stripe-layout model shared by all stripe-construction strategies.
 *
 * A layout maps an object's column chunks onto erasure-code data blocks
 * grouped into stripes. The paper's terminology (Table 2): a *bin* is a
 * data block, a *bin set* is the k data blocks of one stripe. Parity is
 * implied: each stripe carries (n - k) parity blocks whose size equals
 * the stripe's largest data block.
 *
 * The layout records, per data block, the ordered pieces of chunks (or
 * physical padding) it contains — enough to account storage overhead,
 * chunk splitting, and to drive actual block materialization in the
 * stores.
 */
#ifndef FUSION_FAC_LAYOUT_H
#define FUSION_FAC_LAYOUT_H

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace fusion::fac {

/** Byte extent of one column chunk within the original object. */
struct ChunkExtent {
    uint32_t id = 0;
    uint64_t offset = 0;
    uint64_t size = 0;
};

/** Sentinel chunk id marking physically stored padding bytes. */
inline constexpr uint32_t kPaddingChunkId = UINT32_MAX;

/** A contiguous piece of one chunk (or padding) inside a data block. */
struct BlockPiece {
    uint32_t chunkId = 0;
    uint64_t chunkOffset = 0; // offset within the chunk
    uint64_t size = 0;

    bool isPadding() const { return chunkId == kPaddingChunkId; }
};

/** One erasure-code data block: ordered pieces; size is their sum. */
struct DataBlockLayout {
    std::vector<BlockPiece> pieces;

    uint64_t
    size() const
    {
        uint64_t total = 0;
        for (const auto &piece : pieces)
            total += piece.size;
        return total;
    }
};

/** One stripe: k data blocks (parity implied by the code parameters). */
struct StripeLayout {
    std::vector<DataBlockLayout> dataBlocks;

    /** Stripe block size = size of the largest data block. */
    uint64_t
    blockSize() const
    {
        uint64_t max_size = 0;
        for (const auto &block : dataBlocks)
            max_size = std::max(max_size, block.size());
        return max_size;
    }
};

/** Strategy that produced a layout (for reporting). */
enum class LayoutKind : uint8_t {
    kFixed = 0,
    kPadding = 1,
    kFac = 2,
    kOracle = 3,
};

const char *layoutKindName(LayoutKind kind);

/** Complete stripe layout of one object under an (n, k) code. */
struct ObjectLayout {
    LayoutKind kind = LayoutKind::kFixed;
    size_t n = 9;
    size_t k = 6;
    std::vector<StripeLayout> stripes;
    uint64_t dataBytes = 0;    // sum of real chunk bytes
    uint64_t paddingBytes = 0; // physically stored padding (padding layout)

    /** Total parity bytes across stripes. */
    uint64_t parityBytes() const;

    /** All bytes the layout stores: data + padding + parity. */
    uint64_t
    storedBytes() const
    {
        return dataBytes + paddingBytes + parityBytes();
    }

    /**
     * Extra stored bytes (padding + parity) relative to the optimal
     * overhead dataBytes * (n-k)/k, as a fraction of the optimal.
     * 0.0 means exactly optimal; 1.0 means double the optimal overhead.
     * This is the paper's "storage overhead w.r.t. optimal" metric.
     */
    double overheadVsOptimal() const;

    /** Number of data blocks each chunk id touches (index = chunk id). */
    std::vector<uint32_t> chunkSpans(size_t num_chunks) const;

    /** Fraction of chunks split across more than one data block. */
    double splitFraction(size_t num_chunks) const;

    /**
     * Checks that every byte of every chunk is covered exactly once, in
     * order, and per-stripe invariants hold (<= k data blocks each).
     */
    Status validate(const std::vector<ChunkExtent> &chunks) const;
};

} // namespace fusion::fac

#endif // FUSION_FAC_LAYOUT_H
