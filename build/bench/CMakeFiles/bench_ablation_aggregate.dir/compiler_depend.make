# Empty compiler generated dependencies file for bench_ablation_aggregate.
# This may be replaced when dependencies are built.
