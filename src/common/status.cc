#include "status.h"

namespace fusion {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kCorruption: return "Corruption";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kUnavailable: return "Unavailable";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kUnimplemented: return "Unimplemented";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
}

std::string
Status::toString() const
{
    if (isOk())
        return "OK";
    std::string out = statusCodeName(code_);
    if (!message_.empty()) {
        out += ": ";
        out += message_;
    }
    return out;
}

namespace detail {

void
checkFailed(const char *file, int line, const char *expr,
            const std::string &extra)
{
    std::fprintf(stderr, "FUSION_CHECK failed at %s:%d: %s%s%s\n", file, line,
                 expr, extra.empty() ? "" : " -- ", extra.c_str());
    std::abort();
}

} // namespace detail
} // namespace fusion
