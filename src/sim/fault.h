/**
 * @file
 * Deterministic fault injection for the simulated cluster. A
 * FaultSchedule is a time-ordered script of node faults — crashes,
 * revivals, slowdowns and restorations, including flapping (repeated
 * crash/revive cycles) — built either explicitly or from a seeded
 * random generator. A FaultInjector arms a schedule on a Cluster's
 * event engine, records the trace of applied events (so determinism
 * can be asserted: same seed, same trace) and lets the stores predict
 * node health at future simulated times for retry/backoff decisions.
 */
#ifndef FUSION_SIM_FAULT_H
#define FUSION_SIM_FAULT_H

#include <string>
#include <vector>

#include "cluster.h"
#include "common/random.h"

namespace fusion::sim {

/** What a fault event does to its target node. */
enum class FaultKind : uint8_t {
    kCrash,   // node stops serving (blocks stay on media)
    kRevive,  // crashed node comes back
    kSlow,    // node serves at rate / slowFactor (gray failure)
    kRestore, // slowed node returns to full speed
};

const char *faultKindName(FaultKind kind);

/** One scripted fault. */
struct FaultEvent {
    double time = 0.0; // simulated seconds
    FaultKind kind = FaultKind::kCrash;
    size_t nodeId = 0;
    double slowFactor = 1.0; // used by kSlow only

    std::string toString() const;
};

/** Parameters of FaultSchedule::random(). */
struct RandomFaultOptions {
    uint64_t seed = 1;
    size_t numNodes = 9;
    /** Events are drawn in [0, horizonSeconds). */
    double horizonSeconds = 1.0;
    /** Crash/revive pairs to generate. */
    size_t crashCount = 2;
    /** Slow/restore pairs to generate. */
    size_t slowCount = 1;
    /** Mean crash downtime (uniform in (0, 2 * mean]). */
    double meanDowntimeSeconds = 0.05;
    /** Slowdowns draw a factor uniformly in [2, maxSlowFactor]. */
    double maxSlowFactor = 8.0;
    /**
     * Cap on simultaneously-crashed nodes. Keep <= n - k so the
     * erasure code can always reconstruct ("within tolerance").
     */
    size_t maxConcurrentDown = 1;
};

/** A time-ordered script of fault events. */
class FaultSchedule
{
  public:
    FaultSchedule &crashAt(double time, size_t node);
    FaultSchedule &reviveAt(double time, size_t node);
    FaultSchedule &slowAt(double time, size_t node, double factor);
    FaultSchedule &restoreAt(double time, size_t node);

    /** `cycles` crash/revive pairs: down for `downtime` every `period`
     *  starting at `start` (a flapping node). */
    FaultSchedule &flap(size_t node, double start, double period,
                        double downtime, size_t cycles);

    /**
     * Seeded-random schedule: crash/revive and slow/restore pairs at
     * uniform times over the horizon, respecting maxConcurrentDown.
     * Identical options (notably the seed) yield the identical
     * schedule on every platform.
     */
    static FaultSchedule random(const RandomFaultOptions &options);

    const std::vector<FaultEvent> &events() const { return events_; }
    bool empty() const { return events_.empty(); }

    /** Stable-sorts events by time (ties keep insertion order). */
    void sortByTime();

    std::string toString() const;

  private:
    std::vector<FaultEvent> events_;
};

/**
 * Applies a FaultSchedule to a Cluster. arm() registers every event on
 * the cluster's engine and attaches the injector to the cluster so
 * stores can consult it; events then fire as the engine runs. The
 * applied-event trace and counters make determinism checkable.
 */
class FaultInjector
{
  public:
    FaultInjector(Cluster &cluster, FaultSchedule schedule);
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Schedules all events; call once, before running the engine. */
    void arm();

    const FaultSchedule &schedule() const { return schedule_; }

    /** Events applied so far, stamped with their firing times. */
    const std::vector<FaultEvent> &applied() const { return applied_; }

    /** One line per applied event — compare across runs to assert
     *  deterministic injection. */
    std::string traceString() const;

    /** Node liveness at `time` according to the schedule (events with
     *  time <= `time` are considered applied). */
    bool aliveAt(size_t node, double time) const;

    /** Node slow factor at `time` according to the schedule. */
    double slowFactorAt(size_t node, double time) const;

    struct Counters {
        uint64_t crashes = 0;
        uint64_t revives = 0;
        uint64_t slowdowns = 0;
        uint64_t restores = 0;
    };
    const Counters &counters() const { return counters_; }

  private:
    void apply(const FaultEvent &event);

    Cluster &cluster_;
    FaultSchedule schedule_;
    std::vector<FaultEvent> applied_;
    Counters counters_;
    bool armed_ = false;
};

} // namespace fusion::sim

#endif // FUSION_SIM_FAULT_H
