/**
 * @file
 * Unit tests for src/sim: event ordering, queued resources (single and
 * multi-server), joins, cluster transfers and utilization accounting.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "sim/cluster.h"
#include "sim/engine.h"
#include "sim/node.h"
#include "sim/resource.h"

namespace fusion::sim {
namespace {

TEST(SimEngineTest, EventsFireInTimeOrder)
{
    SimEngine engine;
    std::vector<int> order;
    engine.schedule(3.0, [&] { order.push_back(3); });
    engine.schedule(1.0, [&] { order.push_back(1); });
    engine.schedule(2.0, [&] { order.push_back(2); });
    engine.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(engine.now(), 3.0);
    EXPECT_EQ(engine.eventsProcessed(), 3u);
}

TEST(SimEngineTest, EqualTimesFireInScheduleOrder)
{
    SimEngine engine;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        engine.schedule(1.0, [&order, i] { order.push_back(i); });
    engine.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(SimEngineTest, EventsCanScheduleMoreEvents)
{
    SimEngine engine;
    int fired = 0;
    std::function<void()> chain = [&]() {
        ++fired;
        if (fired < 5)
            engine.schedule(1.0, chain);
    };
    engine.schedule(0.0, chain);
    engine.run();
    EXPECT_EQ(fired, 5);
    EXPECT_DOUBLE_EQ(engine.now(), 4.0);
}

TEST(SimEngineTest, RunUntilStopsAtDeadline)
{
    SimEngine engine;
    int fired = 0;
    engine.schedule(1.0, [&] { ++fired; });
    engine.schedule(5.0, [&] { ++fired; });
    engine.runUntil(2.0);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(engine.now(), 2.0);
    engine.run();
    EXPECT_EQ(fired, 2);
}

TEST(SimResourceTest, SingleServerSerializesRequests)
{
    SimEngine engine;
    SimResource resource(engine, "disk", 100.0); // 100 units/s
    std::vector<double> completions;
    // Three 100-unit requests issued together take 1, 2, 3 seconds.
    for (int i = 0; i < 3; ++i)
        resource.acquire(100.0,
                         [&] { completions.push_back(engine.now()); });
    engine.run();
    ASSERT_EQ(completions.size(), 3u);
    EXPECT_DOUBLE_EQ(completions[0], 1.0);
    EXPECT_DOUBLE_EQ(completions[1], 2.0);
    EXPECT_DOUBLE_EQ(completions[2], 3.0);
    EXPECT_DOUBLE_EQ(resource.workServed(), 300.0);
    EXPECT_DOUBLE_EQ(resource.busySeconds(), 3.0);
}

TEST(SimResourceTest, MultiServerRunsInParallel)
{
    SimEngine engine;
    SimResource resource(engine, "cpu", 100.0, 3);
    std::vector<double> completions;
    for (int i = 0; i < 3; ++i)
        resource.acquire(100.0,
                         [&] { completions.push_back(engine.now()); });
    engine.run();
    for (double t : completions)
        EXPECT_DOUBLE_EQ(t, 1.0);
    // A fourth request queues behind the earliest-free server.
    resource.acquire(100.0, [&] { completions.push_back(engine.now()); });
    engine.run();
    EXPECT_DOUBLE_EQ(completions.back(), 2.0);
}

TEST(SimResourceTest, ExtraLatencyAdds)
{
    SimEngine engine;
    SimResource resource(engine, "nic", 1000.0);
    double done_at = -1;
    resource.acquire(500.0, 0.25, [&] { done_at = engine.now(); });
    engine.run();
    EXPECT_DOUBLE_EQ(done_at, 0.75);
}

TEST(SimResourceTest, ZeroWorkCompletesImmediately)
{
    SimEngine engine;
    SimResource resource(engine, "nic", 1000.0);
    bool done = false;
    resource.acquire(0.0, [&] { done = true; });
    engine.run();
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(engine.now(), 0.0);
}

TEST(SimResourceTest, UtilizationFraction)
{
    SimEngine engine;
    SimResource resource(engine, "disk", 100.0, 2);
    resource.acquire(100.0, [] {});
    engine.run();
    engine.schedule(1.0, [] {}); // idle second
    engine.run();
    // 1 busy server-second over 2 seconds x 2 servers = 0.25.
    EXPECT_DOUBLE_EQ(resource.utilization(engine.now()), 0.25);
}

TEST(JoinTest, FiresAfterAllSignals)
{
    bool fired = false;
    auto join = std::make_shared<Join>(3, [&] { fired = true; });
    join->signal();
    join->signal();
    EXPECT_FALSE(fired);
    join->signal();
    EXPECT_TRUE(fired);
}

TEST(JoinTest, ZeroExpectedFiresImmediately)
{
    bool fired = false;
    Join join(0, [&] { fired = true; });
    EXPECT_TRUE(fired);
}

TEST(ClusterTest, TransferTimingAndTraffic)
{
    ClusterConfig config;
    config.numNodes = 3;
    config.node.nicBandwidth = 1000.0; // bytes/s
    config.node.rpcLatency = 0.1;
    Cluster cluster(config);

    double done_at = -1;
    cluster.transfer(cluster.node(0), cluster.node(1), 500,
                     [&] { done_at = cluster.engine().now(); });
    cluster.engine().run();
    // Egress 0.5 s + wire 0.1 s + ingress 0.5 s.
    EXPECT_NEAR(done_at, 1.1, 1e-9);
    EXPECT_EQ(cluster.totalNetworkBytes(), 500u);
}

TEST(ClusterTest, ConcurrentTransfersShareNics)
{
    ClusterConfig config;
    config.numNodes = 3;
    config.node.nicBandwidth = 1000.0;
    config.node.rpcLatency = 0.0;
    Cluster cluster(config);

    std::vector<double> done;
    // Two transfers out of node 0 contend on its egress NIC.
    cluster.transfer(cluster.node(0), cluster.node(1), 1000,
                     [&] { done.push_back(cluster.engine().now()); });
    cluster.transfer(cluster.node(0), cluster.node(2), 1000,
                     [&] { done.push_back(cluster.engine().now()); });
    cluster.engine().run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_NEAR(done[0], 2.0, 1e-9); // 1s egress queue + 1s ingress
    EXPECT_NEAR(done[1], 3.0, 1e-9);
}

TEST(ClusterTest, ChooseNodesDistinct)
{
    ClusterConfig config;
    config.numNodes = 9;
    Cluster cluster(config);
    for (int trial = 0; trial < 20; ++trial) {
        auto nodes = cluster.chooseNodes(9);
        std::sort(nodes.begin(), nodes.end());
        for (size_t i = 0; i < nodes.size(); ++i)
            EXPECT_EQ(nodes[i], i);
    }
    auto some = cluster.chooseNodes(4);
    std::set<size_t> distinct(some.begin(), some.end());
    EXPECT_EQ(distinct.size(), 4u);
}

TEST(ClusterTest, CoordinatorHashStableAndSkipsDeadNodes)
{
    ClusterConfig config;
    config.numNodes = 5;
    Cluster cluster(config);
    size_t coord = cluster.coordinatorFor("my-object");
    EXPECT_EQ(cluster.coordinatorFor("my-object"), coord);
    cluster.killNode(coord);
    size_t moved = cluster.coordinatorFor("my-object");
    EXPECT_NE(moved, coord);
    EXPECT_TRUE(cluster.node(moved).alive());
    cluster.reviveNode(coord);
    EXPECT_EQ(cluster.coordinatorFor("my-object"), coord);
}

TEST(StorageNodeTest, BlockStorage)
{
    SimEngine engine;
    StorageNode node(engine, 0, NodeConfig{});
    EXPECT_EQ(node.findBlock("a"), nullptr);
    node.putBlock("a", Bytes{1, 2, 3});
    ASSERT_NE(node.findBlock("a"), nullptr);
    EXPECT_EQ(node.findBlock("a")->size(), 3u);
    EXPECT_EQ(node.storedBytes(), 3u);
    node.putBlock("a", Bytes{9}); // overwrite adjusts accounting
    EXPECT_EQ(node.storedBytes(), 1u);
    EXPECT_TRUE(node.dropBlock("a"));
    EXPECT_FALSE(node.dropBlock("a"));
    EXPECT_EQ(node.storedBytes(), 0u);
}


TEST(QueueingTest, StableOpenLoopHasNoQueueing)
{
    // D/D/1 with utilization 0.5: every request starts immediately.
    SimEngine engine;
    SimResource server(engine, "srv", 1.0);
    std::vector<double> latencies;
    for (int i = 0; i < 20; ++i) {
        engine.scheduleAt(static_cast<double>(i), [&, i] {
            double issued = engine.now();
            server.acquire(0.5, [&, issued] {
                latencies.push_back(engine.now() - issued);
            });
        });
    }
    engine.run();
    ASSERT_EQ(latencies.size(), 20u);
    for (double l : latencies)
        EXPECT_DOUBLE_EQ(l, 0.5);
}

TEST(QueueingTest, OverloadedServerQueueGrowsLinearly)
{
    // D/D/1 with utilization 2: the i-th request waits ~i * 0.5s.
    SimEngine engine;
    SimResource server(engine, "srv", 1.0);
    std::vector<double> latencies;
    for (int i = 0; i < 10; ++i) {
        engine.scheduleAt(static_cast<double>(i) * 0.5, [&, i] {
            double issued = engine.now();
            server.acquire(1.0, [&, issued] {
                latencies.push_back(engine.now() - issued);
            });
        });
    }
    engine.run();
    ASSERT_EQ(latencies.size(), 10u);
    for (size_t i = 1; i < latencies.size(); ++i)
        EXPECT_GT(latencies[i], latencies[i - 1]);
    EXPECT_NEAR(latencies.back(), 1.0 + 9 * 0.5, 1e-9);
}

TEST(QueueingTest, MultiServerAbsorbsBursts)
{
    SimEngine engine;
    SimResource pool(engine, "cpu", 1.0, 4);
    std::vector<double> done;
    for (int i = 0; i < 8; ++i)
        pool.acquire(1.0, [&] { done.push_back(engine.now()); });
    engine.run();
    // Two waves of four.
    EXPECT_DOUBLE_EQ(done[3], 1.0);
    EXPECT_DOUBLE_EQ(done[7], 2.0);
}

TEST(ClusterTest, AliveCountTracksFailures)
{
    ClusterConfig config;
    config.numNodes = 4;
    Cluster cluster(config);
    EXPECT_EQ(cluster.aliveNodeCount(), 4u);
    cluster.killNode(1);
    cluster.killNode(2);
    EXPECT_EQ(cluster.aliveNodeCount(), 2u);
    cluster.reviveNode(1);
    EXPECT_EQ(cluster.aliveNodeCount(), 3u);
}

} // namespace
} // namespace fusion::sim
