/**
 * @file
 * The Pushdown Cost Estimator (paper §4.3). After the filter stage the
 * coordinator knows the exact query selectivity; each candidate
 * projection chunk's compressibility comes from footer metadata. The
 * Cost Equation pushes a projection down only when
 *
 *     selectivity x compressibility < 1
 *
 * i.e. when the uncompressed projected values are smaller on the wire
 * than the compressed chunk would be.
 */
#ifndef FUSION_QUERY_COST_H
#define FUSION_QUERY_COST_H

#include <cstdint>
#include <map>
#include <string>

#include "format/metadata.h"

namespace fusion::query {

/** Outcome of the cost model for one chunk's projection. */
struct PushdownDecision {
    bool push = true;
    double selectivity = 0.0;
    double compressibility = 1.0;

    /** The Cost Equation's left-hand side. */
    double product() const { return selectivity * compressibility; }
};

/** Applies the Cost Equation to one chunk. */
inline PushdownDecision
decideProjectionPushdown(double selectivity, const format::ChunkMeta &chunk)
{
    PushdownDecision decision;
    decision.selectivity = selectivity;
    decision.compressibility = chunk.compressibility();
    decision.push = decision.product() < 1.0;
    return decision;
}

/**
 * Cache-aware Cost Equation (coordinator hot-chunk cache tier). A
 * chunk resident in the coordinator cache zeroes the fetch side of the
 * equation — the bytes are already local, so neither the pushdown
 * reply nor the chunk fetch crosses the wire. Local evaluation
 * dominates both alternatives regardless of the
 * selectivity x compressibility product (EXPLAIN verdict "local",
 * reason "cached-local"); the base decision is kept so reports can
 * show the terms the residency flipped.
 */
struct CachedPushdownDecision {
    /** True when cache residency overrides the wire-cost verdict. */
    bool local = false;
    /** What the Cost Equation alone would have decided. */
    PushdownDecision base;
};

/** Applies the cache-aware Cost Equation to one chunk. */
inline CachedPushdownDecision
decideProjectionPushdownCached(bool cache_resident, double selectivity,
                               const format::ChunkMeta &chunk)
{
    CachedPushdownDecision decision;
    decision.base = decideProjectionPushdown(selectivity, chunk);
    decision.local = cache_resident;
    return decision;
}

/** Estimated wire bytes of a pushed-down projection reply. */
inline uint64_t
estimateProjectionReplyBytes(double selectivity,
                             const format::ChunkMeta &chunk)
{
    return static_cast<uint64_t>(selectivity *
                                 static_cast<double>(chunk.plainSize));
}

/**
 * Shared-scan extension of the Cost Equation. When several concurrent
 * queries project the same chunk, the scheduler merges compatible
 * pushdown requests; the per-query equation no longer applies because
 * the alternative to N pushdown replies is ONE shared chunk fetch. The
 * merged consumer set pushes down only when
 *
 *     merged_selectivity x compressibility < 1
 *
 * where merged_selectivity is the union of the consumers' reply bytes
 * over the chunk's plain size — i.e. the summed replies must still be
 * smaller on the wire than the compressed chunk fetched once. A
 * per-node load term models storage-side CPU oversubscription (OASIS /
 * pushdown-contention literature): when the node already has more
 * outstanding pushdown work than `load_limit_seconds` of its CPU
 * capacity, the verdict flips to coordinator-side evaluation
 * regardless of the byte math (EXPLAIN reason "load-shed").
 */
struct SharedPushdownDecision {
    bool push = true;
    /** True when the byte math said push but the node load term
     *  overrode it. */
    bool loadShed = false;
    double mergedSelectivity = 0.0;
    double compressibility = 1.0;
    uint64_t mergedReplyBytes = 0;

    /** The shared Cost Equation's left-hand side. */
    double product() const { return mergedSelectivity * compressibility; }
};

/** Applies the shared Cost Equation to one chunk's merged consumers. */
inline SharedPushdownDecision
decideSharedProjectionPushdown(uint64_t merged_reply_bytes,
                               const format::ChunkMeta &chunk,
                               double node_outstanding_seconds,
                               double load_limit_seconds)
{
    SharedPushdownDecision decision;
    decision.mergedReplyBytes = merged_reply_bytes;
    decision.compressibility = chunk.compressibility();
    decision.mergedSelectivity =
        chunk.plainSize == 0
            ? 0.0
            : static_cast<double>(merged_reply_bytes) /
                  static_cast<double>(chunk.plainSize);
    // merged_sel x compressibility < 1  <=>  merged replies < stored
    decision.push = merged_reply_bytes < chunk.storedSize;
    if (decision.push && load_limit_seconds > 0.0 &&
        node_outstanding_seconds > load_limit_seconds) {
        decision.push = false;
        decision.loadShed = true;
    }
    return decision;
}

/**
 * Incremental form of the shared Cost Equation for the continuous
 * admission window. Consumers attach to a chunk's merge state one at a
 * time (in simulated arrival order, not batch order); each attach
 * folds the consumer's reply subgroup in and re-evaluates the merged
 * verdict against the live per-node load. Distinct subgroups are keyed
 * by the pushdown share key (the filter signature): duplicate
 * consumers share one reply and add no bytes, so the merged decision
 * after N attaches is identical to evaluating the final consumer set
 * at once — the verdict can only flip push -> fetch as consumers
 * accumulate (merged reply bytes grow monotonically).
 */
class SharedPushdownMerge
{
  public:
    SharedPushdownMerge() = default;
    explicit SharedPushdownMerge(const format::ChunkMeta &chunk)
        : storedSize_(chunk.storedSize), plainSize_(chunk.plainSize)
    {
    }

    /**
     * Folds one consumer's reply subgroup in (duplicates are free) and
     * returns the merged decision. `node_outstanding_seconds` is the
     * target node's live admitted-pushdown load INCLUDING this chunk's
     * already-charged subgroups plus what this attach would add.
     */
    SharedPushdownDecision
    attach(const std::string &subgroup_key, uint64_t reply_bytes,
           double node_outstanding_seconds, double load_limit_seconds)
    {
        if (subgroups_.emplace(subgroup_key, reply_bytes).second)
            mergedReplyBytes_ += reply_bytes;
        return decide(node_outstanding_seconds, load_limit_seconds);
    }

    /** Re-evaluates the merged verdict without adding a consumer. */
    SharedPushdownDecision
    decide(double node_outstanding_seconds,
           double load_limit_seconds) const
    {
        format::ChunkMeta chunk;
        chunk.storedSize = storedSize_;
        chunk.plainSize = plainSize_;
        return decideSharedProjectionPushdown(mergedReplyBytes_, chunk,
                                              node_outstanding_seconds,
                                              load_limit_seconds);
    }

    uint64_t mergedReplyBytes() const { return mergedReplyBytes_; }
    size_t subgroupCount() const { return subgroups_.size(); }
    /** Members of `subgroup_key` so far (0 when never attached). */
    size_t
    subgroupMembers(const std::string &subgroup_key) const
    {
        auto it = members_.find(subgroup_key);
        return it == members_.end() ? 0 : it->second;
    }

    /** Tallies one member into its subgroup (reply-sharing stats). */
    void addMember(const std::string &subgroup_key)
    {
        ++members_[subgroup_key];
    }

  private:
    uint64_t storedSize_ = 0;
    uint64_t plainSize_ = 0;
    uint64_t mergedReplyBytes_ = 0;
    /** Distinct filter signatures -> reply bytes (one reply each). */
    std::map<std::string, uint64_t> subgroups_;
    std::map<std::string, size_t> members_;
};

} // namespace fusion::query

#endif // FUSION_QUERY_COST_H
