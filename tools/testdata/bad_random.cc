// Fixture: each line tagged `BAD: <rule>` must produce exactly that
// finding; untagged lines must produce none.
#include <cstdlib>
#include <random>

int
roll()
{
    std::random_device rd; // BAD: unseeded-random
    std::mt19937 gen(rd());
    (void)gen;
    srand(42);     // BAD: unseeded-random
    return rand(); // BAD: unseeded-random
}

// Must NOT match:
int random_seed = 7;  // ok: distinct identifier
int strand_count = 0; // ok: 'rand' inside another identifier
