file(REMOVE_RECURSE
  "CMakeFiles/fusion_store.dir/baseline_store.cc.o"
  "CMakeFiles/fusion_store.dir/baseline_store.cc.o.d"
  "CMakeFiles/fusion_store.dir/fusion_store.cc.o"
  "CMakeFiles/fusion_store.dir/fusion_store.cc.o.d"
  "CMakeFiles/fusion_store.dir/manifest.cc.o"
  "CMakeFiles/fusion_store.dir/manifest.cc.o.d"
  "CMakeFiles/fusion_store.dir/object_store.cc.o"
  "CMakeFiles/fusion_store.dir/object_store.cc.o.d"
  "libfusion_store.a"
  "libfusion_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
