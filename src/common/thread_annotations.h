/**
 * @file
 * Clang thread-safety-analysis attribute macros (no-ops on other
 * compilers). Annotate every lock-protected member with
 * FUSION_GUARDED_BY so `clang++ -Wthread-safety -Werror` (the
 * clang-thread-safety CI job) statically proves the locking discipline
 * instead of relying on runtime tests to catch races. Use through
 * common/mutex.h — fusion::Mutex is the annotated capability type;
 * raw std::mutex members are rejected by fusion-lint (rule raw-mutex).
 *
 * Macro names and semantics follow the Clang documentation
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); the FUSION_
 * prefix keeps them out of the global macro namespace.
 */
#ifndef FUSION_COMMON_THREAD_ANNOTATIONS_H
#define FUSION_COMMON_THREAD_ANNOTATIONS_H

#if defined(__clang__) && defined(__has_attribute)
#define FUSION_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define FUSION_THREAD_ANNOTATION__(x)
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define FUSION_CAPABILITY(x) FUSION_THREAD_ANNOTATION__(capability(x))

/** Marks an RAII type that acquires a capability in its constructor
 *  and releases it in its destructor. */
#define FUSION_SCOPED_CAPABILITY FUSION_THREAD_ANNOTATION__(scoped_lockable)

/** Data member readable/writable only while holding `x`. */
#define FUSION_GUARDED_BY(x) FUSION_THREAD_ANNOTATION__(guarded_by(x))

/** Pointer member whose pointee is protected by `x`. */
#define FUSION_PT_GUARDED_BY(x) FUSION_THREAD_ANNOTATION__(pt_guarded_by(x))

/** Function requires the listed capabilities to be held on entry. */
#define FUSION_REQUIRES(...) \
    FUSION_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/** Function acquires the listed capabilities (held on return). */
#define FUSION_ACQUIRE(...) \
    FUSION_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities. */
#define FUSION_RELEASE(...) \
    FUSION_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns `result`. */
#define FUSION_TRY_ACQUIRE(result, ...) \
    FUSION_THREAD_ANNOTATION__(try_acquire_capability(result, __VA_ARGS__))

/** Function must be called with the listed capabilities NOT held. */
#define FUSION_EXCLUDES(...) \
    FUSION_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/** Asserts (without acquiring) that the capability is held. */
#define FUSION_ASSERT_CAPABILITY(x) \
    FUSION_THREAD_ANNOTATION__(assert_capability(x))

/** Function returns a reference to the given capability. */
#define FUSION_RETURN_CAPABILITY(x) \
    FUSION_THREAD_ANNOTATION__(lock_returned(x))

/** Opts a function out of the analysis (use sparingly, with a comment
 *  explaining why the locking is correct but inexpressible). */
#define FUSION_NO_THREAD_SAFETY_ANALYSIS \
    FUSION_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif // FUSION_COMMON_THREAD_ANNOTATIONS_H
