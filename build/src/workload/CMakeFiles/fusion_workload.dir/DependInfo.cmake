
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/chunk_models.cc" "src/workload/CMakeFiles/fusion_workload.dir/chunk_models.cc.o" "gcc" "src/workload/CMakeFiles/fusion_workload.dir/chunk_models.cc.o.d"
  "/root/repo/src/workload/lineitem.cc" "src/workload/CMakeFiles/fusion_workload.dir/lineitem.cc.o" "gcc" "src/workload/CMakeFiles/fusion_workload.dir/lineitem.cc.o.d"
  "/root/repo/src/workload/queries.cc" "src/workload/CMakeFiles/fusion_workload.dir/queries.cc.o" "gcc" "src/workload/CMakeFiles/fusion_workload.dir/queries.cc.o.d"
  "/root/repo/src/workload/taxi.cc" "src/workload/CMakeFiles/fusion_workload.dir/taxi.cc.o" "gcc" "src/workload/CMakeFiles/fusion_workload.dir/taxi.cc.o.d"
  "/root/repo/src/workload/textsets.cc" "src/workload/CMakeFiles/fusion_workload.dir/textsets.cc.o" "gcc" "src/workload/CMakeFiles/fusion_workload.dir/textsets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fusion_common.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/fusion_format.dir/DependInfo.cmake"
  "/root/repo/build/src/fac/CMakeFiles/fusion_fac.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/fusion_query.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/fusion_codec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
