file(REMOVE_RECURSE
  "CMakeFiles/fusion_fac.dir/fac_layout.cc.o"
  "CMakeFiles/fusion_fac.dir/fac_layout.cc.o.d"
  "CMakeFiles/fusion_fac.dir/fixed_layout.cc.o"
  "CMakeFiles/fusion_fac.dir/fixed_layout.cc.o.d"
  "CMakeFiles/fusion_fac.dir/layout.cc.o"
  "CMakeFiles/fusion_fac.dir/layout.cc.o.d"
  "CMakeFiles/fusion_fac.dir/oracle_layout.cc.o"
  "CMakeFiles/fusion_fac.dir/oracle_layout.cc.o.d"
  "libfusion_fac.a"
  "libfusion_fac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_fac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
