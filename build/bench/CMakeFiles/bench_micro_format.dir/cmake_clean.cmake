file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_format.dir/bench_micro_format.cpp.o"
  "CMakeFiles/bench_micro_format.dir/bench_micro_format.cpp.o.d"
  "bench_micro_format"
  "bench_micro_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
