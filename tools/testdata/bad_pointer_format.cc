// Fixture: each line tagged `BAD: <rule>` must produce exactly that
// finding; untagged lines must produce none.
#include <cstdint>
#include <cstdio>
#include <iostream>

void
show(const void *p)
{
    std::printf("at %p\n", p); // BAD: pointer-format

    std::cout << std::hex << reinterpret_cast<uintptr_t>(p); // BAD: pointer-format

    // std::hex on a plain integer is fine (stable value, not an address).
    std::cout << std::hex << 255 << std::dec << "\n";

    // "%period" style strings that merely contain 'p' are fine.
    std::printf("%d%% passed\n", 100);
}
