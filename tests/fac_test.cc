/**
 * @file
 * Unit and property tests for src/fac: the layout model, the fixed and
 * padding baselines, the FAC stripe-construction algorithm (paper
 * Algorithm 1), the exact oracle, and the Fusion fallback path.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>

#include "common/random.h"
#include "common/units.h"
#include "common/walltime.h"
#include "fac/constructors.h"

namespace fusion::fac {
namespace {

std::vector<ChunkExtent>
makeChunks(const std::vector<uint64_t> &sizes)
{
    std::vector<ChunkExtent> chunks;
    uint64_t offset = 0;
    for (size_t i = 0; i < sizes.size(); ++i) {
        chunks.push_back({static_cast<uint32_t>(i), offset, sizes[i]});
        offset += sizes[i];
    }
    return chunks;
}

std::vector<ChunkExtent>
randomChunks(size_t count, uint64_t min_size, uint64_t max_size,
             uint64_t seed, double zipf_theta = 0.0)
{
    Rng rng(seed);
    std::vector<uint64_t> sizes;
    if (zipf_theta > 0.0) {
        // Zipf rank maps linearly onto the size range (paper Fig 16a).
        ZipfSampler zipf(100, zipf_theta);
        for (size_t i = 0; i < count; ++i) {
            size_t rank = zipf.sample(rng);
            sizes.push_back(min_size + (max_size - min_size) * (rank - 1) /
                                           99);
        }
    } else {
        for (size_t i = 0; i < count; ++i)
            sizes.push_back(static_cast<uint64_t>(
                rng.uniformInt(static_cast<int64_t>(min_size),
                               static_cast<int64_t>(max_size))));
    }
    return makeChunks(sizes);
}

TEST(FixedLayoutTest, SplitsAtBlockBoundaries)
{
    // Three 10-byte chunks, block size 8: blocks |10|10|10| -> 4 blocks.
    auto chunks = makeChunks({10, 10, 10});
    ObjectLayout layout = buildFixedLayout(chunks, 9, 6, 8);
    EXPECT_TRUE(layout.validate(chunks).isOk());
    EXPECT_EQ(layout.dataBytes, 30u);
    EXPECT_EQ(layout.paddingBytes, 0u);

    auto spans = layout.chunkSpans(chunks.size());
    EXPECT_EQ(spans[0], 2u); // bytes [0,8) and [8,10)
    EXPECT_EQ(spans[1], 2u);
    EXPECT_EQ(spans[2], 2u);
    EXPECT_DOUBLE_EQ(layout.splitFraction(chunks.size()), 1.0);
}

TEST(FixedLayoutTest, NoSplitWhenChunksAlign)
{
    auto chunks = makeChunks({8, 8, 8, 8});
    ObjectLayout layout = buildFixedLayout(chunks, 9, 6, 8);
    EXPECT_TRUE(layout.validate(chunks).isOk());
    EXPECT_DOUBLE_EQ(layout.splitFraction(chunks.size()), 0.0);
}

TEST(FixedLayoutTest, NearOptimalOverhead)
{
    auto chunks = randomChunks(300, 1 << 10, 100 << 10, 1);
    ObjectLayout layout = buildFixedLayout(chunks, 9, 6, 64 << 10);
    EXPECT_TRUE(layout.validate(chunks).isOk());
    // Only the ragged tail stripe can cost anything.
    EXPECT_LT(layout.overheadVsOptimal(), 0.05);
}

TEST(FixedLayoutTest, StripesHaveAtMostKBlocks)
{
    auto chunks = randomChunks(100, 1000, 5000, 2);
    ObjectLayout layout = buildFixedLayout(chunks, 9, 6, 2048);
    for (const auto &stripe : layout.stripes)
        EXPECT_LE(stripe.dataBlocks.size(), 6u);
}

TEST(PaddingLayoutTest, NeverSplitsFittingChunks)
{
    auto chunks = makeChunks({10, 10, 10, 5, 3});
    ObjectLayout layout = buildPaddingLayout(chunks, 9, 6, 16);
    EXPECT_TRUE(layout.validate(chunks).isOk());
    EXPECT_DOUBLE_EQ(layout.splitFraction(chunks.size()), 0.0);
    // Block 1: chunk0 + pad(6); block 2: chunk1 + pad; block 3: chunk2+5+3.
    EXPECT_GT(layout.paddingBytes, 0u);
}

TEST(PaddingLayoutTest, OversizedChunksStillSplit)
{
    auto chunks = makeChunks({100, 4});
    ObjectLayout layout = buildPaddingLayout(chunks, 9, 6, 16);
    EXPECT_TRUE(layout.validate(chunks).isOk());
    auto spans = layout.chunkSpans(chunks.size());
    EXPECT_GT(spans[0], 1u);
    EXPECT_EQ(spans[1], 1u);
}

TEST(PaddingLayoutTest, PaddingCostExceedsFac)
{
    // Skewed chunk sizes: padding wastes nearly a block per large chunk.
    std::vector<uint64_t> sizes;
    Rng rng(3);
    for (int i = 0; i < 120; ++i)
        sizes.push_back(i % 2 == 0 ? 90 : 30);
    auto chunks = makeChunks(sizes);
    ObjectLayout padding = buildPaddingLayout(chunks, 9, 6, 128);
    ObjectLayout fac = buildFacLayout(chunks, 9, 6);
    EXPECT_TRUE(padding.validate(chunks).isOk());
    EXPECT_TRUE(fac.validate(chunks).isOk());
    EXPECT_GT(padding.overheadVsOptimal(), fac.overheadVsOptimal());
}

TEST(FacLayoutTest, NeverSplitsChunks)
{
    for (uint64_t seed = 0; seed < 10; ++seed) {
        auto chunks = randomChunks(200, 1 << 20, 100 << 20, seed);
        ObjectLayout layout = buildFacLayout(chunks, 9, 6);
        ASSERT_TRUE(layout.validate(chunks).isOk());
        auto spans = layout.chunkSpans(chunks.size());
        for (uint32_t s : spans)
            EXPECT_EQ(s, 1u);
        EXPECT_DOUBLE_EQ(layout.splitFraction(chunks.size()), 0.0);
    }
}

TEST(FacLayoutTest, FirstBinHoldsLargestChunkOfEachStripe)
{
    auto chunks = randomChunks(60, 100, 10000, 11);
    ObjectLayout layout = buildFacLayout(chunks, 9, 6);
    ASSERT_TRUE(layout.validate(chunks).isOk());
    for (const auto &stripe : layout.stripes) {
        ASSERT_FALSE(stripe.dataBlocks.empty());
        // Bin 0 holds exactly one chunk, and it is the stripe's capacity.
        ASSERT_EQ(stripe.dataBlocks[0].pieces.size(), 1u);
        uint64_t cap = stripe.dataBlocks[0].pieces[0].size;
        EXPECT_EQ(stripe.blockSize(), cap);
        for (const auto &block : stripe.dataBlocks)
            EXPECT_LE(block.size(), cap);
    }
}

TEST(FacLayoutTest, HandDrawnExample)
{
    // k=3: chunks {10,9,8,2,2,2,1}. Stripe 1: bin0 = {10} (capacity 10);
    // 9 -> bin1, 8 -> bin2, first 2 -> bin2 (8 + 2 <= 10), the other 2s
    // do not fit anywhere, 1 -> bin1 (9 + 1 <= 10). Stripe 2 takes the
    // two leftover 2s: bin0 = {2} (capacity 2), bin1 = {2}.
    auto chunks = makeChunks({10, 9, 8, 2, 2, 2, 1});
    ObjectLayout layout = buildFacLayout(chunks, 5, 3);
    ASSERT_TRUE(layout.validate(chunks).isOk());
    ASSERT_EQ(layout.stripes.size(), 2u);
    const auto &stripe1 = layout.stripes[0];
    ASSERT_EQ(stripe1.dataBlocks.size(), 3u);
    EXPECT_EQ(stripe1.dataBlocks[0].size(), 10u);
    EXPECT_EQ(stripe1.dataBlocks[1].size(), 10u); // 9 + 1
    EXPECT_EQ(stripe1.dataBlocks[2].size(), 10u); // 8 + 2
    const auto &stripe2 = layout.stripes[1];
    ASSERT_EQ(stripe2.dataBlocks.size(), 2u);
    EXPECT_EQ(stripe2.blockSize(), 2u);
    // Perfectly packed: stripe 1 costs its 10, stripe 2 costs 2.
    EXPECT_EQ(layout.parityBytes(), 2 * (10u + 2u));
}

TEST(FacLayoutTest, SingleChunk)
{
    auto chunks = makeChunks({12345});
    ObjectLayout layout = buildFacLayout(chunks, 9, 6);
    ASSERT_TRUE(layout.validate(chunks).isOk());
    ASSERT_EQ(layout.stripes.size(), 1u);
    EXPECT_EQ(layout.stripes[0].dataBlocks.size(), 1u);
    EXPECT_EQ(layout.parityBytes(), 3 * 12345u);
}

TEST(FacLayoutTest, EqualSizedChunksAreOptimal)
{
    auto chunks = makeChunks(std::vector<uint64_t>(60, 1000));
    ObjectLayout layout = buildFacLayout(chunks, 9, 6);
    ASSERT_TRUE(layout.validate(chunks).isOk());
    EXPECT_NEAR(layout.overheadVsOptimal(), 0.0, 1e-9);
}

TEST(FacLayoutTest, OverheadSmallForManyChunks)
{
    // Paper Fig 16a: overhead ~3% at 100 chunks, <1% at 500.
    for (double theta : {0.0, 0.5, 0.99}) {
        auto chunks = randomChunks(500, 1 << 20, 100 << 20, 42, theta);
        ObjectLayout layout = buildFacLayout(chunks, 9, 6);
        ASSERT_TRUE(layout.validate(chunks).isOk());
        EXPECT_LT(layout.overheadVsOptimal(), 0.05)
            << "theta=" << theta << " overhead="
            << layout.overheadVsOptimal();
    }
}

TEST(FacLayoutTest, WorstCaseBoundedByReplication)
{
    // One huge chunk + tiny chunks: the classic worst case. Overhead may
    // approach replication (n - k per byte) but never exceed it.
    std::vector<uint64_t> sizes = {1000000};
    for (int i = 0; i < 59; ++i)
        sizes.push_back(1);
    auto chunks = makeChunks(sizes);
    ObjectLayout layout = buildFacLayout(chunks, 9, 6);
    ASSERT_TRUE(layout.validate(chunks).isOk());
    double parity_per_data = static_cast<double>(layout.parityBytes()) /
                             static_cast<double>(layout.dataBytes);
    EXPECT_LE(parity_per_data, 3.0 + 1e-9); // replication bound (n-k)
}

class FacOverheadSweep
    : public ::testing::TestWithParam<std::tuple<size_t, double>>
{
};

TEST_P(FacOverheadSweep, ValidAndBounded)
{
    auto [count, theta] = GetParam();
    auto chunks = randomChunks(count, 1 << 20, 100 << 20, count, theta);
    ObjectLayout layout = buildFacLayout(chunks, 9, 6);
    ASSERT_TRUE(layout.validate(chunks).isOk());
    EXPECT_DOUBLE_EQ(layout.splitFraction(chunks.size()), 0.0);
    EXPECT_GE(layout.overheadVsOptimal(), -1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FacOverheadSweep,
    ::testing::Combine(::testing::Values(1, 5, 6, 7, 50, 100, 500),
                       ::testing::Values(0.0, 0.5, 0.99)));

TEST(OracleTest, MatchesFacOnTrivialInput)
{
    auto chunks = makeChunks(std::vector<uint64_t>(12, 500));
    OracleResult oracle = buildOracleLayout(chunks, 9, 6, 5.0);
    EXPECT_TRUE(oracle.optimal);
    ASSERT_TRUE(oracle.layout.validate(chunks).isOk());
    ObjectLayout fac = buildFacLayout(chunks, 9, 6);
    EXPECT_EQ(oracle.layout.parityBytes(), fac.parityBytes());
}

TEST(OracleTest, NeverWorseThanFac)
{
    for (uint64_t seed = 0; seed < 5; ++seed) {
        auto chunks = randomChunks(12, 100, 1000, seed);
        OracleResult oracle = buildOracleLayout(chunks, 9, 6, 5.0);
        ASSERT_TRUE(oracle.layout.validate(chunks).isOk());
        ObjectLayout fac = buildFacLayout(chunks, 9, 6);
        EXPECT_LE(oracle.layout.parityBytes(), fac.parityBytes());
    }
}

TEST(OracleTest, FindsKnownOptimum)
{
    // k=2, chunks {6,5,4,3}: best is {6|5+?}.. enumerate: pairing
    // {6,(5,?)} -- capacity 6: stripe1 bins {6},{5}; leftover 4,3 ->
    // stripe2 {4},{3}. Cost 6+4 = 10. Alternative packing {6},{5} /
    // {4,3 in separate bins} is forced since 5+4>6. Optimal = 10.
    auto chunks = makeChunks({6, 5, 4, 3});
    OracleResult oracle = buildOracleLayout(chunks, 3, 2, 5.0);
    EXPECT_TRUE(oracle.optimal);
    ASSERT_TRUE(oracle.layout.validate(chunks).isOk());
    uint64_t cost = 0;
    for (const auto &stripe : oracle.layout.stripes)
        cost += stripe.blockSize();
    EXPECT_EQ(cost, 10u);
}

// Reference exhaustive enumerator over the paper's objective (Eq. 1):
// every assignment of items to m = ceil(N/k) bin sets of k bins with
// capacity C = max item size. No pruning; only usable for tiny N.
uint64_t
bruteForceCost(const std::vector<uint64_t> &sizes, size_t k)
{
    const size_t m = (sizes.size() + k - 1) / k;
    uint64_t capacity = *std::max_element(sizes.begin(), sizes.end());
    std::vector<std::vector<uint64_t>> loads(m, std::vector<uint64_t>(k, 0));
    uint64_t best = UINT64_MAX;

    std::function<void(size_t)> go = [&](size_t i) {
        if (i == sizes.size()) {
            uint64_t cost = 0;
            for (const auto &binset : loads)
                cost += *std::max_element(binset.begin(), binset.end());
            best = std::min(best, cost);
            return;
        }
        for (size_t l = 0; l < m; ++l) {
            for (size_t j = 0; j < k; ++j) {
                if (loads[l][j] + sizes[i] > capacity)
                    continue;
                loads[l][j] += sizes[i];
                go(i + 1);
                loads[l][j] -= sizes[i];
            }
        }
    };
    go(0);
    return best;
}

TEST(OracleTest, MatchesBruteForceOnRandomInstances)
{
    Rng rng(2024);
    for (int trial = 0; trial < 8; ++trial) {
        std::vector<uint64_t> sizes;
        size_t count = 5 + rng.pickIndex(3); // 5..7 items
        for (size_t i = 0; i < count; ++i)
            sizes.push_back(rng.uniformInt(1, 20));
        auto chunks = makeChunks(sizes);
        OracleResult oracle = buildOracleLayout(chunks, 5, 3, 10.0);
        ASSERT_TRUE(oracle.optimal);
        ASSERT_TRUE(oracle.layout.validate(chunks).isOk());
        uint64_t oracle_cost = 0;
        for (const auto &stripe : oracle.layout.stripes)
            oracle_cost += stripe.blockSize();
        EXPECT_EQ(oracle_cost, bruteForceCost(sizes, 3))
            << "trial " << trial;
    }
}

TEST(OracleTest, TimeLimitRespected)
{
    auto chunks = randomChunks(40, 1 << 20, 100 << 20, 9);
    double start = walltime::monotonicSeconds();
    OracleResult oracle = buildOracleLayout(chunks, 9, 6, 0.2);
    double elapsed = walltime::monotonicSeconds() - start;
    EXPECT_LT(elapsed, 5.0);
    // Even when timed out, the incumbent must be a valid layout.
    ASSERT_TRUE(oracle.layout.validate(chunks).isOk());
}

TEST(FusionLayoutTest, UsesFacWithinThreshold)
{
    auto chunks = randomChunks(300, 1 << 20, 100 << 20, 17);
    FusionLayoutOptions options;
    options.overheadThreshold = 0.02;
    ObjectLayout layout = buildFusionLayout(chunks, options);
    EXPECT_EQ(layout.kind, LayoutKind::kFac);
    EXPECT_LE(layout.overheadVsOptimal(), 0.02);
}

TEST(FusionLayoutTest, FallsBackToFixedWhenOverThreshold)
{
    // Worst-case shape forces FAC above any tight threshold.
    std::vector<uint64_t> sizes = {1000000};
    for (int i = 0; i < 10; ++i)
        sizes.push_back(1);
    auto chunks = makeChunks(sizes);
    FusionLayoutOptions options;
    options.overheadThreshold = 0.01;
    options.fallbackBlockSize = 4096;
    ObjectLayout layout = buildFusionLayout(chunks, options);
    EXPECT_EQ(layout.kind, LayoutKind::kFixed);
    EXPECT_TRUE(layout.validate(chunks).isOk());
}


TEST(OracleTest, NeverWorseThanFacAtPaperConfig)
{
    // The paper's RS(9,6) configuration with small random instances.
    for (uint64_t seed = 100; seed < 106; ++seed) {
        auto chunks = randomChunks(14, 50, 500, seed);
        fac::OracleResult oracle = buildOracleLayout(chunks, 9, 6, 3.0);
        ASSERT_TRUE(oracle.layout.validate(chunks).isOk());
        ObjectLayout greedy = buildFacLayout(chunks, 9, 6);
        EXPECT_LE(oracle.layout.parityBytes(), greedy.parityBytes())
            << "seed " << seed;
        // FAC stays within the paper's empirical band of the optimum.
        if (oracle.optimal) {
            EXPECT_LE(static_cast<double>(greedy.parityBytes()),
                      1.30 * static_cast<double>(
                                 oracle.layout.parityBytes()))
                << "seed " << seed;
        }
    }
}

TEST(FacLayoutTest, DeterministicForEqualInputs)
{
    auto chunks = randomChunks(120, 1 << 20, 100 << 20, 5);
    ObjectLayout a = buildFacLayout(chunks, 9, 6);
    ObjectLayout b = buildFacLayout(chunks, 9, 6);
    ASSERT_EQ(a.stripes.size(), b.stripes.size());
    EXPECT_EQ(a.parityBytes(), b.parityBytes());
    for (size_t s = 0; s < a.stripes.size(); ++s)
        EXPECT_EQ(a.stripes[s].blockSize(), b.stripes[s].blockSize());
}

TEST(LayoutValidateTest, DetectsMissingChunk)
{
    auto chunks = makeChunks({10, 20});
    ObjectLayout layout = buildFacLayout(chunks, 9, 6);
    layout.stripes[0].dataBlocks[1].pieces.clear(); // drop a chunk
    EXPECT_FALSE(layout.validate(chunks).isOk());
}

TEST(LayoutKindTest, Names)
{
    EXPECT_STREQ(layoutKindName(LayoutKind::kFixed), "fixed");
    EXPECT_STREQ(layoutKindName(LayoutKind::kPadding), "padding");
    EXPECT_STREQ(layoutKindName(LayoutKind::kFac), "fac");
    EXPECT_STREQ(layoutKindName(LayoutKind::kOracle), "oracle");
}

} // namespace
} // namespace fusion::fac
