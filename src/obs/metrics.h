/**
 * @file
 * Metrics registry: typed counters, gauges and fixed-bucket histograms
 * with near-zero hot-path cost. Increment paths touch one cache-line-
 * padded relaxed atomic in a per-thread shard; all folding, naming and
 * formatting happens on snapshot. Determinism contract (mirrors the
 * thread-pool contract in common/thread_pool.h): integer counters and
 * histogram bucket counts fold to identical values for any thread
 * count; floating-point counters are bit-stable only when incremented
 * from a single thread (which is how the store's serial fault path
 * uses them). Snapshots render to a canonical sorted JSON/text form so
 * byte-comparison across runs is meaningful.
 *
 * This header is dependency-free (std plus the header-only annotated
 * mutex wrapper in common/mutex.h) so the lowest layers (common, ec)
 * can be instrumented without a link cycle.
 */
#ifndef FUSION_OBS_METRICS_H
#define FUSION_OBS_METRICS_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace fusion::obs {

namespace detail {

inline constexpr size_t kShards = 16;

/** Stable per-thread shard slot in [0, kShards). */
inline size_t
shardIndex()
{
    static std::atomic<size_t> next{0};
    thread_local const size_t slot =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return slot;
}

struct alignas(64) U64Shard {
    std::atomic<uint64_t> v{0};
};

struct alignas(64) F64Shard {
    std::atomic<double> v{0.0};
};

} // namespace detail

/** Monotonically increasing integer counter (sharded, relaxed). */
class Counter
{
  public:
    void
    add(uint64_t delta = 1) noexcept
    {
        shards_[detail::shardIndex()].v.fetch_add(
            delta, std::memory_order_relaxed);
    }

    uint64_t
    value() const noexcept
    {
        uint64_t total = 0;
        for (const auto &shard : shards_)
            total += shard.v.load(std::memory_order_relaxed);
        return total;
    }

    void
    reset() noexcept
    {
        for (auto &shard : shards_)
            shard.v.store(0, std::memory_order_relaxed);
    }

  private:
    detail::U64Shard shards_[detail::kShards];
};

/** Accumulating floating-point counter (e.g. seconds of backoff). */
class DoubleCounter
{
  public:
    void
    add(double delta) noexcept
    {
        auto &cell = shards_[detail::shardIndex()].v;
        double cur = cell.load(std::memory_order_relaxed);
        while (!cell.compare_exchange_weak(cur, cur + delta,
                                           std::memory_order_relaxed)) {
        }
    }

    /** Folds shards in fixed index order (bit-stable when all adds
     *  came from one thread). */
    double
    value() const noexcept
    {
        double total = 0.0;
        for (const auto &shard : shards_)
            total += shard.v.load(std::memory_order_relaxed);
        return total;
    }

    void
    reset() noexcept
    {
        for (auto &shard : shards_)
            shard.v.store(0.0, std::memory_order_relaxed);
    }

  private:
    detail::F64Shard shards_[detail::kShards];
};

/** Last-write-wins scalar (queue depth, configured sizes, ...). */
class Gauge
{
  public:
    void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }

    /** Raises the gauge to `v` if above the current value. */
    void
    setMax(double v) noexcept
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (cur < v && !value_.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
    }

    double value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram: `bounds` are inclusive upper bounds of the
 * first N buckets; one implicit overflow bucket catches the rest.
 * Bucket counts are sharded integer counters, so they fold
 * deterministically for any thread count.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double v) noexcept;

    const std::vector<double> &bounds() const { return bounds_; }
    /** Folded per-bucket counts, bounds_.size() + 1 entries. */
    std::vector<uint64_t> bucketCounts() const;
    uint64_t count() const;
    void reset() noexcept;

  private:
    std::vector<double> bounds_; // sorted ascending
    std::unique_ptr<Counter[]> buckets_;
};

/** Exponential bucket bounds: first, first*factor, ... (count values). */
std::vector<double> exponentialBounds(double first, double factor,
                                      size_t count);

/** Shortest round-trippable decimal for a double (%.17g), shared by
 *  every canonical telemetry JSON emitter. */
std::string formatDouble(double v);

/** One folded metric value in a snapshot. */
struct SnapshotValue {
    enum class Kind { kCounter, kDouble, kGauge, kHistogram };
    Kind kind = Kind::kCounter;
    uint64_t count = 0;                // counters
    double number = 0.0;               // double counters / gauges
    std::vector<double> bounds;        // histograms
    std::vector<uint64_t> buckets;     // histograms (bounds.size() + 1)

    bool operator==(const SnapshotValue &other) const;
};

/**
 * Interpolated percentile (p in [0, 100]) reconstructed analytically
 * from a histogram snapshot's bucket counts: the inclusive rank
 * h = (n-1)·p/100 (SampleHistogram::percentileInterpolated's
 * convention) is located in the cumulative counts and mapped to a
 * value linearly inside the containing bucket; the overflow bucket
 * clamps to the last bound. 0 when the histogram is empty.
 */
double histogramPercentile(const SnapshotValue &v, double p);

/** Point-in-time fold of a registry: sorted name -> value. */
struct MetricsSnapshot {
    std::map<std::string, SnapshotValue> values;

    /** Canonical JSON (sorted keys, fixed float formatting) — byte
     *  comparable across runs. */
    std::string toJson() const;
    /** Human-readable aligned text dump. */
    std::string render() const;

    /** this - earlier, per metric (counters/doubles/buckets subtract;
     *  gauges keep this snapshot's value). Metrics absent from
     *  `earlier` pass through unchanged. */
    MetricsSnapshot diff(const MetricsSnapshot &earlier) const;

    /** Folds `other` into this (counters/doubles/buckets add; gauges:
     *  other wins). Used to merge per-store registries for dumping. */
    void mergeFrom(const MetricsSnapshot &other);

    bool operator==(const MetricsSnapshot &other) const
    {
        return values == other.values;
    }
};

/**
 * Owns named metrics. Lookup takes a registration mutex — callers on
 * hot paths resolve once and cache the returned reference (stable for
 * the registry's lifetime). Metric kinds are fixed at first
 * registration; re-registering a name as a different kind aborts.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(const std::string &name);
    DoubleCounter &doubleCounter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** `bounds` are only consulted on first registration. */
    Histogram &histogram(const std::string &name,
                         const std::vector<double> &bounds);

    MetricsSnapshot snapshot() const;
    void reset();

    /** Process-wide registry for cross-store instruments (thread pool,
     *  EC kernel dispatch). Per-store counters live in the store's own
     *  registry (obs::Observability). */
    static MetricsRegistry &global();

  private:
    struct Entry {
        SnapshotValue::Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<DoubleCounter> dcounter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };
    Entry &entry(const std::string &name, SnapshotValue::Kind kind);

    mutable Mutex mutex_;
    std::map<std::string, Entry> entries_ FUSION_GUARDED_BY(mutex_);
};

} // namespace fusion::obs

#endif // FUSION_OBS_METRICS_H
