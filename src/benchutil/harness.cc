#include "harness.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace fusion::benchutil {

namespace {

ObsOptions g_obs_options;
std::vector<obs::TraceProcess> g_trace_processes;
obs::MetricsSnapshot g_metrics_accum;
/** (process label, obs::Telemetry::toJson snapshot) per collection. */
std::vector<std::pair<std::string, std::string>> g_timeseries_docs;
size_t g_collect_seq = 0;

void
obsWriteOutputs()
{
    if (!g_obs_options.metricsOut.empty()) {
        // Per-store deltas accumulated by runClosedLoop, plus the
        // process-wide instruments (thread pool, EC dispatch) at exit.
        obs::MetricsSnapshot merged = g_metrics_accum;
        merged.mergeFrom(obs::MetricsRegistry::global().snapshot());
        obs::writeTextFile(g_obs_options.metricsOut, merged.toJson());
    }
    if (!g_obs_options.traceOut.empty())
        obs::writeTextFile(g_obs_options.traceOut,
                           obs::chromeTraceJson(g_trace_processes));
    if (!g_obs_options.timeseriesOut.empty()) {
        std::string out = "{\n\"timeseries\": [";
        for (size_t i = 0; i < g_timeseries_docs.size(); ++i) {
            if (i)
                out += ",";
            out += "\n{\"process\": \"" + g_timeseries_docs[i].first +
                   "\", \"snapshot\": " + g_timeseries_docs[i].second +
                   "}";
        }
        out += "\n]\n}\n";
        obs::writeTextFile(g_obs_options.timeseriesOut, out);
    }
}

} // namespace

void
obsInit(int argc, char **argv)
{
    auto flag_value = [](const char *arg,
                         const char *name) -> const char * {
        size_t n = std::strlen(name);
        if (std::strncmp(arg, name, n) == 0 && arg[n] == '=')
            return arg + n + 1;
        return nullptr;
    };
    for (int i = 1; i < argc; ++i) {
        if (const char *v = flag_value(argv[i], "--trace-out"))
            g_obs_options.traceOut = v;
        else if (const char *v = flag_value(argv[i], "--metrics-out"))
            g_obs_options.metricsOut = v;
        else if (const char *v = flag_value(argv[i], "--timeseries-out"))
            g_obs_options.timeseriesOut = v;
        // Unknown flags belong to the bench; leave them alone.
    }
    if (g_obs_options.traceOut.empty())
        if (const char *env = std::getenv("FUSION_TRACE_OUT"))
            g_obs_options.traceOut = env;
    if (g_obs_options.metricsOut.empty())
        if (const char *env = std::getenv("FUSION_METRICS_OUT"))
            g_obs_options.metricsOut = env;
    if (g_obs_options.timeseriesOut.empty())
        if (const char *env = std::getenv("FUSION_TIMESERIES_OUT"))
            g_obs_options.timeseriesOut = env;
    if (g_obs_options.enabled()) {
        static bool registered = false;
        if (!registered) {
            registered = true;
            // Construct the global registry BEFORE registering the
            // writer: exit runs the atexit stack LIFO, so anything the
            // writer reads must be constructed (= destructor enqueued)
            // first or it is torn down before the writer runs.
            obs::MetricsRegistry::global();
            std::atexit(obsWriteOutputs);
        }
    }
}

const ObsOptions &
obsOptions()
{
    return g_obs_options;
}

void
obsCollect(store::ObjectStore &store)
{
    if (!g_obs_options.enabled())
        return;
    const std::string label = std::string(store.kindName()) + "#" +
                              std::to_string(g_collect_seq++);
    if (!g_obs_options.timeseriesOut.empty())
        g_timeseries_docs.emplace_back(
            label, store.obs().telemetry.toJson(
                       store.cluster().engine().now()));
    if (g_obs_options.traceOut.empty())
        return;
    auto spans = store.obs().tracer.takeSpans();
    if (spans.empty())
        return;
    g_trace_processes.push_back({label, std::move(spans)});
}

RunStats
runClosedLoop(store::ObjectStore &store, const RunConfig &config,
              std::function<query::Query(size_t)> next_query)
{
    RunStats stats;
    sim::SimEngine &engine = store.cluster().engine();
    double wall_start = engine.now();
    uint64_t traffic_start = store.cluster().totalNetworkBytes();
    store::ObjectStore::FaultStats faults_start = store.faultStats();

    const bool obs_on = g_obs_options.enabled();
    obs::MetricsSnapshot metrics_start;
    if (obs_on) {
        if (!g_obs_options.traceOut.empty())
            store.obs().tracer.setEnabled(true);
        if (!g_obs_options.timeseriesOut.empty())
            store.obs().telemetry.flight().setEnabled(true);
        metrics_start = store.obs().metrics.snapshot();
    }

    size_t issued = 0;
    auto record = [&](Result<store::QueryOutcome> outcome,
                      const std::function<void()> &after) {
        FUSION_CHECK_MSG(outcome.isOk(),
                         outcome.isOk() ? "" : outcome.status().toString());
        const store::QueryOutcome &o = outcome.value();
        stats.latency.add(o.latencySeconds);
        stats.diskSeconds += o.diskSeconds;
        stats.cpuSeconds += o.cpuSeconds;
        stats.networkSeconds += o.networkSeconds;
        stats.projectionPushdowns += o.projectionPushdowns;
        stats.projectionFetches += o.projectionFetches;
        after();
    };

    if (config.openLoopQps > 0.0) {
        // Fixed-rate arrivals, independent of completions.
        for (size_t i = 0; i < config.totalQueries; ++i) {
            engine.scheduleAt(
                wall_start + static_cast<double>(i) / config.openLoopQps,
                [&, i]() {
                    store.queryAsync(next_query(i),
                                     [&](Result<store::QueryOutcome> o) {
                                         record(std::move(o), [] {});
                                     });
                });
        }
        engine.run();
    } else {
        // One closed-loop client: issue, wait for completion, repeat.
        std::function<void()> issue_next = [&]() {
            if (issued >= config.totalQueries)
                return;
            size_t index = issued++;
            store.queryAsync(next_query(index),
                             [&](Result<store::QueryOutcome> o) {
                                 record(std::move(o), issue_next);
                             });
        };
        size_t clients = std::min(config.clients, config.totalQueries);
        for (size_t c = 0; c < clients; ++c)
            issue_next();
        engine.run();
    }

    stats.wallSimSeconds = engine.now() - wall_start;
    stats.networkBytes =
        store.cluster().totalNetworkBytes() - traffic_start;
    const store::ObjectStore::FaultStats &faults = store.faultStats();
    stats.readRetries = faults.readRetries - faults_start.readRetries;
    stats.parityReconstructions = faults.parityReconstructions -
                                  faults_start.parityReconstructions;
    stats.pushdownFallbacks =
        faults.pushdownFallbacks - faults_start.pushdownFallbacks;
    stats.degradedChunkReads =
        faults.degradedChunkReads - faults_start.degradedChunkReads;
    stats.meanStorageCpuUtilization =
        store.cluster().meanStorageCpuUtilization();
    FUSION_CHECK(stats.latency.count() == config.totalQueries);

    if (obs_on) {
        g_metrics_accum.mergeFrom(
            store.obs().metrics.snapshot().diff(metrics_start));
        obsCollect(store);
    }
    return stats;
}

double
latencyReductionPct(double baseline_seconds, double fusion_seconds)
{
    if (baseline_seconds <= 0.0)
        return 0.0;
    return (baseline_seconds - fusion_seconds) / baseline_seconds * 100.0;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    FUSION_CHECK(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        std::printf("|");
        for (size_t c = 0; c < cells.size(); ++c)
            std::printf(" %-*s |", static_cast<int>(widths[c]),
                        cells[c].c_str());
        std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < headers_.size(); ++c)
        std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    std::printf("\n");
    for (const auto &row : rows_)
        print_row(row);
}

std::string
fmt(const char *format, ...)
{
    char buf[256];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buf, sizeof(buf), format, args);
    va_end(args);
    return buf;
}

void
banner(const std::string &id, const std::string &title)
{
    std::printf("\n=== %s: %s ===\n\n", id.c_str(), title.c_str());
}

} // namespace fusion::benchutil
