#include "fault.h"

#include <algorithm>
#include <cstdio>

namespace fusion::sim {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::kCrash:
        return "crash";
    case FaultKind::kRevive:
        return "revive";
    case FaultKind::kSlow:
        return "slow";
    case FaultKind::kRestore:
        return "restore";
    }
    return "?";
}

std::string
FaultEvent::toString() const
{
    char buf[96];
    if (kind == FaultKind::kSlow)
        std::snprintf(buf, sizeof(buf), "%.6f %s node%zu x%.2f", time,
                      faultKindName(kind), nodeId, slowFactor);
    else
        std::snprintf(buf, sizeof(buf), "%.6f %s node%zu", time,
                      faultKindName(kind), nodeId);
    return buf;
}

FaultSchedule &
FaultSchedule::crashAt(double time, size_t node)
{
    events_.push_back({time, FaultKind::kCrash, node, 1.0});
    return *this;
}

FaultSchedule &
FaultSchedule::reviveAt(double time, size_t node)
{
    events_.push_back({time, FaultKind::kRevive, node, 1.0});
    return *this;
}

FaultSchedule &
FaultSchedule::slowAt(double time, size_t node, double factor)
{
    FUSION_CHECK_MSG(factor >= 1.0, "slow factor must be >= 1");
    events_.push_back({time, FaultKind::kSlow, node, factor});
    return *this;
}

FaultSchedule &
FaultSchedule::restoreAt(double time, size_t node)
{
    events_.push_back({time, FaultKind::kRestore, node, 1.0});
    return *this;
}

FaultSchedule &
FaultSchedule::flap(size_t node, double start, double period,
                    double downtime, size_t cycles)
{
    FUSION_CHECK_MSG(downtime < period,
                     "flap downtime must be shorter than its period");
    for (size_t c = 0; c < cycles; ++c) {
        double t = start + static_cast<double>(c) * period;
        crashAt(t, node);
        reviveAt(t + downtime, node);
    }
    return *this;
}

void
FaultSchedule::sortByTime()
{
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.time < b.time;
                     });
}

std::string
FaultSchedule::toString() const
{
    std::string out;
    for (const auto &event : events_) {
        out += event.toString();
        out += '\n';
    }
    return out;
}

FaultSchedule
FaultSchedule::random(const RandomFaultOptions &options)
{
    FUSION_CHECK_MSG(options.numNodes > 0, "schedule needs nodes");
    Rng rng(options.seed);
    FaultSchedule schedule;

    // Crash/revive pairs. Downtime intervals are kept within
    // maxConcurrentDown by rejection: a candidate overlapping too many
    // existing outages (or its own node's outage) is redrawn.
    struct Outage {
        double start, end;
        size_t node;
    };
    std::vector<Outage> outages;
    auto overlaps = [](const Outage &a, double start, double end) {
        return a.start < end && start < a.end;
    };
    for (size_t i = 0; i < options.crashCount; ++i) {
        for (int attempt = 0; attempt < 64; ++attempt) {
            double start = rng.uniformReal(0.0, options.horizonSeconds);
            double downtime =
                rng.uniformReal(0.0, 2.0 * options.meanDowntimeSeconds) +
                1e-6;
            double end = start + downtime;
            size_t node = rng.pickIndex(options.numNodes);
            size_t concurrent = 0;
            bool same_node = false;
            for (const auto &outage : outages) {
                if (!overlaps(outage, start, end))
                    continue;
                ++concurrent;
                same_node |= outage.node == node;
            }
            if (same_node || concurrent >= options.maxConcurrentDown)
                continue;
            outages.push_back({start, end, node});
            schedule.crashAt(start, node);
            schedule.reviveAt(end, node);
            break;
        }
    }

    // Slow/restore pairs: gray failures never violate EC tolerance, so
    // they only avoid slowing the same node twice at once.
    std::vector<Outage> slows;
    for (size_t i = 0; i < options.slowCount; ++i) {
        for (int attempt = 0; attempt < 64; ++attempt) {
            double start = rng.uniformReal(0.0, options.horizonSeconds);
            double duration =
                rng.uniformReal(0.0, 2.0 * options.meanDowntimeSeconds) +
                1e-6;
            double end = start + duration;
            size_t node = rng.pickIndex(options.numNodes);
            double factor = rng.uniformReal(2.0, options.maxSlowFactor);
            bool clash = false;
            for (const auto &slow : slows)
                clash |= slow.node == node && overlaps(slow, start, end);
            if (clash)
                continue;
            slows.push_back({start, end, node});
            schedule.slowAt(start, node, factor);
            schedule.restoreAt(end, node);
            break;
        }
    }

    schedule.sortByTime();
    return schedule;
}

FaultInjector::FaultInjector(Cluster &cluster, FaultSchedule schedule)
    : cluster_(cluster), schedule_(std::move(schedule))
{
    schedule_.sortByTime();
    for (const auto &event : schedule_.events())
        FUSION_CHECK_MSG(event.nodeId < cluster.numNodes(),
                         "fault schedule targets a node outside the "
                         "cluster");
}

FaultInjector::~FaultInjector()
{
    if (cluster_.faultInjector() == this)
        cluster_.attachFaultInjector(nullptr);
}

void
FaultInjector::arm()
{
    FUSION_CHECK_MSG(!armed_, "fault injector armed twice");
    armed_ = true;
    cluster_.attachFaultInjector(this);
    for (const auto &event : schedule_.events()) {
        cluster_.engine().scheduleAt(event.time,
                                     [this, event]() { apply(event); });
    }
}

void
FaultInjector::apply(const FaultEvent &event)
{
    StorageNode &node = cluster_.node(event.nodeId);
    switch (event.kind) {
    case FaultKind::kCrash:
        node.setAlive(false);
        ++counters_.crashes;
        break;
    case FaultKind::kRevive:
        node.setAlive(true);
        ++counters_.revives;
        break;
    case FaultKind::kSlow:
        node.setSlowFactor(event.slowFactor);
        ++counters_.slowdowns;
        break;
    case FaultKind::kRestore:
        node.setSlowFactor(1.0);
        ++counters_.restores;
        break;
    }
    FaultEvent stamped = event;
    stamped.time = cluster_.engine().now();
    applied_.push_back(stamped);
    cluster_.notifyFaultEvent(stamped.time,
                              static_cast<int>(stamped.kind),
                              stamped.nodeId, stamped.slowFactor);
}

std::string
FaultInjector::traceString() const
{
    std::string out;
    for (const auto &event : applied_) {
        out += event.toString();
        out += '\n';
    }
    return out;
}

bool
FaultInjector::aliveAt(size_t node, double time) const
{
    bool alive = true;
    for (const auto &event : schedule_.events()) {
        if (event.time > time)
            break;
        if (event.nodeId != node)
            continue;
        if (event.kind == FaultKind::kCrash)
            alive = false;
        else if (event.kind == FaultKind::kRevive)
            alive = true;
    }
    return alive;
}

double
FaultInjector::slowFactorAt(size_t node, double time) const
{
    double factor = 1.0;
    for (const auto &event : schedule_.events()) {
        if (event.time > time)
            break;
        if (event.nodeId != node)
            continue;
        if (event.kind == FaultKind::kSlow)
            factor = event.slowFactor;
        else if (event.kind == FaultKind::kRestore)
            factor = 1.0;
    }
    return factor;
}

} // namespace fusion::sim
