/**
 * @file
 * Taxi analytics: the paper's Q3/Q4 (Timescale NYC-taxi queries) on
 * Fusion, showing the fine-grained adaptive pushdown decisions — the
 * low-compressibility timestamp filter is pushed even at 37.5%
 * selectivity, while the highly compressible fare column's projection
 * is fetched compressed instead (Cost Equation, paper §4.3).
 *
 *   ./build/examples/taxi_analytics [rows]
 */
#include <cstdio>
#include <cstdlib>

#include "benchutil/rigs.h"
#include "common/units.h"
#include "query/cost.h"
#include "store/fusion_store.h"
#include "workload/queries.h"
#include "workload/taxi.h"

using namespace fusion;

int
main(int argc, char **argv)
{
    size_t rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64000;

    std::printf("generating taxi trips: %zu rows...\n", rows);
    format::Table table = workload::makeTaxiTable(rows, 7);
    auto file = workload::buildTaxiFile(rows, 7);
    if (!file.isOk())
        return 1;

    // Service rates scaled so this file behaves like the paper's
    // 8.4 GB taxi dataset.
    sim::ClusterConfig cluster_config;
    cluster_config.node = benchutil::scaledNodeConfig(
        cluster_config.node, file.value().bytes.size(), 8.4e9);
    sim::Cluster cluster(cluster_config);
    store::FusionStore store(cluster, store::StoreOptions{});
    if (!store.put("taxi", file.value().bytes).isOk())
        return 1;

    // Show the metadata the cost model consumes.
    const auto &meta = file.value().metadata;
    std::printf("\nper-column compressibility (row group 0):\n");
    for (size_t c :
         {workload::kPickupTime, workload::kPickupDate,
          workload::kFareAmount, workload::kTripDistance}) {
        const auto &chunk = meta.chunk(0, c);
        std::printf("  %-16s %6.1fx (%s stored)\n",
                    meta.schema.column(c).name.c_str(),
                    chunk.compressibility(),
                    formatBytes(chunk.storedSize).c_str());
    }

    struct NamedQuery {
        const char *name;
        query::Query query;
    };
    NamedQuery queries[] = {
        {"Q3 rides in 2015 (sel 37.5%)", workload::taxiQ3("taxi", table)},
        {"Q4 avg fare Jan 2015 (sel 6.3%)",
         workload::taxiQ4("taxi", table)},
    };

    for (const auto &nq : queries) {
        auto outcome = store.query(nq.query);
        if (!outcome.isOk()) {
            std::fprintf(stderr, "query failed: %s\n",
                         outcome.status().toString().c_str());
            return 1;
        }
        const store::QueryOutcome &o = outcome.value();
        std::printf("\n%s\n  SQL: %s\n", nq.name,
                    nq.query.toString().c_str());
        std::printf("  matched %llu/%zu rows in %s; network %s\n",
                    static_cast<unsigned long long>(o.result.rowsMatched),
                    rows, formatSeconds(o.latencySeconds).c_str(),
                    formatBytes(o.networkBytes).c_str());
        std::printf("  pushdown: %zu filters in-situ, %zu projections "
                    "pushed, %zu projections fetched compressed\n",
                    o.filterChunkPushdowns, o.projectionPushdowns,
                    o.projectionFetches);
        for (const auto &col : o.result.columns) {
            if (col.isAggregate)
                std::printf("  %s = %.2f\n", col.name.c_str(),
                            col.aggregateValue);
        }
    }

    std::printf("\nCost Equation illustration (selectivity x "
                "compressibility < 1 -> push):\n");
    double q4_sel = 0.063;
    for (size_t c : {workload::kPickupDate, workload::kFareAmount}) {
        const auto &chunk = meta.chunk(0, c);
        auto d = query::decideProjectionPushdown(q4_sel, chunk);
        std::printf("  %-16s %.3f x %.1f = %.2f -> %s\n",
                    meta.schema.column(c).name.c_str(), d.selectivity,
                    d.compressibility, d.product(),
                    d.push ? "PUSH DOWN" : "FETCH COMPRESSED");
    }
    return 0;
}
