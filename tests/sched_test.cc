/**
 * @file
 * Shared-scan scheduler tests: the shared Cost Equation extension, the
 * sharded chunk-location map it leans on, cross-query dedup (shared
 * fetches, merged pushdowns, load shedding) with the sched.* metrics
 * and EXPLAIN reasons they emit, result equivalence against isolated
 * execution, wire-byte savings on overlapping batches, the async
 * QueryHandle API (reusable handles, caller tags, awaitAny harvest
 * order), the continuous admission window (pre-issue joins with the
 * "joined-inflight" EXPLAIN reason, the issue-time generation
 * boundary, mid-window conversion to shared fetch with cache
 * admission, per-node dedup stats), and the determinism contract —
 * scheduler metrics, trace and EXPLAIN output byte-identical across
 * FUSION_THREADS values, including open-loop arrivals under a crash
 * fault schedule.
 */
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "query/cost.h"
#include "query/parser.h"
#include "sched/scheduler.h"
#include "sim/cluster.h"
#include "sim/fault.h"
#include "store/fusion_store.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

namespace fusion {
namespace {

// ---------------------------------------------------------------------
// Shared Cost Equation units.
// ---------------------------------------------------------------------

format::ChunkMeta
chunkMeta(uint64_t stored, uint64_t plain)
{
    format::ChunkMeta chunk;
    chunk.storedSize = stored;
    chunk.plainSize = plain;
    return chunk;
}

TEST(SharedCostTest, PushesWhenMergedRepliesBeatOneFetch)
{
    // 3:1 compressed chunk; merged replies of 200 KB vs a 1 MB fetch.
    auto d = query::decideSharedProjectionPushdown(
        200 << 10, chunkMeta(1 << 20, 3 << 20), 0.0, 0.0);
    EXPECT_TRUE(d.push);
    EXPECT_FALSE(d.loadShed);
    EXPECT_LT(d.product(), 1.0);
}

TEST(SharedCostTest, FetchesWhenMergedRepliesExceedStoredSize)
{
    // Many consumers: summed replies outweigh fetching the chunk once.
    auto d = query::decideSharedProjectionPushdown(
        (1 << 20) + 1, chunkMeta(1 << 20, 3 << 20), 0.0, 0.0);
    EXPECT_FALSE(d.push);
    EXPECT_FALSE(d.loadShed);
}

TEST(SharedCostTest, LoadTermOverridesByteMath)
{
    auto d = query::decideSharedProjectionPushdown(
        1 << 10, chunkMeta(1 << 20, 3 << 20), /*outstanding=*/0.5,
        /*limit=*/0.1);
    EXPECT_FALSE(d.push);
    EXPECT_TRUE(d.loadShed);

    // Limit 0 disables the term entirely.
    auto open = query::decideSharedProjectionPushdown(
        1 << 10, chunkMeta(1 << 20, 3 << 20), 0.5, 0.0);
    EXPECT_TRUE(open.push);
}

TEST(SharedCostTest, MergedSelectivityIsUnionOverPlainSize)
{
    auto d = query::decideSharedProjectionPushdown(
        1 << 20, chunkMeta(3 << 20, 4 << 20), 0.0, 0.0);
    EXPECT_DOUBLE_EQ(d.mergedSelectivity, 0.25);
    EXPECT_DOUBLE_EQ(d.compressibility, 4.0 / 3.0);
}

// ---------------------------------------------------------------------
// Sharded chunk-location map.
// ---------------------------------------------------------------------

struct Rig {
    std::unique_ptr<sim::Cluster> cluster;
    std::unique_ptr<store::FusionStore> store;
    format::Table table;
};

Rig
makeRig(size_t rows = 3000, bool observe = false)
{
    Rig rig;
    sim::ClusterConfig config;
    config.numNodes = 9;
    rig.cluster = std::make_unique<sim::Cluster>(config);
    rig.store = std::make_unique<store::FusionStore>(
        *rig.cluster, store::StoreOptions{});
    if (observe) {
        rig.store->obs().tracer.setEnabled(true);
        rig.store->obs().explainEnabled = true;
    }
    auto file = workload::buildLineitemFile(rows, 7);
    FUSION_CHECK(file.isOk());
    rig.table = workload::makeLineitemTable(rows, 7); // same seed = same data
    FUSION_CHECK(rig.store->put("lineitem", file.value().bytes).isOk());
    return rig;
}

TEST(LocationShardTest, NodeShardsCoverEveryBlockExactlyOnce)
{
    Rig rig = makeRig();
    const store::ObjectManifest &m =
        *rig.store->manifest("lineitem").value();

    // Union of all per-node shards == the full placement map, and each
    // shard holds only that node's blocks.
    size_t total = 0;
    for (size_t node = 0; node < rig.cluster->numNodes(); ++node) {
        for (const auto &ref : m.blocksOnNode(node)) {
            EXPECT_EQ(m.stripeNodes[ref.stripe][ref.blockIndex], node);
            EXPECT_NE(
                rig.cluster->node(node).findBlock(
                    m.blockKey(ref.stripe, ref.blockIndex)),
                nullptr);
            ++total;
        }
    }
    size_t stored_blocks = 0;
    for (size_t node = 0; node < rig.cluster->numNodes(); ++node)
        stored_blocks += rig.cluster->node(node).blockCount();
    EXPECT_EQ(total, stored_blocks);
    // Unknown node id: empty shard, no throw.
    EXPECT_TRUE(m.blocksOnNode(10'000).empty());
}

TEST(LocationShardTest, RepairUsesShardAndRestoresAllBlocks)
{
    Rig rig = makeRig();
    const store::ObjectManifest &m =
        *rig.store->manifest("lineitem").value();
    size_t victim = m.stripeNodes[0][0];
    size_t expected = m.blocksOnNode(victim).size();
    ASSERT_GT(expected, 0u);

    rig.cluster->node(victim).wipe();
    auto rebuilt = rig.store->repairNode(victim);
    ASSERT_TRUE(rebuilt.isOk());
    EXPECT_EQ(rebuilt.value(), expected);
    // Repair is idempotent: nothing left to rebuild.
    EXPECT_EQ(rig.store->repairNode(victim).value(), 0u);
}

// ---------------------------------------------------------------------
// Scheduler behaviour.
// ---------------------------------------------------------------------

std::string
resultFingerprint(const query::QueryResult &r)
{
    std::string s = std::to_string(r.rowsMatched) + "|" +
                    std::to_string(r.rowsScanned);
    for (const auto &c : r.columns) {
        // Appended piecewise: GCC 12's -Wrestrict false-positives on
        // the temporary from `"|" + c.name` (PR 105651).
        s += "|";
        s += c.name;
        if (c.isAggregate) {
            s += "=";
            s += std::to_string(c.aggregateValue);
            continue;
        }
        s += ":";
        for (size_t i = 0; i < c.values.size(); ++i) {
            s += c.values.valueAt(i).toString();
            s += ",";
        }
    }
    return s;
}

std::vector<query::Query>
overlappingBatch(const Rig &rig, size_t clients, double overlap)
{
    // The first ceil(overlap * clients) clients issue one shared
    // template; the rest get distinct selectivities and columns.
    std::vector<query::Query> batch;
    size_t shared =
        static_cast<size_t>(overlap * static_cast<double>(clients) + 0.5);
    const format::Schema schema = workload::lineitemSchema();
    auto make = [&](size_t col, double sel) {
        return workload::microbenchQuery("lineitem",
                                         schema.column(col).name,
                                         rig.table.column(col), sel);
    };
    query::Query tmpl = make(workload::kOrderKey, 0.02);
    const size_t cols[] = {workload::kPartKey, workload::kSuppKey,
                           workload::kQuantity,
                           workload::kExtendedPrice};
    for (size_t c = 0; c < clients; ++c) {
        if (c < shared)
            batch.push_back(tmpl);
        else
            batch.push_back(make(cols[c % std::size(cols)],
                                 0.01 + 0.01 * static_cast<double>(c % 4)));
    }
    return batch;
}

uint64_t
totalWireBytes(store::ObjectStore &store)
{
    obs::MetricsRegistry &reg = store.obs().metrics;
    return reg.counter("wire.filter.request_bytes").value() +
           reg.counter("wire.filter.reply_bytes").value() +
           reg.counter("wire.projection.request_bytes").value() +
           reg.counter("wire.projection.reply_bytes").value() +
           reg.counter("wire.client.request_bytes").value() +
           reg.counter("wire.client.reply_bytes").value();
}

TEST(SchedTest, BatchResultsMatchIsolatedExecution)
{
    Rig shared_rig = makeRig();
    Rig solo_rig = makeRig(); // identical build, independent cluster

    auto batch = overlappingBatch(shared_rig, 8, 0.5);
    sched::SharedScanScheduler scheduler(*shared_rig.store);
    auto outcomes = scheduler.runBatch(batch);
    ASSERT_TRUE(outcomes.isOk());
    ASSERT_EQ(outcomes.value().size(), batch.size());

    for (size_t i = 0; i < batch.size(); ++i) {
        auto solo = solo_rig.store->query(batch[i]);
        ASSERT_TRUE(solo.isOk());
        EXPECT_EQ(resultFingerprint(outcomes.value()[i].result),
                  resultFingerprint(solo.value().result))
            << "query " << i;
    }
}

TEST(SchedTest, OverlappingBatchSavesWireBytesAndLatency)
{
    Rig shared_rig = makeRig();
    Rig serial_rig = makeRig();
    auto batch = overlappingBatch(shared_rig, 8, 0.5);

    // Serial baseline: queries one after another; per-query latency is
    // measured from batch start, i.e. cumulative completion time.
    double serial_latency_sum = 0.0, elapsed = 0.0;
    for (const auto &q : batch) {
        auto outcome = serial_rig.store->query(q);
        ASSERT_TRUE(outcome.isOk());
        elapsed += outcome.value().latencySeconds;
        serial_latency_sum += elapsed;
    }
    uint64_t serial_wire = totalWireBytes(*serial_rig.store);

    sched::SharedScanScheduler scheduler(*shared_rig.store);
    auto outcomes = scheduler.runBatch(batch);
    ASSERT_TRUE(outcomes.isOk());
    double shared_latency_sum = 0.0;
    for (const auto &outcome : outcomes.value())
        shared_latency_sum += outcome.latencySeconds;
    uint64_t shared_wire = totalWireBytes(*shared_rig.store);

    EXPECT_LT(shared_wire, serial_wire);
    EXPECT_LT(shared_latency_sum, serial_latency_sum);

    const sched::BatchStats &stats = scheduler.lastBatchStats();
    EXPECT_EQ(stats.queries, batch.size());
    EXPECT_LT(stats.tasksIssued, stats.tasksPlanned);
    EXPECT_GT(stats.sharedFetches + stats.mergedPushdowns, 0u);
    EXPECT_GT(stats.wireBytesSaved, 0u);
    EXPECT_GT(stats.makespanSeconds, 0.0);

    // The same story in the sched.* counters.
    obs::MetricsRegistry &reg = shared_rig.store->obs().metrics;
    EXPECT_EQ(reg.counter("sched.batches").value(), 1u);
    EXPECT_EQ(reg.counter("sched.queries").value(), batch.size());
    EXPECT_EQ(reg.counter("sched.tasks_issued").value(),
              stats.tasksIssued);
}

TEST(SchedTest, MergedPushdownReasonInExplain)
{
    Rig rig = makeRig(3000, /*observe=*/true);
    // Two identical selective queries: their projection pushdowns merge
    // into one storage-node task with a shared reply.
    query::Query q = workload::microbenchQuery(
        "lineitem", "l_orderkey",
        rig.table.column(workload::kOrderKey), 0.02);
    sched::SharedScanScheduler scheduler(*rig.store);
    auto outcomes = scheduler.runBatch({q, q});
    ASSERT_TRUE(outcomes.isOk());

    bool merged_reason = false;
    for (const auto &outcome : outcomes.value()) {
        ASSERT_NE(outcome.explain, nullptr);
        for (const auto &pc : outcome.explain->projections)
            if (pc.reason == "merged-pushdown") {
                merged_reason = true;
                EXPECT_EQ(pc.verdict, "push");
            }
    }
    EXPECT_TRUE(merged_reason);
    EXPECT_GT(scheduler.lastBatchStats().mergedPushdowns, 0u);
}

TEST(SchedTest, OversubscribedNodeShedsLoad)
{
    Rig rig = makeRig(3000, /*observe=*/true);
    query::Query q = workload::microbenchQuery(
        "lineitem", "l_orderkey",
        rig.table.column(workload::kOrderKey), 0.02);

    sched::SchedOptions options;
    options.nodeLoadLimitSeconds = 1e-12; // any admitted work trips it
    sched::SharedScanScheduler scheduler(*rig.store, options);
    auto outcomes = scheduler.runBatch({q, q});
    ASSERT_TRUE(outcomes.isOk());

    EXPECT_GT(scheduler.lastBatchStats().loadSheds, 0u);
    bool shed_reason = false;
    for (const auto &outcome : outcomes.value()) {
        ASSERT_NE(outcome.explain, nullptr);
        for (const auto &pc : outcome.explain->projections)
            if (pc.reason == "load-shed") {
                shed_reason = true;
                EXPECT_EQ(pc.verdict, "fetch");
            }
    }
    EXPECT_TRUE(shed_reason);
    EXPECT_GT(
        rig.store->obs().metrics.counter("sched.load_sheds").value(), 0u);
}

TEST(SchedTest, DedupDisabledIssuesEveryTask)
{
    Rig rig = makeRig();
    auto batch = overlappingBatch(rig, 4, 1.0);
    sched::SchedOptions options;
    options.dedupFetches = false;
    options.mergePushdowns = false;
    sched::SharedScanScheduler scheduler(*rig.store, options);
    auto outcomes = scheduler.runBatch(batch);
    ASSERT_TRUE(outcomes.isOk());
    const sched::BatchStats &stats = scheduler.lastBatchStats();
    EXPECT_EQ(stats.tasksIssued, stats.tasksPlanned);
    EXPECT_EQ(stats.sharedFetches, 0u);
    EXPECT_EQ(stats.mergedPushdowns, 0u);
}

// ---------------------------------------------------------------------
// Interaction with the coordinator hot-chunk cache: batches against a
// warm, cold or mixed cache stay bit-identical to isolated execution,
// and cache-resident chunks never reach the dedup machinery.
// ---------------------------------------------------------------------

Rig
makeCachedRig(uint64_t cache_bytes, size_t rows = 3000)
{
    Rig rig;
    sim::ClusterConfig config;
    config.numNodes = 9;
    rig.cluster = std::make_unique<sim::Cluster>(config);
    store::StoreOptions options;
    options.cacheBytes = cache_bytes;
    rig.store =
        std::make_unique<store::FusionStore>(*rig.cluster, options);
    auto file = workload::buildLineitemFile(rows, 7);
    FUSION_CHECK(file.isOk());
    rig.table = workload::makeLineitemTable(rows, 7);
    FUSION_CHECK(rig.store->put("lineitem", file.value().bytes).isOk());
    return rig;
}

/** Fetch-verdict query (quantity compresses well; high selectivity),
 *  so cold runs admit its chunks into the coordinator cache. */
query::Query
cacheableQuery(const Rig &rig, double selectivity = 0.8)
{
    return workload::microbenchQuery(
        "lineitem", "l_quantity",
        rig.table.column(workload::kQuantity), selectivity);
}

TEST(SchedCacheTest, WarmBatchSkipsDedupAndMatchesIsolatedExecution)
{
    const uint64_t cache_bytes = 64 << 20;
    Rig warm_rig = makeCachedRig(cache_bytes);
    Rig solo_rig = makeCachedRig(cache_bytes);
    query::Query q = cacheableQuery(warm_rig);

    // Cold pass on both rigs admits every projection chunk.
    ASSERT_TRUE(warm_rig.store->query(q).isOk());
    ASSERT_TRUE(solo_rig.store->query(q).isOk());
    ASSERT_GT(warm_rig.store->chunkCache().entryCount(), 0u);
    obs::MetricsRegistry &reg = warm_rig.store->obs().metrics;
    auto storage_wire = [&reg]() {
        return reg.counter("wire.filter.request_bytes").value() +
               reg.counter("wire.filter.reply_bytes").value() +
               reg.counter("wire.projection.request_bytes").value() +
               reg.counter("wire.projection.reply_bytes").value();
    };
    uint64_t storage_wire_before = storage_wire();

    std::vector<query::Query> batch{q, q, q, q};
    sched::SharedScanScheduler scheduler(*warm_rig.store);
    auto outcomes = scheduler.runBatch(batch);
    ASSERT_TRUE(outcomes.isOk());

    for (size_t i = 0; i < batch.size(); ++i) {
        // Every projection chunk is cache-resident: the planner emits
        // unkeyed local tasks, so nothing reaches the dedup table.
        EXPECT_GT(outcomes.value()[i].projectionCachedLocal, 0u);
        EXPECT_EQ(outcomes.value()[i].projectionFetches, 0u);
        EXPECT_EQ(outcomes.value()[i].projectionPushdowns, 0u);
        auto solo = solo_rig.store->query(q);
        ASSERT_TRUE(solo.isOk());
        EXPECT_EQ(resultFingerprint(outcomes.value()[i].result),
                  resultFingerprint(solo.value().result))
            << "query " << i;
    }
    const sched::BatchStats &stats = scheduler.lastBatchStats();
    EXPECT_EQ(stats.sharedFetches, 0u);
    EXPECT_EQ(stats.mergedPushdowns, 0u);
    // A fully warm batch moves no storage traffic at all — the only
    // wire left is the client request/reply exchange.
    EXPECT_EQ(storage_wire(), storage_wire_before);
}

TEST(SchedCacheTest, ColdBatchPopulatesCacheAndLaterMembersHit)
{
    // Serial batch planning warms the cache mid-batch: the first
    // member's fetch verdicts admit the chunks, and every later member
    // of the same batch plans them as cached-local — the dedup table
    // never even sees their movement.
    Rig rig = makeCachedRig(64 << 20);
    query::Query q = cacheableQuery(rig);
    std::vector<query::Query> batch{q, q, q, q};

    sched::SharedScanScheduler scheduler(*rig.store);
    auto outcomes = scheduler.runBatch(batch);
    ASSERT_TRUE(outcomes.isOk());
    EXPECT_GT(outcomes.value()[0].projectionFetches, 0u);
    EXPECT_EQ(outcomes.value()[0].projectionCachedLocal, 0u);
    for (size_t i = 1; i < batch.size(); ++i) {
        EXPECT_GT(outcomes.value()[i].projectionCachedLocal, 0u)
            << "batch member " << i;
        EXPECT_EQ(outcomes.value()[i].projectionFetches, 0u);
        EXPECT_EQ(resultFingerprint(outcomes.value()[i].result),
                  resultFingerprint(outcomes.value()[0].result));
    }
    EXPECT_GT(rig.store->chunkCache().entryCount(), 0u);
}

TEST(SchedCacheTest, ConvertedSharedFetchAdmitsChunksToCache)
{
    // A pusher (selective query) sharing chunks with a fetcher gets
    // converted to ride the shared fetch; the conversion admits the
    // chunk so the next batch plans it cached-local.
    Rig rig = makeCachedRig(64 << 20);
    query::Query pusher = cacheableQuery(rig, 0.02); // push verdict
    query::Query fetcher = cacheableQuery(rig, 0.8); // fetch verdict

    sched::SharedScanScheduler scheduler(*rig.store);
    auto cold = scheduler.runBatch({pusher, fetcher});
    ASSERT_TRUE(cold.isOk());
    EXPECT_GT(scheduler.lastBatchStats().fetchConversions, 0u);
    ASSERT_GT(rig.store->chunkCache().entryCount(), 0u);

    // Both queries now evaluate from the cache, even the one whose
    // Cost Equation said push — residency dominates.
    auto warm = scheduler.runBatch({pusher, fetcher});
    ASSERT_TRUE(warm.isOk());
    for (const auto &outcome : warm.value())
        EXPECT_GT(outcome.projectionCachedLocal, 0u);
    for (size_t i = 0; i < 2; ++i)
        EXPECT_EQ(resultFingerprint(warm.value()[i].result),
                  resultFingerprint(cold.value()[i].result));
}

TEST(SchedCacheTest, MixedCacheStateBatchMatchesIsolatedExecution)
{
    const uint64_t cache_bytes = 64 << 20;
    Rig mixed_rig = makeCachedRig(cache_bytes);
    Rig solo_rig = makeCachedRig(cache_bytes);

    // Warm only the quantity chunks on both rigs.
    ASSERT_TRUE(mixed_rig.store->query(cacheableQuery(mixed_rig)).isOk());
    ASSERT_TRUE(solo_rig.store->query(cacheableQuery(solo_rig)).isOk());

    // Batch mixes warm (quantity) and cold (extendedprice, orderkey)
    // queries; overlap among the cold ones still dedups.
    std::vector<query::Query> batch;
    batch.push_back(cacheableQuery(mixed_rig));
    batch.push_back(workload::microbenchQuery(
        "lineitem", "l_extendedprice",
        mixed_rig.table.column(workload::kExtendedPrice), 0.7));
    batch.push_back(batch.back());
    batch.push_back(workload::microbenchQuery(
        "lineitem", "l_orderkey",
        mixed_rig.table.column(workload::kOrderKey), 0.02));

    sched::SharedScanScheduler scheduler(*mixed_rig.store);
    auto outcomes = scheduler.runBatch(batch);
    ASSERT_TRUE(outcomes.isOk());
    EXPECT_GT(outcomes.value()[0].projectionCachedLocal, 0u);
    EXPECT_EQ(outcomes.value()[3].projectionCachedLocal, 0u);

    for (size_t i = 0; i < batch.size(); ++i) {
        auto solo = solo_rig.store->query(batch[i]);
        ASSERT_TRUE(solo.isOk());
        EXPECT_EQ(resultFingerprint(outcomes.value()[i].result),
                  resultFingerprint(solo.value().result))
            << "query " << i;
    }
}

// ---------------------------------------------------------------------
// Determinism across thread counts.
// ---------------------------------------------------------------------

struct SchedRun {
    std::string metricsJson;
    std::string traceJson;
    std::string explainJson;
};

SchedRun
runSchedWorkload(size_t threads)
{
    ThreadPool::setSharedThreads(threads);
    Rig rig = makeRig(3000, /*observe=*/true);
    auto batch = overlappingBatch(rig, 8, 0.5);
    sched::SharedScanScheduler scheduler(*rig.store);
    auto outcomes = scheduler.runBatch(batch);
    FUSION_CHECK(outcomes.isOk());

    SchedRun run;
    for (const auto &outcome : outcomes.value()) {
        FUSION_CHECK(outcome.explain != nullptr);
        run.explainJson += outcome.explain->toJson();
        run.explainJson += "\n";
    }
    run.metricsJson = rig.store->obs().metrics.snapshot().toJson();
    run.traceJson = rig.store->obs().tracer.toChromeJson("fusion");
    ThreadPool::setSharedThreads(1);
    return run;
}

TEST(SchedDeterminismTest, ByteIdenticalAcrossThreadCounts)
{
    SchedRun serial = runSchedWorkload(1);
    EXPECT_NE(serial.traceJson.find("\"shared_scan\""), std::string::npos);
    EXPECT_NE(serial.traceJson.find("\"sched_wait\""), std::string::npos);
    EXPECT_NE(serial.metricsJson.find("sched.batches"),
              std::string::npos);

    for (size_t threads : {2, 4}) {
        SchedRun other = runSchedWorkload(threads);
        EXPECT_EQ(serial.metricsJson, other.metricsJson)
            << "metrics diverged at FUSION_THREADS=" << threads;
        EXPECT_EQ(serial.traceJson, other.traceJson)
            << "trace diverged at FUSION_THREADS=" << threads;
        EXPECT_EQ(serial.explainJson, other.explainJson)
            << "EXPLAIN diverged at FUSION_THREADS=" << threads;
    }
}

TEST(SchedDeterminismTest, RepeatRunsAreByteIdentical)
{
    SchedRun a = runSchedWorkload(1);
    SchedRun b = runSchedWorkload(1);
    EXPECT_EQ(a.metricsJson, b.metricsJson);
    EXPECT_EQ(a.traceJson, b.traceJson);
    EXPECT_EQ(a.explainJson, b.explainJson);
}

// ---------------------------------------------------------------------
// Async QueryHandle API: submit / awaitAny / awaitAll, reusable
// handles with caller tags, and runBatch as a thin wrapper.
// ---------------------------------------------------------------------

TEST(AsyncHandleTest, SubmitAwaitMatchesIsolatedExecution)
{
    Rig rig = makeRig();
    Rig solo_rig = makeRig();
    auto batch = overlappingBatch(rig, 6, 0.5);

    sched::SharedScanScheduler scheduler(*rig.store);
    for (size_t i = 0; i < batch.size(); ++i) {
        sched::QueryHandle *h = scheduler.submit(batch[i], i);
        EXPECT_TRUE(h->pending());
        EXPECT_EQ(h->tag, i);
    }
    EXPECT_EQ(scheduler.inFlight(), batch.size());

    // Harvest in completion order; every tag appears exactly once and
    // each outcome is bit-identical to isolated execution.
    std::vector<bool> seen(batch.size(), false);
    size_t harvested = 0;
    double prev_done = 0.0;
    while (sched::QueryHandle *h = scheduler.awaitAny()) {
        ASSERT_TRUE(h->done());
        ASSERT_TRUE(h->status().isOk());
        ASSERT_LT(h->tag, batch.size());
        EXPECT_FALSE(seen[h->tag]);
        seen[h->tag] = true;
        EXPECT_GT(h->sojournSeconds(), 0.0);
        EXPECT_GE(h->completionSeconds(), prev_done); // FIFO harvest
        prev_done = h->completionSeconds();
        auto solo = solo_rig.store->query(batch[h->tag]);
        ASSERT_TRUE(solo.isOk());
        EXPECT_EQ(resultFingerprint(h->outcome().result),
                  resultFingerprint(solo.value().result))
            << "tag " << h->tag;
        ++harvested;
    }
    EXPECT_EQ(harvested, batch.size());
    EXPECT_EQ(scheduler.inFlight(), 0u);
}

TEST(AsyncHandleTest, IdleAwaitAndFailedSubmit)
{
    Rig rig = makeRig();
    sched::SharedScanScheduler scheduler(*rig.store);
    EXPECT_EQ(scheduler.awaitAny(), nullptr);
    scheduler.awaitAll(); // no-op on an empty window
    EXPECT_EQ(scheduler.inFlight(), 0u);

    // A statement that cannot be parsed completes its handle
    // immediately with the error; nothing enters the window.
    sched::QueryHandle *bad = scheduler.submitSql("NOT SQL", 99);
    ASSERT_NE(bad, nullptr);
    EXPECT_TRUE(bad->done());
    EXPECT_FALSE(bad->status().isOk());
    EXPECT_EQ(bad->tag, 99u);
    EXPECT_EQ(scheduler.inFlight(), 0u);
    EXPECT_EQ(scheduler.awaitAny(), bad);
}

TEST(AsyncHandleTest, HandleReuseAfterCompletion)
{
    Rig rig = makeRig();
    Rig solo_rig = makeRig();
    query::Query q1 = workload::microbenchQuery(
        "lineitem", "l_orderkey",
        rig.table.column(workload::kOrderKey), 0.02);
    query::Query q2 = workload::microbenchQuery(
        "lineitem", "l_partkey",
        rig.table.column(workload::kPartKey), 0.03);

    sched::SharedScanScheduler scheduler(*rig.store);
    sched::QueryHandle *h1 = scheduler.submit(q1, 11);
    scheduler.awaitAll();
    EXPECT_TRUE(h1->done());
    EXPECT_EQ(scheduler.completedPending(), 1u);
    EXPECT_EQ(scheduler.awaitAny(), h1);

    // The harvested handle is recycled by the next submit; its state
    // and tag are overwritten for the new query.
    sched::QueryHandle *h2 = scheduler.submit(q2, 22);
    EXPECT_EQ(h2, h1);
    EXPECT_TRUE(h2->pending());
    EXPECT_EQ(h2->tag, 22u);
    EXPECT_EQ(scheduler.awaitAny(), h2);
    EXPECT_TRUE(h2->done());
    auto solo = solo_rig.store->query(q2);
    ASSERT_TRUE(solo.isOk());
    EXPECT_EQ(resultFingerprint(h2->outcome().result),
              resultFingerprint(solo.value().result));
}

TEST(AsyncHandleTest, RunBatchIsAWrapperOverSubmitAwaitAll)
{
    Rig batch_rig = makeRig();
    Rig async_rig = makeRig();
    auto batch = overlappingBatch(batch_rig, 8, 0.5);

    sched::SharedScanScheduler batch_sched(*batch_rig.store);
    auto outcomes = batch_sched.runBatch(batch);
    ASSERT_TRUE(outcomes.isOk());

    sched::SharedScanScheduler async_sched(*async_rig.store);
    std::vector<sched::QueryHandle *> handles;
    for (size_t i = 0; i < batch.size(); ++i)
        handles.push_back(async_sched.submit(batch[i], i));
    async_sched.awaitAll();

    for (size_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ(resultFingerprint(handles[i]->outcome().result),
                  resultFingerprint(outcomes.value()[i].result))
            << "query " << i;
    const sched::BatchStats &a = batch_sched.lastBatchStats();
    const sched::BatchStats &b = async_sched.windowStats();
    EXPECT_EQ(a.tasksPlanned, b.tasksPlanned);
    EXPECT_EQ(a.tasksIssued, b.tasksIssued);
    EXPECT_EQ(a.sharedFetches, b.sharedFetches);
    EXPECT_EQ(a.mergedPushdowns, b.mergedPushdowns);
    EXPECT_EQ(a.wireBytesSaved, b.wireBytesSaved);
}

// ---------------------------------------------------------------------
// Continuous admission window: pre-issue joins, the issue boundary,
// conversion in place mid-window, and per-node dedup accounting.
// ---------------------------------------------------------------------

TEST(AdmissionWindowTest, LateArrivalJoinsPendingChunkEntry)
{
    Rig rig = makeRig(3000, /*observe=*/true);
    Rig solo_rig = makeRig();
    query::Query q = workload::microbenchQuery(
        "lineitem", "l_orderkey",
        rig.table.column(workload::kOrderKey), 0.02);

    // The second query arrives 100 us in — while the first query's
    // client request is still on the wire, so its planned chunk work
    // is pending (not yet issued) and the late arrival joins it.
    sched::SharedScanScheduler scheduler(*rig.store);
    sched::QueryHandle *h1 = scheduler.submit(q, 1);
    sched::QueryHandle *h2 = nullptr;
    rig.cluster->engine().scheduleAt(
        1e-4, [&scheduler, &q, &h2]() { h2 = scheduler.submit(q, 2); });
    scheduler.awaitAll();
    ASSERT_NE(h2, nullptr);
    ASSERT_TRUE(h1->done() && h2->done());
    EXPECT_GT(h2->submitSeconds(), h1->submitSeconds());

    const sched::BatchStats &stats = scheduler.windowStats();
    EXPECT_GT(stats.joinedInflight, 0u);
    EXPECT_GT(stats.mergedPushdowns, 0u); // absorbed at demand time
    EXPECT_GT(stats.wireBytesSaved, 0u);

    // The late joiner's EXPLAIN says so; the creator keeps the
    // closed-batch reason.
    ASSERT_NE(h2->outcome().explain, nullptr);
    bool joined_reason = false;
    for (const auto &pc : h2->outcome().explain->projections)
        if (pc.reason == "joined-inflight") {
            joined_reason = true;
            EXPECT_EQ(pc.verdict, "push");
        }
    EXPECT_TRUE(joined_reason);
    ASSERT_NE(h1->outcome().explain, nullptr);
    for (const auto &pc : h1->outcome().explain->projections)
        EXPECT_NE(pc.reason, "joined-inflight");

    // Joining never changes results.
    auto solo = solo_rig.store->query(q);
    ASSERT_TRUE(solo.isOk());
    for (sched::QueryHandle *h : {h1, h2})
        EXPECT_EQ(resultFingerprint(h->outcome().result),
                  resultFingerprint(solo.value().result));

    // Satellite observability: queue-wait histogram and window spans.
    std::string metrics =
        rig.store->obs().metrics.snapshot().toJson();
    EXPECT_NE(metrics.find("sched.queue_wait_seconds"),
              std::string::npos);
    EXPECT_NE(metrics.find("sched.joined_inflight"), std::string::npos);
    std::string trace = rig.store->obs().tracer.toChromeJson("fusion");
    EXPECT_NE(trace.find("\"admission_window\""), std::string::npos);
    EXPECT_NE(trace.find("\"handle_await\""), std::string::npos);
}

TEST(AdmissionWindowTest, ArrivalAfterIssueStartsNewGeneration)
{
    Rig rig = makeRig();
    query::Query q = workload::microbenchQuery(
        "lineitem", "l_orderkey",
        rig.table.column(workload::kOrderKey), 0.02);

    sched::SharedScanScheduler scheduler(*rig.store);
    sched::QueryHandle *h1 = scheduler.submit(q, 1);
    scheduler.awaitAll();
    const sched::BatchStats first = scheduler.windowStats();
    EXPECT_GT(first.tasksIssued, 0u);

    // Same query after every transfer issued and completed: nothing to
    // join — every task issues again as a fresh generation.
    sched::QueryHandle *h2 = scheduler.submit(q, 2);
    scheduler.awaitAll();
    const sched::BatchStats &second = scheduler.windowStats();
    EXPECT_EQ(second.tasksIssued, 2 * first.tasksIssued);
    EXPECT_EQ(second.mergedPushdowns, first.mergedPushdowns);
    EXPECT_EQ(second.sharedFetches, first.sharedFetches);
    EXPECT_EQ(second.joinedInflight, 0u);
    EXPECT_EQ(second.wireBytesSaved, first.wireBytesSaved);
    EXPECT_EQ(resultFingerprint(h1->outcome().result),
              resultFingerprint(h2->outcome().result));
}

TEST(AdmissionWindowTest, ConvertToSharedFetchMidWindow)
{
    Rig rig = makeCachedRig(64 << 20);
    rig.store->obs().explainEnabled = true;
    Rig solo_rig = makeCachedRig(64 << 20);
    query::Query pusher = cacheableQuery(rig, 0.02); // push verdict
    query::Query fetcher = cacheableQuery(rig, 0.8); // fetch verdict
    query::Query later = cacheableQuery(rig, 0.5);

    // The pusher is admitted alone (its chunks stay pushdowns); the
    // fetcher arrives mid-window and fetches the same chunks whole, so
    // the pending pushdowns convert in place to ride the shared fetch,
    // admitting the chunk bytes into the hot-chunk cache. The third
    // arrival then plans entirely cached-local.
    sched::SharedScanScheduler scheduler(*rig.store);
    sched::QueryHandle *hp = scheduler.submit(pusher, 1);
    sched::QueryHandle *hf = nullptr;
    sched::QueryHandle *hl = nullptr;
    sim::SimEngine &engine = rig.cluster->engine();
    engine.scheduleAt(1e-4, [&scheduler, &fetcher, &hf]() {
        hf = scheduler.submit(fetcher, 2);
    });
    engine.scheduleAt(2e-4, [&scheduler, &later, &hl]() {
        hl = scheduler.submit(later, 3);
    });
    scheduler.awaitAll();
    ASSERT_NE(hf, nullptr);
    ASSERT_NE(hl, nullptr);

    const sched::BatchStats &stats = scheduler.windowStats();
    EXPECT_GT(stats.fetchConversions, 0u);
    EXPECT_GT(stats.joinedInflight, 0u);

    // Every pending pushdown of the first query flipped to a fetch.
    EXPECT_EQ(hp->outcome().projectionPushdowns, 0u);
    EXPECT_GT(hp->outcome().projectionFetches, 0u);
    ASSERT_NE(hp->outcome().explain, nullptr);
    bool converted_reason = false;
    for (const auto &pc : hp->outcome().explain->projections)
        if (pc.reason == "shared-fetch") {
            converted_reason = true;
            EXPECT_EQ(pc.verdict, "fetch");
        }
    EXPECT_TRUE(converted_reason);
    ASSERT_NE(hf->outcome().explain, nullptr);
    bool joined_reason = false;
    for (const auto &pc : hf->outcome().explain->projections)
        if (pc.reason == "joined-inflight")
            joined_reason = true;
    EXPECT_TRUE(joined_reason);

    // Conversion landed the chunk bytes in the cache mid-stream.
    EXPECT_GT(rig.store->chunkCache().admissions(), 0u);
    EXPECT_GT(rig.store->chunkCache().entryCount(), 0u);
    EXPECT_GT(hl->outcome().projectionCachedLocal, 0u);

    for (sched::QueryHandle *h : {hp, hf, hl}) {
        auto solo = solo_rig.store->query(
            h == hp ? pusher : (h == hf ? fetcher : later));
        ASSERT_TRUE(solo.isOk());
        EXPECT_EQ(resultFingerprint(h->outcome().result),
                  resultFingerprint(solo.value().result));
    }
}

TEST(AdmissionWindowTest, PerNodeDedupStats)
{
    Rig rig = makeRig();
    auto batch = overlappingBatch(rig, 8, 0.5);
    sched::SharedScanScheduler scheduler(*rig.store);
    ASSERT_TRUE(scheduler.runBatch(batch).isOk());

    const sched::BatchStats &stats = scheduler.lastBatchStats();
    ASSERT_FALSE(stats.perNode.empty());
    size_t planned = 0, issued = 0;
    bool some_node_dedups = false;
    for (const auto &[node, ns] : stats.perNode) {
        planned += ns.tasksPlanned;
        issued += ns.tasksIssued;
        EXPECT_LE(ns.tasksIssued, ns.tasksPlanned) << "node " << node;
        if (ns.dedupRate() > 0.0)
            some_node_dedups = true;
    }
    EXPECT_EQ(planned, stats.tasksPlanned);
    EXPECT_EQ(issued, stats.tasksIssued);
    EXPECT_TRUE(some_node_dedups);
    EXPECT_GT(stats.dedupRate(), 0.0);
    EXPECT_LT(stats.dedupRate(), 1.0);
}

// ---------------------------------------------------------------------
// Open-loop determinism: staggered arrivals under a crash fault
// schedule stay byte-identical across FUSION_THREADS values, and every
// result stays bit-identical to isolated execution.
// ---------------------------------------------------------------------

struct OpenLoopRun {
    std::string order; // tag@completion:fingerprint lines
    std::map<uint64_t, std::string> fingerprints;
    std::string metricsJson;
    std::string traceJson;
    std::string explainJson;
};

OpenLoopRun
runOpenLoopWorkload(size_t threads)
{
    ThreadPool::setSharedThreads(threads);
    Rig rig = makeRig(3000, /*observe=*/true);

    // Node 3 crashes while arrivals are still streaming in and comes
    // back after the window drains: later arrivals plan degraded
    // (reconstruction) paths, earlier in-flight work keeps going.
    sim::FaultSchedule schedule;
    schedule.crashAt(0.0015, 3).reviveAt(0.02, 3);
    sim::FaultInjector faults(*rig.cluster, schedule);
    faults.arm();

    auto batch = overlappingBatch(rig, 6, 0.5);
    sched::SharedScanScheduler scheduler(*rig.store);
    sim::SimEngine &engine = rig.cluster->engine();
    for (size_t i = 0; i < batch.size(); ++i)
        engine.scheduleAt(5e-4 * static_cast<double>(i),
                          [&scheduler, &batch, i]() {
                              scheduler.submit(batch[i], i);
                          });
    scheduler.awaitAll();

    OpenLoopRun run;
    while (sched::QueryHandle *h = scheduler.awaitAny()) {
        FUSION_CHECK(h->status().isOk());
        std::string fp = resultFingerprint(h->outcome().result);
        run.order += std::to_string(h->tag) + "@" +
                     std::to_string(h->completionSeconds()) + ":" + fp +
                     "\n";
        run.fingerprints[h->tag] = fp;
        if (h->outcome().explain != nullptr) {
            run.explainJson += h->outcome().explain->toJson();
            run.explainJson += "\n";
        }
    }
    run.metricsJson = rig.store->obs().metrics.snapshot().toJson();
    run.traceJson = rig.store->obs().tracer.toChromeJson("fusion");
    ThreadPool::setSharedThreads(1);
    return run;
}

TEST(OpenLoopDeterminismTest, CrashScheduleByteIdenticalAcrossThreads)
{
    OpenLoopRun serial = runOpenLoopWorkload(1);
    EXPECT_NE(serial.metricsJson.find("sched.queue_wait_seconds"),
              std::string::npos);
    EXPECT_NE(serial.traceJson.find("\"admission_window\""),
              std::string::npos);
    EXPECT_NE(serial.traceJson.find("\"handle_await\""),
              std::string::npos);
    EXPECT_EQ(serial.fingerprints.size(), 6u);

    for (size_t threads : {2, 4}) {
        OpenLoopRun other = runOpenLoopWorkload(threads);
        EXPECT_EQ(serial.order, other.order)
            << "completion order diverged at FUSION_THREADS=" << threads;
        EXPECT_EQ(serial.metricsJson, other.metricsJson)
            << "metrics diverged at FUSION_THREADS=" << threads;
        EXPECT_EQ(serial.traceJson, other.traceJson)
            << "trace diverged at FUSION_THREADS=" << threads;
        EXPECT_EQ(serial.explainJson, other.explainJson)
            << "EXPLAIN diverged at FUSION_THREADS=" << threads;
    }
    OpenLoopRun repeat = runOpenLoopWorkload(1);
    EXPECT_EQ(serial.order, repeat.order);
    EXPECT_EQ(serial.traceJson, repeat.traceJson);
}

TEST(OpenLoopDeterminismTest, ResultsMatchIsolatedExecution)
{
    OpenLoopRun run = runOpenLoopWorkload(1);
    Rig solo_rig = makeRig();
    auto batch = overlappingBatch(solo_rig, 6, 0.5);
    for (size_t i = 0; i < batch.size(); ++i) {
        auto solo = solo_rig.store->query(batch[i]);
        ASSERT_TRUE(solo.isOk());
        ASSERT_TRUE(run.fingerprints.count(i)) << "tag " << i;
        EXPECT_EQ(run.fingerprints[i],
                  resultFingerprint(solo.value().result))
            << "tag " << i;
    }
}

} // namespace
} // namespace fusion
