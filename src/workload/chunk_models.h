/**
 * @file
 * Paper-scale column-chunk size models. The placement and overhead
 * experiments (Figs 4a, 4d, 12, 16a-c) depend only on the list of chunk
 * sizes, so they run at the paper's full scale (GB files, MB chunks)
 * using models calibrated to the numbers the paper reports, instead of
 * materializing gigabytes of data.
 */
#ifndef FUSION_WORKLOAD_CHUNK_MODELS_H
#define FUSION_WORKLOAD_CHUNK_MODELS_H

#include <vector>

#include "common/random.h"
#include "fac/layout.h"

namespace fusion::workload {

/**
 * TPC-H lineitem at SF ~10: 16 columns x 10 row groups = 160 chunks,
 * ~10 GB total. Per-column mean chunk sizes come from paper Fig 12
 * (MB): 48, 148, 60, 7, 23, 173, 15, 15, 7, 4, 45, 45, 45, 8, 11, 386.
 */
std::vector<fac::ChunkExtent> lineitemChunkModel(uint64_t seed);

/** NYC taxi: 20 columns x 16 row groups = 320 chunks, ~8.4 GB, fairly
 *  uniform sizes (paper Fig 4c). */
std::vector<fac::ChunkExtent> taxiChunkModel(uint64_t seed);

/** recipeNLG: 7 columns x 12 row groups = 84 chunks, ~0.98 GB,
 *  dominated by the three long-text columns. */
std::vector<fac::ChunkExtent> recipeChunkModel(uint64_t seed);

/** UK property prices: 16 columns x 15 row groups = 240 chunks,
 *  ~1.5 GB, skewed toward the identifier/text columns. */
std::vector<fac::ChunkExtent> ukppChunkModel(uint64_t seed);

/** Synthetic model for Fig 16a: `count` chunks with sizes in
 *  [1 MB, 100 MB] drawn Zipf(theta) over a linear size grid. */
std::vector<fac::ChunkExtent> zipfChunkModel(size_t count, double theta,
                                             uint64_t seed);

/** Sum of chunk sizes. */
uint64_t modelTotalBytes(const std::vector<fac::ChunkExtent> &chunks);

} // namespace fusion::workload

#endif // FUSION_WORKLOAD_CHUNK_MODELS_H
