/**
 * @file
 * RLE / bit-packed hybrid encoding for fixed-width unsigned values,
 * modeled on the Parquet RLE encoding. A stream is a sequence of runs:
 *
 *   header = varint;
 *   header & 1 == 0 : RLE run, (header >> 1) repetitions of one value
 *                     stored in ceil(width/8) little-endian bytes;
 *   header & 1 == 1 : bit-packed run of exactly (header >> 1) literal
 *                     values at the stream's bit width, padded to a
 *                     byte boundary.
 *
 * Unlike Parquet, literal runs carry an exact value count (not a count
 * of 8-value groups), so mid-stream literal runs of any length decode
 * unambiguously. The decoder also takes the expected total value count
 * as a cross-check against corrupt headers.
 */
#ifndef FUSION_CODEC_RLE_H
#define FUSION_CODEC_RLE_H

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace fusion::codec {

/** Encodes `values`, each fitting in `width` bits, to an RLE stream. */
Bytes rleEncode(const std::vector<uint64_t> &values, int width);

/** Decodes exactly `count` values at `width` bits from an RLE stream. */
Result<std::vector<uint64_t>> rleDecode(Slice input, int width, size_t count);

} // namespace fusion::codec

#endif // FUSION_CODEC_RLE_H
