# Empty dependencies file for bench_fig10a_oracle.
# This may be replaced when dependencies are built.
