# Empty dependencies file for fusion_fac.
# This may be replaced when dependencies are built.
