/**
 * @file
 * Reproduces paper Figs 13a/13b: p50 and p99 latency reduction of
 * Fusion vs the baseline for the 1%-selectivity microbenchmark on each
 * of the 16 lineitem columns. Paper: up to 65%/81% on the large,
 * frequently split columns (0, 1, 2, 5, 15); modest gains on small
 * highly-compressed columns (3, 4, 9, 10, 11).
 */
#include "benchutil/rigs.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

using namespace fusion;
using namespace fusion::benchutil;

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    banner("Fig 13a/13b", "p50/p99 latency reduction per lineitem column");

    RigOptions options;
    options.rows = 60000;
    options.copies = 4;
    StorePair pair = makeStorePair(Dataset::kLineitem, options);

    RunConfig config;
    config.totalQueries = 300;

    TablePrinter table({"column id", "name", "p50 reduction (%)",
                        "p99 reduction (%)", "traffic x lower"});
    const format::Schema schema = workload::lineitemSchema();
    for (size_t c = 0; c < schema.numColumns(); ++c) {
        query::Query q = workload::microbenchQuery(
            "x", schema.column(c).name, pair.table.column(c), 0.01);
        Comparison cmp = compareStores(pair, config,
                                       [&](size_t) { return q; });
        table.addRow({std::to_string(c), schema.column(c).name,
                      fmt("%.1f", cmp.p50ReductionPct()),
                      fmt("%.1f", cmp.p99ReductionPct()),
                      fmt("%.1f", cmp.trafficRatio())});
    }
    table.print();
    std::printf("\npaper: biggest wins on large/split columns "
                "(c0,c1,c2,c5,c15); modest on tiny compressed columns "
                "(c3,c4,c9,c10,c11)\n");
    return 0;
}
