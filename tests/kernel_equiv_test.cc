/**
 * @file
 * Equivalence tests for the performance layer. The optimized kernels —
 * split-table / SIMD GF(256) multiply-accumulate, tiled+pooled
 * Reed-Solomon, and the word-wise typed predicate/select/aggregate
 * kernels — must be bit-identical to their simple reference
 * implementations on every input, including unaligned lengths, zero
 * coefficients, NaN doubles, and empty columns. The thread pool must
 * leave all simulated-time query results and FaultStats unchanged for
 * any FUSION_THREADS value.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>

#include "common/random.h"
#include "common/thread_pool.h"
#include "ec/reed_solomon.h"
#include "query/eval.h"
#include "query/parser.h"
#include "sim/fault.h"
#include "store/fusion_store.h"
#include "workload/lineitem.h"

namespace fusion {
namespace {

using ec::Gf256;
using ec::SimdLevel;
using format::ColumnData;
using format::PhysicalType;
using format::Value;
using query::Bitmap;
using query::CompareOp;

// ---------------------------------------------------------------------
// GF(256) multiply-accumulate: every kernel vs the log/exp reference.
// ---------------------------------------------------------------------

void
referenceMulAccumulate(uint8_t *dst, const uint8_t *src, size_t len,
                       uint8_t c)
{
    const Gf256 &gf = Gf256::instance();
    for (size_t i = 0; i < len; ++i)
        dst[i] = gf.add(dst[i], gf.mul(c, src[i]));
}

TEST(GfKernelTest, AllLevelsMatchReferenceOnUnalignedLengths)
{
    const Gf256 &gf = Gf256::instance();
    Rng rng(2024);
    const SimdLevel levels[] = {SimdLevel::kScalar, SimdLevel::kSsse3,
                                SimdLevel::kAvx2};
    const uint8_t coeffs[] = {0, 1, 2, 3, 0x57, 0x8e, 0xff};

    for (size_t len = 0; len <= 64; ++len) {
        for (uint8_t c : coeffs) {
            Bytes src(len), base(len);
            for (auto &b : src)
                b = static_cast<uint8_t>(rng.next());
            for (auto &b : base)
                b = static_cast<uint8_t>(rng.next());

            Bytes expect = base;
            referenceMulAccumulate(expect.data(), src.data(), len, c);
            for (SimdLevel level : levels) {
                Bytes got = base;
                gf.mulAccumulate(got.data(), src.data(), len, c, level);
                ASSERT_EQ(got, expect)
                    << "len=" << len << " c=" << int(c) << " level="
                    << ec::simdLevelName(level);
            }
        }
    }
}

TEST(GfKernelTest, LargeRandomBuffersMatchAcrossLevels)
{
    const Gf256 &gf = Gf256::instance();
    Rng rng(7);
    // Odd length: exercises the 64/32/16-byte main loops plus tails.
    const size_t len = (1 << 16) + 37;
    Bytes src(len), base(len);
    for (auto &b : src)
        b = static_cast<uint8_t>(rng.next());
    for (auto &b : base)
        b = static_cast<uint8_t>(rng.next());

    for (int trial = 0; trial < 16; ++trial) {
        uint8_t c = static_cast<uint8_t>(rng.next());
        Bytes expect = base;
        referenceMulAccumulate(expect.data(), src.data(), len, c);
        for (SimdLevel level :
             {SimdLevel::kScalar, SimdLevel::kSsse3, SimdLevel::kAvx2}) {
            Bytes got = base;
            gf.mulAccumulate(got.data(), src.data(), len, c, level);
            ASSERT_EQ(got, expect) << "c=" << int(c);
        }
    }
}

TEST(GfKernelTest, MulTableAgreesWithLogExpArithmetic)
{
    const Gf256 &gf = Gf256::instance();
    for (int a = 0; a < 256; ++a) {
        // mul via the dense table must satisfy the field axioms the
        // exp/log implementation guarantees.
        ASSERT_EQ(gf.mul(static_cast<uint8_t>(a), 0), 0);
        ASSERT_EQ(gf.mul(0, static_cast<uint8_t>(a)), 0);
        ASSERT_EQ(gf.mul(static_cast<uint8_t>(a), 1), a);
        if (a != 0) {
            ASSERT_EQ(gf.mul(static_cast<uint8_t>(a),
                             gf.inv(static_cast<uint8_t>(a))),
                      1);
        }
    }
}

TEST(GfKernelTest, RsRoundTripsAtUnalignedBlockSizes)
{
    auto rs = ec::ReedSolomon::create(9, 6).value();
    Rng rng(99);
    for (size_t base_len : {0, 1, 13, 63, 64, 1000, 32769}) {
        std::vector<Bytes> blocks(6);
        for (size_t j = 0; j < blocks.size(); ++j) {
            // Variable sizes around base_len exercise zero-extension.
            size_t len = base_len + j;
            blocks[j].resize(len);
            for (auto &b : blocks[j])
                b = static_cast<uint8_t>(rng.next());
        }
        auto stripe = ec::encodeStripe(rs, blocks).value();

        std::vector<std::optional<Bytes>> shards;
        for (const auto &block : stripe.blocks)
            shards.emplace_back(block);
        // Erase three shards: two data (zero-extended on entry), one
        // parity.
        for (size_t victim : {1, 4, 7})
            shards[victim] = std::nullopt;
        for (size_t j = 0; j < 6; ++j)
            if (shards[j].has_value())
                shards[j]->resize(stripe.blockSize, 0);

        auto data = ec::recoverStripeData(rs, std::move(shards),
                                          stripe.dataSizes,
                                          stripe.blockSize);
        ASSERT_TRUE(data.isOk()) << data.status().toString();
        for (size_t j = 0; j < blocks.size(); ++j)
            ASSERT_EQ(data.value()[j], blocks[j]) << "block " << j;
    }
}

// ---------------------------------------------------------------------
// Typed predicate kernels vs the boxed compareValues reference.
// ---------------------------------------------------------------------

const CompareOp kAllOps[] = {CompareOp::kLt, CompareOp::kLe,
                             CompareOp::kGt, CompareOp::kGe,
                             CompareOp::kEq, CompareOp::kNe};

void
expectKernelMatchesReference(const ColumnData &col, const Value &lit)
{
    for (CompareOp op : kAllOps) {
        auto fast = query::evalPredicate(col, op, lit);
        auto ref = query::evalPredicateReference(col, op, lit);
        ASSERT_EQ(fast.isOk(), ref.isOk());
        if (!fast.isOk())
            continue;
        ASSERT_TRUE(fast.value() == ref.value())
            << "op=" << query::compareOpName(op)
            << " lit=" << lit.toString() << " rows=" << col.size();
    }
}

TEST(PredicateKernelTest, IntColumnsMatchReferenceAtWordBoundaries)
{
    Rng rng(1);
    // Sizes straddling the 64-row word boundary and beyond.
    for (size_t rows : {0, 1, 63, 64, 65, 127, 128, 130, 1000}) {
        ColumnData i32(PhysicalType::kInt32);
        ColumnData i64(PhysicalType::kInt64);
        for (size_t i = 0; i < rows; ++i) {
            i32.append(static_cast<int32_t>(rng.uniformInt(-50, 50)));
            i64.append(rng.uniformInt(-50, 50));
        }
        for (int64_t lit : {-100, -50, -1, 0, 7, 50, 100}) {
            expectKernelMatchesReference(i32, Value(lit));
            expectKernelMatchesReference(i64, Value(lit));
            // Fractional double literal against integer columns.
            expectKernelMatchesReference(
                i32, Value(static_cast<double>(lit) + 0.5));
            expectKernelMatchesReference(
                i64, Value(static_cast<double>(lit) + 0.5));
        }
    }
}

TEST(PredicateKernelTest, DoubleColumnsHandleNanAndSignedZero)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    ColumnData col(PhysicalType::kDouble);
    Rng rng(5);
    for (size_t i = 0; i < 200; ++i)
        col.append(rng.uniformReal(-1.0, 1.0));
    col.append(nan);
    col.append(-0.0);
    col.append(0.0);
    col.append(inf);
    col.append(-inf);
    col.append(nan);

    for (double lit : {-0.5, 0.0, -0.0, 0.5, inf, -inf, nan})
        expectKernelMatchesReference(col, Value(lit));
}

TEST(PredicateKernelTest, StringColumnsMatchReference)
{
    Rng rng(11);
    ColumnData col(PhysicalType::kString);
    for (size_t i = 0; i < 150; ++i)
        col.append(randomString(rng, rng.uniformInt(0, 8)));
    col.append(std::string());
    for (const char *lit : {"", "a", "mmmm", "zzzzzzzzz"})
        expectKernelMatchesReference(col, Value(std::string(lit)));
}

TEST(PredicateKernelTest, IncompatibleLiteralStillRejected)
{
    ColumnData col(PhysicalType::kInt64);
    col.append(int64_t{1});
    auto r = query::evalPredicate(col, CompareOp::kEq,
                                  Value(std::string("x")));
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SelectKernelTest, WordWiseGatherMatchesNaiveSelection)
{
    Rng rng(3);
    for (size_t rows : {0, 1, 64, 65, 200, 1000}) {
        ColumnData col(PhysicalType::kInt64);
        for (size_t i = 0; i < rows; ++i)
            col.append(rng.uniformInt(0, 1 << 20));
        Bitmap bits(rows);
        for (size_t i = 0; i < rows; ++i)
            if (rng.chance(0.3))
                bits.set(i);

        ColumnData expect(PhysicalType::kInt64);
        for (size_t i = 0; i < rows; ++i)
            if (bits.test(i))
                expect.append(col.int64s()[i]);
        EXPECT_TRUE(query::selectRows(col, bits) == expect);
    }
    // Dense and empty selections.
    ColumnData strs(PhysicalType::kString);
    for (size_t i = 0; i < 130; ++i)
        strs.append(randomString(rng, 4));
    EXPECT_TRUE(query::selectRows(strs, Bitmap(130, true)) == strs);
    EXPECT_TRUE(query::selectRows(strs, Bitmap(130, false)) ==
                ColumnData(PhysicalType::kString));
}

TEST(AggregateKernelTest, TypedReductionMatchesBoxedLoop)
{
    Rng rng(13);
    ColumnData col(PhysicalType::kDouble);
    for (size_t i = 0; i < 500; ++i)
        col.append(rng.uniformReal(-10.0, 10.0));

    auto boxed = [&](query::AggregateKind kind) {
        double sum = 0.0, mn = 0.0, mx = 0.0;
        bool first = true;
        for (size_t i = 0; i < col.size(); ++i) {
            double v = col.valueAt(i).numeric();
            sum += v;
            if (first || v < mn)
                mn = v;
            if (first || v > mx)
                mx = v;
            first = false;
        }
        switch (kind) {
          case query::AggregateKind::kSum: return sum;
          case query::AggregateKind::kAvg:
            return sum / static_cast<double>(col.size());
          case query::AggregateKind::kMin: return mn;
          case query::AggregateKind::kMax: return mx;
          default: return 0.0;
        }
    };
    for (auto kind : {query::AggregateKind::kSum,
                      query::AggregateKind::kAvg,
                      query::AggregateKind::kMin,
                      query::AggregateKind::kMax}) {
        auto fast = query::computeAggregate(kind, col);
        ASSERT_TRUE(fast.isOk());
        // Identical iteration order ⇒ bit-identical doubles.
        EXPECT_EQ(fast.value(), boxed(kind));
    }
}

// ---------------------------------------------------------------------
// Thread pool: correctness and the simulator determinism contract.
// ---------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce)
{
    for (size_t threads : {1, 2, 4, 8}) {
        ThreadPool pool(threads);
        const size_t kCount = 10'000;
        // Test scaffolding counts raw visits, not instrumentation.
        // fusion-lint: allow(raw-atomic)
        std::vector<std::atomic<int>> hits(kCount);
        pool.parallelFor(0, kCount,
                         [&](size_t i) { hits[i].fetch_add(1); });
        for (size_t i = 0; i < kCount; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i;
        // Empty and single-index ranges.
        pool.parallelFor(5, 5, [](size_t) { FAIL(); });
        std::atomic<int> one{0}; // fusion-lint: allow(raw-atomic)
        pool.parallelFor(41, 42, [&](size_t i) {
            EXPECT_EQ(i, 41u);
            one.fetch_add(1);
        });
        EXPECT_EQ(one.load(), 1);
    }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    std::atomic<int> total{0}; // fusion-lint: allow(raw-atomic)
    pool.parallelFor(0, 8, [&](size_t) {
        // Nested call from a worker must degrade to serial, not hang.
        ThreadPool::shared().parallelFor(0, 16,
                                         [&](size_t) { total++; });
    });
    EXPECT_EQ(total.load(), 8 * 16);
}

struct DeterminismRun {
    std::vector<query::QueryResult> results;
    store::ObjectStore::FaultStats faults;
    double simSeconds = 0.0;
};

DeterminismRun
runWorkload(size_t threads)
{
    ThreadPool::setSharedThreads(threads);

    sim::ClusterConfig config;
    config.numNodes = 9;
    sim::Cluster cluster(config);
    store::FusionStore store(cluster, {});
    auto file = workload::buildLineitemFile(3000, 7);
    FUSION_CHECK(file.isOk());
    FUSION_CHECK(store.put("lineitem", file.value().bytes).isOk());

    // A node crashes mid-workload and comes back: exercises retry,
    // reconstruction and pushdown fallback under the thread pool.
    sim::FaultSchedule schedule;
    schedule.crashAt(0.01, 3).reviveAt(0.2, 3);
    sim::FaultInjector faults(cluster, schedule);
    faults.arm();

    const char *sqls[] = {
        "SELECT l_orderkey FROM lineitem WHERE l_quantity < 10",
        "SELECT SUM(l_extendedprice), COUNT(*) FROM lineitem "
        "WHERE l_discount < 0.05",
        "SELECT * FROM lineitem WHERE l_orderkey < 50",
        "SELECT l_comment FROM lineitem WHERE l_extendedprice < 15000",
    };
    DeterminismRun run;
    sim::SimEngine &engine = cluster.engine();
    std::vector<std::optional<Result<store::QueryOutcome>>> captured(
        std::size(sqls));
    for (size_t i = 0; i < std::size(sqls); ++i) {
        auto q = query::parseQuery(sqls[i]);
        FUSION_CHECK(q.isOk());
        engine.scheduleAt(0.02 * static_cast<double>(i),
                          [&store, &captured, i, q]() {
                              store.queryAsync(
                                  q.value(),
                                  [&captured,
                                   i](Result<store::QueryOutcome> o) {
                                      captured[i].emplace(std::move(o));
                                  });
                          });
    }
    engine.run();
    for (auto &outcome : captured) {
        FUSION_CHECK(outcome.has_value());
        FUSION_CHECK(outcome->isOk());
        run.results.push_back(outcome->value().result);
    }
    run.faults = store.faultStats();
    run.simSeconds = engine.now();
    ThreadPool::setSharedThreads(1);
    return run;
}

// Acceptance: repeated runs with FUSION_THREADS > 1 leave all
// simulated-time query results and FaultStats counters bit-identical
// to the single-threaded run.
TEST(ThreadPoolTest, MultiThreadedStoreRunIsBitIdenticalToSerial)
{
    DeterminismRun serial = runWorkload(1);
    for (size_t threads : {2, 4}) {
        DeterminismRun pooled = runWorkload(threads);
        ASSERT_EQ(pooled.results.size(), serial.results.size());
        for (size_t i = 0; i < serial.results.size(); ++i) {
            const query::QueryResult &a = serial.results[i];
            const query::QueryResult &b = pooled.results[i];
            EXPECT_EQ(a.rowsMatched, b.rowsMatched);
            ASSERT_EQ(a.columns.size(), b.columns.size());
            for (size_t c = 0; c < a.columns.size(); ++c) {
                EXPECT_EQ(a.columns[c].isAggregate,
                          b.columns[c].isAggregate);
                if (a.columns[c].isAggregate)
                    EXPECT_EQ(a.columns[c].aggregateValue,
                              b.columns[c].aggregateValue);
                else
                    EXPECT_TRUE(a.columns[c].values ==
                                b.columns[c].values);
            }
        }
        EXPECT_TRUE(pooled.faults == serial.faults)
            << "threads=" << threads;
        EXPECT_EQ(pooled.simSeconds, serial.simSeconds);
    }
}

// Put must place bit-identical blocks for any thread count: the same
// object stored under different FUSION_THREADS reads back identically
// and node-by-node storage matches.
TEST(ThreadPoolTest, ParallelIngestPlacesIdenticalBlocks)
{
    auto file = workload::buildLineitemFile(2000, 3);
    ASSERT_TRUE(file.isOk());

    auto ingest = [&](size_t threads) {
        ThreadPool::setSharedThreads(threads);
        sim::ClusterConfig config;
        config.numNodes = 9;
        auto cluster = std::make_unique<sim::Cluster>(config);
        auto store = std::make_unique<store::FusionStore>(
            *cluster, store::StoreOptions{});
        FUSION_CHECK(store->put("obj", file.value().bytes).isOk());
        std::vector<uint64_t> per_node;
        for (size_t i = 0; i < cluster->numNodes(); ++i)
            per_node.push_back(cluster->node(i).storedBytes());
        auto back = store->get("obj");
        FUSION_CHECK(back.isOk());
        ThreadPool::setSharedThreads(1);
        return std::make_pair(per_node, back.value());
    };
    auto serial = ingest(1);
    auto pooled = ingest(4);
    EXPECT_EQ(serial.first, pooled.first);
    EXPECT_EQ(serial.second, pooled.second);
    EXPECT_EQ(pooled.second, file.value().bytes);
}

} // namespace
} // namespace fusion
