/**
 * @file
 * Experiment harness shared by the bench binaries: closed-loop query
 * driving (the paper runs 10 clients and 10 K queries), latency
 * collection, and table printers that emit the same rows/series the
 * paper's figures report.
 */
#ifndef FUSION_BENCHUTIL_HARNESS_H
#define FUSION_BENCHUTIL_HARNESS_H

#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "store/object_store.h"

namespace fusion::benchutil {

/** Configuration of a workload run. */
struct RunConfig {
    size_t clients = 10;
    size_t totalQueries = 1000;
    uint64_t seed = 42;
    /**
     * When > 0, queries arrive open-loop at this aggregate rate
     * (queries/simulated-second) regardless of completions — the
     * paper's fixed-load setup for the CPU-utilization comparison
     * (Fig 14d). When 0 (default), `clients` closed-loop clients issue
     * the next query as soon as the previous one returns.
     */
    double openLoopQps = 0.0;
};

/** Aggregate results of a closed-loop run. */
struct RunStats {
    SampleHistogram latency;      // seconds per query
    double diskSeconds = 0.0;     // resource-seconds, summed
    double cpuSeconds = 0.0;
    double networkSeconds = 0.0;
    uint64_t networkBytes = 0;
    double wallSimSeconds = 0.0;  // simulated makespan of the run
    double meanStorageCpuUtilization = 0.0;
    size_t projectionPushdowns = 0;
    size_t projectionFetches = 0;
    /** Robustness counters accumulated over the run (delta of the
     *  store's faultStats() — nonzero only with faults injected). */
    uint64_t readRetries = 0;
    uint64_t parityReconstructions = 0;
    uint64_t pushdownFallbacks = 0;
    uint64_t degradedChunkReads = 0;
};

/**
 * Runs `config.totalQueries` queries against `store` with
 * `config.clients` closed-loop clients. `next_query` is called once per
 * query (with the query index) and returns the query to issue — use it
 * to rotate across object copies or query templates. Aborts the process
 * on query errors (benches assume valid queries).
 */
RunStats runClosedLoop(store::ObjectStore &store, const RunConfig &config,
                       std::function<query::Query(size_t)> next_query);

/** Percentage improvement of `fusion` over `baseline` (positive =
 *  fusion faster), as in the paper's latency-reduction plots. */
double latencyReductionPct(double baseline_seconds, double fusion_seconds);

/** Prints a Markdown-ish table row-by-row with aligned columns. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);
    void addRow(std::vector<std::string> cells);
    /** Renders to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style float formatting helper for table cells. */
std::string fmt(const char *format, ...);

/** Standard header banner for a figure/table reproduction binary. */
void banner(const std::string &id, const std::string &title);

// ---- observability output (every bench binary) ----

/** Where to dump traces/metrics; empty string = don't. */
struct ObsOptions {
    std::string traceOut;   // Chrome trace_event JSON (Perfetto-loadable)
    std::string metricsOut; // merged metrics snapshot JSON
    /** Windowed-telemetry snapshots (obs::Telemetry::toJson), one per
     *  collected store, wrapped as {"timeseries": [...]}. */
    std::string timeseriesOut;

    bool
    enabled() const
    {
        return !traceOut.empty() || !metricsOut.empty() ||
               !timeseriesOut.empty();
    }
};

/**
 * Parses `--trace-out=FILE` / `--metrics-out=FILE` /
 * `--timeseries-out=FILE` from argv (env fallback: FUSION_TRACE_OUT /
 * FUSION_METRICS_OUT / FUSION_TIMESERIES_OUT), ignoring flags it
 * does not know, and registers an atexit writer for the requested
 * files. Call first thing in every bench main. When any output is
 * requested, store rigs enable their tracers and runClosedLoop
 * accumulates per-run metric deltas and drains spans automatically;
 * the timeseries output additionally enables each driven store's
 * flight recorder.
 */
void obsInit(int argc, char **argv);

const ObsOptions &obsOptions();

/**
 * Drains `store`'s recorded spans into the pending trace dump as one
 * named process. runClosedLoop calls this at the end of every run; call
 * it manually only for stores driven outside the harness.
 */
void obsCollect(store::ObjectStore &store);

} // namespace fusion::benchutil

#endif // FUSION_BENCHUTIL_HARNESS_H
