#include "eval.h"

#include <optional>

namespace fusion::query {

namespace {

using format::ColumnData;
using format::PhysicalType;
using format::Value;

bool
applyOp(int cmp, CompareOp op)
{
    switch (op) {
      case CompareOp::kLt: return cmp < 0;
      case CompareOp::kLe: return cmp <= 0;
      case CompareOp::kGt: return cmp > 0;
      case CompareOp::kGe: return cmp >= 0;
      case CompareOp::kEq: return cmp == 0;
      case CompareOp::kNe: return cmp != 0;
    }
    return false;
}

// Typed scan loop: avoids boxing each row into a Value.
template <typename T, typename L>
void
scanTyped(const std::vector<T> &values, CompareOp op, L literal,
          Bitmap &out)
{
    for (size_t i = 0; i < values.size(); ++i) {
        int cmp = values[i] < literal ? -1 : (literal < values[i] ? 1 : 0);
        if (applyOp(cmp, op))
            out.set(i);
    }
}

bool
literalCompatible(PhysicalType column_type, PhysicalType literal_type)
{
    bool column_numeric = column_type != PhysicalType::kString;
    bool literal_numeric = literal_type != PhysicalType::kString;
    return column_numeric == literal_numeric;
}

} // namespace

bool
compareValues(const Value &lhs, CompareOp op, const Value &rhs)
{
    return applyOp(lhs.compare(rhs), op);
}

Result<Bitmap>
evalPredicate(const ColumnData &column, CompareOp op, const Value &literal)
{
    if (!literalCompatible(column.type(), literal.type()))
        return Status::invalidArgument(
            "predicate literal type incompatible with column type");

    Bitmap out(column.size());
    switch (column.type()) {
      case PhysicalType::kInt32:
        scanTyped(column.int32s(), op, literal.numeric(), out);
        break;
      case PhysicalType::kInt64:
        scanTyped(column.int64s(), op, literal.numeric(), out);
        break;
      case PhysicalType::kDouble:
        scanTyped(column.doubles(), op, literal.numeric(), out);
        break;
      case PhysicalType::kString:
        scanTyped(column.strings(), op, literal.asString(), out);
        break;
    }
    return out;
}

bool
zoneMapMayMatch(const format::ChunkMeta &meta, const Predicate &pred)
{
    const Value &min_v = meta.minValue;
    const Value &max_v = meta.maxValue;
    if (!literalCompatible(min_v.type(), pred.literal.type()))
        return true; // type confusion: be conservative, scan the chunk
    switch (pred.op) {
      case CompareOp::kLt: return compareValues(min_v, CompareOp::kLt,
                                                pred.literal);
      case CompareOp::kLe: return compareValues(min_v, CompareOp::kLe,
                                                pred.literal);
      case CompareOp::kGt: return compareValues(max_v, CompareOp::kGt,
                                                pred.literal);
      case CompareOp::kGe: return compareValues(max_v, CompareOp::kGe,
                                                pred.literal);
      case CompareOp::kEq:
        return compareValues(min_v, CompareOp::kLe, pred.literal) &&
               compareValues(max_v, CompareOp::kGe, pred.literal);
      case CompareOp::kNe:
        // Only an all-equal chunk matching the literal can be skipped.
        return !(min_v == max_v && min_v == pred.literal);
    }
    return true;
}

namespace {

/**
 * Converts an equality literal to the column's stored type when the
 * conversion is exact, so Bloom hashing (which is type-sensitive) sees
 * the same bytes the writer inserted. Returns nullopt when conversion
 * would be lossy or the types are incompatible.
 */
std::optional<Value>
normalizeLiteralForColumn(PhysicalType column_type, const Value &literal)
{
    if (literal.type() == column_type)
        return literal;
    if (column_type == PhysicalType::kString ||
        literal.type() == PhysicalType::kString)
        return std::nullopt;
    double v = literal.numeric();
    switch (column_type) {
      case PhysicalType::kInt32: {
        auto as_int = static_cast<int32_t>(v);
        if (static_cast<double>(as_int) == v)
            return Value(as_int);
        return std::nullopt;
      }
      case PhysicalType::kInt64: {
        auto as_int = static_cast<int64_t>(v);
        if (static_cast<double>(as_int) == v)
            return Value(as_int);
        return std::nullopt;
      }
      case PhysicalType::kDouble:
        return Value(v);
      case PhysicalType::kString:
        break;
    }
    return std::nullopt;
}

} // namespace

bool
chunkMayMatch(const format::ChunkMeta &meta, const Predicate &pred)
{
    if (!zoneMapMayMatch(meta, pred))
        return false;
    if (pred.op != CompareOp::kEq || meta.bloom.empty())
        return true;
    auto literal =
        normalizeLiteralForColumn(meta.minValue.type(), pred.literal);
    if (!literal.has_value())
        return true; // inexact conversion: cannot safely consult bloom
    return meta.bloom.mayContain(*literal);
}

format::ColumnData
selectRows(const ColumnData &column, const Bitmap &rows)
{
    FUSION_CHECK(column.size() == rows.size());
    ColumnData out(column.type());
    switch (column.type()) {
      case PhysicalType::kInt32:
        for (size_t i = 0; i < column.size(); ++i)
            if (rows.test(i))
                out.append(column.int32s()[i]);
        break;
      case PhysicalType::kInt64:
        for (size_t i = 0; i < column.size(); ++i)
            if (rows.test(i))
                out.append(column.int64s()[i]);
        break;
      case PhysicalType::kDouble:
        for (size_t i = 0; i < column.size(); ++i)
            if (rows.test(i))
                out.append(column.doubles()[i]);
        break;
      case PhysicalType::kString:
        for (size_t i = 0; i < column.size(); ++i)
            if (rows.test(i))
                out.append(column.strings()[i]);
        break;
    }
    return out;
}

Result<double>
computeAggregate(AggregateKind kind, const ColumnData &values)
{
    if (kind == AggregateKind::kCount)
        return static_cast<double>(values.size());
    if (values.type() == PhysicalType::kString)
        return Status::invalidArgument(
            "numeric aggregate over a string column");
    // SQL yields NULL for aggregates over zero rows; without a null
    // representation we approximate with 0 (documented behaviour).
    if (values.size() == 0)
        return 0.0;

    double sum = 0.0, min_v = 0.0, max_v = 0.0;
    bool first = true;
    for (size_t i = 0; i < values.size(); ++i) {
        double v = values.valueAt(i).numeric();
        sum += v;
        if (first || v < min_v)
            min_v = v;
        if (first || v > max_v)
            max_v = v;
        first = false;
    }
    switch (kind) {
      case AggregateKind::kSum: return sum;
      case AggregateKind::kAvg:
        return sum / static_cast<double>(values.size());
      case AggregateKind::kMin: return min_v;
      case AggregateKind::kMax: return max_v;
      case AggregateKind::kCount:
      case AggregateKind::kNone: break;
    }
    return Status::invalidArgument("bad aggregate kind");
}

} // namespace fusion::query
