# Empty dependencies file for fusion_sim.
# This may be replaced when dependencies are built.
