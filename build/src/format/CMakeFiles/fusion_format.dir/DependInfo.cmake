
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/format/bloom.cc" "src/format/CMakeFiles/fusion_format.dir/bloom.cc.o" "gcc" "src/format/CMakeFiles/fusion_format.dir/bloom.cc.o.d"
  "/root/repo/src/format/chunk_codec.cc" "src/format/CMakeFiles/fusion_format.dir/chunk_codec.cc.o" "gcc" "src/format/CMakeFiles/fusion_format.dir/chunk_codec.cc.o.d"
  "/root/repo/src/format/column.cc" "src/format/CMakeFiles/fusion_format.dir/column.cc.o" "gcc" "src/format/CMakeFiles/fusion_format.dir/column.cc.o.d"
  "/root/repo/src/format/csv.cc" "src/format/CMakeFiles/fusion_format.dir/csv.cc.o" "gcc" "src/format/CMakeFiles/fusion_format.dir/csv.cc.o.d"
  "/root/repo/src/format/metadata.cc" "src/format/CMakeFiles/fusion_format.dir/metadata.cc.o" "gcc" "src/format/CMakeFiles/fusion_format.dir/metadata.cc.o.d"
  "/root/repo/src/format/reader.cc" "src/format/CMakeFiles/fusion_format.dir/reader.cc.o" "gcc" "src/format/CMakeFiles/fusion_format.dir/reader.cc.o.d"
  "/root/repo/src/format/types.cc" "src/format/CMakeFiles/fusion_format.dir/types.cc.o" "gcc" "src/format/CMakeFiles/fusion_format.dir/types.cc.o.d"
  "/root/repo/src/format/value.cc" "src/format/CMakeFiles/fusion_format.dir/value.cc.o" "gcc" "src/format/CMakeFiles/fusion_format.dir/value.cc.o.d"
  "/root/repo/src/format/writer.cc" "src/format/CMakeFiles/fusion_format.dir/writer.cc.o" "gcc" "src/format/CMakeFiles/fusion_format.dir/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fusion_common.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/fusion_codec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
