#include "baseline_store.h"

#include <set>

#include "fac/constructors.h"

namespace fusion::store {

fac::ObjectLayout
BaselineStore::buildLayout(const std::vector<fac::ChunkExtent> &extents)
{
    return fac::buildFixedLayout(extents, options_.n, options_.k,
                                 options_.fixedBlockSize);
}

Result<ObjectStore::QueryPlan>
BaselineStore::planQuery(const ObjectManifest &manifest,
                         const query::Query &q)
{
    auto plane = executeDataPlane(manifest, q);
    if (!plane.isOk())
        return plane.status();

    const format::FileMetadata &meta = manifest.fileMeta;
    const format::Schema &schema = meta.schema;

    QueryPlan plan;
    plan.coordinatorId = cluster_.coordinatorFor(manifest.name);
    plan.outcome.result = plane.value().result;
    plan.clientReplyBytes = plane.value().resultWireBytes;

    // Distinct columns the query touches, filter columns first.
    std::vector<size_t> columns;
    std::set<size_t> seen;
    for (const auto &name : q.filterColumns())
        if (seen.insert(schema.columnIndex(name).value()).second)
            columns.push_back(schema.columnIndex(name).value());
    std::vector<size_t> filter_count_columns = columns;
    for (const auto &name : q.projectionColumns())
        if (seen.insert(schema.columnIndex(name).value()).second)
            columns.push_back(schema.columnIndex(name).value());

    // Single stage: fetch every needed chunk (in pieces, from wherever
    // the fixed-block layout scattered them) and evaluate locally.
    for (size_t rg = 0; rg < meta.numRowGroups(); ++rg) {
        if (!plane.value().rowGroupBitmaps[rg].has_value()) {
            ++plan.outcome.rowGroupsSkipped;
            continue;
        }
        ++plan.outcome.rowGroupsScanned;
        for (size_t col : columns) {
            const format::ChunkMeta &chunk = meta.chunk(rg, col);
            uint32_t chunk_id = manifest.chunkIdFor(rg, col);
            bool is_filter_col =
                std::find(filter_count_columns.begin(),
                          filter_count_columns.end(),
                          col) != filter_count_columns.end();
            bool is_proj_col = false;
            for (const auto &name : q.projectionColumns())
                is_proj_col |= schema.columnIndex(name).value() == col;
            // Decode + evaluate happens at the coordinator. A column
            // used by both the filter and the projection needs a second
            // evaluation pass over the decoded values, same as Fusion's
            // two stages.
            double coord_work = chunkDecodeWork(chunk);
            if (is_filter_col && is_proj_col)
                coord_work += chunkSelectWork(chunk);
            // Even the fetch-everything baseline benefits from the
            // coordinator hot-chunk cache: a resident chunk skips the
            // wire and disk entirely (decoded layer also skips the
            // decompress pass).
            auto cached = cacheLookupChunk(manifest, chunk_id);
            if (cached.hit) {
                double local_work =
                    cached.decoded ? chunkSelectWork(chunk)
                                   : chunkDecodeWork(chunk);
                if (is_filter_col && is_proj_col)
                    local_work += chunkSelectWork(chunk);
                SimTask task{plan.coordinatorId, 0, 0, 0.0, 0, local_work,
                             "cached_local"};
                task.chunkId = chunk_id;
                plan.filterTasks.push_back(std::move(task));
                if (is_filter_col)
                    ++plan.outcome.filterChunkCached;
                else
                    ++plan.outcome.projectionCachedLocal;
                continue;
            }
            appendChunkFetchTasks(manifest, chunk_id, plan.coordinatorId,
                                  coord_work, plan.filterTasks);
            cacheAdmitChunk(manifest, chunk_id);
            if (is_filter_col)
                ++plan.outcome.filterChunkFetches;
            else
                ++plan.outcome.projectionFetches;
        }
    }
    return plan;
}

} // namespace fusion::store
