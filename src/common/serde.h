/**
 * @file
 * Minimal binary serialization: little-endian fixed-width integers,
 * LEB128 varints, zig-zag signed varints, length-prefixed byte strings.
 *
 * Used for the columnar file footer, page headers, stripe manifests and
 * the chunk location map. The reader is bounds-checked and returns
 * Status on truncated/corrupt input so that corrupt storage blocks
 * surface as kCorruption instead of undefined behaviour.
 */
#ifndef FUSION_COMMON_SERDE_H
#define FUSION_COMMON_SERDE_H

#include <cstdint>
#include <string>

#include "bytes.h"
#include "status.h"

namespace fusion {

/** Appends binary-encoded values to a growing byte buffer. */
class BinaryWriter
{
  public:
    explicit BinaryWriter(Bytes &out) : out_(out) {}

    void putU8(uint8_t v) { out_.push_back(v); }
    void putU16(uint16_t v);
    void putU32(uint32_t v);
    void putU64(uint64_t v);
    void putI32(int32_t v) { putU32(static_cast<uint32_t>(v)); }
    void putI64(int64_t v) { putU64(static_cast<uint64_t>(v)); }
    void putDouble(double v);
    void putBool(bool v) { putU8(v ? 1 : 0); }

    /** Unsigned LEB128 varint (1-10 bytes). */
    void putVarU64(uint64_t v);
    /** Zig-zag encoded signed varint. */
    void putVarI64(int64_t v);

    /** Varint length prefix followed by the raw bytes. */
    void putLengthPrefixed(Slice bytes);
    void putString(const std::string &s) { putLengthPrefixed(Slice(s)); }

    /** Raw bytes with no prefix. */
    void putRaw(Slice bytes) { appendBytes(out_, bytes); }

    size_t size() const { return out_.size(); }

  private:
    Bytes &out_;
};

/** Bounds-checked sequential reader over a byte view. */
class BinaryReader
{
  public:
    explicit BinaryReader(Slice input) : input_(input) {}

    Result<uint8_t> getU8();
    Result<uint16_t> getU16();
    Result<uint32_t> getU32();
    Result<uint64_t> getU64();
    Result<int32_t> getI32();
    Result<int64_t> getI64();
    Result<double> getDouble();
    Result<bool> getBool();
    Result<uint64_t> getVarU64();
    Result<int64_t> getVarI64();
    /** Reads a varint length prefix and returns a view of that many bytes. */
    Result<Slice> getLengthPrefixed();
    Result<std::string> getString();
    /** Returns a view of exactly `n` bytes. */
    Result<Slice> getRaw(size_t n);

    size_t position() const { return pos_; }
    size_t remaining() const { return input_.size() - pos_; }
    bool atEnd() const { return pos_ == input_.size(); }

    /** Moves the cursor to an absolute offset. */
    Status seek(size_t pos);

  private:
    Slice input_;
    size_t pos_ = 0;
};

} // namespace fusion

#endif // FUSION_COMMON_SERDE_H
