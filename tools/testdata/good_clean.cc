// Fixture: a file written to the project rules — zero findings.
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

// An unordered map used only for point lookups is fine; serialization
// walks the sorted mirror.
struct Catalog {
    std::unordered_map<std::string, int> fastLookup;
    std::map<std::string, int> sorted;
};

void
emit(const Catalog &c)
{
    for (const auto &[name, id] : c.sorted)
        std::printf("%s=%d\n", name.c_str(), id);
    if (c.fastLookup.count("x"))
        std::printf("has x\n");
}

// Words like 'time' or 'mutex' in comments and strings never match:
// call time() at your peril; std::mutex is banned; rand() too; even
// %p is fine in a comment (only string literals can feed printf).
const char *doc = "time() and rand() and std::mutex go here";
