#include "metadata.h"

namespace fusion::format {

void
ChunkMeta::serialize(BinaryWriter &writer) const
{
    writer.putVarU64(rowGroupId);
    writer.putVarU64(columnId);
    writer.putVarU64(offset);
    writer.putVarU64(storedSize);
    writer.putVarU64(plainSize);
    writer.putVarU64(valueCount);
    writer.putU8(static_cast<uint8_t>(encoding));
    minValue.serialize(writer);
    maxValue.serialize(writer);
    writer.putLengthPrefixed(Slice(bloomBytes()));
}

Bytes
ChunkMeta::bloomBytes() const
{
    return bloom.empty() ? Bytes{} : bloom.serialize();
}

Result<ChunkMeta>
ChunkMeta::deserialize(BinaryReader &reader)
{
    ChunkMeta meta;
    auto rg = reader.getVarU64();
    if (!rg.isOk())
        return rg.status();
    meta.rowGroupId = static_cast<uint32_t>(rg.value());
    auto col = reader.getVarU64();
    if (!col.isOk())
        return col.status();
    meta.columnId = static_cast<uint32_t>(col.value());
    auto off = reader.getVarU64();
    if (!off.isOk())
        return off.status();
    meta.offset = off.value();
    auto stored = reader.getVarU64();
    if (!stored.isOk())
        return stored.status();
    meta.storedSize = stored.value();
    auto plain = reader.getVarU64();
    if (!plain.isOk())
        return plain.status();
    meta.plainSize = plain.value();
    auto count = reader.getVarU64();
    if (!count.isOk())
        return count.status();
    meta.valueCount = count.value();
    auto enc = reader.getU8();
    if (!enc.isOk())
        return enc.status();
    if (enc.value() > 1)
        return Status::corruption("bad chunk encoding tag");
    meta.encoding = static_cast<ChunkEncoding>(enc.value());
    auto min_v = Value::deserialize(reader);
    if (!min_v.isOk())
        return min_v.status();
    meta.minValue = std::move(min_v.value());
    auto max_v = Value::deserialize(reader);
    if (!max_v.isOk())
        return max_v.status();
    meta.maxValue = std::move(max_v.value());
    auto bloom_bytes = reader.getLengthPrefixed();
    if (!bloom_bytes.isOk())
        return bloom_bytes.status();
    if (!bloom_bytes.value().empty()) {
        auto bloom = BloomFilter::deserialize(bloom_bytes.value());
        if (!bloom.isOk())
            return bloom.status();
        meta.bloom = std::move(bloom.value());
    }
    return meta;
}

std::vector<const ChunkMeta *>
FileMetadata::allChunks() const
{
    std::vector<const ChunkMeta *> out;
    out.reserve(numChunks());
    for (const auto &rg : rowGroups)
        for (const auto &chunk : rg.chunks)
            out.push_back(&chunk);
    return out;
}

size_t
FileMetadata::numChunks() const
{
    size_t n = 0;
    for (const auto &rg : rowGroups)
        n += rg.chunks.size();
    return n;
}

Bytes
FileMetadata::serialize() const
{
    Bytes out;
    BinaryWriter writer(out);
    writer.putVarU64(schema.numColumns());
    for (const auto &col : schema.columns()) {
        writer.putString(col.name);
        writer.putU8(static_cast<uint8_t>(col.physical));
        writer.putU8(static_cast<uint8_t>(col.logical));
    }
    writer.putVarU64(numRows);
    writer.putVarU64(rowGroups.size());
    for (const auto &rg : rowGroups) {
        writer.putVarU64(rg.numRows);
        writer.putVarU64(rg.chunks.size());
        for (const auto &chunk : rg.chunks)
            chunk.serialize(writer);
    }
    return out;
}

Result<FileMetadata>
FileMetadata::deserialize(Slice bytes)
{
    BinaryReader reader(bytes);
    FileMetadata meta;

    auto ncols = reader.getVarU64();
    if (!ncols.isOk())
        return ncols.status();
    for (uint64_t i = 0; i < ncols.value(); ++i) {
        ColumnDesc desc;
        auto name = reader.getString();
        if (!name.isOk())
            return name.status();
        desc.name = std::move(name.value());
        auto phys = reader.getU8();
        if (!phys.isOk())
            return phys.status();
        if (phys.value() > 3)
            return Status::corruption("bad physical type tag");
        desc.physical = static_cast<PhysicalType>(phys.value());
        auto logical = reader.getU8();
        if (!logical.isOk())
            return logical.status();
        if (logical.value() > 3)
            return Status::corruption("bad logical type tag");
        desc.logical = static_cast<LogicalType>(logical.value());
        meta.schema.addColumn(std::move(desc));
    }

    auto nrows = reader.getVarU64();
    if (!nrows.isOk())
        return nrows.status();
    meta.numRows = nrows.value();

    auto ngroups = reader.getVarU64();
    if (!ngroups.isOk())
        return ngroups.status();
    for (uint64_t g = 0; g < ngroups.value(); ++g) {
        RowGroupMeta rg;
        auto rg_rows = reader.getVarU64();
        if (!rg_rows.isOk())
            return rg_rows.status();
        rg.numRows = rg_rows.value();
        auto nchunks = reader.getVarU64();
        if (!nchunks.isOk())
            return nchunks.status();
        if (nchunks.value() != meta.schema.numColumns())
            return Status::corruption("row group chunk count != columns");
        for (uint64_t c = 0; c < nchunks.value(); ++c) {
            auto chunk = ChunkMeta::deserialize(reader);
            if (!chunk.isOk())
                return chunk.status();
            rg.chunks.push_back(std::move(chunk.value()));
        }
        meta.rowGroups.push_back(std::move(rg));
    }
    return meta;
}

} // namespace fusion::format
