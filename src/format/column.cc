#include "column.h"

namespace fusion::format {

ColumnData::ColumnData(PhysicalType t)
{
    switch (t) {
      case PhysicalType::kInt32: data_ = Int32s{}; break;
      case PhysicalType::kInt64: data_ = Int64s{}; break;
      case PhysicalType::kDouble: data_ = Doubles{}; break;
      case PhysicalType::kString: data_ = Strings{}; break;
    }
}

PhysicalType
ColumnData::type() const
{
    switch (data_.index()) {
      case 0: return PhysicalType::kInt32;
      case 1: return PhysicalType::kInt64;
      case 2: return PhysicalType::kDouble;
      default: return PhysicalType::kString;
    }
}

size_t
ColumnData::size() const
{
    return std::visit([](const auto &v) { return v.size(); }, data_);
}

void
ColumnData::appendValue(const Value &v)
{
    FUSION_CHECK(v.type() == type());
    switch (type()) {
      case PhysicalType::kInt32: append(v.asInt32()); break;
      case PhysicalType::kInt64: append(v.asInt64()); break;
      case PhysicalType::kDouble: append(v.asDouble()); break;
      case PhysicalType::kString: append(v.asString()); break;
    }
}

Value
ColumnData::valueAt(size_t i) const
{
    switch (type()) {
      case PhysicalType::kInt32: return Value(int32s().at(i));
      case PhysicalType::kInt64: return Value(int64s().at(i));
      case PhysicalType::kDouble: return Value(doubles().at(i));
      case PhysicalType::kString: return Value(strings().at(i));
    }
    FUSION_CHECK(false);
    return Value();
}

uint64_t
ColumnData::plainEncodedSize() const
{
    switch (type()) {
      case PhysicalType::kInt32: return int32s().size() * 4;
      case PhysicalType::kInt64: return int64s().size() * 8;
      case PhysicalType::kDouble: return doubles().size() * 8;
      case PhysicalType::kString: {
        uint64_t total = 0;
        for (const auto &s : strings())
            total += 4 + s.size(); // 4-byte length prefix approximation
        return total;
      }
    }
    return 0;
}

Table::Table(Schema schema) : schema_(std::move(schema))
{
    columns_.reserve(schema_.numColumns());
    for (const auto &desc : schema_.columns())
        columns_.emplace_back(desc.physical);
}

size_t
Table::numRows() const
{
    return columns_.empty() ? 0 : columns_.front().size();
}

Status
Table::validate() const
{
    if (columns_.size() != schema_.numColumns())
        return Status::internal("column count does not match schema");
    for (size_t i = 0; i < columns_.size(); ++i) {
        if (columns_[i].type() != schema_.column(i).physical)
            return Status::internal("column " + std::to_string(i) +
                                    " type does not match schema");
        if (columns_[i].size() != numRows())
            return Status::internal("ragged table: column " +
                                    std::to_string(i) + " length differs");
    }
    return Status::ok();
}

Table
Table::sliceRows(size_t begin, size_t end) const
{
    FUSION_CHECK(begin <= end && end <= numRows());
    Table out(schema_);
    for (size_t c = 0; c < columns_.size(); ++c) {
        for (size_t r = begin; r < end; ++r)
            out.column(c).appendValue(columns_[c].valueAt(r));
    }
    return out;
}

} // namespace fusion::format
