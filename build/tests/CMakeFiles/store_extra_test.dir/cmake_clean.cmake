file(REMOVE_RECURSE
  "CMakeFiles/store_extra_test.dir/store_extra_test.cc.o"
  "CMakeFiles/store_extra_test.dir/store_extra_test.cc.o.d"
  "store_extra_test"
  "store_extra_test.pdb"
  "store_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
