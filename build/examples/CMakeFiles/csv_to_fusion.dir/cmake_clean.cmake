file(REMOVE_RECURSE
  "CMakeFiles/csv_to_fusion.dir/csv_to_fusion.cpp.o"
  "CMakeFiles/csv_to_fusion.dir/csv_to_fusion.cpp.o.d"
  "csv_to_fusion"
  "csv_to_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_to_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
