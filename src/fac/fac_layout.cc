#include <algorithm>
#include <numeric>

#include "constructors.h"

namespace fusion::fac {

/**
 * Paper Algorithm 1 (Stripe Construction). One stripe per iteration:
 * the largest unassigned chunk seals bin 0 and fixes the bin capacity;
 * remaining chunks (descending) go to the least-occupied bin among
 * bins 1..k-1 that still has room. Never splits a chunk.
 */
ObjectLayout
buildFacLayout(const std::vector<ChunkExtent> &chunks, size_t n, size_t k)
{
    ObjectLayout layout;
    layout.kind = LayoutKind::kFac;
    layout.n = n;
    layout.k = k;

    // Indices into `chunks`, sorted by descending size (stable for
    // determinism across equal sizes).
    std::vector<size_t> order(chunks.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return chunks[a].size > chunks[b].size;
    });

    std::vector<bool> placed(chunks.size(), false);
    size_t remaining = chunks.size();
    size_t cursor = 0; // first not-yet-placed position in `order`

    while (remaining > 0) {
        while (placed[order[cursor]])
            ++cursor;

        StripeLayout stripe;
        stripe.dataBlocks.resize(k);
        std::vector<uint64_t> load(k, 0);

        // Largest unassigned chunk opens (and seals) the first bin.
        const ChunkExtent &head = chunks[order[cursor]];
        stripe.dataBlocks[0].pieces.push_back({head.id, 0, head.size});
        load[0] = head.size;
        placed[order[cursor]] = true;
        --remaining;
        const uint64_t capacity = head.size;

        // One full scan of the remaining queue, descending sizes.
        for (size_t pos = cursor + 1; pos < order.size(); ++pos) {
            size_t idx = order[pos];
            if (placed[idx])
                continue;
            const ChunkExtent &item = chunks[idx];
            // Least-occupied bin (excluding bin 0) with room for it.
            size_t best_bin = 0; // 0 means "none found"
            for (size_t b = 1; b < k; ++b) {
                if (load[b] + item.size <= capacity &&
                    (best_bin == 0 || load[b] < load[best_bin])) {
                    best_bin = b;
                }
            }
            if (best_bin != 0) {
                stripe.dataBlocks[best_bin].pieces.push_back(
                    {item.id, 0, item.size});
                load[best_bin] += item.size;
                placed[idx] = true;
                --remaining;
            }
        }

        // Drop trailing empty bins (stripes at the tail of an object may
        // have fewer than k data blocks; absent blocks are implicit
        // zero blocks and consume no storage).
        while (!stripe.dataBlocks.empty() &&
               stripe.dataBlocks.back().pieces.empty()) {
            stripe.dataBlocks.pop_back();
        }
        layout.stripes.push_back(std::move(stripe));
    }

    for (const auto &chunk : chunks)
        layout.dataBytes += chunk.size;
    return layout;
}

ObjectLayout
buildFusionLayout(const std::vector<ChunkExtent> &chunks,
                  const FusionLayoutOptions &options)
{
    ObjectLayout fac = buildFacLayout(chunks, options.n, options.k);
    if (fac.overheadVsOptimal() <= options.overheadThreshold)
        return fac;
    return buildFixedLayout(chunks, options.n, options.k,
                            options.fallbackBlockSize);
}

} // namespace fusion::fac
