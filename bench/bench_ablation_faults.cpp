/**
 * @file
 * Ablation A6: robustness under deterministic fault injection. Sweeps
 * the failure rate (crash/revive and slow/restore events drawn over
 * the run's makespan) and reports how the degraded-read machinery
 * responds: retry counts, parity reconstructions, pushdown fallbacks
 * and the latency both stores pay for them. Ends with a determinism
 * spot check — the same seed must reproduce the identical fault trace
 * and identical robustness counters on a fresh rig.
 */
#include <cstdlib>

#include "benchutil/rigs.h"
#include "sim/fault.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

using namespace fusion;
using namespace fusion::benchutil;

namespace {

RigOptions
rigOptions()
{
    RigOptions options;
    options.rows = 20000;
    options.copies = 3;
    return options;
}

std::function<query::Query(size_t)>
queryMix(const StorePair &pair)
{
    // Alternate the paper's projection-heavy Q1 and filter-heavy Q2;
    // onCopy rewrites the table name per issued query. Every third
    // query is a microbenchmark scan with a rotating literal so fresh
    // (uncached) data planes keep executing throughout the run and
    // degraded reads actually happen while faults are active.
    query::Query q1 = workload::lineitemQ1("lineitem", pair.table);
    query::Query q2 = workload::lineitemQ2("lineitem", pair.table);
    const format::Table *table = &pair.table;
    return [q1, q2, table](size_t i) {
        if (i % 3 == 2) {
            // Rotate across every column so (copy, column) chunks keep
            // being first-decoded throughout the run, not just at t=0.
            size_t col = i % table->numColumns();
            return workload::microbenchQuery(
                "lineitem", table->schema().column(col).name,
                table->column(col),
                0.01 + static_cast<double>(i % 40) * 0.005);
        }
        return i % 3 == 0 ? q1 : q2;
    };
}

sim::RandomFaultOptions
faultOptions(size_t crashes, double horizon)
{
    sim::RandomFaultOptions fopts;
    fopts.seed = 0xfa017 + crashes;
    fopts.numNodes = 9;
    fopts.horizonSeconds = horizon;
    fopts.crashCount = crashes;
    // A slow factor past the read-timeout threshold makes the node
    // unresponsive, so cap concurrent crashes (2) + slowdowns (1) at
    // the RS(9,6) erasure tolerance of 3.
    fopts.slowCount = crashes > 1 ? 1 : 0;
    fopts.meanDowntimeSeconds = horizon / 6.0;
    fopts.maxSlowFactor = 16.0;
    fopts.maxConcurrentDown = 2;
    return fopts;
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    banner("Ablation A6",
           "degraded reads under injected faults (failure-rate sweep)");

    RunConfig run;
    run.clients = 4;
    run.totalQueries = 240;

    // Fault-free reference run; Fusion's makespan becomes the fault
    // horizon so every sweep level lands its events inside the part of
    // the run both stores are still executing.
    StorePair clean_pair = makeStorePair(Dataset::kLineitem, rigOptions());
    Comparison clean = compareStores(clean_pair, run, queryMix(clean_pair));
    double horizon = clean.fusion.wallSimSeconds;

    TablePrinter table({"crash events", "fusion p50", "fusion p99",
                        "retries", "EC rebuilds", "pushdown fallbacks",
                        "baseline p99"});
    // Robustness counters come from the Fusion store's metrics registry
    // (the authoritative fault.* instruments; FaultStats is just a view
    // over them). Each sweep level runs on a fresh rig with faults armed
    // only during the measured runs, so cumulative counts == run counts.
    auto add_row = [&](size_t crashes, const Comparison &c,
                       const store::FusionStore &fusion) {
        obs::MetricsSnapshot snap = fusion.obs().metrics.snapshot();
        auto count = [&](const char *name) -> uint64_t {
            auto it = snap.values.find(name);
            return it == snap.values.end() ? 0 : it->second.count;
        };
        table.addRow({std::to_string(crashes),
                      fmt("%.3f ms", c.fusion.latency.p50() * 1e3),
                      fmt("%.3f ms", c.fusion.latency.p99() * 1e3),
                      std::to_string(count("fault.read_retries")),
                      std::to_string(count("fault.parity_reconstructions")),
                      std::to_string(count("fault.pushdown_fallbacks")),
                      fmt("%.3f ms", c.baseline.latency.p99() * 1e3)});
    };
    add_row(0, clean, *clean_pair.fusion);

    for (size_t crashes : {1, 2, 4, 8}) {
        StorePair pair = makeStorePair(Dataset::kLineitem, rigOptions());
        pair.armFaults(
            sim::FaultSchedule::random(faultOptions(crashes, horizon)));
        Comparison faulted = compareStores(pair, run, queryMix(pair));
        add_row(crashes, faulted, *pair.fusion);
    }
    table.print();

    // Determinism spot check: identical seed, fresh rig — the applied
    // fault trace and the full metrics snapshot (every fault/cache/wire
    // counter and the latency histogram) must match byte for byte.
    std::string traces[2];
    obs::MetricsSnapshot snaps[2];
    double p99[2];
    for (int round = 0; round < 2; ++round) {
        StorePair pair = makeStorePair(Dataset::kLineitem, rigOptions());
        pair.armFaults(sim::FaultSchedule::random(faultOptions(4, horizon)));
        RunStats fusion_run =
            runClosedLoop(*pair.fusion, run, [&pair, next = queryMix(pair)](
                                                 size_t i) {
                return pair.onCopy(next(i), i);
            });
        traces[round] = pair.fusionFaults->traceString();
        snaps[round] = pair.fusion->obs().metrics.snapshot();
        p99[round] = fusion_run.latency.p99();
    }
    bool deterministic = traces[0] == traces[1] &&
                         snaps[0].toJson() == snaps[1].toJson() &&
                         p99[0] == p99[1];
    std::printf("\ndeterminism (seed %#x, 2 runs): traces %s, metrics "
                "%s, p99 %s\n",
                0xfa017 + 4, traces[0] == traces[1] ? "equal" : "DIFFER",
                snaps[0].toJson() == snaps[1].toJson() ? "equal"
                                                       : "DIFFER",
                p99[0] == p99[1] ? "equal" : "DIFFER");

    std::printf("\nexpected: latency degrades gracefully with failure "
                "rate — faulted chunks reroute to coordinator-side "
                "evaluation (pushdown fallbacks) and lost blocks are "
                "rebuilt from parity (EC rebuilds); identical seeds "
                "replay identical traces\n");
    return deterministic ? EXIT_SUCCESS : EXIT_FAILURE;
}
