# Empty dependencies file for fusion_query.
# This may be replaced when dependencies are built.
