/**
 * @file
 * Reproduces paper Fig 10b: the pushdown trade-off heatmap. For four
 * lineitem columns of increasing compressibility (c5, c0, c4, c7) and
 * a sweep of selectivities, we report the p50 latency improvement of a
 * Fusion configured to ALWAYS push down (no Cost Equation) against the
 * baseline. Negative cells — pushdown hurting — appear exactly where
 * selectivity x compressibility > 1, which motivates adaptive
 * pushdown.
 */
#include "benchutil/rigs.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

using namespace fusion;
using namespace fusion::benchutil;

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    banner("Fig 10b",
           "pushdown trade-off: p50 improvement of always-push vs baseline");

    RigOptions options;
    options.rows = 60000;
    options.copies = 4;
    options.store.adaptivePushdown = false; // always push (the trade-off)
    StorePair pair = makeStorePair(Dataset::kLineitem, options);

    const size_t columns[] = {workload::kExtendedPrice, workload::kOrderKey,
                              workload::kQuantity, workload::kTax};
    const double selectivities[] = {0.01, 0.05, 0.2, 0.5, 1.0};

    // Header: compressibility of each column (row group 0).
    const auto &meta = pair.file.metadata;
    std::vector<std::string> headers = {"selectivity \\ column"};
    for (size_t c : columns) {
        headers.push_back(
            fmt("%s (%.0fx)", meta.schema.column(c).name.c_str(),
                meta.chunk(0, c).compressibility()));
    }

    RunConfig config;
    config.totalQueries = 200;

    TablePrinter table(headers);
    for (double sel : selectivities) {
        std::vector<std::string> row = {fmt("%.0f%%", sel * 100)};
        for (size_t c : columns) {
            query::Query q = workload::microbenchQuery(
                "x", meta.schema.column(c).name, pair.table.column(c), sel);
            Comparison cmp =
                compareStores(pair, config, [&](size_t) { return q; });
            row.push_back(fmt("%+.0f", cmp.p50ReductionPct()));
        }
        table.addRow(std::move(row));
    }
    table.print();
    std::printf("\npaper: improvement fades (and can go negative) toward "
                "high selectivity and high compressibility\n");
    return 0;
}
