/**
 * @file
 * Ablation A3: sensitivity of the storage-overhead threshold fallback
 * (paper §4.2: users cap FAC's extra overhead; over-threshold objects
 * fall back to fixed-size coding). We sweep the threshold over objects
 * with worsening chunk-size pathology and report which layout wins and
 * what it costs.
 */
#include "benchutil/harness.h"
#include "fac/constructors.h"
#include "workload/chunk_models.h"

using namespace fusion;
using namespace fusion::benchutil;

namespace {

// Chunk lists from benign (many similar chunks) to pathological (one
// giant chunk plus dust), controlling how hard FAC's worst case bites.
std::vector<fac::ChunkExtent>
pathologicalChunks(size_t dust_chunks, uint64_t giant, uint64_t dust)
{
    std::vector<fac::ChunkExtent> chunks;
    uint64_t offset = 0;
    chunks.push_back({0, offset, giant});
    offset += giant;
    for (size_t i = 0; i < dust_chunks; ++i) {
        chunks.push_back({static_cast<uint32_t>(i + 1), offset, dust});
        offset += dust;
    }
    return chunks;
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    banner("Ablation A3", "overhead-threshold fallback sensitivity");

    struct Workload {
        const char *name;
        std::vector<fac::ChunkExtent> chunks;
    };
    Workload workloads[] = {
        {"realistic (lineitem model)", workload::lineitemChunkModel(31)},
        {"mild skew (1 giant + 100 x 10MB)",
         pathologicalChunks(100, 500'000'000, 10'000'000)},
        {"pathological (1 giant + 30 x 1MB)",
         pathologicalChunks(30, 1'000'000'000, 1'000'000)},
    };

    TablePrinter table({"workload", "threshold (%)", "chosen layout",
                        "overhead (%)", "split chunks (%)"});
    for (const auto &w : workloads) {
        for (double threshold : {0.005, 0.02, 0.10, 0.50, 3.0}) {
            fac::FusionLayoutOptions options;
            options.overheadThreshold = threshold;
            options.fallbackBlockSize = 100'000'000;
            fac::ObjectLayout layout =
                fac::buildFusionLayout(w.chunks, options);
            table.addRow(
                {w.name, fmt("%.1f", threshold * 100),
                 fac::layoutKindName(layout.kind),
                 fmt("%.2f", layout.overheadVsOptimal() * 100),
                 fmt("%.1f", layout.splitFraction(w.chunks.size()) * 100)});
        }
    }
    table.print();
    std::printf("\nexpected: realistic objects pick FAC at the paper's 2%% "
                "threshold; pathological objects fall back to fixed "
                "blocks, which split chunks and still pay a ragged-tail "
                "stripe premium — there is no free lunch once one chunk "
                "dominates the object\n");
    return 0;
}
